package graphalign_test

import (
	"testing"

	"graphalign"
	"graphalign/internal/algo"
	"graphalign/internal/algotest"
)

// TestConformance runs the framework-level conformance suite — self-alignment
// accuracy, node-relabeling invariance, and cache-on vs cache-off
// byte-identity of the similarity matrix — against all nine aligners of the
// study. Instance sizes and thresholds are per algorithm: the
// optimal-transport and embedding methods get smaller instances (they are the
// slow ones) and the loosest bars, mirroring the recovery thresholds each
// algorithm's own package asserts.
func TestConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite runs every aligner several times")
	}
	mk := func(name string) func() algo.Aligner {
		return func() algo.Aligner {
			a, err := graphalign.NewAligner(name)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
	}
	cases := []algotest.Conformance{
		{Name: "IsoRank", New: mk("IsoRank"), N: 80, SelfMinAcc: 0.9},
		{Name: "GRAAL", New: mk("GRAAL"), N: 80, SelfMinAcc: 0.85},
		{Name: "NSD", New: mk("NSD"), N: 80, SelfMinAcc: 0.85, SparseTopK: 16},
		{Name: "LREA", New: mk("LREA"), N: 80, SelfMinAcc: 0.9, SparseTopK: 16},
		{Name: "REGAL", New: mk("REGAL"), N: 80, SelfMinAcc: 0.8, RelabelTol: 0.25, SparseTopK: 16},
		{Name: "GWL", New: mk("GWL"), N: 60, SelfMinAcc: 0.7, RelabelTol: 0.25},
		{Name: "S-GWL", New: mk("S-GWL"), N: 60, SelfMinAcc: 0.8, RelabelTol: 0.25},
		{Name: "CONE", New: mk("CONE"), N: 60, SelfMinAcc: 0.8, RelabelTol: 0.25},
		{Name: "GRASP", New: mk("GRASP"), N: 80, SelfMinAcc: 0.85},
	}
	if len(cases) != len(graphalign.Algorithms()) {
		t.Fatalf("conformance covers %d algorithms, registry has %d", len(cases), len(graphalign.Algorithms()))
	}
	algotest.RunConformance(t, cases)
}
