package graphalign_test

import (
	"context"
	"testing"

	"graphalign"
	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/core"
)

// TestConformance runs the framework-level conformance suite — self-alignment
// accuracy, node-relabeling invariance, and cache-on vs cache-off
// byte-identity of the similarity matrix — against all nine aligners of the
// study. Instance sizes and thresholds are per algorithm: the
// optimal-transport and embedding methods get smaller instances (they are the
// slow ones) and the loosest bars, mirroring the recovery thresholds each
// algorithm's own package asserts.
func TestConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite runs every aligner several times")
	}
	mk := func(name string) func() algo.Aligner {
		return func() algo.Aligner {
			a, err := graphalign.NewAligner(name)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
	}
	cases := []algotest.Conformance{
		{Name: "IsoRank", New: mk("IsoRank"), N: 80, SelfMinAcc: 0.9, Partitioned: 4},
		{Name: "GRAAL", New: mk("GRAAL"), N: 80, SelfMinAcc: 0.85, Partitioned: 4},
		{Name: "NSD", New: mk("NSD"), N: 80, SelfMinAcc: 0.85, SparseTopK: 16, Partitioned: 4},
		{Name: "LREA", New: mk("LREA"), N: 80, SelfMinAcc: 0.9, SparseTopK: 16, Partitioned: 4},
		{Name: "REGAL", New: mk("REGAL"), N: 80, SelfMinAcc: 0.8, RelabelTol: 0.25, SparseTopK: 16, Partitioned: 4},
		{Name: "GWL", New: mk("GWL"), N: 60, SelfMinAcc: 0.7, RelabelTol: 0.25, Partitioned: 4},
		{Name: "S-GWL", New: mk("S-GWL"), N: 60, SelfMinAcc: 0.8, RelabelTol: 0.25, Partitioned: 4},
		{Name: "CONE", New: mk("CONE"), N: 60, SelfMinAcc: 0.8, RelabelTol: 0.25, Partitioned: 4},
		{Name: "GRASP", New: mk("GRASP"), N: 80, SelfMinAcc: 0.85, Partitioned: 4},
	}
	if len(cases) != len(graphalign.Algorithms()) {
		t.Fatalf("conformance covers %d algorithms, registry has %d", len(cases), len(graphalign.Algorithms()))
	}
	algotest.RunConformance(t, cases)
}

// TestPartitionOffIdentity is the partition off-switch guard: running every
// aligner through the core runner with Partitions 0 (the zero value) or 1
// must produce exactly the mapping of a plain monolithic alignment — the
// sharding layer may not perturb the default path in any way. It lives here
// rather than in algotest because it exercises core.RunInstanceMapped, and
// algotest cannot import core without an import cycle.
func TestPartitionOffIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("aligns every algorithm three times")
	}
	for _, name := range graphalign.Algorithms() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			n := 80
			switch name {
			case "GWL", "S-GWL", "CONE":
				n = 60
			}
			mk := func() algo.Aligner {
				a, err := graphalign.NewAligner(name)
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			p := algotest.Pair(t, n, 0.02, 31337)
			want, err := algo.Align(mk(), p.Source, p.Target, assign.JonkerVolgenant)
			if err != nil {
				t.Fatal(err)
			}
			for _, parts := range []int{0, 1} {
				res, got := core.RunInstanceMapped(context.Background(), mk(), p,
					assign.JonkerVolgenant, core.RunSpec{Partitions: parts})
				if res.Err != nil {
					t.Fatalf("Partitions=%d: %v", parts, res.Err)
				}
				if len(got) != len(want) {
					t.Fatalf("Partitions=%d: mapping length %d vs %d", parts, len(got), len(want))
				}
				for u := range want {
					if got[u] != want[u] {
						t.Fatalf("Partitions=%d: mapping[%d]=%d differs from monolithic %d",
							parts, u, got[u], want[u])
					}
				}
			}
		})
	}
}
