// Command alignload is the load generator for alignd: it drives many
// concurrent alignment jobs against a running daemon, honours the API's
// backpressure contract (429 + Retry-After), verifies every returned mapping
// against a direct library call on the same inputs, and reports latency
// percentiles and throughput as JSON.
//
// Usage:
//
//	alignload -url http://127.0.0.1:8080 [-jobs 200] [-concurrency 100]
//	          [-algo NSD] [-method NN] [-topk 0] [-nodes 64] [-p 0.1]
//	          [-pairs 8] [-seed 1] [-timeout 60s] [-out BENCH_serve.json]
//	          [-no-verify] [-duration 0] [-sample 10s]
//
// With -duration > 0 the generator runs a sustained soak instead of a fixed
// job count: jobs are submitted continuously until the duration elapses,
// while a sampler scrapes the daemon's /metrics every -sample interval and
// records heap bytes and goroutine counts (the daemon must run its runtime
// sampler, which alignd does by default). The report then carries the
// resource samples plus their maxima, so a soak that leaks memory or
// goroutines is visible directly in BENCH_serve.json.
//
// The generator builds -pairs distinct Erdős–Rényi graph pairs and cycles
// jobs across them (repeat pairs exercise the daemon's shared artifact
// cache). Each job's mapping must be byte-identical to graphalign.Align on
// the same edge-list text — both sides parse it with the same interner, so
// any divergence is a real serving bug, and alignload exits nonzero.
//
// Exit status is nonzero when any accepted job fails to reach a terminal
// state, fails outright, or returns a mapping that differs from the library.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphalign"
	"graphalign/internal/gen"
	"graphalign/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "alignload:", err)
		os.Exit(1)
	}
}

// pairText is one pre-rendered graph pair plus the expected mapping computed
// through the library — the ground truth a served result must match byte for
// byte.
type pairText struct {
	src, dst string
	expected []int
}

// jobOutcome is one job's measured life.
type jobOutcome struct {
	pair      int
	latency   time.Duration
	retries   int // 429s absorbed before acceptance
	status    string
	mismatch  bool
	submitErr string
}

// report is the BENCH_serve.json shape.
type report struct {
	URL         string  `json:"url"`
	Algo        string  `json:"algo"`
	Method      string  `json:"method,omitempty"`
	TopK        int     `json:"topk,omitempty"`
	Nodes       int     `json:"nodes"`
	EdgeProb    float64 `json:"edge_prob"`
	Pairs       int     `json:"pairs"`
	Jobs        int     `json:"jobs"`
	Concurrency int     `json:"concurrency"`
	Seed        int64   `json:"seed"`

	// Soak mode only (-duration > 0).
	SoakSeconds   float64          `json:"soak_seconds,omitempty"`
	Samples       []resourceSample `json:"resource_samples,omitempty"`
	HeapMaxBytes  float64          `json:"heap_max_bytes,omitempty"`
	GoroutinesMax float64          `json:"goroutines_max,omitempty"`

	Accepted   int `json:"accepted"`
	Done       int `json:"done"`
	Failed     int `json:"failed"`
	Cancelled  int `json:"cancelled"`
	NonTermin  int `json:"accepted_not_terminal"`
	SubmitErrs int `json:"submit_errors"`
	Retries429 int `json:"retries_429"`
	Mismatches int `json:"result_mismatches"`
	Verified   int `json:"results_verified"`

	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputJPS float64 `json:"throughput_jobs_per_sec"`
	LatencyP50MS  float64 `json:"latency_p50_ms"`
	LatencyP90MS  float64 `json:"latency_p90_ms"`
	LatencyP99MS  float64 `json:"latency_p99_ms"`
	LatencyMaxMS  float64 `json:"latency_max_ms"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("alignload", flag.ContinueOnError)
	var (
		url         = fs.String("url", "", "base URL of a running alignd (required)")
		jobs        = fs.Int("jobs", 200, "total jobs to submit")
		concurrency = fs.Int("concurrency", 100, "client goroutines submitting and polling")
		algo        = fs.String("algo", "NSD", "algorithm for every job")
		method      = fs.String("method", "", "assignment method (empty = algorithm default)")
		topk        = fs.Int("topk", 0, "sparse candidate count (0 = dense)")
		nodes       = fs.Int("nodes", 64, "nodes per generated graph")
		edgeP       = fs.Float64("p", 0.1, "Erdős–Rényi edge probability")
		pairs       = fs.Int("pairs", 8, "distinct graph pairs cycled across jobs")
		seed        = fs.Int64("seed", 1, "generator seed")
		timeout     = fs.Duration("timeout", 60*time.Second, "client-side budget per job (submit retries + completion)")
		out         = fs.String("out", "", "write the JSON report here (default stdout only)")
		noVerify    = fs.Bool("no-verify", false, "skip byte-identity verification against the library")
		duration    = fs.Duration("duration", 0, "sustained-soak length; 0 = fixed -jobs count mode")
		sample      = fs.Duration("sample", 10*time.Second, "resource sampling interval during -duration soaks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	base := strings.TrimRight(*url, "/")
	if *jobs <= 0 || *concurrency <= 0 || *pairs <= 0 {
		return fmt.Errorf("-jobs, -concurrency and -pairs must be positive")
	}

	texts, err := buildPairs(*pairs, *nodes, *edgeP, *seed, *algo, graphalign.AssignMethod(*method), !*noVerify)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var outcomes []jobOutcome
	var samples []resourceSample
	var wg sync.WaitGroup
	start := time.Now()
	if *duration > 0 {
		// Sustained soak: keep the concurrency level saturated until the
		// deadline, sampling the daemon's resource gauges along the way.
		deadline := start.Add(*duration)
		var mu sync.Mutex
		var counter int64
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					i := int(atomic.AddInt64(&counter, 1) - 1)
					o := driveJob(client, base, texts[i%len(texts)], i%len(texts), *algo, *method, *topk, *timeout, !*noVerify)
					mu.Lock()
					outcomes = append(outcomes, o)
					mu.Unlock()
				}
			}()
		}
		stopSampling := make(chan struct{})
		var samplerWG sync.WaitGroup
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			ticker := time.NewTicker(*sample)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if s, ok := scrapeResources(client, base, time.Since(start)); ok {
						samples = append(samples, s)
					}
				case <-stopSampling:
					return
				}
			}
		}()
		wg.Wait()
		close(stopSampling)
		samplerWG.Wait()
		// One final scrape so even short soaks record an end-state sample.
		if s, ok := scrapeResources(client, base, time.Since(start)); ok {
			samples = append(samples, s)
		}
	} else {
		outcomes = make([]jobOutcome, *jobs)
		next := make(chan int)
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					outcomes[i] = driveJob(client, base, texts[i%len(texts)], i%len(texts), *algo, *method, *topk, *timeout, !*noVerify)
				}
			}()
		}
		for i := 0; i < *jobs; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	wall := time.Since(start)

	rep := summarize(outcomes, wall)
	if *duration > 0 {
		rep.SoakSeconds = duration.Seconds()
		rep.Samples = samples
		for _, s := range samples {
			rep.HeapMaxBytes = math.Max(rep.HeapMaxBytes, s.HeapBytes)
			rep.GoroutinesMax = math.Max(rep.GoroutinesMax, s.Goroutines)
		}
	}
	rep.URL, rep.Algo, rep.Method, rep.TopK = base, *algo, *method, *topk
	rep.Nodes, rep.EdgeProb, rep.Pairs = *nodes, *edgeP, *pairs
	rep.Jobs, rep.Concurrency, rep.Seed = *jobs, *concurrency, *seed

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
	}
	stdout.Write(raw)

	switch {
	case rep.SubmitErrs > 0:
		return fmt.Errorf("%d jobs were never accepted", rep.SubmitErrs)
	case rep.NonTermin > 0:
		return fmt.Errorf("%d accepted jobs never reached a terminal state (dropped-but-accepted)", rep.NonTermin)
	case rep.Failed > 0 || rep.Cancelled > 0:
		return fmt.Errorf("%d jobs failed, %d cancelled", rep.Failed, rep.Cancelled)
	case rep.Mismatches > 0:
		return fmt.Errorf("%d results differ from the direct library call", rep.Mismatches)
	}
	return nil
}

// buildPairs renders the graph pairs as edge-list text and, when verifying,
// computes each pair's expected mapping through the library — parsing the
// text exactly as the daemon will, so dense node ids agree on both sides.
func buildPairs(pairs, nodes int, p float64, seed int64, algoName string, method graphalign.AssignMethod, verify bool) ([]pairText, error) {
	texts := make([]pairText, pairs)
	rng := rand.New(rand.NewSource(seed))
	for i := range texts {
		src := gen.ErdosRenyi(nodes, p, rng)
		dst := gen.ErdosRenyi(nodes, p, rng)
		if src.M() == 0 || dst.M() == 0 {
			return nil, fmt.Errorf("pair %d: empty graph (raise -p or -nodes)", i)
		}
		var sb, db bytes.Buffer
		if err := graph.WriteEdgeList(&sb, src); err != nil {
			return nil, err
		}
		if err := graph.WriteEdgeList(&db, dst); err != nil {
			return nil, err
		}
		pt := pairText{src: sb.String(), dst: db.String()}
		// Re-parse the rendered text the same way the daemon will (isolated
		// nodes drop out of an edge list, so parsed sizes can differ from the
		// generator's n) and keep the orientation the daemon accepts:
		// submissions with src larger than dst are rejected.
		ps, _, err := graph.ReadEdgeList(strings.NewReader(pt.src))
		if err != nil {
			return nil, err
		}
		pd, _, err := graph.ReadEdgeList(strings.NewReader(pt.dst))
		if err != nil {
			return nil, err
		}
		if ps.N() > pd.N() {
			pt.src, pt.dst = pt.dst, pt.src
			ps, pd = pd, ps
		}
		if verify {
			var mapping []int
			if method == "" {
				mapping, err = graphalign.AlignDefault(algoName, ps, pd)
			} else {
				mapping, err = graphalign.Align(algoName, ps, pd, method)
			}
			if err != nil {
				return nil, fmt.Errorf("library baseline for pair %d: %w", i, err)
			}
			pt.expected = mapping
		}
		texts[i] = pt
	}
	return texts, nil
}

// driveJob submits one job (absorbing 429s per the Retry-After contract),
// polls it to a terminal state and verifies the mapping.
func driveJob(client *http.Client, base string, pt pairText, pair int, algoName, method string, topk int, budget time.Duration, verify bool) jobOutcome {
	o := jobOutcome{pair: pair}
	body, _ := json.Marshal(map[string]any{
		"algo": algoName, "method": method, "topk": topk,
		"src": pt.src, "dst": pt.dst,
	})
	deadline := time.Now().Add(budget)
	start := time.Now()

	var id string
	for {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			o.submitErr = err.Error()
			return o
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			o.retries++
			wait := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			// The hint is an upper bound for a mostly-idle retry loop; a
			// load generator probes faster but still backs off.
			if wait > 2*time.Second {
				wait = 2 * time.Second
			}
			if time.Now().Add(wait).After(deadline) {
				o.submitErr = "queue full until client budget exhausted"
				return o
			}
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			o.submitErr = fmt.Sprintf("status %d: %s", resp.StatusCode, raw)
			return o
		}
		var v struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &v); err != nil || v.ID == "" {
			o.submitErr = fmt.Sprintf("bad submit response %q", raw)
			return o
		}
		id = v.ID
		break
	}

	for {
		if time.Now().After(deadline) {
			o.status = "client-timeout"
			return o
		}
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			o.status = "poll-error: " + err.Error()
			return o
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v struct {
			Status string `json:"status"`
			Result *struct {
				Mapping []int `json:"mapping"`
			} `json:"result"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			o.status = "poll-error: bad body"
			return o
		}
		switch v.Status {
		case "done":
			o.status = v.Status
			o.latency = time.Since(start)
			if verify {
				if v.Result == nil || !equalInts(v.Result.Mapping, pt.expected) {
					o.mismatch = true
				}
			}
			return o
		case "failed", "cancelled":
			o.status = v.Status
			o.latency = time.Since(start)
			return o
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// resourceSample is one /metrics scrape of the daemon's runtime gauges.
type resourceSample struct {
	AtSeconds  float64 `json:"at_seconds"`
	HeapBytes  float64 `json:"heap_bytes"`
	Goroutines float64 `json:"goroutines"`
}

// scrapeResources reads graphalign_runtime_heap_bytes and
// graphalign_runtime_goroutines off the daemon's Prometheus exposition. A
// daemon running without its runtime sampler simply yields no samples
// (ok=false), never an error — resource visibility is best-effort.
func scrapeResources(client *http.Client, base string, at time.Duration) (resourceSample, bool) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return resourceSample{}, false
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return resourceSample{}, false
	}
	s := resourceSample{AtSeconds: at.Seconds(), HeapBytes: -1, Goroutines: -1}
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "graphalign_runtime_heap_bytes":
			s.HeapBytes = v
		case "graphalign_runtime_goroutines":
			s.Goroutines = v
		}
	}
	if s.HeapBytes < 0 || s.Goroutines < 0 {
		return resourceSample{}, false
	}
	return s, true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func summarize(outcomes []jobOutcome, wall time.Duration) report {
	var rep report
	var lats []time.Duration
	for _, o := range outcomes {
		if o.submitErr != "" {
			rep.SubmitErrs++
			continue
		}
		rep.Accepted++
		rep.Retries429 += o.retries
		switch o.status {
		case "done":
			rep.Done++
			lats = append(lats, o.latency)
			if o.mismatch {
				rep.Mismatches++
			} else {
				rep.Verified++
			}
		case "failed":
			rep.Failed++
		case "cancelled":
			rep.Cancelled++
		default:
			rep.NonTermin++
		}
	}
	rep.WallSeconds = wall.Seconds()
	if rep.WallSeconds > 0 {
		rep.ThroughputJPS = float64(rep.Done) / rep.WallSeconds
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(lats)-1))
			return float64(lats[idx]) / float64(time.Millisecond)
		}
		rep.LatencyP50MS = pct(0.50)
		rep.LatencyP90MS = pct(0.90)
		rep.LatencyP99MS = pct(0.99)
		rep.LatencyMaxMS = float64(lats[len(lats)-1]) / float64(time.Millisecond)
	}
	return rep
}
