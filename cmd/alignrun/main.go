// Command alignrun aligns two edge-list graphs with any of the nine
// algorithms and prints the node mapping plus quality measures.
//
// Usage:
//
//	alignrun -algo CONE -src a.edges -dst b.edges [-assign JV] [-truth truth.txt]
//
// The mapping is printed one "srcLabel dstLabel" pair per line on stdout;
// metrics go to stderr. When -truth is given (lines of "src dst" dense
// ids), accuracy is reported as well.
//
// -trace-out run.jsonl streams structured span events (a run span with
// similarity/assign phases plus the algorithm's inner phases) as JSONL,
// ready for `alignstat summary`; tracing never changes the alignment.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"graphalign"
	"graphalign/internal/obsv"
)

func main() {
	var (
		algoName = flag.String("algo", "CONE", "algorithm: IsoRank, GRAAL, NSD, LREA, REGAL, GWL, S-GWL, CONE, GRASP")
		srcPath  = flag.String("src", "", "source graph edge list (required)")
		dstPath  = flag.String("dst", "", "target graph edge list (required)")
		method   = flag.String("assign", "", "assignment method NN, SG, MWM, JV (default: the algorithm's own)")
		truthP   = flag.String("truth", "", "ground-truth file of 'src dst' dense-id lines")
		quiet    = flag.Bool("q", false, "suppress the mapping output, print only metrics")
		traceOut = flag.String("trace-out", "", "write span events as JSONL to this file (alignstat summary input)")
	)
	flag.Parse()
	if *srcPath == "" || *dstPath == "" {
		fmt.Fprintln(os.Stderr, "alignrun: need -src and -dst")
		flag.Usage()
		os.Exit(2)
	}
	src, srcLabels, err := graphalign.ReadGraphFile(*srcPath)
	if err != nil {
		fatal(err)
	}
	dst, dstLabels, err := graphalign.ReadGraphFile(*dstPath)
	if err != nil {
		fatal(err)
	}

	var tracer *graphalign.Tracer
	var traceSink *obsv.WriterSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		traceSink = obsv.NewWriterSink(f)
		tracer = obsv.New(traceSink).SetTraceID(obsv.NewTraceID("alignrun"))
		tracer.EmitTraceMeta(map[string]any{
			"cmd":        "alignrun",
			"algo":       *algoName,
			"src":        *srcPath,
			"dst":        *dstPath,
			"go":         runtime.Version(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		})
	}

	mapping, simTime, assignTime, err := graphalign.AlignTimedTraced(*algoName, src, dst, graphalign.AssignMethod(*method), tracer)
	if err != nil {
		fatal(err)
	}
	if traceSink != nil {
		if werr := traceSink.Err(); werr != nil {
			fatal(fmt.Errorf("trace-out: %w", werr))
		}
	}
	elapsed := simTime + assignTime

	var trueMap []int
	if *truthP != "" {
		trueMap, err = readTruth(*truthP, src.N())
		if err != nil {
			fatal(err)
		}
	}
	scores := graphalign.Evaluate(src, dst, mapping, trueMap)

	if !*quiet {
		w := bufio.NewWriter(os.Stdout)
		for u, v := range mapping {
			if v < 0 {
				continue
			}
			fmt.Fprintf(w, "%s %s\n", srcLabels[u], dstLabels[v])
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "algorithm=%s time=%s sim_time=%s assign_time=%s EC=%.4f ICS=%.4f S3=%.4f MNC=%.4f",
		*algoName, elapsed.Round(time.Millisecond), simTime.Round(time.Millisecond),
		assignTime.Round(time.Millisecond), scores.EC, scores.ICS, scores.S3, scores.MNC)
	if trueMap != nil {
		fmt.Fprintf(os.Stderr, " accuracy=%.4f", scores.Accuracy)
	}
	fmt.Fprintln(os.Stderr)
}

func readTruth(path string, n int) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var u, v int
		if _, err := fmt.Sscan(sc.Text(), &u, &v); err != nil {
			continue
		}
		if u >= 0 && u < n {
			out[u] = v
		}
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alignrun:", err)
	os.Exit(1)
}
