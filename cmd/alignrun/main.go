// Command alignrun aligns two edge-list graphs with any of the nine
// algorithms and prints the node mapping plus quality measures.
//
// Usage:
//
//	alignrun -algo CONE -src a.edges -dst b.edges [-assign JV] [-truth truth.txt]
//
// The mapping is printed one "srcLabel dstLabel" pair per line on stdout;
// metrics go to stderr. When -truth is given (lines of "src dst" dense
// ids), accuracy is reported as well.
//
// -trace-out run.jsonl streams structured span events (a run span with
// similarity/assign phases plus the algorithm's inner phases) as JSONL,
// ready for `alignstat summary`; tracing never changes the alignment.
//
// -partitions K (K >= 2) routes the run through the partition-align-stitch
// sharding layer: the graphs are co-partitioned into K matched cluster
// pairs, each pair is aligned independently across -workers goroutines with
// a fresh aligner instance, and the shard mappings are stitched with an
// auction-based boundary-refinement pass. Combine with -topk to keep the
// per-shard assignment sparse. This is what makes n=100k alignments fit in
// commodity memory (see DESIGN.md §15); 0 = off, byte-identical to the
// monolithic path.
//
// -edits stream.edits replays an evolving-graph workload (DESIGN.md §16):
// the pair is cold-aligned once, then each blank-line-separated batch of
// "add u v" / "del u v" lines is applied to the target graph and
// re-aligned incrementally (warm-started auction, delta-tolerant candidate
// reuse). Per-batch statistics go to stderr; the printed mapping and
// metrics are those of the final alignment against the final edited
// target. -incr-out writes the incr_* metrics registry as JSON afterwards.
// Requires an embedding- or factor-producing algorithm; the assignment
// method is fixed to the warm-startable sparse auction.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"graphalign"
	"graphalign/internal/graph"
	"graphalign/internal/incremental"
	"graphalign/internal/obsv"
	"graphalign/internal/partition"
)

func main() {
	var (
		algoName = flag.String("algo", "CONE", "algorithm: IsoRank, GRAAL, NSD, LREA, REGAL, GWL, S-GWL, CONE, GRASP")
		srcPath  = flag.String("src", "", "source graph edge list (required)")
		dstPath  = flag.String("dst", "", "target graph edge list (required)")
		method   = flag.String("assign", "", "assignment method NN, SG, MWM, JV (default: the algorithm's own)")
		truthP   = flag.String("truth", "", "ground-truth file of 'src dst' dense-id lines")
		quiet    = flag.Bool("q", false, "suppress the mapping output, print only metrics")
		traceOut = flag.String("trace-out", "", "write span events as JSONL to this file (alignstat summary input)")
		parts    = flag.Int("partitions", 0, "partition-align-stitch sharding: co-partition into this many matched cluster pairs, align shards independently and stitch with boundary refinement; 0 = off (monolithic)")
		topK     = flag.Int("topk", 0, "per-shard sparse assignment top-k (with -partitions: 0 = dense; with -edits: candidate list length, 0 = 10)")
		workers  = flag.Int("workers", 0, "concurrent shards or refresh workers (0 = one per CPU)")
		edits    = flag.String("edits", "", "edit-stream file of blank-line-separated 'add u v'/'del u v' batches: replay incrementally against the target graph")
		incrOut  = flag.String("incr-out", "", "write the incr_* metrics registry snapshot as JSON to this file (only with -edits)")
		incrTol  = flag.Float64("incr-tol", 0, "incremental embedding-row change tolerance: 0 = bitwise, >0 = relative, <0 = refresh everything")
		incrHops = flag.Int("incr-hops", 0, "restrict incremental target refresh to nodes within this many hops of an edit (0 = tolerance only)")
		drift    = flag.Float64("drift", 0, "dirty-row fraction above which incremental re-alignment falls back to a cold solve (0 = default 0.5, >=1 = never)")
	)
	flag.Parse()
	if *srcPath == "" || *dstPath == "" {
		fmt.Fprintln(os.Stderr, "alignrun: need -src and -dst")
		flag.Usage()
		os.Exit(2)
	}
	src, srcLabels, err := graphalign.ReadGraphFile(*srcPath)
	if err != nil {
		fatal(err)
	}
	dst, dstLabels, err := graphalign.ReadGraphFile(*dstPath)
	if err != nil {
		fatal(err)
	}

	var tracer *graphalign.Tracer
	var traceSink *obsv.WriterSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		traceSink = obsv.NewWriterSink(f)
		tracer = obsv.New(traceSink).SetTraceID(obsv.NewTraceID("alignrun"))
		tracer.EmitTraceMeta(map[string]any{
			"cmd":        "alignrun",
			"algo":       *algoName,
			"src":        *srcPath,
			"dst":        *dstPath,
			"partitions": *parts,
			"go":         runtime.Version(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		})
	}

	var mapping []int
	var simTime, assignTime time.Duration
	switch {
	case *edits != "":
		if *parts >= 2 {
			fatal(fmt.Errorf("-edits and -partitions are mutually exclusive"))
		}
		mapping, dst, simTime, assignTime, err = alignIncremental(*algoName, src, dst,
			*edits, *incrOut, *topK, *workers, *incrTol, *incrHops, *drift, tracer)
	case *parts >= 2:
		mapping, simTime, assignTime, err = alignPartitioned(*algoName, src, dst, graphalign.AssignMethod(*method), *parts, *topK, *workers, tracer)
	default:
		mapping, simTime, assignTime, err = graphalign.AlignTimedTraced(*algoName, src, dst, graphalign.AssignMethod(*method), tracer)
	}
	if err != nil {
		fatal(err)
	}
	if traceSink != nil {
		if werr := traceSink.Err(); werr != nil {
			fatal(fmt.Errorf("trace-out: %w", werr))
		}
	}
	elapsed := simTime + assignTime

	var trueMap []int
	if *truthP != "" {
		trueMap, err = readTruth(*truthP, src.N())
		if err != nil {
			fatal(err)
		}
	}
	scores := graphalign.Evaluate(src, dst, mapping, trueMap)

	if !*quiet {
		w := bufio.NewWriter(os.Stdout)
		for u, v := range mapping {
			if v < 0 {
				continue
			}
			fmt.Fprintf(w, "%s %s\n", srcLabels[u], dstLabels[v])
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "algorithm=%s time=%s sim_time=%s assign_time=%s EC=%.4f ICS=%.4f S3=%.4f MNC=%.4f",
		*algoName, elapsed.Round(time.Millisecond), simTime.Round(time.Millisecond),
		assignTime.Round(time.Millisecond), scores.EC, scores.ICS, scores.S3, scores.MNC)
	if trueMap != nil {
		fmt.Fprintf(os.Stderr, " accuracy=%.4f", scores.Accuracy)
	}
	fmt.Fprintln(os.Stderr)
}

// alignPartitioned runs the sharded path: a fresh aligner per shard (the
// shards run concurrently, so they cannot share one instance's state), the
// algorithm's own default assignment when none was requested, and the
// partition layer's AlignTime/StitchTime reported in place of the monolithic
// similarity/assignment split.
func alignPartitioned(name string, src, dst *graphalign.Graph, method graphalign.AssignMethod, parts, topK, workers int, tracer *graphalign.Tracer) ([]int, time.Duration, time.Duration, error) {
	if method == "" {
		a, err := graphalign.NewAligner(name)
		if err != nil {
			return nil, 0, 0, err
		}
		method = a.DefaultAssignment()
	}
	mapping, stats, err := partition.Align(context.Background(),
		func() (graphalign.Aligner, error) { return graphalign.NewAligner(name) },
		src, dst, method, partition.Options{K: parts, Workers: workers, TopK: topK, Tracer: tracer})
	return mapping, stats.AlignTime, stats.StitchTime, err
}

// alignIncremental replays an edit-stream file against the target graph:
// cold-align once (reported as the similarity time), then apply each batch
// with warm-started re-alignment (the summed apply time is reported as the
// assignment time). Returns the final mapping and the final edited target,
// which is what the printed metrics must be scored against.
func alignIncremental(name string, src, dst *graphalign.Graph, editsPath, incrOut string, topK, workers int, tol float64, hops int, drift float64, tracer *graphalign.Tracer) ([]int, *graphalign.Graph, time.Duration, time.Duration, error) {
	f, err := os.Open(editsPath)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	batches, err := graph.ReadEditStream(f)
	f.Close()
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("edits: %w", err)
	}
	a, err := graphalign.NewAligner(name)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if topK == 0 {
		topK = 10
	}
	reg := obsv.NewRegistry()
	// Materialize the whole incr_* family up front so -incr-out always has
	// the full series set, zeros included, whatever the stream exercised.
	incremental.PreRegisterMetrics(reg)
	t0 := time.Now()
	sess, err := incremental.NewSession(context.Background(), a, src, dst, incremental.Options{
		TopK:           topK,
		Workers:        workers,
		DriftThreshold: drift,
		ColTolerance:   tol,
		DirtyHops:      hops,
		Tracer:         tracer,
		Registry:       reg,
	})
	simTime := time.Since(t0)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	var assignTime time.Duration
	for i, batch := range batches {
		t1 := time.Now()
		stats, err := sess.Apply(context.Background(), batch)
		assignTime += time.Since(t1)
		if err != nil {
			return nil, nil, 0, 0, fmt.Errorf("batch %d: %w", i, err)
		}
		fmt.Fprintf(os.Stderr, "batch=%d edits=%d dirty_rows=%d dirty_cols=%d warm=%t rebid_rows=%d rounds=%d noop=%t time=%s\n",
			i, stats.Edits, stats.DirtyRows, stats.ChangedCols, stats.Warm,
			stats.RebidRows, stats.Rounds, stats.Noop,
			(stats.RefreshTime + stats.CandidateTime + stats.SolveTime).Round(time.Microsecond))
	}
	if incrOut != "" {
		out, err := os.Create(incrOut)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		if err := reg.WriteJSON(out); err != nil {
			out.Close()
			return nil, nil, 0, 0, err
		}
		if err := out.Close(); err != nil {
			return nil, nil, 0, 0, err
		}
	}
	return sess.Mapping(), sess.Target(), simTime, assignTime, nil
}

func readTruth(path string, n int) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var u, v int
		if _, err := fmt.Sscan(sc.Text(), &u, &v); err != nil {
			continue
		}
		if u >= 0 && u < n {
			out[u] = v
		}
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alignrun:", err)
	os.Exit(1)
}
