package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"graphalign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
	"graphalign/internal/obsv/tracefile"
)

func TestMain(m *testing.M) {
	if os.Getenv("RUN_ALIGNRUN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RUN_ALIGNRUN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// writeInstance creates a base/noisy pair of edge-list files plus a truth
// file, returning their paths.
func writeInstance(t *testing.T) (src, dst, truth string) {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	base := gen.PowerlawCluster(80, 3, 0.3, rng)
	pair, err := noise.Apply(base, noise.OneWay, 0.01, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	src = filepath.Join(dir, "src.edges")
	dst = filepath.Join(dir, "dst.edges")
	truth = filepath.Join(dir, "truth.txt")
	if err := graphalign.WriteGraphFile(src, pair.Source); err != nil {
		t.Fatal(err)
	}
	if err := graphalign.WriteGraphFile(dst, pair.Target); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(truth)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	for u, v := range pair.TrueMap {
		fmt.Fprintf(w, "%d %d\n", u, v)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return src, dst, truth
}

func TestAlignWithTruth(t *testing.T) {
	src, dst, truth := writeInstance(t)
	out, err := run(t, "-algo", "IsoRank", "-src", src, "-dst", dst, "-truth", truth, "-q")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "accuracy=") {
		t.Errorf("metrics line missing accuracy:\n%s", out)
	}
	if !strings.Contains(out, "S3=") || !strings.Contains(out, "MNC=") {
		t.Errorf("metrics line incomplete:\n%s", out)
	}
}

func TestMappingOutput(t *testing.T) {
	src, dst, _ := writeInstance(t)
	out, err := run(t, "-algo", "NSD", "-assign", "SG", "-src", src, "-dst", dst)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// Mapping lines: "label label" pairs, one per source node.
	lines := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(strings.TrimSpace(line), " ") == 1 && !strings.Contains(line, "=") {
			lines++
		}
	}
	if lines < 70 {
		t.Errorf("expected ~80 mapping lines, got %d:\n%s", lines, out)
	}
}

func TestMissingArguments(t *testing.T) {
	if _, err := run(t, "-algo", "NSD"); err == nil {
		t.Error("missing -src/-dst accepted")
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	src, dst, _ := writeInstance(t)
	if out, err := run(t, "-algo", "Nope", "-src", src, "-dst", dst); err == nil {
		t.Errorf("unknown algorithm accepted:\n%s", out)
	}
}

func TestTraceOutProducesParsableTrace(t *testing.T) {
	src, dst, _ := writeInstance(t)
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	out, err := run(t, "-algo", "NSD", "-src", src, "-dst", dst, "-q", "-trace-out", trace)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	parsed, err := tracefile.ReadFiles(trace)
	if err != nil {
		t.Fatalf("trace unparsable: %v", err)
	}
	if len(parsed.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(parsed.Runs))
	}
	r := parsed.Runs[0]
	if r.Algo != "NSD" || r.Incomplete {
		t.Fatalf("run = %+v", r)
	}
	names := map[string]bool{}
	for _, c := range r.Root.Children {
		names[c.Name] = true
	}
	if !names["similarity"] || !names["assign"] {
		t.Errorf("span tree missing similarity/assign phases; have %v", names)
	}
	if !strings.HasPrefix(r.Trace, "alignrun-") {
		t.Errorf("trace id = %q, want alignrun- prefix", r.Trace)
	}
	meta := parsed.Meta[r.Trace]
	if meta["cmd"] != "alignrun" || meta["algo"] != "NSD" {
		t.Errorf("trace_meta = %v, want cmd=alignrun algo=NSD", meta)
	}
}

func TestTimeSplitReported(t *testing.T) {
	src, dst, _ := writeInstance(t)
	out, err := run(t, "-algo", "NSD", "-src", src, "-dst", dst, "-q")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, field := range []string{"time=", "sim_time=", "assign_time="} {
		if !strings.Contains(out, field) {
			t.Errorf("metrics line missing %s:\n%s", field, out)
		}
	}
}
