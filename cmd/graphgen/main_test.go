package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"graphalign"
)

func TestMain(m *testing.M) {
	if os.Getenv("RUN_GRAPHGEN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RUN_GRAPHGEN=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestGenerateModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ba.edges")
	out, err := run(t, "-model", "BA", "-n", "200", "-seed", "3", "-out", path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	g, _, err := graphalign.ReadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 {
		t.Errorf("generated n = %d", g.N())
	}
	if g.M() != 5+(200-5-1)*5 {
		t.Errorf("generated m = %d", g.M())
	}
}

func TestGenerateDataset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "celegans.edges")
	if out, err := run(t, "-dataset", "bio-celegans", "-out", path); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	g, _, err := graphalign.ReadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 453 {
		t.Errorf("bio-celegans stand-in n = %d, want 453", g.N())
	}
}

func TestPerturbWithTruth(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.edges")
	noisy := filepath.Join(dir, "noisy.edges")
	truth := filepath.Join(dir, "truth.txt")
	if out, err := run(t, "-model", "ER", "-n", "150", "-out", base); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if out, err := run(t, "-perturb", base, "-noise", "one-way", "-level", "0.1",
		"-out", noisy, "-truth", truth); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	g1, _, err := graphalign.ReadGraphFile(base)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := graphalign.ReadGraphFile(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() >= g1.M() {
		t.Errorf("one-way noise did not remove edges: %d vs %d", g2.M(), g1.M())
	}
	data, err := os.ReadFile(truth)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != g1.N() {
		t.Errorf("truth file has %d lines, want %d", lines, g1.N())
	}
}

func TestListDatasets(t *testing.T) {
	out, err := run(t, "-datasets")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "arenas") || !strings.Contains(out, "multimagna") {
		t.Errorf("-datasets output incomplete:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := run(t, "-model", "BA", "-n", "50"); err == nil {
		t.Error("missing -out accepted")
	}
	if _, err := run(t, "-out", "/tmp/x.edges"); err == nil {
		t.Error("no generation mode accepted")
	}
	if _, err := run(t, "-model", "NOPE", "-n", "50", "-out", filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("unknown model accepted")
	}
}
