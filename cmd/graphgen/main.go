// Command graphgen generates synthetic benchmark graphs and noisy variants
// as edge-list files.
//
// Usage:
//
//	graphgen -model BA -n 1000 -out base.edges
//	graphgen -dataset arenas -out arenas.edges
//	graphgen -perturb base.edges -noise one-way -level 0.05 -out noisy.edges -truth truth.txt
//
// Models: ER, BA, WS, NW, PL, CONFIG. Datasets: the Table 2 stand-ins (see
// `graphgen -datasets`). When perturbing, the ground-truth permutation is
// written one "src dst" pair per line to -truth.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"graphalign"
	"graphalign/internal/data"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
)

func main() {
	var (
		model    = flag.String("model", "", "generator model: ER, BA, WS, NW, PL, CONFIG")
		dataset  = flag.String("dataset", "", "Table 2 dataset stand-in name")
		listDS   = flag.Bool("datasets", false, "list dataset names")
		n        = flag.Int("n", 1000, "number of nodes (generator models)")
		seed     = flag.Int64("seed", 1, "random seed")
		outPath  = flag.String("out", "", "output edge-list path (required)")
		perturb  = flag.String("perturb", "", "perturb this edge-list file instead of generating")
		noiseTyp = flag.String("noise", "one-way", "noise type: one-way, multi-modal, two-way")
		level    = flag.Float64("level", 0.05, "noise level (fraction of edges)")
		truth    = flag.String("truth", "", "write ground-truth permutation here (perturb mode)")
	)
	flag.Parse()

	if *listDS {
		for _, name := range data.Names() {
			d, _ := data.Describe(name)
			fmt.Printf("%-18s n=%-6d m=%-7d %s\n", d.Name, d.N, d.M, d.Kind)
		}
		return
	}
	if *outPath == "" {
		fatal(fmt.Errorf("need -out"))
	}
	rng := rand.New(rand.NewSource(*seed))

	switch {
	case *perturb != "":
		src, _, err := graphalign.ReadGraphFile(*perturb)
		if err != nil {
			fatal(err)
		}
		pair, err := noise.Apply(src, noise.Type(*noiseTyp), *level, noise.Options{}, rng)
		if err != nil {
			fatal(err)
		}
		if err := graphalign.WriteGraphFile(*outPath, pair.Target); err != nil {
			fatal(err)
		}
		if *truth != "" {
			if err := writeTruth(*truth, pair.TrueMap); err != nil {
				fatal(err)
			}
		}
	case *dataset != "":
		g, err := data.Load(*dataset)
		if err != nil {
			fatal(err)
		}
		if err := graphalign.WriteGraphFile(*outPath, g); err != nil {
			fatal(err)
		}
	case *model != "":
		g, err := gen.Generate(gen.Model(*model), *n, rng)
		if err != nil {
			fatal(err)
		}
		if err := graphalign.WriteGraphFile(*outPath, g); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need one of -model, -dataset, -perturb"))
	}
}

func writeTruth(path string, trueMap []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for u, v := range trueMap {
		fmt.Fprintf(w, "%d %d\n", u, v)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
