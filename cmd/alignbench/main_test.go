package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphalign/internal/obsv/tracefile"
)

// TestMain re-executes the test binary as the real CLI when RUN_ALIGNBENCH
// is set, so integration tests below can drive main() without a separate
// build step.
func TestMain(m *testing.M) {
	if os.Getenv("RUN_ALIGNBENCH") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RUN_ALIGNBENCH=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestListExperiments(t *testing.T) {
	out, err := run(t, "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, id := range []string{"fig1", "fig16", "table1", "table3", "ablation-cone-dim"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestRunTable1(t *testing.T) {
	out, err := run(t, "-exp", "table1")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, name := range []string{"IsoRank", "GRASP", "S-GWL"} {
		if !strings.Contains(out, name) {
			t.Errorf("table1 output missing %q:\n%s", name, out)
		}
	}
}

func TestRunExperimentToFile(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	// A tiny real experiment: two fast algorithms, minimal scale.
	out, err := run(t, "-exp", "fig9", "-scale", "0.05", "-reps", "1",
		"-algos", "NSD,REGAL", "-out", path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "NSD") || !strings.Contains(string(data), "REGAL") {
		t.Errorf("result file missing algorithm rows:\n%s", data)
	}
}

func TestUnknownExperiment(t *testing.T) {
	out, err := run(t, "-exp", "figZZ")
	if err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
}

func TestNoArguments(t *testing.T) {
	if _, err := run(t); err == nil {
		t.Fatal("no-argument invocation should exit non-zero")
	}
}

func TestCSVFormat(t *testing.T) {
	out, err := run(t, "-exp", "table1", "-format", "csv")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.HasPrefix(out, "algorithm,") {
		t.Errorf("csv header missing:\n%s", out)
	}
	if strings.Contains(out, "##") {
		t.Error("csv output must not contain text-format headers")
	}
}

func TestUnknownFormat(t *testing.T) {
	if out, err := run(t, "-exp", "table1", "-format", "yaml"); err == nil {
		t.Errorf("unknown format accepted:\n%s", out)
	}
}

func TestTraceOut(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	out, err := run(t, "-exp", "fig9", "-scale", "0.05", "-reps", "1",
		"-algos", "NSD", "-trace-out", trace, "-out", filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	types := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		typ, _ := e["type"].(string)
		if typ == "" {
			t.Fatalf("event missing type: %s", sc.Text())
		}
		types[typ]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"experiment_start", "experiment_done", "cell_done",
		"run_start", "run_end", "phase", "metrics",
	} {
		if types[want] == 0 {
			t.Errorf("trace missing %q events (have %v)", want, types)
		}
	}
	if types["phase"] < 3*types["run_end"] {
		t.Errorf("expected >=3 phases per run: %v", types)
	}
	if types["trace_meta"] != 1 {
		t.Errorf("expected exactly one trace_meta header, got %d", types["trace_meta"])
	}

	// The analyzer view: runs separate cleanly, every event carries the
	// invocation's trace id, and the meta header survives the round trip.
	parsed, err := tracefile.ReadFiles(trace)
	if err != nil {
		t.Fatalf("tracefile parse: %v", err)
	}
	if len(parsed.Runs) == 0 {
		t.Fatal("tracefile found no runs")
	}
	for _, r := range parsed.Runs {
		if !strings.HasPrefix(r.Trace, "alignbench-") {
			t.Fatalf("run trace id = %q, want alignbench- prefix", r.Trace)
		}
	}
	meta := parsed.Meta[parsed.Runs[0].Trace]
	if meta["cmd"] != "alignbench" || meta["exp"] != "fig9" {
		t.Errorf("trace_meta = %v, want cmd=alignbench exp=fig9", meta)
	}
	sum := tracefile.Summarize(parsed)
	if len(sum.Phases) == 0 || len(sum.Paths) == 0 {
		t.Errorf("summary empty: %d phases, %d paths", len(sum.Phases), len(sum.Paths))
	}
}

func TestTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	dir := t.TempDir()
	render := func(traced bool) string {
		path := filepath.Join(dir, fmt.Sprintf("out-%v.csv", traced))
		// fig10's columns (accuracy, mnc, s3) are all seed-determined; other
		// figures carry wall-clock columns that differ across any two runs.
		args := []string{"-exp", "fig10", "-scale", "0.05", "-reps", "1",
			"-algos", "NSD", "-format", "csv", "-out", path}
		if traced {
			args = append(args, "-trace-out", filepath.Join(dir, "t.jsonl"))
		}
		out, err := run(t, args...)
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if plain, traced := render(false), render(true); plain != traced {
		t.Errorf("-trace-out changed experiment output:\n--- plain ---\n%s\n--- traced ---\n%s", plain, traced)
	}
}

func TestCPUProfileFlag(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "cpu.pprof")
	out, err := run(t, "-exp", "table1", "-cpuprofile", prof, "-out", filepath.Join(dir, "o.txt"))
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	info, err := os.Stat(prof)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("CPU profile file is empty")
	}
}

// TestRunTimeoutFlagDegradesGracefully pins the tentpole's CLI contract: an
// impossibly small per-run budget times out every run, yet the process
// finishes cleanly with an (empty) table instead of hanging or crashing.
func TestRunTimeoutFlagDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	out, err := run(t, "-exp", "fig10", "-scale", "0.05", "-reps", "1",
		"-algos", "NSD", "-run-timeout", "1ns", "-format", "csv", "-out", path)
	if err != nil {
		t.Fatalf("timed-out grid should still exit cleanly: %v\n%s", err, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n")[1:] {
		if strings.Contains(line, "NSD") {
			t.Errorf("run under a 1ns budget still produced a row: %q", line)
		}
	}
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	if out, err := run(t, "-exp", "table1", "-resume"); err == nil {
		t.Errorf("-resume without -checkpoint accepted:\n%s", out)
	}
}

// TestCheckpointResumeByteIdentical is the kill-and-resume acceptance test:
// a checkpointed run interrupted mid-grid and resumed must render exactly
// the same bytes as an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	dir := t.TempDir()
	// fig10's columns (accuracy, mnc, s3) are all seed-determined, so the
	// whole file must match byte-for-byte.
	argsFor := func(outPath string, extra ...string) []string {
		base := []string{"-exp", "fig10", "-scale", "0.05", "-reps", "1",
			"-algos", "NSD,IsoRank", "-format", "csv", "-out", outPath}
		return append(base, extra...)
	}
	refPath := filepath.Join(dir, "ref.csv")
	if out, err := run(t, argsFor(refPath)...); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	// Start a checkpointed run and interrupt it once the journal holds some
	// completed work (if the run wins the race and finishes first, resume
	// degenerates to a full replay — still a valid check).
	ckpt := filepath.Join(dir, "run.ckpt")
	killedOut := filepath.Join(dir, "killed.csv")
	cmd := exec.Command(os.Args[0], argsFor(killedOut, "-checkpoint", ckpt)...)
	cmd.Env = append(os.Environ(), "RUN_ALIGNBENCH=1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if data, err := os.ReadFile(ckpt); err == nil && strings.Count(string(data), "\n") >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Signal(os.Interrupt)
	cmd.Wait() // exit status depends on whether the interrupt won the race

	resumedPath := filepath.Join(dir, "resumed.csv")
	if out, err := run(t, argsFor(resumedPath, "-checkpoint", ckpt, "-resume")...); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out)
	}
	resumed, err := os.ReadFile(resumedPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumed) != string(ref) {
		t.Errorf("resumed output differs from uninterrupted run:\n--- reference ---\n%s\n--- resumed ---\n%s", ref, resumed)
	}

	// A second resume over the now-complete journal is a pure replay and
	// must also be byte-identical.
	replayPath := filepath.Join(dir, "replay.csv")
	if out, err := run(t, argsFor(replayPath, "-checkpoint", ckpt, "-resume")...); err != nil {
		t.Fatalf("replay run: %v\n%s", err, out)
	}
	replay, err := os.ReadFile(replayPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(replay) != string(ref) {
		t.Errorf("journal replay differs from uninterrupted run")
	}
}

// TestCheckpointHeaderGuardsOptions asserts resuming under different options
// is refused rather than silently mixing incompatible results.
func TestCheckpointHeaderGuardsOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	if out, err := run(t, "-exp", "fig10", "-scale", "0.05", "-reps", "1",
		"-algos", "NSD", "-checkpoint", ckpt, "-out", filepath.Join(dir, "a.txt")); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if out, err := run(t, "-exp", "fig10", "-scale", "0.05", "-reps", "1",
		"-algos", "NSD", "-seed", "43", "-checkpoint", ckpt, "-resume",
		"-out", filepath.Join(dir, "b.txt")); err == nil {
		t.Errorf("resume with a different seed accepted:\n%s", out)
	}
}
