// Command alignbench regenerates the tables and figures of Skitsas et al.,
// "Comprehensive Evaluation of Algorithms for Unrestricted Graph Alignment"
// (EDBT 2023).
//
// Usage:
//
//	alignbench -list
//	alignbench -exp fig2 [-scale 0.2] [-reps 3] [-algos CONE,GRASP] [-seed 42] [-workers 0] [-v]
//	alignbench -all [-scale 0.1]
//
// Runs within each experiment cell fan out across -workers goroutines
// (0 means one per CPU). Results are byte-identical for any worker count at
// the same -seed: every noisy instance draws from its own derived RNG, so
// no random stream depends on scheduling order.
//
// Results are printed as aligned text tables; -out writes them to a file
// instead. Scale 1.0 reproduces the paper's exact sizes (slow on a laptop);
// the default 0.2 keeps every experiment tractable while preserving the
// comparative shape of the results.
//
// Fault tolerance (all off by default):
//
//	-run-timeout 30s       cancel any single run over budget; the cell is
//	                       marked failed, the rest of the grid completes
//	-checkpoint run.ckpt   journal each completed (cell, rep) run as JSONL
//	-resume                skip runs already journaled in -checkpoint
//
// Ctrl-C cancels cooperatively: in-flight runs stop at their next iteration
// boundary, the journal stays valid, and rerunning with -resume continues
// where the interrupted invocation left off, reproducing byte-identical
// output.
//
// Performance (off by default):
//
//	-cache-budget 512MiB   share per-graph artifacts (spectra, embeddings,
//	                       graphlet counts) across the algorithms and reps of
//	                       a run, LRU-bounded to the given size; output is
//	                       byte-identical with the cache on or off
//	-assign-topk 10        sparse assignment: reduce each similarity to
//	                       per-row top-k candidates (k-NN over embeddings for
//	                       REGAL/CONE/GRASP, factor-space scoring for
//	                       NSD/LREA) and solve with sparse NN/SG or the
//	                       ε-scaling auction instead of dense JV/MWM —
//	                       the one performance knob that can change results
//	                       (deterministically; see DESIGN.md §11). 0 = off,
//	                       byte-identical to the dense pipeline.
//	-partitions 8          partition-align-stitch sharding: co-partition the
//	                       two graphs into that many matched cluster pairs,
//	                       align each pair independently (fresh aligner per
//	                       shard, shards fanned across -workers), stitch the
//	                       shard mappings and re-bid the boundary through the
//	                       auction solver. Trades a bounded amount of accuracy
//	                       for memory and scale (see DESIGN.md §15). 0 = off,
//	                       byte-identical to the monolithic path.
//
// Observability (all off by default; none of these affect the results):
//
//	-trace-out run.jsonl   stream structured span/metric events as JSONL
//	-cpuprofile cpu.pprof  write a CPU profile for the whole invocation
//	-memprofile mem.pprof  write a heap profile at exit
//	-debug-addr :6060      serve /debug/pprof/ and /debug/vars while running
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"graphalign"
	"graphalign/internal/cache"
	"graphalign/internal/core"
	"graphalign/internal/obsv"
	"graphalign/internal/parallel"
)

func main() {
	if err := runCLI(); err != nil {
		fmt.Fprintln(os.Stderr, "alignbench:", err)
		os.Exit(1)
	}
}

// runCLI holds the whole program so deferred cleanups (profiles, trace
// files) fire on every exit path; main translates its error into the exit
// status.
func runCLI() error {
	var (
		expID       = flag.String("exp", "", "experiment id (fig1..fig16, table1, table3, ablation-*)")
		list        = flag.Bool("list", false, "list available experiments")
		all         = flag.Bool("all", false, "run every experiment")
		scale       = flag.Float64("scale", 0.2, "graph-size scale relative to the paper (0 < s <= 1)")
		reps        = flag.Int("reps", 3, "noisy instances averaged per point")
		algos       = flag.String("algos", "", "comma-separated algorithm subset (default: all nine)")
		seed        = flag.Int64("seed", 42, "random seed")
		verbose     = flag.Bool("v", false, "print progress lines")
		outPath     = flag.String("out", "", "write results to this file instead of stdout")
		budget      = flag.Duration("budget", 2*time.Minute, "per-run budget for scalability sweeps")
		format      = flag.String("format", "text", "output format: text or csv")
		workers     = flag.Int("workers", 0, "concurrent runs per experiment cell (0 = one per CPU, 1 = sequential)")
		runTimeout  = flag.Duration("run-timeout", 0, "wall-clock budget per algorithm run (0 = off); over-budget runs are marked failed, the rest of the grid completes")
		cacheBudget = flag.String("cache-budget", "", "share per-graph artifacts (spectra, embeddings, graphlet counts) across algorithms and reps, capped at this size (e.g. 512MiB, 1GB; 0 = off); results are byte-identical either way")
		assignTopK  = flag.Int("assign-topk", 0, "sparse assignment pipeline: per-row top-k candidate generation (k-NN over embeddings, factor-space scoring for NSD/LREA) + sparse solvers (auction for JV/MWM); 0 = off (dense, byte-identical to default)")
		partitions  = flag.Int("partitions", 0, "partition-align-stitch sharding: co-partition each instance into this many matched cluster pairs, align shards independently and stitch with boundary refinement; 0 = off (monolithic, byte-identical to default)")
		ckptPath    = flag.String("checkpoint", "", "journal completed runs to this JSONL file")
		resume      = flag.Bool("resume", false, "skip runs already journaled in -checkpoint")
		traceOut    = flag.String("trace-out", "", "write span/metric events as JSONL to this file")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *list {
		for _, id := range core.IDs() {
			e, _ := core.Get(id)
			fmt.Printf("%-22s %s\n", id, e.Title)
		}
		return nil
	}

	opts := core.DefaultOptions(graphalign.NewAligner)
	opts.Scale = *scale
	opts.Reps = *reps
	opts.Seed = *seed
	opts.PerRunBudget = *budget
	opts.Workers = *workers
	if *algos != "" {
		opts.Algorithms = strings.Split(*algos, ",")
		for i := range opts.Algorithms {
			opts.Algorithms[i] = strings.TrimSpace(opts.Algorithms[i])
		}
	}
	opts.RunTimeout = *runTimeout
	opts.AssignTopK = *assignTopK
	opts.Partitions = *partitions
	if *cacheBudget != "" {
		n, err := cache.ParseBytes(*cacheBudget)
		if err != nil {
			return err
		}
		opts.CacheBudgetBytes = n
	}

	// Ctrl-C (or SIGTERM) cancels cooperatively: workers stop claiming new
	// runs, in-flight runs return at their next iteration boundary, and the
	// checkpoint journal stays valid for -resume.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	opts.Ctx = ctx

	if *resume && *ckptPath == "" {
		return errors.New("-resume requires -checkpoint")
	}
	if *ckptPath != "" {
		ck, err := core.OpenCheckpoint(*ckptPath, opts, *resume)
		if err != nil {
			return err
		}
		defer ck.Close()
		opts.Checkpoint = ck
	}

	// Observability wiring. With every flag off, tracer stays nil and the
	// run is byte-identical to an uninstrumented build.
	var tracer *obsv.Tracer
	var traceSink *obsv.WriterSink
	reg := obsv.NewRegistry()
	observing := *traceOut != "" || *debugAddr != ""
	if observing || *verbose {
		tracer = obsv.New().SetRegistry(reg).SetTraceID(obsv.NewTraceID("alignbench"))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		traceSink = obsv.NewWriterSink(f)
		tracer.AddSink(traceSink)
	}
	if *verbose {
		tracer.AddSink(obsv.ProgressFunc(func(msg string) {
			fmt.Fprintln(os.Stderr, msg)
		}))
	}
	if *debugAddr != "" {
		srv, addr, err := obsv.StartDebugServer(*debugAddr, reg)
		if err != nil {
			return err
		}
		// Graceful drain: an in-flight scrape (profile, collector read)
		// finishes before the process exits rather than being cut off.
		defer obsv.ShutdownServer(srv, 2*time.Second)
		fmt.Fprintf(os.Stderr, "alignbench: debug server on http://%s/debug/pprof/\n", addr)
	}
	if observing {
		onStart, onStop := obsv.PoolHooks(reg)
		parallel.SetHooks(onStart, onStop)
		defer parallel.SetHooks(nil, nil)
		stop := obsv.StartRuntimeSampler(tracer, time.Second)
		defer stop()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "alignbench: heap profile:", err)
			}
			f.Close()
		}()
	}
	opts.Tracer = tracer

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "alignbench:", cerr)
			}
		}()
		out = f
	}

	var ids []string
	switch {
	case *all:
		ids = core.IDs()
	case *expID != "":
		ids = []string{*expID}
	default:
		fmt.Fprintln(os.Stderr, "alignbench: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	// One trace_meta header per invocation: the knobs a trace analyzer needs
	// to interpret the numbers. Nil-safe when tracing is off.
	tracer.EmitTraceMeta(map[string]any{
		"cmd":         "alignbench",
		"exp":         strings.Join(ids, ","),
		"seed":        *seed,
		"scale":       *scale,
		"reps":        *reps,
		"workers":     *workers,
		"assign_topk": *assignTopK,
		"partitions":  *partitions,
		"go":          runtime.Version(),
		"gomaxprocs":  runtime.GOMAXPROCS(0),
	})

	for _, id := range ids {
		e, err := core.Get(id)
		if err != nil {
			return err
		}
		start := time.Now()
		table, err := core.RunExperiment(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		switch *format {
		case "csv":
			if err := table.RenderCSV(out); err != nil {
				return err
			}
		case "text":
			fmt.Fprintf(out, "# %s — %s\n", e.ID, e.Title)
			if err := table.Render(out); err != nil {
				return err
			}
			fmt.Fprintf(out, "(completed in %s)\n\n", time.Since(start).Round(time.Millisecond))
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		if ctx.Err() != nil {
			break
		}
	}
	tracer.EmitMetrics()
	if traceSink != nil {
		if err := traceSink.Err(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	if err := opts.Checkpoint.Err(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if ctx.Err() != nil {
		if *ckptPath != "" {
			fmt.Fprintf(os.Stderr, "alignbench: interrupted; rerun with -checkpoint %s -resume to continue\n", *ckptPath)
		}
		return errors.New("interrupted")
	}
	return nil
}
