// Command alignbench regenerates the tables and figures of Skitsas et al.,
// "Comprehensive Evaluation of Algorithms for Unrestricted Graph Alignment"
// (EDBT 2023).
//
// Usage:
//
//	alignbench -list
//	alignbench -exp fig2 [-scale 0.2] [-reps 3] [-algos CONE,GRASP] [-seed 42] [-workers 0] [-v]
//	alignbench -all [-scale 0.1]
//
// Runs within each experiment cell fan out across -workers goroutines
// (0 means one per CPU). Results are byte-identical for any worker count at
// the same -seed: every noisy instance draws from its own derived RNG, so
// no random stream depends on scheduling order.
//
// Results are printed as aligned text tables; -out writes them to a file
// instead. Scale 1.0 reproduces the paper's exact sizes (slow on a laptop);
// the default 0.2 keeps every experiment tractable while preserving the
// comparative shape of the results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"graphalign"
	"graphalign/internal/core"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id (fig1..fig16, table1, table3, ablation-*)")
		list    = flag.Bool("list", false, "list available experiments")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 0.2, "graph-size scale relative to the paper (0 < s <= 1)")
		reps    = flag.Int("reps", 3, "noisy instances averaged per point")
		algos   = flag.String("algos", "", "comma-separated algorithm subset (default: all nine)")
		seed    = flag.Int64("seed", 42, "random seed")
		verbose = flag.Bool("v", false, "print progress lines")
		outPath = flag.String("out", "", "write results to this file instead of stdout")
		budget  = flag.Duration("budget", 2*time.Minute, "per-run budget for scalability sweeps")
		format  = flag.String("format", "text", "output format: text or csv")
		workers = flag.Int("workers", 0, "concurrent runs per experiment cell (0 = one per CPU, 1 = sequential)")
	)
	flag.Parse()

	if *list {
		for _, id := range core.IDs() {
			e, _ := core.Get(id)
			fmt.Printf("%-22s %s\n", id, e.Title)
		}
		return
	}

	opts := core.DefaultOptions(graphalign.NewAligner)
	opts.Scale = *scale
	opts.Reps = *reps
	opts.Seed = *seed
	opts.PerRunBudget = *budget
	opts.Workers = *workers
	if *algos != "" {
		opts.Algorithms = strings.Split(*algos, ",")
		for i := range opts.Algorithms {
			opts.Algorithms[i] = strings.TrimSpace(opts.Algorithms[i])
		}
	}
	if *verbose {
		opts.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}

	var ids []string
	switch {
	case *all:
		ids = core.IDs()
	case *expID != "":
		ids = []string{*expID}
	default:
		fmt.Fprintln(os.Stderr, "alignbench: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		e, err := core.Get(id)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		table, err := e.Run(opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		switch *format {
		case "csv":
			if err := table.RenderCSV(out); err != nil {
				fatal(err)
			}
		case "text":
			fmt.Fprintf(out, "# %s — %s\n", e.ID, e.Title)
			if err := table.Render(out); err != nil {
				fatal(err)
			}
			fmt.Fprintf(out, "(completed in %s)\n\n", time.Since(start).Round(time.Millisecond))
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alignbench:", err)
	os.Exit(1)
}
