package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphalign/internal/obsv"
)

// writeTrace renders synthetic runs into a JSONL trace file and returns its
// path. Each entry in simMS is one NSD run whose similarity phase takes that
// many milliseconds.
func writeTrace(t *testing.T, name string, simMS ...int64) string {
	t.Helper()
	ms := int64(1_000_000)
	var b strings.Builder
	var id uint64 = 1
	for _, sim := range simMS {
		events := []obsv.Event{
			{T: 1, Type: "run_start", Name: "NSD", Span: id, Run: id, Trace: "t"},
			{T: 2, Type: "phase", Name: "lanczos", Span: id + 1, Parent: id + 2, Run: id, Trace: "t", DurNS: sim / 2 * ms, Alloc: 100},
			{T: 3, Type: "phase", Name: "similarity", Span: id + 2, Parent: id, Run: id, Trace: "t", DurNS: sim * ms, Alloc: 500},
			{T: 4, Type: "phase", Name: "assign", Span: id + 3, Parent: id, Run: id, Trace: "t", DurNS: 10 * ms, Alloc: 200},
			{T: 5, Type: "run_end", Name: "NSD", Span: id, Run: id, Trace: "t", DurNS: (sim + 11) * ms, Alloc: 900},
		}
		for _, e := range events {
			raw, err := json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(raw)
			b.WriteByte('\n')
		}
		id += 10
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarySubcommand(t *testing.T) {
	trace := writeTrace(t, "trace.jsonl", 20, 40, 60)
	var out, errs bytes.Buffer
	if code := run([]string{"summary", trace}, &out, &errs); code != 0 {
		t.Fatalf("summary exit = %d, stderr: %s", code, errs.String())
	}
	text := out.String()
	for _, want := range []string{"## runs", "## phases", "## critical paths", "NSD", "similarity", "lanczos", "assign"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary output missing %q:\n%s", want, text)
		}
	}
	// p50 of {20,40,60}ms similarity is 40ms.
	if !strings.Contains(text, "40ms") {
		t.Errorf("summary output missing the 40ms p50:\n%s", text)
	}
}

func TestSummaryFold(t *testing.T) {
	trace := writeTrace(t, "trace.jsonl", 20)
	var out, errs bytes.Buffer
	if code := run([]string{"summary", "-fold", trace}, &out, &errs); code != 0 {
		t.Fatalf("fold exit = %d, stderr: %s", code, errs.String())
	}
	// similarity self = 20-10 = 10ms = 10000us.
	if !strings.Contains(out.String(), "NSD;similarity 10000\n") {
		t.Errorf("folded output missing NSD;similarity stack:\n%s", out.String())
	}
}

// TestDiffExitsNonzeroOnInjectedRegression is the acceptance criterion:
// a ≥20% phase regression must fail the diff with exit status 1.
func TestDiffExitsNonzeroOnInjectedRegression(t *testing.T) {
	before := writeTrace(t, "before.jsonl", 100, 100, 100)
	after := writeTrace(t, "after.jsonl", 130, 130, 130) // +30%

	var out, errs bytes.Buffer
	code := run([]string{"diff", before, after}, &out, &errs)
	if code != 1 {
		t.Fatalf("diff exit = %d, want 1 for a 30%% regression\nstdout: %s\nstderr: %s",
			code, out.String(), errs.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("diff output missing REGRESSED verdict:\n%s", out.String())
	}
	if !strings.Contains(errs.String(), "regressed") {
		t.Errorf("diff stderr missing regression note: %s", errs.String())
	}
}

func TestDiffCleanOnIdenticalTraces(t *testing.T) {
	a := writeTrace(t, "a.jsonl", 100, 100)
	b := writeTrace(t, "b.jsonl", 100, 100)
	var out, errs bytes.Buffer
	if code := run([]string{"diff", a, b}, &out, &errs); code != 0 {
		t.Fatalf("self-diff exit = %d, stderr: %s", code, errs.String())
	}
	if strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("self-diff flagged a regression:\n%s", out.String())
	}
}

func TestDiffRespectsThresholdFlag(t *testing.T) {
	before := writeTrace(t, "before.jsonl", 100)
	after := writeTrace(t, "after.jsonl", 130)
	var out, errs bytes.Buffer
	// At a 50% threshold, a 30% slowdown passes.
	if code := run([]string{"diff", "-threshold", "0.5", before, after}, &out, &errs); code != 0 {
		t.Fatalf("diff -threshold 0.5 exit = %d, want 0", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run(nil, &out, &errs); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{"nope"}, &out, &errs); code != 2 {
		t.Errorf("unknown subcommand exit = %d, want 2", code)
	}
	if code := run([]string{"diff", "only-one.jsonl"}, &out, &errs); code != 2 {
		t.Errorf("diff with one file exit = %d, want 2", code)
	}
	if code := run([]string{"summary", "/nonexistent/trace.jsonl"}, &out, &errs); code != 2 {
		t.Errorf("summary on missing file exit = %d, want 2", code)
	}
	if code := run([]string{"help"}, &out, &errs); code != 0 {
		t.Errorf("help exit = %d, want 0", code)
	}
}

// writeHistory renders bench-history lines; each entry maps benchmark name
// to [ns_per_op, allocs_per_op].
func writeHistory(t *testing.T, entries ...map[string][2]float64) string {
	t.Helper()
	var b strings.Builder
	for i, e := range entries {
		line := map[string]any{
			"_meta": map[string]any{"commit": fmt.Sprintf("c%d", i), "go": "go1.24", "gomaxprocs": 8},
		}
		for name, v := range e {
			line[name] = map[string]float64{"ns_per_op": v[0], "allocs_per_op": v[1]}
		}
		raw, err := json.Marshal(line)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(raw)
		b.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchFlagsNsRegression(t *testing.T) {
	hist := writeHistory(t,
		map[string][2]float64{"BenchmarkAuction/n=1000": {1000, 50}},
		map[string][2]float64{"BenchmarkAuction/n=1000": {2000, 50}}, // 2x > 1.5x tolerance
	)
	var out, errs bytes.Buffer
	if code := run([]string{"bench", hist}, &out, &errs); code != 1 {
		t.Fatalf("bench exit = %d, want 1 for a 2x ns/op regression\nstdout: %s\nstderr: %s",
			code, out.String(), errs.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("bench output missing REGRESSED:\n%s", out.String())
	}
}

func TestBenchFlagsAllocRegression(t *testing.T) {
	hist := writeHistory(t,
		map[string][2]float64{"BenchmarkAuction/n=1000": {1000, 50}},
		map[string][2]float64{"BenchmarkAuction/n=1000": {1000, 100}}, // 2x allocs > 1.2x
	)
	var out, errs bytes.Buffer
	if code := run([]string{"bench", hist}, &out, &errs); code != 1 {
		t.Fatalf("bench exit = %d, want 1 for a 2x allocs/op regression", code)
	}
}

func TestBenchPassesWithinTolerance(t *testing.T) {
	hist := writeHistory(t,
		map[string][2]float64{"BenchmarkAuction/n=1000": {1000, 50}, "BenchmarkTopK/k=4": {500, 10}},
		map[string][2]float64{"BenchmarkAuction/n=1000": {1200, 50}, "BenchmarkTopK/k=4": {480, 10}},
	)
	var out, errs bytes.Buffer
	if code := run([]string{"bench", hist}, &out, &errs); code != 0 {
		t.Fatalf("bench exit = %d, want 0 within tolerance\nstdout: %s\nstderr: %s",
			code, out.String(), errs.String())
	}
	// Trajectory shows both entries' commits and both benchmarks.
	for _, want := range []string{"c0", "c1", "BenchmarkAuction/n=1000", "BenchmarkTopK/k=4"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("bench output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBenchSingleEntry(t *testing.T) {
	hist := writeHistory(t, map[string][2]float64{"BenchmarkAuction": {1000, 50}})
	var out, errs bytes.Buffer
	if code := run([]string{"bench", hist}, &out, &errs); code != 0 {
		t.Fatalf("single-entry bench exit = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "nothing to diff") {
		t.Errorf("single-entry bench should say nothing to diff:\n%s", out.String())
	}
}

func TestBenchEmptyHistoryIsUsageError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errs bytes.Buffer
	if code := run([]string{"bench", path}, &out, &errs); code != 2 {
		t.Errorf("empty history exit = %d, want 2", code)
	}
}
