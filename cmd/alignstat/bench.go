package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// benchEntry is one line of BENCH_history.jsonl: the object written by
// scripts/bench_assign.sh — a "_meta" header plus a flat map of benchmark
// name to measurements.
type benchEntry struct {
	Meta    benchMeta
	Benches map[string]benchPoint
}

type benchMeta struct {
	Commit     string `json:"commit"`
	Go         string `json:"go"`
	GoMaxProcs int    `json:"gomaxprocs"`
}

type benchPoint struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// readBenchHistory parses a BENCH_history.jsonl stream. The torn-tail rule
// matches trace files: one partial final line is dropped, malformed
// interior lines are an error.
func readBenchHistory(r io.Reader) ([]benchEntry, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var entries []benchEntry
	var pendingErr error
	var pendingLine int
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return nil, err
		}
		text := strings.TrimSpace(string(raw))
		if text != "" {
			line++
			if pendingErr != nil {
				return nil, fmt.Errorf("bench history line %d: %w", pendingLine, pendingErr)
			}
			entry, perr := parseBenchEntry([]byte(text))
			if perr != nil {
				pendingErr, pendingLine = perr, line
			} else {
				entries = append(entries, entry)
			}
		}
		if atEOF {
			break
		}
	}
	return entries, nil
}

// parseBenchEntry splits the "_meta" key from the benchmark map.
func parseBenchEntry(raw []byte) (benchEntry, error) {
	var all map[string]json.RawMessage
	if err := json.Unmarshal(raw, &all); err != nil {
		return benchEntry{}, err
	}
	entry := benchEntry{Benches: make(map[string]benchPoint, len(all))}
	for name, v := range all {
		if name == "_meta" {
			if err := json.Unmarshal(v, &entry.Meta); err != nil {
				return benchEntry{}, fmt.Errorf("_meta: %w", err)
			}
			continue
		}
		var p benchPoint
		if err := json.Unmarshal(v, &p); err != nil {
			return benchEntry{}, fmt.Errorf("%s: %w", name, err)
		}
		entry.Benches[name] = p
	}
	return entry, nil
}

func runBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tolerance := fs.Float64("tolerance", 1.5, "max ns/op ratio (latest/previous) before failing")
	allocTol := fs.Float64("alloc-tolerance", 1.2, "max allocs/op ratio before failing")
	last := fs.Int("last", 8, "history entries to show in the trajectory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "alignstat bench: need exactly one BENCH_history.jsonl file")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "alignstat:", err)
		return 2
	}
	defer f.Close()
	entries, err := readBenchHistory(f)
	if err != nil {
		fmt.Fprintln(stderr, "alignstat:", err)
		return 2
	}
	if len(entries) == 0 {
		fmt.Fprintln(stderr, "alignstat bench: empty history")
		return 2
	}

	writeBenchTrajectory(stdout, entries, *last)

	if len(entries) < 2 {
		fmt.Fprintln(stdout, "\nonly one history entry: nothing to diff")
		return 0
	}
	prev, latest := entries[len(entries)-2], entries[len(entries)-1]
	regressions := diffBenchEntries(stdout, stderr, prev, latest, *tolerance, *allocTol)
	if regressions > 0 {
		fmt.Fprintf(stderr, "alignstat bench: %d benchmark(s) regressed (ns/op tolerance %.2fx, allocs %.2fx)\n",
			regressions, *tolerance, *allocTol)
		return 1
	}
	return 0
}

// writeBenchTrajectory prints ns/op per benchmark across the last n history
// entries, columns labeled by commit.
func writeBenchTrajectory(w io.Writer, entries []benchEntry, n int) {
	if n > 0 && len(entries) > n {
		entries = entries[len(entries)-n:]
	}
	fmt.Fprintf(w, "# bench history: %d entr%s shown\n", len(entries), plural(len(entries), "y", "ies"))

	// Benchmarks present in any entry, sorted.
	names := map[string]bool{}
	for _, e := range entries {
		for name := range e.Benches {
			names[name] = true
		}
	}
	fmt.Fprintf(w, "%-46s", "benchmark (ns/op)")
	for _, e := range entries {
		fmt.Fprintf(w, " %12s", trim(e.Meta.Commit, 12))
	}
	fmt.Fprintln(w)
	for _, name := range sortedKeys(names) {
		fmt.Fprintf(w, "%-46s", trim(name, 46))
		for _, e := range entries {
			if p, ok := e.Benches[name]; ok {
				fmt.Fprintf(w, " %12.0f", p.NsPerOp)
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// diffBenchEntries compares the two most recent entries benchmark by
// benchmark and reports the number of regressions beyond tolerance.
func diffBenchEntries(stdout, stderr io.Writer, prev, latest benchEntry, tolerance, allocTol float64) int {
	if prev.Meta.Go != latest.Meta.Go || prev.Meta.GoMaxProcs != latest.Meta.GoMaxProcs {
		fmt.Fprintf(stderr, "alignstat bench: warning: comparing %s/GOMAXPROCS=%d against %s/GOMAXPROCS=%d — treat time ratios with care\n",
			prev.Meta.Go, prev.Meta.GoMaxProcs, latest.Meta.Go, latest.Meta.GoMaxProcs)
	}
	fmt.Fprintf(stdout, "\n# latest diff: %s -> %s\n", prev.Meta.Commit, latest.Meta.Commit)
	fmt.Fprintf(stdout, "%-46s %12s %12s %8s %10s %8s %s\n",
		"benchmark", "old ns/op", "new ns/op", "ratio", "allocs", "ratio", "verdict")
	regressions := 0
	for _, name := range sortedKeys(latest.Benches) {
		np := latest.Benches[name]
		op, ok := prev.Benches[name]
		if !ok {
			fmt.Fprintf(stdout, "%-46s %12s %12.0f %8s %10.0f %8s %s\n",
				trim(name, 46), "-", np.NsPerOp, "-", np.AllocsPerOp, "-", "new")
			continue
		}
		nsRatio := ratio(np.NsPerOp, op.NsPerOp)
		allocRatio := ratio(np.AllocsPerOp, op.AllocsPerOp)
		verdict := "ok"
		if (nsRatio > tolerance) || (allocRatio > allocTol) {
			verdict = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(stdout, "%-46s %12.0f %12.0f %7.2fx %10.0f %7.2fx %s\n",
			trim(name, 46), op.NsPerOp, np.NsPerOp, nsRatio, np.AllocsPerOp, allocRatio, verdict)
	}
	for _, name := range sortedKeys(prev.Benches) {
		if _, ok := latest.Benches[name]; !ok {
			fmt.Fprintf(stdout, "%-46s %12.0f %12s %8s %10s %8s %s\n",
				trim(name, 46), prev.Benches[name].NsPerOp, "-", "-", "-", "-", "removed")
		}
	}
	return regressions
}

// ratio divides guarding zero denominators: a measurement that was zero
// before cannot regress by ratio.
func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
