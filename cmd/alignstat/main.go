// Command alignstat analyzes the observability artifacts of this
// repository: the JSONL trace files written by alignbench/alignrun
// (-trace-out) and the benchmark history written by scripts/bench_history.sh.
//
// Usage:
//
//	alignstat summary [-paths 5] [-fold] trace.jsonl...
//	alignstat diff [-threshold 0.2] [-min 1ms] old.jsonl new.jsonl
//	alignstat bench [-tolerance 1.5] [-alloc-tolerance 1.2] [-last 8] BENCH_history.jsonl
//
// summary aggregates one or more trace files into per-algorithm/per-phase
// tables (count, total and self wall time, exact p50/p95/p99 over span
// durations, allocation deltas) plus the critical paths of the slowest
// runs; -fold instead emits flamegraph-ready folded stacks
// ("algo;phase;... microseconds") for flamegraph.pl, inferno or speedscope.
//
// diff compares two traces phase by phase on p50 duration and exits with
// status 1 when any phase slowed down beyond the threshold — the CI gate
// for performance PRs. Phases faster than -min in both traces are ignored
// as scheduler noise.
//
// bench renders the ns/op trajectory of every benchmark across the history
// file and compares the two most recent entries per benchmark, exiting
// with status 1 when ns/op or allocs/op regressed beyond tolerance.
//
// Exit status: 0 clean, 1 regression detected (diff and bench), 2 usage or
// input error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"graphalign/internal/obsv/tracefile"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommands; it exists so tests can drive the CLI
// end-to-end with captured output.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "summary":
		return runSummary(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "bench":
		return runBench(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "alignstat: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  alignstat summary [-paths N] [-fold] trace.jsonl...
  alignstat diff [-threshold 0.2] [-min 1ms] old.jsonl new.jsonl
  alignstat bench [-tolerance 1.5] [-alloc-tolerance 1.2] [-last N] BENCH_history.jsonl
`)
}

func runSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	paths := fs.Int("paths", 5, "critical paths to print (slowest runs first)")
	fold := fs.Bool("fold", false, "emit flamegraph-ready folded stacks instead of tables")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "alignstat summary: need at least one trace file")
		return 2
	}
	trace, err := tracefile.ReadFiles(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "alignstat:", err)
		return 2
	}
	if *fold {
		if err := tracefile.WriteFolded(stdout, trace); err != nil {
			fmt.Fprintln(stderr, "alignstat:", err)
			return 2
		}
		return 0
	}
	writeSummary(stdout, tracefile.Summarize(trace), fs.NArg(), *paths)
	return 0
}

// writeSummary renders the aggregate tables.
func writeSummary(w io.Writer, sum *tracefile.Summary, files, maxPaths int) {
	fmt.Fprintf(w, "# trace summary: %d file(s), %d events, %d torn tail(s)\n",
		files, sum.Events, sum.TornTail)
	for _, trace := range sortedKeys(sum.Meta) {
		fmt.Fprintf(w, "# meta %s: %s\n", trace, metaLine(sum.Meta[trace]))
	}

	fmt.Fprintf(w, "\n## runs\n")
	fmt.Fprintf(w, "%-10s %6s %5s %6s %12s %10s %10s %10s %12s\n",
		"algo", "runs", "errs", "incmpl", "total", "p50", "p95", "p99", "alloc")
	for _, rs := range sum.Runs {
		fmt.Fprintf(w, "%-10s %6d %5d %6d %12s %10s %10s %10s %12s\n",
			rs.Algo, rs.Count, rs.Errors, rs.Incomplete,
			dur(rs.TotalNS), dur(rs.P50()), dur(rs.P95()), dur(rs.P99()), fmtBytes(rs.AllocBytes))
	}

	fmt.Fprintf(w, "\n## phases\n")
	fmt.Fprintf(w, "%-10s %-22s %6s %12s %12s %10s %10s %10s %12s\n",
		"algo", "phase", "count", "total", "self", "p50", "p95", "p99", "alloc")
	for _, ps := range sum.Phases {
		fmt.Fprintf(w, "%-10s %-22s %6d %12s %12s %10s %10s %10s %12s\n",
			ps.Algo, ps.Phase, ps.Count,
			dur(ps.TotalNS), dur(ps.SelfNS),
			dur(ps.P50()), dur(ps.P95()), dur(ps.P99()), fmtBytes(ps.AllocBytes))
	}

	if maxPaths > 0 && len(sum.Paths) > 0 {
		fmt.Fprintf(w, "\n## critical paths (slowest runs)\n")
		n := maxPaths
		if n > len(sum.Paths) {
			n = len(sum.Paths)
		}
		for _, cp := range sum.Paths[:n] {
			fmt.Fprintf(w, "%s %s:", cp.Algo, dur(cp.DurNS))
			for i, step := range cp.Steps {
				sep := " "
				if i > 0 {
					sep = " > "
				}
				fmt.Fprintf(w, "%s%s %s (self %s)", sep, step.Name, dur(step.DurNS), dur(step.SelfNS))
			}
			fmt.Fprintln(w)
		}
	}
}

// metaLine renders one trace's meta fields compactly with sorted keys.
func metaLine(fields map[string]any) string {
	parts := make([]string, 0, len(fields))
	for _, k := range sortedKeys(fields) {
		parts = append(parts, fmt.Sprintf("%s=%v", k, fields[k]))
	}
	return strings.Join(parts, " ")
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.2, "relative p50 slowdown that fails the diff (0.2 = 20%)")
	minDur := fs.Duration("min", time.Millisecond, "ignore phases faster than this in both traces")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "alignstat diff: need exactly two trace files (old new)")
		return 2
	}
	before, err := tracefile.ReadFiles(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "alignstat:", err)
		return 2
	}
	after, err := tracefile.ReadFiles(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "alignstat:", err)
		return 2
	}
	deltas := tracefile.Diff(
		tracefile.Summarize(before), tracefile.Summarize(after),
		tracefile.DiffOptions{Threshold: *threshold, MinNS: minDur.Nanoseconds()},
	)

	fmt.Fprintf(stdout, "%-10s %-22s %10s %10s %8s %s\n", "algo", "phase", "old p50", "new p50", "ratio", "verdict")
	regressions := 0
	for _, d := range deltas {
		verdict := "ok"
		switch {
		case d.OldCount == 0:
			verdict = "new phase"
		case d.NewCount == 0:
			verdict = "removed"
		case d.Regressed:
			verdict = "REGRESSED"
			regressions++
		}
		ratio := "-"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", d.Ratio)
		}
		fmt.Fprintf(stdout, "%-10s %-22s %10s %10s %8s %s\n",
			d.Algo, d.Phase, dur(d.OldP50NS), dur(d.NewP50NS), ratio, verdict)
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "alignstat diff: %d phase(s) regressed beyond %.0f%%\n", regressions, *threshold*100)
		return 1
	}
	return 0
}

// dur formats nanoseconds as a rounded, human-readable duration.
func dur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(time.Nanosecond).String()
}

// fmtBytes formats a byte count with binary prefixes.
func fmtBytes(n int64) string {
	abs := n
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case abs >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case abs >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
