package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// daemon runs the alignd main loop in-process on an ephemeral port and
// hands the test its base URL. stop() triggers the same graceful drain as
// SIGINT/SIGTERM and waits for run() to return.
type daemon struct {
	url  string
	stop func(t *testing.T)
}

func startDaemon(t *testing.T, extraArgs ...string) *daemon {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, extraArgs...)
	runErr := make(chan error, 1)
	go func() {
		err := run(ctx, args, pw)
		pw.Close()
		runErr <- err
	}()

	// First stdout line: "alignd: listening on http://ADDR".
	lineCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 256)
		var line strings.Builder
		for {
			n, err := pr.Read(buf)
			line.Write(buf[:n])
			if s := line.String(); strings.Contains(s, "\n") || err != nil {
				lineCh <- s
				// Keep draining so later writes never block the daemon.
				go io.Copy(io.Discard, pr)
				return
			}
		}
	}()
	var url string
	select {
	case line := <-lineCh:
		i := strings.Index(line, "http://")
		if i < 0 {
			cancel()
			t.Fatalf("startup line %q has no address", line)
		}
		url = strings.TrimSpace(line[i:])
	case err := <-runErr:
		cancel()
		t.Fatalf("daemon exited before printing its address: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never printed its address")
	}

	return &daemon{
		url: url,
		stop: func(t *testing.T) {
			t.Helper()
			cancel()
			select {
			case err := <-runErr:
				if err != nil {
					t.Fatalf("daemon exited with error: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("daemon never drained after cancellation")
			}
		},
	}
}

func pathEdgeList(n int) string {
	var b strings.Builder
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&b, "n%d n%d\n", i, i+1)
	}
	return b.String()
}

type jobView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Result *struct {
		Mapping []int `json:"mapping"`
	} `json:"result"`
}

func submitJob(t *testing.T, url, algo string, n int) jobView {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"algo": algo, "src": pathEdgeList(n), "dst": pathEdgeList(n),
	})
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var v jobView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJob(t *testing.T, url, id string) (jobView, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

// TestDaemonKillAndRestartClean is the end-to-end restart test on real
// sockets: run a job, drain the daemon, start a fresh one — the old job id
// must 404 (nothing resurrected) and new submissions must work immediately.
func TestDaemonKillAndRestartClean(t *testing.T) {
	d := startDaemon(t)
	v := submitJob(t, d.url, "NSD", 12)
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, code := getJob(t, d.url, v.ID)
		if code != http.StatusOK {
			t.Fatalf("status %d polling job", code)
		}
		if got.Status == "done" {
			if got.Result == nil || len(got.Result.Mapping) != 12 {
				t.Fatalf("done without a full mapping: %+v", got.Result)
			}
			break
		}
		if got.Status == "failed" || got.Status == "cancelled" {
			t.Fatalf("job ended %s", got.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	d.stop(t)

	// The port is free again and the new daemon has no memory of the job.
	d2 := startDaemon(t)
	defer d2.stop(t)
	if _, code := getJob(t, d2.url, v.ID); code != http.StatusNotFound {
		t.Fatalf("restarted daemon answered %d for the old job id, want 404", code)
	}
	v2 := submitJob(t, d2.url, "NSD", 12)
	for time.Now().Before(deadline.Add(30 * time.Second)) {
		got, _ := getJob(t, d2.url, v2.ID)
		if got.Status == "done" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job on restarted daemon never finished")
}

// TestDaemonDrainCancelsRunningJobs: stopping the daemon mid-job must still
// return promptly (cooperative cancel), not wait out the job budget.
func TestDaemonDrainCancelsRunningJobs(t *testing.T) {
	d := startDaemon(t, "-timeout", "5m")
	// GRAAL on a largish pair is slow enough to still be running when we
	// pull the plug; the drain must not take anywhere near the job budget.
	v := submitJob(t, d.url, "GRAAL", 600)
	start := time.Now()
	d.stop(t)
	if took := time.Since(start); took > 25*time.Second {
		t.Fatalf("drain took %v — running job was not cancelled cooperatively", took)
	}
	_ = v
}

// TestDaemonBadFlags: flag errors surface as errors, not hangs.
func TestDaemonBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-cache-budget", "wat"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "cache-budget") {
		t.Fatalf("err = %v, want cache-budget parse error", err)
	}
}
