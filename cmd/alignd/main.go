// Command alignd is the alignment-as-a-service daemon: a long-running HTTP
// API over the same library every batch CLI in this repository uses, so a
// result computed by the daemon is byte-identical to the same call made
// through graphalign.Align.
//
// Usage:
//
//	alignd [-addr 127.0.0.1:8080] [-workers 1] [-queue 64]
//	       [-timeout 2m] [-max-timeout 10m] [-job-workers 0]
//	       [-cache-budget 256MiB] [-keep-jobs 1024]
//	       [-max-body 32MiB] [-max-nodes 0] [-max-edges 0]
//	       [-trace-out trace.jsonl] [-debug-addr localhost:6060]
//
// API (JSON; see DESIGN.md §14 for the full contract):
//
//	POST   /v1/jobs             submit an alignment job (202 Accepted, or
//	                            429 + Retry-After when the queue is full);
//	                            "partitions" >= 2 in the body runs the job
//	                            through the partition-align-stitch sharding
//	                            layer (DESIGN.md §15), streaming per-shard
//	                            progress on the events endpoint
//	GET    /v1/jobs             list tracked jobs
//	GET    /v1/jobs/{id}        job status and, once done, the result;
//	                            ?offset=&limit= pages large mappings
//	GET    /v1/jobs/{id}/events JSONL progress stream (?follow=0: snapshot)
//	DELETE /v1/jobs/{id}        cooperative cancel
//	POST   /v1/sessions         create an incremental alignment session
//	                            (cold-aligns synchronously; DESIGN.md §16)
//	GET    /v1/sessions         list live sessions
//	GET    /v1/sessions/{id}    session state, mapping paged as for jobs
//	POST   /v1/sessions/{id}/edits apply edit batches and re-align warm
//	DELETE /v1/sessions/{id}    drop the session
//	GET    /healthz             liveness (503 while shutting down)
//	GET    /metrics             Prometheus text exposition
//
// On startup the daemon prints exactly one line to stdout:
//
//	alignd: listening on http://<bound address>
//
// which, with -addr 127.0.0.1:0, is how scripts discover the ephemeral port.
//
// SIGINT/SIGTERM drain gracefully: the API listener stops accepting and
// finishes in-flight requests, running jobs are cancelled cooperatively,
// queued jobs are finalized as cancelled, and only then does the process
// exit. Jobs are never persisted — a restart starts clean.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphalign"
	"graphalign/internal/cache"
	"graphalign/internal/obsv"
	"graphalign/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "alignd:", err)
		os.Exit(1)
	}
}

// run is the whole daemon, factored so tests can start and stop it
// in-process: it serves until ctx is cancelled, then drains and returns.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("alignd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		workers     = fs.Int("workers", 1, "jobs run concurrently")
		queueSize   = fs.Int("queue", 64, "queued-job capacity; full queues answer 429")
		timeout     = fs.Duration("timeout", 2*time.Minute, "default per-job wall-clock budget")
		maxTimeout  = fs.Duration("max-timeout", 10*time.Minute, "cap on client-requested budgets")
		jobWorkers  = fs.Int("job-workers", 0, "per-job parallel fan-out (0 = one per CPU)")
		cacheBudget = fs.String("cache-budget", "", "shared artifact cache size, e.g. 256MiB (empty = no cache)")
		keepJobs    = fs.Int("keep-jobs", 1024, "terminal jobs retained for GET before the oldest are dropped")
		maxBody     = fs.String("max-body", "32MiB", "request body cap")
		maxNodes    = fs.Int("max-nodes", 0, "per-graph node cap (0 = unlimited)")
		maxEdges    = fs.Int("max-edges", 0, "per-graph edge cap (0 = unlimited)")
		traceOut    = fs.String("trace-out", "", "append JSONL trace events to this file")
		debugAddr   = fs.String("debug-addr", "", "serve net/http/pprof and expvar on this address")
		drain       = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		maxSessions = fs.Int("max-sessions", 16, "live incremental sessions held in memory; full tables answer 429")
		rtSample    = fs.Duration("runtime-sample", 15*time.Second, "runtime gauge sampling interval (heap, goroutines, GC; 0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := obsv.NewRegistry()
	tracer := obsv.New().SetRegistry(reg)
	if *rtSample > 0 {
		// The runtime gauges (graphalign_runtime_heap_bytes / _goroutines /
		// _gc_cycles on /metrics) are what soak tests watch for leaks across
		// hours of sustained traffic.
		stopSampler := obsv.StartRuntimeSampler(tracer, *rtSample)
		defer stopSampler()
	}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		defer f.Close()
		tracer.AddSink(obsv.NewWriterSink(f))
	}

	var cacheBytes int64
	if *cacheBudget != "" {
		n, err := cache.ParseBytes(*cacheBudget)
		if err != nil {
			return fmt.Errorf("cache-budget: %w", err)
		}
		cacheBytes = n
	}
	bodyBytes, err := cache.ParseBytes(*maxBody)
	if err != nil {
		return fmt.Errorf("max-body: %w", err)
	}

	if *debugAddr != "" {
		srv, dbg, err := obsv.StartDebugServer(*debugAddr, reg)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		fmt.Fprintf(stdout, "alignd: debug server on http://%s/debug/pprof/\n", dbg)
		// Drained on exit like the API listener — never fire-and-forget.
		defer obsv.ShutdownServer(srv, 2*time.Second)
	}

	engine, err := serve.New(serve.Options{
		Factory:          graphalign.NewAligner,
		Workers:          *workers,
		QueueSize:        *queueSize,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		JobWorkers:       *jobWorkers,
		CacheBudgetBytes: cacheBytes,
		Tracer:           tracer,
		Registry:         reg,
		KeepJobs:         *keepJobs,
		MaxSessions:      *maxSessions,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: engine.Handler(serve.HTTPOptions{
			MaxBodyBytes: bodyBytes,
			MaxNodes:     *maxNodes,
			MaxEdges:     *maxEdges,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// The one line scripts parse; Listen already succeeded, so the printed
	// address is connectable immediately.
	fmt.Fprintf(stdout, "alignd: listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener failed on its own; still drain the engine so accepted
		// jobs reach terminal states.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		engine.Shutdown(drainCtx)
		return err
	case <-ctx.Done():
	}

	// Graceful drain. The two shutdowns must overlap: http.Server.Shutdown
	// closes the listener immediately but then waits for in-flight requests,
	// and a followed /events stream only ends when its job finalizes — which
	// is the engine shutdown's doing. Engine first alone would kill jobs a
	// just-accepted request is about to observe; HTTP first alone would hang
	// on live event streams for the whole drain budget.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	httpDone := make(chan error, 1)
	go func() { httpDone <- obsv.ShutdownServer(httpSrv, *drain) }()
	engineErr := engine.Shutdown(drainCtx)
	httpErr := <-httpDone
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if httpErr != nil {
		return fmt.Errorf("draining http server: %w", httpErr)
	}
	return engineErr
}
