package graphalign_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"graphalign"
	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/metrics"
	"graphalign/internal/noise"
	"graphalign/internal/partition"
)

// TestPartitionQualityGuardrail is the sharding quality guardrail: a
// fig9-style grid (three aligners x two noise levels on powerlaw-cluster
// graphs) comparing sharded (K=4) against unsharded accuracy. Sharding
// trades accuracy for memory by construction — cross-shard edges are
// invisible to the inner aligners — so the guardrail pins how much of the
// unsharded accuracy the partition layer must retain, per cell, rather than
// asserting parity. The measured grid is written to
// bench_results/partition-accuracy.txt for bench history tracking.
func TestPartitionQualityGuardrail(t *testing.T) {
	if testing.Short() {
		t.Skip("partition quality grid aligns six cells twice each")
	}
	const (
		n = 300
		k = 4
		// maxLoss is the pinned per-cell tolerance: sharded accuracy may
		// trail unsharded by at most this much (absolute). On this grid the
		// measured "loss" is zero or negative in every cell — the boundary
		// re-bid acts as a consensus repair that also fixes inner-aligner
		// mistakes — so a cell that trails by more than 0.1 signals a
		// co-partitioner, stitch, or refinement regression.
		maxLoss = 0.1
		// minAbs is an absolute floor independent of the unsharded
		// baseline; measured sharded accuracy is >= 0.77 in every cell.
		minAbs = 0.5
	)
	algos := []string{"NSD", "REGAL", "IsoRank"}
	levels := []float64{0, 0.05}

	var report []byte
	report = append(report, []byte(fmt.Sprintf("# sharded (K=%d) vs unsharded accuracy, powerlaw-cluster n=%d\n", k, n))...)
	report = append(report, []byte(fmt.Sprintf("%-8s %-6s %10s %10s %8s\n", "algo", "noise", "unsharded", "sharded", "loss"))...)

	for _, name := range algos {
		for _, level := range levels {
			rng := rand.New(rand.NewSource(90210))
			base := gen.PowerlawCluster(n, 3, 0.3, rng)
			p, err := noise.Apply(base, noise.OneWay, level, noise.Options{}, rng)
			if err != nil {
				t.Fatal(err)
			}
			a, err := graphalign.NewAligner(name)
			if err != nil {
				t.Fatal(err)
			}
			mono, err := algo.Align(a, p.Source, p.Target, assign.JonkerVolgenant)
			if err != nil {
				t.Fatalf("%s level %g unsharded: %v", name, level, err)
			}
			monoAcc := metrics.Accuracy(mono, p.TrueMap)

			sharded, _, err := partition.Align(context.Background(),
				func() (algo.Aligner, error) { return graphalign.NewAligner(name) },
				p.Source, p.Target, assign.JonkerVolgenant, partition.Options{K: k})
			if err != nil {
				t.Fatalf("%s level %g sharded: %v", name, level, err)
			}
			shardAcc := metrics.Accuracy(sharded, p.TrueMap)

			loss := monoAcc - shardAcc
			report = append(report, []byte(fmt.Sprintf("%-8s %-6g %10.4f %10.4f %8.4f\n", name, level, monoAcc, shardAcc, loss))...)
			if loss > maxLoss {
				t.Errorf("%s level %g: sharded accuracy %.4f trails unsharded %.4f by %.4f (max loss %.2f)",
					name, level, shardAcc, monoAcc, loss, maxLoss)
			}
			if shardAcc < minAbs {
				t.Errorf("%s level %g: sharded accuracy %.4f below absolute floor %.2f",
					name, level, shardAcc, minAbs)
			}
		}
	}

	if err := os.MkdirAll("bench_results", 0o755); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join("bench_results", "partition-accuracy.txt")
	if err := os.WriteFile(out, report, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, report)
}
