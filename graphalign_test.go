package graphalign

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/noise"
)

func TestAlgorithmsOrder(t *testing.T) {
	want := []string{"IsoRank", "GRAAL", "NSD", "LREA", "REGAL", "GWL", "S-GWL", "CONE", "GRASP"}
	if !reflect.DeepEqual(Algorithms(), want) {
		t.Errorf("Algorithms() = %v", Algorithms())
	}
}

func TestLookupAndRegistry(t *testing.T) {
	for _, name := range Algorithms() {
		info, err := Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Name != name {
			t.Errorf("info name %q != %q", info.Name, name)
		}
		a := info.New()
		if a.Name() != name {
			t.Errorf("aligner name %q != %q", a.Name(), name)
		}
		if a.DefaultAssignment() != info.Assign {
			t.Errorf("%s: registry assign %s != aligner default %s", name, info.Assign, a.DefaultAssignment())
		}
	}
	if _, err := Lookup("Bogus"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := NewAligner("Bogus"); err == nil {
		t.Error("NewAligner accepted unknown name")
	}
}

func TestTable1YearsMatchPaper(t *testing.T) {
	years := map[string]int{
		"IsoRank": 2008, "GRAAL": 2010, "NSD": 2011, "LREA": 2018,
		"REGAL": 2018, "GWL": 2019, "S-GWL": 2019, "CONE": 2020, "GRASP": 2021,
	}
	for name, want := range years {
		info, _ := Lookup(name)
		if info.Year != want {
			t.Errorf("%s year = %d, want %d", name, info.Year, want)
		}
	}
	// IsoRank is the only bio-targeted method in Table 1.
	for _, name := range Algorithms() {
		info, _ := Lookup(name)
		if info.Bio != (name == "IsoRank") {
			t.Errorf("%s bio flag = %v", name, info.Bio)
		}
	}
}

func testPair(t *testing.T, level float64) (src, dst *Graph, trueMap []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	base := gen.PowerlawCluster(70, 3, 0.3, rng)
	p, err := noise.Apply(base, noise.OneWay, level, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return p.Source, p.Target, p.TrueMap
}

func TestAlignEndToEnd(t *testing.T) {
	src, dst, trueMap := testPair(t, 0)
	mapping, err := Align("IsoRank", src, dst, JV)
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(src, dst, mapping, trueMap)
	if s.Accuracy < 0.9 {
		t.Errorf("accuracy %.3f on isomorphic pair", s.Accuracy)
	}
	if s.EC < 0.9 || s.S3 < 0.9 || s.MNC < 0.9 {
		t.Errorf("edge metrics low: %+v", s)
	}
}

func TestAlignDefaultEndToEnd(t *testing.T) {
	src, dst, trueMap := testPair(t, 0)
	mapping, err := AlignDefault("NSD", src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(src, dst, mapping, trueMap).Accuracy; acc < 0.8 {
		t.Errorf("NSD default accuracy %.3f", acc)
	}
}

func TestAlignUnknownAlgorithm(t *testing.T) {
	src, dst, _ := testPair(t, 0)
	if _, err := Align("Nope", src, dst, JV); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestNewGraphAndFileRoundtrip(t *testing.T) {
	g, err := NewGraph(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	if err := WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, labels, err := ReadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 3 || g2.M() != 2 || len(labels) != 3 {
		t.Errorf("roundtrip wrong: n=%d m=%d labels=%v", g2.N(), g2.M(), labels)
	}
	if _, _, err := ReadGraphFile(filepath.Join(dir, "missing.edges")); err == nil {
		t.Error("missing file accepted")
	}
	if err := WriteGraphFile(filepath.Join(dir, "nodir", "g.edges"), g); err == nil {
		t.Error("unwritable path accepted")
	}
	_ = os.Remove(path)
}

func TestAlignMultiple(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := gen.PowerlawCluster(50, 3, 0.3, rng)
	p1, err := noise.Apply(base, noise.OneWay, 0, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := noise.Apply(base, noise.OneWay, 0, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	al, err := AlignMultiple("IsoRank", []*Graph{base, p1.Target, p2.Target}, JV)
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	m, err := al.PairwiseMap(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 50 {
		t.Errorf("pairwise map length %d", len(m))
	}
	if _, err := AlignMultiple("Nope", []*Graph{base, p1.Target}, JV); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAllNineAlignersRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep skipped in -short mode")
	}
	src, dst, trueMap := testPair(t, 0.02)
	for _, name := range Algorithms() {
		mapping, err := Align(name, src, dst, JV)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(mapping) != src.N() {
			t.Errorf("%s: mapping length %d", name, len(mapping))
		}
		acc := Evaluate(src, dst, mapping, trueMap).Accuracy
		if acc < 0.02 {
			t.Errorf("%s: accuracy %.3f is no better than random", name, acc)
		}
	}
}

func TestSubgraphAlignmentAllAlgorithms(t *testing.T) {
	// Source strictly smaller than target: every algorithm must produce a
	// valid injective mapping into the larger graph (the unrestricted
	// problem statement allows |V_A| <= |V_B|).
	if testing.Short() {
		t.Skip("full sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(21))
	dst := gen.PowerlawCluster(70, 3, 0.3, rng)
	// Induce the source on nodes 0..59 of the target.
	keep := make([]int, 60)
	for i := range keep {
		keep[i] = i
	}
	src, _ := graph.InducedSubgraph(dst, keep)
	for _, name := range Algorithms() {
		mapping, err := Align(name, src, dst, JV)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(mapping) != 60 {
			t.Errorf("%s: mapping length %d", name, len(mapping))
			continue
		}
		seen := map[int]bool{}
		for _, v := range mapping {
			if v < 0 || v >= 70 || seen[v] {
				t.Errorf("%s: mapping not injective into target: %v", name, mapping)
				break
			}
			seen[v] = true
		}
	}
}
