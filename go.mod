module graphalign

go 1.24
