#!/usr/bin/env bash
# Runs the incremental-alignment benchmark pair (steady-state warm Apply vs
# cold re-alignment, REGAL + NSD) and writes BENCH_incremental.json:
# a "_meta" header (commit, go version, GOMAXPROCS, instance size, and a
# "speedup" map of aligner -> cold/warm ratio — the acceptance number
# DESIGN.md §16 cites) followed by a flat map of benchmark name ->
# {ns_per_op}. Consumers that iterate the map must skip the "_meta" key;
# the speedup lives inside "_meta" so `alignstat bench` (which treats every
# other key as a benchmark point) ignores it.
#
# Usage: scripts/bench_incremental.sh [output.json]
# From the repo root. INCR_BENCH_N overrides the instance size (default
# 10000); INCR_BENCH_TIME overrides -benchtime (default 3x — each iteration
# is a full 1% edit batch, so time-based benchtime would run for minutes);
# INCR_BENCH_RAW reuses a saved `go test -bench` output file instead of
# re-running the (multi-minute) benchmarks.
set -euo pipefail

out="${1:-BENCH_incremental.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    commit="${commit}-dirty"
fi
gover="$(go env GOVERSION)"
n="${INCR_BENCH_N:-10000}"
benchtime="${INCR_BENCH_TIME:-3x}"

if [ -n "${INCR_BENCH_RAW:-}" ] && [ -s "${INCR_BENCH_RAW}" ]; then
    cat "$INCR_BENCH_RAW" > "$tmp"
else
    INCR_BENCH_N="$n" go test ./internal/incremental -run NONE \
        -bench 'SteadyStateApply|ColdRealign' -benchtime "$benchtime" \
        -timeout 60m -count=1 | tee "$tmp" >&2
fi

awk -v commit="$commit" -v gover="$gover" -v instn="$n" '
BEGIN { n = 0; maxprocs = 1 }
/^Benchmark/ {
    name = $1
    procs = name
    if (sub(/^.*-/, "", procs) && procs + 0 > 0) maxprocs = procs + 0
    sub(/-[0-9]+$/, "", name)       # strip GOMAXPROCS suffix
    ns = ""
    for (i = 2; i <= NF; i++) if ($(i) == "ns/op") ns = $(i - 1)
    if (ns == "") next
    names[n] = name
    lines[n] = "{\"ns_per_op\": " ns "}"
    nsv[name] = ns + 0
    n++
}
END {
    # cold/warm ratio per aligner: the steady-state speedup of the
    # incremental session over a from-scratch re-alignment.
    sep = ""
    speed = ""
    for (i = 0; i < n; i++) {
        name = names[i]
        if (name !~ /^BenchmarkSteadyStateApply\//) continue
        inst = name
        sub(/^BenchmarkSteadyStateApply\//, "", inst)
        cold = "BenchmarkColdRealign/" inst
        if (!(cold in nsv) || nsv[name] == 0) continue
        speed = speed sep "\"" inst "\": " sprintf("%.2f", nsv[cold] / nsv[name])
        sep = ", "
    }
    print "{"
    printf "  \"_meta\": {\"commit\": \"%s\", \"go\": \"%s\", \"gomaxprocs\": %d, \"n\": %d", \
        commit, gover, maxprocs, instn
    if (speed != "") printf ", \"speedup\": {%s}", speed
    printf "}"
    for (i = 0; i < n; i++) printf ",\n  \"%s\": %s", names[i], lines[i]
    print "\n}"
}
' "$tmp" > "$out"

echo "wrote $out" >&2
