#!/usr/bin/env bash
# Runs the large-instance partition-align-stitch benchmark and writes
# BENCH_partition.json: a "_meta" header (commit, go version, GOMAXPROCS,
# wall-clock date of the run is deliberately omitted so reruns diff clean)
# followed by one entry per benchmarked configuration with instance size,
# shard count, wall/similarity/assignment seconds, peak RSS (when the
# kernel exposes it) and the quality scores alignrun reports.
#
# This is the evidence artifact for the n=100k acceptance criterion of the
# partition layer: a graph that size cannot be aligned monolithically on
# commodity memory (the dense similarity matrix alone is 80 GB), but
# completes sharded.
#
# Usage: scripts/bench_partition.sh [output.json]
# From the repo root. Tunables via env: N (nodes, default 100000),
# PARTS (shards, default 32), TOPK (per-shard sparse top-k, default 16),
# ALGO (default NSD), LEVEL (noise level, default 0.01), SEED (default 1).
set -euo pipefail

out="${1:-BENCH_partition.json}"
N="${N:-100000}"
PARTS="${PARTS:-32}"
TOPK="${TOPK:-16}"
ALGO="${ALGO:-NSD}"
LEVEL="${LEVEL:-0.01}"
SEED="${SEED:-1}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    commit="${commit}-dirty"
fi
gover="$(go env GOVERSION)"

go build -o "$workdir/graphgen" ./cmd/graphgen
go build -o "$workdir/alignrun" ./cmd/alignrun

echo "generating PL n=$N (seed $SEED) + one-way noise $LEVEL ..." >&2
"$workdir/graphgen" -model PL -n "$N" -seed "$SEED" -out "$workdir/base.edges"
"$workdir/graphgen" -perturb "$workdir/base.edges" -noise one-way -level "$LEVEL" \
    -seed "$((SEED + 6))" -out "$workdir/noisy.edges" -truth "$workdir/truth.txt"

echo "aligning: $ALGO -partitions $PARTS -topk $TOPK ..." >&2
start_ns="$(date +%s%N)"
"$workdir/alignrun" -algo "$ALGO" -src "$workdir/base.edges" -dst "$workdir/noisy.edges" \
    -truth "$workdir/truth.txt" -partitions "$PARTS" -topk "$TOPK" -q \
    2> "$workdir/metrics.txt" &
pid=$!
# Sample peak RSS from /proc while the run is alive (no GNU time in the
# image); 0 when the filesystem races us at exit.
max_rss_kb=0
while kill -0 "$pid" 2>/dev/null; do
    rss="$(awk '/^VmRSS:/ {print $2}' "/proc/$pid/status" 2>/dev/null || echo 0)"
    if [ -n "$rss" ] && [ "$rss" -gt "$max_rss_kb" ] 2>/dev/null; then
        max_rss_kb="$rss"
    fi
    sleep 0.2
done
wait "$pid"
end_ns="$(date +%s%N)"
wall_s="$(awk -v a="$start_ns" -v b="$end_ns" 'BEGIN { printf "%.2f", (b - a) / 1e9 }')"

cat "$workdir/metrics.txt" >&2

# alignrun's stderr line: algorithm=NSD time=… sim_time=… assign_time=…
# EC=… ICS=… S3=… MNC=… [accuracy=…]
metrics_json="$(awk '
/^algorithm=/ {
    for (i = 1; i <= NF; i++) {
        split($(i), kv, "=")
        m[kv[1]] = kv[2]
    }
}
END {
    printf "\"ec\": %s, \"ics\": %s, \"s3\": %s, \"accuracy\": %s",
        (m["EC"] == "" ? "null" : m["EC"]),
        (m["ICS"] == "" ? "null" : m["ICS"]),
        (m["S3"] == "" ? "null" : m["S3"]),
        (m["accuracy"] == "" ? "null" : m["accuracy"])
}
' "$workdir/metrics.txt")"

edges="$(wc -l < "$workdir/base.edges" | tr -d ' ')"

cat > "$out" <<JSON
{
  "_meta": {"commit": "$commit", "go": "$gover", "gomaxprocs": $(nproc)},
  "partition_align": {
    "algo": "$ALGO",
    "n": $N,
    "edges": $edges,
    "noise_level": $LEVEL,
    "partitions": $PARTS,
    "topk": $TOPK,
    "wall_seconds": $wall_s,
    "max_rss_kb": $max_rss_kb,
    $metrics_json
  }
}
JSON

echo "wrote $out" >&2
