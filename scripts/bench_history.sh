#!/usr/bin/env bash
# Appends one benchmark snapshot to the bench history: runs
# scripts/bench_assign.sh (unless given an existing BENCH_assign.json) and
# appends its object as a single JSONL line to BENCH_history.jsonl, the
# input of `alignstat bench` — trajectory rendering plus regression gating
# on the two most recent entries.
#
# Usage: scripts/bench_history.sh [snapshot.json] [history.jsonl]
# From the repo root. Defaults: BENCH_assign.json BENCH_history.jsonl;
# the snapshot is (re)generated unless REUSE_SNAPSHOT=1 and it exists.
set -euo pipefail

snapshot="${1:-BENCH_assign.json}"
history="${2:-BENCH_history.jsonl}"

if [ "${REUSE_SNAPSHOT:-0}" != "1" ] || [ ! -s "$snapshot" ]; then
    scripts/bench_assign.sh "$snapshot"
fi

# One line per entry: strip the pretty-printed snapshot's newlines. The
# snapshot is machine-written JSON, so whitespace-only collapsing is safe
# (no string values contain newlines).
tr -d '\n' < "$snapshot" >> "$history"
printf '\n' >> "$history"

echo "appended $snapshot to $history ($(wc -l < "$history") entries)" >&2
