#!/usr/bin/env bash
# loadtest.sh — stand up alignd on an ephemeral port, drive it with
# alignload, and leave a BENCH_serve.json report behind.
#
# Usage:
#   scripts/loadtest.sh [jobs] [concurrency] [out.json]
#
# Defaults: 200 jobs, 100 concurrent clients, BENCH_serve.json. The script
# fails (nonzero exit) when any accepted job is dropped, fails, or returns a
# mapping that differs from the direct library call, or when the daemon's
# panic counters are nonzero after the run.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-200}"
CONCURRENCY="${2:-100}"
OUT="${3:-BENCH_serve.json}"
WORKERS="${ALIGND_WORKERS:-2}"
QUEUE="${ALIGND_QUEUE:-256}"

go build -o /tmp/alignd ./cmd/alignd
go build -o /tmp/alignload ./cmd/alignload

STAMP="$(mktemp -d)"
trap 'kill "$DPID" 2>/dev/null || true; wait "$DPID" 2>/dev/null || true; rm -rf "$STAMP"' EXIT

/tmp/alignd -addr 127.0.0.1:0 -workers "$WORKERS" -queue "$QUEUE" \
  -cache-budget 256MiB -job-workers 1 > "$STAMP/alignd.out" 2> "$STAMP/alignd.err" &
DPID=$!

# First stdout line carries the bound address.
URL=""
for _ in $(seq 1 100); do
  URL="$(sed -n 's/^alignd: listening on \(http:\/\/.*\)$/\1/p' "$STAMP/alignd.out" | head -n1)"
  [ -n "$URL" ] && break
  kill -0 "$DPID" 2>/dev/null || { echo "alignd died on startup:" >&2; cat "$STAMP/alignd.err" >&2; exit 1; }
  sleep 0.1
done
[ -n "$URL" ] || { echo "alignd never printed its address" >&2; exit 1; }
echo "alignd up at $URL (pid $DPID)"

/tmp/alignload -url "$URL" -jobs "$JOBS" -concurrency "$CONCURRENCY" \
  -algo NSD -nodes 64 -p 0.1 -pairs 8 -seed 1 -out "$OUT"

# The daemon must have survived the run without a single panic.
METRICS="$(curl -sf "$URL/metrics")"
for counter in serve_jobs_panic_total run_panics_total; do
  bad="$(printf '%s\n' "$METRICS" | awk -v c="graphalign_$counter" '$1 == c && $2+0 > 0')"
  if [ -n "$bad" ]; then
    echo "FAIL: $bad" >&2
    exit 1
  fi
done

# Graceful drain: SIGTERM, then wait for a clean exit.
kill -TERM "$DPID"
wait "$DPID"
trap 'rm -rf "$STAMP"' EXIT
echo "loadtest ok: report in $OUT"
