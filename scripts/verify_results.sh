#!/bin/sh
# Summarize bench_results/ into the per-claim views EXPERIMENTS.md quotes.
# Run after: go test -run XXX -bench . -benchmem .
set -e
cd "$(dirname "$0")/.."

echo "== fig8: accuracy by level per algorithm (mean over datasets)"
awk 'NR>4 {acc[$4" "$3]+=$5; cnt[$4" "$3]++} END {for (k in acc) printf "%s %.3f\n", k, acc[k]/cnt[k]}' \
    bench_results/fig8.txt | sort | awk '{a[$1]=a[$1]" "$3} END {for (k in a) print k, a[k]}' | sort

echo
echo "== fig8: mean accuracy per dataset (all algorithms, all levels)"
awk 'NR>4 {acc[$1]+=$5; cnt[$1]++} END {for (k in acc) printf "%-18s %.3f\n", k, acc[k]/cnt[k]}' \
    bench_results/fig8.txt | sort -k2 -n

echo
echo "== fig9: accuracy vs similarity time per algorithm (mean over levels)"
awk 'NR>4 {acc[$2]+=$3; t[$2]+=$4+0; cnt[$2]++} END {for (k in acc) printf "%-8s acc=%.3f time=%.3fs\n", k, acc[k]/cnt[k], t[k]/cnt[k]}' \
    bench_results/fig9.txt | sort

echo
echo "== fig10: accuracy by fraction per algorithm (mean over datasets)"
awk 'NR>4 {acc[$3" "$2]+=$4; cnt[$3" "$2]++} END {for (k in acc) printf "%s %.3f\n", k, acc[k]/cnt[k]}' \
    bench_results/fig10.txt | sort | awk '{a[$1]=a[$1]" "$3} END {for (k in a) print k, a[k]}' | sort

echo
echo "== fig11: similarity time by n per algorithm"
awk 'NR>4 {print $2, $1, $3}' bench_results/fig11.txt | sort | awk '{a[$1]=a[$1]" "$2":"$3} END {for (k in a) print k, a[k]}' | sort

echo
echo "== fig13: alloc by n per algorithm"
awk 'NR>4 {print $2, $1, $3}' bench_results/fig13.txt | sort | awk '{a[$1]=a[$1]" "$2":"$3} END {for (k in a) print k, a[k]}' | sort

echo
echo "== fig16: constant-degree accuracy by n per algorithm"
awk 'NR>4 && $1=="constant-degree" {print $3, $2, $4}' bench_results/fig16.txt | sort | awk '{a[$1]=a[$1]" "$2":"$3} END {for (k in a) print k, a[k]}' | sort

echo
echo "== table3"
cat bench_results/table3.txt

echo
echo "== ablation-sgwl-beta"
cat bench_results/ablation-sgwl-beta.txt

echo
echo "== ablation-adaptive"
cat bench_results/ablation-adaptive.txt
