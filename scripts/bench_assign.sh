#!/usr/bin/env bash
# Runs the assignment-stage benchmarks and writes BENCH_assign.json:
# a "_meta" header (commit, go version, GOMAXPROCS) followed by a flat map of
# benchmark name -> {ns_per_op, allocs_per_op}. Consumers that iterate the
# map must skip the "_meta" key.
#
# Usage: scripts/bench_assign.sh [output.json]
# From the repo root. Pass -short via GOFLAGS if needed.
set -euo pipefail

out="${1:-BENCH_assign.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    commit="${commit}-dirty"
fi
gover="$(go env GOVERSION)"

go test ./internal/assign -run NONE -bench . -benchmem -count=1 | tee "$tmp" >&2

awk -v commit="$commit" -v gover="$gover" '
BEGIN { n = 0; maxprocs = 1 }
/^Benchmark/ {
    name = $1
    # The -N suffix on the bench name is the GOMAXPROCS the run used;
    # Go omits it entirely when GOMAXPROCS=1, hence the default above.
    procs = name
    if (sub(/^.*-/, "", procs) && procs + 0 > 0) maxprocs = procs + 0
    sub(/-[0-9]+$/, "", name)       # strip GOMAXPROCS suffix
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    names[n] = name
    lines[n] = "{\"ns_per_op\": " ns ", \"allocs_per_op\": " (allocs == "" ? 0 : allocs) "}"
    n++
}
END {
    print "{"
    printf "  \"_meta\": {\"commit\": \"%s\", \"go\": \"%s\", \"gomaxprocs\": %d}", commit, gover, maxprocs
    for (i = 0; i < n; i++) printf ",\n  \"%s\": %s", names[i], lines[i]
    print "\n}"
}
' "$tmp" > "$out"

echo "wrote $out" >&2
