#!/usr/bin/env bash
# Runs the assignment-stage benchmarks and writes BENCH_assign.json:
# a flat map of benchmark name -> {ns_per_op, allocs_per_op}.
#
# Usage: scripts/bench_assign.sh [output.json]
# From the repo root. Pass -short via GOFLAGS if needed.
set -euo pipefail

out="${1:-BENCH_assign.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/assign -run NONE -bench . -benchmem -count=1 | tee "$tmp" >&2

awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)       # strip GOMAXPROCS suffix
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, (allocs == "" ? 0 : allocs)
}
END { print "\n}" }
' "$tmp" > "$out"

echo "wrote $out" >&2
