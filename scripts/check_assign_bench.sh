#!/usr/bin/env bash
# Guards the candidate-generation regression this repo once shipped: the
# embedding k-NN path must stay within 3x of dense top-k selection at the
# largest bench size (the PR that fixed it measured ~1.3x; 3x leaves slack
# for CI-runner noise while still catching an accidental return to the
# allocate-per-query behavior, which was ~11x).
#
# Usage: scripts/check_assign_bench.sh [max_ratio]
# From the repo root. Exits nonzero if TopKEmbedding/n2048 exceeds
# max_ratio x TopKDense/n2048.
set -euo pipefail

max_ratio="${1:-3}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The anchored pattern keeps TopKEmbeddingTree/Wide etc. out of the sample:
# each path element matches independently, so $ closes the function name.
go test ./internal/assign -run NONE -bench 'Benchmark(TopKDense|TopKEmbedding)$/n2048' \
    -benchmem -count=1 | tee "$tmp" >&2

awk -v max="$max_ratio" '
/^BenchmarkTopKDense/     { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") dense = $(i - 1) }
/^BenchmarkTopKEmbedding/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") emb   = $(i - 1) }
END {
    if (dense == "" || emb == "") {
        print "check_assign_bench: missing benchmark output" > "/dev/stderr"
        exit 2
    }
    ratio = emb / dense
    printf "TopKEmbedding/n2048 = %.0f ns/op, TopKDense/n2048 = %.0f ns/op, ratio %.2fx (max %sx)\n", emb, dense, ratio, max
    if (ratio > max) {
        print "check_assign_bench: candidate generation regressed" > "/dev/stderr"
        exit 1
    }
}
' "$tmp"
