#!/bin/sh
# Regenerate the markdown tables EXPERIMENTS.md quotes, from bench_results/.
set -e
cd "$(dirname "$0")/.."

echo "== fig1 markdown table (powerlaw, 2% one-way noise)"
awk 'NR>4 && $1=="powerlaw" && $4=="0.02" {print $2, $3, $5}' bench_results/fig1.txt |
	sort | awk '
	{acc[$1" "$2]=$3; algos[$1]=1}
	END {
		order="IsoRank NSD LREA GWL S-GWL CONE REGAL GRASP GRAAL"
		n=split(order, o, " ")
		print "| algorithm | NN | SG | MWM | JV |"
		print "|---|---|---|---|---|"
		for (i=1; i<=n; i++) {
			a=o[i]
			printf "| %s | %s | %s | %s | %s |\n", a, acc[a" NN"], acc[a" SG"], acc[a" MWM"], acc[a" JV"]
		}
	}'

for fig in fig2 fig3 fig4 fig5 fig6; do
	echo
	echo "== $fig one-way accuracy series (0..5%)"
	awk 'NR>4 && $1=="one-way" {print $3, $2, $4}' bench_results/$fig.txt |
		sort | awk '{a[$1]=a[$1]" | "$3} END {for (k in a) print "| "k, a[k], "|"}' | sort
done
