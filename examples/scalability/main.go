// Scalability probe: how runtime and allocation grow with graph size for
// algorithms of different asymptotic classes (the paper's Figures 11-14 in
// miniature).
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"graphalign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
)

func main() {
	algorithms := []string{"NSD", "REGAL", "LREA", "IsoRank", "GRASP"}
	sizes := []int{256, 512, 1024}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\talgorithm\tsimilarity time\talloc")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		deg := gen.NormalDegrees(n, 10, 2, rng)
		base := gen.ConfigurationModel(deg, rng)
		pair, err := noise.Apply(base, noise.OneWay, 0.01, noise.Options{}, rng)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range algorithms {
			a, err := graphalign.NewAligner(name)
			if err != nil {
				log.Fatal(err)
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			if _, err := a.Similarity(pair.Source, pair.Target); err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			alloc := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
			fmt.Fprintf(w, "%d\t%s\t%s\t%.1fMB\n", n, name, elapsed.Round(time.Millisecond), alloc)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSimilarity-stage time only, as in the paper (assignment excluded).")
}
