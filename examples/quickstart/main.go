// Quickstart: generate a graph, hide it behind a random node permutation
// plus edge noise, and recover the correspondence with one algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"graphalign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
)

func main() {
	// A 300-node powerlaw graph: the shape of a small social network.
	rng := rand.New(rand.NewSource(1))
	base := gen.PowerlawCluster(300, 4, 0.4, rng)
	fmt.Printf("base graph: %v\n", base)

	// Build the alignment problem: the target is a node-permuted copy with
	// 2%% of its edges removed (the paper's "one-way" noise).
	pair, err := noise.Apply(base, noise.OneWay, 0.02, noise.Options{}, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Align with S-GWL (the study's overall recommendation) using the
	// Jonker-Volgenant assignment the study standardizes on.
	mapping, err := graphalign.Align("S-GWL", pair.Source, pair.Target, graphalign.JV)
	if err != nil {
		log.Fatal(err)
	}

	// Score against the hidden ground truth.
	scores := graphalign.Evaluate(pair.Source, pair.Target, mapping, pair.TrueMap)
	fmt.Printf("accuracy: %.3f\n", scores.Accuracy)
	fmt.Printf("edge correctness (EC): %.3f\n", scores.EC)
	fmt.Printf("symmetric substructure (S3): %.3f\n", scores.S3)
	fmt.Printf("matched neighborhood consistency (MNC): %.3f\n", scores.MNC)

	// The first few recovered correspondences.
	fmt.Println("sample matches (source -> target, * = correct):")
	for u := 0; u < 5; u++ {
		marker := " "
		if mapping[u] == pair.TrueMap[u] {
			marker = "*"
		}
		fmt.Printf("  %3d -> %3d %s\n", u, mapping[u], marker)
	}
}
