// Protein-interaction network alignment: the paper's biology scenario,
// where corresponding proteins across network variants must be identified
// by structure alone.
//
// This example uses the MultiMagna-style evolving dataset: a base
// protein-interaction network aligned against variants that retain 80-99%
// of its interactions (exactly the protocol of the paper's Section 6.5),
// comparing IsoRank — the classic PPI aligner — against S-GWL and GRASP on
// the structural quality measures biologists care about (EC, ICS, S3).
//
//	go run ./examples/ppi
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"graphalign"
	"graphalign/internal/data"
)

func main() {
	fractions := []float64{0.80, 0.90, 0.99}
	pairs, err := data.EvolvingVariantsScaled("multimagna", fractions, 0.35)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base PPI network: %v\n\n", pairs[0].Source)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\talgorithm\taccuracy\tEC\tICS\tS3")
	for i, pair := range pairs {
		for _, name := range []string{"IsoRank", "S-GWL", "GRASP"} {
			mapping, err := graphalign.Align(name, pair.Source, pair.Target, graphalign.JV)
			if err != nil {
				log.Fatal(err)
			}
			s := graphalign.Evaluate(pair.Source, pair.Target, mapping, pair.TrueMap)
			fmt.Fprintf(w, "%.0f%%\t%s\t%.3f\t%.3f\t%.3f\t%.3f\n",
				fractions[i]*100, name, s.Accuracy, s.EC, s.ICS, s.S3)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nNote: accuracy asks for the *same* protein; EC/ICS/S3 reward")
	fmt.Println("finding proteins that play the same structural role, which is")
	fmt.Println("the biologically meaningful notion when species differ.")
}
