// Multiple-network alignment: align five variants of one network at once
// (the multiMAGNA++ setting of the paper's Section 6.5), producing clusters
// of mutually corresponding nodes across all variants.
//
//	go run ./examples/multinetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	"graphalign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
)

func main() {
	// One base network and four noisy variants (each missing 3% of edges,
	// nodes shuffled) — think one species' PPI network and four close
	// relatives.
	rng := rand.New(rand.NewSource(2))
	base := gen.PowerlawCluster(120, 4, 0.5, rng)
	graphs := []*graphalign.Graph{base}
	truth := [][]int{nil} // variant -> base ground truth
	for i := 0; i < 4; i++ {
		pair, err := noise.Apply(base, noise.OneWay, 0.03, noise.Options{}, rng)
		if err != nil {
			log.Fatal(err)
		}
		graphs = append(graphs, pair.Target)
		truth = append(truth, pair.TrueMap)
	}

	al, err := graphalign.AlignMultiple("IsoRank", graphs, graphalign.JV)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned %d graphs around reference #%d\n", len(graphs), al.Reference)
	fmt.Printf("cross-network clusters: %d\n", len(al.Clusters))

	// Score each variant's implied mapping to the base against the truth.
	for gi := 1; gi < len(graphs); gi++ {
		m, err := al.PairwiseMap(0, gi) // base -> variant gi
		if err != nil {
			log.Fatal(err)
		}
		correct := 0
		for baseNode, variantNode := range m {
			if variantNode >= 0 && truth[gi][baseNode] == variantNode {
				correct++
			}
		}
		fmt.Printf("variant %d: %d/%d nodes correctly tracked (%.1f%%)\n",
			gi, correct, len(m), 100*float64(correct)/float64(len(m)))
	}

	// Show one full cluster: the same entity across all five networks.
	for _, c := range al.Clusters {
		if len(c) == len(graphs) {
			fmt.Print("example cluster (graph:node):")
			for _, node := range c {
				fmt.Printf("  %d:%d", node.Graph, node.ID)
			}
			fmt.Println()
			break
		}
	}
}
