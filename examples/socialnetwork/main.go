// Social-network re-identification: the paper's motivating scenario of
// finding the same user across two snapshots of a social network.
//
// This example loads the Facebook stand-in dataset (scaled down), simulates
// a second snapshot that lost 5% of its friendships, and compares several
// alignment algorithms under the study's common JV assignment, plus the
// effect of cheaper assignment methods on the best performer.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"graphalign"
	"graphalign/internal/data"
	"graphalign/internal/noise"
)

func main() {
	// A 400-node slice of the Facebook-like stand-in.
	g, err := data.LoadScaled("facebook", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social network snapshot: %v (avg degree %.1f)\n", g, g.AvgDegree())

	rng := rand.New(rand.NewSource(7))
	pair, err := noise.Apply(g, noise.OneWay, 0.05, noise.Options{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second snapshot: %v (5%% of friendships lost, users shuffled)\n\n", pair.Target)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\taccuracy\tMNC\ttime")
	for _, name := range []string{"IsoRank", "NSD", "REGAL", "S-GWL", "CONE"} {
		start := time.Now()
		mapping, err := graphalign.Align(name, pair.Source, pair.Target, graphalign.JV)
		if err != nil {
			log.Fatal(err)
		}
		s := graphalign.Evaluate(pair.Source, pair.Target, mapping, pair.TrueMap)
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%s\n", name, s.Accuracy, s.MNC, time.Since(start).Round(time.Millisecond))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// The study's Section 6.2 finding: exact LAP solvers (JV) improve over
	// the heuristics, at an assignment-time cost. Demonstrate on S-GWL.
	fmt.Println("\nassignment method on S-GWL:")
	for _, method := range []graphalign.AssignMethod{graphalign.NN, graphalign.SG, graphalign.JV} {
		start := time.Now()
		mapping, err := graphalign.Align("S-GWL", pair.Source, pair.Target, method)
		if err != nil {
			log.Fatal(err)
		}
		s := graphalign.Evaluate(pair.Source, pair.Target, mapping, pair.TrueMap)
		fmt.Printf("  %-3s accuracy %.3f (total %s)\n", method, s.Accuracy, time.Since(start).Round(time.Millisecond))
	}
}
