// Package graphalign is the public API of this repository: a complete Go
// implementation of the nine unrestricted graph-alignment algorithms
// benchmarked by Skitsas et al., "Comprehensive Evaluation of Algorithms
// for Unrestricted Graph Alignment" (EDBT 2023), together with the
// experiment framework that reproduces the study's tables and figures.
//
// Quick start:
//
//	src, _, err := graphalign.ReadGraphFile("a.edges")
//	dst, _, err := graphalign.ReadGraphFile("b.edges")
//	mapping, err := graphalign.Align("CONE", src, dst, graphalign.JV)
//
// mapping[u] is the node of dst aligned to node u of src. Algorithms are
// looked up by their paper names: IsoRank, GRAAL, NSD, LREA, REGAL, GWL,
// S-GWL, CONE, GRASP.
package graphalign

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"graphalign/internal/adaptive"
	"graphalign/internal/algo"
	"graphalign/internal/algo/cone"
	"graphalign/internal/algo/graal"
	"graphalign/internal/algo/grasp"
	"graphalign/internal/algo/gwl"
	"graphalign/internal/algo/isorank"
	"graphalign/internal/algo/lrea"
	"graphalign/internal/algo/nsd"
	"graphalign/internal/algo/regal"
	"graphalign/internal/algo/sgwl"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/metrics"
	"graphalign/internal/multi"
	"graphalign/internal/obsv"
)

// Graph re-exports the graph type used throughout the public API.
type Graph = graph.Graph

// Edge re-exports the edge type for graph construction.
type Edge = graph.Edge

// Aligner re-exports the algorithm interface so callers can plug in their
// own similarity notions.
type Aligner = algo.Aligner

// AssignMethod selects the matching-extraction stage.
type AssignMethod = assign.Method

// The four assignment methods of the study (Section 6.2).
const (
	NN  = assign.NearestNeighbor
	SG  = assign.SortGreedy
	MWM = assign.Hungarian
	JV  = assign.JonkerVolgenant
)

// Scores re-exports the quality-measure bundle.
type Scores = metrics.Scores

// Info describes an algorithm's Table 1 characteristics.
type Info struct {
	Name          string
	Year          int
	Preprocessing string // "Yes", "No", or "Both"
	Bio           bool   // designed for biological networks
	Assign        AssignMethod
	Optimizes     string // quality measure the method targets, "Any" if none
	TimeBound     string // asymptotic time in the number of nodes
	Parameters    string // the study's tuned hyperparameters
	New           func() Aligner
}

// registry holds the nine algorithms keyed by canonical name.
var registry = map[string]Info{
	"IsoRank": {
		Name: "IsoRank", Year: 2008, Preprocessing: "Yes", Bio: true,
		Assign: SG, Optimizes: "Any", TimeBound: "O(n^4)",
		Parameters: "alpha=0.9",
		New:        func() Aligner { return isorank.New() },
	},
	"GRAAL": {
		Name: "GRAAL", Year: 2010, Preprocessing: "Yes", Bio: false,
		Assign: SG, Optimizes: "Any", TimeBound: "O(n^3)",
		Parameters: "alpha=0.8",
		New:        func() Aligner { return graal.New() },
	},
	"NSD": {
		Name: "NSD", Year: 2011, Preprocessing: "Both", Bio: false,
		Assign: SG, Optimizes: "Any", TimeBound: "O(n^2)",
		Parameters: "alpha=0.8",
		New:        func() Aligner { return nsd.New() },
	},
	"LREA": {
		Name: "LREA", Year: 2018, Preprocessing: "No", Bio: false,
		Assign: MWM, Optimizes: "Any", TimeBound: "O(n log n)",
		Parameters: "iterations=40",
		New:        func() Aligner { return lrea.New() },
	},
	"REGAL": {
		Name: "REGAL", Year: 2018, Preprocessing: "No", Bio: false,
		Assign: NN, Optimizes: "Any", TimeBound: "O(n log n)",
		Parameters: "k=2, p=10 log n",
		New:        func() Aligner { return regal.New() },
	},
	"GWL": {
		Name: "GWL", Year: 2019, Preprocessing: "No", Bio: false,
		Assign: NN, Optimizes: "Any", TimeBound: "O(n^3)",
		Parameters: "epoch=1",
		New:        func() Aligner { return gwl.New() },
	},
	"S-GWL": {
		Name: "S-GWL", Year: 2019, Preprocessing: "No", Bio: false,
		Assign: NN, Optimizes: "Any", TimeBound: "O(n^2 log n)",
		Parameters: "beta in {0.025, 0.1}",
		New:        func() Aligner { return sgwl.New() },
	},
	"CONE": {
		Name: "CONE", Year: 2020, Preprocessing: "No", Bio: false,
		Assign: NN, Optimizes: "MNC", TimeBound: "O(n^2)",
		Parameters: "dim=512",
		New:        func() Aligner { return cone.New() },
	},
	"GRASP": {
		Name: "GRASP", Year: 2021, Preprocessing: "No", Bio: false,
		Assign: JV, Optimizes: "Any", TimeBound: "O(n^3)",
		Parameters: "q=100, k=20",
		New:        func() Aligner { return grasp.New() },
	},
	// Adaptive is this repository's implementation of the paper's
	// concluding recommendation: dispatch on density and degree
	// distribution. It is not part of the paper's Table 1 and therefore
	// not in Algorithms().
	"Adaptive": {
		Name: "Adaptive", Year: 2023, Preprocessing: "No", Bio: false,
		Assign: JV, Optimizes: "Any", TimeBound: "inherited",
		Parameters: "thresholds on n, degree, skew",
		New:        func() Aligner { return adaptive.New() },
	},
}

// Algorithms returns the canonical algorithm names in the paper's Table 1
// order.
func Algorithms() []string {
	return []string{"IsoRank", "GRAAL", "NSD", "LREA", "REGAL", "GWL", "S-GWL", "CONE", "GRASP"}
}

// Lookup returns the registry entry for an algorithm name.
func Lookup(name string) (Info, error) {
	if info, ok := registry[name]; ok {
		return info, nil
	}
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return Info{}, fmt.Errorf("graphalign: unknown algorithm %q (have %v)", name, names)
}

// NewAligner instantiates an algorithm with the study's tuned defaults.
func NewAligner(name string) (Aligner, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return info.New(), nil
}

// Align aligns src to dst with the named algorithm and the given assignment
// method; mapping[u] is the dst node aligned to src node u.
func Align(name string, src, dst *Graph, method AssignMethod) ([]int, error) {
	a, err := NewAligner(name)
	if err != nil {
		return nil, err
	}
	return algo.Align(a, src, dst, method)
}

// AlignDefault aligns with the algorithm's author-proposed assignment
// method (Table 1's Assign column).
func AlignDefault(name string, src, dst *Graph) ([]int, error) {
	a, err := NewAligner(name)
	if err != nil {
		return nil, err
	}
	return algo.AlignDefault(a, src, dst)
}

// AlignTimed is Align reporting how the runtime splits between the
// similarity computation and the assignment step (the paper's runtime
// figures exclude assignment). An empty method selects the algorithm's
// author-proposed assignment.
func AlignTimed(name string, src, dst *Graph, method AssignMethod) (mapping []int, simTime, assignTime time.Duration, err error) {
	a, err := NewAligner(name)
	if err != nil {
		return nil, 0, 0, err
	}
	if method == "" {
		method = a.DefaultAssignment()
	}
	return algo.AlignTimed(a, src, dst, method)
}

// Tracer re-exports the observability tracer so CLI callers can stream
// span events without importing the internal package. A nil *Tracer is
// valid and fully disabled.
type Tracer = obsv.Tracer

// AlignTimedTraced is AlignTimed emitting structured span events (a run
// span with similarity/assign phases, plus the algorithm's inner phases)
// through tr. A nil tracer makes it exactly AlignTimed.
func AlignTimedTraced(name string, src, dst *Graph, method AssignMethod, tr *Tracer) (mapping []int, simTime, assignTime time.Duration, err error) {
	a, err := NewAligner(name)
	if err != nil {
		return nil, 0, 0, err
	}
	if method == "" {
		method = a.DefaultAssignment()
	}
	return algo.AlignObservedTimedCtx(context.Background(), a, src, dst, method, tr)
}

// Evaluate computes all five quality measures of the study for a mapping;
// trueMap may be nil when no ground truth is known.
func Evaluate(src, dst *Graph, mapping, trueMap []int) Scores {
	return metrics.All(src, dst, mapping, trueMap)
}

// MultiAlignment is the result of aligning several graphs at once; see
// AlignMultiple.
type MultiAlignment = multi.Alignment

// MultiNode identifies a node of one of the graphs in a MultiAlignment
// cluster.
type MultiNode = multi.Node

// AlignMultiple aligns any number of graphs into a single correspondence by
// star alignment (every graph aligned pairwise to the largest one, joined
// into clusters) — the multiple-network extension the paper attributes to
// IsoRankN and GWL, available here for every algorithm.
func AlignMultiple(name string, graphs []*Graph, method AssignMethod) (*MultiAlignment, error) {
	a, err := NewAligner(name)
	if err != nil {
		return nil, err
	}
	return multi.AlignAll(a, graphs, multi.Options{Assign: method, Reference: -1})
}

// NewGraph constructs a graph from an edge list (see internal/graph.New).
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.New(n, edges)
}

// ReadGraphFile loads a whitespace-separated edge-list file; labels maps
// dense node ids back to the file's node labels.
func ReadGraphFile(path string) (g *Graph, labels []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("graphalign: %w", err)
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

// WriteGraphFile saves g as an edge-list file with dense integer ids.
func WriteGraphFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graphalign: %w", err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("graphalign: %w", err)
	}
	return nil
}
