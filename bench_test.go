package graphalign

// This file is the benchmark harness of the reproduction: one testing.B
// benchmark per table and figure of the paper, plus the ablation benches
// DESIGN.md calls out and micro-benchmarks of the load-bearing substrates.
//
// Each experiment benchmark runs the corresponding internal/core experiment
// at a small footprint (Scale/MaxNodes below the paper's sizes — this is a
// 1-core machine, see DESIGN.md substitution 6), reports the mean accuracy
// across all cells as a custom metric, and writes the rendered result table
// to bench_results/<id>.txt so EXPERIMENTS.md can cite the exact series.
// Run the full-fidelity versions with cmd/alignbench and a larger -scale.

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"graphalign/internal/assign"
	"graphalign/internal/core"
	"graphalign/internal/gen"
	"graphalign/internal/graphlets"
	"graphalign/internal/linalg"
	"graphalign/internal/matrix"
	"graphalign/internal/noise"
)

// benchOptions returns the small-footprint configuration for bench runs.
func benchOptions() core.Options {
	opts := core.DefaultOptions(NewAligner)
	opts.Scale = 0.1
	opts.Reps = 1
	opts.Seed = 42
	opts.MaxNodes = 160
	opts.PerRunBudget = 15 * time.Second
	return opts
}

var benchResultsOnce sync.Once

// runExperimentBench executes one registered experiment per b.N iteration,
// reporting mean accuracy and writing the result table to bench_results/.
func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	e, err := core.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	var last *core.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.StopTimer()
	if last == nil {
		return
	}
	var accSum float64
	var accCount int
	for _, row := range last.Rows {
		if v, ok := row.Values["accuracy"]; ok {
			accSum += v
			accCount++
		}
	}
	if accCount > 0 {
		b.ReportMetric(accSum/float64(accCount), "mean-acc")
	}
	b.ReportMetric(float64(len(last.Rows)), "rows")
	benchResultsOnce.Do(func() {
		_ = os.MkdirAll("bench_results", 0o755)
	})
	f, err := os.Create(fmt.Sprintf("bench_results/%s.txt", id))
	if err != nil {
		b.Logf("bench_results: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "# %s — %s\n", e.ID, e.Title)
	if err := last.Render(f); err != nil {
		b.Logf("render: %v", err)
	}
}

// --- One benchmark per paper artifact ---

func BenchmarkTable1Registry(b *testing.B)    { runExperimentBench(b, "table1") }
func BenchmarkFig1Assignment(b *testing.B)    { runExperimentBench(b, "fig1") }
func BenchmarkFig2ER(b *testing.B)            { runExperimentBench(b, "fig2") }
func BenchmarkFig3BA(b *testing.B)            { runExperimentBench(b, "fig3") }
func BenchmarkFig4WS(b *testing.B)            { runExperimentBench(b, "fig4") }
func BenchmarkFig5NW(b *testing.B)            { runExperimentBench(b, "fig5") }
func BenchmarkFig6PL(b *testing.B)            { runExperimentBench(b, "fig6") }
func BenchmarkFig7RealLowNoise(b *testing.B)  { runExperimentBench(b, "fig7") }
func BenchmarkFig8RealHighNoise(b *testing.B) { runExperimentBench(b, "fig8") }
func BenchmarkFig9TimeAccuracy(b *testing.B)  { runExperimentBench(b, "fig9") }
func BenchmarkFig10RealNoise(b *testing.B)    { runExperimentBench(b, "fig10") }
func BenchmarkFig11TimeVsNodes(b *testing.B)  { runExperimentBench(b, "fig11") }
func BenchmarkFig12TimeVsDegree(b *testing.B) { runExperimentBench(b, "fig12") }
func BenchmarkFig13MemVsNodes(b *testing.B)   { runExperimentBench(b, "fig13") }
func BenchmarkFig14MemVsDegree(b *testing.B)  { runExperimentBench(b, "fig14") }
func BenchmarkFig15Density(b *testing.B)      { runExperimentBench(b, "fig15") }
func BenchmarkFig16SizeQuality(b *testing.B)  { runExperimentBench(b, "fig16") }
func BenchmarkTable3Summary(b *testing.B)     { runExperimentBench(b, "table3") }

// --- Ablation benches (design choices called out in DESIGN.md) ---

func BenchmarkAblationAssignment(b *testing.B)   { runExperimentBench(b, "fig1") }
func BenchmarkAblationIsoRankPrior(b *testing.B) { runExperimentBench(b, "ablation-isorank-prior") }
func BenchmarkAblationLREARank(b *testing.B)     { runExperimentBench(b, "ablation-lrea-rank") }
func BenchmarkAblationLREAvsEigenAlign(b *testing.B) {
	runExperimentBench(b, "ablation-lrea-vs-eigenalign")
}
func BenchmarkAblationGRASPParams(b *testing.B) { runExperimentBench(b, "ablation-grasp-params") }
func BenchmarkAblationSGWLBeta(b *testing.B)    { runExperimentBench(b, "ablation-sgwl-beta") }
func BenchmarkAblationCONEDim(b *testing.B)     { runExperimentBench(b, "ablation-cone-dim") }
func BenchmarkAblationAdaptive(b *testing.B)    { runExperimentBench(b, "ablation-adaptive") }

// BenchmarkExcludedNetAlign reproduces the paper's Section 4 exclusion
// rationale: NetAlign with the study's enhancements still trails.
func BenchmarkExcludedNetAlign(b *testing.B) { runExperimentBench(b, "excluded-netalign") }

// --- Per-algorithm end-to-end benches on a fixed instance ---

func benchAlignOnce(b *testing.B, name string, n int) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	base := gen.PowerlawCluster(n, 5, 0.5, rng)
	pair, err := noise.Apply(base, noise.OneWay, 0.01, noise.Options{}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Align(name, pair.Source, pair.Target, JV); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlignIsoRank(b *testing.B) { benchAlignOnce(b, "IsoRank", 150) }
func BenchmarkAlignGRAAL(b *testing.B)   { benchAlignOnce(b, "GRAAL", 150) }
func BenchmarkAlignNSD(b *testing.B)     { benchAlignOnce(b, "NSD", 150) }
func BenchmarkAlignLREA(b *testing.B)    { benchAlignOnce(b, "LREA", 150) }
func BenchmarkAlignREGAL(b *testing.B)   { benchAlignOnce(b, "REGAL", 150) }
func BenchmarkAlignGWL(b *testing.B)     { benchAlignOnce(b, "GWL", 150) }
func BenchmarkAlignSGWL(b *testing.B)    { benchAlignOnce(b, "S-GWL", 150) }
func BenchmarkAlignCONE(b *testing.B)    { benchAlignOnce(b, "CONE", 150) }
func BenchmarkAlignGRASP(b *testing.B)   { benchAlignOnce(b, "GRASP", 150) }

// --- Substrate micro-benches ---

func randomSimMatrix(n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

func BenchmarkAssignJV(b *testing.B) {
	sim := randomSimMatrix(300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.SolveJV(sim)
	}
}

func BenchmarkAssignHungarian(b *testing.B) {
	sim := randomSimMatrix(300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.SolveHungarian(sim)
	}
}

func BenchmarkAssignSortGreedy(b *testing.B) {
	sim := randomSimMatrix(300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.SolveGreedy(sim)
	}
}

func BenchmarkSymEigen(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := linalg.SymEigen(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphletCount(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := gen.PowerlawCluster(200, 4, 0.3, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphlets.Count(g)
	}
}

func BenchmarkGenerateBA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		gen.BarabasiAlbert(2000, 5, rng)
	}
}
