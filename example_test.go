package graphalign_test

import (
	"fmt"
	"log"

	"graphalign"
)

// ExampleAlign aligns a tiny graph with a permuted copy of itself.
func ExampleAlign() {
	// An asymmetric graph (no non-trivial automorphisms): triangle 0-1-2
	// with a pendant 3 on node 0 and a 2-chain 4-5 on node 1.
	src, err := graphalign.NewGraph(6, []graphalign.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 4}, {U: 4, V: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The same graph relabeled by the permutation u -> (u+2) mod 6.
	perm := []int{2, 3, 4, 5, 0, 1}
	var relabeled []graphalign.Edge
	for _, e := range []graphalign.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 4}, {U: 4, V: 5},
	} {
		relabeled = append(relabeled, graphalign.Edge{U: perm[e.U], V: perm[e.V]})
	}
	dst, err := graphalign.NewGraph(6, relabeled)
	if err != nil {
		log.Fatal(err)
	}
	mapping, err := graphalign.Align("IsoRank", src, dst, graphalign.JV)
	if err != nil {
		log.Fatal(err)
	}
	scores := graphalign.Evaluate(src, dst, mapping, perm)
	fmt.Printf("accuracy: %.0f%%\n", scores.Accuracy*100)
	// Output:
	// accuracy: 100%
}

// ExampleLookup inspects an algorithm's Table 1 characteristics.
func ExampleLookup() {
	info, err := graphalign.Lookup("GRASP")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(info.Year, info.Assign, info.Parameters)
	// Output:
	// 2021 JV q=100, k=20
}

// ExampleAlgorithms lists the paper's nine methods.
func ExampleAlgorithms() {
	for _, name := range graphalign.Algorithms() {
		fmt.Println(name)
	}
	// Output:
	// IsoRank
	// GRAAL
	// NSD
	// LREA
	// REGAL
	// GWL
	// S-GWL
	// CONE
	// GRASP
}

// ExampleEvaluate scores a hand-built mapping without ground truth.
func ExampleEvaluate() {
	tri, _ := graphalign.NewGraph(3, []graphalign.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	path, _ := graphalign.NewGraph(3, []graphalign.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	identity := []int{0, 1, 2}
	s := graphalign.Evaluate(tri, path, identity, nil)
	fmt.Printf("EC=%.2f S3=%.2f\n", s.EC, s.S3)
	// Output:
	// EC=0.67 S3=0.67
}
