package core

import (
	"fmt"
	"math/rand"

	"graphalign/internal/adaptive"
	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
)

func init() {
	register(Experiment{
		ID: "ablation-adaptive",
		Title: "Ablation: structure-adaptive dispatch (the paper's future-work proposal) " +
			"vs fixed algorithm choices across graph regimes",
		Run: runAblationAdaptive,
	})
}

// runAblationAdaptive evaluates the Adaptive aligner against every fixed
// algorithm on three structural regimes — powerlaw, small-world, sparse
// ring lattice — with 1% one-way noise. The paper's conclusion predicts
// that no fixed choice wins everywhere, while dispatch on density and
// degree distribution should track the per-regime winner.
func runAblationAdaptive(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.scaledN(1133)
	t := NewTable("Adaptive dispatch vs fixed algorithms (1% one-way noise)",
		[]string{"regime", "algorithm"}, []string{"accuracy", "sim_time"})

	type regime struct {
		name  string
		pairs []noise.Pair
	}
	bases := []struct {
		name string
		g    func() ([]noise.Pair, error)
	}{
		{"powerlaw", func() ([]noise.Pair, error) {
			return noisyInstances(gen.PowerlawCluster(n, 5, 0.5, rng), noise.OneWay, 0.01, opts, noise.Options{}, "adaptive/powerlaw")
		}},
		{"small-world", func() ([]noise.Pair, error) {
			return noisyInstances(gen.NewmanWatts(n, 8, 0.5, rng), noise.OneWay, 0.01, opts, noise.Options{}, "adaptive/small-world")
		}},
		{"sparse", func() ([]noise.Pair, error) {
			return noisyInstances(gen.WattsStrogatz(n, 2, 0.1, rng), noise.OneWay, 0.01, opts, noise.Options{}, "adaptive/sparse")
		}},
	}
	var regimes []regime
	for _, b := range bases {
		pairs, err := b.g()
		if err != nil {
			return nil, err
		}
		regimes = append(regimes, regime{b.name, pairs})
	}

	opts.declareCells(len(regimes))
	for _, rg := range regimes {
		// The adaptive dispatcher first.
		runVariant(t, opts, "adaptive/"+rg.name, func() algo.Aligner { return adaptive.New() }, map[string]string{
			"regime": rg.name, "algorithm": "Adaptive",
		}, rg.pairs)
		// Then every fixed algorithm from the study's set.
		for _, name := range opts.algorithms() {
			mean, err := runAveraged(opts, "adaptive/"+rg.name, name, rg.pairs, assign.JonkerVolgenant)
			if err != nil {
				return nil, err
			}
			if mean.Err != nil {
				continue
			}
			t.Add(map[string]string{
				"regime": rg.name, "algorithm": name,
			}, map[string]float64{
				"accuracy": mean.Scores.Accuracy,
				"sim_time": mean.SimilarityTime.Seconds(),
			})
			opts.progress("ablation-adaptive %s %s acc=%.3f", rg.name, name, mean.Scores.Accuracy)
		}
		opts.cellDone("ablation-adaptive/" + rg.name)
	}
	t.Sort()
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("ablation-adaptive: no rows")
	}
	return t, nil
}
