package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Row is one record of an experiment's output: free-form labels (dataset,
// algorithm, noise type, ...) plus named numeric values (accuracy, time, ...).
type Row struct {
	Labels map[string]string
	Values map[string]float64
}

// Table accumulates experiment rows and renders them in a stable format.
type Table struct {
	Title     string
	LabelCols []string
	ValueCols []string
	Rows      []Row
}

// NewTable creates a table with fixed column order.
func NewTable(title string, labelCols, valueCols []string) *Table {
	return &Table{Title: title, LabelCols: labelCols, ValueCols: valueCols}
}

// Add appends a row; labels and values are matched by the table's columns
// at render time, so extra keys are allowed (and ignored).
func (t *Table) Add(labels map[string]string, values map[string]float64) {
	t.Rows = append(t.Rows, Row{Labels: labels, Values: values})
}

// Sort orders rows lexicographically by the label columns (numeric-aware
// for labels that parse as numbers).
func (t *Table) Sort() {
	sort.SliceStable(t.Rows, func(a, b int) bool {
		ra, rb := t.Rows[a], t.Rows[b]
		for _, c := range t.LabelCols {
			va, vb := ra.Labels[c], rb.Labels[c]
			if va == vb {
				continue
			}
			var fa, fb float64
			na, errA := fmt.Sscanf(va, "%g", &fa)
			nb, errB := fmt.Sscanf(vb, "%g", &fb)
			if na == 1 && nb == 1 && errA == nil && errB == nil && fa != fb {
				return fa < fb
			}
			return va < vb
		}
		return false
	})
}

// Render writes the table as aligned text columns.
func (t *Table) Render(w io.Writer) error {
	cols := append(append([]string{}, t.LabelCols...), t.ValueCols...)
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		line := make([]string, len(cols))
		for i, c := range t.LabelCols {
			line[i] = row.Labels[c]
		}
		for i, c := range t.ValueCols {
			v, ok := row.Values[c]
			if !ok {
				line[len(t.LabelCols)+i] = "-"
				continue
			}
			line[len(t.LabelCols)+i] = formatValue(c, v)
		}
		for i, cell := range line {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		cells[r] = line
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	for i, c := range cols {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range cols {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, line := range cells {
		for i, cell := range line {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as RFC-4180 CSV with a header row; numeric
// values are written raw (no unit formatting) so downstream tooling can
// plot the series directly.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, t.LabelCols...), t.ValueCols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		rec := make([]string, 0, len(header))
		for _, c := range t.LabelCols {
			rec = append(rec, row.Labels[c])
		}
		for _, c := range t.ValueCols {
			v, ok := row.Values[c]
			if !ok {
				rec = append(rec, "")
				continue
			}
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatValue picks a format by column kind: times in seconds with 3
// decimals, memory in MB, scores with 3 decimals.
func formatValue(col string, v float64) string {
	switch {
	case strings.Contains(col, "time"):
		return fmt.Sprintf("%.3fs", v)
	case strings.Contains(col, "mem"):
		return fmt.Sprintf("%.1fMB", v/(1024*1024))
	case strings.Contains(col, "n") && col == "n":
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
