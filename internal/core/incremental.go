package core

import (
	"context"
	"fmt"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/incremental"
	"graphalign/internal/metrics"
	"graphalign/internal/noise"
	"graphalign/internal/obsv"
)

// IncrementalSpec routes a run through the evolving-graph mode
// (internal/incremental): the pair is cold-aligned once, then every batch
// of target-graph edits is applied and re-aligned with warm-started
// assignment and delta-tolerant candidate reuse. The run's scores are those
// of the final alignment against the final (post-edit) target; the
// similarity/assign time split reports the cold alignment vs the whole
// replay. See DESIGN.md §16.
type IncrementalSpec struct {
	// Batches is the edit stream, applied in order; each batch triggers one
	// re-alignment. An empty batch is a noop probe (the mapping must come
	// back byte-identical).
	Batches [][]graph.Edit
	// Options configures the session. Zero-valued TopK, Workers, Tracer and
	// Registry inherit the run's AssignTopK, Workers, Tracer and the
	// tracer's registry.
	Options incremental.Options
}

// runInstanceIncremental is the IncrementalSpec branch of RunInstanceMapped.
// The assignment method is fixed by the mode (the warm-startable ε-scaling
// auction, falling back to dense JV when the candidate graph is
// unmatchable), so the requested method is ignored; the caller's deferred
// recover and error classification still apply.
func runInstanceIncremental(ctx context.Context, a algo.Aligner, pair noise.Pair, spec RunSpec, run *obsv.Span, reg *obsv.Registry) (RunResult, []int) {
	res := RunResult{Algorithm: a.Name(), Assign: assign.AuctionSparse}
	inc := spec.Incremental
	opts := inc.Options
	if opts.TopK == 0 {
		opts.TopK = spec.AssignTopK
	}
	if opts.Workers == 0 {
		opts.Workers = spec.Workers
	}
	if opts.Tracer == nil {
		opts.Tracer = spec.Tracer
	}
	if opts.Registry == nil {
		opts.Registry = reg
	}
	run.Set("incremental_batches", len(inc.Batches))

	t0 := time.Now()
	sess, err := incremental.NewSession(ctx, a, pair.Source, pair.Target, opts)
	res.SimilarityTime = time.Since(t0)
	if err != nil {
		res.Err = classifyRunErr(fmt.Errorf("incremental session: %w", err), spec.Budget, reg)
		return endRunErr(run, reg, res), nil
	}
	t1 := time.Now()
	for bi, batch := range inc.Batches {
		if _, err := sess.Apply(ctx, batch); err != nil {
			res.Err = classifyRunErr(fmt.Errorf("incremental batch %d: %w", bi, err), spec.Budget, reg)
			return endRunErr(run, reg, res), nil
		}
	}
	res.AssignTime = time.Since(t1)

	mapping := sess.Mapping()
	sp := run.Phase("metrics")
	res.Scores = metrics.All(pair.Source, sess.Target(), mapping, pair.TrueMap)
	sp.End()
	run.End()
	return res, mapping
}
