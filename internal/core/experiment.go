package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/data"
	"graphalign/internal/graph"
	"graphalign/internal/noise"
	"graphalign/internal/obsv"
	"graphalign/internal/parallel"
)

// Options configure an experiment run. The zero value is not usable; call
// DefaultOptions and override fields.
type Options struct {
	// Factory instantiates algorithms by name (required).
	Factory Factory
	// Scale shrinks the paper's graph sizes to fit the local machine;
	// 1.0 reproduces the paper's sizes exactly. See DESIGN.md
	// substitution 6.
	Scale float64
	// Reps is the number of noisy instances averaged per point (the paper
	// uses 10 for synthetic graphs and 5 for the high-noise and
	// scalability experiments).
	Reps int
	// Algorithms restricts the algorithm set; nil means all nine.
	Algorithms []string
	// Seed drives all randomness.
	Seed int64
	// PerRunBudget skips an algorithm for the remaining (larger) points of
	// a scalability sweep once a single run exceeds it — the analogue of
	// the paper's 3-hour limit. Zero means no limit.
	PerRunBudget time.Duration
	// MaxNodes caps dataset stand-in sizes regardless of Scale — the
	// analogue of the paper's memory/time limits on one machine. Zero
	// means no cap.
	MaxNodes int
	// Workers bounds the number of concurrent runs (and noisy-instance
	// generations) per experiment cell; 0 or negative means one worker per
	// CPU (GOMAXPROCS), 1 runs strictly sequentially. Results are
	// byte-identical for any Workers value at the same Seed: every
	// (cell, rep) draws from its own RNG whose seed is derived from Seed
	// with a splitmix-style hash, so no random stream depends on
	// scheduling order.
	Workers int
	// MemProfile serializes runs and measures per-run allocation deltas
	// (RunInstanceProfiled), populating RunResult.AllocBytes at the cost
	// of parallelism. The memory experiments (Figures 13-14) set it; leave
	// it false for pure quality/runtime experiments.
	MemProfile bool
	// Progress, when non-nil, receives one line per completed cell.
	// Invocations are serialized by the framework, so the callback may
	// write to shared sinks without its own locking. RunExperiment
	// re-implements this legacy callback as one tracer sink; experiments
	// invoked directly keep the plain callback path.
	Progress func(format string, args ...interface{})
	// Tracer, when non-nil, receives structured telemetry: run_start /
	// run_end events with nested phase spans for every algorithm run,
	// cell_done events with completed/total counts, progress lines, and
	// gauge samples. Tracing never alters experiment results — at a fixed
	// Seed and Workers the output tables are byte-identical with the
	// tracer attached or nil; only the tracer's own sinks see more.
	Tracer *obsv.Tracer
	// Ctx, when non-nil, cancels the whole run cooperatively: workers stop
	// claiming new (cell, rep) slots and in-flight algorithm runs return at
	// their next iteration boundary. Unstarted slots are backfilled with the
	// context's error so drivers still see a complete result set. Nil means
	// context.Background() — never cancelled, zero overhead.
	Ctx context.Context
	// RunTimeout bounds each individual algorithm run's wall clock (off when
	// zero). A run that blows the budget is cancelled cooperatively and its
	// RunResult.Err is a *TimeoutError (errors.Is ErrTimeout); sibling runs
	// and the rest of the grid are unaffected. This is the fault-isolation
	// complement of PerRunBudget, which only stops *future* sweep points.
	RunTimeout time.Duration
	// Checkpoint, when non-nil, journals every completed (cell, rep) run as
	// one JSONL record and replays journaled results instead of recomputing
	// them, making interrupted experiments resumable with byte-identical
	// output. See OpenCheckpoint.
	Checkpoint *Checkpoint
	// Cache, when non-nil, shares per-graph artifacts (degree vectors,
	// Laplacians, spectral decompositions, embeddings, graphlet counts)
	// across the algorithms, reps, and sweep points of the run. Caching
	// never alters results: cached artifacts are bitwise the values each
	// aligner would compute itself, so output tables, checkpoints, and CSVs
	// are byte-identical with the cache on or off (see DESIGN.md §10). Off
	// by default.
	Cache *cache.Cache
	// CacheBudgetBytes, when positive, makes RunExperiment create a cache
	// of that byte budget if Cache is nil — the knob behind alignbench's
	// -cache-budget flag. Ignored when Cache is already set.
	CacheBudgetBytes int64
	// AssignTopK, when positive, routes every run's assignment through the
	// sparse candidate pipeline: per-row top-k candidate generation (k-NN
	// over raw embeddings for REGAL/CONE/GRASP, bounded-heap row selection
	// otherwise) followed by the sparse variant of the cell's assignment
	// method — exact methods become the ε-scaling auction, which falls back
	// to dense JV when the candidate graph leaves rows unmatchable. The
	// sparse solvers are deterministic for any Workers value. Zero (the
	// default) keeps the dense solvers and is byte-identical to the
	// pre-sparse pipeline; positive values trade a bounded amount of
	// assignment quality for large speedups at scale (see DESIGN.md §11).
	// The knob behind alignbench's -assign-topk flag.
	AssignTopK int
	// Partitions, when >= 2, routes every run through the partition-align-
	// stitch sharding layer: the instance's graphs are co-partitioned into
	// that many matched cluster pairs, each pair is aligned independently
	// (with a fresh aligner per shard) and the shard mappings are stitched
	// with an auction-based boundary-refinement pass. 0 (the default) and 1
	// are off and byte-identical to the monolithic path; sharding trades a
	// bounded amount of accuracy for memory and scale (see DESIGN.md §15).
	// The knob behind alignbench's -partitions flag.
	Partitions int

	// expID is the running experiment's id, set by RunExperiment so that
	// checkpoint records are keyed per experiment. Experiments invoked
	// directly leave it empty, which is still a valid key.
	expID string

	// obs is the per-Options observability state (progress mutex, cell
	// counters) shared by every copy of this Options value. DefaultOptions
	// allocates one; zero-literal Options fall back to a package-level
	// instance, which preserves the old behavior of serializing all
	// Progress callbacks process-wide for that legacy path only.
	obs *obsState
}

// obsState serializes Progress callbacks and tracks cell completion for
// completed/total progress reporting. It lives behind a pointer so that
// the Options copies handed to drivers, reps and workers all share it,
// while two independent DefaultOptions values (e.g. concurrent experiments
// with different Progress sinks) no longer serialize against each other.
type obsState struct {
	mu    sync.Mutex
	total int
	done  int
	start time.Time
}

var fallbackObs obsState

func (o *Options) obsv() *obsState {
	if o.obs != nil {
		return o.obs
	}
	return &fallbackObs
}

// runSpec assembles the per-run configuration from the experiment options.
func (o *Options) runSpec() RunSpec {
	return RunSpec{Tracer: o.Tracer, Budget: o.RunTimeout, AssignTopK: o.AssignTopK, Workers: o.Workers, Partitions: o.Partitions}
}

// ctx returns the run context, defaulting to the never-cancelled background
// context so that code paths with fault tolerance off behave exactly as
// they did before the context was threaded through.
func (o *Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// DefaultOptions returns options sized for a laptop-class machine.
func DefaultOptions(f Factory) Options {
	return Options{
		Factory:      f,
		Scale:        0.2,
		Reps:         3,
		Seed:         42,
		PerRunBudget: 2 * time.Minute,
		MaxNodes:     800,
		obs:          &obsState{},
	}
}

// AllAlgorithms is the paper's Table 1 order.
var AllAlgorithms = []string{"IsoRank", "GRAAL", "NSD", "LREA", "REGAL", "GWL", "S-GWL", "CONE", "GRASP"}

func (o *Options) algorithms() []string {
	if len(o.Algorithms) > 0 {
		return o.Algorithms
	}
	return AllAlgorithms
}

// progress reports one line through both observability paths: as a
// "progress" event on the tracer (whose own mutex serializes sinks) and to
// the legacy Progress callback, serialized by the per-Options obsState
// mutex. Cells run sequentially, but helpers fanned out across the worker
// pool may report per-run events, so both paths must tolerate concurrency.
func (o *Options) progress(format string, args ...interface{}) {
	if o.Progress == nil && o.Tracer == nil {
		return
	}
	if o.Tracer != nil {
		o.Tracer.Progress(fmt.Sprintf(format, args...))
	}
	if o.Progress != nil {
		st := o.obsv()
		st.mu.Lock()
		defer st.mu.Unlock()
		o.Progress(format, args...)
	}
}

// declareCells announces how many grid cells the running experiment will
// process, resetting the completion counter; cellDone then reports
// completed/total counts with an ETA. A zero or unknown total still counts
// cells but omits the ratio and ETA.
func (o *Options) declareCells(total int) {
	st := o.obsv()
	st.mu.Lock()
	st.total = total
	st.done = 0
	st.start = time.Now()
	st.mu.Unlock()
}

// cellDone records the completion of one experiment grid cell: a cell_done
// trace event carrying completed/total counts and the ETA extrapolated
// from the mean cell duration so far, plus a matching progress line.
func (o *Options) cellDone(cell string) {
	if o.Progress == nil && o.Tracer == nil {
		return
	}
	st := o.obsv()
	st.mu.Lock()
	if st.start.IsZero() {
		st.start = time.Now()
	}
	st.done++
	done, total := st.done, st.total
	var eta time.Duration
	if total > 0 && done <= total {
		eta = time.Since(st.start) / time.Duration(done) * time.Duration(total-done)
	}
	st.mu.Unlock()

	if o.Tracer != nil {
		o.Tracer.Emit("cell_done", cell, map[string]any{
			"done": done, "total": total, "eta_s": eta.Seconds(),
		})
	}
	if total > 0 {
		o.progress("cell %d/%d done: %s (eta %s)", done, total, cell, eta.Round(time.Second))
	} else {
		o.progress("cell %d done: %s", done, cell)
	}
}

// scaledN shrinks a paper-sized node count by Scale with a sane floor.
func (o *Options) scaledN(paperN int) int {
	s := o.Scale
	if s <= 0 {
		s = 0.2
	}
	n := int(float64(paperN) * s)
	if n < 100 {
		n = 100
	}
	if n > paperN {
		n = paperN
	}
	return n
}

// loadDataset loads a Table 2 stand-in at the experiment's effective scale,
// additionally capped at MaxNodes.
func (o *Options) loadDataset(name string) (*graph.Graph, error) {
	d, err := data.Describe(name)
	if err != nil {
		return nil, err
	}
	scale := o.effectiveScale()
	if o.MaxNodes > 0 && float64(d.N)*scale > float64(o.MaxNodes) {
		scale = float64(o.MaxNodes) / float64(d.N)
	}
	return data.LoadScaled(name, scale)
}

// Experiment binds a paper artifact (figure or table) to the code that
// regenerates it.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Table, error)
}

var experiments = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := experiments[e.ID]; dup {
		panic("core: duplicate experiment id " + e.ID)
	}
	experiments[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	if e, ok := experiments[id]; ok {
		return e, nil
	}
	ids := IDs()
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (have %v)", id, ids)
}

// RunExperiment looks up and runs one experiment with full observability
// wiring: a legacy Progress callback is re-attached as a tracer sink (so
// every line flows through one serialized pipeline), the per-experiment
// cell counters are reset, and the run is bracketed by experiment_start /
// experiment_done events carrying the duration and row count. Calling the
// experiment's Run directly remains supported and behaves as before; this
// wrapper only adds reporting, never changes results.
func RunExperiment(id string, opts Options) (*Table, error) {
	e, err := Get(id)
	if err != nil {
		return nil, err
	}
	if opts.Progress != nil && opts.Tracer == nil {
		p := opts.Progress
		opts.Tracer = obsv.New(obsv.ProgressFunc(func(msg string) { p("%s", msg) }))
		opts.Progress = nil
	}
	opts.obs = &obsState{start: time.Now()}
	opts.expID = id
	if opts.Cache == nil && opts.CacheBudgetBytes > 0 {
		opts.Cache = cache.New(opts.CacheBudgetBytes)
	}
	if opts.Tracer != nil {
		opts.Cache.SetRegistry(opts.Tracer.Registry())
	}
	opts.Tracer.Emit("experiment_start", id, map[string]any{"title": e.Title})
	start := time.Now()
	table, runErr := e.Run(opts)
	fields := map[string]any{"seconds": time.Since(start).Seconds()}
	if table != nil {
		fields["rows"] = len(table.Rows)
	}
	if runErr != nil {
		fields["err"] = runErr.Error()
	}
	opts.Tracer.Emit("experiment_done", id, fields)
	return table, runErr
}

// IDs returns all experiment ids sorted.
func IDs() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// splitmix64 is the SplitMix64 finalizer: a cheap bijective mixer whose
// outputs pass statistical tests even on sequential inputs, which is what
// lets us derive independent per-rep seeds from small hand-built integers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// instanceSeed derives the RNG seed for one (experiment cell, rep) from the
// experiment Seed: FNV-1a over the cell labels, mixed with the rep index and
// finalized with splitmix64. Each noisy instance therefore owns an
// independent random stream fixed by (Seed, cell, noise type, level, rep)
// alone — never by how many workers ran or in what order — which is the
// invariant behind the Workers=1 vs Workers=N determinism guarantee.
func (o *Options) instanceSeed(cell string, t noise.Type, level float64, rep int) int64 {
	const fnvPrime = 1099511628211
	h := uint64(14695981039346656037) ^ uint64(o.Seed)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnvPrime
		}
		h ^= 0xff // separator: ("ab","c") must differ from ("a","bc")
		h *= fnvPrime
	}
	mix(cell)
	mix(string(t))
	mix(fmt.Sprintf("%g", level))
	h ^= uint64(rep)
	return int64(splitmix64(h))
}

// noisyInstances builds Reps alignment instances from a base graph, fanned
// out across the worker pool. The cell string names the grid cell (dataset,
// model, sweep point, ...) so that every (cell, rep) perturbs with its own
// derived RNG — see instanceSeed for the determinism argument.
func noisyInstances(base *graph.Graph, t noise.Type, level float64, opts Options, nopts noise.Options, cell string) ([]noise.Pair, error) {
	reps := opts.Reps
	if reps < 1 {
		reps = 1
	}
	out := make([]noise.Pair, reps)
	errs := make([]error, reps)
	parallel.For(opts.Workers, reps, func(r int) {
		rng := rand.New(rand.NewSource(opts.instanceSeed(cell, t, level, r)))
		out[r], errs[r] = noise.Apply(base, t, level, nopts, rng)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runInstances fans the runs of one cell out across the worker pool. Every
// run gets a freshly built Aligner so no algorithm state is shared between
// goroutines (the study's aligners seed their internal RNGs from fixed
// per-algorithm constants, so fresh instances stay deterministic). With
// opts.MemProfile the runs take the serialized profiled path instead, which
// is the only mode in which AllocBytes is meaningful.
//
// cell and label key the runs in the checkpoint journal (label is the
// algorithm name, or a variant tag for ablation runs). Journaled runs are
// replayed without recomputation; freshly completed runs are journaled
// unless the whole grid was cancelled mid-run. When opts.Ctx is cancelled,
// unstarted slots are backfilled with the context's error so callers always
// receive len(pairs) results.
func runInstances(opts Options, cell, label string, build func(i int) (algo.Aligner, error), pairs []noise.Pair, method assign.Method) []RunResult {
	runs := make([]RunResult, len(pairs))
	done := make([]bool, len(pairs))
	ctx := opts.ctx()
	parallel.ForCtx(ctx, opts.Workers, len(pairs), func(i int) {
		done[i] = true
		if res, ok := opts.Checkpoint.Lookup(opts.expID, cell, label, method, i); ok {
			runs[i] = res
			return
		}
		a, err := build(i)
		switch {
		case err != nil:
			runs[i] = RunResult{Err: err}
		case opts.MemProfile:
			// Deliberately no cache in profiled mode: AllocBytes measures one
			// algorithm's own footprint, which shared artifacts would distort.
			runs[i] = runInstanceProfiled(ctx, a, pairs[i], method, opts.runSpec())
		default:
			algo.ApplyCache(a, opts.Cache)
			spec := opts.runSpec()
			if opts.Partitions >= 2 {
				// Partitioned runs align shards concurrently, so each shard
				// needs its own aligner instance (sharing one would race on
				// internal state). The factory inherits the run's cache —
				// cached artifacts are keyed per graph, so shards only share
				// what is safe to share.
				spec.NewAligner = func() (algo.Aligner, error) {
					sa, err := build(i)
					if err == nil {
						algo.ApplyCache(sa, opts.Cache)
					}
					return sa, err
				}
			}
			runs[i] = RunInstanceSpec(ctx, a, pairs[i], method, spec)
		}
		// A run cut short by grid-wide cancellation (as opposed to its own
		// budget) is incomplete, not failed: leave it out of the journal so a
		// resumed run redoes it.
		if !errors.Is(runs[i].Err, context.Canceled) {
			opts.Checkpoint.Record(opts.expID, cell, label, method, i, runs[i])
		}
	})
	if err := ctx.Err(); err != nil {
		for i := range runs {
			if !done[i] {
				runs[i] = RunResult{Err: err}
			}
		}
	}
	return runs
}

// runAveraged instantiates the named algorithm once per instance, runs the
// instances across the worker pool with the given assignment method, and
// returns the averaged result. A factory error is returned; per-run errors
// are folded into RunResult.Err. cell names the grid cell for checkpoint
// keying (see runInstances).
func runAveraged(opts Options, cell, name string, pairs []noise.Pair, method assign.Method) (RunResult, error) {
	// Resolve the name up front so an unknown algorithm is a hard error
	// rather than a silently failed cell.
	if _, err := opts.Factory(name); err != nil {
		return RunResult{}, err
	}
	runs := runInstances(opts, cell, name, func(int) (algo.Aligner, error) { return opts.Factory(name) }, pairs, method)
	mean, _ := Average(runs)
	mean.Algorithm = name
	mean.Assign = method
	return mean, nil
}
