package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"graphalign/internal/assign"
	"graphalign/internal/data"
	"graphalign/internal/graph"
	"graphalign/internal/noise"
)

// Options configure an experiment run. The zero value is not usable; call
// DefaultOptions and override fields.
type Options struct {
	// Factory instantiates algorithms by name (required).
	Factory Factory
	// Scale shrinks the paper's graph sizes to fit the local machine;
	// 1.0 reproduces the paper's sizes exactly. See DESIGN.md
	// substitution 6.
	Scale float64
	// Reps is the number of noisy instances averaged per point (the paper
	// uses 10 for synthetic graphs and 5 for the high-noise and
	// scalability experiments).
	Reps int
	// Algorithms restricts the algorithm set; nil means all nine.
	Algorithms []string
	// Seed drives all randomness.
	Seed int64
	// PerRunBudget skips an algorithm for the remaining (larger) points of
	// a scalability sweep once a single run exceeds it — the analogue of
	// the paper's 3-hour limit. Zero means no limit.
	PerRunBudget time.Duration
	// MaxNodes caps dataset stand-in sizes regardless of Scale — the
	// analogue of the paper's memory/time limits on one machine. Zero
	// means no cap.
	MaxNodes int
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(format string, args ...interface{})
}

// DefaultOptions returns options sized for a laptop-class machine.
func DefaultOptions(f Factory) Options {
	return Options{
		Factory:      f,
		Scale:        0.2,
		Reps:         3,
		Seed:         42,
		PerRunBudget: 2 * time.Minute,
		MaxNodes:     800,
	}
}

// AllAlgorithms is the paper's Table 1 order.
var AllAlgorithms = []string{"IsoRank", "GRAAL", "NSD", "LREA", "REGAL", "GWL", "S-GWL", "CONE", "GRASP"}

func (o *Options) algorithms() []string {
	if len(o.Algorithms) > 0 {
		return o.Algorithms
	}
	return AllAlgorithms
}

func (o *Options) progress(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// scaledN shrinks a paper-sized node count by Scale with a sane floor.
func (o *Options) scaledN(paperN int) int {
	s := o.Scale
	if s <= 0 {
		s = 0.2
	}
	n := int(float64(paperN) * s)
	if n < 100 {
		n = 100
	}
	if n > paperN {
		n = paperN
	}
	return n
}

// loadDataset loads a Table 2 stand-in at the experiment's effective scale,
// additionally capped at MaxNodes.
func (o *Options) loadDataset(name string) (*graph.Graph, error) {
	d, err := data.Describe(name)
	if err != nil {
		return nil, err
	}
	scale := o.effectiveScale()
	if o.MaxNodes > 0 && float64(d.N)*scale > float64(o.MaxNodes) {
		scale = float64(o.MaxNodes) / float64(d.N)
	}
	return data.LoadScaled(name, scale)
}

// Experiment binds a paper artifact (figure or table) to the code that
// regenerates it.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Table, error)
}

var experiments = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := experiments[e.ID]; dup {
		panic("core: duplicate experiment id " + e.ID)
	}
	experiments[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	if e, ok := experiments[id]; ok {
		return e, nil
	}
	ids := IDs()
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (have %v)", id, ids)
}

// IDs returns all experiment ids sorted.
func IDs() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// noisyInstances builds Reps alignment instances from a base graph.
func noisyInstances(base *graph.Graph, t noise.Type, level float64, opts Options, nopts noise.Options, rng *rand.Rand) ([]noise.Pair, error) {
	reps := opts.Reps
	if reps < 1 {
		reps = 1
	}
	out := make([]noise.Pair, 0, reps)
	for r := 0; r < reps; r++ {
		p, err := noise.Apply(base, t, level, nopts, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// runAveraged instantiates the named algorithm, runs it over all instances
// with the given assignment method, and returns the averaged result. A
// factory error is returned; per-run errors are folded into RunResult.Err.
func runAveraged(opts Options, name string, pairs []noise.Pair, method assign.Method) (RunResult, error) {
	a, err := opts.Factory(name)
	if err != nil {
		return RunResult{}, err
	}
	runs := make([]RunResult, 0, len(pairs))
	for _, p := range pairs {
		runs = append(runs, RunInstance(a, p, method))
	}
	mean, _ := Average(runs)
	mean.Algorithm = name
	mean.Assign = method
	return mean, nil
}
