package core

import (
	"context"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algo/isorank"
	"graphalign/internal/algo/lrea"
	"graphalign/internal/algo/nsd"
	"graphalign/internal/algo/regal"
	"graphalign/internal/assign"
)

// TestRunInstanceSpecSparseDense exercises the sparse assignment pipeline for
// a non-embedding aligner (IsoRank: dense similarity, bounded-heap top-k) on
// every dense method it can map from.
func TestRunInstanceSpecSparseDense(t *testing.T) {
	p := smallPair(t)
	for _, method := range []assign.Method{assign.JonkerVolgenant, assign.NearestNeighbor, assign.SortGreedy} {
		res := RunInstanceSpec(context.Background(), isorank.New(), p, method,
			RunSpec{AssignTopK: 10})
		if res.Err != nil {
			t.Fatalf("%s: %v", method, res.Err)
		}
		if res.Scores.Accuracy < 0 || res.Scores.Accuracy > 1 {
			t.Fatalf("%s: accuracy %v out of range", method, res.Scores.Accuracy)
		}
		if res.AssignTime <= 0 {
			t.Errorf("%s: assignment time not measured", method)
		}
		// MNC is only defined over valid mappings; a negative value would
		// signal a malformed extraction.
		if res.Scores.MNC < 0 {
			t.Errorf("%s: MNC %v negative", method, res.Scores.MNC)
		}
	}
}

// TestRunInstanceSpecSparseEmbedding routes REGAL through the factored
// embedding path (k-NN candidate generation, no dense similarity matrix) and
// checks the result is a valid scored mapping.
func TestRunInstanceSpecSparseEmbedding(t *testing.T) {
	p := smallPair(t)
	var a algo.Aligner = regal.New()
	if _, ok := a.(algo.EmbeddingAligner); !ok {
		t.Fatal("REGAL must implement algo.EmbeddingAligner")
	}
	res := RunInstanceSpec(context.Background(), a, p, assign.JonkerVolgenant,
		RunSpec{AssignTopK: 10})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Scores.Accuracy < 0 || res.Scores.Accuracy > 1 {
		t.Fatalf("accuracy %v out of range", res.Scores.Accuracy)
	}
}

// TestRunInstanceSpecSparseFactored routes NSD and LREA through the factored
// candidate path (top-k against the rank-one factor lists, no dense
// similarity matrix) and checks each yields exactly the dense pipeline's
// scores: TopKFactor selects bitwise what TopKDense would from the densified
// matrix, so with the same solver the mapping must agree.
func TestRunInstanceSpecSparseFactored(t *testing.T) {
	p := smallPair(t)
	aligners := []algo.Aligner{nsd.New(), lrea.New()}
	for _, a := range aligners {
		if _, ok := a.(algo.FactorAligner); !ok {
			t.Fatalf("%s must implement algo.FactorAligner", a.Name())
		}
		res := RunInstanceSpec(context.Background(), a, p, assign.JonkerVolgenant,
			RunSpec{AssignTopK: 10})
		if res.Err != nil {
			t.Fatalf("%s: %v", a.Name(), res.Err)
		}
		dense := RunInstanceSpec(context.Background(), a, p, assign.JonkerVolgenant, RunSpec{})
		if dense.Err != nil {
			t.Fatalf("%s dense: %v", a.Name(), dense.Err)
		}
		if res.Scores.Accuracy < dense.Scores.Accuracy-1e-12 {
			t.Fatalf("%s: factored sparse accuracy %v below dense %v",
				a.Name(), res.Scores.Accuracy, dense.Scores.Accuracy)
		}
	}
}

// TestRunInstanceSpecSparseMatchesAcrossWorkers: the sparse pipeline is
// deterministic in the worker count.
func TestRunInstanceSpecSparseMatchesAcrossWorkers(t *testing.T) {
	p := smallPair(t)
	ref := RunInstanceSpec(context.Background(), isorank.New(), p, assign.JonkerVolgenant,
		RunSpec{AssignTopK: 10, Workers: 1})
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	for _, workers := range []int{2, 4} {
		res := RunInstanceSpec(context.Background(), isorank.New(), p, assign.JonkerVolgenant,
			RunSpec{AssignTopK: 10, Workers: workers})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		// Scores are a pure function of the mapping, so equal scores across
		// worker counts witness the determinism contract end to end.
		if res.Scores != ref.Scores {
			t.Fatalf("workers=%d: scores %+v != serial %+v", workers, res.Scores, ref.Scores)
		}
	}
}

// TestRunInstanceSpecZeroTopKUnchanged: AssignTopK=0 must reproduce the
// dense pipeline exactly (the byte-identity contract the golden test checks
// end to end).
func TestRunInstanceSpecZeroTopKUnchanged(t *testing.T) {
	p := smallPair(t)
	dense := RunInstance(isorank.New(), p, assign.JonkerVolgenant)
	spec := RunInstanceSpec(context.Background(), isorank.New(), p, assign.JonkerVolgenant, RunSpec{})
	if dense.Err != nil || spec.Err != nil {
		t.Fatal(dense.Err, spec.Err)
	}
	if dense.Scores != spec.Scores {
		t.Fatalf("scores differ: %+v vs %+v", dense.Scores, spec.Scores)
	}
}
