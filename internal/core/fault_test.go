package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/algo/nsd"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
	"graphalign/internal/noise"
	"graphalign/internal/obsv"
)

// hangAligner blocks until its context is cancelled — the stand-in for an
// algorithm stuck in a non-converging loop.
type hangAligner struct{}

func (hangAligner) Name() string                     { return "Hang" }
func (hangAligner) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }

func (hangAligner) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	// The context-free path must not be reachable from the fault-tolerant
	// runner; failing fast here beats hanging the test binary.
	return nil, errors.New("hang stub called without a context")
}

func (hangAligner) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// panicAligner panics mid-similarity — the stand-in for an out-of-bounds
// index or nil dereference inside an algorithm.
type panicAligner struct{}

func (panicAligner) Name() string                     { return "Panic" }
func (panicAligner) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }

func (panicAligner) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	panic("boom")
}

func samePairs(t *testing.T, n int) []noise.Pair {
	t.Helper()
	p := smallPair(t)
	pairs := make([]noise.Pair, n)
	for i := range pairs {
		pairs[i] = p
	}
	return pairs
}

// TestRunTimeoutIsolatesHangingRun pins the headline fault-tolerance
// guarantee: a hanging algorithm burns its budget and is marked with
// ErrTimeout, while sibling runs in the same grid complete normally.
func TestRunTimeoutIsolatesHangingRun(t *testing.T) {
	opts := testOptions()
	opts.Factory = func(name string) (algo.Aligner, error) {
		if name == "Hang" {
			return hangAligner{}, nil
		}
		return testFactory(name)
	}
	opts.RunTimeout = 30 * time.Millisecond
	opts.Workers = 4
	pairs := samePairs(t, 3)

	hung, err := runAveraged(opts, "cell", "Hang", pairs, assign.JonkerVolgenant)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(hung.Err, ErrTimeout) {
		t.Fatalf("hanging cell error = %v, want ErrTimeout cause", hung.Err)
	}
	var te *TimeoutError
	if !errors.As(hung.Err, &te) || te.Budget != opts.RunTimeout {
		t.Errorf("error does not carry the budget: %v", hung.Err)
	}

	ok, err := runAveraged(opts, "cell", "NSD", pairs, assign.JonkerVolgenant)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Err != nil {
		t.Fatalf("sibling cell failed alongside the hanging one: %v", ok.Err)
	}
	if ok.Scores.Accuracy <= 0 {
		t.Errorf("sibling cell produced no scores")
	}
}

// TestPanicIsRecoveredWithStack asserts a panicking run is converted into a
// typed error carrying the panic value and the captured stack.
func TestPanicIsRecoveredWithStack(t *testing.T) {
	reg := obsv.NewRegistry()
	tr := obsv.New().SetRegistry(reg)
	res := RunInstanceCtx(context.Background(), panicAligner{}, smallPair(t), assign.JonkerVolgenant, tr, 0)
	if !errors.Is(res.Err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic cause", res.Err)
	}
	var pe *PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("err is not a *PanicError: %v", res.Err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value = %v, want boom", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "Similarity") {
		t.Errorf("stack does not reach the panicking frame:\n%s", pe.Stack)
	}
	if got := reg.Counter("run_panics_total").Value(); got != 1 {
		t.Errorf("run_panics_total = %d, want 1", got)
	}
}

// TestPanickingRunLeavesPoolAlive mixes panicking and healthy runs in one
// fan-out: the panics are contained to their own slots and every healthy
// run still completes.
func TestPanickingRunLeavesPoolAlive(t *testing.T) {
	opts := testOptions()
	opts.Workers = 4
	pairs := samePairs(t, 6)
	runs := runInstances(opts, "cell", "mixed", func(i int) (algo.Aligner, error) {
		if i%2 == 0 {
			return panicAligner{}, nil
		}
		return nsd.New(), nil
	}, pairs, assign.JonkerVolgenant)
	for i, r := range runs {
		if i%2 == 0 {
			if !errors.Is(r.Err, ErrPanic) {
				t.Errorf("run %d: err = %v, want ErrPanic cause", i, r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("healthy run %d failed: %v", i, r.Err)
		} else if r.Scores.Accuracy <= 0 {
			t.Errorf("healthy run %d produced no scores", i)
		}
	}
}

// TestTimeoutCountsInRegistry asserts the timeout path feeds the
// run_timeouts_total counter.
func TestTimeoutCountsInRegistry(t *testing.T) {
	reg := obsv.NewRegistry()
	tr := obsv.New().SetRegistry(reg)
	res := RunInstanceCtx(context.Background(), hangAligner{}, smallPair(t), assign.JonkerVolgenant, tr, 10*time.Millisecond)
	if !errors.Is(res.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout cause", res.Err)
	}
	if got := reg.Counter("run_timeouts_total").Value(); got != 1 {
		t.Errorf("run_timeouts_total = %d, want 1", got)
	}
}

// TestCancelledGridBackfillsUnstarted cancels the grid context mid-fanout:
// unstarted slots are backfilled with context.Canceled and nothing
// cancelled lands in the journal.
func TestCancelledGridBackfillsUnstarted(t *testing.T) {
	opts := testOptions()
	opts.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Ctx = ctx
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	opts.Checkpoint = ck

	pairs := samePairs(t, 3)
	runs := runInstances(opts, "cell", "NSD", func(i int) (algo.Aligner, error) {
		if i == 0 {
			cancel()
		}
		return nsd.New(), nil
	}, pairs, assign.JonkerVolgenant)
	for i, r := range runs {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("run %d: err = %v, want context.Canceled", i, r.Err)
		}
		if _, ok := ck.Lookup("", "cell", "NSD", assign.JonkerVolgenant, i); ok {
			t.Errorf("cancelled run %d was journaled", i)
		}
	}
}

// TestCheckpointRoundTrip journals runs (including a failed one), reloads
// the journal, and asserts every field — scores, durations, allocation and
// error message — round-trips exactly.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opts := testOptions()
	ck, err := OpenCheckpoint(path, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	res := RunResult{
		Algorithm:      "NSD",
		Assign:         assign.JonkerVolgenant,
		SimilarityTime: 123456789 * time.Nanosecond,
		AssignTime:     987 * time.Nanosecond,
		AllocBytes:     4096,
	}
	res.Scores.Accuracy = 1.0 / 3.0 // not exactly representable in decimal
	res.Scores.EC = 0.1
	res.Scores.ICS = 0.2
	res.Scores.S3 = 0.3
	res.Scores.MNC = 0.4
	ck.Record("exp", "cell", "NSD", assign.JonkerVolgenant, 0, res)
	failed := RunResult{Algorithm: "NSD", Assign: assign.JonkerVolgenant, Err: errors.New("similarity: boom")}
	ck.Record("exp", "cell", "NSD", assign.JonkerVolgenant, 1, failed)
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path, opts, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	got, ok := ck2.Lookup("exp", "cell", "NSD", assign.JonkerVolgenant, 0)
	if !ok {
		t.Fatal("journaled run not found after resume")
	}
	if got.Scores != res.Scores {
		t.Errorf("scores did not round-trip: %+v vs %+v", got.Scores, res.Scores)
	}
	if got.SimilarityTime != res.SimilarityTime || got.AssignTime != res.AssignTime || got.AllocBytes != res.AllocBytes {
		t.Errorf("times/alloc did not round-trip: %+v", got)
	}
	if got.Algorithm != "NSD" || got.Assign != assign.JonkerVolgenant || got.Err != nil {
		t.Errorf("labels did not round-trip: %+v", got)
	}
	gotFailed, ok := ck2.Lookup("exp", "cell", "NSD", assign.JonkerVolgenant, 1)
	if !ok || gotFailed.Err == nil || gotFailed.Err.Error() != "similarity: boom" {
		t.Errorf("failed run did not round-trip: %+v", gotFailed)
	}
	if _, ok := ck2.Lookup("exp", "cell", "NSD", assign.JonkerVolgenant, 2); ok {
		t.Error("lookup invented a record")
	}
}

// TestCheckpointReplaySkipsRecompute seeds a journal with a sentinel result
// and asserts the fan-out replays it rather than building an aligner.
func TestCheckpointReplaySkipsRecompute(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opts := testOptions()
	ck, err := OpenCheckpoint(path, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	opts.Checkpoint = ck
	sentinel := RunResult{Algorithm: "sentinel", Assign: assign.JonkerVolgenant}
	sentinel.Scores.Accuracy = 0.875
	ck.Record("", "cell", "NSD", assign.JonkerVolgenant, 0, sentinel)

	runs := runInstances(opts, "cell", "NSD", func(int) (algo.Aligner, error) {
		t.Error("journaled run was rebuilt")
		return nil, errors.New("unreachable")
	}, samePairs(t, 1), assign.JonkerVolgenant)
	if runs[0].Algorithm != "sentinel" || runs[0].Scores.Accuracy != 0.875 {
		t.Errorf("journaled result was not replayed: %+v", runs[0])
	}
}

// TestCheckpointHeaderMismatch asserts a journal written under different
// options refuses to resume instead of silently mixing results.
func TestCheckpointHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opts := testOptions()
	ck, err := OpenCheckpoint(path, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	other := opts
	other.Seed = opts.Seed + 1
	if _, err := OpenCheckpoint(path, other, true); err == nil {
		t.Error("resume accepted a journal written with a different seed")
	}
	algosChanged := opts
	algosChanged.Algorithms = []string{"NSD"}
	if _, err := OpenCheckpoint(path, algosChanged, true); err == nil {
		t.Error("resume accepted a journal written with a different algorithm set")
	}
}

// TestCheckpointToleratesTruncatedTail simulates a SIGKILL torn write: the
// journal's final line is cut mid-record, and resume must load everything
// before it.
func TestCheckpointToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	opts := testOptions()
	ck, err := OpenCheckpoint(path, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	keep := RunResult{Algorithm: "NSD", Assign: assign.JonkerVolgenant}
	keep.Scores.Accuracy = 0.5
	ck.Record("exp", "cell", "NSD", assign.JonkerVolgenant, 0, keep)
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"run","exp":"exp","cell":"cell","algo":"NSD","met`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck2, err := OpenCheckpoint(path, opts, true)
	if err != nil {
		t.Fatalf("resume failed on a torn tail: %v", err)
	}
	defer ck2.Close()
	if _, ok := ck2.Lookup("exp", "cell", "NSD", assign.JonkerVolgenant, 0); !ok {
		t.Error("record before the torn tail was lost")
	}
}

// TestCheckpointResumeMissingFile pins the first-run convenience: -resume
// with no journal yet behaves like a fresh start.
func TestCheckpointResumeMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.ckpt")
	opts := testOptions()
	ck, err := OpenCheckpoint(path, opts, true)
	if err != nil {
		t.Fatalf("resume on a missing file: %v", err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("fresh journal was not created: %v", err)
	}
}
