package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
)

// stripVolatile drops wall-clock and memory columns — the only values that
// legitimately differ between two runs of the same experiment. Everything
// left (labels, scores) must be byte-identical across worker counts.
func stripVolatile(tab *Table) {
	kept := tab.ValueCols[:0]
	for _, c := range tab.ValueCols {
		if strings.Contains(c, "time") || strings.Contains(c, "mem") {
			continue
		}
		kept = append(kept, c)
	}
	tab.ValueCols = kept
}

func renderStripped(t *testing.T, tab *Table) []byte {
	t.Helper()
	stripVolatile(tab)
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorkersDeterminism asserts the headline guarantee of the parallel
// runner: the smallest synthetic figure renders byte-identical tables
// (scores and labels; times are stripped) with Workers=1 and Workers=8 at
// the same seed. The Workers=8 run also exercises the pool under -race.
func TestWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	run := func(workers int) []byte {
		opts := testOptions()
		opts.Reps = 2
		opts.Workers = workers
		tab, err := runModelFigure(opts, gen.BA)
		if err != nil {
			t.Fatal(err)
		}
		return renderStripped(t, tab)
	}
	serial := run(1)
	pooled := run(8)
	if !bytes.Equal(serial, pooled) {
		t.Errorf("Workers=1 and Workers=8 tables differ:\n--- serial ---\n%s\n--- workers=8 ---\n%s", serial, pooled)
	}
}

// TestNoisyInstancesIndependentOfWorkers pins the seed-derivation contract:
// instance generation must yield identical graphs whether reps are built
// sequentially or concurrently.
func TestNoisyInstancesIndependentOfWorkers(t *testing.T) {
	base := gen.ErdosRenyi(80, 0.1, rand.New(rand.NewSource(9)))
	build := func(workers int) []noise.Pair {
		opts := testOptions()
		opts.Reps = 6
		opts.Workers = workers
		pairs, err := noisyInstances(base, noise.TwoWay, 0.05, opts, noise.Options{}, "det-test")
		if err != nil {
			t.Fatal(err)
		}
		return pairs
	}
	a, b := build(1), build(8)
	for r := range a {
		if !reflect.DeepEqual(a[r].TrueMap, b[r].TrueMap) {
			t.Fatalf("rep %d: permutations differ across worker counts", r)
		}
		if !reflect.DeepEqual(a[r].Target.Edges(), b[r].Target.Edges()) {
			t.Fatalf("rep %d: target graphs differ across worker counts", r)
		}
		if !reflect.DeepEqual(a[r].Source.Edges(), b[r].Source.Edges()) {
			t.Fatalf("rep %d: source graphs differ across worker counts", r)
		}
	}
	// Reps must be genuinely independent, not copies of one stream.
	if reflect.DeepEqual(a[0].TrueMap, a[1].TrueMap) {
		t.Error("distinct reps produced identical permutations")
	}
}

// TestInstanceSeedDistinct spot-checks the splitmix derivation: cells,
// noise types, levels and reps must all move the seed.
func TestInstanceSeedDistinct(t *testing.T) {
	o := Options{Seed: 42}
	base := o.instanceSeed("cell", noise.OneWay, 0.01, 0)
	seen := map[int64]string{base: "base"}
	for name, s := range map[string]int64{
		"rep":   o.instanceSeed("cell", noise.OneWay, 0.01, 1),
		"cell":  o.instanceSeed("cell2", noise.OneWay, 0.01, 0),
		"noise": o.instanceSeed("cell", noise.TwoWay, 0.01, 0),
		"level": o.instanceSeed("cell", noise.OneWay, 0.02, 0),
		"seed":  (&Options{Seed: 43}).instanceSeed("cell", noise.OneWay, 0.01, 0),
		"shift": o.instanceSeed("cellx", noise.Type("one-way2"), 0.01, 0), // boundary shift
	} {
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between %q and %q", name, prev)
		}
		seen[s] = name
	}
	if got := o.instanceSeed("cell", noise.OneWay, 0.01, 0); got != base {
		t.Error("instanceSeed is not a pure function of its inputs")
	}
}

// TestRunAveragedParallelRace runs a small cell with a saturated pool; its
// value is mostly under `go test -race`, where any unsynchronized access in
// the fan-out path (results slice, progress callback, shared graphs) fails
// the build.
func TestRunAveragedParallelRace(t *testing.T) {
	opts := testOptions()
	opts.Reps = 8
	opts.Workers = 8
	var progressLines int
	opts.Progress = func(string, ...interface{}) { progressLines++ }
	base := gen.PowerlawCluster(60, 3, 0.3, rand.New(rand.NewSource(11)))
	pairs, err := noisyInstances(base, noise.OneWay, 0.02, opts, noise.Options{}, "race-test")
	if err != nil {
		t.Fatal(err)
	}
	mean, err := runAveraged(opts, "race-test", "NSD", pairs, assign.JonkerVolgenant)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Err != nil {
		t.Fatal(mean.Err)
	}
	if mean.Scores.Accuracy <= 0 {
		t.Errorf("accuracy = %v", mean.Scores.Accuracy)
	}
	// The serialized progress path is exercised via opts.progress.
	opts.progress("done %d", progressLines)
}

// TestMemProfilePopulatesAllocBytes pins the measurement-mode contract:
// plain runs leave AllocBytes zero, profiled runs populate it, and
// Options.MemProfile routes the fan-out through the profiled path.
func TestMemProfilePopulatesAllocBytes(t *testing.T) {
	p := smallPair(t)
	res := RunInstance(mustAligner(t, "NSD"), p, assign.JonkerVolgenant)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.AllocBytes != 0 {
		t.Errorf("plain RunInstance measured AllocBytes = %d, want 0", res.AllocBytes)
	}
	prof := RunInstanceProfiled(mustAligner(t, "NSD"), p, assign.JonkerVolgenant)
	if prof.Err != nil {
		t.Fatal(prof.Err)
	}
	if prof.AllocBytes == 0 {
		t.Error("profiled run measured no allocations")
	}
	opts := testOptions()
	opts.MemProfile = true
	mean, err := runAveraged(opts, "memprofile-test", "NSD", []noise.Pair{p, p}, assign.JonkerVolgenant)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Err != nil {
		t.Fatal(mean.Err)
	}
	if mean.AllocBytes == 0 {
		t.Error("MemProfile fan-out did not populate AllocBytes")
	}
}

func mustAligner(t *testing.T, name string) algo.Aligner {
	t.Helper()
	a, err := testFactory(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
