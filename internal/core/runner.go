// Package core is the experiment framework of the study: it composes graph
// sources (generators or dataset stand-ins), noise models, alignment
// algorithms, assignment methods and quality metrics into reproducible
// experiments, and regenerates every table and figure of the paper
// (see experiments.go for the per-figure specifications).
package core

import (
	"fmt"
	"runtime"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/metrics"
	"graphalign/internal/noise"
)

// Factory instantiates an alignment algorithm by its canonical paper name.
// The root graphalign package provides one wired to the Table 1 registry.
type Factory func(name string) (algo.Aligner, error)

// RunResult captures one algorithm run on one alignment instance.
type RunResult struct {
	Algorithm string
	Assign    assign.Method
	Scores    metrics.Scores
	// SimilarityTime is the time spent computing the similarity matrix;
	// the paper reports runtime excluding the assignment step.
	SimilarityTime time.Duration
	// AssignTime is the time spent extracting the matching.
	AssignTime time.Duration
	// AllocBytes is the total heap allocated during the run (a
	// single-process proxy for the paper's peak-memory measurements).
	AllocBytes uint64
	// Err records a failed run; Scores are zero in that case. The paper
	// likewise reports nothing for runs that exceed its limits.
	Err error
}

// RunInstance aligns pair.Source to pair.Target with the given algorithm
// and assignment method and scores the result against the instance's
// ground truth.
func RunInstance(a algo.Aligner, pair noise.Pair, method assign.Method) RunResult {
	res := RunResult{Algorithm: a.Name(), Assign: method}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	t0 := time.Now()
	sim, err := a.Similarity(pair.Source, pair.Target)
	res.SimilarityTime = time.Since(t0)
	if err != nil {
		res.Err = fmt.Errorf("similarity: %w", err)
		return res
	}

	t1 := time.Now()
	mapping, err := assign.Solve(method, sim)
	if err != nil {
		res.Err = fmt.Errorf("assignment: %w", err)
		return res
	}
	if method == assign.NearestNeighbor {
		mapping = assign.EnforceOneToOne(sim, mapping)
	}
	res.AssignTime = time.Since(t1)

	runtime.ReadMemStats(&after)
	res.AllocBytes = after.TotalAlloc - before.TotalAlloc

	res.Scores = metrics.All(pair.Source, pair.Target, mapping, pair.TrueMap)
	return res
}

// Average folds a set of run results into mean scores and times, skipping
// failed runs; ok reports how many runs succeeded.
func Average(runs []RunResult) (mean RunResult, ok int) {
	if len(runs) == 0 {
		return RunResult{}, 0
	}
	mean.Algorithm = runs[0].Algorithm
	mean.Assign = runs[0].Assign
	var simT, asgT time.Duration
	var alloc uint64
	for _, r := range runs {
		if r.Err != nil {
			continue
		}
		ok++
		mean.Scores.Accuracy += r.Scores.Accuracy
		mean.Scores.EC += r.Scores.EC
		mean.Scores.ICS += r.Scores.ICS
		mean.Scores.S3 += r.Scores.S3
		mean.Scores.MNC += r.Scores.MNC
		simT += r.SimilarityTime
		asgT += r.AssignTime
		alloc += r.AllocBytes
	}
	if ok == 0 {
		mean.Err = runs[0].Err
		return mean, 0
	}
	f := float64(ok)
	mean.Scores.Accuracy /= f
	mean.Scores.EC /= f
	mean.Scores.ICS /= f
	mean.Scores.S3 /= f
	mean.Scores.MNC /= f
	mean.SimilarityTime = simT / time.Duration(ok)
	mean.AssignTime = asgT / time.Duration(ok)
	mean.AllocBytes = alloc / uint64(ok)
	return mean, ok
}
