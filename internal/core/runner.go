// Package core is the experiment framework of the study: it composes graph
// sources (generators or dataset stand-ins), noise models, alignment
// algorithms, assignment methods and quality metrics into reproducible
// experiments, and regenerates every table and figure of the paper
// (see experiments.go for the per-figure specifications).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/matrix"
	"graphalign/internal/metrics"
	"graphalign/internal/noise"
	"graphalign/internal/obsv"
	"graphalign/internal/partition"
)

// Factory instantiates an alignment algorithm by its canonical paper name.
// The root graphalign package provides one wired to the Table 1 registry.
type Factory func(name string) (algo.Aligner, error)

// RunResult captures one algorithm run on one alignment instance.
type RunResult struct {
	Algorithm string
	Assign    assign.Method
	Scores    metrics.Scores
	// SimilarityTime is the time spent computing the similarity matrix;
	// the paper reports runtime excluding the assignment step.
	SimilarityTime time.Duration
	// AssignTime is the time spent extracting the matching.
	AssignTime time.Duration
	// AllocBytes is the total heap allocated during the run (a
	// single-process proxy for the paper's peak-memory measurements). It is
	// only populated by RunInstanceProfiled: process-wide allocation deltas
	// are meaningless when other runs execute concurrently, so the plain
	// RunInstance path leaves it zero and the memory experiments opt into
	// the serialized profiled mode instead (Options.MemProfile).
	AllocBytes uint64
	// Err records a failed run; Scores are zero in that case. The paper
	// likewise reports nothing for runs that exceed its limits.
	Err error
}

// RunInstance aligns pair.Source to pair.Target with the given algorithm
// and assignment method and scores the result against the instance's
// ground truth. It is safe to call concurrently as long as each call gets
// its own Aligner instance; AllocBytes is left zero (see RunInstanceProfiled).
func RunInstance(a algo.Aligner, pair noise.Pair, method assign.Method) RunResult {
	return RunInstanceCtx(context.Background(), a, pair, method, nil, 0)
}

// RunInstanceTraced is RunInstance reporting through a tracer: the run is
// bracketed by run_start/run_end events, the similarity, assignment and
// scoring stages become nested phase spans, and algorithms implementing
// algo.Instrumented record their own inner phases under the run span. A nil
// tracer reduces to exactly RunInstance — tracing never changes the
// computation, only what is observed about it.
func RunInstanceTraced(a algo.Aligner, pair noise.Pair, method assign.Method, tr *obsv.Tracer) RunResult {
	return RunInstanceCtx(context.Background(), a, pair, method, tr, 0)
}

// RunSpec bundles the optional knobs of a single run: observability,
// fault-tolerance, and the sparse assignment pipeline. The zero value means
// untraced, unbounded, dense assignment — exactly RunInstance.
type RunSpec struct {
	// Tracer receives run/phase spans; nil disables tracing.
	Tracer *obsv.Tracer
	// Budget bounds the run's wall clock (off when zero); see RunInstanceCtx.
	Budget time.Duration
	// AssignTopK, when positive, routes the assignment through the sparse
	// candidate pipeline: the similarity is reduced to per-row top-k
	// candidates (via k-NN over raw embeddings for algo.EmbeddingAligners,
	// skipping the dense matrix entirely; via bounded-heap row selection
	// otherwise) and solved by the sparse variant of the requested method —
	// exact methods map to the ε-scaling auction with a dense-JV fallback
	// when rows are unmatchable. Zero keeps the dense solvers and is
	// byte-identical to the pre-sparse pipeline.
	AssignTopK int
	// Workers bounds the sparse pipeline's intra-run parallel fan-out
	// (candidate generation and auction bidding rounds); 0 means one per
	// CPU. Results are identical for any value.
	Workers int
	// Partitions, when >= 2, routes the run through the partition-align-
	// stitch layer (internal/partition): both graphs are co-partitioned
	// into that many matched cluster pairs by structural-signature
	// chunking, every shard pair is aligned independently on the parallel
	// pool, and the shard mappings are stitched with an auction-based
	// boundary-refinement pass. 0 and 1 are off and byte-identical to the
	// monolithic path. Composes with AssignTopK (each shard's matching then
	// runs the sparse pipeline). See DESIGN.md §15.
	Partitions int
	// NewAligner builds a fresh aligner per shard for partitioned runs, so
	// shards never share mutable algorithm state across goroutines. When
	// nil, partitioned runs reuse the run's single aligner and the shards
	// are aligned sequentially instead of in parallel.
	NewAligner func() (algo.Aligner, error)
	// Incremental, when non-nil, routes the run through the evolving-graph
	// mode: cold-align once, then replay the spec's edit batches with
	// warm-started re-alignment (see IncrementalSpec). Takes precedence
	// over Partitions; the assignment method is fixed to the warm-startable
	// auction.
	Incremental *IncrementalSpec
}

// RunInstanceCtx is the fault-tolerant run entry point: the similarity stage
// observes ctx through the algorithm's cooperative cancellation checks, a
// positive budget bounds the run's wall clock (deadline exceeded becomes a
// *TimeoutError unwrapping to ErrTimeout), and a panic anywhere in the run
// is recovered into a *PanicError unwrapping to ErrPanic with the stack
// captured — the calling worker survives. With a background context and zero
// budget it is exactly RunInstanceTraced. A parent-context cancellation
// (ctx.Err() == context.Canceled) passes through unclassified so callers
// can distinguish "the whole grid was stopped" from "this run timed out".
func RunInstanceCtx(ctx context.Context, a algo.Aligner, pair noise.Pair, method assign.Method, tr *obsv.Tracer, budget time.Duration) RunResult {
	return RunInstanceSpec(ctx, a, pair, method, RunSpec{Tracer: tr, Budget: budget})
}

// RunInstanceSpec is RunInstanceCtx with the full run configuration,
// including the sparse assignment pipeline (RunSpec.AssignTopK).
func RunInstanceSpec(ctx context.Context, a algo.Aligner, pair noise.Pair, method assign.Method, spec RunSpec) RunResult {
	res, _ := RunInstanceMapped(ctx, a, pair, method, spec)
	return res
}

// RunInstanceMapped is RunInstanceSpec also returning the alignment mapping
// itself (mapping[u] = the pair.Target node aligned to pair.Source node u,
// -1 for unmatched). The experiment framework only needs the scores, but a
// serving front-end must hand the mapping back to the client; the mapping is
// nil exactly when res.Err is non-nil.
func RunInstanceMapped(ctx context.Context, a algo.Aligner, pair noise.Pair, method assign.Method, spec RunSpec) (res RunResult, outMapping []int) {
	tr, budget := spec.Tracer, spec.Budget
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	res = RunResult{Algorithm: a.Name(), Assign: method}
	run := tr.StartRun(a.Name(), map[string]any{
		"assign": string(method),
		"n_src":  pair.Source.N(),
		"n_dst":  pair.Target.N(),
	})
	if inst, ok := a.(algo.Instrumented); ok {
		inst.SetSpan(run)
	}
	reg := tr.Registry()
	reg.Counter("runs_total").Add(1)
	defer func() {
		if r := recover(); r != nil {
			res.Err = &PanicError{Value: r, Stack: debug.Stack()}
			res.Scores = metrics.Scores{}
			reg.Counter("run_panics_total").Add(1)
			res = endRunErr(run, reg, res)
		}
	}()

	if spec.Incremental != nil {
		return runInstanceIncremental(ctx, a, pair, spec, run, reg)
	}
	if spec.Partitions >= 2 {
		return runInstancePartitioned(ctx, a, pair, method, spec, run, reg)
	}

	// Similarity stage. With the sparse pipeline on and an aligner that can
	// expose embeddings or explicit low-rank factors, the dense matrix is
	// never materialized: the stage produces the factored form instead.
	sparse := spec.AssignTopK > 0
	var emb *assign.Embedding
	var fac *assign.FactorEmbedding
	ea, haveEmb := a.(algo.EmbeddingAligner)
	fa, haveFac := a.(algo.FactorAligner)
	useEmb := sparse && haveEmb
	useFac := sparse && !useEmb && haveFac
	var sim *matrix.Dense
	var err error
	sp := run.Phase("similarity")
	t0 := time.Now()
	if useEmb {
		sp.Set("factored", true)
		emb, err = ea.EmbeddingsCtx(ctx, pair.Source, pair.Target)
	} else if useFac {
		sp.Set("factored", true)
		fac, err = fa.FactorsCtx(ctx, pair.Source, pair.Target)
	} else {
		sim, err = algo.Similarity(ctx, a, pair.Source, pair.Target)
	}
	res.SimilarityTime = time.Since(t0)
	sp.End()
	if err != nil {
		res.Err = classifyRunErr(fmt.Errorf("similarity: %w", err), budget, reg)
		return endRunErr(run, reg, res), nil
	}

	sp = run.Phase("assign")
	sp.Set("method", string(method))
	n := pair.Source.N()
	sp.Set("size", n)
	reg.Histogram("lap_solve_size", obsv.SizeBuckets()).Observe(float64(n))
	t1 := time.Now()
	var mapping []int
	if sparse {
		sp.Set("topk", spec.AssignTopK)
		var cands *assign.Candidates
		var dense func() *matrix.Dense
		if useEmb {
			cands = assign.TopKEmbedding(emb, spec.AssignTopK, spec.Workers)
			dense = emb.Similarity
		} else if useFac {
			cands = assign.TopKFactor(fac, spec.AssignTopK, spec.Workers)
			dense = fac.Similarity
		} else {
			cands = assign.TopKDense(sim, spec.AssignTopK, spec.Workers)
			dense = func() *matrix.Dense { return sim }
		}
		var stats assign.SparseStats
		mapping, stats, err = assign.SolveSparse(method, cands, dense, spec.Workers)
		if err == nil {
			reg.Histogram("assign_candidates_per_row", obsv.SizeBuckets()).Observe(float64(stats.CandidatesPerRow))
			reg.Histogram("assign_auction_rounds", obsv.SizeBuckets()).Observe(float64(stats.Rounds))
			sp.Set("auction_rounds", stats.Rounds)
			if stats.FellBack {
				reg.Counter("assign_fallbacks_total").Add(1)
				sp.Set("fallback", true)
			}
		}
	} else {
		mapping, err = assign.Solve(method, sim)
		if err == nil && method == assign.NearestNeighbor {
			mapping = assign.EnforceOneToOne(sim, mapping)
		}
	}
	if err != nil {
		sp.End()
		res.Err = classifyRunErr(fmt.Errorf("assignment: %w", err), budget, reg)
		return endRunErr(run, reg, res), nil
	}
	res.AssignTime = time.Since(t1)
	sp.End()

	sp = run.Phase("metrics")
	res.Scores = metrics.All(pair.Source, pair.Target, mapping, pair.TrueMap)
	sp.End()
	run.End()
	return res, mapping
}

// runInstancePartitioned is the partition-align-stitch branch of
// RunInstanceMapped: the shard fan-out replaces the monolithic
// similarity/assign stages, and the partition layer's co-partition + shard
// wall time is reported as SimilarityTime with stitch + refinement as
// AssignTime, preserving the result shape the drivers average. The caller's
// deferred recover still guards this path, and errors flow through the same
// timeout/panic classification as monolithic runs.
func runInstancePartitioned(ctx context.Context, a algo.Aligner, pair noise.Pair, method assign.Method, spec RunSpec, run *obsv.Span, reg *obsv.Registry) (RunResult, []int) {
	res := RunResult{Algorithm: a.Name(), Assign: method}
	run.Set("partitions", spec.Partitions)
	mk := spec.NewAligner
	workers := spec.Workers
	if mk == nil {
		// No factory: the run's single aligner is the only instance
		// available, so the shards must run sequentially — aligners are not
		// required to be safe for concurrent Similarity calls.
		mk = func() (algo.Aligner, error) { return a, nil }
		workers = 1
	}
	mapping, pstats, err := partition.Align(ctx, mk, pair.Source, pair.Target, method, partition.Options{
		K:        spec.Partitions,
		Workers:  workers,
		TopK:     spec.AssignTopK,
		Tracer:   spec.Tracer,
		Span:     run,
		Registry: reg,
	})
	res.SimilarityTime = pstats.AlignTime
	res.AssignTime = pstats.StitchTime
	if err != nil {
		res.Err = classifyRunErr(err, spec.Budget, reg)
		return endRunErr(run, reg, res), nil
	}
	sp := run.Phase("metrics")
	res.Scores = metrics.All(pair.Source, pair.Target, mapping, pair.TrueMap)
	sp.End()
	run.End()
	return res, mapping
}

// endRunErr closes a failed run's span with its error annotated and counts
// it in the registry.
func endRunErr(run *obsv.Span, reg *obsv.Registry, res RunResult) RunResult {
	run.Set("err", res.Err.Error())
	run.End()
	reg.Counter("run_errors_total").Add(1)
	return res
}

// classifyRunErr maps a run's error onto its typed cause: a deadline blown
// inside the run becomes a *TimeoutError (counted as run_timeouts_total),
// while parent-context cancellation and ordinary algorithm errors pass
// through unchanged.
func classifyRunErr(err error, budget time.Duration, reg *obsv.Registry) error {
	if errors.Is(err, context.DeadlineExceeded) {
		reg.Counter("run_timeouts_total").Add(1)
		return &TimeoutError{Budget: budget}
	}
	return err
}

// memProfileMu serializes profiled runs: runtime.ReadMemStats reports
// process-wide counters, so two overlapping profiled runs would attribute
// each other's allocations to themselves.
var memProfileMu sync.Mutex

// RunInstanceProfiled is RunInstance plus an AllocBytes measurement taken
// from the process-wide TotalAlloc delta around the run. Profiled runs are
// serialized behind a global mutex so concurrent runs cannot pollute each
// other's delta; background runtime activity (GC metadata, timers) is still
// included, so treat AllocBytes as an upper-bound proxy for the paper's
// peak-memory numbers, not an exact footprint.
func RunInstanceProfiled(a algo.Aligner, pair noise.Pair, method assign.Method) RunResult {
	return runInstanceProfiled(context.Background(), a, pair, method, RunSpec{})
}

func runInstanceProfiled(ctx context.Context, a algo.Aligner, pair noise.Pair, method assign.Method, spec RunSpec) RunResult {
	memProfileMu.Lock()
	defer memProfileMu.Unlock()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res := RunInstanceSpec(ctx, a, pair, method, spec)
	runtime.ReadMemStats(&after)
	res.AllocBytes = after.TotalAlloc - before.TotalAlloc
	return res
}

// Average folds a set of run results into mean scores and times, skipping
// failed runs; ok reports how many runs succeeded. When every run failed,
// the returned result carries an error joining the distinct failure
// messages, so a mixed-cause cell (e.g. one timeout and two numerical
// failures) is not misreported as its first cause alone.
func Average(runs []RunResult) (mean RunResult, ok int) {
	if len(runs) == 0 {
		return RunResult{}, 0
	}
	mean.Algorithm = runs[0].Algorithm
	mean.Assign = runs[0].Assign
	var simT, asgT time.Duration
	var alloc uint64
	for _, r := range runs {
		if r.Err != nil {
			continue
		}
		ok++
		mean.Scores.Accuracy += r.Scores.Accuracy
		mean.Scores.EC += r.Scores.EC
		mean.Scores.ICS += r.Scores.ICS
		mean.Scores.S3 += r.Scores.S3
		mean.Scores.MNC += r.Scores.MNC
		simT += r.SimilarityTime
		asgT += r.AssignTime
		alloc += r.AllocBytes
	}
	if ok == 0 {
		mean.Err = joinRunErrors(runs)
		return mean, 0
	}
	f := float64(ok)
	mean.Scores.Accuracy /= f
	mean.Scores.EC /= f
	mean.Scores.ICS /= f
	mean.Scores.S3 /= f
	mean.Scores.MNC /= f
	mean.SimilarityTime = simT / time.Duration(ok)
	mean.AssignTime = asgT / time.Duration(ok)
	mean.AllocBytes = alloc / uint64(ok)
	return mean, ok
}

// joinRunErrors collapses the errors of an all-failed cell into one error
// listing each distinct message once, in first-occurrence order. A cell
// with a single distinct cause keeps its original error (and wrap chain).
func joinRunErrors(runs []RunResult) error {
	var firsts []error
	seen := make(map[string]bool)
	for _, r := range runs {
		if r.Err == nil || seen[r.Err.Error()] {
			continue
		}
		seen[r.Err.Error()] = true
		firsts = append(firsts, r.Err)
	}
	switch len(firsts) {
	case 0:
		return nil
	case 1:
		return firsts[0]
	}
	msgs := make([]string, len(firsts))
	for i, err := range firsts {
		msgs[i] = err.Error()
	}
	return errors.New(strings.Join(msgs, "; "))
}
