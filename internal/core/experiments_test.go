package core

import (
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps experiment-driver tests fast: minimum sizes, one rep,
// two cheap algorithms.
func tinyOptions() Options {
	o := DefaultOptions(testFactory)
	o.Scale = 0.05
	o.Reps = 1
	o.MaxNodes = 120
	o.Algorithms = []string{"IsoRank", "NSD"}
	o.PerRunBudget = time.Minute
	return o
}

// runExperiment is a helper asserting an experiment completes and yields
// rows.
func runExperiment(t *testing.T, id string, opts Options) *Table {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(opts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: no rows", id)
	}
	return tab
}

func TestFig1AssignmentSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	tab := runExperiment(t, "fig1", tinyOptions())
	// Both datasets, both algorithms, all four assignment methods present.
	seenAssign := map[string]bool{}
	seenDataset := map[string]bool{}
	for _, r := range tab.Rows {
		seenAssign[r.Labels["assign"]] = true
		seenDataset[r.Labels["dataset"]] = true
	}
	for _, m := range []string{"NN", "SG", "MWM", "JV"} {
		if !seenAssign[m] {
			t.Errorf("fig1 missing assignment method %s", m)
		}
	}
	if !seenDataset["arenas"] || !seenDataset["powerlaw"] {
		t.Errorf("fig1 datasets incomplete: %v", seenDataset)
	}
}

func TestFig9TimeAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	tab := runExperiment(t, "fig9", tinyOptions())
	for _, r := range tab.Rows {
		if _, ok := r.Values["sim_time"]; !ok {
			t.Fatal("fig9 rows must carry sim_time")
		}
	}
}

func TestFig10RealNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	tab := runExperiment(t, "fig10", tinyOptions())
	seen := map[string]bool{}
	for _, r := range tab.Rows {
		seen[r.Labels["dataset"]] = true
	}
	for _, ds := range []string{"highschool", "voles", "multimagna"} {
		if !seen[ds] {
			t.Errorf("fig10 missing dataset %s", ds)
		}
	}
	// The 99% variant should be easier than the 80% one for IsoRank.
	acc := map[string]float64{}
	for _, r := range tab.Rows {
		if r.Labels["dataset"] == "highschool" && r.Labels["algorithm"] == "IsoRank" {
			acc[r.Labels["fraction"]] = r.Values["accuracy"]
		}
	}
	if len(acc) == 4 && acc["0.99"] < acc["0.80"] {
		t.Errorf("99%% variant (%v) should beat 80%% variant (%v)", acc["0.99"], acc["0.80"])
	}
}

func TestScalabilityExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	opts := tinyOptions()
	opts.Algorithms = []string{"NSD"}
	for _, id := range []string{"fig11", "fig12", "fig13", "fig14"} {
		tab := runExperiment(t, id, opts)
		col := "sim_time"
		if id == "fig13" || id == "fig14" {
			col = "mem"
		}
		for _, r := range tab.Rows {
			if r.Labels["algorithm"] == "GRAAL" {
				t.Errorf("%s must exclude GRAAL (paper: quintic preprocessing)", id)
			}
			if v, ok := r.Values[col]; !ok || v < 0 {
				t.Errorf("%s: bad %s value in row %v", id, col, r)
			}
		}
	}
}

func TestScalabilityBudgetSkips(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	opts := tinyOptions()
	opts.Algorithms = []string{"IsoRank"}
	opts.PerRunBudget = time.Nanosecond // everything over budget after first point
	tab := runExperiment(t, "fig11", opts)
	// Only the first size should have produced a row.
	if len(tab.Rows) != 1 {
		t.Errorf("budget skip produced %d rows, want 1", len(tab.Rows))
	}
}

func TestFig15And16Density(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	opts := tinyOptions()
	tab15 := runExperiment(t, "fig15", opts)
	sweeps := map[string]bool{}
	for _, r := range tab15.Rows {
		sweeps[r.Labels["sweep"]] = true
	}
	if !sweeps["p-sweep"] || !sweeps["k-sweep"] {
		t.Errorf("fig15 sweeps incomplete: %v", sweeps)
	}
	tab16 := runExperiment(t, "fig16", opts)
	regimes := map[string]bool{}
	for _, r := range tab16.Rows {
		regimes[r.Labels["regime"]] = true
	}
	if !regimes["constant-degree"] || !regimes["constant-density"] {
		t.Errorf("fig16 regimes incomplete: %v", regimes)
	}
}

func TestTable3Summary(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	tab := runExperiment(t, "table3", tinyOptions())
	if len(tab.Rows) != 2 {
		t.Fatalf("table3 rows = %d, want one per algorithm", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if _, ok := r.Values["mean"]; !ok {
			t.Error("table3 rows must carry the mean column")
		}
	}
}

func TestRealNoiseExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	opts := tinyOptions()
	opts.Algorithms = []string{"NSD"}
	tab7 := runExperiment(t, "fig7", opts)
	if len(tab7.Rows) != 3*3*6 {
		t.Errorf("fig7 rows = %d, want 54 (3 datasets x 3 noise x 6 levels)", len(tab7.Rows))
	}
	tab8 := runExperiment(t, "fig8", opts)
	// 10 datasets x 1 noise type x 6 levels.
	if len(tab8.Rows) != 60 {
		t.Errorf("fig8 rows = %d, want 60", len(tab8.Rows))
	}
}

func TestAblationExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy ablation drivers")
	}
	opts := tinyOptions()
	for _, id := range []string{
		"ablation-isorank-prior", "ablation-lrea-rank",
		"ablation-lrea-vs-eigenalign", "ablation-grasp-params",
		"ablation-sgwl-beta", "ablation-cone-dim", "ablation-adaptive",
		"excluded-netalign",
	} {
		tab := runExperiment(t, id, opts)
		if len(tab.Rows) < 2 {
			t.Errorf("%s produced %d rows", id, len(tab.Rows))
		}
	}
	// The IsoRank prior ablation must show the degree prior beating the
	// uniform prior (the study's Section 6.1 claim).
	tab := runExperiment(t, "ablation-isorank-prior", opts)
	accs := map[string]float64{}
	for _, r := range tab.Rows {
		accs[r.Labels["prior"]] = r.Values["accuracy"]
	}
	if accs["degree-similarity"] < accs["uniform"] {
		t.Errorf("degree prior (%v) should beat uniform (%v)", accs["degree-similarity"], accs["uniform"])
	}
}

func TestProgressCallback(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	opts := tinyOptions()
	opts.Algorithms = []string{"NSD"}
	var lines []string
	opts.Progress = func(format string, args ...interface{}) {
		lines = append(lines, format)
	}
	runExperiment(t, "fig9", opts)
	if len(lines) == 0 {
		t.Error("progress callback never fired")
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "fig9") {
		t.Errorf("progress lines unexpected: %q", joined)
	}
}
