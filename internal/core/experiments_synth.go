package core

import (
	"fmt"
	"math/rand"

	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/noise"
)

// lowNoiseLevels is the paper's {0, 0.01, ..., 0.05} grid.
var lowNoiseLevels = []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05}

// highNoiseLevels is the paper's {0, 0.05, ..., 0.25} grid.
var highNoiseLevels = []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1: assignment methods on Arenas (stand-in) and PL graphs",
		Run:   runFig1,
	})
	for _, m := range []struct {
		id    string
		model gen.Model
		title string
	}{
		{"fig2", gen.ER, "Figure 2: Erdős–Rényi"},
		{"fig3", gen.BA, "Figure 3: Barabási–Albert"},
		{"fig4", gen.WS, "Figure 4: Watts–Strogatz"},
		{"fig5", gen.NW, "Figure 5: Newman–Watts"},
		{"fig6", gen.PL, "Figure 6: Powerlaw cluster"},
	} {
		model := m.model
		register(Experiment{
			ID:    m.id,
			Title: m.title + " — Accuracy, S3, MNC under three noise types",
			Run: func(opts Options) (*Table, error) {
				return runModelFigure(opts, model)
			},
		})
	}
}

// runModelFigure reproduces Figures 2-6: one synthetic model, three noise
// types, noise levels 0-5%, all algorithms aligned with JV (the study's
// common assignment stage), scored by Accuracy, S3 and MNC.
func runModelFigure(opts Options, model gen.Model) (*Table, error) {
	n := opts.scaledN(1133)
	rng := rand.New(rand.NewSource(opts.Seed))
	base, err := gen.GenerateScaled(model, n, rng)
	if err != nil {
		return nil, err
	}
	t := NewTable(
		fmt.Sprintf("%s graphs, n=%d", model, n),
		[]string{"noise", "level", "algorithm"},
		[]string{"accuracy", "s3", "mnc", "sim_time"},
	)
	opts.declareCells(len(noise.Types()) * len(lowNoiseLevels))
	for _, nt := range noise.Types() {
		for _, level := range lowNoiseLevels {
			pairs, err := noisyInstances(base, nt, level, opts, noise.Options{}, string(model))
			if err != nil {
				return nil, err
			}
			cell := fmt.Sprintf("%s/%s/%.2f", model, nt, level)
			for _, name := range opts.algorithms() {
				mean, err := runAveraged(opts, cell, name, pairs, assign.JonkerVolgenant)
				if err != nil {
					return nil, err
				}
				if mean.Err != nil {
					opts.progress("fig %s: %s failed at %s/%v: %v", model, name, nt, level, mean.Err)
					continue
				}
				t.Add(map[string]string{
					"noise":     string(nt),
					"level":     fmt.Sprintf("%.2f", level),
					"algorithm": name,
				}, map[string]float64{
					"accuracy": mean.Scores.Accuracy,
					"s3":       mean.Scores.S3,
					"mnc":      mean.Scores.MNC,
					"sim_time": mean.SimilarityTime.Seconds(),
				})
				opts.progress("%s %s level=%.2f %s acc=%.3f", model, nt, level, name, mean.Scores.Accuracy)
			}
			opts.cellDone(fmt.Sprintf("%s/%s/%.2f", model, nt, level))
		}
	}
	t.Sort()
	return t, nil
}

// runFig1 reproduces Figure 1: every algorithm under every assignment
// method on a real-graph stand-in (Arenas) and a synthetic powerlaw graph,
// with one-way noise keeping the graph connected.
func runFig1(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	arenas, err := opts.loadDataset("arenas")
	if err != nil {
		return nil, err
	}
	pl := gen.PowerlawCluster(opts.scaledN(1133), 5, 0.5, rng)
	t := NewTable(
		"Assignment methods (one-way noise, connected)",
		[]string{"dataset", "algorithm", "assign", "level"},
		[]string{"accuracy", "assign_time"},
	)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{{"arenas", arenas}, {"powerlaw", pl}}
	opts.declareCells(len(graphs) * len(lowNoiseLevels))
	for _, ds := range graphs {
		base, _ := graph.LargestComponent(ds.g)
		for _, level := range lowNoiseLevels {
			pairs, err := noisyInstances(base, noise.OneWay, level, opts, noise.Options{KeepConnected: true}, "fig1/"+ds.name)
			if err != nil {
				return nil, err
			}
			cell := fmt.Sprintf("fig1/%s/%.2f", ds.name, level)
			for _, name := range opts.algorithms() {
				for _, method := range assign.Methods() {
					mean, err := runAveraged(opts, cell, name, pairs, method)
					if err != nil {
						return nil, err
					}
					if mean.Err != nil {
						continue
					}
					t.Add(map[string]string{
						"dataset":   ds.name,
						"algorithm": name,
						"assign":    string(method),
						"level":     fmt.Sprintf("%.2f", level),
					}, map[string]float64{
						"accuracy":    mean.Scores.Accuracy,
						"assign_time": mean.AssignTime.Seconds(),
					})
				}
				opts.progress("fig1 %s level=%.2f %s done", ds.name, level, name)
			}
			opts.cellDone(fmt.Sprintf("fig1/%s/%.2f", ds.name, level))
		}
	}
	t.Sort()
	return t, nil
}

// effectiveScale returns Scale with the default applied.
func (o *Options) effectiveScale() float64 {
	if o.Scale <= 0 {
		return 0.2
	}
	if o.Scale > 1 {
		return 1
	}
	return o.Scale
}
