package core

import (
	"errors"
	"fmt"
	"time"
)

// ErrTimeout is the sentinel cause of runs killed by the per-run wall-clock
// budget (Options.RunTimeout). Match with errors.Is; the concrete error in
// RunResult.Err is a *TimeoutError carrying the budget.
var ErrTimeout = errors.New("run exceeded wall-clock budget")

// ErrPanic is the sentinel cause of runs that panicked inside the worker
// pool. Match with errors.Is; the concrete error in RunResult.Err is a
// *PanicError carrying the recovered value and stack.
var ErrPanic = errors.New("run panicked")

// TimeoutError records a run cancelled by the per-run budget. It unwraps to
// ErrTimeout so callers can classify without string matching.
type TimeoutError struct {
	// Budget is the wall-clock limit the run exceeded.
	Budget time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("run exceeded wall-clock budget (%s)", e.Budget)
}

// Unwrap makes errors.Is(err, ErrTimeout) true.
func (e *TimeoutError) Unwrap() error { return ErrTimeout }

// PanicError records a run that panicked. The panic is recovered in the
// worker that ran it, so one panicking algorithm marks only its own
// (cell, rep) as failed while the rest of the grid completes.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("run panicked: %v", e.Value)
}

// Unwrap makes errors.Is(err, ErrPanic) true.
func (e *PanicError) Unwrap() error { return ErrPanic }
