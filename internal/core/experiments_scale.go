package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11: time vs number of nodes (configuration model, avg degree 10)",
		Run:   func(o Options) (*Table, error) { return runScalability(o, true, false) },
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12: time vs average degree (configuration model)",
		Run:   func(o Options) (*Table, error) { return runScalability(o, false, false) },
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Figure 13: memory vs number of nodes (configuration model, avg degree 10)",
		Run:   func(o Options) (*Table, error) { return runScalability(o, true, true) },
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Figure 14: memory vs average degree (configuration model)",
		Run:   func(o Options) (*Table, error) { return runScalability(o, false, true) },
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Figure 15: density impact on Newman–Watts graphs (1% one-way noise)",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Figure 16: size vs quality on Newman–Watts graphs (1% one-way noise)",
		Run:   runFig16,
	})
}

// scaleSizes derives the node-count sweep for Figures 11/13. The paper uses
// 2^10..2^16; the sweep is shifted down by the scale factor but keeps the
// same doubling shape.
func scaleSizes(opts Options) []int {
	// scale 1.0 -> 2^10..2^16; scale 0.2 -> roughly 2^8..2^11.
	s := opts.effectiveScale()
	maxExp := 10 + int(math.Round(6*s))
	minExp := maxExp - 3
	if minExp < 7 {
		minExp = 7
	}
	var out []int
	for e := minExp; e <= maxExp; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// scaleDegrees derives the average-degree sweep for Figures 12/14 (paper:
// 10, 100, 1000, 10000 at 2^14 nodes).
func scaleDegrees(opts Options, n int) []int {
	candidates := []int{10, 100, 1000, 10000}
	var out []int
	for _, d := range candidates {
		if d < n/2 {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = []int{4}
	}
	return out
}

// runScalability reproduces Figures 11-14: runtime (or allocated memory)
// on configuration-model graphs with normal degree distribution, excluding
// the assignment step, averaged over Reps runs. GRAAL is excluded, as in
// the paper (quintic preprocessing). An algorithm that blows the
// PerRunBudget at one point is skipped for the larger points, mirroring
// the paper's 3-hour cap.
func runScalability(opts Options, byNodes, memory bool) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	valueCol := "sim_time"
	if memory {
		valueCol = "mem"
		// AllocBytes is only meaningful when runs are serialized and
		// profiled; see RunInstanceProfiled.
		opts.MemProfile = true
	}
	var xs []int
	fixedN := 0
	if byNodes {
		xs = scaleSizes(opts)
	} else {
		sizes := scaleSizes(opts)
		fixedN = sizes[len(sizes)-1] // the paper fixes 2^14; we fix our top size
		xs = scaleDegrees(opts, fixedN)
	}
	xLabel := "n"
	if !byNodes {
		xLabel = "degree"
	}
	t := NewTable(
		"Configuration-model scalability",
		[]string{xLabel, "algorithm"},
		[]string{valueCol},
	)
	algorithms := make([]string, 0, len(opts.algorithms()))
	for _, a := range opts.algorithms() {
		if a == "GRAAL" {
			continue // excluded by the paper for its O(n^5) preprocessing
		}
		algorithms = append(algorithms, a)
	}
	opts.declareCells(len(xs))
	skipped := make(map[string]bool)
	reps := opts.Reps
	if reps < 1 {
		reps = 1
	}
	if reps > 5 {
		reps = 5 // the paper averages 5 runs here
	}
	for _, x := range xs {
		n, deg := x, 10
		if !byNodes {
			n, deg = fixedN, x
		}
		degseq := gen.NormalDegrees(n, float64(deg), float64(deg)/5+1, rng)
		base := gen.ConfigurationModel(degseq, rng)
		repOpts := opts
		repOpts.Reps = reps
		pairs, err := noisyInstances(base, noise.OneWay, 0.01, repOpts, noise.Options{}, fmt.Sprintf("scal/%s/%d", xLabel, x))
		if err != nil {
			return nil, err
		}
		for _, name := range algorithms {
			if skipped[name] {
				continue
			}
			start := time.Now()
			mean, err := runAveraged(opts, fmt.Sprintf("scal/%s/%d", xLabel, x), name, pairs, assign.SortGreedy)
			if err != nil {
				return nil, err
			}
			if mean.Err != nil {
				opts.progress("scalability %s=%d: %s failed: %v", xLabel, x, name, mean.Err)
				skipped[name] = true
				continue
			}
			if opts.PerRunBudget > 0 && time.Since(start) > opts.PerRunBudget*time.Duration(reps) {
				skipped[name] = true
				opts.progress("scalability: %s exceeded budget at %s=%d; skipping larger points", name, xLabel, x)
			}
			val := mean.SimilarityTime.Seconds()
			if memory {
				val = float64(mean.AllocBytes)
			}
			t.Add(map[string]string{
				xLabel:      fmt.Sprintf("%d", x),
				"algorithm": name,
			}, map[string]float64{valueCol: val})
			opts.progress("scalability %s=%d %s %s=%.3g", xLabel, x, name, valueCol, val)
		}
		opts.cellDone(fmt.Sprintf("scal/%s/%d", xLabel, x))
	}
	t.Sort()
	return t, nil
}

// runFig15 reproduces the density study: Newman–Watts graphs of 2000 nodes
// (scaled), sweeping the rewiring probability p and the lattice degree k,
// with 1% one-way noise.
func runFig15(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.scaledN(2000)
	t := NewTable(
		fmt.Sprintf("Newman–Watts density sweep, n=%d, 1%% one-way noise", n),
		[]string{"sweep", "p", "k", "algorithm"},
		[]string{"accuracy"},
	)
	// Precompute both sweeps (applying the degree guards) so the cell total
	// is known before any point runs.
	type cell struct {
		sweep string
		p     float64
		k     int
	}
	var cells []cell
	// Part A: rewiring probability sweep at two lattice degrees.
	for _, k := range []int{10, 100} {
		if k >= n {
			continue
		}
		for _, p := range []float64{0.2, 0.5, 0.9} {
			cells = append(cells, cell{"p-sweep", p, k})
		}
	}
	// Part B: lattice degree sweep at p = 0.5.
	for _, k := range []int{10, 50, 100, 200, 400, 600} {
		kk := int(float64(k) * opts.effectiveScale() * 5) // keep degree meaningful at small n
		if kk < 4 {
			kk = 4
		}
		if kk >= n/2 {
			continue
		}
		cells = append(cells, cell{"k-sweep", 0.5, kk})
	}
	opts.declareCells(len(cells))
	for _, c := range cells {
		if err := fig15Point(opts, t, rng, c.sweep, n, c.k, c.p); err != nil {
			return nil, err
		}
		opts.cellDone(fmt.Sprintf("fig15/%s/p=%.1f/k=%d", c.sweep, c.p, c.k))
	}
	t.Sort()
	return t, nil
}

func fig15Point(opts Options, t *Table, rng *rand.Rand, sweep string, n, k int, p float64) error {
	if k%2 == 1 {
		k++
	}
	base := gen.NewmanWatts(n, k, p, rng)
	pairs, err := noisyInstances(base, noise.OneWay, 0.01, opts, noise.Options{}, fmt.Sprintf("fig15/%s/%g/%d", sweep, p, k))
	if err != nil {
		return err
	}
	cell := fmt.Sprintf("fig15/%s/%g/%d", sweep, p, k)
	for _, name := range opts.algorithms() {
		mean, err := runAveraged(opts, cell, name, pairs, assign.JonkerVolgenant)
		if err != nil {
			return err
		}
		if mean.Err != nil {
			opts.progress("fig15 %s p=%.1f k=%d: %s failed: %v", sweep, p, k, name, mean.Err)
			continue
		}
		t.Add(map[string]string{
			"sweep": sweep, "p": fmt.Sprintf("%.1f", p),
			"k": fmt.Sprintf("%d", k), "algorithm": name,
		}, map[string]float64{"accuracy": mean.Scores.Accuracy})
		opts.progress("fig15 %s p=%.1f k=%d %s acc=%.3f", sweep, p, k, name, mean.Scores.Accuracy)
	}
	return nil
}

// runFig16 reproduces the size study: growing Newman–Watts graphs at
// constant degree (k=10, decreasing density) and at constant density
// (k=n/10), with 1% one-way noise.
func runFig16(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	t := NewTable(
		"Newman–Watts size sweep, 1% one-way noise",
		[]string{"regime", "n", "algorithm"},
		[]string{"accuracy"},
	)
	sizes := []int{}
	for _, paperN := range []int{500, 1000, 2000, 4000} {
		sizes = append(sizes, opts.scaledN(paperN))
	}
	// Precompute the (regime, n) grid passing the degree guards so the cell
	// total is known before any point runs.
	type cell struct {
		regime string
		n, k   int
	}
	var cells []cell
	for _, regime := range []string{"constant-degree", "constant-density"} {
		for _, n := range sizes {
			k := 10
			if regime == "constant-density" {
				k = n / 10
			}
			if k%2 == 1 {
				k++
			}
			if k < 2 || k >= n/2 {
				continue
			}
			cells = append(cells, cell{regime, n, k})
		}
	}
	opts.declareCells(len(cells))
	for _, c := range cells {
		base := gen.NewmanWatts(c.n, c.k, 0.5, rng)
		pairs, err := noisyInstances(base, noise.OneWay, 0.01, opts, noise.Options{}, fmt.Sprintf("fig16/%s/%d", c.regime, c.n))
		if err != nil {
			return nil, err
		}
		cell := fmt.Sprintf("fig16/%s/%d", c.regime, c.n)
		for _, name := range opts.algorithms() {
			mean, err := runAveraged(opts, cell, name, pairs, assign.JonkerVolgenant)
			if err != nil {
				return nil, err
			}
			if mean.Err != nil {
				continue
			}
			t.Add(map[string]string{
				"regime": c.regime, "n": fmt.Sprintf("%d", c.n), "algorithm": name,
			}, map[string]float64{"accuracy": mean.Scores.Accuracy})
			opts.progress("fig16 %s n=%d %s acc=%.3f", c.regime, c.n, name, mean.Scores.Accuracy)
		}
		opts.cellDone(fmt.Sprintf("fig16/%s/%d", c.regime, c.n))
	}
	t.Sort()
	return t, nil
}
