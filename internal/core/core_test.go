package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/algo/isorank"
	"graphalign/internal/algo/nsd"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/metrics"
	"graphalign/internal/noise"
)

// testFactory resolves a small, fast subset of algorithms for framework
// tests.
func testFactory(name string) (algo.Aligner, error) {
	switch name {
	case "IsoRank":
		return isorank.New(), nil
	case "NSD":
		return nsd.New(), nil
	default:
		return nil, fmt.Errorf("test factory: unknown %q", name)
	}
}

func testOptions() Options {
	o := DefaultOptions(testFactory)
	o.Scale = 0.1
	o.Reps = 1
	o.Algorithms = []string{"IsoRank", "NSD"}
	o.PerRunBudget = time.Minute
	return o
}

func smallPair(t *testing.T) noise.Pair {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g := gen.PowerlawCluster(60, 3, 0.3, rng)
	p, err := noise.Apply(g, noise.OneWay, 0.02, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunInstance(t *testing.T) {
	p := smallPair(t)
	res := RunInstance(isorank.New(), p, assign.JonkerVolgenant)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Algorithm != "IsoRank" || res.Assign != assign.JonkerVolgenant {
		t.Error("metadata wrong")
	}
	if res.Scores.Accuracy <= 0.3 {
		t.Errorf("accuracy %v suspiciously low", res.Scores.Accuracy)
	}
	if res.SimilarityTime <= 0 {
		t.Error("similarity time not measured")
	}
}

func TestRunInstanceNNOneToOne(t *testing.T) {
	p := smallPair(t)
	res := RunInstance(isorank.New(), p, assign.NearestNeighbor)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// MNC of a valid one-to-one mapping on near-isomorphic graphs must be
	// well above zero; mostly this asserts the NN path doesn't crash.
	if res.Scores.MNC < 0 {
		t.Error("MNC negative")
	}
}

func TestAverage(t *testing.T) {
	runs := []RunResult{
		{Algorithm: "A", Scores: scores(0.5), SimilarityTime: time.Second},
		{Algorithm: "A", Scores: scores(1.0), SimilarityTime: 3 * time.Second},
		{Algorithm: "A", Err: errors.New("failed")},
	}
	mean, ok := Average(runs)
	if ok != 2 {
		t.Fatalf("ok = %d, want 2", ok)
	}
	if mean.Scores.Accuracy != 0.75 {
		t.Errorf("mean accuracy = %v", mean.Scores.Accuracy)
	}
	if mean.SimilarityTime != 2*time.Second {
		t.Errorf("mean time = %v", mean.SimilarityTime)
	}
	// All-failed case.
	_, ok = Average([]RunResult{{Err: errors.New("x")}})
	if ok != 0 {
		t.Error("all-failed should report ok=0")
	}
	if _, ok := Average(nil); ok != 0 {
		t.Error("empty input should report ok=0")
	}
}

func TestAverageAllFailedJoinsDistinctErrors(t *testing.T) {
	// Regression: an all-failed cell used to surface only runs[0].Err,
	// misreporting mixed-cause failures.
	timeout := errors.New("similarity: timeout")
	singular := errors.New("assignment: singular matrix")
	mean, ok := Average([]RunResult{
		{Algorithm: "A", Err: timeout},
		{Algorithm: "A", Err: singular},
		{Algorithm: "A", Err: timeout}, // duplicate cause must not repeat
	})
	if ok != 0 {
		t.Fatalf("ok = %d, want 0", ok)
	}
	if mean.Err == nil {
		t.Fatal("all-failed mean must carry an error")
	}
	msg := mean.Err.Error()
	if !strings.Contains(msg, "timeout") || !strings.Contains(msg, "singular matrix") {
		t.Errorf("joined error %q missing a distinct cause", msg)
	}
	if strings.Count(msg, "timeout") != 1 {
		t.Errorf("joined error %q repeats a duplicate cause", msg)
	}
	// A single distinct cause keeps the original error value (and its wrap
	// chain) rather than a re-packaged copy.
	mean, _ = Average([]RunResult{{Err: timeout}, {Err: timeout}})
	if !errors.Is(mean.Err, timeout) {
		t.Errorf("single-cause error not preserved: %v", mean.Err)
	}
}

func scores(v float64) metrics.Scores {
	return metrics.Scores{Accuracy: v}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", []string{"x"}, []string{"accuracy", "sim_time", "mem"})
	tab.Add(map[string]string{"x": "10"}, map[string]float64{"accuracy": 0.5, "sim_time": 1.25, "mem": 2 * 1024 * 1024})
	tab.Add(map[string]string{"x": "2"}, map[string]float64{"accuracy": 1})
	tab.Sort()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "1.250s") {
		t.Error("time formatting missing")
	}
	if !strings.Contains(out, "2.0MB") {
		t.Error("memory formatting missing")
	}
	if !strings.Contains(out, "-") {
		t.Error("missing values should render as -")
	}
	// Numeric-aware sort: "2" before "10".
	if strings.Index(out, "\n2 ") > strings.Index(out, "\n10") && strings.Index(out, "\n10") != -1 {
		t.Errorf("rows not numerically sorted:\n%s", out)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := IDs()
	wantIDs := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"table1", "table3",
		"ablation-isorank-prior", "ablation-lrea-rank", "ablation-lrea-vs-eigenalign", "ablation-grasp-params",
		"ablation-sgwl-beta", "ablation-cone-dim", "ablation-adaptive", "excluded-netalign",
	}
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range wantIDs {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, err := Get("fig2"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1Experiment(t *testing.T) {
	e, err := Get("table1")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("table1 has %d rows, want 9 algorithms", len(tab.Rows))
	}
}

func TestModelFigureSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	opts := testOptions()
	tab, err := runModelFigure(opts, gen.BA)
	if err != nil {
		t.Fatal(err)
	}
	// 3 noise types x 6 levels x 2 algorithms = 36 rows (all should run).
	if len(tab.Rows) != 36 {
		t.Fatalf("rows = %d, want 36", len(tab.Rows))
	}
	// Zero-noise accuracy for IsoRank on BA should be near 1.
	for _, row := range tab.Rows {
		if row.Labels["level"] == "0.00" && row.Labels["algorithm"] == "IsoRank" {
			if row.Values["accuracy"] < 0.8 {
				t.Errorf("IsoRank zero-noise accuracy %v", row.Values["accuracy"])
			}
		}
	}
}

func TestScaledN(t *testing.T) {
	o := Options{Scale: 0.5}
	if got := o.scaledN(1000); got != 500 {
		t.Errorf("scaledN = %d", got)
	}
	o.Scale = 0.01
	if got := o.scaledN(1000); got != 100 {
		t.Errorf("floor not applied: %d", got)
	}
	o.Scale = 2
	if got := o.scaledN(1000); got != 1000 {
		t.Errorf("cap not applied: %d", got)
	}
	o.Scale = 0
	if got := o.scaledN(1000); got != 200 {
		t.Errorf("default scale not applied: %d", got)
	}
}

func TestEffectiveScale(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{
		{0, 0.2}, {-1, 0.2}, {0.3, 0.3}, {5, 1},
	} {
		o := Options{Scale: c.in}
		if got := o.effectiveScale(); got != c.want {
			t.Errorf("effectiveScale(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestScaleSizes(t *testing.T) {
	o := Options{Scale: 1}
	sizes := scaleSizes(o)
	if sizes[len(sizes)-1] != 1<<16 {
		t.Errorf("full scale should top out at 2^16, got %d", sizes[len(sizes)-1])
	}
	o.Scale = 0.2
	small := scaleSizes(o)
	if small[len(small)-1] >= sizes[len(sizes)-1] {
		t.Error("scaled sizes should shrink")
	}
	for i := 1; i < len(small); i++ {
		if small[i] != small[i-1]*2 {
			t.Error("sizes must double")
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := NewTable("demo", []string{"x"}, []string{"accuracy"})
	tab.Add(map[string]string{"x": "a,b"}, map[string]float64{"accuracy": 0.5})
	tab.Add(map[string]string{"x": "c"}, nil)
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "x,accuracy\n") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, `"a,b",0.5`) {
		t.Errorf("comma label not quoted:\n%s", out)
	}
	if !strings.Contains(out, "c,\n") {
		t.Errorf("missing value should be empty field:\n%s", out)
	}
}
