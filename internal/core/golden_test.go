package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algo/lrea"
	"graphalign/internal/algo/nsd"
	"graphalign/internal/cache"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden fixtures from current output")

// goldenOptions is the pinned configuration of the golden regression grid:
// a small two-algorithm fig10 run whose full CSV output is committed as a
// fixture. fig10 is used because its value columns are all quality scores
// (accuracy, mnc, s3) — no wall-clock columns — so the CSV is byte-stable
// across machines.
func goldenOptions() Options {
	factory := func(name string) (algo.Aligner, error) {
		switch name {
		case "NSD":
			return nsd.New(), nil
		case "LREA":
			return lrea.New(), nil
		}
		return nil, fmt.Errorf("golden factory: unknown algorithm %q", name)
	}
	opts := DefaultOptions(factory)
	opts.Scale = 0.05
	opts.Reps = 1
	opts.Seed = 42
	opts.Workers = 2
	opts.MaxNodes = 120
	opts.Algorithms = []string{"NSD", "LREA"}
	return opts
}

func renderGolden(t *testing.T, opts Options) []byte {
	t.Helper()
	table, err := RunExperiment("fig10", opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := table.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenFig10 regenerates the pinned-seed golden grid and fails on any
// byte difference from the committed fixture. A diff means an algorithm,
// the noise model, the seed derivation, or the CSV renderer changed
// behavior; if the change is intentional, regenerate the fixture with
//
//	go test ./internal/core -run TestGoldenFig10 -update-golden
//
// and commit the result alongside the change that explains it.
func TestGoldenFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid runs two algorithms over three datasets")
	}
	got := renderGolden(t, goldenOptions())
	path := filepath.Join("testdata", "golden_fig10.csv")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden fixture rewritten: %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden output drifted from %s\n--- want (%d bytes)\n%s\n--- got (%d bytes)\n%s",
			path, len(want), want, len(got), got)
	}
}

// TestGoldenFig10CachedByteIdentical reruns the golden grid with the
// artifact cache enabled — both unbounded and via the CacheBudgetBytes knob
// RunExperiment wires up — and requires CSV output byte-identical to the
// committed fixture, proving the tentpole contract end-to-end: caching never
// changes results.
func TestGoldenFig10CachedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid runs two algorithms over three datasets")
	}
	path := filepath.Join("testdata", "golden_fig10.csv")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update-golden): %v", err)
	}

	withCache := goldenOptions()
	withCache.Cache = cache.New(0)
	if got := renderGolden(t, withCache); !bytes.Equal(got, want) {
		t.Fatalf("cache-on output differs from cache-off fixture\n--- want\n%s\n--- got\n%s", want, got)
	}
	if withCache.Cache.Len() == 0 {
		t.Fatal("cache unused: the aligners never drew artifacts through it")
	}

	withBudget := goldenOptions()
	withBudget.CacheBudgetBytes = 8 << 20
	if got := renderGolden(t, withBudget); !bytes.Equal(got, want) {
		t.Fatal("CacheBudgetBytes run differs from cache-off fixture")
	}
}
