package core

import (
	"fmt"
	"math/rand"

	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: algorithm characteristics (static registry)",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Table 3: summary results vs graph model (derived from figs 2-6 data)",
		Run:   runTable3,
	})
}

// table1Rows mirrors the paper's Table 1; kept here (rather than read from
// the facade registry) to avoid an import cycle — the facade asserts the
// two stay in sync in its tests.
var table1Rows = []struct {
	Name, Prepr, Assign, Opt, Time, Params string
	Year                                   int
	Bio                                    bool
}{
	{"IsoRank", "Yes", "SG", "Any", "O(n^4)", "alpha=0.9", 2008, true},
	{"GRAAL", "Yes", "SG", "Any", "O(n^3)", "alpha=0.8", 2010, false},
	{"NSD", "Both", "SG", "Any", "O(n^2)", "alpha=0.8", 2011, false},
	{"LREA", "No", "MWM", "Any", "O(n log n)", "iterations=40", 2018, false},
	{"REGAL", "No", "NN", "Any", "O(n log n)", "k=2, p=10 log n", 2018, false},
	{"GWL", "No", "NN", "Any", "O(n^3)", "epoch=1", 2019, false},
	{"S-GWL", "No", "NN", "Any", "O(n^2 log n)", "beta in {0.025, 0.1}", 2019, false},
	{"CONE", "No", "NN", "MNC", "O(n^2)", "dim=512", 2020, false},
	{"GRASP", "No", "JV", "Any", "O(n^3)", "q=100, k=20", 2021, false},
}

func runTable1(Options) (*Table, error) {
	t := NewTable(
		"Algorithms considered in the experiments",
		[]string{"algorithm", "year", "prepr", "bio", "assign", "opt", "time", "parameters"},
		nil,
	)
	for _, r := range table1Rows {
		bio := "No"
		if r.Bio {
			bio = "Yes"
		}
		t.Add(map[string]string{
			"algorithm":  r.Name,
			"year":       fmt.Sprintf("%d", r.Year),
			"prepr":      r.Prepr,
			"bio":        bio,
			"assign":     r.Assign,
			"opt":        r.Opt,
			"time":       r.Time,
			"parameters": r.Params,
		}, nil)
	}
	return t, nil
}

// runTable3 derives the paper's summary table: per graph model, the mean
// accuracy of every algorithm across noise types at a representative noise
// level (2%), marking the two best per model.
func runTable3(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.scaledN(1133)
	t := NewTable(
		fmt.Sprintf("Summary vs graph model (mean accuracy at 2%% noise, n=%d)", n),
		[]string{"algorithm"},
		[]string{"ER", "BA", "WS", "NW", "PL", "mean"},
	)
	scores := make(map[string]map[string]float64) // algorithm -> model -> acc
	opts.declareCells(len(gen.Models()))
	for _, model := range gen.Models() {
		base, err := gen.GenerateScaled(model, n, rng)
		if err != nil {
			return nil, err
		}
		var pairs []noise.Pair
		for _, nt := range noise.Types() {
			ps, err := noisyInstances(base, nt, 0.02, opts, noise.Options{}, "table3/"+string(model))
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, ps...)
		}
		for _, name := range opts.algorithms() {
			mean, err := runAveraged(opts, "table3/"+string(model), name, pairs, assign.JonkerVolgenant)
			if err != nil {
				return nil, err
			}
			if mean.Err != nil {
				continue
			}
			if scores[name] == nil {
				scores[name] = make(map[string]float64)
			}
			scores[name][string(model)] = mean.Scores.Accuracy
			opts.progress("table3 %s %s acc=%.3f", model, name, mean.Scores.Accuracy)
		}
		opts.cellDone("table3/" + string(model))
	}
	for _, name := range opts.algorithms() {
		row := scores[name]
		if row == nil {
			continue
		}
		vals := map[string]float64{}
		var sum float64
		var cnt int
		for _, model := range gen.Models() {
			if v, ok := row[string(model)]; ok {
				vals[string(model)] = v
				sum += v
				cnt++
			}
		}
		if cnt > 0 {
			vals["mean"] = sum / float64(cnt)
		}
		t.Add(map[string]string{"algorithm": name}, vals)
	}
	return t, nil
}
