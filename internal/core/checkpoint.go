package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphalign/internal/assign"
)

// Checkpoint journals completed (cell, rep) run results as JSONL so an
// interrupted experiment can resume without redoing finished work. The file
// starts with one header record pinning the options that determine results
// (seed, scale, reps, algorithm set); every subsequent line is one run
// record. Scores and times round-trip exactly (encoding/json preserves
// float64 bit patterns), so a resumed experiment renders byte-identical
// tables. Errors are journaled as their messages — enough to reproduce the
// rendered output, though typed causes (ErrTimeout/ErrPanic) flatten to
// plain errors on reload.
//
// Record and Lookup are safe for concurrent use by the worker pool; each
// record is written as one line so a killed process loses at most the line
// being written, and Open in resume mode tolerates that truncated tail.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	seen map[string]RunResult
	err  error
}

// ckptHeader is the first line of a checkpoint file. Version guards the
// schema; the remaining fields guard against resuming with options that
// would produce different results.
type ckptHeader struct {
	Kind       string   `json:"kind"`
	Version    int      `json:"version"`
	Seed       int64    `json:"seed"`
	Scale      float64  `json:"scale"`
	Reps       int      `json:"reps"`
	Algorithms []string `json:"algorithms,omitempty"`
}

// ckptRecord is one journaled run, keyed by experiment, grid cell,
// algorithm label, assignment method and rep index.
type ckptRecord struct {
	Kind   string     `json:"kind"`
	Exp    string     `json:"exp,omitempty"`
	Cell   string     `json:"cell"`
	Algo   string     `json:"algo"`
	Method string     `json:"method"`
	Rep    int        `json:"rep"`
	Result ckptResult `json:"result"`
}

// ckptResult is the serialized form of RunResult. Durations are journaled
// as integer nanoseconds.
type ckptResult struct {
	Algorithm  string  `json:"algorithm,omitempty"`
	Assign     string  `json:"assign,omitempty"`
	Accuracy   float64 `json:"accuracy,omitempty"`
	EC         float64 `json:"ec,omitempty"`
	ICS        float64 `json:"ics,omitempty"`
	S3         float64 `json:"s3,omitempty"`
	MNC        float64 `json:"mnc,omitempty"`
	SimNS      int64   `json:"sim_ns,omitempty"`
	AssignNS   int64   `json:"assign_ns,omitempty"`
	AllocBytes uint64  `json:"alloc_bytes,omitempty"`
	Err        string  `json:"err,omitempty"`
}

const checkpointVersion = 1

// checkpointHeader derives the compatibility header from the options.
func checkpointHeader(opts Options) ckptHeader {
	return ckptHeader{
		Kind:       "header",
		Version:    checkpointVersion,
		Seed:       opts.Seed,
		Scale:      opts.Scale,
		Reps:       opts.Reps,
		Algorithms: opts.algorithms(),
	}
}

// OpenCheckpoint opens a run journal at path. With resume false the file is
// created (or truncated) and the header written. With resume true an
// existing file is loaded — its header must match the current options, its
// records seed Lookup, and new records append to it; a missing file falls
// back to a fresh journal, so `-resume` is safe on the first run too.
func OpenCheckpoint(path string, opts Options, resume bool) (*Checkpoint, error) {
	ck := &Checkpoint{seen: make(map[string]RunResult)}
	if resume {
		if err := ck.load(path, checkpointHeader(opts)); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				return nil, err
			}
			resume = false
		}
	}
	if resume {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		ck.f = f
		return ck, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	ck.f = f
	if err := ck.writeLine(checkpointHeader(opts)); err != nil {
		f.Close()
		return nil, err
	}
	return ck, nil
}

// load reads an existing journal, verifying the header against want and
// collecting every run record. A final line without a trailing newline is
// the torn write of a killed process and is ignored; malformed lines
// elsewhere are corruption and are reported.
func (ck *Checkpoint) load(path string, want ckptHeader) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lines := strings.Split(string(raw), "\n")
	// A well-formed file ends with a newline, leaving a final empty element;
	// anything else in the last slot is a truncated record.
	last := len(lines) - 1
	sawHeader := false
	for i, line := range lines {
		if line == "" {
			continue
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &kind); err != nil {
			if i == last {
				break // torn tail after SIGKILL; redo that run
			}
			return fmt.Errorf("checkpoint %s: line %d: %w", path, i+1, err)
		}
		switch kind.Kind {
		case "header":
			var h ckptHeader
			if err := json.Unmarshal([]byte(line), &h); err != nil {
				return fmt.Errorf("checkpoint %s: header: %w", path, err)
			}
			if err := h.check(want); err != nil {
				return fmt.Errorf("checkpoint %s: %w", path, err)
			}
			sawHeader = true
		case "run":
			var r ckptRecord
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				if i == last {
					break
				}
				return fmt.Errorf("checkpoint %s: line %d: %w", path, i+1, err)
			}
			if !sawHeader {
				return fmt.Errorf("checkpoint %s: run record before header", path)
			}
			ck.seen[ckptKey(r.Exp, r.Cell, r.Algo, assign.Method(r.Method), r.Rep)] = r.Result.runResult()
		default:
			return fmt.Errorf("checkpoint %s: line %d: unknown kind %q", path, i+1, kind.Kind)
		}
	}
	if !sawHeader {
		return fmt.Errorf("checkpoint %s: missing header", path)
	}
	return nil
}

// check compares the journaled header against the current options' header.
func (h ckptHeader) check(want ckptHeader) error {
	if h.Version != want.Version {
		return fmt.Errorf("journal version %d, this build writes %d", h.Version, want.Version)
	}
	if h.Seed != want.Seed || h.Scale != want.Scale || h.Reps != want.Reps {
		return fmt.Errorf("journal written with seed=%d scale=%g reps=%d, current options are seed=%d scale=%g reps=%d",
			h.Seed, h.Scale, h.Reps, want.Seed, want.Scale, want.Reps)
	}
	if strings.Join(h.Algorithms, ",") != strings.Join(want.Algorithms, ",") {
		return fmt.Errorf("journal written for algorithms %v, current options select %v",
			h.Algorithms, want.Algorithms)
	}
	return nil
}

// ckptKey builds the lookup key for one run; \x1f separators keep composite
// labels unambiguous.
func ckptKey(exp, cell, algo string, method assign.Method, rep int) string {
	return strings.Join([]string{exp, cell, algo, string(method), strconv.Itoa(rep)}, "\x1f")
}

// Lookup returns the journaled result for one run, if present.
func (ck *Checkpoint) Lookup(exp, cell, algo string, method assign.Method, rep int) (RunResult, bool) {
	if ck == nil {
		return RunResult{}, false
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	res, ok := ck.seen[ckptKey(exp, cell, algo, method, rep)]
	return res, ok
}

// Record journals one completed run. Workers call it concurrently; writes
// are serialized and each record is one line. The first write error is
// retained and reported by Close.
func (ck *Checkpoint) Record(exp, cell, algo string, method assign.Method, rep int, res RunResult) {
	if ck == nil {
		return
	}
	rec := ckptRecord{
		Kind: "run", Exp: exp, Cell: cell, Algo: algo,
		Method: string(method), Rep: rep, Result: toCkptResult(res),
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.seen[ckptKey(exp, cell, algo, method, rep)] = res
	if err := ck.writeLineLocked(rec); err != nil && ck.err == nil {
		ck.err = err
	}
}

func (ck *Checkpoint) writeLine(v any) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.writeLineLocked(v)
}

func (ck *Checkpoint) writeLineLocked(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = ck.f.Write(b)
	return err
}

// Err returns the first write error, if any, without closing the journal.
func (ck *Checkpoint) Err() error {
	if ck == nil {
		return nil
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.err
}

// Close flushes and closes the journal, reporting the first error seen.
func (ck *Checkpoint) Close() error {
	if ck == nil {
		return nil
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	cerr := ck.f.Close()
	if ck.err != nil {
		return ck.err
	}
	return cerr
}

func toCkptResult(res RunResult) ckptResult {
	c := ckptResult{
		Algorithm:  res.Algorithm,
		Assign:     string(res.Assign),
		Accuracy:   res.Scores.Accuracy,
		EC:         res.Scores.EC,
		ICS:        res.Scores.ICS,
		S3:         res.Scores.S3,
		MNC:        res.Scores.MNC,
		SimNS:      int64(res.SimilarityTime),
		AssignNS:   int64(res.AssignTime),
		AllocBytes: res.AllocBytes,
	}
	if res.Err != nil {
		c.Err = res.Err.Error()
	}
	return c
}

func (c ckptResult) runResult() RunResult {
	res := RunResult{
		Algorithm:      c.Algorithm,
		Assign:         assign.Method(c.Assign),
		SimilarityTime: time.Duration(c.SimNS),
		AssignTime:     time.Duration(c.AssignNS),
		AllocBytes:     c.AllocBytes,
	}
	res.Scores.Accuracy = c.Accuracy
	res.Scores.EC = c.EC
	res.Scores.ICS = c.ICS
	res.Scores.S3 = c.S3
	res.Scores.MNC = c.MNC
	if c.Err != "" {
		res.Err = errors.New(c.Err)
	}
	return res
}
