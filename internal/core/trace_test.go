package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algo/grasp"
	"graphalign/internal/algo/isorank"
	"graphalign/internal/algo/sgwl"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
	"graphalign/internal/obsv"
)

// eventSink retains every event for assertions.
type eventSink struct {
	mu     sync.Mutex
	events []obsv.Event
}

func (s *eventSink) Event(e obsv.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *eventSink) byType(typ string) []obsv.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []obsv.Event
	for _, e := range s.events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// tracePair builds one small alignment instance for span-content tests.
func tracePair(t *testing.T, n int) noise.Pair {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	base := gen.PowerlawCluster(n, 3, 0.3, rng)
	pair, err := noise.Apply(base, noise.OneWay, 0.01, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

// TestTracingDeterminism is the acceptance criterion of the observability
// layer: at a fixed seed and worker count, an experiment's output table is
// byte-identical whether a tracer is attached or not. fig10's columns
// (accuracy, mnc, s3) are all seed-determined — unlike the wall-clock time
// columns of other figures, which differ across any two runs.
func TestTracingDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	render := func(tr *obsv.Tracer) string {
		opts := tinyOptions()
		opts.Algorithms = []string{"NSD"}
		opts.Workers = 2
		opts.Tracer = tr
		tab, err := RunExperiment("fig10", opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tab.RenderCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	plain := render(nil)
	sink := &eventSink{}
	traced := render(obsv.New(sink).SetRegistry(obsv.NewRegistry()))
	if plain != traced {
		t.Errorf("tracing changed experiment output:\n--- plain ---\n%s\n--- traced ---\n%s", plain, traced)
	}
	if len(sink.byType("run_end")) == 0 {
		t.Error("traced run emitted no run_end events")
	}
	if plain2 := render(nil); plain2 != plain {
		t.Errorf("same seed produced different output across runs")
	}
}

// TestRunExperimentEvents checks the experiment- and cell-level telemetry:
// experiment_start/experiment_done bracketing and cell_done completed/total
// counts with an ETA field.
func TestRunExperimentEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver test")
	}
	sink := &eventSink{}
	opts := tinyOptions()
	opts.Algorithms = []string{"NSD"}
	opts.Tracer = obsv.New(sink)
	if _, err := RunExperiment("fig9", opts); err != nil {
		t.Fatal(err)
	}
	starts := sink.byType("experiment_start")
	if len(starts) != 1 || starts[0].Name != "fig9" {
		t.Fatalf("experiment_start events = %+v", starts)
	}
	dones := sink.byType("experiment_done")
	if len(dones) != 1 {
		t.Fatalf("experiment_done events = %+v", dones)
	}
	if dones[0].Fields["rows"] == nil || dones[0].Fields["seconds"] == nil {
		t.Errorf("experiment_done missing fields: %+v", dones[0].Fields)
	}
	cells := sink.byType("cell_done")
	if len(cells) != len(highNoiseLevels) {
		t.Fatalf("cell_done events = %d, want %d", len(cells), len(highNoiseLevels))
	}
	last := cells[len(cells)-1]
	if last.Fields["done"] != float64(len(highNoiseLevels)) && last.Fields["done"] != len(highNoiseLevels) {
		t.Errorf("last cell_done done = %v, want %d", last.Fields["done"], len(highNoiseLevels))
	}
	if _, ok := last.Fields["eta_s"]; !ok {
		t.Errorf("cell_done missing eta_s: %+v", last.Fields)
	}
	// The legacy Progress callback, routed through RunExperiment, becomes a
	// tracer sink and still sees completed/total progress lines.
	var lines []string
	opts2 := tinyOptions()
	opts2.Algorithms = []string{"NSD"}
	opts2.Progress = func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	if _, err := RunExperiment("fig9", opts2); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "cell 6/6 done") {
			found = true
		}
	}
	if !found {
		t.Errorf("progress lines missing cell counts: %q", lines)
	}
}

// TestRunInstanceTracedSpans checks the span tree of a single run: the
// similarity/assign/metrics framework phases plus the algorithm's own inner
// phases, all parented to the run span.
func TestRunInstanceTracedSpans(t *testing.T) {
	pair := tracePair(t, 80)
	cases := []struct {
		name        string
		build       func() algo.Aligner
		innerPhases []string
	}{
		{"GRASP", func() algo.Aligner { return grasp.New() },
			[]string{"eigendecomposition", "heat_kernels", "base_alignment", "feature_distance"}},
		// LeafSize is lowered so the 80-node instance actually recurses;
		// the default 384 would go straight to one leaf solve.
		{"S-GWL", func() algo.Aligner { s := sgwl.New(); s.LeafSize = 16; return s },
			[]string{"partition", "leaf_solve"}},
		{"IsoRank", func() algo.Aligner { return isorank.New() },
			[]string{"power_iteration"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := &eventSink{}
			tr := obsv.New(sink).SetRegistry(obsv.NewRegistry())
			res := RunInstanceTraced(tc.build(), pair, assign.JonkerVolgenant, tr)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			runStarts := sink.byType("run_start")
			if len(runStarts) != 1 {
				t.Fatalf("run_start events = %d, want 1", len(runStarts))
			}
			runSpan := runStarts[0].Span
			phases := make(map[string]obsv.Event)
			for _, e := range sink.byType("phase") {
				phases[e.Name] = e
			}
			for _, want := range append([]string{"similarity", "assign", "metrics"}, tc.innerPhases...) {
				e, ok := phases[want]
				if !ok {
					t.Errorf("missing phase %q (have %v)", want, phaseNames(phases))
					continue
				}
				if e.Parent != runSpan {
					t.Errorf("phase %q parent = %d, want run span %d", want, e.Parent, runSpan)
				}
				if e.DurNS < 0 {
					t.Errorf("phase %q has negative duration", want)
				}
			}
			ends := sink.byType("run_end")
			if len(ends) != 1 || ends[0].Span != runSpan || ends[0].DurNS <= 0 {
				t.Errorf("run_end = %+v", ends)
			}
			// IsoRank annotates convergence on its power iteration.
			if tc.name == "IsoRank" {
				f := phases["power_iteration"].Fields
				if f["iterations"] == nil || f["converged"] == nil {
					t.Errorf("power_iteration fields = %+v", f)
				}
			}
		})
	}
}

func phaseNames(m map[string]obsv.Event) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestRunInstanceTracedNilTracer pins the no-tracer path: identical scores
// with and without a tracer, and no panic from the nil-span plumbing.
func TestRunInstanceTracedNilTracer(t *testing.T) {
	pair := tracePair(t, 60)
	plain := RunInstance(isorank.New(), pair, assign.JonkerVolgenant)
	traced := RunInstanceTraced(isorank.New(), pair, assign.JonkerVolgenant,
		obsv.New(&eventSink{}))
	if plain.Err != nil || traced.Err != nil {
		t.Fatal(plain.Err, traced.Err)
	}
	if plain.Scores != traced.Scores {
		t.Errorf("tracing changed scores: %+v vs %+v", plain.Scores, traced.Scores)
	}
}

// TestRunCounters checks the registry side of a traced run.
func TestRunCounters(t *testing.T) {
	pair := tracePair(t, 60)
	reg := obsv.NewRegistry()
	tr := obsv.New().SetRegistry(reg)
	RunInstanceTraced(isorank.New(), pair, assign.JonkerVolgenant, tr)
	RunInstanceTraced(isorank.New(), pair, assign.JonkerVolgenant, tr)
	if v := reg.Counter("runs_total").Value(); v != 2 {
		t.Errorf("runs_total = %d, want 2", v)
	}
	if n := reg.Histogram("run_seconds", obsv.DurationBuckets()).Snapshot().Count; n != 2 {
		t.Errorf("run_seconds count = %d, want 2", n)
	}
	if n := reg.Histogram("lap_solve_size", obsv.SizeBuckets()).Snapshot().Count; n != 2 {
		t.Errorf("lap_solve_size count = %d, want 2", n)
	}
}
