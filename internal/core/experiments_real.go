package core

import (
	"fmt"
	"time"

	"graphalign/internal/assign"
	"graphalign/internal/data"
	"graphalign/internal/graph"
	"graphalign/internal/noise"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Figure 7: real graphs (stand-ins), noise up to 5%, three noise types",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8: real graphs (stand-ins), one-way noise up to 25%",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9: time vs accuracy on NetScience (stand-in)",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: graphs with real (evolving) noise: HighSchool, Voles, MultiMagna",
		Run:   runFig10,
	})
}

// runRealNoise is the shared driver for Figures 7 and 8.
func runRealNoise(opts Options, datasets []string, noiseTypes []noise.Type, levels []float64, valueCols []string) (*Table, error) {
	t := NewTable(
		"Real-graph stand-ins",
		[]string{"dataset", "noise", "level", "algorithm"},
		valueCols,
	)
	opts.declareCells(len(datasets) * len(noiseTypes) * len(levels))
	for _, dsName := range datasets {
		base, err := opts.loadDataset(dsName)
		if err != nil {
			return nil, err
		}
		base, _ = graph.LargestComponent(base)
		for _, nt := range noiseTypes {
			for _, level := range levels {
				pairs, err := noisyInstances(base, nt, level, opts, noise.Options{}, dsName)
				if err != nil {
					return nil, err
				}
				cell := fmt.Sprintf("%s/%s/%.2f", dsName, nt, level)
				for _, name := range opts.algorithms() {
					mean, err := runAveraged(opts, cell, name, pairs, assign.JonkerVolgenant)
					if err != nil {
						return nil, err
					}
					if mean.Err != nil {
						opts.progress("%s/%s/%v: %s failed: %v", dsName, nt, level, name, mean.Err)
						continue
					}
					t.Add(map[string]string{
						"dataset":   dsName,
						"noise":     string(nt),
						"level":     fmt.Sprintf("%.2f", level),
						"algorithm": name,
					}, map[string]float64{
						"accuracy": mean.Scores.Accuracy,
						"s3":       mean.Scores.S3,
						"mnc":      mean.Scores.MNC,
						"sim_time": mean.SimilarityTime.Seconds(),
					})
					opts.progress("%s %s level=%.2f %s acc=%.3f", dsName, nt, level, name, mean.Scores.Accuracy)
				}
				opts.cellDone(fmt.Sprintf("%s/%s/%.2f", dsName, nt, level))
			}
		}
	}
	t.Sort()
	return t, nil
}

func runFig7(opts Options) (*Table, error) {
	return runRealNoise(opts,
		[]string{"arenas", "facebook", "ca-astroph"},
		noise.Types(), lowNoiseLevels,
		[]string{"accuracy", "sim_time"},
	)
}

func runFig8(opts Options) (*Table, error) {
	datasets := []string{
		"inf-euroroad", "inf-power", "fb-haverford76", "fb-hamilton46",
		"fb-bowdoin47", "fb-swarthmore42", "soc-hamsterster", "bio-celegans",
		"ca-grqc", "ca-netscience",
	}
	// The paper averages 5 runs here.
	if opts.Reps > 5 {
		opts.Reps = 5
	}
	return runRealNoise(opts, datasets, []noise.Type{noise.OneWay}, highNoiseLevels,
		[]string{"accuracy", "sim_time"})
}

// runFig9 reproduces the time-vs-accuracy scatter on NetScience: accuracy
// and similarity time per algorithm per noise level.
func runFig9(opts Options) (*Table, error) {
	base, err := opts.loadDataset("ca-netscience")
	if err != nil {
		return nil, err
	}
	base, _ = graph.LargestComponent(base)
	t := NewTable(
		fmt.Sprintf("NetScience stand-in, n=%d", base.N()),
		[]string{"level", "algorithm"},
		[]string{"accuracy", "sim_time", "assign_time"},
	)
	opts.declareCells(len(highNoiseLevels))
	for _, level := range highNoiseLevels {
		pairs, err := noisyInstances(base, noise.OneWay, level, opts, noise.Options{}, "fig9")
		if err != nil {
			return nil, err
		}
		cell := fmt.Sprintf("fig9/%.2f", level)
		for _, name := range opts.algorithms() {
			mean, err := runAveraged(opts, cell, name, pairs, assign.JonkerVolgenant)
			if err != nil {
				return nil, err
			}
			if mean.Err != nil {
				continue
			}
			t.Add(map[string]string{
				"level":     fmt.Sprintf("%.2f", level),
				"algorithm": name,
			}, map[string]float64{
				"accuracy":    mean.Scores.Accuracy,
				"sim_time":    mean.SimilarityTime.Seconds(),
				"assign_time": mean.AssignTime.Seconds(),
			})
			opts.progress("fig9 level=%.2f %s acc=%.3f t=%s", level, name, mean.Scores.Accuracy, mean.SimilarityTime.Round(time.Millisecond))
		}
		opts.cellDone(fmt.Sprintf("fig9/%.2f", level))
	}
	t.Sort()
	return t, nil
}

// runFig10 reproduces the real-noise experiment: match each evolving
// dataset's base graph against variants retaining 80-99% of its edges.
func runFig10(opts Options) (*Table, error) {
	fractions := []float64{0.80, 0.85, 0.90, 0.99}
	t := NewTable(
		"Evolving graphs with ground-truth alignment",
		[]string{"dataset", "fraction", "algorithm"},
		[]string{"accuracy", "mnc", "s3"},
	)
	datasets := []string{"highschool", "voles", "multimagna"}
	opts.declareCells(len(datasets) * len(fractions))
	for _, dsName := range datasets {
		pairs, err := data.EvolvingVariantsScaled(dsName, fractions, opts.effectiveScale())
		if err != nil {
			return nil, err
		}
		for i, p := range pairs {
			cell := fmt.Sprintf("fig10/%s/%.2f", dsName, fractions[i])
			for _, name := range opts.algorithms() {
				mean, err := runAveraged(opts, cell, name, []noise.Pair{p}, assign.JonkerVolgenant)
				if err != nil {
					return nil, err
				}
				if mean.Err != nil {
					opts.progress("fig10 %s/%v: %s failed: %v", dsName, fractions[i], name, mean.Err)
					continue
				}
				t.Add(map[string]string{
					"dataset":   dsName,
					"fraction":  fmt.Sprintf("%.2f", fractions[i]),
					"algorithm": name,
				}, map[string]float64{
					"accuracy": mean.Scores.Accuracy,
					"mnc":      mean.Scores.MNC,
					"s3":       mean.Scores.S3,
				})
				opts.progress("fig10 %s f=%.2f %s acc=%.3f", dsName, fractions[i], name, mean.Scores.Accuracy)
			}
			opts.cellDone(fmt.Sprintf("fig10/%s/%.2f", dsName, fractions[i]))
		}
	}
	t.Sort()
	return t, nil
}
