package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"graphalign/internal/algo/isorank"
	"graphalign/internal/algo/regal"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/noise"
)

// editStream draws sequential edit batches against the pair's target: each
// batch is generated from the graph state the previous batches produced, so
// replaying them in order is well-defined.
func editStream(t *testing.T, g *graph.Graph, batches, size int, seed int64) [][]graph.Edit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]graph.Edit, 0, batches)
	cur := g
	for i := 0; i < batches; i++ {
		frac := float64(size) / float64(1+cur.M())
		b, err := noise.EditBatch(cur, frac, rng)
		if err != nil {
			t.Fatal(err)
		}
		next, err := graph.ApplyEdits(cur, b)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
		cur = next
	}
	return out
}

func TestRunInstanceIncremental(t *testing.T) {
	p := smallPair(t)
	batches := editStream(t, p.Target, 3, 2, 11)
	res, mapping := RunInstanceMapped(context.Background(), regal.New(), p, "",
		RunSpec{AssignTopK: 10, Incremental: &IncrementalSpec{Batches: batches}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Assign != assign.AuctionSparse {
		t.Errorf("Assign = %q, want %q", res.Assign, assign.AuctionSparse)
	}
	if res.Scores.Accuracy < 0 || res.Scores.Accuracy > 1 {
		t.Fatalf("accuracy %v out of range", res.Scores.Accuracy)
	}
	if res.SimilarityTime <= 0 || res.AssignTime <= 0 {
		t.Errorf("time split not measured: sim=%v assign=%v", res.SimilarityTime, res.AssignTime)
	}
	if len(mapping) != p.Source.N() {
		t.Fatalf("mapping length %d, want %d", len(mapping), p.Source.N())
	}
	seen := map[int]bool{}
	for u, v := range mapping {
		if v < 0 || v >= p.Target.N() || seen[v] {
			t.Fatalf("mapping[%d] = %d invalid or duplicated", u, v)
		}
		seen[v] = true
	}
}

// An empty edit stream must reproduce the plain sparse auction pipeline's
// mapping exactly: the session's cold solve runs the same ε-scaling auction
// over the same candidate lists.
func TestRunInstanceIncrementalEmptyStreamMatchesCold(t *testing.T) {
	p := smallPair(t)
	_, cold := RunInstanceMapped(context.Background(), regal.New(), p, assign.AuctionSparse,
		RunSpec{AssignTopK: 10})
	res, warm := RunInstanceMapped(context.Background(), regal.New(), p, "",
		RunSpec{AssignTopK: 10, Incremental: &IncrementalSpec{}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if cold == nil || warm == nil {
		t.Fatal("missing mapping")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("empty-stream incremental mapping differs from plain sparse auction")
	}
}

// A dense-only aligner cannot run incrementally; the error must surface as a
// classified run error, not a panic.
func TestRunInstanceIncrementalDenseOnly(t *testing.T) {
	p := smallPair(t)
	res := RunInstanceSpec(context.Background(), isorank.New(), p, "",
		RunSpec{AssignTopK: 10, Incremental: &IncrementalSpec{}})
	if res.Err == nil {
		t.Fatal("expected error for dense-only aligner in incremental mode")
	}
}
