package core

import (
	"fmt"
	"math/rand"

	"graphalign/internal/algo"
	"graphalign/internal/algo/netalign"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
)

func init() {
	register(Experiment{
		ID: "excluded-netalign",
		Title: "Section 4: NetAlign with the study's enhancements vs the included " +
			"methods (reproduces the exclusion rationale)",
		Run: runExcludedNetAlign,
	})
}

// runExcludedNetAlign grants NetAlign the same enhancements the paper did —
// the degree-similarity prior and the common JV assignment — and compares
// it against the included methods on the standard low-noise sweep. The
// paper "observed inadequate quality even after we applied the
// enhancements"; the gap in this table is that observation.
func runExcludedNetAlign(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.scaledN(1133)
	base := gen.PowerlawCluster(n, 5, 0.5, rng)
	t := NewTable(
		fmt.Sprintf("NetAlign (excluded) vs included methods, PL n=%d, one-way noise", n),
		[]string{"level", "algorithm"},
		[]string{"accuracy", "s3", "sim_time"},
	)
	opts.declareCells(len(lowNoiseLevels))
	for _, level := range lowNoiseLevels {
		pairs, err := noisyInstances(base, noise.OneWay, level, opts, noise.Options{}, "excluded-netalign")
		if err != nil {
			return nil, err
		}
		cell := fmt.Sprintf("excluded-netalign/%.2f", level)
		runVariant(t, opts, cell, func() algo.Aligner { return netalign.New() }, map[string]string{
			"level": fmt.Sprintf("%.2f", level), "algorithm": "NetAlign",
		}, pairs)
		for _, name := range opts.algorithms() {
			mean, err := runAveraged(opts, cell, name, pairs, assign.JonkerVolgenant)
			if err != nil {
				return nil, err
			}
			if mean.Err != nil {
				continue
			}
			t.Add(map[string]string{
				"level": fmt.Sprintf("%.2f", level), "algorithm": name,
			}, map[string]float64{
				"accuracy": mean.Scores.Accuracy,
				"s3":       mean.Scores.S3,
				"sim_time": mean.SimilarityTime.Seconds(),
			})
			opts.progress("excluded-netalign level=%.2f %s acc=%.3f", level, name, mean.Scores.Accuracy)
		}
		opts.cellDone(fmt.Sprintf("excluded-netalign/%.2f", level))
	}
	t.Sort()
	return t, nil
}
