package core

import (
	"fmt"
	"math/rand"

	"graphalign/internal/algo"
	"graphalign/internal/algo/cone"
	"graphalign/internal/algo/grasp"
	"graphalign/internal/algo/isorank"
	"graphalign/internal/algo/lrea"
	"graphalign/internal/algo/sgwl"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/noise"
)

// Ablation experiments probe the design choices DESIGN.md calls out. They
// instantiate algorithm variants directly, bypassing the Factory.
func init() {
	register(Experiment{
		ID:    "ablation-isorank-prior",
		Title: "Ablation: IsoRank degree-similarity prior (Section 6.1) vs uniform prior",
		Run:   runAblationIsoRankPrior,
	})
	register(Experiment{
		ID:    "ablation-lrea-rank",
		Title: "Ablation: LREA iteration (rank) sweep",
		Run:   runAblationLREARank,
	})
	register(Experiment{
		ID:    "ablation-lrea-vs-eigenalign",
		Title: "Ablation: LREA's low-rank factoring vs exact EigenAlign (quality and runtime)",
		Run:   runAblationLREAvsEigenAlign,
	})
	register(Experiment{
		ID:    "ablation-grasp-params",
		Title: "Ablation: GRASP eigenvector count k and time steps q",
		Run:   runAblationGRASPParams,
	})
	register(Experiment{
		ID:    "ablation-sgwl-beta",
		Title: "Ablation: S-GWL proximal regularization beta on sparse vs dense graphs",
		Run:   runAblationSGWLBeta,
	})
	register(Experiment{
		ID:    "ablation-cone-dim",
		Title: "Ablation: CONE embedding dimension sweep",
		Run:   runAblationCONEDim,
	})
}

// ablationInstances builds the shared 1%-one-way-noise instances on a
// powerlaw graph.
func ablationInstances(opts Options, rng *rand.Rand) ([]noise.Pair, error) {
	base := gen.PowerlawCluster(opts.scaledN(1133), 5, 0.5, rng)
	return noisyInstances(base, noise.OneWay, 0.01, opts, noise.Options{}, "ablation-pl")
}

// runVariant runs a configured aligner variant over instances with JV and
// records a row keyed by the variant label. build is invoked once per
// instance so the runs can fan out across the worker pool without sharing
// aligner state between goroutines. cell keys the runs in the checkpoint
// journal and must be unique per variant within its experiment.
func runVariant(t *Table, opts Options, cell string, build func() algo.Aligner, label map[string]string, pairs []noise.Pair) {
	runs := runInstances(opts, cell, "variant", func(int) (algo.Aligner, error) { return build(), nil }, pairs, assign.JonkerVolgenant)
	mean, ok := Average(runs)
	if ok == 0 {
		return
	}
	t.Add(label, map[string]float64{
		"accuracy": mean.Scores.Accuracy,
		"s3":       mean.Scores.S3,
		"sim_time": mean.SimilarityTime.Seconds(),
	})
}

func runAblationIsoRankPrior(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	pairs, err := ablationInstances(opts, rng)
	if err != nil {
		return nil, err
	}
	t := NewTable("IsoRank prior ablation (PL graph, 1% one-way noise)",
		[]string{"prior"}, []string{"accuracy", "s3", "sim_time"})
	opts.declareCells(2)
	// Degree-similarity prior (the study's Section 6.1 choice).
	runVariant(t, opts, "isorank-prior/degree-similarity", func() algo.Aligner { return isorank.New() },
		map[string]string{"prior": "degree-similarity"}, pairs)
	opts.cellDone("ablation-isorank-prior/degree-similarity")
	// Uniform prior (what earlier comparisons effectively used). The prior
	// must match each instance's shape, so build it instance-by-instance.
	runs := runInstances(opts, "isorank-prior/uniform", "variant", func(i int) (algo.Aligner, error) {
		p := pairs[i]
		ir := isorank.New()
		uniform := algo.DegreePrior(p.Source, p.Target)
		uniform.Fill(1)
		ir.Prior = uniform
		return ir, nil
	}, pairs, assign.JonkerVolgenant)
	if mean, ok := Average(runs); ok > 0 {
		t.Add(map[string]string{"prior": "uniform"}, map[string]float64{
			"accuracy": mean.Scores.Accuracy,
			"s3":       mean.Scores.S3,
			"sim_time": mean.SimilarityTime.Seconds(),
		})
	}
	opts.cellDone("ablation-isorank-prior/uniform")
	return t, nil
}

func runAblationLREARank(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	pairs, err := ablationInstances(opts, rng)
	if err != nil {
		return nil, err
	}
	t := NewTable("LREA iteration sweep (PL graph, 1% one-way noise)",
		[]string{"iterations"}, []string{"accuracy", "s3", "sim_time"})
	sweep := []int{5, 10, 20, 40, 80}
	opts.declareCells(len(sweep))
	for _, iters := range sweep {
		iters := iters
		runVariant(t, opts, fmt.Sprintf("lrea-rank/%d", iters), func() algo.Aligner {
			l := lrea.New()
			l.Iters = iters
			return l
		}, map[string]string{"iterations": fmt.Sprintf("%d", iters)}, pairs)
		opts.cellDone(fmt.Sprintf("ablation-lrea-rank/%d", iters))
	}
	return t, nil
}

// runAblationLREAvsEigenAlign reproduces the motivation for LREA: the
// factored power iteration matches the exact EigenAlign's quality at a
// fraction of the per-size cost (the survey quotes a 10x size advantage).
func runAblationLREAvsEigenAlign(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	t := NewTable("LREA vs exact EigenAlign (isomorphic powerlaw instances)",
		[]string{"n", "algorithm"}, []string{"accuracy", "sim_time"})
	sizes := []int{opts.scaledN(400), opts.scaledN(800), opts.scaledN(1600)}
	opts.declareCells(len(sizes) * 2)
	for _, n := range sizes {
		base := gen.PowerlawCluster(n, 4, 0.4, rng)
		pairs, err := noisyInstances(base, noise.OneWay, 0, opts, noise.Options{}, fmt.Sprintf("ablation-lrea-ea/%d", n))
		if err != nil {
			return nil, err
		}
		runVariant(t, opts, fmt.Sprintf("lrea-ea/LREA/%d", n), func() algo.Aligner { return lrea.New() }, map[string]string{
			"n": fmt.Sprintf("%d", n), "algorithm": "LREA",
		}, pairs)
		opts.cellDone(fmt.Sprintf("ablation-lrea-ea/LREA/%d", n))
		runVariant(t, opts, fmt.Sprintf("lrea-ea/EigenAlign/%d", n), func() algo.Aligner { return lrea.NewEigenAlign() }, map[string]string{
			"n": fmt.Sprintf("%d", n), "algorithm": "EigenAlign",
		}, pairs)
		opts.cellDone(fmt.Sprintf("ablation-lrea-ea/EigenAlign/%d", n))
	}
	t.Sort()
	return t, nil
}

func runAblationGRASPParams(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	pairs, err := ablationInstances(opts, rng)
	if err != nil {
		return nil, err
	}
	t := NewTable("GRASP (k, q) sweep (PL graph, 1% one-way noise)",
		[]string{"k", "q"}, []string{"accuracy", "s3", "sim_time"})
	ks, qs := []int{5, 10, 20, 40}, []int{25, 50, 100}
	opts.declareCells(len(ks) * len(qs))
	for _, k := range ks {
		for _, q := range qs {
			k, q := k, q
			runVariant(t, opts, fmt.Sprintf("grasp/k=%d/q=%d", k, q), func() algo.Aligner {
				g := grasp.New()
				g.K = k
				g.Q = q
				return g
			}, map[string]string{
				"k": fmt.Sprintf("%d", k), "q": fmt.Sprintf("%d", q),
			}, pairs)
			opts.cellDone(fmt.Sprintf("ablation-grasp/k=%d/q=%d", k, q))
		}
	}
	t.Sort()
	return t, nil
}

func runAblationSGWLBeta(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.scaledN(1133)
	sparse := gen.NewmanWatts(n, 4, 0.1, rng)    // sparse, grid-like
	dense := gen.PowerlawCluster(n, 8, 0.5, rng) // dense, skewed
	t := NewTable("S-GWL beta sweep (1% one-way noise)",
		[]string{"graph", "beta"}, []string{"accuracy", "s3", "sim_time"})
	betas := []float64{0.01, 0.025, 0.05, 0.1, 0.2}
	opts.declareCells(2 * len(betas))
	run := func(name string, pairs []noise.Pair) {
		for _, beta := range betas {
			beta := beta
			runVariant(t, opts, fmt.Sprintf("sgwl/%s/beta=%.3f", name, beta), func() algo.Aligner {
				s := sgwl.New()
				s.Beta = beta
				return s
			}, map[string]string{
				"graph": name, "beta": fmt.Sprintf("%.3f", beta),
			}, pairs)
			opts.cellDone(fmt.Sprintf("ablation-sgwl/%s/beta=%.3f", name, beta))
		}
	}
	sparsePairs, err := noisyInstances(sparse, noise.OneWay, 0.01, opts, noise.Options{}, "ablation-sgwl/sparse")
	if err != nil {
		return nil, err
	}
	densePairs, err := noisyInstances(dense, noise.OneWay, 0.01, opts, noise.Options{}, "ablation-sgwl/dense")
	if err != nil {
		return nil, err
	}
	run("sparse", sparsePairs)
	run("dense", densePairs)
	t.Sort()
	return t, nil
}

func runAblationCONEDim(opts Options) (*Table, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	pairs, err := ablationInstances(opts, rng)
	if err != nil {
		return nil, err
	}
	t := NewTable("CONE dimension sweep (PL graph, 1% one-way noise)",
		[]string{"dim"}, []string{"accuracy", "s3", "sim_time"})
	dims := []int{16, 32, 64, 128}
	opts.declareCells(len(dims))
	for _, dim := range dims {
		dim := dim
		runVariant(t, opts, fmt.Sprintf("cone/dim=%d", dim), func() algo.Aligner {
			c := cone.New()
			c.Dim = dim
			return c
		}, map[string]string{"dim": fmt.Sprintf("%d", dim)}, pairs)
		opts.cellDone(fmt.Sprintf("ablation-cone/dim=%d", dim))
	}
	return t, nil
}
