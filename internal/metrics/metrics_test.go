package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphalign/internal/gen"
	"graphalign/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.MustNew(n, edges)
}

func identity(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func TestAccuracy(t *testing.T) {
	trueMap := []int{2, 0, 1}
	if got := Accuracy([]int{2, 0, 1}, trueMap); got != 1 {
		t.Errorf("perfect accuracy = %v", got)
	}
	if got := Accuracy([]int{2, 1, 0}, trueMap); got != 1.0/3 {
		t.Errorf("partial accuracy = %v", got)
	}
	if got := Accuracy(nil, trueMap); got != 0 {
		t.Errorf("empty mapping accuracy = %v", got)
	}
	if got := Accuracy([]int{-1, -1, -1}, trueMap); got != 0 {
		t.Errorf("unmatched accuracy = %v", got)
	}
}

func TestPerfectAlignmentScoresOne(t *testing.T) {
	g := pathGraph(6)
	id := identity(6)
	if EC(g, g, id) != 1 {
		t.Error("EC of identity should be 1")
	}
	if ICS(g, g, id) != 1 {
		t.Error("ICS of identity should be 1")
	}
	if S3(g, g, id) != 1 {
		t.Error("S3 of identity should be 1")
	}
	if MNC(g, g, id) != 1 {
		t.Error("MNC of identity should be 1")
	}
}

func TestECHandComputed(t *testing.T) {
	// Source: triangle. Target: path 0-1-2. Identity mapping preserves
	// edges (0,1) and (1,2) but not (0,2): EC = 2/3.
	src := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	dst := pathGraph(3)
	id := identity(3)
	if got := EC(src, dst, id); got != 2.0/3 {
		t.Errorf("EC = %v, want 2/3", got)
	}
	// ICS: induced edges in dst over image {0,1,2} = 2; aligned = 2 -> 1.
	if got := ICS(src, dst, id); got != 1 {
		t.Errorf("ICS = %v, want 1", got)
	}
	// S3 = 2 / (3 + 2 - 2) = 2/3.
	if got := S3(src, dst, id); got != 2.0/3 {
		t.Errorf("S3 = %v, want 2/3", got)
	}
}

func TestICSPenalizesDenseTarget(t *testing.T) {
	// Source: path 0-1-2 (2 edges). Target: triangle. Identity alignment
	// conserves both source edges but the induced target has 3 edges:
	// EC = 1, ICS = 2/3, S3 = 2/3.
	src := pathGraph(3)
	dst := graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	id := identity(3)
	if got := EC(src, dst, id); got != 1 {
		t.Errorf("EC = %v, want 1", got)
	}
	if got := ICS(src, dst, id); got != 2.0/3 {
		t.Errorf("ICS = %v, want 2/3", got)
	}
	if got := S3(src, dst, id); got != 2.0/3 {
		t.Errorf("S3 = %v, want 2/3", got)
	}
}

func TestMNCHandComputed(t *testing.T) {
	// Star source mapped onto a path: centre keeps 2 of 3 neighbors...
	src := graph.MustNew(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	dst := pathGraph(4) // 0-1-2-3
	id := identity(4)
	// Node 0: mapped neighborhood {1,2,3}; dst neighborhood of 0 = {1}.
	// intersection 1, union 3 -> 1/3.
	// Node 1: mapped nbhd {0}; dst nbhd {0,2} -> 1/2.
	// Node 2: mapped nbhd {0}; dst nbhd {1,3} -> 0.
	// Node 3: mapped nbhd {0}; dst nbhd {2} -> 0.
	want := (1.0/3 + 0.5) / 4
	if got := MNC(src, dst, id); math.Abs(got-want) > 1e-12 {
		t.Errorf("MNC = %v, want %v", got, want)
	}
}

func TestMNCIsolatedNodesPerfectAlignment(t *testing.T) {
	// Regression: a graph with isolated nodes under the identity mapping
	// used to score MNC < 1, because an empty-vs-empty neighborhood
	// comparison counted as 0-consistency while still entering the
	// denominator. Empty matched to empty is perfect agreement.
	g := graph.MustNew(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}) // nodes 3,4,5 isolated
	if got := MNC(g, g, identity(6)); got != 1 {
		t.Errorf("MNC of identity on graph with isolated nodes = %v, want 1", got)
	}
	// All-isolated graph, identity mapping: still perfect.
	iso := graph.MustNew(4, nil)
	if got := MNC(iso, iso, identity(4)); got != 1 {
		t.Errorf("MNC of identity on edgeless graph = %v, want 1", got)
	}
	// Unmatched isolated nodes are still skipped (counted as wrong).
	m := identity(6)
	m[5] = -1
	if got := MNC(g, g, m); got >= 1 {
		t.Errorf("MNC with unmatched node = %v, want < 1", got)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	empty := graph.MustNew(0, nil)
	if MNC(empty, empty, nil) != 0 {
		t.Error("empty MNC should be 0")
	}
	noEdges := graph.MustNew(3, nil)
	if EC(noEdges, noEdges, identity(3)) != 0 {
		t.Error("EC with no source edges should be 0")
	}
	if ICS(noEdges, noEdges, identity(3)) != 0 {
		t.Error("ICS with no induced edges should be 0")
	}
	if S3(noEdges, noEdges, identity(3)) != 0 {
		t.Error("S3 degenerate should be 0")
	}
}

func TestAllBundle(t *testing.T) {
	g := pathGraph(5)
	s := All(g, g, identity(5), identity(5))
	if s.Accuracy != 1 || s.EC != 1 || s.ICS != 1 || s.S3 != 1 || s.MNC != 1 {
		t.Errorf("All = %+v, want all ones", s)
	}
	s2 := All(g, g, identity(5), nil)
	if s2.Accuracy != 0 {
		t.Error("accuracy must be 0 when no ground truth")
	}
}

func TestPropertyMetricsInUnitInterval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := gen.ErdosRenyi(25, 0.2, rng)
		dst := gen.ErdosRenyi(25, 0.2, rng)
		mapping := rng.Perm(25)
		s := All(src, dst, mapping, rng.Perm(25))
		for _, v := range []float64{s.Accuracy, s.EC, s.ICS, s.S3, s.MNC} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyS3LowerThanECAndICS(t *testing.T) {
	// S3's denominator dominates both EC's and ICS's.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := gen.ErdosRenyi(20, 0.25, rng)
		dst := gen.ErdosRenyi(20, 0.25, rng)
		mapping := rng.Perm(20)
		s3 := S3(src, dst, mapping)
		return s3 <= EC(src, dst, mapping)+1e-12 && s3 <= ICS(src, dst, mapping)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
