// Package metrics implements the five alignment-quality measures of the
// paper (Section 5.2): node correctness (accuracy), edge correctness (EC),
// induced conserved structure (ICS), the symmetric substructure score (S³),
// and matched neighborhood consistency (MNC).
//
// All functions take the alignment as mapping[u] = target node assigned to
// source node u (a value < 0 marks an unmatched node and counts as wrong).
package metrics

import (
	"graphalign/internal/graph"
)

// Accuracy (node correctness) is the fraction of source nodes mapped to
// their true counterpart.
func Accuracy(mapping, trueMap []int) float64 {
	if len(mapping) == 0 {
		return 0
	}
	correct := 0
	for u, v := range mapping {
		if u < len(trueMap) && v == trueMap[u] {
			correct++
		}
	}
	return float64(correct) / float64(len(mapping))
}

// alignedEdges returns |f(E_A) ∩ E_B|: source edges whose mapped endpoints
// are also adjacent in the target.
func alignedEdges(src, dst *graph.Graph, mapping []int) int {
	count := 0
	for _, e := range src.Edges() {
		fu, fv := mapping[e.U], mapping[e.V]
		if fu >= 0 && fv >= 0 && dst.HasEdge(fu, fv) {
			count++
		}
	}
	return count
}

// inducedEdges returns |E(G_B[f(V_A)])|: the number of target edges between
// images of source nodes.
func inducedEdges(src, dst *graph.Graph, mapping []int) int {
	image := make(map[int]bool, len(mapping))
	for _, v := range mapping {
		if v >= 0 {
			image[v] = true
		}
	}
	count := 0
	for _, e := range dst.Edges() {
		if image[e.U] && image[e.V] {
			count++
		}
	}
	return count
}

// EC is edge correctness: the fraction of source edges preserved by the
// alignment.
func EC(src, dst *graph.Graph, mapping []int) float64 {
	if src.M() == 0 {
		return 0
	}
	return float64(alignedEdges(src, dst, mapping)) / float64(src.M())
}

// ICS is the induced conserved structure score: aligned edges normalized by
// the edges of the target subgraph induced by the image of the alignment.
func ICS(src, dst *graph.Graph, mapping []int) float64 {
	ind := inducedEdges(src, dst, mapping)
	if ind == 0 {
		return 0
	}
	return float64(alignedEdges(src, dst, mapping)) / float64(ind)
}

// S3 is the symmetric substructure score, penalizing both directions of
// density mismatch (Equation 16).
func S3(src, dst *graph.Graph, mapping []int) float64 {
	f := alignedEdges(src, dst, mapping)
	denom := src.M() + inducedEdges(src, dst, mapping) - f
	if denom <= 0 {
		return 0
	}
	return float64(f) / float64(denom)
}

// MNC is the average matched neighborhood consistency (Equation 15): for
// each source node i, the Jaccard similarity between the image of its
// neighborhood under the alignment and the target neighborhood of its match.
// Two empty neighborhoods (an isolated source node matched to an isolated
// target node) count as fully consistent — the empty sets agree — so a
// perfect alignment of a graph with isolated nodes scores exactly 1.
func MNC(src, dst *graph.Graph, mapping []int) float64 {
	n := src.N()
	if n == 0 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		j := mapping[i]
		if j < 0 {
			continue
		}
		mapped := make(map[int]bool, src.Degree(i))
		for _, k := range src.Neighbors(i) {
			if fk := mapping[k]; fk >= 0 {
				mapped[fk] = true
			}
		}
		inter, union := 0, len(mapped)
		for _, t := range dst.Neighbors(j) {
			if mapped[t] {
				inter++
			} else {
				union++
			}
		}
		if union > 0 {
			total += float64(inter) / float64(union)
		} else {
			total++ // empty vs empty: 0/0 Jaccard is consistency, not failure
		}
	}
	return total / float64(n)
}

// All computes every metric at once; trueMap may be nil when no ground truth
// exists (Accuracy is then 0).
func All(src, dst *graph.Graph, mapping, trueMap []int) Scores {
	s := Scores{
		EC:  EC(src, dst, mapping),
		ICS: ICS(src, dst, mapping),
		S3:  S3(src, dst, mapping),
		MNC: MNC(src, dst, mapping),
	}
	if trueMap != nil {
		s.Accuracy = Accuracy(mapping, trueMap)
	}
	return s
}

// Scores bundles the five quality measures.
type Scores struct {
	Accuracy float64
	EC       float64
	ICS      float64
	S3       float64
	MNC      float64
}
