package partition

import (
	"encoding/binary"
	"testing"
)

func TestStitchBasic(t *testing.T) {
	shards := []ShardMapping{
		{Src: []int{0, 2}, Dst: []int{1, 3}, Local: []int{0, 1}},
		{Src: []int{1, 3}, Dst: []int{0, 2}, Local: []int{1, 0}},
	}
	got := Stitch(4, 4, shards)
	want := []int{1, 2, 3, 0}
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("mapping[%d]=%d, want %d (full: %v)", u, got[u], want[u], got)
		}
	}
}

func TestStitchDropsConflicts(t *testing.T) {
	shards := []ShardMapping{
		// First claim on src 0 and target 5 wins.
		{Src: []int{0}, Dst: []int{5}, Local: []int{0}},
		// Duplicate src claim dropped; the second row still lands.
		{Src: []int{0, 1}, Dst: []int{5, 6}, Local: []int{0, 1}},
		// Duplicate target claim dropped.
		{Src: []int{2}, Dst: []int{5}, Local: []int{0}},
		// Out-of-range src, local index and target, unmatched row.
		{Src: []int{99, 2, 3, 4}, Dst: []int{7, 100}, Local: []int{0, 5, 1, -1}},
	}
	got := Stitch(5, 10, shards)
	want := []int{5, 6, -1, -1, -1}
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("mapping[%d]=%d, want %d (full: %v)", u, got[u], want[u], got)
		}
	}
}

func TestStitchDegenerate(t *testing.T) {
	if got := Stitch(0, 5, nil); len(got) != 0 {
		t.Errorf("n1=0: len %d", len(got))
	}
	if got := Stitch(-3, 5, nil); len(got) != 0 {
		t.Errorf("n1<0: len %d", len(got))
	}
	got := Stitch(3, 0, []ShardMapping{{Src: []int{0}, Dst: []int{0}, Local: []int{0}}})
	for u, v := range got {
		if v != -1 {
			t.Errorf("n2=0: mapping[%d]=%d, want -1", u, v)
		}
	}
}

// checkValidPartialInjection is the Stitch postcondition: every entry is -1
// or a target id in [0, n2), and no target appears twice.
func checkValidPartialInjection(t *testing.T, mapping []int, n1, n2 int) {
	t.Helper()
	if len(mapping) != n1 {
		t.Fatalf("mapping length %d, want %d", len(mapping), n1)
	}
	used := make(map[int]int, len(mapping))
	for u, v := range mapping {
		if v == -1 {
			continue
		}
		if v < 0 || v >= n2 {
			t.Fatalf("mapping[%d]=%d out of range [0,%d)", u, v, n2)
		}
		if prev, dup := used[v]; dup {
			t.Fatalf("target %d assigned to both %d and %d", v, prev, u)
		}
		used[v] = u
	}
}

// FuzzStitch feeds arbitrary shard mappings — overlapping, partial, empty,
// out-of-range, mismatched lengths — through Stitch and asserts the
// postcondition: the output is always a valid partial injection into
// [0, n2), whatever the shards claim.
func FuzzStitch(f *testing.F) {
	f.Add(4, 4, []byte{})
	f.Add(4, 4, []byte{2, 0, 2, 1, 3, 0, 1})
	f.Add(5, 10, []byte{1, 0, 5, 0, 1, 0, 5, 0, 99, 2, 7, 100, 0, 5})
	f.Add(3, 0, []byte{1, 0, 0, 0})
	f.Add(0, 3, []byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, n1, n2 int, raw []byte) {
		if n1 > 1<<12 || n2 > 1<<12 {
			return // bound allocation, not behavior
		}
		shards := decodeShards(raw)
		mapping := Stitch(n1, n2, shards)
		eff := n1
		if eff < 0 {
			eff = 0
		}
		checkValidPartialInjection(t, mapping, eff, n2)
	})
}

// decodeShards deterministically unpacks fuzz bytes into shard mappings,
// deliberately allowing every malformed shape Stitch must tolerate: signed
// ids (including negatives), Local shorter or longer than Src, empty slices.
func decodeShards(raw []byte) []ShardMapping {
	next := func() (int, bool) {
		if len(raw) == 0 {
			return 0, false
		}
		b := raw[0]
		raw = raw[1:]
		// Spread single bytes over a signed range wide enough to produce
		// in-range, boundary and out-of-range ids against n <= 4096.
		return int(int8(b)) * 37, true
	}
	nextLen := func() (int, bool) {
		v, ok := next()
		if !ok {
			return 0, false
		}
		if v < 0 {
			v = -v
		}
		return v % 9, true
	}
	var shards []ShardMapping
	for {
		ns, ok := nextLen()
		if !ok {
			break
		}
		nd, _ := nextLen()
		nl, _ := nextLen()
		var s ShardMapping
		for i := 0; i < ns; i++ {
			v, _ := next()
			s.Src = append(s.Src, v)
		}
		for i := 0; i < nd; i++ {
			v, _ := next()
			s.Dst = append(s.Dst, v)
		}
		for i := 0; i < nl; i++ {
			v, _ := next()
			s.Local = append(s.Local, v%11)
		}
		shards = append(shards, s)
		if len(shards) > 64 {
			break
		}
	}
	return shards
}

// TestStitchFuzzRegressions replays the decoder on structured seeds so the
// fuzz harness itself is covered by plain `go test` (no -fuzz needed).
func TestStitchFuzzRegressions(t *testing.T) {
	seeds := [][]byte{
		{},
		{2, 0, 2, 1, 3, 0, 1},
		{255, 255, 255, 255, 255, 255, 255, 255},
		{1, 1, 1, 0, 0, 0, 1, 1, 1},
	}
	var wide []byte
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 0xdeadbeefcafef00d)
	for i := 0; i < 32; i++ {
		wide = append(wide, buf[i%8])
	}
	seeds = append(seeds, wide)
	for _, raw := range seeds {
		for _, n1 := range []int{0, 1, 7, 128} {
			for _, n2 := range []int{0, 1, 7, 128} {
				mapping := Stitch(n1, n2, decodeShards(raw))
				checkValidPartialInjection(t, mapping, n1, n2)
			}
		}
	}
}
