package partition

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/algo/nsd"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
	"graphalign/internal/obsv"
)

func nsdFactory() (algo.Aligner, error) { return nsd.New(), nil }

func testGraphs(t *testing.T, n1, n2 int) (*graph.Graph, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	g1 := gen.PowerlawCluster(n1, 3, 0.3, rng)
	g2 := gen.PowerlawCluster(n2, 3, 0.3, rng)
	return g1, g2
}

func TestAlignProducesValidMapping(t *testing.T) {
	g1, g2 := testGraphs(t, 150, 180)
	mapping, st, err := Align(context.Background(), nsdFactory, g1, g2, assign.JonkerVolgenant,
		Options{K: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartialInjection(t, mapping, g1.N(), g2.N())
	if st.Shards != 4 {
		t.Errorf("Shards=%d, want 4", st.Shards)
	}
	matched := 0
	for _, v := range mapping {
		if v >= 0 {
			matched++
		}
	}
	if matched < g1.N()/2 {
		t.Errorf("only %d of %d source nodes matched", matched, g1.N())
	}
}

// TestAlignDeterministicAcrossWorkers pins the contract the package doc
// promises: the stitched mapping is identical for any worker count. Run
// under -race this also verifies the disjoint-slot write discipline of the
// shard fan-out and the refinement scorer.
func TestAlignDeterministicAcrossWorkers(t *testing.T) {
	g1, g2 := testGraphs(t, 150, 180)
	var first []int
	for _, workers := range []int{1, 2, 8} {
		mapping, _, err := Align(context.Background(), nsdFactory, g1, g2, assign.JonkerVolgenant,
			Options{K: 5, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = mapping
			continue
		}
		for u := range first {
			if mapping[u] != first[u] {
				t.Fatalf("workers=%d: mapping[%d]=%d differs from workers=1 value %d",
					workers, u, mapping[u], first[u])
			}
		}
	}
}

func TestAlignEmptyAndErrors(t *testing.T) {
	g1, g2 := testGraphs(t, 30, 40)
	if _, _, err := Align(context.Background(), nil, g1, g2, assign.JonkerVolgenant, Options{K: 2}); err == nil {
		t.Error("nil factory: want error")
	}
	if _, _, err := Align(context.Background(), nsdFactory, g2, g1, assign.JonkerVolgenant, Options{K: 2}); err == nil {
		t.Error("src larger than dst: want error")
	}
	empty, err := graph.New(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mapping, _, err := Align(context.Background(), nsdFactory, empty, g2, assign.JonkerVolgenant, Options{K: 2})
	if err != nil || len(mapping) != 0 {
		t.Errorf("empty src: mapping=%v err=%v", mapping, err)
	}
	wantErr := errors.New("factory down")
	_, _, err = Align(context.Background(), func() (algo.Aligner, error) { return nil, wantErr }, g1, g2,
		assign.JonkerVolgenant, Options{K: 2})
	if !errors.Is(err, wantErr) {
		t.Errorf("factory error not propagated: %v", err)
	}
}

// panicAligner blows up inside Similarity — the stand-in for a buggy inner
// algorithm whose crash must fail the run, not the process.
type panicAligner struct{}

func (panicAligner) Name() string { return "panic" }
func (panicAligner) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	panic("kaboom")
}
func (panicAligner) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }

func TestAlignShardPanicIsolated(t *testing.T) {
	g1, g2 := testGraphs(t, 40, 50)
	_, _, err := Align(context.Background(), func() (algo.Aligner, error) { return panicAligner{}, nil },
		g1, g2, assign.JonkerVolgenant, Options{K: 3, Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("want recovered panic error, got %v", err)
	}
	if !strings.Contains(err.Error(), "shard 0/") {
		t.Errorf("first failing shard (by index) should win: %v", err)
	}
}

// slowAligner spins until its context is cancelled — the stand-in for a
// shard that blows its wall-clock budget.
type slowAligner struct{}

func (slowAligner) Name() string { return "slow" }
func (slowAligner) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return slowAligner{}.SimilarityCtx(context.Background(), src, dst)
}
func (slowAligner) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}
func (slowAligner) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }

func TestAlignShardBudget(t *testing.T) {
	g1, g2 := testGraphs(t, 40, 50)
	_, _, err := Align(context.Background(), func() (algo.Aligner, error) { return slowAligner{}, nil },
		g1, g2, assign.JonkerVolgenant, Options{K: 2, ShardBudget: 20 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded through the shard budget, got %v", err)
	}
}

func TestAlignCancellation(t *testing.T) {
	g1, g2 := testGraphs(t, 40, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Align(ctx, func() (algo.Aligner, error) { return slowAligner{}, nil },
		g1, g2, assign.JonkerVolgenant, Options{K: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestAlignSparseShards exercises the TopK composition: per-shard sparse
// assignment must still produce a valid, well-matched mapping.
func TestAlignSparseShards(t *testing.T) {
	g1, g2 := testGraphs(t, 150, 180)
	mapping, _, err := Align(context.Background(), nsdFactory, g1, g2, assign.JonkerVolgenant,
		Options{K: 4, Workers: 2, TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartialInjection(t, mapping, g1.N(), g2.N())
}

// TestAlignObservability asserts the metric and per-shard trace plumbing:
// partition_* instruments are registered and shard_start/shard_done events
// flow through the tracer's sinks with one pair per shard.
func TestAlignObservability(t *testing.T) {
	g1, g2 := testGraphs(t, 120, 140)
	reg := obsv.NewRegistry()
	sink := &captureSink{}
	tr := obsv.New(sink).SetTraceID("test-root")
	_, st, err := Align(context.Background(), nsdFactory, g1, g2, assign.JonkerVolgenant,
		Options{K: 3, Workers: 1, Tracer: tr, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	starts, dones := 0, 0
	for _, e := range sink.events {
		switch e.Type {
		case "shard_start":
			starts++
			if !strings.HasPrefix(e.Trace, "test-root/shard-") {
				t.Errorf("shard event trace id %q lacks parent prefix", e.Trace)
			}
		case "shard_done":
			dones++
		}
	}
	if starts != st.Shards || dones != st.Shards {
		t.Errorf("got %d shard_start / %d shard_done events for %d shards", starts, dones, st.Shards)
	}
	counters, _ := reg.Snapshot()["counters"].(map[string]int64)
	if counters["partition_runs_total"] != 1 {
		t.Errorf("partition_runs_total=%d, want 1", counters["partition_runs_total"])
	}
}

// captureSink retains every event for assertions. The tracer serializes
// Event calls, so no locking is needed.
type captureSink struct{ events []obsv.Event }

func (s *captureSink) Event(e obsv.Event) { s.events = append(s.events, e) }
