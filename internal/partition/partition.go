// Package partition is the framework-level divide-and-conquer layer of the
// study: it co-partitions two graphs into K matched cluster pairs using
// label-invariant structural node signatures (degree profiles in the spirit
// of Degree Matrix Comparison, Wang & Chin 2024, and the canonical-labeling
// seeding of Dai et al. 2018), aligns every shard pair independently with
// any inner algo.Aligner on the shared worker pool, and stitches the shard
// mappings into one global mapping with an auction-based boundary-refinement
// pass. It is what lets an n=100k alignment run on commodity memory: no
// stage ever materializes an n×n structure, only per-shard ones.
//
// Everything in this package is deterministic: no RNG is consumed anywhere,
// all parallel fan-outs write to disjoint pre-allocated slots, and the only
// solvers invoked (assign.SolveJV on the K×K cluster-matching problem,
// assign.SolveAuction on the boundary re-bid) are themselves deterministic
// for any worker count. Partitioning the same inputs therefore yields the
// same shards, the same stitched mapping and the same refinement trajectory
// regardless of Workers. See DESIGN.md §15 for the full contract.
package partition

import (
	"math"
	"sort"

	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

// sigDims is the width of the per-node structural signature: degree, the
// sum and max of neighbor degrees, and second and third WL-style rounds
// aggregating the neighbors' previous-round sums. Each component is
// invariant under node relabeling, so two isomorphic graphs produce
// identical multisets of signatures — the property the co-partitioner's
// cluster-recovery guarantee rests on. Depth matters at scale: on a
// powerlaw graph at n=100k the low-degree core leaves tie runs of ~270
// nodes after one round; the third round shrinks the longest run to 1,
// which is what keeps sorted-signature chunk correspondence intact when
// ties would otherwise straddle chunk boundaries.
const sigDims = 5

// nodeSignatures computes the label-invariant structural signature of every
// node. Neighbors are iterated in the graph's canonical sorted order, so
// float summation order — and hence the signature bits — depends only on
// the structure, never on construction history.
func nodeSignatures(g *graph.Graph) [][sigDims]float64 {
	n := g.N()
	deg := g.Degrees()
	sig := make([][sigDims]float64, n)
	sum1 := make([]float64, n)
	for u := 0; u < n; u++ {
		var sum, max float64
		for _, v := range g.Neighbors(u) {
			d := float64(deg[v])
			sum += d
			if d > max {
				max = d
			}
		}
		sum1[u] = sum
		sig[u][0] = float64(deg[u])
		sig[u][1] = sum
		sig[u][2] = max
	}
	sum2 := make([]float64, n)
	for u := 0; u < n; u++ {
		var s float64
		for _, v := range g.Neighbors(u) {
			s += sum1[v]
		}
		sum2[u] = s
		sig[u][3] = s
	}
	for u := 0; u < n; u++ {
		var s float64
		for _, v := range g.Neighbors(u) {
			s += sum2[v]
		}
		sig[u][4] = s
	}
	return sig
}

// signatureOrder sorts node ids lexicographically by signature, with the id
// itself as the final tie-break. Only structurally indistinguishable nodes
// (equal signatures) can tie, and those are interchangeable for chunking
// purposes — the id tie-break just pins one deterministic order.
func signatureOrder(sig [][sigDims]float64) []int {
	order := make([]int, len(sig))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		u, v := order[x], order[y]
		for d := 0; d < sigDims; d++ {
			if sig[u][d] != sig[v][d] {
				return sig[u][d] < sig[v][d]
			}
		}
		return u < v
	})
	return order
}

// chunkSizes splits n items into k contiguous chunks of near-equal size
// (the standard floor-cut split: chunk i covers [i*n/k, (i+1)*n/k)).
func chunkSizes(n, k int) []int {
	sizes := make([]int, k)
	for i := 0; i < k; i++ {
		sizes[i] = (i+1)*n/k - i*n/k
	}
	return sizes
}

// cutChunks slices the signature-sorted order into chunks of the given
// sizes, each chunk's members re-sorted ascending by id so induced
// subgraphs get a canonical local numbering.
func cutChunks(order []int, sizes []int) [][]int {
	chunks := make([][]int, len(sizes))
	pos := 0
	for i, s := range sizes {
		c := append([]int(nil), order[pos:pos+s]...)
		sort.Ints(c)
		chunks[i] = c
		pos += s
	}
	return chunks
}

// clusterFeatureDims: size, internal-edge count, mean degree, mean
// neighbor-degree sum, plus an 8-bucket log-degree histogram.
const clusterFeatureDims = 4 + 8

// clusterFeatures summarizes one cluster into a small label-invariant
// feature vector used to match clusters *across* graphs. Counts enter in
// log scale so that matching is driven by shape, not raw size, and the
// degree histogram is normalized to a distribution.
func clusterFeatures(g *graph.Graph, sig [][sigDims]float64, members []int) [clusterFeatureDims]float64 {
	var f [clusterFeatureDims]float64
	if len(members) == 0 {
		return f
	}
	in := make(map[int]bool, len(members))
	for _, u := range members {
		in[u] = true
	}
	internal := 0
	var degSum, nbrSum float64
	for _, u := range members {
		d := 0
		for _, v := range g.Neighbors(u) {
			d++
			if in[v] && u < v {
				internal++
			}
		}
		degSum += float64(d)
		nbrSum += sig[u][1]
		b := 0
		for x := d; x > 0; x >>= 1 {
			b++
		}
		if b > 7 {
			b = 7
		}
		f[4+b]++
	}
	size := float64(len(members))
	f[0] = math.Log1p(size)
	f[1] = math.Log1p(float64(internal))
	f[2] = degSum / size
	f[3] = nbrSum / size
	for i := 4; i < clusterFeatureDims; i++ {
		f[i] /= size
	}
	return f
}

// CoPartition is a matched K-way co-partition of a source and a target
// graph: SrcClusters[i] and DstClusters[i] are a shard pair, with
// |SrcClusters[i]| <= |DstClusters[i]| guaranteed (the invariant every
// aligner requires of its inputs). Cluster members are ascending original
// node ids.
type CoPartition struct {
	// K is the effective shard count (the requested K clamped to the
	// smaller graph's node count).
	K int
	// SrcClusters[i] pairs with DstClusters[i].
	SrcClusters [][]int
	DstClusters [][]int
	// Match records the cluster correspondence found by signature matching
	// before the target clusters were reordered: Match[i] is the index, in
	// the target graph's own signature order, of the cluster paired with
	// source cluster i. On a graph and a relabeling of itself this is the
	// identity permutation (up to ties between structurally identical
	// nodes) — the property the co-partitioner tests pin.
	Match []int
}

// Graphs co-partitions src and dst into k matched cluster pairs. Nodes of
// each graph are sorted by structural signature and cut into k contiguous
// quantile chunks; chunks are then matched across the graphs by solving a
// k×k assignment over cluster feature distances (assign.SolveJV), and
// source chunk sizes are repaired along the signature order so every source
// cluster fits inside its matched target cluster. k is clamped to
// [1, min(n_src, n_dst)]. Requires n_src <= n_dst, like every aligner
// entry point.
func Graphs(src, dst *graph.Graph, k int) *CoPartition {
	n1, n2 := src.N(), dst.N()
	if k > n1 {
		k = n1
	}
	if k > n2 {
		k = n2
	}
	if k < 1 {
		k = 1
	}
	srcSig, dstSig := nodeSignatures(src), nodeSignatures(dst)
	srcOrder, dstOrder := signatureOrder(srcSig), signatureOrder(dstSig)
	srcSizes, dstSizes := chunkSizes(n1, k), chunkSizes(n2, k)
	dstChunks := cutChunks(dstOrder, dstSizes)

	// Provisional source chunks only exist to compute matching features; the
	// final chunks are re-cut after capacity repair below.
	srcChunks := cutChunks(srcOrder, srcSizes)
	match := matchClusters(src, dst, srcSig, dstSig, srcChunks, dstChunks)

	dstBySrc := make([][]int, k)
	caps := make([]int, k)
	for i, j := range match {
		dstBySrc[i] = dstChunks[j]
		caps[i] = len(dstChunks[j])
	}
	fitted := fitSizes(srcSizes, caps, n1)
	srcChunks = cutChunks(srcOrder, fitted)

	return &CoPartition{K: k, SrcClusters: srcChunks, DstClusters: dstBySrc, Match: match}
}

// matchClusters solves the K×K cluster correspondence: similarity is a
// monotone decreasing function of the L2 feature distance, with a tiny
// diagonal preference so that feature-identical chunk sets (a graph aligned
// with itself, or quantile chunks that tie exactly) resolve to the natural
// same-quantile pairing instead of an arbitrary optimal one.
func matchClusters(src, dst *graph.Graph, srcSig, dstSig [][sigDims]float64, srcChunks, dstChunks [][]int) []int {
	k := len(srcChunks)
	fs := make([][clusterFeatureDims]float64, k)
	fd := make([][clusterFeatureDims]float64, k)
	for i := 0; i < k; i++ {
		fs[i] = clusterFeatures(src, srcSig, srcChunks[i])
		fd[i] = clusterFeatures(dst, dstSig, dstChunks[i])
	}
	sim := matrix.NewDense(k, k)
	for i := 0; i < k; i++ {
		row := sim.Row(i)
		for j := 0; j < k; j++ {
			var d2 float64
			for t := 0; t < clusterFeatureDims; t++ {
				diff := fs[i][t] - fd[j][t]
				d2 += diff * diff
			}
			row[j] = 1 / (1 + d2)
			if i == j {
				row[j] += 1e-9
			}
		}
	}
	return assign.SolveJV(sim)
}

// fitSizes repairs the source chunk sizes so that chunk i never exceeds its
// matched target capacity: each chunk first takes min(ideal, cap), then the
// displaced remainder is absorbed front-to-back by chunks with spare
// capacity. Feasible because total source size <= total target capacity.
func fitSizes(ideal, caps []int, total int) []int {
	sizes := make([]int, len(ideal))
	assigned := 0
	for i := range sizes {
		s := ideal[i]
		if s > caps[i] {
			s = caps[i]
		}
		sizes[i] = s
		assigned += s
	}
	for i := 0; i < len(sizes) && assigned < total; i++ {
		spare := caps[i] - sizes[i]
		if spare > total-assigned {
			spare = total - assigned
		}
		sizes[i] += spare
		assigned += spare
	}
	return sizes
}
