package partition

// ShardMapping is one shard pair's alignment expressed in original node-id
// space: Src and Dst list the shard's source and target members (Local
// indexes into them), and Local[i] is the Dst index matched to Src[i], or
// -1 for unmatched.
type ShardMapping struct {
	Src   []int
	Dst   []int
	Local []int
}

// Stitch merges shard mappings into one global mapping of length n1 over
// the target space [0, n2): mapping[u] = v means source node u is aligned
// to target node v, -1 means unmatched.
//
// Stitch is deliberately defensive — it is the trust boundary between the
// per-shard aligners (which may misbehave, panic-recover into partial
// state, or be fuzzed directly) and the global mapping every metric and
// client consumes. Whatever the input, the output is a valid partial
// injection:
//
//   - out-of-range source ids, target ids and Local indexes are dropped;
//   - a source node claimed by several shards keeps its first claim
//     (shard-major, row-minor order);
//   - a target claimed twice is granted to the first claimant only, so no
//     duplicate target assignment can ever be emitted;
//   - empty shards, empty Local slices and Local slices shorter or longer
//     than Src are tolerated (extra entries are ignored).
//
// The iteration order is fixed, so Stitch is a pure function of its inputs.
func Stitch(n1, n2 int, shards []ShardMapping) []int {
	if n1 < 0 {
		n1 = 0
	}
	mapping := make([]int, n1)
	for i := range mapping {
		mapping[i] = -1
	}
	if n2 <= 0 {
		return mapping
	}
	used := make([]bool, n2)
	for _, s := range shards {
		limit := len(s.Src)
		if len(s.Local) < limit {
			limit = len(s.Local)
		}
		for li := 0; li < limit; li++ {
			u := s.Src[li]
			if u < 0 || u >= n1 || mapping[u] != -1 {
				continue
			}
			lv := s.Local[li]
			if lv < 0 || lv >= len(s.Dst) {
				continue
			}
			v := s.Dst[lv]
			if v < 0 || v >= n2 || used[v] {
				continue
			}
			mapping[u] = v
			used[v] = true
		}
	}
	return mapping
}
