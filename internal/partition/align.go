package partition

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/obsv"
	"graphalign/internal/parallel"
)

// Options configure one partitioned alignment. Only K is required; every
// observability field is nil-safe, so the zero value plus K is a working
// configuration.
type Options struct {
	// K is the requested shard count (clamped to min(n_src, n_dst)).
	K int
	// Workers bounds the shard-level parallel fan-out and the refinement
	// auction's bidding fan-out; 0 means one per CPU. The result is
	// identical for any value.
	Workers int
	// TopK, when positive, routes each shard's assignment through the
	// sparse candidate pipeline (algo.AlignSparseTimedCtx) instead of the
	// dense solvers — the composition that keeps large shards subquadratic.
	TopK int
	// ShardBudget bounds each shard's wall clock (0 = none). A shard over
	// budget fails the whole run with a context.DeadlineExceeded-wrapping
	// error, which the core runner classifies as a run timeout.
	ShardBudget time.Duration
	// RefineRounds caps the boundary-refinement passes; 0 means the
	// default of 2, negative disables refinement.
	RefineRounds int
	// BoundaryFrac caps the boundary re-bid set at this fraction of the
	// source nodes (0 means the default of 1.0: every node with a
	// cross-shard edge is re-bid). Lowering it bounds the refinement
	// auction's cost on graphs where signature chunks cut through many
	// edges, at a measurable accuracy cost — on a relabel-only instance the
	// full re-bid recovers the monolithic mapping almost exactly, while a
	// 1/8 cap leaves most of the boundary loss in place.
	BoundaryFrac float64
	// Tracer, when non-nil, gives each shard a per-shard child trace
	// (shard_start / shard_done events) layered on the PR 7/8 plumbing, so
	// a daemon job's progress stream shows shards as they complete.
	Tracer *obsv.Tracer
	// Span, when non-nil, is the enclosing run span; the partition, shard,
	// stitch and refine stages become phases under it.
	Span *obsv.Span
	// Registry receives the partition_* metrics; nil disables them.
	Registry *obsv.Registry
}

// Stats reports what a partitioned alignment did.
type Stats struct {
	// Shards is the effective shard count.
	Shards int
	// BoundaryNodes is the size of the cross-partition re-bid set.
	BoundaryNodes int
	// RefineRounds is the number of boundary-refinement auction rounds
	// whose outcome was applied.
	RefineRounds int
	// Rebound counts boundary nodes whose target changed during refinement.
	Rebound int
	// AlignTime is the wall clock of co-partitioning plus the parallel
	// shard alignments; StitchTime covers stitching and refinement. The
	// core runner reports them as the run's similarity/assignment split.
	AlignTime  time.Duration
	StitchTime time.Duration
}

const (
	defaultRefineRounds = 2
	defaultBoundaryFrac = 1.0
	refineCandidates    = 8
)

// Align runs the full partition-align-stitch pipeline: co-partition src and
// dst into matched shard pairs (Graphs), align every pair independently on
// the parallel pool — each shard with its own freshly built aligner from mk,
// inheriting ctx, an optional per-shard budget, panic isolation and a child
// trace — then stitch the shard mappings (Stitch) and re-bid the
// cross-partition boundary nodes through the auction solver (refine).
//
// The first failing shard (by shard index, independent of scheduling order)
// fails the whole run; a panic inside a shard is recovered into an error so
// the caller's worker survives. The mapping is deterministic for any
// Workers value.
func Align(ctx context.Context, mk func() (algo.Aligner, error), src, dst *graph.Graph, method assign.Method, opts Options) ([]int, Stats, error) {
	var st Stats
	if mk == nil {
		return nil, st, errors.New("partition: nil aligner factory")
	}
	if src.N() > dst.N() {
		return nil, st, fmt.Errorf("partition: source graph larger than target (%d > %d)", src.N(), dst.N())
	}
	if src.N() == 0 {
		return []int{}, st, nil
	}
	reg := opts.Registry
	reg.Counter("partition_runs_total").Add(1)

	t0 := time.Now()
	sp := opts.Span.Phase("partition")
	cp := Graphs(src, dst, opts.K)
	k := cp.K
	sp.Set("shards", k)
	sp.End()
	st.Shards = k
	reg.Histogram("partition_shards", obsv.SizeBuckets()).Observe(float64(k))

	shards := make([]ShardMapping, k)
	errs := make([]error, k)
	spShards := opts.Span.Phase("shards")
	ferr := parallel.ForCtx(ctx, opts.Workers, k, func(i int) {
		shards[i], errs[i] = alignShard(ctx, mk, src, dst, cp.SrcClusters[i], cp.DstClusters[i], method, opts, i)
	})
	spShards.End()
	for i, err := range errs {
		if err != nil {
			reg.Counter("partition_shard_errors_total").Add(1)
			return nil, st, fmt.Errorf("partition: shard %d/%d: %w", i, k, err)
		}
	}
	if ferr != nil {
		return nil, st, ferr
	}
	st.AlignTime = time.Since(t0)

	t1 := time.Now()
	sp = opts.Span.Phase("stitch")
	mapping := Stitch(src.N(), dst.N(), shards)
	sp.End()

	if opts.RefineRounds >= 0 && k > 1 {
		sp = opts.Span.Phase("refine")
		boundary, rounds, moved := refine(ctx, src, dst, cp, mapping, opts)
		sp.Set("boundary_nodes", boundary)
		sp.Set("rounds", rounds)
		sp.Set("moved", moved)
		sp.End()
		st.BoundaryNodes, st.RefineRounds, st.Rebound = boundary, rounds, moved
		reg.Histogram("partition_boundary_nodes", obsv.SizeBuckets()).Observe(float64(boundary))
		reg.Histogram("partition_refine_rounds", obsv.SizeBuckets()).Observe(float64(rounds))
		reg.Counter("partition_rebid_moves_total").Add(int64(moved))
	}
	st.StitchTime = time.Since(t1)
	return mapping, st, nil
}

// alignShard aligns one shard pair with a fresh aligner. The shard inherits
// ctx (optionally tightened by ShardBudget), runs under its own child trace,
// and recovers its own panics — a crashing inner aligner fails the run, not
// the process, because parallel pool goroutines have no recovery of their
// own.
func alignShard(ctx context.Context, mk func() (algo.Aligner, error), src, dst *graph.Graph, srcIDs, dstIDs []int, method assign.Method, opts Options, i int) (sm ShardMapping, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("partition: inner aligner panicked: %v", r)
		}
	}()
	if opts.ShardBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.ShardBudget)
		defer cancel()
	}
	var shardTr *obsv.Tracer
	if opts.Tracer != nil {
		id := fmt.Sprintf("shard-%03d", i)
		if root := opts.Tracer.TraceID(); root != "" {
			id = root + "/" + id
		}
		shardTr = opts.Tracer.ChildTrace(id)
	}
	sub1, _ := graph.InducedSubgraph(src, srcIDs)
	sub2, _ := graph.InducedSubgraph(dst, dstIDs)
	shardTr.Emit("shard_start", fmt.Sprintf("shard-%03d", i), map[string]any{
		"shard": i, "n_src": sub1.N(), "n_dst": sub2.N(),
	})

	t0 := time.Now()
	a, err := mk()
	if err != nil {
		return sm, err
	}
	var local []int
	if opts.TopK > 0 {
		local, _, _, _, err = algo.AlignSparseTimedCtx(ctx, a, sub1, sub2, method, opts.TopK, 1)
	} else {
		local, _, _, err = algo.AlignTimedCtx(ctx, a, sub1, sub2, method)
	}
	wall := time.Since(t0)
	opts.Registry.Histogram("partition_shard_seconds", obsv.DurationBuckets()).Observe(wall.Seconds())
	fields := map[string]any{"shard": i, "seconds": wall.Seconds()}
	if err != nil {
		fields["err"] = err.Error()
	}
	shardTr.Emit("shard_done", fmt.Sprintf("shard-%03d", i), fields)
	if err != nil {
		return sm, err
	}
	return ShardMapping{Src: srcIDs, Dst: dstIDs, Local: local}, nil
}

// refine re-bids the cross-partition boundary nodes through the auction
// solver. Boundary nodes are source nodes with at least one edge into
// another shard, ranked by cross-shard degree (ties to the lower id) and
// capped at BoundaryFrac of the source graph. Each boundary node bids over
// the targets its matched neighborhood points at — for candidate v, the
// score is the number of neighbors w of u with mapping[w] adjacent to v,
// plus a small stability bonus for its current target and a degree-prior
// tie-break — restricted to targets that are unassigned or owned by other
// boundary nodes, so non-boundary assignments are never disturbed. A round
// is applied only when it strictly improves the total neighborhood
// agreement of the re-bid set; refinement stops at the first non-improving
// or fixed-point round.
func refine(ctx context.Context, src, dst *graph.Graph, cp *CoPartition, mapping []int, opts Options) (boundarySize, rounds, moved int) {
	n1, n2 := src.N(), dst.N()
	shardOf := make([]int, n1)
	for s, members := range cp.SrcClusters {
		for _, u := range members {
			shardOf[u] = s
		}
	}
	type bnode struct{ u, cross int }
	var bn []bnode
	for u := 0; u < n1; u++ {
		cross := 0
		for _, w := range src.Neighbors(u) {
			if shardOf[w] != shardOf[u] {
				cross++
			}
		}
		if cross > 0 {
			bn = append(bn, bnode{u, cross})
		}
	}
	sort.Slice(bn, func(a, b int) bool {
		if bn[a].cross != bn[b].cross {
			return bn[a].cross > bn[b].cross
		}
		return bn[a].u < bn[b].u
	})
	frac := opts.BoundaryFrac
	if frac <= 0 {
		frac = defaultBoundaryFrac
	}
	limit := int(frac * float64(n1))
	if limit < 1 {
		limit = 1
	}
	if len(bn) > limit {
		bn = bn[:limit]
	}
	if len(bn) == 0 {
		return 0, 0, 0
	}
	rows := make([]int, len(bn))
	for i, b := range bn {
		rows[i] = b.u
	}
	sort.Ints(rows)
	boundarySize = len(rows)
	inB := make([]bool, n1)
	for _, u := range rows {
		inB[u] = true
	}

	maxRounds := opts.RefineRounds
	if maxRounds == 0 {
		maxRounds = defaultRefineRounds
	}
	deg1, deg2 := src.Degrees(), dst.Degrees()

	for round := 0; round < maxRounds; round++ {
		if ctx.Err() != nil {
			return boundarySize, rounds, moved
		}
		owner := make([]int, n2)
		for v := range owner {
			owner[v] = -1
		}
		for u, v := range mapping {
			if v >= 0 {
				owner[v] = u
			}
		}

		// Per-row candidate scoring, fanned out with one writer per slot.
		type cand struct {
			v     int
			score float64 // composite bid value
			agree float64 // pure neighborhood agreement (the objective)
		}
		rowCands := make([][]cand, len(rows))
		parallel.For(opts.Workers, len(rows), func(r int) {
			u := rows[r]
			agree := make(map[int]float64)
			for _, w := range src.Neighbors(u) {
				t := mapping[w]
				if t < 0 {
					continue
				}
				for _, v := range dst.Neighbors(t) {
					if owner[v] == -1 || inB[owner[v]] {
						agree[v]++
					}
				}
			}
			cur := mapping[u]
			if cur >= 0 {
				if _, ok := agree[cur]; !ok {
					agree[cur] = 0
				}
			}
			cands := make([]cand, 0, len(agree))
			for v, a := range agree {
				score := a + 0.25/(1+absInt(deg1[u]-deg2[v]))
				if v == cur {
					score += 0.5
				}
				cands = append(cands, cand{v: v, score: score, agree: a})
			}
			sort.Slice(cands, func(x, y int) bool {
				if cands[x].score != cands[y].score {
					return cands[x].score > cands[y].score
				}
				return cands[x].v < cands[y].v
			})
			if len(cands) > refineCandidates {
				cands = cands[:refineCandidates]
			}
			rowCands[r] = cands
		})

		// Rows with no candidates keep their assignment and sit the auction
		// out; the remaining rows bid over the union of their candidates.
		var live []int
		poolSet := make(map[int]bool)
		for r, cands := range rowCands {
			if len(cands) == 0 {
				continue
			}
			live = append(live, r)
			for _, c := range cands {
				poolSet[c.v] = true
			}
		}
		if len(live) == 0 {
			return boundarySize, rounds, moved
		}
		// The auction needs Rows <= Cols. Grow the pool first with the live
		// rows' own current targets (they are freed when the round is
		// applied, so reassigning them keeps the mapping injective), then
		// with unowned targets; since n2 >= n1 this always reaches
		// |pool| >= |live|, so the guard below is purely defensive.
		for _, r := range live {
			if v := mapping[rows[r]]; v >= 0 {
				poolSet[v] = true
			}
		}
		for v := 0; v < n2 && len(poolSet) < len(live); v++ {
			if owner[v] == -1 {
				poolSet[v] = true
			}
		}
		if len(poolSet) < len(live) {
			return boundarySize, rounds, moved
		}
		pool := make([]int, 0, len(poolSet))
		for v := range poolSet {
			pool = append(pool, v)
		}
		sort.Ints(pool)
		colOf := make(map[int]int, len(pool))
		for j, v := range pool {
			colOf[v] = j
		}

		kk := refineCandidates
		if len(pool) < kk {
			kk = len(pool)
		}
		c := &assign.Candidates{
			Rows: len(live), Cols: len(pool), K: kk,
			Col: make([]int, len(live)*kk),
			Val: make([]float64, len(live)*kk),
			Len: make([]int, len(live)),
		}
		for li, r := range live {
			cands := rowCands[r]
			if len(cands) > kk {
				cands = cands[:kk]
			}
			c.Len[li] = len(cands)
			for ci, cd := range cands {
				c.Col[li*kk+ci] = colOf[cd.v]
				c.Val[li*kk+ci] = cd.score
			}
			for ci := len(cands); ci < kk; ci++ {
				c.Col[li*kk+ci] = -1
			}
		}
		sol, _, ok := assign.SolveAuction(c, opts.Workers)
		if !ok {
			// The candidate graph left some row unmatchable; fall back to the
			// deterministic sparse greedy, which always yields an injective
			// assignment. The acceptance gate below still protects quality.
			sol = assign.SolveGreedySparse(c)
		}

		// One-step acceptance on the pure agreement objective, measured
		// against the mapping the bids were computed from.
		agreeOf := func(r, v int) float64 {
			if v < 0 {
				return 0
			}
			for _, cd := range rowCands[r] {
				if cd.v == v {
					return cd.agree
				}
			}
			return 0
		}
		var before, after float64
		changed := 0
		for li, r := range live {
			oldV := mapping[rows[r]]
			newV := -1
			if sol[li] >= 0 {
				newV = pool[sol[li]]
			}
			before += agreeOf(r, oldV)
			after += agreeOf(r, newV)
			if newV != oldV {
				changed++
			}
		}
		if after <= before || changed == 0 {
			return boundarySize, rounds, moved
		}
		for _, r := range live {
			mapping[rows[r]] = -1
		}
		for li, r := range live {
			if sol[li] >= 0 {
				mapping[rows[r]] = pool[sol[li]]
			}
		}
		rounds++
		moved += changed
	}
	return boundarySize, rounds, moved
}

func absInt(x int) float64 {
	if x < 0 {
		x = -x
	}
	return float64(x)
}
