package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"graphalign/internal/gen"
	"graphalign/internal/graph"
)

func TestChunkSizes(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {7, 7}, {100, 1}, {5, 4}, {1, 1}} {
		sizes := chunkSizes(tc.n, tc.k)
		if len(sizes) != tc.k {
			t.Fatalf("n=%d k=%d: %d chunks", tc.n, tc.k, len(sizes))
		}
		sum, min, max := 0, tc.n, 0
		for _, s := range sizes {
			sum += s
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if sum != tc.n {
			t.Errorf("n=%d k=%d: sizes sum to %d", tc.n, tc.k, sum)
		}
		if max-min > 1 {
			t.Errorf("n=%d k=%d: sizes not balanced: %v", tc.n, tc.k, sizes)
		}
	}
}

func TestFitSizes(t *testing.T) {
	// The counterexample that motivated capacity repair: floor-cut source
	// sizes (1,1,2,1,2) against capacities (1,2,1,2,2) violate chunk 2.
	ideal := []int{1, 1, 2, 1, 2}
	caps := []int{1, 2, 1, 2, 2}
	sizes := fitSizes(ideal, caps, 7)
	sum := 0
	for i, s := range sizes {
		if s > caps[i] {
			t.Errorf("chunk %d: size %d > cap %d", i, s, caps[i])
		}
		sum += s
	}
	if sum != 7 {
		t.Errorf("sizes sum to %d, want 7", sum)
	}
}

// checkCoPartition asserts the structural invariants every co-partition must
// satisfy: each side is an exact partition of its node set, members are
// sorted ascending, and every source cluster fits inside its paired target
// cluster (the |S_i| <= |T_i| invariant the aligners require).
func checkCoPartition(t *testing.T, cp *CoPartition, n1, n2 int) {
	t.Helper()
	if len(cp.SrcClusters) != cp.K || len(cp.DstClusters) != cp.K {
		t.Fatalf("K=%d but %d src / %d dst clusters", cp.K, len(cp.SrcClusters), len(cp.DstClusters))
	}
	for side, clusters := range map[string][][]int{"src": cp.SrcClusters, "dst": cp.DstClusters} {
		n := n1
		if side == "dst" {
			n = n2
		}
		seen := make([]bool, n)
		total := 0
		for ci, members := range clusters {
			for j, u := range members {
				if u < 0 || u >= n {
					t.Fatalf("%s cluster %d: node %d out of range [0,%d)", side, ci, u, n)
				}
				if seen[u] {
					t.Fatalf("%s cluster %d: node %d appears twice", side, ci, u)
				}
				if j > 0 && members[j-1] >= u {
					t.Fatalf("%s cluster %d: members not strictly ascending", side, ci)
				}
				seen[u] = true
				total++
			}
		}
		if total != n {
			t.Fatalf("%s clusters cover %d of %d nodes", side, total, n)
		}
	}
	for i := range cp.SrcClusters {
		if len(cp.SrcClusters[i]) > len(cp.DstClusters[i]) {
			t.Errorf("shard %d: |S|=%d > |T|=%d", i, len(cp.SrcClusters[i]), len(cp.DstClusters[i]))
		}
	}
}

func TestGraphsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g1 := gen.PowerlawCluster(137, 3, 0.3, rng)
	g2 := gen.PowerlawCluster(200, 3, 0.3, rng)
	for _, k := range []int{1, 2, 4, 7, 137, 500} {
		cp := Graphs(g1, g2, k)
		want := k
		if want > 137 {
			want = 137
		}
		if want < 1 {
			want = 1
		}
		if cp.K != want {
			t.Errorf("k=%d: effective K=%d, want %d", k, cp.K, want)
		}
		checkCoPartition(t, cp, g1.N(), g2.N())
	}
}

// TestGraphsDeterministic pins the co-partitioner's determinism contract:
// the same inputs produce the same partition, every time. Run under -race
// this also exercises the disjoint-slot discipline of the helpers.
func TestGraphsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g1 := gen.PowerlawCluster(150, 3, 0.3, rng)
	g2 := gen.PowerlawCluster(180, 3, 0.3, rng)
	first := Graphs(g1, g2, 6)
	for i := 0; i < 3; i++ {
		if got := Graphs(g1, g2, 6); !reflect.DeepEqual(first, got) {
			t.Fatalf("run %d: co-partition differs from first run", i)
		}
	}
}

// TestGraphsRelabelRecovery is the co-partitioner's core property: when the
// target is a relabeling of the source, signature chunking must recover the
// cluster correspondence — the matched target cluster is (up to ties between
// structurally identical nodes at chunk boundaries) the image of the source
// cluster under the relabeling. Checked across several generator seeds.
func TestGraphsRelabelRecovery(t *testing.T) {
	const n, k = 300, 8
	for _, seed := range []int64{1, 2, 3, 20260808} {
		rng := rand.New(rand.NewSource(seed))
		g := gen.PowerlawCluster(n, 3, 0.3, rng)
		perm := graph.RandomPermutation(n, rng)
		h, err := graph.Permute(g, perm)
		if err != nil {
			t.Fatal(err)
		}
		cp := Graphs(g, h, k)
		checkCoPartition(t, cp, n, n)

		// Signature orders of g and h are identical up to ties, so the
		// cluster matching must resolve to the identity (the 1e-9 diagonal
		// preference pins it even when features tie exactly).
		for i, j := range cp.Match {
			if i != j {
				t.Errorf("seed %d: Match[%d]=%d, want identity", seed, i, j)
			}
		}

		matched, total := 0, 0
		for i := range cp.SrcClusters {
			in := make(map[int]bool, len(cp.DstClusters[i]))
			for _, v := range cp.DstClusters[i] {
				in[v] = true
			}
			for _, u := range cp.SrcClusters[i] {
				total++
				if in[perm[u]] {
					matched++
				}
			}
		}
		if frac := float64(matched) / float64(total); frac < 0.8 {
			t.Errorf("seed %d: only %.3f of nodes land in the matched cluster (want >= 0.8)", seed, frac)
		}
	}
}

// TestGraphsSelfIdentity: co-partitioning a graph with itself must pair each
// chunk with exactly itself — identical signature orders, identical cuts,
// diagonal preference in the matcher.
func TestGraphsSelfIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.PowerlawCluster(240, 3, 0.3, rng)
	cp := Graphs(g, g, 4)
	for i := range cp.SrcClusters {
		if !reflect.DeepEqual(cp.SrcClusters[i], cp.DstClusters[i]) {
			t.Fatalf("shard %d: src and dst clusters differ on self co-partition", i)
		}
	}
}
