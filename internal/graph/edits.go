package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// EditOp is the kind of one graph edit.
type EditOp int

const (
	// EditAdd inserts an absent edge.
	EditAdd EditOp = iota
	// EditRemove deletes a present edge.
	EditRemove
)

// String returns the textual form used by edit-stream files ("add"/"del").
func (op EditOp) String() string {
	if op == EditAdd {
		return "add"
	}
	return "del"
}

// Edit is one edge mutation of an evolving graph — the delta format of the
// incremental alignment mode. Graphs stay immutable: ApplyEdits builds a new
// graph from a batch of edits rather than mutating in place, so every graph
// version remains shareable across goroutines and usable as a cache key.
type Edit struct {
	Op   EditOp
	U, V int
}

// Canon returns the edit with endpoints ordered so that U <= V.
func (e Edit) Canon() Edit {
	if e.U > e.V {
		return Edit{e.Op, e.V, e.U}
	}
	return e
}

// Touched returns the distinct endpoints of a batch of edits in ascending
// order — the seed set of the incremental pipeline's dirty-node BFS.
func Touched(edits []Edit) []int {
	seen := make(map[int]bool, 2*len(edits))
	out := make([]int, 0, 2*len(edits))
	for _, e := range edits {
		if !seen[e.U] {
			seen[e.U] = true
			out = append(out, e.U)
		}
		if !seen[e.V] {
			seen[e.V] = true
			out = append(out, e.V)
		}
	}
	sort.Ints(out)
	return out
}

// ApplyEdits builds the graph that results from applying the batch of edits
// to g, in order. The node count is unchanged — edits mutate edges only.
// Every edit must be applicable at its position in the batch: adding a
// present edge, removing an absent one, self-loops and out-of-range
// endpoints are errors (an inapplicable edit means the caller's view of the
// graph has drifted from the graph itself, which the incremental pipeline
// must surface rather than paper over). An empty batch returns a clone.
func ApplyEdits(g *Graph, edits []Edit) (*Graph, error) {
	if len(edits) == 0 {
		return g.Clone(), nil
	}
	n := g.N()
	present := make(map[Edge]bool, g.M()+len(edits))
	for _, e := range g.Edges() {
		present[e] = true
	}
	for i, ed := range edits {
		if ed.U < 0 || ed.U >= n || ed.V < 0 || ed.V >= n {
			return nil, fmt.Errorf("graph: edit %d: endpoint out of range [0,%d): (%d,%d)", i, n, ed.U, ed.V)
		}
		if ed.U == ed.V {
			return nil, fmt.Errorf("graph: edit %d: self-loop at node %d", i, ed.U)
		}
		key := Edge{U: ed.U, V: ed.V}.Canon()
		switch ed.Op {
		case EditAdd:
			if present[key] {
				return nil, fmt.Errorf("graph: edit %d: add of present edge (%d,%d)", i, key.U, key.V)
			}
			present[key] = true
		case EditRemove:
			if !present[key] {
				return nil, fmt.Errorf("graph: edit %d: remove of absent edge (%d,%d)", i, key.U, key.V)
			}
			delete(present, key)
		default:
			return nil, fmt.Errorf("graph: edit %d: unknown op %d", i, ed.Op)
		}
	}
	edges := make([]Edge, 0, len(present))
	for e := range present {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return New(n, edges)
}

// ReadEditStream parses a textual edit stream: one edit per line as
// "add u v" or "del u v" (dense node ids), with blank lines separating
// batches. Lines starting with '#' are comments. Consecutive blank lines
// collapse (they do not produce empty batches), but a batch containing the
// single word "noop" on a line is kept as an explicit empty batch — the
// probe the byte-identity contract of the incremental mode is pinned with.
func ReadEditStream(r io.Reader) ([][]Edit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var batches [][]Edit
	var cur []Edit
	open := false // current batch has seen at least one directive
	flush := func() {
		if open {
			batches = append(batches, cur)
			cur = nil
			open = false
		}
	}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		fields := splitFields(text)
		if len(fields) == 0 {
			flush()
			continue
		}
		if fields[0][0] == '#' {
			continue
		}
		if len(fields) == 1 && fields[0] == "noop" {
			open = true
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("edit stream line %d: want \"add|del u v\", got %q", line, text)
		}
		var op EditOp
		switch fields[0] {
		case "add":
			op = EditAdd
		case "del", "remove", "rm":
			op = EditRemove
		default:
			return nil, fmt.Errorf("edit stream line %d: unknown op %q", line, fields[0])
		}
		var u, v int
		if _, err := fmt.Sscan(fields[1], &u); err != nil {
			return nil, fmt.Errorf("edit stream line %d: bad node id %q", line, fields[1])
		}
		if _, err := fmt.Sscan(fields[2], &v); err != nil {
			return nil, fmt.Errorf("edit stream line %d: bad node id %q", line, fields[2])
		}
		cur = append(cur, Edit{Op: op, U: u, V: v})
		open = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return batches, nil
}

// WriteEditStream renders batches in the format ReadEditStream parses.
func WriteEditStream(w io.Writer, batches [][]Edit) error {
	bw := bufio.NewWriter(w)
	for bi, batch := range batches {
		if bi > 0 {
			if _, err := fmt.Fprintln(bw); err != nil {
				return err
			}
		}
		if len(batch) == 0 {
			if _, err := fmt.Fprintln(bw, "noop"); err != nil {
				return err
			}
			continue
		}
		for _, e := range batch {
			if _, err := fmt.Fprintf(bw, "%s %d %d\n", e.Op, e.U, e.V); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func splitFields(s string) []string { return strings.Fields(s) }
