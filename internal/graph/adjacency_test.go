package graph

import (
	"math"
	"testing"
)

func TestAdjacency(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}, {1, 2}})
	a := Adjacency(g)
	if a.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", a.NNZ())
	}
	d := a.ToDense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if g.HasEdge(i, j) {
				want = 1
			}
			if d.At(i, j) != want {
				t.Errorf("A[%d][%d] = %v, want %v", i, j, d.At(i, j), want)
			}
			if d.At(i, j) != d.At(j, i) {
				t.Errorf("adjacency not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestRowNormalizedAdjacency(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	p := RowNormalizedAdjacency(g)
	d := p.ToDense()
	// Row 0 has three neighbors with weight 1/3 each.
	for j := 1; j < 4; j++ {
		if math.Abs(d.At(0, j)-1.0/3) > 1e-12 {
			t.Errorf("P[0][%d] = %v, want 1/3", j, d.At(0, j))
		}
	}
	// Row sums are 1 for non-isolated nodes.
	for i := 0; i < 4; i++ {
		sum := 0.0
		for j := 0; j < 4; j++ {
			sum += d.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// Isolated node rows stay zero.
	g2 := MustNew(2, nil)
	p2 := RowNormalizedAdjacency(g2)
	if p2.NNZ() != 0 {
		t.Error("isolated graph should have empty transition matrix")
	}
}

func TestNormalizedLaplacian(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}, {1, 2}, {0, 2}})
	l := NormalizedLaplacian(g).ToDense()
	// Triangle: L = I - (1/2) A.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			} else {
				want = -0.5
			}
			if math.Abs(l.At(i, j)-want) > 1e-12 {
				t.Errorf("L[%d][%d] = %v, want %v", i, j, l.At(i, j), want)
			}
		}
	}
	// The all-sqrt(deg) vector is in the null space: L D^{1/2} 1 = 0.
	x := make([]float64, 3)
	for i := range x {
		x[i] = math.Sqrt(float64(g.Degree(i)))
	}
	y := l.MulVec(x)
	for i, v := range y {
		if math.Abs(v) > 1e-12 {
			t.Errorf("null vector residual y[%d] = %v", i, v)
		}
	}
	// Isolated node: diagonal 1.
	g2 := MustNew(1, nil)
	l2 := NormalizedLaplacian(g2).ToDense()
	if l2.At(0, 0) != 1 {
		t.Error("isolated node should have unit diagonal in the Laplacian")
	}
}
