package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// FuzzReadEdgeList drives the edge-list parser with arbitrary inputs and
// asserts its structural invariants: no panic, and on success a graph that
// is simple (no self-loops, no duplicate edges), consistent with the label
// table, and stable under a write/re-read round trip.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"",                                      // empty file
		"# comment only\n% other",               // comments and no edges
		"0 1\n1 2\n2 0\n",                       // plain triangle
		"a b\nb c\nc a\n",                       // string labels
		"0 0\n1 1\n0 1\n",                       // self-loops among real edges
		"0 1\n1 0\n0 1\n",                       // duplicates in both orientations
		"0 1 extra fields here\n",               // trailing fields ignored
		"0\n",                                   // too few fields: must error, not panic
		"  3   4  \n\n\n5 6",                    // odd whitespace and blank lines
		"18446744073709551615 1\n-7 x\n1e9 2\n", // huge/negative/float-ish ids stay labels
		"\x00 \x01\n",                           // control bytes as labels
		"0 1\r\n2 3\r\n",                        // CRLF line endings
		"# big ids\n999999999 1000000000\n999999999 1\n",
		strings.Repeat("7 8\n", 50), // heavy duplication
		"u\tv\nv\tw\n",              // tab separators
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, labels, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			if g != nil {
				t.Fatal("non-nil graph returned alongside an error")
			}
			return
		}
		if g.N() != len(labels) {
			t.Fatalf("graph has %d nodes but %d labels", g.N(), len(labels))
		}
		uniq := make(map[string]bool, len(labels))
		for _, l := range labels {
			if uniq[l] {
				t.Fatalf("label %q interned twice", l)
			}
			uniq[l] = true
		}
		seen := make(map[Edge]bool, g.M())
		for _, e := range g.Edges() {
			if e.U == e.V {
				t.Fatalf("self-loop survived parsing: %v", e)
			}
			if e.U < 0 || e.U >= g.N() || e.V < 0 || e.V >= g.N() {
				t.Fatalf("edge %v out of node range [0,%d)", e, g.N())
			}
			c := e.Canon()
			if seen[c] {
				t.Fatalf("duplicate edge survived parsing: %v", e)
			}
			seen[c] = true
		}
		// Round trip: writing the parsed graph and re-reading it must
		// reproduce the same edge set. The writer emits only edges, so
		// isolated nodes are legitimately lost and the reader re-interns ids
		// in first-appearance order; labels2 (the written dense ids as
		// strings) map the re-read edges back to g's numbering.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		g2, labels2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written graph: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("round trip changed edge count: %d -> %d", g.M(), g2.M())
		}
		toOrig := func(id int) int {
			n, err := strconv.Atoi(labels2[id])
			if err != nil {
				t.Fatalf("written label %q is not a dense id", labels2[id])
			}
			return n
		}
		for _, e := range g2.Edges() {
			orig := Edge{U: toOrig(e.U), V: toOrig(e.V)}.Canon()
			if !seen[orig] {
				t.Fatalf("round trip invented edge %v (original ids %v)", e, orig)
			}
		}
	})
}
