package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestApplyEditsRoundTrip(t *testing.T) {
	g := MustNew(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	edits := []Edit{
		{Op: EditRemove, U: 1, V: 2},
		{Op: EditAdd, U: 0, V: 4},
		{Op: EditAdd, U: 1, V: 3},
	}
	h, err := ApplyEdits(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 5 || h.M() != 5 {
		t.Fatalf("got n=%d m=%d, want n=5 m=5", h.N(), h.M())
	}
	if h.HasEdge(1, 2) {
		t.Error("removed edge (1,2) still present")
	}
	for _, e := range []Edge{{0, 4}, {1, 3}, {0, 1}, {2, 3}, {3, 4}} {
		if !h.HasEdge(e.U, e.V) {
			t.Errorf("edge (%d,%d) missing", e.U, e.V)
		}
	}
	// The original graph is untouched.
	if !g.HasEdge(1, 2) || g.M() != 4 {
		t.Error("ApplyEdits mutated its input")
	}
	// Inverse batch restores the original structure.
	inv := []Edit{
		{Op: EditRemove, U: 1, V: 3},
		{Op: EditRemove, U: 0, V: 4},
		{Op: EditAdd, U: 1, V: 2},
	}
	back, err := ApplyEdits(h, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Edges(), g.Edges()) {
		t.Error("inverse edits did not restore the original edge set")
	}
}

func TestApplyEditsEmptyIsClone(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {2, 3}})
	h, err := ApplyEdits(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Edges(), g.Edges()) || h.N() != g.N() {
		t.Error("empty batch must clone the graph unchanged")
	}
}

func TestApplyEditsRejectsInapplicable(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}})
	cases := []struct {
		name  string
		edits []Edit
	}{
		{"add-present", []Edit{{Op: EditAdd, U: 0, V: 1}}},
		{"add-present-flipped", []Edit{{Op: EditAdd, U: 1, V: 0}}},
		{"remove-absent", []Edit{{Op: EditRemove, U: 1, V: 2}}},
		{"self-loop", []Edit{{Op: EditAdd, U: 2, V: 2}}},
		{"out-of-range", []Edit{{Op: EditAdd, U: 0, V: 3}}},
		{"double-remove", []Edit{{Op: EditRemove, U: 0, V: 1}, {Op: EditRemove, U: 0, V: 1}}},
	}
	for _, tc := range cases {
		if _, err := ApplyEdits(g, tc.edits); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
	// Order matters: remove-then-add of the same edge is applicable.
	if _, err := ApplyEdits(g, []Edit{{Op: EditRemove, U: 0, V: 1}, {Op: EditAdd, U: 0, V: 1}}); err != nil {
		t.Errorf("remove-then-re-add should be applicable: %v", err)
	}
}

func TestTouched(t *testing.T) {
	edits := []Edit{
		{Op: EditAdd, U: 4, V: 1},
		{Op: EditRemove, U: 1, V: 2},
	}
	got := Touched(edits)
	want := []int{1, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Touched = %v, want %v", got, want)
	}
}

func TestEditStreamRoundTrip(t *testing.T) {
	batches := [][]Edit{
		{{Op: EditAdd, U: 0, V: 1}, {Op: EditRemove, U: 2, V: 3}},
		{}, // explicit empty batch
		{{Op: EditRemove, U: 4, V: 5}},
	}
	var buf bytes.Buffer
	if err := WriteEditStream(&buf, batches); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEditStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, [][]Edit{batches[0], nil, batches[2]}) &&
		!reflect.DeepEqual(got, batches) {
		t.Fatalf("round trip = %v, want %v", got, batches)
	}
	if len(got) != 3 || len(got[1]) != 0 {
		t.Fatalf("empty batch lost: %v", got)
	}
}

func TestReadEditStreamFormat(t *testing.T) {
	in := "# comment\nadd 0 1\ndel 2 3\n\n\nnoop\n\nrm 4 5\n"
	got, err := ReadEditStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d batches, want 3: %v", len(got), got)
	}
	if len(got[0]) != 2 || len(got[1]) != 0 || len(got[2]) != 1 {
		t.Fatalf("batch sizes wrong: %v", got)
	}
	if got[2][0] != (Edit{Op: EditRemove, U: 4, V: 5}) {
		t.Fatalf("rm alias parsed wrong: %v", got[2][0])
	}
	if _, err := ReadEditStream(strings.NewReader("bogus 1 2\n")); err == nil {
		t.Error("unknown op must error")
	}
	if _, err := ReadEditStream(strings.NewReader("add 1\n")); err == nil {
		t.Error("short line must error")
	}
}
