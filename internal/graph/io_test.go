package graph

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% another comment
a b
b c
a b
c c
b a
`
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("n = %d, want 3", g.N())
	}
	if g.M() != 2 {
		t.Fatalf("m = %d, want 2 (duplicates and self-loops dropped)", g.M())
	}
	if !reflect.DeepEqual(labels, []string{"a", "b", "c"}) {
		t.Errorf("labels = %v", labels)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("justone\n")); err == nil {
		t.Error("single-field line accepted")
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, labels, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ReadEdgeList assigns dense ids in order of first appearance, so map
	// back through the labels before comparing edge sets.
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("roundtrip changed size: n=%d m=%d", g2.N(), g2.M())
	}
	orig := make(map[int]int, len(labels)) // new id -> original id
	for newID, label := range labels {
		var id int
		if _, err := fmt.Sscan(label, &id); err != nil {
			t.Fatalf("unexpected label %q", label)
		}
		orig[newID] = id
	}
	var mapped []Edge
	for _, e := range g2.Edges() {
		mapped = append(mapped, Edge{orig[e.U], orig[e.V]}.Canon())
	}
	sort.Slice(mapped, func(i, j int) bool {
		if mapped[i].U != mapped[j].U {
			return mapped[i].U < mapped[j].U
		}
		return mapped[i].V < mapped[j].V
	})
	if !reflect.DeepEqual(mapped, g.Edges()) {
		t.Errorf("roundtrip changed edges: %v vs %v", mapped, g.Edges())
	}
}

func TestReadEmpty(t *testing.T) {
	g, labels, err := ReadEdgeList(strings.NewReader("\n# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || len(labels) != 0 {
		t.Error("empty input should produce empty graph")
	}
}
