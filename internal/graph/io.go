package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list. Lines starting with
// '#' or '%' are comments. Node labels may be arbitrary strings; they are
// mapped to dense ids in order of first appearance. Duplicate edges (in
// either orientation) and self-loops are silently dropped, since public
// datasets frequently contain both. The returned labels slice maps dense ids
// back to original labels.
func ReadEdgeList(r io.Reader) (g *Graph, labels []string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	ids := make(map[string]int)
	intern := func(s string) int {
		if id, ok := ids[s]; ok {
			return id
		}
		id := len(labels)
		ids[s] = id
		labels = append(labels, s)
		return id
	}
	seen := make(map[Edge]bool)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: need at least two fields", line)
		}
		u := intern(fields[0])
		v := intern(fields[1])
		if u == v {
			continue
		}
		e := Edge{u, v}.Canon()
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	g, err = New(len(labels), edges)
	return g, labels, err
}

// WriteEdgeList writes g as "u v" lines using dense integer ids.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := bw.WriteString(strconv.Itoa(e.U) + " " + strconv.Itoa(e.V) + "\n"); err != nil {
			return fmt.Errorf("graph: writing edge list: %w", err)
		}
	}
	return bw.Flush()
}
