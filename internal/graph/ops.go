package graph

import (
	"fmt"
	"math/rand"
)

// Permute relabels the nodes of g by the permutation perm, where perm[u] is
// the new identifier of node u. It returns the relabeled graph. The inverse
// mapping (needed as ground truth by alignment experiments) is simply perm
// itself: aligning Permute(g, perm) back to g must map perm[u] -> u.
func Permute(g *Graph, perm []int) (*Graph, error) {
	if len(perm) != g.N() {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), g.N())
	}
	seen := make([]bool, g.N())
	for _, p := range perm {
		if p < 0 || p >= g.N() || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation")
		}
		seen[p] = true
	}
	edges := g.Edges()
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{perm[e.U], perm[e.V]}
	}
	return New(g.N(), out)
}

// RandomPermutation returns a uniformly random permutation of [0, n) drawn
// from rng.
func RandomPermutation(n int, rng *rand.Rand) []int {
	return rng.Perm(n)
}

// IdentityPermutation returns the identity permutation of [0, n).
func IdentityPermutation(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// InversePermutation returns q with q[perm[i]] = i.
func InversePermutation(perm []int) []int {
	q := make([]int, len(perm))
	for i, p := range perm {
		q[p] = i
	}
	return q
}

// ConnectedComponents labels each node with a component id in [0, k) and
// returns the labels together with the number of components k. Component ids
// are assigned in order of discovery from node 0 upward.
func ConnectedComponents(g *Graph) (labels []int, k int) {
	labels = make([]int, g.N())
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int, 0, g.N())
	for s := 0; s < g.N(); s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = k
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if labels[v] == -1 {
					labels[v] = k
					queue = append(queue, v)
				}
			}
		}
		k++
	}
	return labels, k
}

// IsConnected reports whether g has exactly one connected component (an
// empty graph and a single-node graph are considered connected).
func IsConnected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	_, k := ConnectedComponents(g)
	return k == 1
}

// LargestComponent returns the induced subgraph on the largest connected
// component, together with origID mapping subgraph node ids back to ids in g.
func LargestComponent(g *Graph) (sub *Graph, origID []int) {
	labels, k := ConnectedComponents(g)
	if k <= 1 {
		return g.Clone(), IdentityPermutation(g.N())
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	keep := make([]int, 0, sizes[best])
	for u, l := range labels {
		if l == best {
			keep = append(keep, u)
		}
	}
	sub, _ = InducedSubgraph(g, keep)
	return sub, keep
}

// InducedSubgraph returns the subgraph induced by the given node set (which
// must contain no duplicates), with nodes relabeled to [0, len(nodes)) in the
// order given. The returned map newID maps original ids to subgraph ids.
func InducedSubgraph(g *Graph, nodes []int) (sub *Graph, newID map[int]int) {
	newID = make(map[int]int, len(nodes))
	for i, u := range nodes {
		newID[u] = i
	}
	var edges []Edge
	for i, u := range nodes {
		for _, v := range g.Neighbors(u) {
			j, ok := newID[v]
			if ok && i < j {
				edges = append(edges, Edge{i, j})
			}
		}
	}
	return MustNew(len(nodes), edges), newID
}

// BFSDistances returns hop distances from source s; unreachable nodes get -1.
func BFSDistances(g *Graph, s int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// KHopNeighborhoods returns, for each hop h in 1..K, the set of nodes at
// exactly hop distance h from u, as slices. Used by REGAL's structural
// signatures.
func KHopNeighborhoods(g *Graph, u, K int) [][]int {
	hops := make([][]int, K)
	dist := map[int]int{u: 0}
	frontier := []int{u}
	for h := 1; h <= K && len(frontier) > 0; h++ {
		var next []int
		for _, x := range frontier {
			for _, v := range g.Neighbors(x) {
				if _, ok := dist[v]; !ok {
					dist[v] = h
					next = append(next, v)
				}
			}
		}
		hops[h-1] = next
		frontier = next
	}
	return hops
}

// TriangleCount returns the number of triangles in g.
func TriangleCount(g *Graph) int {
	count := 0
	for u := 0; u < g.N(); u++ {
		nu := g.Neighbors(u)
		for _, v := range nu {
			if v <= u {
				continue
			}
			// count common neighbors w > v to count each triangle once
			nv := g.Neighbors(v)
			i, j := 0, 0
			for i < len(nu) && j < len(nv) {
				switch {
				case nu[i] == nv[j]:
					if nu[i] > v {
						count++
					}
					i++
					j++
				case nu[i] < nv[j]:
					i++
				default:
					j++
				}
			}
		}
	}
	return count
}

// ClusteringCoefficient returns the global clustering coefficient
// 3*triangles / #wedges (0 when there are no wedges).
func ClusteringCoefficient(g *Graph) float64 {
	wedges := 0
	for u := 0; u < g.N(); u++ {
		d := g.Degree(u)
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(TriangleCount(g)) / float64(wedges)
}
