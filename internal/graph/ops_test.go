package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestPermuteBasic(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}, {1, 2}})
	perm := []int{2, 0, 1} // node u -> perm[u]
	p, err := Permute(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Edge (0,1) -> (2,0); edge (1,2) -> (0,1).
	if !p.HasEdge(2, 0) || !p.HasEdge(0, 1) || p.HasEdge(1, 2) {
		t.Errorf("permuted edges wrong: %v", p.Edges())
	}
}

func TestPermuteErrors(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}})
	if _, err := Permute(g, []int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := Permute(g, []int{0, 0, 1}); err == nil {
		t.Error("non-bijective permutation accepted")
	}
	if _, err := Permute(g, []int{0, 1, 5}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}

func TestInversePermutation(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	inv := InversePermutation(perm)
	for i, p := range perm {
		if inv[p] != i {
			t.Fatalf("inv[perm[%d]] = %d, want %d", i, inv[p], i)
		}
	}
	id := IdentityPermutation(4)
	if !reflect.DeepEqual(InversePermutation(id), id) {
		t.Error("identity permutation should be self-inverse")
	}
}

func TestPropertyPermutePreservesDegreeMultiset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(25, 0.2, seed)
		perm := RandomPermutation(g.N(), rng)
		p, err := Permute(g, perm)
		if err != nil {
			return false
		}
		d1 := g.Degrees()
		d2 := p.Degrees()
		sort.Ints(d1)
		sort.Ints(d2)
		return reflect.DeepEqual(d1, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPermuteRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(20, 0.2, seed)
		perm := RandomPermutation(g.N(), rng)
		p, err := Permute(g, perm)
		if err != nil {
			return false
		}
		back, err := Permute(p, InversePermutation(perm))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back.Edges(), g.Edges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := MustNew(6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	labels, k := ConnectedComponents(g)
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("nodes 0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Error("nodes 3,4 should share a component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("node 5 should be isolated")
	}
	if IsConnected(g) {
		t.Error("disconnected graph reported connected")
	}
	if !IsConnected(triangle(t)) {
		t.Error("triangle should be connected")
	}
	if !IsConnected(MustNew(1, nil)) || !IsConnected(MustNew(0, nil)) {
		t.Error("trivial graphs should count as connected")
	}
}

func TestLargestComponent(t *testing.T) {
	g := MustNew(7, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {5, 6}})
	sub, orig := LargestComponent(g)
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("largest component n=%d m=%d, want triangle", sub.N(), sub.M())
	}
	sort.Ints(orig)
	if !reflect.DeepEqual(orig, []int{0, 1, 2}) {
		t.Errorf("origID = %v", orig)
	}
	// Connected graph: returns an equivalent copy.
	tr := triangle(t)
	sub2, orig2 := LargestComponent(tr)
	if sub2.N() != 3 || len(orig2) != 3 {
		t.Error("largest component of a connected graph should be itself")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := MustNew(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	sub, newID := InducedSubgraph(g, []int{0, 1, 2})
	if sub.N() != 2+1 || sub.M() != 2 {
		t.Fatalf("induced subgraph n=%d m=%d, want 3/2", sub.N(), sub.M())
	}
	if !sub.HasEdge(newID[0], newID[1]) || !sub.HasEdge(newID[1], newID[2]) {
		t.Error("induced edges missing")
	}
	if sub.HasEdge(newID[0], newID[2]) {
		t.Error("non-edge appeared in induced subgraph")
	}
}

func TestBFSDistances(t *testing.T) {
	g := MustNew(5, []Edge{{0, 1}, {1, 2}, {2, 3}})
	d := BFSDistances(g, 0)
	want := []int{0, 1, 2, 3, -1}
	if !reflect.DeepEqual(d, want) {
		t.Errorf("BFS = %v, want %v", d, want)
	}
}

func TestKHopNeighborhoods(t *testing.T) {
	g := MustNew(6, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {4, 5}})
	hops := KHopNeighborhoods(g, 0, 3)
	sets := make([][]int, len(hops))
	for i, h := range hops {
		sets[i] = append([]int(nil), h...)
		sort.Ints(sets[i])
	}
	if !reflect.DeepEqual(sets[0], []int{1, 2}) {
		t.Errorf("hop1 = %v", sets[0])
	}
	if !reflect.DeepEqual(sets[1], []int{3, 4}) {
		t.Errorf("hop2 = %v", sets[1])
	}
	if !reflect.DeepEqual(sets[2], []int{5}) {
		t.Errorf("hop3 = %v", sets[2])
	}
}

func TestTriangleCount(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{triangle(t), 1},
		{MustNew(4, []Edge{{0, 1}, {1, 2}, {2, 3}}), 0},
		{MustNew(4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}), 4}, // K4
	}
	for i, c := range cases {
		if got := TriangleCount(c.g); got != c.want {
			t.Errorf("case %d: triangles = %d, want %d", i, got, c.want)
		}
	}
}

func TestClusteringCoefficient(t *testing.T) {
	if got := ClusteringCoefficient(triangle(t)); got != 1 {
		t.Errorf("triangle clustering = %v, want 1", got)
	}
	path := MustNew(3, []Edge{{0, 1}, {1, 2}})
	if got := ClusteringCoefficient(path); got != 0 {
		t.Errorf("path clustering = %v, want 0", got)
	}
	if got := ClusteringCoefficient(MustNew(2, []Edge{{0, 1}})); got != 0 {
		t.Errorf("no-wedge graph clustering = %v, want 0", got)
	}
}
