package graph

import (
	"math"

	"graphalign/internal/matrix"
)

// Adjacency returns the symmetric 0/1 adjacency matrix of g in CSR form.
func Adjacency(g *Graph) *matrix.CSR {
	nnz := 2 * g.M()
	rIdx := make([]int, 0, nnz)
	cIdx := make([]int, 0, nnz)
	vals := make([]float64, 0, nnz)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			rIdx = append(rIdx, u)
			cIdx = append(cIdx, v)
			vals = append(vals, 1)
		}
	}
	m, err := matrix.NewCSR(g.N(), g.N(), rIdx, cIdx, vals)
	if err != nil {
		panic(err) // a valid Graph always yields valid coordinates
	}
	return m
}

// RowNormalizedAdjacency returns D^-1 A, the random-walk transition matrix.
// Rows of isolated nodes are left all-zero.
func RowNormalizedAdjacency(g *Graph) *matrix.CSR {
	a := Adjacency(g)
	inv := make([]float64, g.N())
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > 0 {
			inv[u] = 1 / float64(d)
		}
	}
	return a.ScaleRows(inv)
}

// NormalizedLaplacian returns L = I - D^-1/2 A D^-1/2 in CSR form. Isolated
// nodes get a diagonal 1 (their Laplacian row is just the identity row).
func NormalizedLaplacian(g *Graph) *matrix.CSR {
	n := g.N()
	invSqrt := make([]float64, n)
	for u := 0; u < n; u++ {
		if d := g.Degree(u); d > 0 {
			invSqrt[u] = 1 / math.Sqrt(float64(d))
		}
	}
	nnz := 2*g.M() + n
	rIdx := make([]int, 0, nnz)
	cIdx := make([]int, 0, nnz)
	vals := make([]float64, 0, nnz)
	for u := 0; u < n; u++ {
		rIdx = append(rIdx, u)
		cIdx = append(cIdx, u)
		vals = append(vals, 1)
		for _, v := range g.Neighbors(u) {
			rIdx = append(rIdx, u)
			cIdx = append(cIdx, v)
			vals = append(vals, -invSqrt[u]*invSqrt[v])
		}
	}
	m, err := matrix.NewCSR(n, n, rIdx, cIdx, vals)
	if err != nil {
		panic(err)
	}
	return m
}
