package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	return MustNew(3, []Edge{{0, 1}, {1, 2}, {0, 2}})
}

func TestNewBasics(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {2, 1}, {2, 3}})
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("Degree(1) = %d, want 2", got)
	}
	if got := g.Neighbors(2); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("Neighbors(2) = %v, want [1 3]", got)
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 3) {
		t.Error("HasEdge(0,3) = true, want false")
	}
	if g.HasEdge(0, 0) || g.HasEdge(-1, 2) || g.HasEdge(0, 99) {
		t.Error("HasEdge must reject self-loops and out-of-range ids")
	}
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"negative n", -1, nil},
		{"out of range", 2, []Edge{{0, 2}}},
		{"negative id", 2, []Edge{{-1, 0}}},
		{"self loop", 2, []Edge{{1, 1}}},
		{"duplicate", 3, []Edge{{0, 1}, {1, 0}}},
	}
	for _, c := range cases {
		if _, err := New(c.n, c.edges); err == nil {
			t.Errorf("%s: New succeeded, want error", c.name)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := MustNew(0, nil)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.N(), g.M())
	}
	if g.AvgDegree() != 0 || g.MaxDegree() != 0 {
		t.Error("empty graph degree stats should be zero")
	}
	if len(g.Edges()) != 0 {
		t.Error("empty graph should have no edges")
	}
}

func TestEdgesRoundtrip(t *testing.T) {
	g := triangle(t)
	edges := g.Edges()
	g2 := MustNew(3, edges)
	if !reflect.DeepEqual(g2.Edges(), edges) {
		t.Error("rebuilding from Edges() changed the edge set")
	}
}

func TestEdgeCanon(t *testing.T) {
	if (Edge{3, 1}).Canon() != (Edge{1, 3}) {
		t.Error("Canon should order endpoints")
	}
	if (Edge{1, 3}).Canon() != (Edge{1, 3}) {
		t.Error("Canon must not change ordered edges")
	}
}

func TestDegreesAndStats(t *testing.T) {
	g := MustNew(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if got := g.MaxDegree(); got != 4 {
		t.Errorf("MaxDegree = %d, want 4", got)
	}
	if got := g.AvgDegree(); got != 8.0/5 {
		t.Errorf("AvgDegree = %v, want 1.6", got)
	}
	wantDeg := []int{4, 1, 1, 1, 1}
	if got := g.Degrees(); !reflect.DeepEqual(got, wantDeg) {
		t.Errorf("Degrees = %v, want %v", got, wantDeg)
	}
}

func TestClone(t *testing.T) {
	g := triangle(t)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatal("clone changed size")
	}
	if !reflect.DeepEqual(c.Edges(), g.Edges()) {
		t.Fatal("clone changed edges")
	}
}

func TestString(t *testing.T) {
	got := triangle(t).String()
	if got != "Graph(n=3, m=3)" {
		t.Errorf("String = %q", got)
	}
}

// randomGraph builds a reproducible random simple graph for property tests.
func randomGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, Edge{u, v})
			}
		}
	}
	return MustNew(n, edges)
}

func TestPropertyNeighborsSortedAndSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(30, 0.15, seed)
		for u := 0; u < g.N(); u++ {
			nbrs := g.Neighbors(u)
			if !sort.IntsAreSorted(nbrs) {
				return false
			}
			for _, v := range nbrs {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDegreeSumIsTwiceEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(40, 0.1, seed)
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
