// Package graph provides the undirected, unattributed graph representation
// shared by every alignment algorithm and experiment in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form: a flat neighbor
// array plus per-node offsets. Node identifiers are dense integers in
// [0, N). Self-loops and parallel edges are rejected at construction time,
// matching the paper's setting of simple undirected graphs.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between two node identifiers.
type Edge struct {
	U, V int
}

// Canon returns the edge with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Graph is an immutable simple undirected graph in CSR form.
//
// The zero value is an empty graph with no nodes. Construct graphs with
// FromEdges or the generators in internal/gen.
type Graph struct {
	n       int
	offsets []int // len n+1
	neigh   []int // len 2m, sorted within each node's range
}

// New builds a graph with n nodes from the given edge list. Edges may appear
// in either orientation; duplicates and self-loops cause an error. Endpoints
// must lie in [0, n).
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	deg := make([]int, n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at node %d", e.U)
		}
		deg[e.U]++
		deg[e.V]++
	}
	g := &Graph{
		n:       n,
		offsets: make([]int, n+1),
		neigh:   make([]int, 2*len(edges)),
	}
	for i := 0; i < n; i++ {
		g.offsets[i+1] = g.offsets[i] + deg[i]
	}
	pos := make([]int, n)
	copy(pos, g.offsets[:n])
	for _, e := range edges {
		g.neigh[pos[e.U]] = e.V
		pos[e.U]++
		g.neigh[pos[e.V]] = e.U
		pos[e.V]++
	}
	for i := 0; i < n; i++ {
		row := g.neigh[g.offsets[i]:g.offsets[i+1]]
		sort.Ints(row)
		for j := 1; j < len(row); j++ {
			if row[j] == row[j-1] {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", i, row[j])
			}
		}
	}
	return g, nil
}

// MustNew is New but panics on error; intended for tests and generators that
// construct edges known to be valid.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.neigh) / 2 }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return g.offsets[u+1] - g.offsets[u] }

// Neighbors returns the sorted neighbor slice of node u. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(u int) []int {
	return g.neigh[g.offsets[u]:g.offsets[u+1]]
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	row := g.Neighbors(u)
	i := sort.SearchInts(row, v)
	return i < len(row) && row[i] == v
}

// Edges returns all edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	return out
}

// Degrees returns the degree of every node.
func (g *Graph) Degrees() []int {
	d := make([]int, g.n)
	for u := range d {
		d[u] = g.Degree(u)
	}
	return d
}

// MaxDegree returns the maximum node degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average node degree 2m/n (0 for an empty graph).
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(len(g.neigh)) / float64(g.n)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:       g.n,
		offsets: append([]int(nil), g.offsets...),
		neigh:   append([]int(nil), g.neigh...),
	}
	return c
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, g.M())
}
