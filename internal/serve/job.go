package serve

import (
	"context"
	"sync"
	"time"

	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/metrics"
	"graphalign/internal/obsv"
)

// Status is a job's lifecycle state. Transitions are strictly forward:
// queued → running → one of done/failed/cancelled, or queued → cancelled
// when the client cancels before a worker picks the job up.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether s is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Error kinds classify a failed job for clients, mirroring the typed errors
// of the core runner (core.TimeoutError, core.PanicError, context.Canceled).
const (
	ErrKindTimeout   = "timeout"
	ErrKindCancelled = "cancelled"
	ErrKindPanic     = "panic"
	ErrKindError     = "error"
)

// Spec is the algorithm configuration of one job.
type Spec struct {
	// Algo is the canonical algorithm name (IsoRank ... GRASP, Adaptive).
	Algo string
	// Method selects the assignment stage; empty means the algorithm's
	// author-proposed default.
	Method assign.Method
	// TopK, when positive, routes the job through the sparse candidate
	// pipeline (core.RunSpec.AssignTopK).
	TopK int
	// Timeout is the per-job wall-clock budget; zero inherits the server
	// default. Jobs over budget fail with ErrKindTimeout.
	Timeout time.Duration
	// Workers bounds the job's intra-run parallel fan-out; zero means the
	// server default (results are identical for any value).
	Workers int
	// Partitions, when >= 2, routes the job through the partition-align-
	// stitch sharding layer (core.RunSpec.Partitions): the graphs are
	// co-partitioned into that many matched cluster pairs, each pair aligned
	// by a fresh aligner instance, and the shard mappings stitched with
	// boundary refinement. Per-shard progress (shard_start / shard_done)
	// streams through the job's event log. 0 = off.
	Partitions int
}

// Job is one alignment request moving through the daemon. All mutable state
// is behind mu; Job values are shared between the scheduler, the HTTP
// handlers and the per-job tracer sink.
type Job struct {
	ID   string
	Spec Spec

	src, dst             *graph.Graph
	srcLabels, dstLabels []string

	// log receives every tracer event of the job (progress stream).
	log *eventLog

	mu        sync.Mutex
	status    Status
	cancelled bool // client asked for cancellation
	cancel    context.CancelFunc
	err       error
	errKind   string
	mapping   []int
	scores    metrics.Scores
	simTime   time.Duration
	asgTime   time.Duration
	created   time.Time
	started   time.Time
	finished  time.Time

	// done is closed exactly once, when the job reaches a terminal state.
	done chan struct{}
}

func newJob(id string, spec Spec, src, dst *graph.Graph, srcLabels, dstLabels []string) *Job {
	return &Job{
		ID: id, Spec: spec,
		src: src, dst: dst, srcLabels: srcLabels, dstLabels: dstLabels,
		log:     newEventLog(),
		status:  StatusQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the job's terminal error (nil while non-terminal or done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Mapping returns the alignment result (nil unless StatusDone). The slice is
// owned by the job; callers must not mutate it.
func (j *Job) Mapping() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.mapping
}

// markRunning moves queued → running; it reports false (and performs the
// queued → cancelled transition) when the client cancelled the job while it
// waited in the queue, so the scheduler skips it without running anything.
func (j *Job) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	if j.cancelled {
		j.mu.Unlock()
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	return true
}

// requestCancel records a client cancellation and, when the job is already
// running, cancels its context. Safe to call at any point in the lifecycle;
// it reports whether the request had any effect (false on terminal jobs).
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelled = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// finish moves the job to a terminal state exactly once and wakes everything
// blocked on Done. Later calls are ignored, making shutdown paths idempotent.
func (j *Job) finish(status Status, err error, kind string, mapping []int, scores metrics.Scores, simT, asgT time.Duration) {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.err = err
	j.errKind = kind
	j.mapping = mapping
	j.scores = scores
	j.simTime = simT
	j.asgTime = asgT
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// JobView is the JSON shape of a job returned by the HTTP API. Timestamps
// are Unix nanoseconds (0 = not reached); durations are milliseconds.
type JobView struct {
	ID        string  `json:"id"`
	Status    Status  `json:"status"`
	Algo      string  `json:"algo"`
	Method    string  `json:"method,omitempty"`
	TopK      int     `json:"topk,omitempty"`
	Parts     int     `json:"partitions,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	NSrc      int     `json:"n_src"`
	MSrc      int     `json:"m_src"`
	NDst      int     `json:"n_dst"`
	MDst      int     `json:"m_dst"`
	CreatedNS int64   `json:"created_unix_ns"`
	StartedNS int64   `json:"started_unix_ns,omitempty"`
	DoneNS    int64   `json:"finished_unix_ns,omitempty"`
	Error     string  `json:"error,omitempty"`
	ErrorKind string  `json:"error_kind,omitempty"`
	Events    int     `json:"events"`
	Result    *Result `json:"result,omitempty"`
}

// Result carries a finished job's alignment: mapping[u] is the dense id of
// the dst node aligned to src node u (-1 = unmatched), with the four
// ground-truth-free quality scores and the sim/assign wall-time split.
// Mapping is one page of the full mapping — MappingOffset is the dense id of
// its first entry and MappingTotal the full length, so clients can page
// through large results with GET /v1/jobs/{id}?offset=&limit= instead of
// pulling one n=100k array in a single response.
type Result struct {
	Mapping       []int   `json:"mapping"`
	MappingOffset int     `json:"mapping_offset"`
	MappingTotal  int     `json:"mapping_total"`
	EC            float64 `json:"ec"`
	ICS           float64 `json:"ics"`
	S3            float64 `json:"s3"`
	MNC           float64 `json:"mnc"`
	SimTimeMS     float64 `json:"sim_time_ms"`
	AssignTimeMS  float64 `json:"assign_time_ms"`
}

// View snapshots the job for the API with the full mapping.
func (j *Job) View() JobView { return j.ViewPage(0, 0) }

// ViewPage is View returning only a page of the mapping: offset is clamped
// to [0, total], limit 0 means "to the end". Everything else in the view is
// unaffected.
func (j *Job) ViewPage(offset, limit int) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		Status:    j.status,
		Algo:      j.Spec.Algo,
		Method:    string(j.Spec.Method),
		TopK:      j.Spec.TopK,
		Parts:     j.Spec.Partitions,
		TimeoutMS: j.Spec.Timeout.Milliseconds(),
		NSrc:      j.src.N(), MSrc: j.src.M(),
		NDst: j.dst.N(), MDst: j.dst.M(),
		CreatedNS: j.created.UnixNano(),
		Events:    j.log.len(),
	}
	if !j.started.IsZero() {
		v.StartedNS = j.started.UnixNano()
	}
	if !j.finished.IsZero() {
		v.DoneNS = j.finished.UnixNano()
	}
	if j.err != nil {
		v.Error = j.err.Error()
		v.ErrorKind = j.errKind
	}
	if j.status == StatusDone {
		page, off := pageMapping(j.mapping, offset, limit)
		v.Result = &Result{
			Mapping:       page,
			MappingOffset: off,
			MappingTotal:  len(j.mapping),
			EC:            j.scores.EC, ICS: j.scores.ICS, S3: j.scores.S3, MNC: j.scores.MNC,
			SimTimeMS:    float64(j.simTime) / float64(time.Millisecond),
			AssignTimeMS: float64(j.asgTime) / float64(time.Millisecond),
		}
	}
	return v
}

// eventLog is the per-job progress buffer: an obsv.Sink retaining every
// event of the job's child tracer, with broadcast wakeup for streaming
// readers. Appends come serialized through the tracer; reads may be
// concurrent.
type eventLog struct {
	mu      sync.Mutex
	events  []obsv.Event
	changed chan struct{} // closed-and-replaced on every append
}

func newEventLog() *eventLog {
	return &eventLog{changed: make(chan struct{})}
}

// Event implements obsv.Sink.
func (l *eventLog) Event(e obsv.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	ch := l.changed
	l.changed = make(chan struct{})
	l.mu.Unlock()
	close(ch)
}

func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// since returns the events from index i on, plus a channel closed on the
// next append — the primitive the streaming endpoint tails the log with.
func (l *eventLog) since(i int) ([]obsv.Event, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []obsv.Event
	if i < len(l.events) {
		out = append(out, l.events[i:]...)
	}
	return out, l.changed
}
