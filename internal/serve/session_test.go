package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

// embAligner is an embedding-exposing fake ("emb"): each node embeds as
// (1+degree, 0.3·id), the same one-hop feature the incremental package's own
// tests use, so sessions built on it re-align cheaply and deterministically.
type embAligner struct{}

func (embAligner) Name() string                     { return "emb" }
func (embAligner) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }

func embEmbed(g *graph.Graph) *matrix.Dense {
	m := matrix.NewDense(g.N(), 2)
	for u := 0; u < g.N(); u++ {
		m.Row(u)[0] = float64(1 + len(g.Neighbors(u)))
		m.Row(u)[1] = 0.3 * float64(u)
	}
	return m
}

func (embAligner) EmbeddingsCtx(_ context.Context, src, dst *graph.Graph) (*assign.Embedding, error) {
	return &assign.Embedding{
		Src:          embEmbed(src),
		Dst:          embEmbed(dst),
		SimFromDist2: func(d2 float64) float64 { return -d2 },
	}, nil
}

func (a embAligner) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	e, _ := a.EmbeddingsCtx(context.Background(), src, dst)
	return e.Similarity(), nil
}

// sessionFactory serves "emb" plus everything the job test factory knows.
func sessionFactory() func(name string) (algo.Aligner, error) {
	base := testFactory(nil)
	return func(name string) (algo.Aligner, error) {
		if name == "emb" {
			return embAligner{}, nil
		}
		return base(name)
	}
}

func decodeSessionView(t *testing.T, body []byte) SessionView {
	t.Helper()
	var v SessionView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	return v
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPJobResultPagination pins the offset/limit contract of
// GET /v1/jobs/{id} on the wire, including the out-of-range bounds.
func TestHTTPJobResultPagination(t *testing.T) {
	_, ts := newAPI(t, Options{Workers: 1}, HTTPOptions{}, nil)
	resp := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Algo: "ok", Src: edgeListText(6), Dst: edgeListText(6)})
	v := decodeView(t, readAll(t, resp))
	v = pollDone(t, ts, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	if v.Result.MappingTotal != 6 || v.Result.MappingOffset != 0 || len(v.Result.Mapping) != 6 {
		t.Fatalf("unpaginated result wrong: %+v", v.Result)
	}

	get := func(query string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + query)
		if err != nil {
			t.Fatal(err)
		}
		return resp, readAll(t, resp)
	}

	// A middle page.
	resp2, body := get("?offset=2&limit=3")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("page status %d: %s", resp2.StatusCode, body)
	}
	pv := decodeView(t, body)
	if pv.Result.MappingOffset != 2 || pv.Result.MappingTotal != 6 || len(pv.Result.Mapping) != 3 {
		t.Fatalf("page wrong: %+v", pv.Result)
	}
	for i, m := range pv.Result.Mapping {
		if m != 2+i {
			t.Fatalf("page entry %d = %d, want %d", i, m, 2+i)
		}
	}
	// A limit running past the end is truncated, not an error.
	resp2, body = get("?offset=4&limit=100")
	if pv := decodeView(t, body); resp2.StatusCode != http.StatusOK || len(pv.Result.Mapping) != 2 {
		t.Fatalf("tail page: status %d result %+v", resp2.StatusCode, pv.Result)
	}
	// An offset past the end clamps to an empty page that still reports the
	// total, so clients detect the end of iteration.
	resp2, body = get("?offset=100")
	if pv := decodeView(t, body); resp2.StatusCode != http.StatusOK ||
		len(pv.Result.Mapping) != 0 || pv.Result.MappingOffset != 6 || pv.Result.MappingTotal != 6 {
		t.Fatalf("past-end page: status %d result %+v", resp2.StatusCode, pv.Result)
	}
	// Negative or non-numeric parameters are a client error.
	for _, q := range []string{"?offset=-1", "?limit=-2", "?offset=abc", "?limit=1.5"} {
		if resp2, body = get(q); resp2.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", q, resp2.StatusCode, body)
		}
	}
}

// TestHTTPSessionLifecycle drives an incremental session over the wire:
// create, apply edit batches (including a noop probe), page the mapping,
// list, delete, 404 after.
func TestHTTPSessionLifecycle(t *testing.T) {
	_, ts := newAPI(t, Options{Workers: 1, Factory: sessionFactory()}, HTTPOptions{}, nil)
	n := 12
	resp := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Algo: "emb", Src: edgeListText(n), Dst: edgeListText(n)})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	v := decodeSessionView(t, body)
	if loc := resp.Header.Get("Location"); loc != "/v1/sessions/"+v.ID {
		t.Fatalf("Location %q does not match session id %q", loc, v.ID)
	}
	if v.MappingTotal != n || len(v.Mapping) != n || v.Applies != 0 {
		t.Fatalf("created view wrong: %+v", v)
	}
	// Identical graphs with an id-tiebroken embedding cold-align to identity.
	for i, m := range v.Mapping {
		if m != i {
			t.Fatalf("cold mapping[%d] = %d, want identity", i, m)
		}
	}

	// Two batches: a real edit, then an explicit noop probe. Node ids are the
	// dense ids of the uploaded edge list.
	resp = postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/edits", EditsRequest{Edits: "add 0 5\n\nnoop\n"})
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edits status %d: %s", resp.StatusCode, body)
	}
	var er EditsResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Applies != 2 || len(er.Stats) != 2 {
		t.Fatalf("edits response wrong: %+v", er)
	}
	if er.Stats[0].Edits != 1 || er.Stats[0].Noop {
		t.Fatalf("first batch stats wrong: %+v", er.Stats[0])
	}
	if !er.Stats[1].Noop || er.Stats[1].DirtyRows != 0 {
		t.Fatalf("noop batch stats wrong: %+v", er.Stats[1])
	}

	// Mapping pagination mirrors the jobs contract.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + v.ID + "?offset=3&limit=4")
	if err != nil {
		t.Fatal(err)
	}
	pv := decodeSessionView(t, readAll(t, resp))
	if pv.MappingOffset != 3 || pv.MappingTotal != n || len(pv.Mapping) != 4 || pv.Applies != 2 {
		t.Fatalf("session page wrong: %+v", pv)
	}
	if resp, err = http.Get(ts.URL + "/v1/sessions/" + v.ID + "?offset=-1"); err != nil {
		t.Fatal(err)
	} else if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative offset status %d, want 400", resp.StatusCode)
	}

	// Listing elides the mapping but keeps the totals.
	if resp, err = http.Get(ts.URL + "/v1/sessions"); err != nil {
		t.Fatal(err)
	}
	var list []SessionView
	if err := json.Unmarshal(readAll(t, resp), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != v.ID || list[0].Mapping != nil || list[0].MappingTotal != n {
		t.Fatalf("session list wrong: %+v", list)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+v.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else if readAll(t, resp); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", resp.StatusCode)
	}
	if resp, err = http.Get(ts.URL + "/v1/sessions/" + v.ID); err != nil {
		t.Fatal(err)
	} else if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPSessionEditLabels: edit streams address nodes by the labels the
// uploaded edge list used, falling back to dense ids for unknown tokens;
// a token that is neither is a client error.
func TestHTTPSessionEditLabels(t *testing.T) {
	_, ts := newAPI(t, Options{Workers: 1, Factory: sessionFactory()}, HTTPOptions{}, nil)
	resp := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Algo: "emb", Src: edgeListText(12), Dst: edgeListText(12)})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	v := decodeSessionView(t, body)

	// "v0"/"v5" are the uploaded labels of dense nodes 0 and 5; mixing a
	// label with a dense id in one line must work too.
	resp = postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/edits", EditsRequest{Edits: "add v0 v5\n\ndel v0 5\n"})
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("labeled edits status %d: %s", resp.StatusCode, body)
	}
	var er EditsResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Applies != 2 || er.Stats[0].Edits != 1 || er.Stats[1].Edits != 1 {
		t.Fatalf("labeled edits response wrong: %+v", er)
	}

	// A token that is neither a label nor an integer is a 400, not a 500.
	resp = postJSON(t, ts.URL+"/v1/sessions/"+v.ID+"/edits", EditsRequest{Edits: "add nosuch v5\n"})
	if body = readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown label status %d (%s), want 400", resp.StatusCode, body)
	}
}

// Numeric-looking labels win over dense ids — they name the node the
// uploaded edge list named — and comments/noop/malformed lines pass
// through for ReadEditStream to judge.
func TestResolveEditLabels(t *testing.T) {
	labels := []string{"5", "b", "0"}
	in := "# note\nadd 5 b\ndel 0 2\n\nnoop\nadd b\n"
	want := "# note\nadd 0 1\ndel 2 2\n\nnoop\nadd b\n"
	if got := resolveEditLabels(in, labels); got != want {
		t.Fatalf("resolveEditLabels:\n got %q\nwant %q", got, want)
	}
	if got := resolveEditLabels(in, nil); got != in {
		t.Fatalf("nil labels must pass through, got %q", got)
	}
}

// TestHTTPSessionTableBounds: the session table is bounded; a full table
// rejects with 429 until a slot frees up, and a dense-only algorithm is a
// client error.
func TestHTTPSessionTableBounds(t *testing.T) {
	s, ts := newAPI(t, Options{Workers: 1, Factory: sessionFactory(), MaxSessions: 1}, HTTPOptions{}, nil)
	mk := func() (*http.Response, []byte) {
		resp := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Algo: "emb", Src: edgeListText(8), Dst: edgeListText(8)})
		return resp, readAll(t, resp)
	}
	resp, body := mk()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create status %d: %s", resp.StatusCode, body)
	}
	first := decodeSessionView(t, body)
	if resp, body = mk(); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second create status %d (%s), want 429", resp.StatusCode, body)
	}
	if got := s.Registry().Counter("serve_sessions_rejected_total").Value(); got != 1 {
		t.Fatalf("serve_sessions_rejected_total = %d, want 1", got)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+first.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		readAll(t, resp)
	}
	if resp, body = mk(); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after delete status %d: %s", resp.StatusCode, body)
	}
	if err := s.DeleteSession(decodeSessionView(t, body).ID); err != nil {
		t.Fatal(err)
	}

	// Dense-only algorithms cannot host sessions.
	resp = postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Algo: "boom", Src: edgeListText(8), Dst: edgeListText(8)})
	if body = readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dense-only create status %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestMetricsPreRegistered: every incr_*, partition_* and serve_* series is
// visible on /metrics from the very first scrape, before any traffic.
func TestMetricsPreRegistered(t *testing.T) {
	_, ts := newAPI(t, Options{Workers: 1}, HTTPOptions{}, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAll(t, resp))
	for _, name := range []string{
		"incr_sessions_total", "incr_applies_total", "incr_noop_total",
		"incr_cold_fallbacks_total", "incr_cache_component_hits_total",
		"incr_dirty_rows", "incr_dirty_cols", "incr_rebid_rounds",
		"incr_augmented_rows",
		"partition_runs_total", "partition_shard_errors_total",
		"partition_rebid_moves_total", "partition_shards",
		"partition_boundary_nodes", "partition_refine_rounds",
		"partition_shard_seconds",
		"serve_sessions_created_total", "serve_sessions_rejected_total",
		"serve_session_edits_total", "serve_sessions_open",
		"serve_queue_depth", "serve_jobs_running",
		"serve_queue_wait_seconds", "serve_job_seconds",
	} {
		if !bytes.Contains([]byte(body), []byte(name)) {
			t.Errorf("metric %s absent from first /metrics scrape", name)
		}
	}
}
