package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphalign/internal/obsv"
)

func edgeListText(n int) string {
	var b strings.Builder
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&b, "v%d v%d\n", i, i+1)
	}
	return b.String()
}

func submitBody(t *testing.T, req SubmitRequest) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

func decodeView(t *testing.T, body []byte) JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	return v
}

func newAPI(t *testing.T, opts Options, hopts HTTPOptions, blocks map[string]chan struct{}) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, opts, blocks)
	ts := httptest.NewServer(s.Handler(hopts))
	t.Cleanup(ts.Close)
	return s, ts
}

// TestHTTPJobLifecycle drives a full session over the wire: submit, poll to
// done, read the result, confirm 404 for unknown ids.
func TestHTTPJobLifecycle(t *testing.T) {
	_, ts := newAPI(t, Options{Workers: 1}, HTTPOptions{}, nil)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		submitBody(t, SubmitRequest{Algo: "ok", Src: edgeListText(6), Dst: edgeListText(6)}))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	loc := resp.Header.Get("Location")
	v := decodeView(t, body)
	if loc != "/v1/jobs/"+v.ID {
		t.Fatalf("Location %q does not match job id %q", loc, v.ID)
	}

	v = pollDone(t, ts, v.ID)
	if v.Status != StatusDone {
		t.Fatalf("job ended %s (%s)", v.Status, v.Error)
	}
	if v.Result == nil || len(v.Result.Mapping) != 6 {
		t.Fatalf("missing/short result: %+v", v.Result)
	}
	for i, m := range v.Result.Mapping {
		if m != i {
			t.Fatalf("identity fake must map %d to itself, got %d", i, m)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status %d, want 404", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func pollDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		v := decodeView(t, readAll(t, resp))
		if v.Status.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// TestHTTPQueueFull429 pins the admission contract on the wire: when the
// queue is full the API answers 429 with a positive integer Retry-After.
func TestHTTPQueueFull429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	blocks := map[string]chan struct{}{"slow": release}
	s, ts := newAPI(t, Options{Workers: 1, QueueSize: 1}, HTTPOptions{}, blocks)

	submit := func(algo string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			submitBody(t, SubmitRequest{Algo: algo, Src: edgeListText(4), Dst: edgeListText(4)}))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := submit("slow")
	v := decodeView(t, readAll(t, first))
	j, err := s.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusRunning)
	if resp := submit("slow"); readAll(t, resp) == nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status %d, want 202 (queued)", resp.StatusCode)
	}
	resp := submit("slow")
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity status %d (%s), want 429", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want positive integer seconds", resp.Header.Get("Retry-After"))
	}
}

// TestHTTPCancel covers DELETE mid-run over the wire.
func TestHTTPCancel(t *testing.T) {
	blocks := map[string]chan struct{}{"slow": make(chan struct{})}
	s, ts := newAPI(t, Options{Workers: 1}, HTTPOptions{}, blocks)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		submitBody(t, SubmitRequest{Algo: "slow", Src: edgeListText(4), Dst: edgeListText(4)}))
	if err != nil {
		t.Fatal(err)
	}
	v := decodeView(t, readAll(t, resp))
	j, _ := s.Job(v.ID)
	waitStatus(t, j, StatusRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, dresp); dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d, want 202", dresp.StatusCode)
	}
	final := pollDone(t, ts, v.ID)
	if final.Status != StatusCancelled || final.ErrorKind != ErrKindCancelled {
		t.Fatalf("cancelled job view: status %s kind %q", final.Status, final.ErrorKind)
	}
}

// TestHTTPSubmitValidation: malformed bodies, unknown algorithms/methods,
// oversized uploads and node caps all answer 4xx without admitting a job.
func TestHTTPSubmitValidation(t *testing.T) {
	s, ts := newAPI(t, Options{Workers: 1}, HTTPOptions{MaxBodyBytes: 4 << 10, MaxNodes: 8}, nil)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"unknown algo", mustJSON(t, SubmitRequest{Algo: "nope", Src: edgeListText(4), Dst: edgeListText(4)}), http.StatusBadRequest},
		{"unknown method", mustJSON(t, SubmitRequest{Algo: "ok", Method: "XX", Src: edgeListText(4), Dst: edgeListText(4)}), http.StatusBadRequest},
		{"empty src", mustJSON(t, SubmitRequest{Algo: "ok", Src: "", Dst: edgeListText(4)}), http.StatusBadRequest},
		{"src larger than dst", mustJSON(t, SubmitRequest{Algo: "ok", Src: edgeListText(6), Dst: edgeListText(4)}), http.StatusBadRequest},
		{"negative topk", mustJSON(t, SubmitRequest{Algo: "ok", TopK: -1, Src: edgeListText(4), Dst: edgeListText(4)}), http.StatusBadRequest},
		{"node cap", mustJSON(t, SubmitRequest{Algo: "ok", Src: edgeListText(9), Dst: edgeListText(9)}), http.StatusBadRequest},
		{"oversized body", mustJSON(t, SubmitRequest{Algo: "ok", Src: edgeListText(300), Dst: edgeListText(300)}), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
	}
	if n := len(s.Jobs()); n != 0 {
		t.Fatalf("rejected submissions leaked %d jobs into the table", n)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestHTTPEventsStream tails /events while a job runs: the stream is valid
// JSONL, events carry the job id as trace, and it terminates exactly at the
// closing job_status event.
func TestHTTPEventsStream(t *testing.T) {
	release := make(chan struct{})
	blocks := map[string]chan struct{}{"slow": release}
	s, ts := newAPI(t, Options{Workers: 1}, HTTPOptions{}, blocks)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		submitBody(t, SubmitRequest{Algo: "slow", Src: edgeListText(4), Dst: edgeListText(4)}))
	if err != nil {
		t.Fatal(err)
	}
	v := decodeView(t, readAll(t, resp))
	j, _ := s.Job(v.ID)
	waitStatus(t, j, StatusRunning)

	eresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	// Release the aligner only after the stream is attached, so the test
	// proves live following (not just snapshot redelivery).
	close(release)

	type evt struct {
		Type  string `json:"type"`
		Name  string `json:"name"`
		Trace string `json:"trace"`
	}
	var events []evt
	sc := bufio.NewScanner(eresp.Body)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			var e evt
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Errorf("bad JSONL line %q: %v", sc.Text(), err)
				return
			}
			events = append(events, e)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("event stream never terminated")
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	last := events[len(events)-1]
	if last.Type != "job_status" || last.Name != string(StatusDone) {
		t.Fatalf("stream must end at the closing job_status, ended at %+v", last)
	}
	for _, e := range events {
		if e.Trace != v.ID {
			t.Fatalf("event %+v not stamped with job trace %q", e, v.ID)
		}
	}

	// Snapshot mode returns immediately even though nothing new will arrive.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	snap := readAll(t, sresp)
	if len(bytes.TrimSpace(snap)) == 0 {
		t.Fatal("snapshot mode returned no events")
	}
}

// TestHTTPHealthAndMetrics: /healthz flips to 503 on shutdown and /metrics
// serves the serve_* series in Prometheus text format.
func TestHTTPHealthAndMetrics(t *testing.T) {
	reg := obsv.NewRegistry()
	s, ts := newAPI(t, Options{Workers: 1, Registry: reg}, HTTPOptions{}, nil)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		submitBody(t, SubmitRequest{Algo: "ok", Src: edgeListText(4), Dst: edgeListText(4)}))
	if err != nil {
		t.Fatal(err)
	}
	v := decodeView(t, readAll(t, resp))
	pollDone(t, ts, v.ID)

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, hresp); hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hresp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText := string(readAll(t, mresp))
	for _, want := range []string{"serve_jobs_submitted_total", "serve_jobs_done_total", "serve_job_seconds"} {
		if !strings.Contains(metricsText, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, metricsText)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	hresp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, hresp); hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown status %d, want 503", hresp.StatusCode)
	}
}
