package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/graph"
	"graphalign/internal/incremental"
)

// ErrSessionsFull rejects session creation when the bounded session table is
// at capacity; the HTTP layer maps it to 429.
var ErrSessionsFull = errors.New("serve: session table full")

// ErrNoSession reports an unknown session id (HTTP 404).
var ErrNoSession = errors.New("serve: no such session")

// SessionSpec configures one incremental alignment session
// (POST /v1/sessions). The knobs mirror incremental.Options; see DESIGN.md
// §16 for their semantics.
type SessionSpec struct {
	// Algo is the canonical algorithm name; it must expose embeddings or
	// factors (algo.EmbeddingAligner / algo.FactorAligner), or creation
	// fails with incremental.ErrNotIncremental.
	Algo string
	// TopK is the candidate list length (0 = 10).
	TopK int
	// Workers bounds intra-session fan-out (0 = server default).
	Workers int
	// DriftThreshold, ColTolerance and DirtyHops tune the warm path; zero
	// values take the incremental package defaults.
	DriftThreshold float64
	ColTolerance   float64
	DirtyHops      int
}

// SessionHandle is one live incremental session owned by the server. Unlike
// jobs, sessions are interactive and synchronous: the cold alignment happens
// at creation, each edits call re-aligns before returning. The embedded
// incremental.Session serializes applies; the handle's own mutex guards the
// bookkeeping around it.
type SessionHandle struct {
	ID   string
	Spec SessionSpec

	sess                 *incremental.Session
	srcLabels, dstLabels []string

	mu        sync.Mutex
	created   time.Time
	lastApply time.Time
	lastStats []incremental.ApplyStats
}

// CreateSession cold-aligns the pair and admits the session into the bounded
// table. The alignment runs synchronously under the server's base context,
// so shutdown cancels it.
func (s *Server) CreateSession(src, dst *graph.Graph, srcLabels, dstLabels []string, spec SessionSpec) (*SessionHandle, error) {
	if s.closed.Load() {
		return nil, ErrShuttingDown
	}
	a, err := s.opts.Factory(spec.Algo)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if src.N() > dst.N() {
		return nil, fmt.Errorf("serve: source graph larger than target (%d > %d)", src.N(), dst.N())
	}
	if spec.TopK <= 0 {
		spec.TopK = 10
	}
	if spec.Workers == 0 {
		spec.Workers = s.opts.JobWorkers
	}

	// Admission before the (expensive) cold alignment: a full table must
	// reject without burning CPU first. The slot is released on failure.
	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		s.reg.Counter("serve_sessions_rejected_total").Add(1)
		return nil, ErrSessionsFull
	}
	id := fmt.Sprintf("s%08d", s.nextSessID.Add(1))
	s.sessions[id] = nil // reserve the slot
	s.mu.Unlock()

	if s.cache != nil {
		algo.ApplyCache(a, s.cache)
	}
	sess, err := incremental.NewSession(s.baseCtx, a, src, dst, incremental.Options{
		TopK:           spec.TopK,
		Workers:        spec.Workers,
		DriftThreshold: spec.DriftThreshold,
		ColTolerance:   spec.ColTolerance,
		DirtyHops:      spec.DirtyHops,
		Tracer:         s.trace.ChildTrace(id),
		Registry:       s.reg,
		Cache:          s.cache,
	})
	if err != nil {
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: %w", err)
	}
	h := &SessionHandle{
		ID: id, Spec: spec,
		sess:      sess,
		srcLabels: srcLabels, dstLabels: dstLabels,
		created: time.Now(),
	}
	s.mu.Lock()
	s.sessions[id] = h
	open := len(s.sessions)
	s.mu.Unlock()
	s.reg.Counter("serve_sessions_created_total").Add(1)
	s.reg.Gauge("serve_sessions_open").Set(float64(open))
	return h, nil
}

// Session looks up a live session by id. A reserved-but-unbuilt slot is not
// visible.
func (s *Server) Session(id string) (*SessionHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.sessions[id]
	if !ok || h == nil {
		return nil, ErrNoSession
	}
	return h, nil
}

// Sessions snapshots the live sessions (no particular order).
func (s *Server) Sessions() []*SessionHandle {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*SessionHandle, 0, len(s.sessions))
	for _, h := range s.sessions {
		if h != nil {
			out = append(out, h)
		}
	}
	return out
}

// DeleteSession drops the session, freeing its slot (the artifacts it cached
// stay in the shared cache for future tenants).
func (s *Server) DeleteSession(id string) error {
	s.mu.Lock()
	h, ok := s.sessions[id]
	if ok && h != nil {
		delete(s.sessions, id)
	}
	open := len(s.sessions)
	s.mu.Unlock()
	if !ok || h == nil {
		return ErrNoSession
	}
	s.reg.Gauge("serve_sessions_open").Set(float64(open))
	return nil
}

// ApplyEdits replays the given batches in order against the session's target
// graph, re-aligning after each. It returns the per-batch statistics; the
// session's mapping afterwards reflects the final batch.
func (s *Server) ApplyEdits(h *SessionHandle, batches [][]graph.Edit) ([]incremental.ApplyStats, error) {
	if s.closed.Load() {
		return nil, ErrShuttingDown
	}
	stats := make([]incremental.ApplyStats, 0, len(batches))
	for i, batch := range batches {
		st, err := h.sess.Apply(s.baseCtx, batch)
		if err != nil {
			return stats, fmt.Errorf("serve: batch %d: %w", i, err)
		}
		stats = append(stats, st)
	}
	h.mu.Lock()
	h.lastApply = time.Now()
	h.lastStats = stats
	h.mu.Unlock()
	s.reg.Counter("serve_session_edits_total").Add(int64(len(batches)))
	return stats, nil
}

// drainSessions empties the session table at shutdown.
func (s *Server) drainSessions() {
	s.mu.Lock()
	s.sessions = make(map[string]*SessionHandle)
	s.mu.Unlock()
	s.reg.Gauge("serve_sessions_open").Set(0)
}

// SessionView is the JSON shape of a session. The mapping is paginated with
// the same offset/limit contract as job results.
type SessionView struct {
	ID            string       `json:"id"`
	Algo          string       `json:"algo"`
	TopK          int          `json:"topk"`
	DirtyHops     int          `json:"dirty_hops,omitempty"`
	ColTolerance  float64      `json:"col_tolerance,omitempty"`
	NSrc          int          `json:"n_src"`
	NDst          int          `json:"n_dst"`
	MDst          int          `json:"m_dst"`
	Applies       int          `json:"applies"`
	CreatedNS     int64        `json:"created_unix_ns"`
	LastApplyNS   int64        `json:"last_apply_unix_ns,omitempty"`
	MappingOffset int          `json:"mapping_offset"`
	MappingTotal  int          `json:"mapping_total"`
	Mapping       []int        `json:"mapping,omitempty"`
	LastStats     []BatchStats `json:"last_stats,omitempty"`
}

// BatchStats is the JSON rendering of one batch's incremental.ApplyStats.
type BatchStats struct {
	Edits     int     `json:"edits"`
	DirtyRows int     `json:"dirty_rows"`
	DirtyCols int     `json:"dirty_cols"`
	Warm      bool    `json:"warm"`
	RebidRows int     `json:"rebid_rows"`
	Rounds    int     `json:"rounds"`
	Noop      bool    `json:"noop"`
	TimeMS    float64 `json:"time_ms"`
}

func batchStats(st incremental.ApplyStats) BatchStats {
	return BatchStats{
		Edits:     st.Edits,
		DirtyRows: st.DirtyRows,
		DirtyCols: st.ChangedCols,
		Warm:      st.Warm,
		RebidRows: st.RebidRows,
		Rounds:    st.Rounds,
		Noop:      st.Noop,
		TimeMS:    float64(st.RefreshTime+st.CandidateTime+st.SolveTime) / float64(time.Millisecond),
	}
}

// View snapshots the session with a page of its mapping (offset/limit as in
// pageMapping; limit 0 = everything from offset).
func (h *SessionHandle) View(offset, limit int) SessionView {
	mapping := h.sess.Mapping()
	page, off := pageMapping(mapping, offset, limit)
	h.mu.Lock()
	defer h.mu.Unlock()
	v := SessionView{
		ID:            h.ID,
		Algo:          h.Spec.Algo,
		TopK:          h.Spec.TopK,
		DirtyHops:     h.Spec.DirtyHops,
		ColTolerance:  h.Spec.ColTolerance,
		NSrc:          h.sess.Source().N(),
		NDst:          h.sess.Target().N(),
		MDst:          h.sess.Target().M(),
		Applies:       h.sess.Applies(),
		CreatedNS:     h.created.UnixNano(),
		MappingOffset: off,
		MappingTotal:  len(mapping),
		Mapping:       page,
	}
	if !h.lastApply.IsZero() {
		v.LastApplyNS = h.lastApply.UnixNano()
	}
	for _, st := range h.lastStats {
		v.LastStats = append(v.LastStats, batchStats(st))
	}
	return v
}

// pageMapping slices one page out of a mapping: offsets are clamped to
// [0, len], limit 0 means "to the end". The returned offset is the clamped
// one actually used.
func pageMapping(mapping []int, offset, limit int) ([]int, int) {
	if offset < 0 {
		offset = 0
	}
	if offset > len(mapping) {
		offset = len(mapping)
	}
	end := len(mapping)
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	return mapping[offset:end], offset
}
