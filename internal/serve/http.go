package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/obsv"
)

// HTTPOptions bound what the API accepts per request.
type HTTPOptions struct {
	// MaxBodyBytes caps the request body (edge lists included); default 32 MiB.
	MaxBodyBytes int64
	// MaxNodes / MaxEdges cap each uploaded graph after parsing; 0 = no cap.
	MaxNodes int
	MaxEdges int
}

func (o HTTPOptions) withDefaults() HTTPOptions {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	return o
}

// SubmitRequest is the JSON body of POST /v1/jobs. The graphs travel as
// whitespace-separated edge-list text, the same format every CLI in this
// repository reads; node labels are interned in order of first appearance,
// exactly like graph.ReadEdgeList, so a client parsing the same text gets
// the same dense ids.
type SubmitRequest struct {
	Algo      string `json:"algo"`
	Method    string `json:"method,omitempty"`
	TopK      int    `json:"topk,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	WorkersMax int   `json:"workers,omitempty"`
	// Partitions >= 2 runs the job through the partition-align-stitch
	// sharding layer; 0 (or 1) is the monolithic path.
	Partitions int `json:"partitions,omitempty"`
	Src       string `json:"src"`
	Dst       string `json:"dst"`
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Kind: kind})
}

// Handler builds the daemon's HTTP API:
//
//	POST   /v1/jobs             submit (202, or 429 + Retry-After when full)
//	GET    /v1/jobs             list tracked jobs
//	GET    /v1/jobs/{id}        job status / result
//	GET    /v1/jobs/{id}/events progress stream (JSONL; ?follow=0 for snapshot)
//	DELETE /v1/jobs/{id}        cooperative cancel
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text exposition of the registry
func (s *Server) Handler(opts HTTPOptions) http.Handler {
	opts = opts.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubmit(w, r, opts)
	})
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.closed.Load() {
			writeError(w, http.StatusServiceUnavailable, "", "shutting down")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", obsv.PromHandler(s.reg))
	return mux
}

// parseGraphLimited parses one uploaded edge list and enforces the per-graph
// caps. The byte budget is already enforced by MaxBytesReader on the body.
func parseGraphLimited(name, text string, opts HTTPOptions) (*graph.Graph, []string, error) {
	g, labels, err := graph.ReadEdgeList(strings.NewReader(text))
	if err != nil {
		return nil, nil, fmt.Errorf("%s graph: %w", name, err)
	}
	if g.N() == 0 {
		return nil, nil, fmt.Errorf("%s graph: empty edge list", name)
	}
	if opts.MaxNodes > 0 && g.N() > opts.MaxNodes {
		return nil, nil, fmt.Errorf("%s graph: %d nodes exceeds limit %d", name, g.N(), opts.MaxNodes)
	}
	if opts.MaxEdges > 0 && g.M() > opts.MaxEdges {
		return nil, nil, fmt.Errorf("%s graph: %d edges exceeds limit %d", name, g.M(), opts.MaxEdges)
	}
	return g, labels, nil
}

func parseMethod(m string) (assign.Method, error) {
	if m == "" {
		return "", nil
	}
	for _, known := range assign.Methods() {
		if m == string(known) {
			return known, nil
		}
	}
	return "", fmt.Errorf("unknown assignment method %q (have %v)", m, assign.Methods())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, opts HTTPOptions) {
	r.Body = http.MaxBytesReader(w, r.Body, opts.MaxBodyBytes)
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "", "body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "", "bad request body: %v", err)
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	if req.TopK < 0 || req.TimeoutMS < 0 || req.Partitions < 0 {
		writeError(w, http.StatusBadRequest, "", "topk, timeout_ms and partitions must be non-negative")
		return
	}
	src, srcLabels, err := parseGraphLimited("src", req.Src, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	dst, dstLabels, err := parseGraphLimited("dst", req.Dst, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}

	job, err := s.Submit(src, dst, srcLabels, dstLabels, Spec{
		Algo:       req.Algo,
		Method:     method,
		TopK:       req.TopK,
		Timeout:    time.Duration(req.TimeoutMS) * time.Millisecond,
		Workers:    req.WorkersMax,
		Partitions: req.Partitions,
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter().Seconds())))
		writeError(w, http.StatusTooManyRequests, "", "job queue full, retry later")
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "", "shutting down")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "no such job")
		return
	}
	writeJSON(w, http.StatusAccepted, j.View())
}

// handleEvents streams the job's progress log as JSONL. By default the
// stream follows the job until it reaches a terminal state (the final
// job_status event is the end-of-stream marker); ?follow=0 returns the
// current snapshot and closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "no such job")
		return
	}
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	idx := 0
	for {
		events, changed := j.log.since(idx)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		idx += len(events)
		if flusher != nil && len(events) > 0 {
			flusher.Flush()
		}
		if !follow {
			return
		}
		// Drain-then-check: once the job is terminal, its finalize event has
		// already been appended, so an empty read after terminal means done.
		select {
		case <-j.Done():
			if events, _ := j.log.since(idx); len(events) == 0 {
				return
			}
			continue
		default:
		}
		select {
		case <-changed:
		case <-j.Done():
		case <-r.Context().Done():
			return
		}
	}
}
