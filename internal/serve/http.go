package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/obsv"
)

// HTTPOptions bound what the API accepts per request.
type HTTPOptions struct {
	// MaxBodyBytes caps the request body (edge lists included); default 32 MiB.
	MaxBodyBytes int64
	// MaxNodes / MaxEdges cap each uploaded graph after parsing; 0 = no cap.
	MaxNodes int
	MaxEdges int
}

func (o HTTPOptions) withDefaults() HTTPOptions {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	return o
}

// SubmitRequest is the JSON body of POST /v1/jobs. The graphs travel as
// whitespace-separated edge-list text, the same format every CLI in this
// repository reads; node labels are interned in order of first appearance,
// exactly like graph.ReadEdgeList, so a client parsing the same text gets
// the same dense ids.
type SubmitRequest struct {
	Algo       string `json:"algo"`
	Method     string `json:"method,omitempty"`
	TopK       int    `json:"topk,omitempty"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
	WorkersMax int    `json:"workers,omitempty"`
	// Partitions >= 2 runs the job through the partition-align-stitch
	// sharding layer; 0 (or 1) is the monolithic path.
	Partitions int    `json:"partitions,omitempty"`
	Src        string `json:"src"`
	Dst        string `json:"dst"`
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Kind: kind})
}

// Handler builds the daemon's HTTP API:
//
//	POST   /v1/jobs              submit (202, or 429 + Retry-After when full)
//	GET    /v1/jobs              list tracked jobs
//	GET    /v1/jobs/{id}         job status / result (?offset=&limit= pages the mapping)
//	GET    /v1/jobs/{id}/events  progress stream (JSONL; ?follow=0 for snapshot)
//	DELETE /v1/jobs/{id}         cooperative cancel
//	POST   /v1/sessions          create an incremental session (cold-aligns synchronously)
//	GET    /v1/sessions          list live sessions
//	GET    /v1/sessions/{id}     session state (?offset=&limit= pages the mapping)
//	POST   /v1/sessions/{id}/edits apply edit batches, re-align, return per-batch stats
//	DELETE /v1/sessions/{id}     drop the session
//	GET    /healthz              liveness
//	GET    /metrics              Prometheus text exposition of the registry
func (s *Server) Handler(opts HTTPOptions) http.Handler {
	opts = opts.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubmit(w, r, opts)
	})
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		s.handleSessionCreate(w, r, opts)
	})
	mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("POST /v1/sessions/{id}/edits", func(w http.ResponseWriter, r *http.Request) {
		s.handleSessionEdits(w, r, opts)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.closed.Load() {
			writeError(w, http.StatusServiceUnavailable, "", "shutting down")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", obsv.PromHandler(s.reg))
	return mux
}

// resolveEditLabels rewrites the node tokens of an edit stream against the
// session's dst-graph labels. Graphs travel as labeled edge-list text, so
// edits address nodes the same way; a token that is not a known label passes
// through untouched and is parsed as a dense id by graph.ReadEditStream,
// which keeps purely numeric streams valid. When a label itself looks
// numeric the label wins — it names the node the uploaded edge list named.
func resolveEditLabels(text string, labels []string) string {
	if len(labels) == 0 {
		return text
	}
	idx := make(map[string]int, len(labels))
	for i, l := range labels {
		idx[l] = i
	}
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 3 && !strings.HasPrefix(fields[0], "#") {
			for k := 1; k <= 2; k++ {
				if id, ok := idx[fields[k]]; ok {
					fields[k] = strconv.Itoa(id)
				}
			}
			lines[i] = strings.Join(fields, " ")
		}
	}
	return strings.Join(lines, "\n")
}

// parseGraphLimited parses one uploaded edge list and enforces the per-graph
// caps. The byte budget is already enforced by MaxBytesReader on the body.
func parseGraphLimited(name, text string, opts HTTPOptions) (*graph.Graph, []string, error) {
	g, labels, err := graph.ReadEdgeList(strings.NewReader(text))
	if err != nil {
		return nil, nil, fmt.Errorf("%s graph: %w", name, err)
	}
	if g.N() == 0 {
		return nil, nil, fmt.Errorf("%s graph: empty edge list", name)
	}
	if opts.MaxNodes > 0 && g.N() > opts.MaxNodes {
		return nil, nil, fmt.Errorf("%s graph: %d nodes exceeds limit %d", name, g.N(), opts.MaxNodes)
	}
	if opts.MaxEdges > 0 && g.M() > opts.MaxEdges {
		return nil, nil, fmt.Errorf("%s graph: %d edges exceeds limit %d", name, g.M(), opts.MaxEdges)
	}
	return g, labels, nil
}

func parseMethod(m string) (assign.Method, error) {
	if m == "" {
		return "", nil
	}
	for _, known := range assign.Methods() {
		if m == string(known) {
			return known, nil
		}
	}
	return "", fmt.Errorf("unknown assignment method %q (have %v)", m, assign.Methods())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, opts HTTPOptions) {
	r.Body = http.MaxBytesReader(w, r.Body, opts.MaxBodyBytes)
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "", "body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "", "bad request body: %v", err)
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	if req.TopK < 0 || req.TimeoutMS < 0 || req.Partitions < 0 {
		writeError(w, http.StatusBadRequest, "", "topk, timeout_ms and partitions must be non-negative")
		return
	}
	src, srcLabels, err := parseGraphLimited("src", req.Src, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	dst, dstLabels, err := parseGraphLimited("dst", req.Dst, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}

	job, err := s.Submit(src, dst, srcLabels, dstLabels, Spec{
		Algo:       req.Algo,
		Method:     method,
		TopK:       req.TopK,
		Timeout:    time.Duration(req.TimeoutMS) * time.Millisecond,
		Workers:    req.WorkersMax,
		Partitions: req.Partitions,
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter().Seconds())))
		writeError(w, http.StatusTooManyRequests, "", "job queue full, retry later")
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "", "shutting down")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, views)
}

// parsePage reads the offset/limit pagination query parameters. Absent
// parameters are 0 (full result); negative or non-numeric values are an
// error the handlers map to 400.
func parsePage(r *http.Request) (offset, limit int, err error) {
	q := r.URL.Query()
	for _, p := range []struct {
		name string
		dst  *int
	}{{"offset", &offset}, {"limit", &limit}} {
		raw := q.Get(p.name)
		if raw == "" {
			continue
		}
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			return 0, 0, fmt.Errorf("%s must be a non-negative integer, got %q", p.name, raw)
		}
		*p.dst = v
	}
	return offset, limit, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "no such job")
		return
	}
	offset, limit, err := parsePage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, j.ViewPage(offset, limit))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "no such job")
		return
	}
	writeJSON(w, http.StatusAccepted, j.View())
}

// SessionRequest is the JSON body of POST /v1/sessions. Graphs travel as
// edge-list text like job submissions; the tuning knobs mirror
// incremental.Options (zero values take the package defaults).
type SessionRequest struct {
	Algo         string  `json:"algo"`
	TopK         int     `json:"topk,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	Drift        float64 `json:"drift,omitempty"`
	ColTolerance float64 `json:"col_tolerance,omitempty"`
	DirtyHops    int     `json:"dirty_hops,omitempty"`
	Src          string  `json:"src"`
	Dst          string  `json:"dst"`
}

// EditsRequest is the JSON body of POST /v1/sessions/{id}/edits: an edit
// stream in the repository's text format — "add u v" / "del u v" lines,
// batches separated by blank lines, "noop" for an explicit empty batch.
// Nodes are addressed by the labels the session's dst edge list used
// (tokens that are not labels fall back to dense ids).
type EditsRequest struct {
	Edits string `json:"edits"`
}

// EditsResponse returns the per-batch re-alignment statistics.
type EditsResponse struct {
	Applies int          `json:"applies"`
	Stats   []BatchStats `json:"stats"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request, opts HTTPOptions) {
	r.Body = http.MaxBytesReader(w, r.Body, opts.MaxBodyBytes)
	var req SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "", "body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "", "bad request body: %v", err)
		return
	}
	if req.TopK < 0 || req.DirtyHops < 0 {
		writeError(w, http.StatusBadRequest, "", "topk and dirty_hops must be non-negative")
		return
	}
	src, srcLabels, err := parseGraphLimited("src", req.Src, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	dst, dstLabels, err := parseGraphLimited("dst", req.Dst, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	h, err := s.CreateSession(src, dst, srcLabels, dstLabels, SessionSpec{
		Algo:           req.Algo,
		TopK:           req.TopK,
		Workers:        req.Workers,
		DriftThreshold: req.Drift,
		ColTolerance:   req.ColTolerance,
		DirtyHops:      req.DirtyHops,
	})
	switch {
	case errors.Is(err, ErrSessionsFull):
		writeError(w, http.StatusTooManyRequests, "", "session table full (max %d), delete one first", s.opts.MaxSessions)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "", "shutting down")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/sessions/"+h.ID)
	writeJSON(w, http.StatusCreated, h.View(0, 0))
}

func (s *Server) handleSessionList(w http.ResponseWriter, _ *http.Request) {
	sessions := s.Sessions()
	views := make([]SessionView, len(sessions))
	for i, h := range sessions {
		// Listings elide the mapping (limit 1 page of zero would still set
		// totals); clients fetch pages from the per-session endpoint.
		v := h.View(0, 1)
		v.Mapping = nil
		views[i] = v
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	h, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "no such session")
		return
	}
	offset, limit, err := parsePage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, h.View(offset, limit))
}

func (s *Server) handleSessionEdits(w http.ResponseWriter, r *http.Request, opts HTTPOptions) {
	h, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "no such session")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, opts.MaxBodyBytes)
	var req EditsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "", "body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "", "bad request body: %v", err)
		return
	}
	batches, err := graph.ReadEditStream(strings.NewReader(resolveEditLabels(req.Edits, h.dstLabels)))
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "edits: %v", err)
		return
	}
	stats, err := s.ApplyEdits(h, batches)
	if err != nil {
		if errors.Is(err, ErrShuttingDown) {
			writeError(w, http.StatusServiceUnavailable, "", "shutting down")
			return
		}
		writeError(w, http.StatusBadRequest, "", "%v", err)
		return
	}
	resp := EditsResponse{Applies: len(stats)}
	for _, st := range stats {
		resp.Stats = append(resp.Stats, batchStats(st))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.DeleteSession(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, "", "no such session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleEvents streams the job's progress log as JSONL. By default the
// stream follows the job until it reaches a terminal state (the final
// job_status event is the end-of-stream marker); ?follow=0 returns the
// current snapshot and closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "", "no such job")
		return
	}
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	idx := 0
	for {
		events, changed := j.log.since(idx)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		idx += len(events)
		if flusher != nil && len(events) > 0 {
			flusher.Flush()
		}
		if !follow {
			return
		}
		// Drain-then-check: once the job is terminal, its finalize event has
		// already been appended, so an empty read after terminal means done.
		select {
		case <-j.Done():
			if events, _ := j.log.since(idx); len(events) == 0 {
				return
			}
			continue
		default:
		}
		select {
		case <-changed:
		case <-j.Done():
		case <-r.Context().Done():
			return
		}
	}
}
