package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/algo/nsd"
	"graphalign/internal/assign"
	"graphalign/internal/core"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
	"graphalign/internal/obsv"
)

// fakeAligner is a controllable test algorithm: identity similarity (node i
// of src matches node i of dst), with optional blocking (until ctx) and
// optional panicking, so tests can hold jobs in flight deterministically.
type fakeAligner struct {
	name     string
	block    chan struct{} // when non-nil, SimilarityCtx waits for close or ctx
	panicMsg string
}

func (f *fakeAligner) Name() string                     { return f.name }
func (f *fakeAligner) DefaultAssignment() assign.Method { return assign.NearestNeighbor }
func (f *fakeAligner) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return f.SimilarityCtx(context.Background(), src, dst)
}

func (f *fakeAligner) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	if f.panicMsg != "" {
		panic(f.panicMsg)
	}
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	sim := matrix.NewDense(src.N(), dst.N())
	for i := 0; i < src.N() && i < dst.N(); i++ {
		sim.Set(i, i, 1)
	}
	return sim, nil
}

// testFactory serves "ok", "slow-<n>" (blocking until blocks[n] closes) and
// "boom" (panics) aligners.
func testFactory(blocks map[string]chan struct{}) core.Factory {
	return func(name string) (algo.Aligner, error) {
		if name == "ok" {
			return &fakeAligner{name: name}, nil
		}
		if name == "boom" {
			return &fakeAligner{name: name, panicMsg: "synthetic aligner panic"}, nil
		}
		if ch, ok := blocks[name]; ok {
			return &fakeAligner{name: name, block: ch}, nil
		}
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1}
	}
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestServer(t *testing.T, opts Options, blocks map[string]chan struct{}) *Server {
	t.Helper()
	if opts.Factory == nil {
		opts.Factory = testFactory(blocks)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never reached a terminal state (status %s)", j.ID, j.Status())
	}
}

// TestLifecycleSubmitRunningDone walks the happy path and checks the result
// matches a direct library call on the same inputs.
func TestLifecycleSubmitRunningDone(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2}, nil)
	src, dst := pathGraph(t, 8), pathGraph(t, 8)
	j, err := s.Submit(src, dst, nil, nil, Spec{Algo: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if st := j.Status(); st != StatusDone {
		t.Fatalf("status = %s, err = %v", st, j.Err())
	}
	want, err := algo.Align(&fakeAligner{name: "ok"}, src, dst, assign.NearestNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	got := j.Mapping()
	if len(got) != len(want) {
		t.Fatalf("mapping length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mapping[%d] = %d, want %d (must be byte-identical to the library call)", i, got[i], want[i])
		}
	}
	v := j.View()
	if v.Result == nil || v.Result.EC == 0 {
		t.Fatalf("view missing result/scores: %+v", v)
	}
	if v.StartedNS == 0 || v.DoneNS == 0 {
		t.Fatalf("view missing timestamps: %+v", v)
	}
}

// TestQueueFullRejects pins admission control at the library level: one
// worker occupied, QueueSize jobs queued, the next submission fails with
// ErrQueueFull — and is NOT tracked (a rejected job must not leak).
func TestQueueFullRejects(t *testing.T) {
	release := make(chan struct{})
	blocks := map[string]chan struct{}{"slow": release}
	s := newTestServer(t, Options{Workers: 1, QueueSize: 2}, blocks)
	g := pathGraph(t, 4)

	first, err := s.Submit(g, g, nil, nil, Spec{Algo: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker holds the first job so the queue fills cleanly.
	waitStatus(t, first, StatusRunning)
	var queued []*Job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(g, g, nil, nil, Spec{Algo: "slow"})
		if err != nil {
			t.Fatalf("submission %d should queue: %v", i, err)
		}
		queued = append(queued, j)
	}
	if _, err := s.Submit(g, g, nil, nil, Spec{Algo: "slow"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit err = %v, want ErrQueueFull", err)
	}
	if got := s.reg.Counter("serve_jobs_rejected_total").Value(); got != 1 {
		t.Fatalf("serve_jobs_rejected_total = %d, want 1", got)
	}
	close(release)
	waitTerminal(t, first)
	for _, j := range queued {
		waitTerminal(t, j)
		if j.Status() != StatusDone {
			t.Fatalf("queued job %s ended %s (%v)", j.ID, j.Status(), j.Err())
		}
	}
}

func waitStatus(t *testing.T, j *Job, want Status) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.Status() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (status %s)", j.ID, want, j.Status())
}

// TestPerJobTimeoutTypedError: a job over its budget fails with the typed
// core.ErrTimeout cause and ErrKindTimeout in its API view.
func TestPerJobTimeoutTypedError(t *testing.T) {
	blocks := map[string]chan struct{}{"slow": make(chan struct{})} // never released
	s := newTestServer(t, Options{Workers: 1}, blocks)
	g := pathGraph(t, 4)
	j, err := s.Submit(g, g, nil, nil, Spec{Algo: "slow", Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.Status() != StatusFailed {
		t.Fatalf("status = %s, want failed", j.Status())
	}
	if !errors.Is(j.Err(), core.ErrTimeout) {
		t.Fatalf("err = %v, want core.ErrTimeout", j.Err())
	}
	if v := j.View(); v.ErrorKind != ErrKindTimeout {
		t.Fatalf("error_kind = %q, want %q", v.ErrorKind, ErrKindTimeout)
	}
	if got := s.reg.Counter("serve_jobs_timeout_total").Value(); got != 1 {
		t.Fatalf("serve_jobs_timeout_total = %d, want 1", got)
	}
}

// TestCancelMidRun: cancelling a running job stops it cooperatively and
// classifies it cancelled, not failed.
func TestCancelMidRun(t *testing.T) {
	blocks := map[string]chan struct{}{"slow": make(chan struct{})}
	s := newTestServer(t, Options{Workers: 1}, blocks)
	g := pathGraph(t, 4)
	j, err := s.Submit(g, g, nil, nil, Spec{Algo: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusRunning)
	if _, err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.Status() != StatusCancelled {
		t.Fatalf("status = %s (%v), want cancelled", j.Status(), j.Err())
	}
	if v := j.View(); v.ErrorKind != ErrKindCancelled {
		t.Fatalf("error_kind = %q, want %q", v.ErrorKind, ErrKindCancelled)
	}
}

// TestCancelWhileQueued: a job cancelled before any worker claims it must
// terminate as cancelled without ever running.
func TestCancelWhileQueued(t *testing.T) {
	release := make(chan struct{})
	blocks := map[string]chan struct{}{"slow": release}
	s := newTestServer(t, Options{Workers: 1, QueueSize: 4}, blocks)
	g := pathGraph(t, 4)
	first, _ := s.Submit(g, g, nil, nil, Spec{Algo: "slow"})
	waitStatus(t, first, StatusRunning)
	queued, err := s.Submit(g, g, nil, nil, Spec{Algo: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	waitTerminal(t, queued)
	if queued.Status() != StatusCancelled {
		t.Fatalf("queued-then-cancelled job ended %s", queued.Status())
	}
	if queued.View().StartedNS != 0 {
		t.Fatal("cancelled-while-queued job must never have started")
	}
}

// TestPanicIsolation: a panicking aligner fails only its own job; the worker
// survives and the next job on the same server completes.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1}, nil)
	g := pathGraph(t, 4)
	bad, err := s.Submit(g, g, nil, nil, Spec{Algo: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, bad)
	if bad.Status() != StatusFailed {
		t.Fatalf("panicking job status = %s", bad.Status())
	}
	if !errors.Is(bad.Err(), core.ErrPanic) {
		t.Fatalf("err = %v, want core.ErrPanic", bad.Err())
	}
	if v := bad.View(); v.ErrorKind != ErrKindPanic {
		t.Fatalf("error_kind = %q, want %q", v.ErrorKind, ErrKindPanic)
	}
	good, err := s.Submit(g, g, nil, nil, Spec{Algo: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, good)
	if good.Status() != StatusDone {
		t.Fatalf("job after panic ended %s (%v) — worker did not survive", good.Status(), good.Err())
	}
	if got := s.reg.Counter("serve_jobs_panic_total").Value(); got != 1 {
		t.Fatalf("serve_jobs_panic_total = %d, want 1", got)
	}
}

// TestShutdownDrainsAndRestartsClean is the kill-and-restart test: shutdown
// finalizes every accepted job (running ones cancelled cooperatively, queued
// ones never run), and a fresh server starts with no memory of them — jobs
// are not silently resurrected half-done.
func TestShutdownDrainsAndRestartsClean(t *testing.T) {
	blocks := map[string]chan struct{}{"slow": make(chan struct{})}
	s, err := New(Options{Factory: testFactory(blocks), Workers: 1, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := pathGraph(t, 4)
	running, _ := s.Submit(g, g, nil, nil, Spec{Algo: "slow"})
	waitStatus(t, running, StatusRunning)
	var accepted []*Job
	accepted = append(accepted, running)
	for i := 0; i < 3; i++ {
		j, err := s.Submit(g, g, nil, nil, Spec{Algo: "ok"})
		if err != nil {
			t.Fatal(err)
		}
		accepted = append(accepted, j)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Zero dropped-but-accepted jobs: every accepted job is terminal.
	for _, j := range accepted {
		select {
		case <-j.Done():
		default:
			t.Fatalf("accepted job %s left non-terminal (%s) after shutdown", j.ID, j.Status())
		}
	}
	if _, err := s.Submit(g, g, nil, nil, Spec{Algo: "ok"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown err = %v, want ErrShuttingDown", err)
	}

	// "Restart": a fresh server (new process state) must start clean.
	s2 := newTestServer(t, Options{Workers: 1}, nil)
	for _, j := range accepted {
		if _, err := s2.Job(j.ID); !errors.Is(err, ErrNotFound) {
			t.Fatalf("restarted daemon resurrected job %s", j.ID)
		}
	}
	if got := len(s2.Jobs()); got != 0 {
		t.Fatalf("restarted daemon tracks %d jobs, want 0", got)
	}
	fresh, err := s2.Submit(g, g, nil, nil, Spec{Algo: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, fresh)
	if fresh.Status() != StatusDone {
		t.Fatalf("fresh job on restarted daemon ended %s", fresh.Status())
	}
}

// TestSharedCacheAcrossJobs: with a cache budget, two jobs on the same graph
// pair share artifacts — and results stay identical to the uncached run.
func TestSharedCacheAcrossJobs(t *testing.T) {
	reg := obsv.NewRegistry()
	s := newTestServer(t, Options{Workers: 1, CacheBudgetBytes: 1 << 20, Registry: reg, Factory: realFactoryForCache(t)}, nil)
	g := pathGraph(t, 16)
	var mappings [][]int
	for i := 0; i < 2; i++ {
		j, err := s.Submit(g, g, nil, nil, Spec{Algo: "NSD"})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		if j.Status() != StatusDone {
			t.Fatalf("run %d ended %s (%v)", i, j.Status(), j.Err())
		}
		mappings = append(mappings, j.Mapping())
	}
	for i := range mappings[0] {
		if mappings[0][i] != mappings[1][i] {
			t.Fatalf("cached rerun diverged at node %d", i)
		}
	}
	if hits := reg.Counter("cache_hits_total").Value(); hits == 0 {
		t.Fatal("second identical job produced no cache hits — tenants are not sharing artifacts")
	}
}

// realFactoryForCache returns a factory for the one real aligner the cache
// test uses; pulled from a helper so the fake-based tests stay dependency-free.
func realFactoryForCache(t *testing.T) core.Factory {
	t.Helper()
	return func(name string) (algo.Aligner, error) {
		if name != "NSD" {
			return nil, fmt.Errorf("unknown algorithm %q", name)
		}
		return nsd.New(), nil
	}
}
