package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// These are the daemon-level partition integration tests: a partitioned job
// driven end to end over real TCP sockets (httptest.NewServer binds a
// loopback listener), exercising the full stack — HTTP submit, queue, worker,
// core runner, partition-align-stitch fan-out, per-shard child traces into
// the job's progress stream, and Prometheus exposition of the partition_*
// series.

type wireEvent struct {
	Type   string         `json:"type"`
	Name   string         `json:"name"`
	Trace  string         `json:"trace"`
	Fields map[string]any `json:"fields"`
}

// TestHTTPPartitionedJobStreamsShards submits a partitioned job against a
// real aligner and tails /events while it runs: the stream must carry one
// shard_start / shard_done pair per shard, each stamped with the job-scoped
// shard trace id, and the job must finish with a full-length mapping. The
// partition_* metrics must then be visible on /metrics.
func TestHTTPPartitionedJobStreamsShards(t *testing.T) {
	const parts = 4
	_, ts := newAPI(t, Options{Workers: 1, Factory: realFactoryForCache(t)}, HTTPOptions{}, nil)

	n := 32
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		submitBody(t, SubmitRequest{Algo: "NSD", Partitions: parts, Src: edgeListText(n), Dst: edgeListText(n)}))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	v := decodeView(t, body)
	if v.Parts != parts {
		t.Fatalf("submitted view reports partitions=%d, want %d", v.Parts, parts)
	}

	// Attach the follow stream before the job finishes is not guaranteed at
	// Workers=1 — the stream replays the full log either way, so the
	// assertions below hold regardless of timing.
	eresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var events []wireEvent
	sc := bufio.NewScanner(eresp.Body)
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		for sc.Scan() {
			var e wireEvent
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Errorf("bad JSONL line %q: %v", sc.Text(), err)
				return
			}
			events = append(events, e)
		}
	}()
	select {
	case <-streamDone:
	case <-time.After(10 * time.Second):
		t.Fatal("event stream never terminated")
	}

	final := pollDone(t, ts, v.ID)
	if final.Status != StatusDone {
		t.Fatalf("partitioned job ended %s (%s)", final.Status, final.Error)
	}
	if final.Result == nil || len(final.Result.Mapping) != n {
		t.Fatalf("partitioned job result missing or short: %+v", final.Result)
	}

	starts, dones := 0, 0
	for _, e := range events {
		switch e.Type {
		case "shard_start", "shard_done":
			wantPrefix := v.ID + "/shard-"
			if !strings.HasPrefix(e.Trace, wantPrefix) {
				t.Errorf("shard event trace %q lacks job-scoped prefix %q", e.Trace, wantPrefix)
			}
			if e.Type == "shard_start" {
				starts++
			} else {
				dones++
			}
		}
	}
	if starts != parts || dones != parts {
		t.Fatalf("streamed %d shard_start / %d shard_done events, want %d each", starts, dones, parts)
	}
	last := events[len(events)-1]
	if last.Type != "job_status" || last.Name != string(StatusDone) {
		t.Fatalf("stream must end at the closing job_status, ended at %+v", last)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText := string(readAll(t, mresp))
	for _, want := range []string{"graphalign_partition_runs_total 1", "graphalign_partition_shard_seconds", "graphalign_partition_shards"} {
		if !strings.Contains(metricsText, want) {
			t.Fatalf("/metrics missing %s after a partitioned job:\n%s", want, metricsText)
		}
	}
}

// TestHTTPPartitionedCancelNoLeaks cancels a partitioned job mid-shard: the
// inner aligners are blocked, so every shard is in flight when DELETE
// arrives. The job must terminate as cancelled — cooperatively, meaning the
// panic and timeout counters on /metrics stay at zero — and after shutdown
// the process must return to its pre-server goroutine count: no shard
// goroutine, worker, or event stream may leak.
func TestHTTPPartitionedCancelNoLeaks(t *testing.T) {
	http.DefaultClient.CloseIdleConnections()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	blocks := map[string]chan struct{}{"slow": make(chan struct{})} // never released
	s, err := New(Options{Factory: testFactory(blocks), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(HTTPOptions{}))

	// WorkersMax 2 pins the shard fan-out width: on a single-CPU machine the
	// default (one worker per CPU) would run the shards sequentially, and the
	// first blocked shard would keep the second from ever starting.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		submitBody(t, SubmitRequest{Algo: "slow", Partitions: 2, WorkersMax: 2, Src: edgeListText(16), Dst: edgeListText(16)}))
	if err != nil {
		t.Fatal(err)
	}
	v := decodeView(t, readAll(t, resp))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// Wait until both shards are provably in flight: their shard_start
	// events have reached the job's progress log.
	waitShardStarts(t, ts, v.ID, 2)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, dresp); dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d, want 202", dresp.StatusCode)
	}
	final := pollDone(t, ts, v.ID)
	if final.Status != StatusCancelled || final.ErrorKind != ErrKindCancelled {
		t.Fatalf("mid-shard cancel: status %s kind %q (%s)", final.Status, final.ErrorKind, final.Error)
	}

	// Cooperative means the run was not torn down by a panic or reclassified
	// as a timeout — the dedicated counters on /metrics prove it.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText := string(readAll(t, mresp))
	for _, want := range []string{
		"graphalign_serve_jobs_cancelled_total 1",
		"graphalign_serve_jobs_panic_total 0",
		"graphalign_serve_jobs_timeout_total 0",
	} {
		if !strings.Contains(metricsText, want) {
			t.Fatalf("/metrics after mid-shard cancel missing %q:\n%s", want, metricsText)
		}
	}

	ts.Close()
	ctx, cancel := testShutdownCtx(t)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()

	// Goroutine-leak check: the count must settle back to the pre-server
	// baseline (small slack for runtime bookkeeping goroutines).
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines %d > baseline %d after cancel+shutdown — leaked shard or stream goroutine:\n%s",
				now, baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitShardStarts polls the snapshot events endpoint until want shard_start
// events are visible, proving the shards are in flight on the server.
func waitShardStarts(t *testing.T, ts *httptest.Server, id string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events?follow=0")
		if err != nil {
			t.Fatal(err)
		}
		starts := 0
		sc := bufio.NewScanner(strings.NewReader(string(readAll(t, resp))))
		for sc.Scan() {
			var e wireEvent
			if json.Unmarshal(sc.Bytes(), &e) == nil && e.Type == "shard_start" {
				starts++
			}
		}
		if starts >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reported %d shards in flight", id, want)
}

func testShutdownCtx(t *testing.T) (ctx context.Context, cancel context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 10*time.Second)
}
