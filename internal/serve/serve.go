// Package serve is the alignment-as-a-service engine behind cmd/alignd: a
// bounded FIFO job queue with admission control, a fixed pool of job
// workers, per-job wall-clock budgets and panic isolation (via the core
// runner's fault machinery), a shared multi-tenant artifact cache keyed by
// graph fingerprint, and per-job child tracers feeding both a per-job
// progress log and the process-wide metrics registry.
//
// The design deliberately reuses the batch substrate grown by the earlier
// PRs instead of inventing a parallel one: jobs execute through
// core.RunInstanceMapped (context threading, RunTimeout classification,
// panic recovery, sparse assignment pipeline), artifacts flow through
// internal/cache (single-flight, LRU-bounded), intra-run fan-out uses
// internal/parallel via the aligners, and observability is internal/obsv
// (child tracers, Prometheus/expvar exposition). What is new here is only
// the multi-tenant layer: admission, scheduling, isolation, lifecycle.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graphalign/internal/algo"
	"graphalign/internal/cache"
	"graphalign/internal/core"
	"graphalign/internal/graph"
	"graphalign/internal/incremental"
	"graphalign/internal/metrics"
	"graphalign/internal/noise"
	"graphalign/internal/obsv"
)

// ErrQueueFull rejects a submission when the job queue is at capacity; the
// HTTP layer maps it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrShuttingDown rejects submissions during shutdown (HTTP 503).
var ErrShuttingDown = errors.New("serve: shutting down")

// ErrNotFound reports an unknown job id (HTTP 404).
var ErrNotFound = errors.New("serve: no such job")

// Options configure a Server. The zero value of every field has a sane
// default, so Options{Factory: ...} is a working configuration.
type Options struct {
	// Factory instantiates algorithms by canonical name; required. The
	// graphalign root package provides one wired to the Table 1 registry.
	Factory core.Factory
	// Workers is the number of jobs run concurrently (default 1; alignment
	// is CPU-bound, so more workers than cores buys only queue fairness).
	Workers int
	// QueueSize bounds the number of queued-but-not-running jobs; full
	// queues reject with ErrQueueFull (default 64).
	QueueSize int
	// DefaultTimeout is the per-job budget applied when a submission does
	// not set its own (default 2m). MaxTimeout caps client-requested
	// budgets (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// JobWorkers bounds each job's intra-run parallel fan-out (0 = one per
	// CPU). With several concurrent jobs on one machine, 1 avoids
	// oversubscription.
	JobWorkers int
	// CacheBudgetBytes bounds the shared multi-tenant artifact cache
	// (0 = no cache). Tenants submitting the same graph share spectra,
	// embeddings and degree vectors across jobs.
	CacheBudgetBytes int64
	// Tracer is the root tracer; each job runs under a child tracer carrying
	// the job id as its trace id. When nil a private root is created so
	// per-job progress logs always work.
	Tracer *obsv.Tracer
	// Registry receives the serve_* metrics and the core runner's run_*
	// counters; when nil a private registry is created.
	Registry *obsv.Registry
	// KeepJobs bounds how many terminal jobs are retained for GET before the
	// oldest are dropped (default 1024).
	KeepJobs int
	// MaxSessions bounds the live incremental sessions (default 16). Unlike
	// jobs, sessions hold embeddings, candidate lists and auction state in
	// memory for their whole lifetime, so the table is kept small; full
	// tables reject with ErrSessionsFull.
	MaxSessions int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 2 * time.Minute
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.KeepJobs <= 0 {
		o.KeepJobs = 1024
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16
	}
	if o.Registry == nil {
		o.Registry = obsv.NewRegistry()
	}
	if o.Tracer == nil {
		o.Tracer = obsv.New()
	}
	return o
}

// Server owns the queue, the worker pool, the job table and the shared
// artifact cache. Construct with New, stop with Shutdown.
type Server struct {
	opts  Options
	reg   *obsv.Registry
	trace *obsv.Tracer
	cache *cache.Cache

	queue chan *Job

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	closed atomic.Bool
	nextID atomic.Uint64

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for listing and bounded retention

	// sessions is the bounded incremental-session table; a nil value marks a
	// slot reserved while its cold alignment is still running.
	sessions   map[string]*SessionHandle
	nextSessID atomic.Uint64

	// ewmaJobNS tracks a decaying mean of job wall time (nanoseconds) for
	// the Retry-After estimate.
	ewmaJobNS atomic.Int64
}

// New builds and starts a Server: its workers are running and Submit is
// ready. Callers must Shutdown to release them.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Factory == nil {
		return nil, errors.New("serve: Options.Factory is required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		reg:       opts.Registry,
		trace:     opts.Tracer.SetRegistry(opts.Registry),
		queue:     make(chan *Job, opts.QueueSize),
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*Job),
		sessions:  make(map[string]*SessionHandle),
	}
	if opts.CacheBudgetBytes > 0 {
		s.cache = cache.New(opts.CacheBudgetBytes).SetRegistry(opts.Registry)
	}
	// Pre-register every metric series a scrape may want to rate() or alert
	// on, so /metrics exposes them at zero from the first scrape — a counter
	// that appears only on its first increment hides the initial transition,
	// and a dashboard built before any partitioned/incremental traffic would
	// otherwise see the series as absent rather than zero.
	for _, name := range []string{
		"serve_jobs_submitted_total", "serve_jobs_done_total",
		"serve_jobs_failed_total", "serve_jobs_cancelled_total",
		"serve_jobs_rejected_total", "serve_jobs_timeout_total",
		"serve_jobs_panic_total", "serve_cancel_requests_total",
		"serve_sessions_created_total", "serve_sessions_rejected_total",
		"serve_session_edits_total",
		"partition_runs_total", "partition_shard_errors_total",
		"partition_rebid_moves_total",
	} {
		s.reg.Counter(name)
	}
	s.reg.Gauge("serve_queue_depth")
	s.reg.Gauge("serve_jobs_running")
	s.reg.Gauge("serve_sessions_open")
	s.reg.Histogram("serve_queue_wait_seconds", obsv.DurationBuckets())
	s.reg.Histogram("serve_job_seconds", obsv.DurationBuckets())
	for _, name := range []string{
		"partition_shards", "partition_boundary_nodes", "partition_refine_rounds",
	} {
		s.reg.Histogram(name, obsv.SizeBuckets())
	}
	s.reg.Histogram("partition_shard_seconds", obsv.DurationBuckets())
	incremental.PreRegisterMetrics(s.reg)
	s.wg.Add(opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		go s.worker()
	}
	return s, nil
}

// Registry exposes the server's metrics registry (for /metrics exposition).
func (s *Server) Registry() *obsv.Registry { return s.reg }

// Submit validates the spec, admits the job into the bounded queue and
// returns it. ErrQueueFull means the caller should retry later
// (RetryAfter suggests when); ErrShuttingDown is terminal.
func (s *Server) Submit(src, dst *graph.Graph, srcLabels, dstLabels []string, spec Spec) (*Job, error) {
	if s.closed.Load() {
		return nil, ErrShuttingDown
	}
	if _, err := s.opts.Factory(spec.Algo); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if src.N() > dst.N() {
		return nil, fmt.Errorf("serve: source graph larger than target (%d > %d)", src.N(), dst.N())
	}
	if spec.Timeout <= 0 {
		spec.Timeout = s.opts.DefaultTimeout
	}
	if spec.Timeout > s.opts.MaxTimeout {
		spec.Timeout = s.opts.MaxTimeout
	}
	if spec.Workers == 0 {
		spec.Workers = s.opts.JobWorkers
	}

	id := fmt.Sprintf("j%08d", s.nextID.Add(1))
	job := newJob(id, spec, src, dst, srcLabels, dstLabels)

	// Admission: a full queue rejects instead of blocking the submitter —
	// backpressure surfaces to the client as 429, never as an unbounded
	// in-memory backlog.
	select {
	case s.queue <- job:
	default:
		s.reg.Counter("serve_jobs_rejected_total").Add(1)
		return nil, ErrQueueFull
	}

	s.mu.Lock()
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.dropOldTerminalLocked()
	s.mu.Unlock()

	s.reg.Counter("serve_jobs_submitted_total").Add(1)
	s.reg.Gauge("serve_queue_depth").Set(float64(len(s.queue)))
	return job, nil
}

// dropOldTerminalLocked bounds the job table: once more than KeepJobs jobs
// are tracked, the oldest *terminal* jobs are forgotten (live jobs are never
// dropped). Callers hold s.mu.
func (s *Server) dropOldTerminalLocked() {
	excess := len(s.order) - s.opts.KeepJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.Status().Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs snapshots the tracked jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel requests cooperative cancellation of a job: queued jobs are
// finalized as cancelled when a worker reaches them, running jobs get their
// context cancelled and stop at the next iteration boundary.
func (s *Server) Cancel(id string) (*Job, error) {
	j, err := s.Job(id)
	if err != nil {
		return nil, err
	}
	if j.requestCancel() {
		s.reg.Counter("serve_cancel_requests_total").Add(1)
	}
	return j, nil
}

// RetryAfter estimates how long a rejected submitter should wait before
// retrying: queue depth divided by workers, scaled by the decaying mean job
// duration, clamped to [1s, 60s].
func (s *Server) RetryAfter() time.Duration {
	mean := time.Duration(s.ewmaJobNS.Load())
	if mean <= 0 {
		mean = time.Second
	}
	depth := len(s.queue)
	est := mean * time.Duration(depth/s.opts.Workers+1)
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// worker is one scheduler loop: claim, run, repeat until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.reg.Gauge("serve_queue_depth").Set(float64(len(s.queue)))
			s.runJob(j)
		case <-s.baseCtx.Done():
			return
		}
	}
}

// runJob executes one job end to end. Fault isolation is inherited from
// core.RunInstanceMapped: a panic inside the aligner poisons only this job,
// a blown budget classifies as core.ErrTimeout, and a client cancellation
// surfaces as context.Canceled.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.markRunning(cancel) {
		// Cancelled while queued: never ran.
		s.finalize(j, StatusCancelled, context.Canceled, ErrKindCancelled, nil, metrics.Scores{}, 0, 0)
		return
	}

	// Per-job trace identity: a child tracer stamped with the job id whose
	// events land in the job's own progress log AND the shared sinks of the
	// root tracer (see obsv.ChildTrace — this is the fix for the SetTraceID
	// cross-stamping bug).
	tr := s.trace.ChildTrace(j.ID)
	tr.AddSink(j.log)
	tr.Emit("job_status", string(StatusRunning), map[string]any{
		"queue_wait_ms": float64(time.Since(j.created)) / float64(time.Millisecond),
	})
	s.reg.Gauge("serve_jobs_running").Add(1)
	s.reg.Histogram("serve_queue_wait_seconds", obsv.DurationBuckets()).Observe(time.Since(j.created).Seconds())
	defer s.reg.Gauge("serve_jobs_running").Add(-1)

	a, err := s.opts.Factory(j.Spec.Algo)
	if err != nil {
		// Validated at submit; only a racing registry change can land here.
		s.finalize(j, StatusFailed, err, ErrKindError, nil, metrics.Scores{}, 0, 0)
		return
	}
	method := j.Spec.Method
	if method == "" {
		method = a.DefaultAssignment()
	}
	if s.cache != nil {
		// The multi-tenant artifact cache: keyed by graph fingerprint, so
		// two tenants aligning the same graph share its spectra/embeddings.
		algo.ApplyCache(a, s.cache)
	}

	spec := core.RunSpec{
		Tracer:     tr,
		Budget:     j.Spec.Timeout,
		AssignTopK: j.Spec.TopK,
		Workers:    j.Spec.Workers,
		Partitions: j.Spec.Partitions,
	}
	if j.Spec.Partitions >= 2 {
		// Shards run concurrently, so each needs its own aligner instance;
		// the factory inherits the multi-tenant cache (artifacts are keyed
		// per graph, so sharing across shards is safe).
		algoName := j.Spec.Algo
		spec.NewAligner = func() (algo.Aligner, error) {
			sa, err := s.opts.Factory(algoName)
			if err == nil && s.cache != nil {
				algo.ApplyCache(sa, s.cache)
			}
			return sa, err
		}
	}
	start := time.Now()
	res, mapping := core.RunInstanceMapped(ctx, a,
		noise.Pair{Source: j.src, Target: j.dst},
		method, spec)
	wall := time.Since(start)
	s.observeJobTime(wall)
	s.reg.Histogram("serve_job_seconds", obsv.DurationBuckets()).Observe(wall.Seconds())

	switch {
	case res.Err == nil:
		s.finalize(j, StatusDone, nil, "", mapping, res.Scores, res.SimilarityTime, res.AssignTime)
	case errors.Is(res.Err, core.ErrTimeout):
		s.reg.Counter("serve_jobs_timeout_total").Add(1)
		s.finalize(j, StatusFailed, res.Err, ErrKindTimeout, nil, metrics.Scores{}, res.SimilarityTime, res.AssignTime)
	case errors.Is(res.Err, core.ErrPanic):
		s.reg.Counter("serve_jobs_panic_total").Add(1)
		s.finalize(j, StatusFailed, res.Err, ErrKindPanic, nil, metrics.Scores{}, res.SimilarityTime, res.AssignTime)
	case errors.Is(res.Err, context.Canceled):
		s.finalize(j, StatusCancelled, res.Err, ErrKindCancelled, nil, metrics.Scores{}, res.SimilarityTime, res.AssignTime)
	default:
		s.finalize(j, StatusFailed, res.Err, ErrKindError, nil, metrics.Scores{}, res.SimilarityTime, res.AssignTime)
	}
}

// finalize applies the terminal transition, bumps the outcome counters and
// emits the closing job_status event into the job's progress log.
func (s *Server) finalize(j *Job, status Status, err error, kind string, mapping []int, sc metrics.Scores, simT, asgT time.Duration) {
	j.finish(status, err, kind, mapping, sc, simT, asgT)
	switch status {
	case StatusDone:
		s.reg.Counter("serve_jobs_done_total").Add(1)
	case StatusFailed:
		s.reg.Counter("serve_jobs_failed_total").Add(1)
	case StatusCancelled:
		s.reg.Counter("serve_jobs_cancelled_total").Add(1)
	}
	fields := map[string]any{}
	if err != nil {
		fields["err"] = err.Error()
		fields["kind"] = kind
	}
	// The closing event goes through the job's log directly (not the child
	// tracer, which may not exist for never-ran jobs): streaming readers use
	// it as the end-of-stream marker.
	j.log.Event(obsv.Event{T: time.Now().UnixNano(), Type: "job_status", Name: string(status), Trace: j.ID, Fields: fields})
}

// observeJobTime folds one job's wall time into the decaying mean behind
// RetryAfter (alpha 1/4).
func (s *Server) observeJobTime(d time.Duration) {
	for {
		old := s.ewmaJobNS.Load()
		var next int64
		if old == 0 {
			next = d.Nanoseconds()
		} else {
			next = old + (d.Nanoseconds()-old)/4
		}
		if s.ewmaJobNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// Shutdown stops the server: admission closes immediately, running jobs are
// cancelled cooperatively, queued jobs are finalized as cancelled, and the
// workers are joined — bounded by ctx. Jobs are never persisted: a daemon
// restart starts clean, with no half-done jobs resurrected.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	// Cancel the base context: running jobs stop at their next iteration
	// boundary, idle workers return. Sessions run under the same context, so
	// in-flight applies abort too; the table is then dropped wholesale.
	s.cancelAll()
	s.drainSessions()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Drain whatever is still queued so every accepted job reaches a
	// terminal state (no dropped-but-accepted jobs).
	for {
		select {
		case j := <-s.queue:
			s.finalize(j, StatusCancelled, ErrShuttingDown, ErrKindCancelled, nil, metrics.Scores{}, 0, 0)
		default:
			return err
		}
	}
}
