// Package multi implements multiple-network alignment on top of any
// pairwise Aligner, the extension direction the paper attributes to
// IsoRankN (global multiple network alignment) and GWL ("can thereby align
// multiple networks").
//
// The approach is star alignment: one graph is chosen as the reference
// (by default the one with the most nodes, so every other graph can map
// injectively into it), every other graph is aligned pairwise to the
// reference, and the pairwise mappings are joined through the reference
// into cross-network clusters of mutually corresponding nodes.
package multi

import (
	"fmt"
	"sort"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
)

// Node identifies a node of one of the input graphs.
type Node struct {
	Graph int // index into the input slice
	ID    int // node id within that graph
}

// Alignment is the result of a multiple-network alignment.
type Alignment struct {
	// Reference is the index of the star center graph.
	Reference int
	// ToReference[g][u] is the reference node aligned to node u of graph g
	// (identity for the reference graph itself; -1 when unmatched).
	ToReference [][]int
	// Clusters groups nodes of different graphs that align to the same
	// reference node; each cluster contains at most one node per graph and
	// always contains its reference node. Clusters are ordered by
	// reference node id.
	Clusters [][]Node
}

// Options configure AlignAll.
type Options struct {
	// Assign is the assignment method for the pairwise alignments
	// (defaults to the aligner's own).
	Assign assign.Method
	// Reference forces a specific star center (-1 = auto: largest graph).
	Reference int
}

// AlignAll aligns every graph to a common reference with the given pairwise
// aligner and joins the results into clusters. At least two graphs are
// required, and the reference must be at least as large as every other
// graph (guaranteed when auto-selected).
func AlignAll(a algo.Aligner, graphs []*graph.Graph, opts Options) (*Alignment, error) {
	if len(graphs) < 2 {
		return nil, fmt.Errorf("multi: need at least 2 graphs, got %d", len(graphs))
	}
	ref := opts.Reference
	if ref < 0 || ref >= len(graphs) {
		ref = 0
		for i, g := range graphs {
			if g.N() > graphs[ref].N() {
				ref = i
			}
		}
	}
	for i, g := range graphs {
		if g.N() > graphs[ref].N() {
			return nil, fmt.Errorf("multi: graph %d (n=%d) larger than reference %d (n=%d)",
				i, g.N(), ref, graphs[ref].N())
		}
	}
	method := opts.Assign
	if method == "" {
		method = a.DefaultAssignment()
	}

	out := &Alignment{
		Reference:   ref,
		ToReference: make([][]int, len(graphs)),
	}
	for i, g := range graphs {
		if i == ref {
			out.ToReference[i] = graph.IdentityPermutation(g.N())
			continue
		}
		mapping, err := algo.Align(a, g, graphs[ref], method)
		if err != nil {
			return nil, fmt.Errorf("multi: aligning graph %d to reference: %w", i, err)
		}
		out.ToReference[i] = mapping
	}

	// Join through the reference: cluster key = reference node.
	byRef := make(map[int][]Node)
	for gi, mapping := range out.ToReference {
		for u, r := range mapping {
			if r >= 0 {
				byRef[r] = append(byRef[r], Node{Graph: gi, ID: u})
			}
		}
	}
	refIDs := make([]int, 0, len(byRef))
	for r := range byRef {
		refIDs = append(refIDs, r)
	}
	sort.Ints(refIDs)
	for _, r := range refIDs {
		cluster := byRef[r]
		sort.Slice(cluster, func(a, b int) bool { return cluster[a].Graph < cluster[b].Graph })
		out.Clusters = append(out.Clusters, cluster)
	}
	return out, nil
}

// PairwiseMap returns the implied mapping from graph a to graph b
// (composition through the reference); -1 marks nodes with no counterpart.
func (al *Alignment) PairwiseMap(a, b int) ([]int, error) {
	if a < 0 || a >= len(al.ToReference) || b < 0 || b >= len(al.ToReference) {
		return nil, fmt.Errorf("multi: graph index out of range")
	}
	// Invert b's mapping.
	inv := make(map[int]int, len(al.ToReference[b]))
	for u, r := range al.ToReference[b] {
		if r >= 0 {
			inv[r] = u
		}
	}
	out := make([]int, len(al.ToReference[a]))
	for u, r := range al.ToReference[a] {
		out[u] = -1
		if r >= 0 {
			if v, ok := inv[r]; ok {
				out[u] = v
			}
		}
	}
	return out, nil
}
