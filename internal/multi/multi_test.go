package multi

import (
	"math/rand"
	"testing"

	"graphalign/internal/algo/isorank"
	"graphalign/internal/assign"
	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/metrics"
	"graphalign/internal/noise"
)

// variants builds k noisy permuted copies of one base graph, returning the
// graphs (base first) and each copy's true map back to the base.
func variants(t *testing.T, k int, level float64) (graphs []*graph.Graph, trueMaps [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	base := gen.PowerlawCluster(60, 3, 0.3, rng)
	graphs = append(graphs, base)
	trueMaps = append(trueMaps, graph.IdentityPermutation(base.N()))
	for i := 1; i < k; i++ {
		p, err := noise.Apply(base, noise.OneWay, level, noise.Options{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		// p.Target is the permuted copy; inverse permutation maps copy
		// nodes back to base nodes.
		graphs = append(graphs, p.Target)
		trueMaps = append(trueMaps, graph.InversePermutation(p.TrueMap))
	}
	return graphs, trueMaps
}

func TestAlignAllStar(t *testing.T) {
	graphs, trueMaps := variants(t, 3, 0)
	al, err := AlignAll(isorank.New(), graphs, Options{Assign: assign.JonkerVolgenant, Reference: 0})
	if err != nil {
		t.Fatal(err)
	}
	if al.Reference != 0 {
		t.Fatalf("reference = %d", al.Reference)
	}
	// Every non-reference graph should map back to the base correctly.
	for gi := 1; gi < 3; gi++ {
		// ToReference composed with copy->base ground truth: node u of copy
		// gi truly corresponds to base node trueMaps[gi][u].
		acc := metrics.Accuracy(al.ToReference[gi], invCompose(trueMaps[gi]))
		if acc < 0.9 {
			t.Errorf("graph %d -> reference accuracy %.3f", gi, acc)
		}
	}
}

// invCompose adapts a copy->base ground-truth map into the same shape
// Accuracy expects (it already is: mapping[u] = base node).
func invCompose(m []int) []int { return m }

func TestClusters(t *testing.T) {
	graphs, _ := variants(t, 3, 0)
	al, err := AlignAll(isorank.New(), graphs, Options{Assign: assign.JonkerVolgenant, Reference: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	for _, c := range al.Clusters {
		seen := map[int]bool{}
		hasRef := false
		for _, node := range c {
			if seen[node.Graph] {
				t.Fatal("cluster contains two nodes of the same graph")
			}
			seen[node.Graph] = true
			if node.Graph == al.Reference {
				hasRef = true
			}
		}
		if !hasRef {
			t.Fatal("cluster missing its reference node")
		}
	}
}

func TestPairwiseMapConsistency(t *testing.T) {
	graphs, trueMaps := variants(t, 3, 0)
	al, err := AlignAll(isorank.New(), graphs, Options{Assign: assign.JonkerVolgenant, Reference: 0})
	if err != nil {
		t.Fatal(err)
	}
	m12, err := al.PairwiseMap(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// True correspondence copy1 -> copy2: through the base.
	base2copy2 := graph.InversePermutation(trueMaps[2])
	want := make([]int, len(m12))
	for u := range want {
		want[u] = base2copy2[trueMaps[1][u]]
	}
	if acc := metrics.Accuracy(m12, want); acc < 0.9 {
		t.Errorf("pairwise copy1->copy2 accuracy %.3f", acc)
	}
	if _, err := al.PairwiseMap(0, 99); err == nil {
		t.Error("out-of-range graph index accepted")
	}
}

func TestAutoReferencePicksLargest(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	small := gen.ErdosRenyi(20, 0.3, rng)
	big := gen.ErdosRenyi(40, 0.2, rng)
	al, err := AlignAll(isorank.New(), []*graph.Graph{small, big}, Options{Reference: -1})
	if err != nil {
		t.Fatal(err)
	}
	if al.Reference != 1 {
		t.Errorf("auto reference = %d, want 1 (largest)", al.Reference)
	}
}

func TestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.ErdosRenyi(20, 0.3, rng)
	if _, err := AlignAll(isorank.New(), []*graph.Graph{g}, Options{}); err == nil {
		t.Error("single graph accepted")
	}
	big := gen.ErdosRenyi(30, 0.3, rng)
	// Forcing the small graph as reference must fail (source larger than
	// target in the pairwise step).
	if _, err := AlignAll(isorank.New(), []*graph.Graph{g, big}, Options{Reference: 0}); err == nil {
		t.Error("undersized reference accepted")
	}
}
