package isorank

import (
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

func TestRecoversIsomorphism(t *testing.T) {
	algotest.CheckRecovers(t, New(), 80, 0.95)
}

func TestDeterministic(t *testing.T) {
	algotest.CheckDeterministic(t, func() algo.Aligner { return New() }, 50)
}

func TestShape(t *testing.T) {
	algotest.CheckShape(t, New())
}

func TestDefaultAssignmentIsSortGreedy(t *testing.T) {
	if New().DefaultAssignment() != assign.SortGreedy {
		t.Error("IsoRank was proposed with SortGreedy")
	}
}

func TestEmptyGraphError(t *testing.T) {
	p := algotest.Pair(t, 20, 0, 1)
	empty := graph.MustNew(0, nil)
	if _, err := New().Similarity(empty, p.Target); err == nil {
		t.Error("empty source accepted")
	}
}

func TestPriorShapeMismatch(t *testing.T) {
	p := algotest.Pair(t, 20, 0, 2)
	ir := New()
	ir.Prior = matrix.NewDense(3, 3)
	if _, err := ir.Similarity(p.Source, p.Target); err == nil {
		t.Error("wrong-shape prior accepted")
	}
}

func TestAlphaZeroReturnsPrior(t *testing.T) {
	// alpha = 0 ignores topology: similarity is the normalized prior.
	p := algotest.Pair(t, 25, 0, 3)
	ir := New()
	ir.Alpha = 0
	ir.MaxIters = 5
	sim, err := ir.Similarity(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	prior := algo.DegreePrior(p.Source, p.Target)
	algo.NormalizeSim(prior)
	for i := range sim.Data {
		if d := sim.Data[i] - prior.Data[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("alpha=0 similarity differs from prior at %d", i)
		}
	}
}

func TestNoiseDegradesMonotonically(t *testing.T) {
	// Not strictly monotone in general, but 0 -> 10% must drop.
	a0 := algotest.Accuracy(t, New(), algotest.Pair(t, 80, 0, 4), assign.JonkerVolgenant)
	a10 := algotest.Accuracy(t, New(), algotest.Pair(t, 80, 0.10, 4), assign.JonkerVolgenant)
	if a10 >= a0 {
		t.Errorf("accuracy did not degrade: %.3f -> %.3f", a0, a10)
	}
}
