// Package isorank implements IsoRank (Singh, Xu, Berger 2008): PageRank-like
// neighborhood similarity iterated to a fixed point, blended with a prior
// similarity matrix.
//
// The fixed point of Equation (1) of the survey is computed by power
// iteration on the similarity matrix without ever materializing the
// Kronecker product:
//
//	R <- alpha * A_src D_src^-1  R  D_dst^-1 A_dstᵀ + (1-alpha) * E
//
// where E is the prior. The paper's study substitutes BLAST scores with the
// degree-similarity prior of its Section 6.1, which this package uses by
// default (Prior == nil).
package isorank

import (
	"context"
	"errors"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
	"graphalign/internal/obsv"
)

// IsoRank aligns graphs by recursive neighborhood similarity.
type IsoRank struct {
	// Alpha balances topology (1.0) against the prior (0.0). The study's
	// grid search selects 0.9.
	Alpha float64
	// MaxIters caps power iterations; the study lets IsoRank return after
	// 100 iterations even without convergence.
	MaxIters int
	// Tol stops iteration when the update's max-abs change drops below it.
	Tol float64
	// Prior overrides the degree-similarity prior when non-nil; it must be
	// |V_src| x |V_dst|.
	Prior *matrix.Dense

	// span receives the power-iteration phase (algo.Instrumented); nil
	// (the default) disables tracing at zero cost.
	span *obsv.Span
	// cache holds the shared artifact cache (algo.Cacheable); nil computes
	// everything locally.
	cache *cache.Cache
}

// SetSpan implements algo.Instrumented.
func (ir *IsoRank) SetSpan(s *obsv.Span) { ir.span = s }

// SetCache implements algo.Cacheable.
func (ir *IsoRank) SetCache(c *cache.Cache) { ir.cache = c }

// New returns IsoRank with the study's tuned hyperparameters
// (alpha=0.9, 100 iterations).
func New() *IsoRank {
	return &IsoRank{Alpha: 0.9, MaxIters: 100, Tol: 1e-6}
}

// Name implements algo.Aligner.
func (ir *IsoRank) Name() string { return "IsoRank" }

// DefaultAssignment implements algo.Aligner; IsoRank was proposed with
// SortGreedy.
func (ir *IsoRank) DefaultAssignment() assign.Method { return assign.SortGreedy }

// Similarity implements algo.Aligner.
func (ir *IsoRank) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return ir.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner; ctx is checked once per
// power iteration.
func (ir *IsoRank) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	n, m := src.N(), dst.N()
	if n == 0 || m == 0 {
		return nil, errors.New("isorank: empty graph")
	}
	prior := ir.Prior
	if prior == nil {
		prior = algo.DegreePriorCached(ir.cache, src, dst)
	} else if prior.Rows != n || prior.Cols != m {
		return nil, errors.New("isorank: prior shape mismatch")
	}
	// Normalize prior to unit mass so alpha balances comparable magnitudes.
	// The clone also keeps the shared cached prior untouched.
	e := prior.Clone()
	algo.NormalizeSim(e)

	// CSR operands are only read below, so the shared cached copies are safe.
	aSrc := cache.Adjacency(ir.cache, src)                  // n x n
	aDstNorm := cache.RowNormalizedAdjacency(ir.cache, dst) // m x m, D^-1 A
	degSrc := cache.Degrees(ir.cache, src)
	invDegSrc := make([]float64, n)
	for u := 0; u < n; u++ {
		if d := degSrc[u]; d > 0 {
			invDegSrc[u] = 1 / float64(d)
		}
	}

	r := e.Clone()
	alpha := ir.Alpha
	iters := ir.MaxIters
	if iters <= 0 {
		iters = 100
	}
	sp := ir.span.Phase("power_iteration")
	converged := false
	performed := 0
	tmp := matrix.NewDense(n, m)
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			sp.End()
			return nil, err
		}
		performed = it + 1
		// tmp = D_src^-1 R, then right-multiply by (D_dst^-1 A_dst)ᵀ, then
		// left-multiply by A_src. Using CSR ops:
		// step1: S1 = R * (D_dst^-1 A_dst)ᵀ  => S1 = R * normᵀ; rows of R
		//        times columns of normᵀ = rows of norm.
		s1 := mulDenseCSRT(r, aDstNorm) // n x m
		// step2: scale rows by 1/deg_src
		for i := 0; i < n; i++ {
			row := s1.Row(i)
			f := invDegSrc[i]
			for j := range row {
				row[j] *= f
			}
		}
		// step3: tmp = A_src * s1
		t2 := aSrc.MulDense(s1)
		// blend with prior
		maxDiff := 0.0
		for i := range tmp.Data {
			nv := alpha*t2.Data[i] + (1-alpha)*e.Data[i]
			if d := nv - r.Data[i]; d > maxDiff {
				maxDiff = d
			} else if -d > maxDiff {
				maxDiff = -d
			}
			tmp.Data[i] = nv
		}
		r, tmp = tmp, r
		// Keep total mass stable to avoid drifting to zero on graphs where
		// the topological operator is substochastic.
		algo.NormalizeSim(r)
		if maxDiff < ir.Tol {
			converged = true
			break
		}
	}
	sp.Set("iterations", performed)
	sp.Set("converged", converged)
	sp.End()
	return r, nil
}

// mulDenseCSRT returns d * sᵀ where s is CSR (s: m x m). Equivalent to
// (s * dᵀ)ᵀ computed without materializing transposes.
func mulDenseCSRT(d *matrix.Dense, s *matrix.CSR) *matrix.Dense {
	// out[i][r] = sum_k d[i][k] * s[r][k]
	out := matrix.NewDense(d.Rows, s.NumRows)
	for r := 0; r < s.NumRows; r++ {
		cols, vals := s.RowRange(r)
		for i := 0; i < d.Rows; i++ {
			drow := d.Row(i)
			var acc float64
			for k, c := range cols {
				acc += drow[c] * vals[k]
			}
			out.Row(i)[r] = acc
		}
	}
	return out
}
