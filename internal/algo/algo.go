// Package algo defines the interface every alignment algorithm implements
// and the shared helpers for turning a node-similarity matrix into a final
// alignment. Concrete algorithms live in the subpackages (isorank, graal,
// nsd, lrea, regal, gwl, sgwl, cone, grasp).
//
// The paper factors every method into a similarity notion plus an
// assignment step (Section 3); this package mirrors that factoring so the
// experiment framework can pair any similarity with any assignment
// algorithm, exactly as the study's Section 6.2 does.
package algo

import (
	"context"
	"fmt"
	"time"

	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
	"graphalign/internal/obsv"
)

// Aligner is a graph alignment algorithm reduced to its similarity notion.
type Aligner interface {
	// Name returns the algorithm's short name as used in the paper.
	Name() string
	// Similarity computes the |V_src| x |V_dst| matrix of node-to-node
	// similarity scores (higher means more likely to correspond).
	Similarity(src, dst *graph.Graph) (*matrix.Dense, error)
	// DefaultAssignment is the extraction method proposed by the original
	// authors (Table 1's "Assign" column).
	DefaultAssignment() assign.Method
}

// ContextAligner is optionally implemented by aligners whose similarity
// computation observes cooperative cancellation. SimilarityCtx must behave
// exactly like Similarity when ctx is never cancelled (same results from the
// same inputs), and return ctx.Err() — possibly wrapped — promptly once ctx
// is done. All ten built-in algorithms implement it; the Similarity helper
// dispatches through it when available.
type ContextAligner interface {
	SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error)
}

// Similarity computes a's similarity matrix under ctx: aligners that
// implement ContextAligner get the context threaded into their iteration
// loops; plain aligners run to completion and the context is checked before
// the call. With context.Background() this is exactly a.Similarity(src, dst).
func Similarity(ctx context.Context, a Aligner, src, dst *graph.Graph) (*matrix.Dense, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ca, ok := a.(ContextAligner); ok {
		return ca.SimilarityCtx(ctx, src, dst)
	}
	return a.Similarity(src, dst)
}

// EmbeddingAligner is optionally implemented by aligners whose similarity
// matrix is a monotone non-increasing function of the distance between
// per-node embedding rows (REGAL, CONE, GRASP). EmbeddingsCtx returns that
// factored form — the embeddings plus the distance-to-similarity map —
// without materializing the dense |V_src| x |V_dst| matrix, so the sparse
// assignment pipeline can run k-NN candidate search directly over the
// embeddings. The contract: Embedding.Similarity() must equal what
// SimilarityCtx returns under the same ctx (same values, same shape), and
// the returned matrices are private to the caller.
type EmbeddingAligner interface {
	EmbeddingsCtx(ctx context.Context, src, dst *graph.Graph) (*assign.Embedding, error)
}

// FactorAligner is optionally implemented by aligners whose similarity
// matrix is an explicit low-rank sum of outer products (NSD's iterated
// degree-vector series, LREA's factored power iteration). FactorsCtx returns
// that factored form without materializing the dense |V_src| x |V_dst|
// product, so the sparse assignment pipeline can score per-row top-k
// candidates straight off the factors. The contract is bitwise:
// FactorEmbedding.Similarity() must equal what SimilarityCtx returns under
// the same ctx (the same AddOuterScaled accumulation in the same term
// order), and the returned factors are private to the caller.
type FactorAligner interface {
	FactorsCtx(ctx context.Context, src, dst *graph.Graph) (*assign.FactorEmbedding, error)
}

// IncrementalEmbedder is an optional refinement of EmbeddingAligner for
// evolving-target sessions (internal/incremental): RefreshEmbeddingsCtx
// re-embeds (src, dst) after target-side edits, reusing whatever internal
// state the previous call on the same pair lineage left behind, and
// restricting fresh target-side work to the nodes scope allows (nil = all).
// The first call — or any call whose state no longer matches the inputs
// (different source graph, changed shape) — computes from scratch and is
// equivalent to EmbeddingsCtx. When the target's fingerprint is unchanged
// since the previous call the result must be bitwise identical to the
// previous one (the noop-replay contract). Outside those cases the result
// may carry bounded staleness: rows whose inputs moved less than the
// implementation's refresh tolerance keep their previous vectors until the
// accumulated movement crosses it.
//
// Implementations keep per-instance state, so an instance used for refresh
// must not be shared across sessions; the returned embedding is private to
// the caller.
type IncrementalEmbedder interface {
	EmbeddingAligner
	RefreshEmbeddingsCtx(ctx context.Context, src, dst *graph.Graph, scope []bool) (*assign.Embedding, error)
}

// IncrementalFactorer is IncrementalEmbedder for FactorAligners: a
// per-instance stateful refresh of the factor bundle after target-side
// edits, with the same lineage, noop-bitwise, and bounded-staleness
// contract. Factor refreshes have no per-node scope (rank-one terms are
// global), so the dirty scope does not appear in the signature.
type IncrementalFactorer interface {
	FactorAligner
	RefreshFactorsCtx(ctx context.Context, src, dst *graph.Graph) (*assign.FactorEmbedding, error)
}

// Instrumented is optionally implemented by aligners that can report the
// inner phases of Similarity (eigendecompositions, optimal-transport
// recursions, power-iteration convergence) through an observability span.
// The experiment runner calls SetSpan with the enclosing run's span before
// invoking Similarity; with tracing disabled the span is nil, which is a
// valid value — obsv.Span methods no-op on nil, so implementations store
// and use it unconditionally.
type Instrumented interface {
	SetSpan(*obsv.Span)
}

// Cacheable is optionally implemented by aligners that can draw shared
// per-graph artifacts (degree vectors, Laplacians, spectral decompositions,
// embeddings) from the experiment-wide artifact cache instead of recomputing
// them. SetCache is called by the experiment runner before Similarity; a nil
// cache is valid and means "compute everything locally", so implementations
// store it unconditionally — every cache helper is nil-safe. Implementations
// must keep cached and uncached runs byte-identical: only pure functions of
// the cache key may be memoized, and shared values must never be mutated.
type Cacheable interface {
	SetCache(*cache.Cache)
}

// ApplyCache hands the artifact cache to a, if a supports one. Nil-safe in c.
func ApplyCache(a Aligner, c *cache.Cache) {
	if ca, ok := a.(Cacheable); ok {
		ca.SetCache(c)
	}
}

// Align runs a full alignment: similarity followed by the requested
// assignment method. Nearest-neighbor extractions are restricted to
// one-to-one outputs, as the paper does for comparability.
func Align(a Aligner, src, dst *graph.Graph, method assign.Method) ([]int, error) {
	mapping, _, _, err := AlignTimed(a, src, dst, method)
	return mapping, err
}

// AlignCtx is Align under a context: cancellation or deadline expiry aborts
// the similarity iteration cooperatively and surfaces the context error.
func AlignCtx(ctx context.Context, a Aligner, src, dst *graph.Graph, method assign.Method) ([]int, error) {
	mapping, _, _, err := AlignTimedCtx(ctx, a, src, dst, method)
	return mapping, err
}

// AlignTimed is Align reporting how the runtime splits between the
// similarity computation and the assignment step — the distinction the
// paper's runtime figures are built on (they exclude assignment).
func AlignTimed(a Aligner, src, dst *graph.Graph, method assign.Method) (mapping []int, simTime, assignTime time.Duration, err error) {
	return AlignTimedCtx(context.Background(), a, src, dst, method)
}

// AlignTimedCtx is AlignTimed under a context. The context is threaded into
// ContextAligner similarity loops and checked between pipeline stages; the
// assignment solvers themselves run to completion (they are polynomial in
// the already-computed similarity matrix, never the hanging stage).
func AlignTimedCtx(ctx context.Context, a Aligner, src, dst *graph.Graph, method assign.Method) (mapping []int, simTime, assignTime time.Duration, err error) {
	if src.N() > dst.N() {
		return nil, 0, 0, fmt.Errorf("algo: source graph larger than target (%d > %d)", src.N(), dst.N())
	}
	t0 := time.Now()
	sim, err := Similarity(ctx, a, src, dst)
	simTime = time.Since(t0)
	if err != nil {
		return nil, simTime, 0, fmt.Errorf("algo: %s similarity: %w", a.Name(), err)
	}
	if err := ctx.Err(); err != nil {
		return nil, simTime, 0, fmt.Errorf("algo: %s similarity: %w", a.Name(), err)
	}
	t1 := time.Now()
	mapping, err = assign.Solve(method, sim)
	if err != nil {
		return nil, simTime, time.Since(t1), fmt.Errorf("algo: %s assignment: %w", a.Name(), err)
	}
	if method == assign.NearestNeighbor {
		mapping = assign.EnforceOneToOne(sim, mapping)
	}
	assignTime = time.Since(t1)
	return mapping, simTime, assignTime, nil
}

// AlignObservedTimedCtx is AlignTimedCtx wrapped in an observability run:
// a run span for the whole alignment with "similarity" and "assign" phase
// spans inside, plus the aligner's own inner phases when it implements
// Instrumented. A nil tracer degrades to exactly AlignTimedCtx — every obsv
// call no-ops — so callers wire it unconditionally.
func AlignObservedTimedCtx(ctx context.Context, a Aligner, src, dst *graph.Graph, method assign.Method, tr *obsv.Tracer) (mapping []int, simTime, assignTime time.Duration, err error) {
	if src.N() > dst.N() {
		return nil, 0, 0, fmt.Errorf("algo: source graph larger than target (%d > %d)", src.N(), dst.N())
	}
	run := tr.StartRun(a.Name(), map[string]any{
		"assign": string(method),
		"n_src":  src.N(),
		"n_dst":  dst.N(),
	})
	if inst, ok := a.(Instrumented); ok {
		inst.SetSpan(run)
	}
	endErr := func(err error) error {
		run.Set("err", err.Error())
		run.End()
		return err
	}

	sp := run.Phase("similarity")
	t0 := time.Now()
	sim, err := Similarity(ctx, a, src, dst)
	simTime = time.Since(t0)
	sp.End()
	if err != nil {
		return nil, simTime, 0, endErr(fmt.Errorf("algo: %s similarity: %w", a.Name(), err))
	}
	if err := ctx.Err(); err != nil {
		return nil, simTime, 0, endErr(fmt.Errorf("algo: %s similarity: %w", a.Name(), err))
	}

	sp = run.Phase("assign")
	sp.Set("method", string(method))
	t1 := time.Now()
	mapping, err = assign.Solve(method, sim)
	if err != nil {
		sp.End()
		return nil, simTime, time.Since(t1), endErr(fmt.Errorf("algo: %s assignment: %w", a.Name(), err))
	}
	if method == assign.NearestNeighbor {
		mapping = assign.EnforceOneToOne(sim, mapping)
	}
	assignTime = time.Since(t1)
	sp.End()
	run.End()
	return mapping, simTime, assignTime, nil
}

// AlignSparseTimedCtx is AlignTimedCtx through the sparse assignment
// pipeline: the similarity is reduced to per-row top-k candidates — via k-NN
// over raw embeddings for EmbeddingAligners, via factor-space scoring for
// FactorAligners (neither materializes the dense matrix), via bounded-heap
// row selection otherwise — and solved by the sparse variant of the
// requested method (exact methods map to the ε-scaling auction, with a
// dense-JV fallback when the candidate graph leaves rows unmatchable; see
// assign.SolveSparse). topk <= 0 keeps every column. Candidate generation is
// accounted to assignTime: simTime keeps the paper's meaning of "similarity
// computation only".
func AlignSparseTimedCtx(ctx context.Context, a Aligner, src, dst *graph.Graph, method assign.Method, topk, workers int) (mapping []int, simTime, assignTime time.Duration, stats assign.SparseStats, err error) {
	if src.N() > dst.N() {
		return nil, 0, 0, stats, fmt.Errorf("algo: source graph larger than target (%d > %d)", src.N(), dst.N())
	}
	var cands *assign.Candidates
	var dense func() *matrix.Dense
	if ea, ok := a.(EmbeddingAligner); ok {
		t0 := time.Now()
		emb, eerr := ea.EmbeddingsCtx(ctx, src, dst)
		simTime = time.Since(t0)
		if eerr != nil {
			return nil, simTime, 0, stats, fmt.Errorf("algo: %s embeddings: %w", a.Name(), eerr)
		}
		t1 := time.Now()
		cands = assign.TopKEmbedding(emb, topk, workers)
		dense = emb.Similarity
		defer func() { assignTime += time.Since(t1) }()
	} else if fa, ok := a.(FactorAligner); ok {
		t0 := time.Now()
		fac, ferr := fa.FactorsCtx(ctx, src, dst)
		simTime = time.Since(t0)
		if ferr != nil {
			return nil, simTime, 0, stats, fmt.Errorf("algo: %s factors: %w", a.Name(), ferr)
		}
		t1 := time.Now()
		cands = assign.TopKFactor(fac, topk, workers)
		dense = fac.Similarity
		defer func() { assignTime += time.Since(t1) }()
	} else {
		t0 := time.Now()
		sim, serr := Similarity(ctx, a, src, dst)
		simTime = time.Since(t0)
		if serr != nil {
			return nil, simTime, 0, stats, fmt.Errorf("algo: %s similarity: %w", a.Name(), serr)
		}
		t1 := time.Now()
		cands = assign.TopKDense(sim, topk, workers)
		dense = func() *matrix.Dense { return sim }
		defer func() { assignTime += time.Since(t1) }()
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, simTime, 0, stats, fmt.Errorf("algo: %s similarity: %w", a.Name(), cerr)
	}
	mapping, stats, err = assign.SolveSparse(method, cands, dense, workers)
	if err != nil {
		return nil, simTime, assignTime, stats, fmt.Errorf("algo: %s sparse assignment: %w", a.Name(), err)
	}
	return mapping, simTime, assignTime, stats, nil
}

// AlignDefault runs Align with the algorithm's author-proposed assignment.
func AlignDefault(a Aligner, src, dst *graph.Graph) ([]int, error) {
	return Align(a, src, dst, a.DefaultAssignment())
}

// DegreePrior computes the paper's degree-based prior similarity
// (Section 6.1): sim(u, v) = 1 - |deg(u) - deg(v)| / max(deg(u), deg(v)).
// Isolated pairs (both degree zero) get similarity 1.
func DegreePrior(src, dst *graph.Graph) *matrix.Dense {
	e := matrix.NewDense(src.N(), dst.N())
	dsrc := src.Degrees()
	ddst := dst.Degrees()
	for i, du := range dsrc {
		row := e.Row(i)
		for j, dv := range ddst {
			maxD := du
			if dv > maxD {
				maxD = dv
			}
			if maxD == 0 {
				row[j] = 1
				continue
			}
			diff := du - dv
			if diff < 0 {
				diff = -diff
			}
			row[j] = 1 - float64(diff)/float64(maxD)
		}
	}
	return e
}

// DegreePriorCached is DegreePrior drawn through the artifact cache, keyed by
// the (src, dst) pair fingerprint. The returned matrix is shared across the
// algorithms of a cell: treat it as READ-ONLY (clone before mutating, as
// IsoRank does before normalizing). A nil cache computes directly.
func DegreePriorCached(c *cache.Cache, src, dst *graph.Graph) *matrix.Dense {
	v, _ := c.GetOrCompute(context.Background(), cache.PairKey(src, dst)+"/degprior", func() (any, int64, error) {
		m := DegreePrior(src, dst)
		return m, cache.DenseBytes(m), nil
	})
	return v.(*matrix.Dense)
}

// NormalizeSim scales a similarity matrix so entries sum to one; useful for
// iterations that must preserve mass. No-op on an all-zero matrix.
func NormalizeSim(s *matrix.Dense) {
	sum := s.Sum()
	if sum != 0 {
		s.Scale(1 / sum)
	}
}
