// Package netalign implements a NetAlign-style sparse message-passing
// aligner (Bayati, Gleich, Saberi, Wang: "Message-Passing Algorithms for
// Sparse Network Alignment").
//
// The paper's Section 4 reports trying NetAlign with the same enhancements
// granted to the other methods (the degree-similarity prior of §6.1 and the
// JV assignment) and excluding it for inadequate quality; this package
// exists to make that exclusion reproducible (see the "excluded-netalign"
// experiment).
//
// NetAlign maximizes  w·x + (beta/2)·(#preserved squares)  over matchings x
// restricted to a sparse candidate set L. A "square" is a pair of candidate
// matches (i,j),(u,v) in L with (i,u) an edge of the source and (j,v) an
// edge of the target — exactly one unit of edge overlap. The solver here is
// a damped coordinate-ascent on square support: candidate scores are
// repeatedly reinforced by the current soft-matching mass of their square
// partners, which is the belief-propagation update with messages collapsed
// to their means (a documented simplification of the original's max-product
// messages; see DESIGN.md).
package netalign

import (
	"context"
	"errors"
	"sort"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

// NetAlign aligns graphs by sparse candidate message passing.
type NetAlign struct {
	// CandidatesPerNode bounds |L| to k candidates per source node, chosen
	// by prior similarity.
	CandidatesPerNode int
	// Beta weighs square (edge-overlap) rewards against prior weights.
	Beta float64
	// Iters is the number of reinforcement sweeps.
	Iters int
	// Damping mixes old and new scores (0 = no memory, 1 = frozen).
	Damping float64
}

// New returns NetAlign with the settings used by the exclusion experiment.
func New() *NetAlign {
	return &NetAlign{CandidatesPerNode: 10, Beta: 1, Iters: 20, Damping: 0.5}
}

// Name implements algo.Aligner.
func (na *NetAlign) Name() string { return "NetAlign" }

// DefaultAssignment implements algo.Aligner; the study grants excluded
// methods the same JV stage as everyone else.
func (na *NetAlign) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }

// candidate is one (i, j) pair of the sparse candidate set L.
type candidate struct {
	i, j  int
	w     float64 // prior weight
	score float64 // current belief
}

// Similarity implements algo.Aligner.
func (na *NetAlign) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return na.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner; ctx is checked per candidate
// row during set construction and once per reinforcement sweep.
func (na *NetAlign) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	n, m := src.N(), dst.N()
	if n == 0 || m == 0 {
		return nil, errors.New("netalign: empty graph")
	}
	k := na.CandidatesPerNode
	if k <= 0 {
		k = 10
	}
	if k > m {
		k = m
	}
	prior := algo.DegreePrior(src, dst)

	// Build the candidate set: top-k prior entries per source node.
	cands := make([]candidate, 0, n*k)
	index := make(map[[2]int]int, n*k) // (i, j) -> candidate id
	colIdx := make([]int, m)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := prior.Row(i)
		for j := range colIdx {
			colIdx[j] = j
		}
		sort.Slice(colIdx, func(a, b int) bool { return row[colIdx[a]] > row[colIdx[b]] })
		for _, j := range colIdx[:k] {
			index[[2]int{i, j}] = len(cands)
			cands = append(cands, candidate{i: i, j: j, w: row[j], score: row[j]})
		}
	}

	// Square lists: for each candidate, the candidate ids it forms a
	// square with.
	squares := make([][]int, len(cands))
	for cid, c := range cands {
		for _, u := range src.Neighbors(c.i) {
			for _, v := range dst.Neighbors(c.j) {
				if pid, ok := index[[2]int{u, v}]; ok {
					squares[cid] = append(squares[cid], pid)
				}
			}
		}
	}

	// Damped reinforcement sweeps with per-node normalization (the
	// matching constraint's soft analogue).
	next := make([]float64, len(cands))
	rowMass := make([]float64, n)
	colMass := make([]float64, m)
	for it := 0; it < na.Iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range rowMass {
			rowMass[i] = 0
		}
		for j := range colMass {
			colMass[j] = 0
		}
		for _, c := range cands {
			rowMass[c.i] += c.score
			colMass[c.j] += c.score
		}
		for cid, c := range cands {
			// Normalized belief of this candidate: damp competition by its
			// row/column mass.
			var support float64
			for _, pid := range squares[cid] {
				p := cands[pid]
				denom := rowMass[p.i] + colMass[p.j] - 2*p.score
				norm := p.score
				if denom > 0 {
					norm = p.score / (1 + denom)
				}
				support += norm
			}
			next[cid] = c.w + na.Beta*support
		}
		// Damping + renormalization to keep magnitudes bounded.
		var maxScore float64
		for cid := range cands {
			s := na.Damping*cands[cid].score + (1-na.Damping)*next[cid]
			cands[cid].score = s
			if s > maxScore {
				maxScore = s
			}
		}
		if maxScore > 0 {
			for cid := range cands {
				cands[cid].score /= maxScore
			}
		}
	}

	// Densify: non-candidates keep a tiny negative floor so the LAP stage
	// prefers any candidate over a non-candidate.
	sim := matrix.NewDense(n, m)
	sim.Fill(-1)
	for _, c := range cands {
		sim.Set(c.i, c.j, c.score)
	}
	return sim, nil
}
