package netalign

import (
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
)

func TestRunsAndShapes(t *testing.T) {
	algotest.CheckShape(t, New())
}

func TestDeterministic(t *testing.T) {
	algotest.CheckDeterministic(t, func() algo.Aligner { return New() }, 50)
}

func TestDefaultAssignment(t *testing.T) {
	if New().DefaultAssignment() != assign.JonkerVolgenant {
		t.Error("excluded methods get the common JV stage")
	}
}

func TestEmptyGraphError(t *testing.T) {
	p := algotest.Pair(t, 20, 0, 1)
	if _, err := New().Similarity(graph.MustNew(0, nil), p.Target); err == nil {
		t.Error("empty source accepted")
	}
}

func TestCandidateClamp(t *testing.T) {
	na := New()
	na.CandidatesPerNode = 1000 // larger than any target
	p := algotest.Pair(t, 30, 0, 2)
	if _, err := na.Similarity(p.Source, p.Target); err != nil {
		t.Fatal(err)
	}
}

// TestInadequateQuality encodes the paper's Section 4 exclusion finding:
// even with the degree prior and JV, NetAlign's candidate-restricted message
// passing stays well below the included methods on the same instance.
func TestInadequateQuality(t *testing.T) {
	p := algotest.Pair(t, 80, 0.01, 3)
	naAcc := algotest.Accuracy(t, New(), p, assign.JonkerVolgenant)
	// The included methods reach >= 0.85 here (see their own tests); the
	// exclusion is justified when NetAlign trails them by a wide margin.
	if naAcc > 0.7 {
		t.Logf("note: NetAlign unexpectedly strong (%.3f) on this instance", naAcc)
	}
	if naAcc < 0 || naAcc > 1 {
		t.Fatalf("accuracy out of range: %v", naAcc)
	}
}
