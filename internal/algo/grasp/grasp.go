// Package grasp implements GRASP (Hermanns, Tsitsulin, Munkhoeva,
// Bronstein, Mottin, Karras 2021): graph alignment through spectral
// signatures.
//
// GRASP computes the k smallest eigenpairs of each graph's normalized
// Laplacian, builds corresponding functions from the diagonals of heat
// kernels at q time steps (Equation 13), aligns the two eigenvector bases
// with a base-alignment matrix M that trades off diagonality of the mapped
// spectrum against corresponding-function agreement (Equation 14), maps
// functions across with a diagonal functional map C, and finally matches
// nodes by linear assignment over the aligned spectral features, using the
// JV algorithm as the original authors do.
package grasp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/linalg"
	"graphalign/internal/matrix"
	"graphalign/internal/obsv"
)

// GRASP aligns graphs via Laplacian spectral signatures.
type GRASP struct {
	// K is the number of eigenvectors (the study tunes k=20).
	K int
	// Q is the number of heat-kernel time steps (the study tunes q=100).
	Q int
	// TMin and TMax bound the logarithmic grid of diffusion times.
	TMin, TMax float64
	// Mu weighs the corresponding-function term in the base-alignment
	// objective (Equation 14).
	Mu float64
	// HeatFeatures appends the (sign-invariant) heat-kernel diagonal rows
	// to the matching features, stabilizing the aligned-eigenvector
	// features under noise. On by default.
	HeatFeatures bool
	// Seed drives the Lanczos starting vector.
	Seed int64

	// span receives the inner phases of Similarity (algo.Instrumented);
	// nil (the default) disables tracing at zero cost.
	span *obsv.Span
	// cache holds the shared artifact cache (algo.Cacheable); nil computes
	// everything locally.
	cache *cache.Cache
}

// SetSpan implements algo.Instrumented.
func (g *GRASP) SetSpan(s *obsv.Span) { g.span = s }

// SetCache implements algo.Cacheable.
func (g *GRASP) SetCache(c *cache.Cache) { g.cache = c }

// New returns GRASP with the study's tuned hyperparameters (q=100, k=20).
func New() *GRASP {
	return &GRASP{K: 20, Q: 100, TMin: 0.1, TMax: 50, Mu: 0.5, Seed: 1, HeatFeatures: true}
}

// Name implements algo.Aligner.
func (g *GRASP) Name() string { return "GRASP" }

// DefaultAssignment implements algo.Aligner; GRASP uses JV.
func (g *GRASP) DefaultAssignment() assign.Method { return assign.JonkerVolgenant }

// Similarity implements algo.Aligner. Higher similarity = smaller distance
// between aligned spectral feature rows.
func (g *GRASP) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return g.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner; ctx is threaded through the
// Lanczos/dense eigendecompositions and the base-alignment SVD, and checked
// per heat-kernel time step and per feature-distance row.
func (g *GRASP) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	featSrc, featDst, err := g.featuresCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	n1, n2 := src.N(), dst.N()
	// Similarity = negative distance, shifted positive.
	sp := g.span.Phase("feature_distance")
	sim := matrix.NewDense(n1, n2)
	for i := 0; i < n1; i++ {
		if err := ctx.Err(); err != nil {
			sp.End()
			return nil, err
		}
		ri := featSrc.Row(i)
		row := sim.Row(i)
		for j := 0; j < n2; j++ {
			rj := featDst.Row(j)
			var d2 float64
			for t := range ri {
				d := ri[t] - rj[t]
				d2 += d * d
			}
			row[j] = -d2
		}
	}
	sp.End()
	return sim, nil
}

// EmbeddingsCtx implements algo.EmbeddingAligner: the aligned spectral
// feature rows in factored form with GRASP's negated-squared-distance
// similarity, for the sparse assignment pipeline's k-NN candidate search.
// Materializing the returned Embedding reproduces SimilarityCtx exactly
// (same squared-distance accumulation order).
func (g *GRASP) EmbeddingsCtx(ctx context.Context, src, dst *graph.Graph) (*assign.Embedding, error) {
	featSrc, featDst, err := g.featuresCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	return &assign.Embedding{Src: featSrc, Dst: featDst, SimFromDist2: NegDistKernel}, nil
}

// NegDistKernel is GRASP's distance-to-similarity map: sim = -d² (higher
// similarity = smaller feature distance). Monotone non-increasing, as the
// sparse candidate search requires.
func NegDistKernel(d2 float64) float64 { return -d2 }

// featuresCtx runs the GRASP pipeline up to (but excluding) the pairwise
// feature-distance matrix: eigendecompositions, heat-kernel signatures, base
// alignment, and singular-value weighting of the mapped features.
func (g *GRASP) featuresCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, *matrix.Dense, error) {
	n1, n2 := src.N(), dst.N()
	if n1 == 0 || n2 == 0 {
		return nil, nil, errors.New("grasp: empty graph")
	}
	k := g.K
	if k > n1 {
		k = n1
	}
	if k > n2 {
		k = n2
	}
	if k < 2 {
		return nil, nil, errors.New("grasp: graphs too small for spectral alignment")
	}
	sp := g.span.Phase("eigendecomposition")
	sp.Set("k", k)
	// Each graph's decomposition is a pure function of (graph, k, Seed) —
	// the Lanczos starting vector comes from a per-graph RNG, never a
	// stream shared across the two graphs — so the artifact cache can share
	// it with other algorithms and reps without changing any output.
	valsA, phiA, err := cache.LaplacianEigs(ctx, g.cache, src, k, g.Seed)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	valsB, phiB, err := cache.LaplacianEigs(ctx, g.cache, dst, k, g.Seed)
	sp.End()
	if err != nil {
		return nil, nil, err
	}

	sp = g.span.Phase("heat_kernels")
	sp.Set("q", g.Q)
	ts := logspace(g.TMin, g.TMax, g.Q)
	// Corresponding functions: F[i][t] = Σ_j exp(-t λ_j) φ_j(i)² (diagonal
	// of the heat kernel), one column per time step. Cached per graph under
	// the full spectral-signature parameter set.
	fA, err := g.cachedHeatDiagonals(ctx, src, k, valsA, phiA, ts) // n1 x q
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	fB, err := g.cachedHeatDiagonals(ctx, dst, k, valsB, phiB, ts) // n2 x q
	sp.End()
	if err != nil {
		return nil, nil, err
	}

	// Base alignment (Equation 14): find the orthogonal M aligning the two
	// eigenbases through their corresponding-function projections. With
	// a = Φᵀ F and b = Ψᵀ G (both k x q), the alignment Ψ̂ = Ψ M should
	// satisfy Mᵀ b ≈ a, whose orthogonal minimizer is the polar factor of
	// a bᵀ. This full orthogonal solution also repairs rotations inside
	// clusters of near-degenerate eigenvalues, which a signed permutation
	// cannot (the published method optimizes the same objective on the
	// Stiefel manifold; the diagonalization term corresponds to the
	// eigenvalue weighting already implicit in the heat-kernel projections).
	sp = g.span.Phase("base_alignment")
	a := project(phiA, fA)     // k x q  (Φᵀ F)
	b := project(phiB, fB)     // k x q  (Ψᵀ G)
	abt := matrix.MulABT(a, b) // k x k = a bᵀ
	u, sv, v, err := linalg.SVDAnyCtx(ctx, abt)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	sp.End()
	// The SVD pairs canonical directions of the two eigenbases: column j of
	// Φ U corresponds to column j of Ψ V with correlation strength sv[j]
	// (for a noiseless permuted copy, Ψ V = P Φ U exactly). Unreliable
	// directions — near-degenerate eigenspaces whose heat projections carry
	// no signal — get tiny singular values and are down-weighted, playing
	// the role of the diagonal functional map C in the published method.
	w := make([]float64, k)
	if len(sv) > 0 && sv[0] > 0 {
		for j := 0; j < k && j < len(sv); j++ {
			w[j] = math.Sqrt(sv[j] / sv[0])
		}
	}
	featSrc := matrix.Mul(phiA, u) // n1 x k
	featDst := matrix.Mul(phiB, v) // n2 x k
	for r := 0; r < n1; r++ {
		row := featSrc.Row(r)
		for j := 0; j < k; j++ {
			row[j] *= w[j]
		}
	}
	for r := 0; r < n2; r++ {
		row := featDst.Row(r)
		for j := 0; j < k; j++ {
			row[j] *= w[j]
		}
	}
	if g.HeatFeatures {
		featSrc = appendHeatFeatures(featSrc, fA)
		featDst = appendHeatFeatures(featDst, fB)
	}
	return featSrc, featDst, nil
}

// cachedHeatDiagonals draws the heat-kernel diagonal matrix from the artifact
// cache (keyed by the graph plus every parameter the signature depends on),
// computing it on a miss. The result is shared and read-only downstream.
func (g *GRASP) cachedHeatDiagonals(ctx context.Context, gr *graph.Graph, k int, vals []float64, phi *matrix.Dense, ts []float64) (*matrix.Dense, error) {
	key := fmt.Sprintf("%s/heat/k%d/s%d/t%g-%g/q%d", cache.GraphKey(gr), k, g.Seed, g.TMin, g.TMax, g.Q)
	v, err := g.cache.GetOrCompute(ctx, key, func() (any, int64, error) {
		m, err := heatDiagonals(ctx, vals, phi, ts)
		if err != nil {
			return nil, 0, err
		}
		return m, cache.DenseBytes(m), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*matrix.Dense), nil
}

// heatDiagonals returns the n x q matrix whose column t is the diagonal of
// the heat kernel at time ts[t], computed from the truncated spectrum; ctx
// is checked once per time step.
func heatDiagonals(ctx context.Context, vals []float64, phi *matrix.Dense, ts []float64) (*matrix.Dense, error) {
	n := phi.Rows
	k := phi.Cols
	out := matrix.NewDense(n, len(ts))
	for ti, t := range ts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for j := 0; j < k; j++ {
			e := math.Exp(-t * vals[j])
			for i := 0; i < n; i++ {
				v := phi.At(i, j)
				out.Add(i, ti, e*v*v)
			}
		}
	}
	return out, nil
}

// project returns φᵀ F (k x q).
func project(phi, f *matrix.Dense) *matrix.Dense {
	k := phi.Cols
	q := f.Cols
	out := matrix.NewDense(k, q)
	for i := 0; i < phi.Rows; i++ {
		prow := phi.Row(i)
		frow := f.Row(i)
		for a := 0; a < k; a++ {
			pa := prow[a]
			if pa == 0 {
				continue
			}
			orow := out.Row(a)
			for t := 0; t < q; t++ {
				orow[t] += pa * frow[t]
			}
		}
	}
	return out
}

// appendHeatFeatures concatenates row-normalized heat-diagonal descriptors
// (each node's heat-kernel diagonal across time steps, a NetLSD-style
// signature) to the spectral features. Both sides use the same scaling so
// distances stay comparable.
func appendHeatFeatures(feat, heat *matrix.Dense) *matrix.Dense {
	n, k, q := feat.Rows, feat.Cols, heat.Cols
	out := matrix.NewDense(n, k+q)
	for r := 0; r < n; r++ {
		copy(out.Row(r)[:k], feat.Row(r))
		hrow := heat.Row(r)
		orow := out.Row(r)[k:]
		copy(orow, hrow)
		matrix.Normalize(orow)
	}
	return out
}

// logspace returns q points log-uniformly spaced in [lo, hi].
func logspace(lo, hi float64, q int) []float64 {
	if q < 1 {
		q = 1
	}
	out := make([]float64, q)
	if q == 1 {
		out[0] = lo
		return out
	}
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		f := float64(i) / float64(q-1)
		out[i] = math.Exp(llo + f*(lhi-llo))
	}
	return out
}
