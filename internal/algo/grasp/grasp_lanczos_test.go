package grasp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"graphalign/internal/cache"
	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/linalg"
)

// TestLanczosPathMatchesDense exercises the sparse eigensolver branch used
// for graphs above 400 nodes and cross-checks it against the dense solver.
func TestLanczosPathMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.PowerlawCluster(450, 3, 0.3, rng)
	k := 8
	lv, lvec, err := cache.LaplacianEigs(context.Background(), nil, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	lap := graph.NormalizedLaplacian(g).ToDense()
	dv, _, err := linalg.SymEigen(lap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if math.Abs(lv[i]-dv[i]) > 1e-6*(1+math.Abs(dv[i])) && math.Abs(lv[i]-dv[i]) > 5e-5 {
			t.Errorf("eigenvalue %d: lanczos %v vs dense %v", i, lv[i], dv[i])
		}
	}
	// Residual check on the Ritz vectors.
	for c := 0; c < k; c++ {
		v := make([]float64, g.N())
		for i := range v {
			v[i] = lvec.At(i, c)
		}
		av := lap.MulVec(v)
		for i := range v {
			if r := math.Abs(av[i] - lv[c]*v[i]); r > 5e-4 {
				t.Fatalf("vector %d residual %v at row %d", c, r, i)
			}
		}
	}
}

// TestGRASPOnLargerGraph runs the full GRASP pipeline through the Lanczos
// branch.
func TestGRASPOnLargerGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("larger-graph test")
	}
	rng := rand.New(rand.NewSource(4))
	base := gen.PowerlawCluster(450, 3, 0.3, rng)
	perm := graph.RandomPermutation(base.N(), rng)
	target, err := graph.Permute(base, perm)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New().Similarity(base, target)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Rows != 450 || sim.Cols != 450 {
		t.Fatal("shape wrong")
	}
}
