package grasp

import (
	"context"
	"math"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

func TestRecoversIsomorphism(t *testing.T) {
	algotest.CheckRecovers(t, New(), 80, 0.9)
}

func TestDeterministic(t *testing.T) {
	algotest.CheckDeterministic(t, func() algo.Aligner { return New() }, 50)
}

func TestShape(t *testing.T) {
	algotest.CheckShape(t, New())
}

func TestDefaultAssignment(t *testing.T) {
	if New().DefaultAssignment() != assign.JonkerVolgenant {
		t.Error("GRASP uses the JV solver")
	}
}

func TestTooSmallGraphError(t *testing.T) {
	tiny := graph.MustNew(1, nil)
	if _, err := New().Similarity(tiny, tiny); err == nil {
		t.Error("1-node graph accepted")
	}
}

func TestLogspace(t *testing.T) {
	ts := logspace(0.1, 10, 3)
	if len(ts) != 3 {
		t.Fatal("length wrong")
	}
	if math.Abs(ts[0]-0.1) > 1e-12 || math.Abs(ts[2]-10) > 1e-9 {
		t.Errorf("endpoints wrong: %v", ts)
	}
	if math.Abs(ts[1]-1) > 1e-9 {
		t.Errorf("log midpoint of [0.1, 10] should be 1, got %v", ts[1])
	}
	if got := logspace(2, 5, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("q=1 should return [lo]: %v", got)
	}
}

func TestHeatDiagonalsProperties(t *testing.T) {
	// For the full spectrum of the normalized Laplacian, trace(H_t) =
	// sum_j exp(-t lambda_j); each diagonal entry positive.
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	// Use the dense eigensolver directly through the cache helper.
	vals, phi, err := cache.LaplacianEigs(context.Background(), nil, g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := []float64{0.5, 2}
	h, err := heatDiagonals(context.Background(), vals, phi, ts)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tv := range ts {
		var trace, want float64
		for i := 0; i < 4; i++ {
			trace += h.At(i, ti)
			if h.At(i, ti) <= 0 {
				t.Fatalf("heat diagonal must be positive, got %v", h.At(i, ti))
			}
			want += math.Exp(-tv * vals[i])
		}
		if math.Abs(trace-want) > 1e-9 {
			t.Errorf("trace(H_%v) = %v, want %v", tv, trace, want)
		}
	}
}

func TestHeatFeaturesToggle(t *testing.T) {
	p := algotest.Pair(t, 60, 0.02, 61)
	with := New()
	without := New()
	without.HeatFeatures = false
	aWith := algotest.Accuracy(t, with, p, assign.JonkerVolgenant)
	aWithout := algotest.Accuracy(t, without, p, assign.JonkerVolgenant)
	// Both must run; the augmented variant should generally not be worse.
	if aWith+0.15 < aWithout {
		t.Errorf("heat features hurt badly: %.3f vs %.3f", aWith, aWithout)
	}
}

func TestProjectShape(t *testing.T) {
	phi := matrix.NewDense(5, 3)
	f := matrix.NewDense(5, 7)
	out := project(phi, f)
	if out.Rows != 3 || out.Cols != 7 {
		t.Fatalf("project shape %dx%d", out.Rows, out.Cols)
	}
}

func TestKClamping(t *testing.T) {
	g := New()
	g.K = 100 // larger than the graphs
	p := algotest.Pair(t, 30, 0, 62)
	if _, err := g.Similarity(p.Source, p.Target); err != nil {
		t.Fatalf("k clamping failed: %v", err)
	}
}
