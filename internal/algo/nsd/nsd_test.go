package nsd

import (
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
)

func TestRecoversIsomorphism(t *testing.T) {
	algotest.CheckRecovers(t, New(), 80, 0.9)
}

func TestDeterministic(t *testing.T) {
	algotest.CheckDeterministic(t, func() algo.Aligner { return New() }, 50)
}

func TestShape(t *testing.T) {
	algotest.CheckShape(t, New())
}

func TestDefaultAssignment(t *testing.T) {
	if New().DefaultAssignment() != assign.SortGreedy {
		t.Error("NSD was proposed with SortGreedy")
	}
}

func TestEmptyGraphError(t *testing.T) {
	p := algotest.Pair(t, 20, 0, 1)
	if _, err := New().Similarity(graph.MustNew(0, nil), p.Target); err == nil {
		t.Error("empty source accepted")
	}
}

func TestMoreComponentsHelpOrMatch(t *testing.T) {
	// With a rank-s prior decomposition, more components should not hurt
	// the noiseless recovery.
	p := algotest.Pair(t, 60, 0, 5)
	one := New()
	one.Components = 1
	three := New()
	three.Components = 3
	a1 := algotest.Accuracy(t, one, p, assign.JonkerVolgenant)
	a3 := algotest.Accuracy(t, three, p, assign.JonkerVolgenant)
	if a3+0.15 < a1 {
		t.Errorf("more components hurt substantially: %v vs %v", a3, a1)
	}
}

func TestIterationCountStabilizes(t *testing.T) {
	// The alpha^k series decays: iters 15 and 30 should agree closely on
	// the resulting matching.
	p := algotest.Pair(t, 60, 0.02, 6)
	n15 := New()
	n15.Iters = 15
	n30 := New()
	n30.Iters = 30
	a15 := algotest.Accuracy(t, n15, p, assign.JonkerVolgenant)
	a30 := algotest.Accuracy(t, n30, p, assign.JonkerVolgenant)
	if diff := a15 - a30; diff > 0.2 || diff < -0.2 {
		t.Errorf("iteration count unstable: %v vs %v", a15, a30)
	}
}
