package nsd

import (
	"context"

	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
)

// This file implements algo.IncrementalFactorer for NSD. The factored power
// series splits cleanly by side: the source iterates z_c^(k) never see the
// target, so across target-side edit batches the whole Us half of the bundle
// is bitwise static, and a refresh only re-runs the w iterates — per
// component, Iters sparse MulVecs through the target's re-normalized
// adjacency, a vanishing fraction of the cold cost (which is dominated by
// the dense ns×nd degree prior and its truncated SVD).
//
// The bounded staleness the algo.IncrementalFactorer contract allows lives
// in the starting vectors: z_c^(0)/w_c^(0) come from the SVD of the degree
// prior captured at the last full compute and are frozen across refreshes,
// so degree drift from edits reaches the iteration only through the
// adjacency operator, not through a re-decomposed prior. Re-deriving the
// prior would re-materialize the dense ns×nd matrix per batch and forfeit
// the speedup; small edit batches perturb its leading singular triplets
// marginally. A new source fingerprint or a changed node count on either
// side recaptures everything.

// refreshState is the captured factor bundle RefreshFactorsCtx re-iterates
// across edit batches. f is owned by the state (callers get clones); its
// Vs[c·(iters+1)] entries are the frozen prior components and are never
// overwritten in place.
type refreshState struct {
	srcKey, dstKey string
	ns, nd         int
	iters, comps   int
	f              *assign.FactorEmbedding
}

// RefreshFactorsCtx implements algo.IncrementalFactorer: FactorsCtx
// semantics against the current target, reusing the previous capture's
// source iterates and frozen prior components. An unchanged target
// fingerprint returns the previous bundle bitwise.
func (n *NSD) RefreshFactorsCtx(ctx context.Context, src, dst *graph.Graph) (*assign.FactorEmbedding, error) {
	srcKey, dstKey := cache.GraphKey(src), cache.GraphKey(dst)
	st := n.state
	if st == nil || st.srcKey != srcKey || st.ns != src.N() || st.nd != dst.N() {
		return n.recapture(ctx, src, dst, srcKey, dstKey)
	}
	if st.dstKey == dstKey {
		return st.f.Clone(), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tDst := cache.RowNormalizedAdjacency(n.cache, dst)
	for c := 0; c < st.comps; c++ {
		base := c * (st.iters + 1)
		// MulVec returns fresh slices, so the frozen w_c^(0) at Vs[base] and
		// every already-stored iterate stay untouched.
		w := st.f.Vs[base]
		for k := 1; k <= st.iters; k++ {
			w = tDst.MulVec(w)
			st.f.Vs[base+k] = w
		}
	}
	st.dstKey = dstKey
	return st.f.Clone(), nil
}

// recapture runs the full pipeline (dense prior, truncated SVD, both
// iterations) and replaces the instance state. It deliberately bypasses the
// artifact-cache memoization: an evolving target mints a new pair key per
// batch, and caching those bundles would only churn the budget.
func (n *NSD) recapture(ctx context.Context, src, dst *graph.Graph, srcKey, dstKey string) (*assign.FactorEmbedding, error) {
	f, err := n.computeFactors(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	iters := n.Iters
	if iters <= 0 {
		iters = 15
	}
	n.state = &refreshState{
		srcKey: srcKey, dstKey: dstKey,
		ns: src.N(), nd: dst.N(),
		iters: iters, comps: len(f.Us) / (iters + 1),
		f: f.Clone(),
	}
	return f, nil
}
