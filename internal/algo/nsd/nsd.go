// Package nsd implements Network Similarity Decomposition (Kollias,
// Mohammadi, Grama 2011): a rank-decomposed approximation of the IsoRank
// iteration. Instead of iterating on the full n x m similarity matrix, NSD
// iterates component vectors w and z through the degree-normalized
// adjacency operators and combines their outer products (Equations 3–5 of
// the survey).
package nsd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"graphalign/internal/algo"
	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/linalg"
	"graphalign/internal/matrix"
)

// NSD aligns graphs via the decomposed IsoRank power series.
type NSD struct {
	// Alpha is the damping factor of the power series; the study tunes 0.8.
	Alpha float64
	// Iters is the number n of power-series terms.
	Iters int
	// Components is the number s of rank-one components drawn from the
	// prior's SVD. With a degree prior the first components dominate.
	Components int

	// cache holds the shared artifact cache (algo.Cacheable); nil computes
	// everything locally. NSD's whole similarity matrix is a deterministic
	// function of (src, dst, Alpha, Iters, Components) — the SVD RNG is
	// fixed-seeded — so the full result is cached per pair, which also lets
	// CONE's NSD warm start share it.
	cache *cache.Cache

	// state is the last full capture RefreshFactorsCtx re-iterates
	// incrementally; nil until the first refresh call. Instances used through
	// the refresher carry pair-specific state and must not be shared
	// (algo.IncrementalFactorer's contract).
	state *refreshState
}

// SetCache implements algo.Cacheable.
func (n *NSD) SetCache(c *cache.Cache) { n.cache = c }

// New returns NSD with the study's tuned hyperparameters.
func New() *NSD {
	return &NSD{Alpha: 0.8, Iters: 15, Components: 3}
}

// Name implements algo.Aligner.
func (n *NSD) Name() string { return "NSD" }

// DefaultAssignment implements algo.Aligner; NSD was proposed with
// SortGreedy.
func (n *NSD) DefaultAssignment() assign.Method { return assign.SortGreedy }

// Similarity implements algo.Aligner. The prior matrix H = w zᵀ is the
// degree-similarity prior of the study, decomposed into its top
// s singular triplets; each component is iterated independently:
//
//	X_i^(n) = (1-alpha) sum_k alpha^k w_i^(k) z_i^(k)ᵀ + alpha^n w_i^(n) z_i^(n)ᵀ
//
// with w_i^(k) = (D_dst^-1 A_dst)^k w_i and z_i^(k) = (D_src^-1 A_src)^k z_i.
func (n *NSD) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return n.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner; ctx is threaded into the
// prior's truncated SVD and checked once per power-series term. With a
// cache attached the whole similarity matrix is memoized per (pair, params)
// and a private clone is returned, so callers stay free to mutate it.
func (n *NSD) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	if n.cache == nil {
		return n.computeSimilarity(ctx, src, dst)
	}
	key := fmt.Sprintf("%s/nsdsim/a%g/i%d/c%d", cache.PairKey(src, dst), n.Alpha, n.Iters, n.Components)
	v, err := n.cache.GetOrCompute(ctx, key, func() (any, int64, error) {
		m, err := n.computeSimilarity(ctx, src, dst)
		if err != nil {
			return nil, 0, err
		}
		return m, cache.DenseBytes(m), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*matrix.Dense).Clone(), nil
}

// computeSimilarity is the uncached NSD pipeline: the factored power series
// densified term by term. Densification runs the same AddOuterScaled calls
// in the same term order as FactorEmbedding.Similarity, so the dense and
// factored paths agree bitwise.
func (n *NSD) computeSimilarity(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	f, err := n.computeFactors(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	return f.Similarity(), nil
}

// computeFactors runs the NSD iteration but keeps the result in factored
// form: one rank-one term (z_c^(k), w_c^(k), weight) per component c and
// power-series index k, in the accumulation order of the original dense
// loop. Components x (Iters+1) terms in total.
func (n *NSD) computeFactors(ctx context.Context, src, dst *graph.Graph) (*assign.FactorEmbedding, error) {
	ns, nd := src.N(), dst.N()
	if ns == 0 || nd == 0 {
		return nil, errors.New("nsd: empty graph")
	}
	iters := n.Iters
	if iters <= 0 {
		iters = 15
	}
	comps := n.Components
	if comps <= 0 {
		comps = 1
	}

	prior := algo.DegreePriorCached(n.cache, src, dst) // ns x nd, shared: read-only
	// Top-s SVD of the prior gives the component vectors: prior ≈
	// Σ s_i u_i v_iᵀ, so z_i = sqrt(s_i) u_i (source side) and w_i =
	// sqrt(s_i) v_i (target side). The prior's spectrum decays fast, so the
	// randomized truncated SVD recovers the leading triplets at O(n^2 s)
	// cost (the full Jacobi SVD would dominate NSD's runtime).
	rng := rand.New(rand.NewSource(1))
	u, sv, v, err := linalg.TruncatedSVDCtx(ctx, prior, comps, 3, rng)
	if err != nil {
		return nil, err
	}
	if len(sv) == 0 {
		return nil, errors.New("nsd: degenerate prior")
	}

	tSrc := cache.RowNormalizedAdjacency(n.cache, src)
	tDst := cache.RowNormalizedAdjacency(n.cache, dst)

	f := &assign.FactorEmbedding{}
	alpha := n.Alpha
	for c := 0; c < len(sv); c++ {
		scale := sqrtAbs(sv[c])
		z := make([]float64, ns)
		w := make([]float64, nd)
		for i := 0; i < ns; i++ {
			z[i] = scale * u.At(i, c)
		}
		for j := 0; j < nd; j++ {
			w[j] = scale * v.At(j, c)
		}
		coef := 1 - alpha
		ak := 1.0
		for k := 0; k <= iters; k++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			weight := coef * ak
			if k == iters {
				weight = ak // the closing alpha^n term
			}
			// MulVec returns fresh slices, so the appended z and w stay
			// untouched by later iterations.
			f.Us = append(f.Us, z)
			f.Vs = append(f.Vs, w)
			f.Weights = append(f.Weights, weight)
			if k == iters {
				break
			}
			z = tSrc.MulVec(z)
			w = tDst.MulVec(w)
			ak *= alpha
		}
	}
	return f, nil
}

// FactorsCtx implements algo.FactorAligner: the NSD power series in its
// natural factored form, Components x (Iters+1) rank-one terms whose
// densification is bitwise SimilarityCtx's result. With a cache attached the
// factor bundle is memoized per (pair, params) — under its own key, distinct
// from the densified nsdsim entry — and a deep clone is returned.
func (n *NSD) FactorsCtx(ctx context.Context, src, dst *graph.Graph) (*assign.FactorEmbedding, error) {
	if n.cache == nil {
		return n.computeFactors(ctx, src, dst)
	}
	key := fmt.Sprintf("%s/nsdfac/a%g/i%d/c%d", cache.PairKey(src, dst), n.Alpha, n.Iters, n.Components)
	v, err := n.cache.GetOrCompute(ctx, key, func() (any, int64, error) {
		f, err := n.computeFactors(ctx, src, dst)
		if err != nil {
			return nil, 0, err
		}
		return f, f.Bytes(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*assign.FactorEmbedding).Clone(), nil
}

func sqrtAbs(x float64) float64 {
	return math.Sqrt(math.Abs(x))
}
