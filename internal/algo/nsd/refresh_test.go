package nsd

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/noise"
)

func refreshPair(t *testing.T, n int, seed int64) (*graph.Graph, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src := gen.ErdosRenyi(n, 8/float64(n), rng)
	pair, err := noise.Apply(src, noise.OneWay, 0.05, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return pair.Source, pair.Target
}

// The first refresh call is the full pipeline (bitwise FactorsCtx), and an
// unchanged target reproduces it bitwise.
func TestRefreshFirstCallAndNoop(t *testing.T) {
	src, dst := refreshPair(t, 50, 31)
	ctx := context.Background()
	n := New()
	got, err := n.RefreshFactorsCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New().FactorsCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("first refresh differs from the batch pipeline")
	}
	again, err := n.RefreshFactorsCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Fatal("unchanged target did not reproduce the previous factors bitwise")
	}
	if &again.Us[0][0] == &got.Us[0][0] {
		t.Fatal("refresh aliases previously returned storage")
	}
}

// Across target edits the source iterates and the frozen prior components
// must stay bitwise static — only the downstream w iterates may move.
func TestRefreshKeepsSourceSideStatic(t *testing.T) {
	src, dst := refreshPair(t, 50, 32)
	ctx := context.Background()
	n := New()
	prev, err := n.RefreshFactorsCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	iters := n.Iters
	comps := len(prev.Us) / (iters + 1)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 3; step++ {
		batch, err := noise.EditBatch(dst, 0.02, rng)
		if err != nil {
			t.Fatal(err)
		}
		dst, err = graph.ApplyEdits(dst, batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := n.RefreshFactorsCtx(ctx, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Us, prev.Us) {
			t.Fatalf("step %d: source iterates moved on a target edit", step)
		}
		if !reflect.DeepEqual(got.Weights, prev.Weights) {
			t.Fatalf("step %d: term weights moved", step)
		}
		for c := 0; c < comps; c++ {
			if !reflect.DeepEqual(got.Vs[c*(iters+1)], prev.Vs[c*(iters+1)]) {
				t.Fatalf("step %d: frozen prior component %d moved", step, c)
			}
		}
		prev = got
	}
}

// A new source graph invalidates the capture: the refresher must fall back
// to the full pipeline (fresh prior, fresh SVD) for the new pair.
func TestRefreshSourceChangeRecaptures(t *testing.T) {
	src, dst := refreshPair(t, 40, 33)
	src2, _ := refreshPair(t, 40, 34)
	ctx := context.Background()
	n := New()
	if _, err := n.RefreshFactorsCtx(ctx, src, dst); err != nil {
		t.Fatal(err)
	}
	got, err := n.RefreshFactorsCtx(ctx, src2, dst)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New().FactorsCtx(ctx, src2, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("source change did not recapture the full pipeline")
	}
}
