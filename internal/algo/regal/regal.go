// Package regal implements REGAL (Heimann, Shen, Safavi, Koutra 2018):
// representation-learning-based graph alignment via the xNetMF embedding.
//
// Each node gets a structural signature counting the log-bucketed degrees
// of its k-hop neighborhoods with discount delta (Equation 8). Signatures
// from both graphs are embedded jointly with a Nyström-style low-rank
// factorization against p random landmark nodes (p = 10 log2 n), and
// alignments are extracted by nearest-neighbor search over the embeddings
// (Equation 10), here one-to-one as the study requires.
package regal

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/linalg"
	"graphalign/internal/matrix"
)

// REGAL aligns graphs via xNetMF structural embeddings.
type REGAL struct {
	// K is the maximum hop distance of the structural signature (paper: 2).
	K int
	// Delta is the per-hop discount factor (paper's default 0.01... the
	// study keeps the original 0.1 scaling of far neighborhoods).
	Delta float64
	// GammaStruc weighs structural distance in the similarity kernel.
	GammaStruc float64
	// LandmarksFactor scales the landmark count p = factor * log2(n)
	// (paper: 10).
	LandmarksFactor float64
	// Seed drives landmark sampling.
	Seed int64
	// RefreshTol bounds the relative structural-signature drift
	// RefreshEmbeddingsCtx absorbs without reprojecting a node: a node whose
	// signature moved by at most this relative amount keeps its previous
	// embedding row bitwise. 0 reprojects on any change (exact signatures,
	// still incremental); the algo.IncrementalEmbedder contract allows the
	// bounded staleness a positive tolerance introduces.
	RefreshTol float64

	// cache holds the shared artifact cache (algo.Cacheable); nil computes
	// everything locally. REGAL's embedding is joint over the (src, dst)
	// pair (shared landmarks), so the whole similarity matrix — a
	// deterministic function of (pair, params) — is the cached unit; this
	// also lets CONE's REGAL warm start share it.
	cache *cache.Cache

	// state is the last full pipeline capture RefreshEmbeddingsCtx patches
	// incrementally; nil until the first refresh call. Instances used through
	// the refresher carry pair-specific state and must not be shared
	// (algo.IncrementalEmbedder's contract).
	state *refreshState
}

// SetCache implements algo.Cacheable.
func (r *REGAL) SetCache(c *cache.Cache) { r.cache = c }

// New returns REGAL with the study's tuned hyperparameters (k=2,
// p = 10 log n).
func New() *REGAL {
	return &REGAL{K: 2, Delta: 0.1, GammaStruc: 1, LandmarksFactor: 10, Seed: 1, RefreshTol: 1e-2}
}

// Name implements algo.Aligner.
func (r *REGAL) Name() string { return "REGAL" }

// DefaultAssignment implements algo.Aligner; REGAL extracts alignments by
// nearest neighbor.
func (r *REGAL) DefaultAssignment() assign.Method { return assign.NearestNeighbor }

// Embed computes xNetMF embeddings for both graphs jointly and returns the
// two embedding matrices (rows are nodes).
func (r *REGAL) Embed(src, dst *graph.Graph) (ySrc, yDst *matrix.Dense, err error) {
	return r.EmbedCtx(context.Background(), src, dst)
}

// EmbedCtx is Embed with cooperative cancellation checked between the
// signature, kernel, and factorization stages and threaded into the SVDs.
func (r *REGAL) EmbedCtx(ctx context.Context, src, dst *graph.Graph) (ySrc, yDst *matrix.Dense, err error) {
	st, err := r.embedState(ctx, src, dst)
	if err != nil {
		return nil, nil, err
	}
	return st.ySrc, st.yDst, nil
}

// bucketCount is the number of log-degree histogram buckets for a given
// maximum degree (Equation 8's log binning).
func bucketCount(maxDeg int) int {
	buckets := int(math.Log2(float64(maxDeg))) + 1
	if buckets < 1 {
		buckets = 1
	}
	return buckets
}

// signatureRow writes node u's structural signature — the delta-discounted
// log-bucketed degree histogram of its k-hop neighborhoods — into row,
// zeroing it first. The accumulation order matches the original joint fill
// exactly, so recomputed rows are bitwise comparable against stored ones.
func (r *REGAL) signatureRow(g *graph.Graph, u, buckets int, row []float64) {
	for i := range row {
		row[i] = 0
	}
	hops := graph.KHopNeighborhoods(g, u, r.K)
	w := 1.0
	for _, hop := range hops {
		for _, v := range hop {
			d := g.Degree(v)
			if d < 1 {
				continue
			}
			b := int(math.Log2(float64(d)))
			if b >= buckets {
				b = buckets - 1
			}
			row[b] += w
		}
		w *= r.Delta
	}
}

// regalSim is the landmark similarity kernel exp(-gamma·||sig_i - sig_l||²),
// accumulated dimension-ascending so refreshed C entries reproduce the full
// pipeline's values bitwise.
func regalSim(sig *matrix.Dense, i, l int, gamma float64) float64 {
	var d2 float64
	ri, rl := sig.Row(i), sig.Row(l)
	for k := range ri {
		d := ri[k] - rl[k]
		d2 += d * d
	}
	return math.Exp(-gamma * d2)
}

// embedState runs the full xNetMF pipeline and returns every intermediate
// the incremental refresher needs alongside the embeddings: the joint
// signature matrix, the landmark set, and the Nyström projection. EmbedCtx
// uses it as the plain batch path; RefreshEmbeddingsCtx keeps the returned
// state on the instance and patches it in place across edit batches.
func (r *REGAL) embedState(ctx context.Context, src, dst *graph.Graph) (*refreshState, error) {
	n1, n2 := src.N(), dst.N()
	if n1 == 0 || n2 == 0 {
		return nil, errors.New("regal: empty graph")
	}
	total := n1 + n2
	maxDeg := src.MaxDegree()
	if d := dst.MaxDegree(); d > maxDeg {
		maxDeg = d
	}
	buckets := bucketCount(maxDeg)
	sig := matrix.NewDense(total, buckets)
	for u := 0; u < n1; u++ {
		r.signatureRow(src, u, buckets, sig.Row(u))
	}
	for u := 0; u < n2; u++ {
		r.signatureRow(dst, u, buckets, sig.Row(n1+u))
	}

	// Landmark selection over the union.
	p := int(r.LandmarksFactor*math.Log2(float64(total))) + 1
	if p > total {
		p = total
	}
	rng := rand.New(rand.NewSource(r.Seed))
	landmarks := rng.Perm(total)[:p]

	// C: node-to-landmark similarity; W: landmark-to-landmark.
	c := matrix.NewDense(total, p)
	for i := 0; i < total; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := c.Row(i)
		for j, l := range landmarks {
			row[j] = regalSim(sig, i, l, r.GammaStruc)
		}
	}
	w := matrix.NewDense(p, p)
	for a, la := range landmarks {
		for b, lb := range landmarks {
			w.Set(a, b, regalSim(sig, la, lb, r.GammaStruc))
		}
	}
	// Nyström: S ~ C W† Cᵀ; embeddings Y = C U Σ^-1/2 from the SVD of W†.
	wPinv, err := linalg.PseudoInverseCtx(ctx, w, 1e-10)
	if err != nil {
		return nil, err
	}
	u, s, _, err := linalg.SVDAnyCtx(ctx, wPinv)
	if err != nil {
		return nil, err
	}
	// Scale columns by sqrt of singular values.
	scaled := matrix.NewDense(p, len(s))
	for j, sv := range s {
		f := math.Sqrt(math.Max(sv, 0))
		for i := 0; i < p; i++ {
			scaled.Set(i, j, u.At(i, j)*f)
		}
	}
	y := matrix.Mul(c, scaled) // total x p
	// Row-normalize embeddings as xNetMF does before matching.
	for i := 0; i < total; i++ {
		matrix.Normalize(y.Row(i))
	}
	ySrc := matrix.NewDense(n1, y.Cols)
	yDst := matrix.NewDense(n2, y.Cols)
	copy(ySrc.Data, y.Data[:n1*y.Cols])
	copy(yDst.Data, y.Data[n1*y.Cols:])
	return &refreshState{
		srcKey: cache.GraphKey(src), dstKey: cache.GraphKey(dst),
		n1: n1, n2: n2, buckets: buckets,
		sig: sig, landmarks: landmarks, scaled: scaled,
		ySrc: ySrc, yDst: yDst,
	}, nil
}

// Similarity implements algo.Aligner: sim(u, v) = exp(-||y_u - y_v||²).
func (r *REGAL) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return r.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner. With a cache attached the
// whole similarity matrix is memoized per (pair, params) and a private clone
// is returned, so callers stay free to mutate it.
func (r *REGAL) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	if r.cache == nil {
		return r.computeSimilarity(ctx, src, dst)
	}
	key := fmt.Sprintf("%s/regalsim/k%d/d%g/g%g/l%g/s%d", cache.PairKey(src, dst), r.K, r.Delta, r.GammaStruc, r.LandmarksFactor, r.Seed)
	v, err := r.cache.GetOrCompute(ctx, key, func() (any, int64, error) {
		m, err := r.computeSimilarity(ctx, src, dst)
		if err != nil {
			return nil, 0, err
		}
		return m, cache.DenseBytes(m), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*matrix.Dense).Clone(), nil
}

// computeSimilarity is the uncached REGAL pipeline.
func (r *REGAL) computeSimilarity(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	ySrc, yDst, err := r.EmbedCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	return EmbeddingSimilarity(ySrc, yDst), nil
}

// EmbeddingsCtx implements algo.EmbeddingAligner: the xNetMF embeddings in
// factored form with REGAL's exp(-d²) kernel, for the sparse assignment
// pipeline's k-NN candidate search. Materializing the returned Embedding
// reproduces SimilarityCtx exactly (same squared-distance accumulation
// order). With a cache attached the embedding pair is memoized per
// (pair, params) — sharing the dominant cost across assignment methods and
// reps — and private clones are returned.
func (r *REGAL) EmbeddingsCtx(ctx context.Context, src, dst *graph.Graph) (*assign.Embedding, error) {
	ySrc, yDst, err := r.embedCached(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	return &assign.Embedding{Src: ySrc, Dst: yDst, SimFromDist2: ExpKernel}, nil
}

// embedCached is EmbedCtx drawn through the artifact cache (private clones
// returned); a nil cache computes directly.
func (r *REGAL) embedCached(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, *matrix.Dense, error) {
	if r.cache == nil {
		return r.EmbedCtx(ctx, src, dst)
	}
	key := fmt.Sprintf("%s/regalemb/k%d/d%g/g%g/l%g/s%d", cache.PairKey(src, dst), r.K, r.Delta, r.GammaStruc, r.LandmarksFactor, r.Seed)
	v, err := r.cache.GetOrCompute(ctx, key, func() (any, int64, error) {
		ySrc, yDst, err := r.EmbedCtx(ctx, src, dst)
		if err != nil {
			return nil, 0, err
		}
		return [2]*matrix.Dense{ySrc, yDst}, cache.DenseBytes(ySrc) + cache.DenseBytes(yDst), nil
	})
	if err != nil {
		return nil, nil, err
	}
	pairY := v.([2]*matrix.Dense)
	return pairY[0].Clone(), pairY[1].Clone(), nil
}

// ExpKernel is the distance-to-similarity map REGAL and CONE extract
// alignments with: sim = exp(-d²). Monotone non-increasing, as the sparse
// candidate search requires.
func ExpKernel(d2 float64) float64 { return math.Exp(-d2) }

// EmbeddingSimilarity converts two embedding matrices into the similarity
// matrix exp(-squared Euclidean distance) used by REGAL and CONE. The
// squared distances come from the shared row-blocked kernel, keeping results
// bitwise identical to the original serial loop for any worker count.
func EmbeddingSimilarity(ySrc, yDst *matrix.Dense) *matrix.Dense {
	sim := matrix.PairwiseSqDist(ySrc, yDst)
	for i, d2 := range sim.Data {
		sim.Data[i] = ExpKernel(d2)
	}
	return sim
}
