package regal

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
	"graphalign/internal/noise"
)

func refreshPair(t *testing.T, n int, seed int64) (*graph.Graph, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src := gen.ErdosRenyi(n, 8/float64(n), rng)
	pair, err := noise.Apply(src, noise.OneWay, 0.05, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return pair.Source, pair.Target
}

// The first refresh call is the full pipeline: it must match EmbeddingsCtx
// bitwise, and an unchanged target must reproduce it bitwise (the
// algo.IncrementalEmbedder noop contract).
func TestRefreshFirstCallAndNoop(t *testing.T) {
	src, dst := refreshPair(t, 60, 21)
	ctx := context.Background()
	r := New()
	got, err := r.RefreshEmbeddingsCtx(ctx, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New().EmbeddingsCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Src, want.Src) || !reflect.DeepEqual(got.Dst, want.Dst) {
		t.Fatal("first refresh differs from the batch pipeline")
	}
	again, err := r.RefreshEmbeddingsCtx(ctx, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Src, got.Src) || !reflect.DeepEqual(again.Dst, got.Dst) {
		t.Fatal("unchanged target did not reproduce the previous embeddings bitwise")
	}
	if &again.Dst.Data[0] == &got.Dst.Data[0] {
		t.Fatal("refresh aliases previously returned storage")
	}
}

// projectPinned recomputes what the refresher must store for joint node
// index i under the pinned basis: the landmark-kernel row against the
// captured signatures, pushed through the captured projection and
// normalized — the test's independent replay of the reprojection math.
func projectPinned(r *REGAL, st *refreshState, i int) []float64 {
	y := make([]float64, st.scaled.Cols)
	for j, l := range st.landmarks {
		v := regalSim(st.sig, i, l, r.GammaStruc)
		if v == 0 {
			continue
		}
		sRow := st.scaled.Row(j)
		for k, s := range sRow {
			y[k] += v * s
		}
	}
	matrix.Normalize(y)
	return y
}

// With RefreshTol 0 every target row after an edit batch is either bitwise
// its previous value (signature unchanged, or a pinned landmark) or exactly
// the pinned-basis reprojection of its new signature — nothing in between —
// and the source side never moves.
func TestRefreshReprojectionExact(t *testing.T) {
	src, dst := refreshPair(t, 60, 22)
	ctx := context.Background()
	r := New()
	r.RefreshTol = 0
	prev, err := r.RefreshEmbeddingsCtx(ctx, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 3; step++ {
		batch, err := noise.EditBatch(dst, 0.02, rng)
		if err != nil {
			t.Fatal(err)
		}
		dst, err = graph.ApplyEdits(dst, batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.RefreshEmbeddingsCtx(ctx, src, dst, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Src, prev.Src) {
			t.Fatalf("step %d: source embeddings moved on a target edit", step)
		}
		moved := 0
		for u := 0; u < dst.N(); u++ {
			row := got.Dst.Row(u)
			if reflect.DeepEqual(row, prev.Dst.Row(u)) {
				continue
			}
			moved++
			if want := projectPinned(r, r.state, src.N()+u); !reflect.DeepEqual(row, want) {
				t.Fatalf("step %d: row %d is neither its previous value nor the exact reprojection", step, u)
			}
		}
		if moved == 0 {
			t.Fatalf("step %d: no row moved under tol 0 after a real edit batch", step)
		}
		prev = got
	}
}

// An all-false scope pins every signature, so the embeddings come back
// bitwise unchanged regardless of the edits — the scope is the caller's
// staleness bound and the refresher must honor it.
func TestRefreshScopeBoundsWork(t *testing.T) {
	src, dst := refreshPair(t, 60, 23)
	ctx := context.Background()
	r := New()
	prev, err := r.RefreshEmbeddingsCtx(ctx, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	batch, err := noise.EditBatch(dst, 0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	dst2, err := graph.ApplyEdits(dst, batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.RefreshEmbeddingsCtx(ctx, src, dst2, make([]bool, dst2.N()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Src, prev.Src) || !reflect.DeepEqual(got.Dst, prev.Dst) {
		t.Fatal("empty scope still moved embedding rows")
	}
}

// A new source graph invalidates the captured state: the refresher must fall
// back to the full pipeline for the new pair.
func TestRefreshSourceChangeRecaptures(t *testing.T) {
	src, dst := refreshPair(t, 50, 24)
	src2, _ := refreshPair(t, 50, 25)
	ctx := context.Background()
	r := New()
	if _, err := r.RefreshEmbeddingsCtx(ctx, src, dst, nil); err != nil {
		t.Fatal(err)
	}
	got, err := r.RefreshEmbeddingsCtx(ctx, src2, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New().EmbeddingsCtx(ctx, src2, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Src, want.Src) || !reflect.DeepEqual(got.Dst, want.Dst) {
		t.Fatal("source change did not recapture the full pipeline")
	}
}
