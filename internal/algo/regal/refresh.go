package regal

import (
	"context"
	"math"

	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

// This file implements algo.IncrementalEmbedder for REGAL. The xNetMF
// pipeline splits naturally at the signature matrix: everything downstream
// of a node's signature row (its landmark-similarity row and its projected,
// normalized embedding row) depends only on that row plus the landmark
// signatures and the Nyström projection. A refresh therefore recomputes
// signatures only inside the caller's dirty scope, reprojects the rows that
// drifted past RefreshTol, and keeps every other embedding row bitwise —
// turning the dominant per-apply cost from O((n1+n2)·p·d) into
// O(|scope|·deg^K + |drifted|·p·d).
//
// The Nyström basis itself — the landmark signatures, the kernel matrix W
// and the projection derived from its SVD — is pinned at the last full
// capture: target-side landmarks keep their captured signature (and hence
// their captured embedding row) even when edits move their neighborhoods.
// Re-deriving the basis whenever any of the ~10·log2(n) landmarks drifts
// would recapture on virtually every batch (each landmark shadows a K-hop
// zone, and the zones jointly cover most of the graph), forfeiting
// incrementality; pinning instead bounds each refreshed row's error by the
// basis's own staleness, which the algo.IncrementalEmbedder contract
// allows. Fallbacks that do recapture the full pipeline: a new source
// fingerprint, a changed node count, or a changed bucket count (the
// signature histograms become incomparable).

// refreshState is the captured xNetMF pipeline RefreshEmbeddingsCtx patches
// across edit batches.
type refreshState struct {
	srcKey, dstKey string
	n1, n2         int
	buckets        int
	sig            *matrix.Dense // (n1+n2) × buckets joint signatures
	landmarks      []int         // indices into the joint node set
	scaled         *matrix.Dense // p × rank Nyström projection (C row → y row)
	ySrc, yDst     *matrix.Dense // current normalized embeddings
	// pinned flags the target-side landmarks: their signatures anchor the
	// captured basis and are never refreshed in place (lazily built on the
	// first refresh).
	pinned []bool
}

// pinnedDst returns the target-side landmark flags, building them on first
// use.
func (st *refreshState) pinnedDst() []bool {
	if st.pinned == nil {
		st.pinned = make([]bool, st.n2)
		for _, l := range st.landmarks {
			if l >= st.n1 {
				st.pinned[l-st.n1] = true
			}
		}
	}
	return st.pinned
}

// embedding returns the state's embeddings as a private assign.Embedding
// (clones, so callers may mutate freely; repeated calls on unchanged state
// are bitwise identical).
func (st *refreshState) embedding() *assign.Embedding {
	return &assign.Embedding{Src: st.ySrc.Clone(), Dst: st.yDst.Clone(), SimFromDist2: ExpKernel}
}

// sigDrifted reports whether a recomputed signature row moved beyond tol
// relative to the stored one: tol <= 0 means any bitwise difference, a
// positive tol compares the largest absolute difference against the largest
// magnitude (the same relative metric the incremental session applies to
// embedding rows).
func sigDrifted(old, fresh []float64, tol float64) bool {
	if tol <= 0 {
		for i := range old {
			if old[i] != fresh[i] {
				return true
			}
		}
		return false
	}
	var maxDiff, maxAbs float64
	for i := range old {
		if d := math.Abs(old[i] - fresh[i]); d > maxDiff {
			maxDiff = d
		}
		if a := math.Abs(old[i]); a > maxAbs {
			maxAbs = a
		}
		if a := math.Abs(fresh[i]); a > maxAbs {
			maxAbs = a
		}
	}
	return maxDiff/(maxAbs+1e-12) > tol
}

// RefreshEmbeddingsCtx implements algo.IncrementalEmbedder: EmbeddingsCtx
// semantics, but reusing the previous capture where the target's edits
// cannot have reached. scope (nil = all) flags the target nodes whose
// signatures may have changed — for REGAL that is every node within K hops
// of an edited edge's endpoints. An unchanged target fingerprint returns the
// previous embeddings bitwise; see the file comment for the full-recapture
// fallbacks.
func (r *REGAL) RefreshEmbeddingsCtx(ctx context.Context, src, dst *graph.Graph, scope []bool) (*assign.Embedding, error) {
	srcKey, dstKey := cache.GraphKey(src), cache.GraphKey(dst)
	st := r.state
	if st == nil || st.srcKey != srcKey || st.n2 != dst.N() {
		return r.recapture(ctx, src, dst)
	}
	if st.dstKey == dstKey {
		return st.embedding(), nil
	}
	maxDeg := src.MaxDegree()
	if d := dst.MaxDegree(); d > maxDeg {
		maxDeg = d
	}
	if bucketCount(maxDeg) != st.buckets {
		return r.recapture(ctx, src, dst)
	}

	// Recompute signatures inside the scope; only rows that drift past
	// RefreshTol are reprojected (their old signature stays authoritative
	// otherwise, keeping C consistent with the stored projection). Landmarks
	// are pinned — see the file comment.
	pinned := st.pinnedDst()
	fresh := make([]float64, st.buckets)
	var drifted []int
	for u := 0; u < st.n2; u++ {
		if pinned[u] || (scope != nil && !scope[u]) {
			continue
		}
		r.signatureRow(dst, u, st.buckets, fresh)
		old := st.sig.Row(st.n1 + u)
		if !sigDrifted(old, fresh, r.RefreshTol) {
			continue
		}
		copy(old, fresh)
		drifted = append(drifted, u)
	}
	if len(drifted) == 0 {
		st.dstKey = dstKey
		return st.embedding(), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Reproject the drifted rows: C row against the (unchanged) landmark
	// signatures, then y = C·scaled with matrix.Mul's accumulation order and
	// the usual row normalization — bitwise what the full pipeline would
	// store for the same signature row.
	cRow := make([]float64, len(st.landmarks))
	for _, u := range drifted {
		i := st.n1 + u
		for j, l := range st.landmarks {
			cRow[j] = regalSim(st.sig, i, l, r.GammaStruc)
		}
		yRow := st.yDst.Row(u)
		for k := range yRow {
			yRow[k] = 0
		}
		for j, v := range cRow {
			if v == 0 {
				continue
			}
			sRow := st.scaled.Row(j)
			for k, s := range sRow {
				yRow[k] += v * s
			}
		}
		matrix.Normalize(yRow)
	}
	st.dstKey = dstKey
	return st.embedding(), nil
}

// recapture runs the full pipeline and replaces the instance state.
func (r *REGAL) recapture(ctx context.Context, src, dst *graph.Graph) (*assign.Embedding, error) {
	st, err := r.embedState(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	r.state = st
	return st.embedding(), nil
}
