package regal

import (
	"math"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/matrix"
)

func TestRecoversIsomorphism(t *testing.T) {
	algotest.CheckRecovers(t, New(), 80, 0.9)
}

func TestDeterministic(t *testing.T) {
	algotest.CheckDeterministic(t, func() algo.Aligner { return New() }, 50)
}

func TestShape(t *testing.T) {
	algotest.CheckShape(t, New())
}

func TestDefaultAssignment(t *testing.T) {
	if New().DefaultAssignment() != assign.NearestNeighbor {
		t.Error("REGAL extracts alignments by nearest neighbor")
	}
}

func TestEmbedShapesAndNorms(t *testing.T) {
	p := algotest.Pair(t, 50, 0, 11)
	ySrc, yDst, err := New().Embed(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	if ySrc.Rows != p.Source.N() || yDst.Rows != p.Target.N() {
		t.Fatalf("embedding rows %d/%d", ySrc.Rows, yDst.Rows)
	}
	if ySrc.Cols != yDst.Cols {
		t.Fatal("embedding dims differ between graphs")
	}
	// Rows are normalized (or zero).
	for i := 0; i < ySrc.Rows; i++ {
		n := matrix.Norm2(ySrc.Row(i))
		if n > 1e-9 && math.Abs(n-1) > 1e-9 {
			t.Fatalf("row %d norm = %v", i, n)
		}
	}
}

func TestEmbeddingSimilarityRange(t *testing.T) {
	a := matrix.DenseFromRows([][]float64{{1, 0}, {0, 1}})
	b := matrix.DenseFromRows([][]float64{{1, 0}})
	sim := EmbeddingSimilarity(a, b)
	if sim.Rows != 2 || sim.Cols != 1 {
		t.Fatal("similarity shape wrong")
	}
	if sim.At(0, 0) != 1 {
		t.Errorf("identical embeddings should have similarity 1, got %v", sim.At(0, 0))
	}
	if sim.At(1, 0) >= 1 || sim.At(1, 0) <= 0 {
		t.Errorf("distinct embeddings similarity %v out of (0,1)", sim.At(1, 0))
	}
}

func TestKAffectsSignatures(t *testing.T) {
	// K=1 uses only direct neighbors; K=2 adds the discounted 2-hop ring.
	// Both should recover an isomorphic instance reasonably, and they must
	// produce different similarity matrices on a non-regular graph.
	p := algotest.Pair(t, 40, 0, 13)
	r1 := New()
	r1.K = 1
	r2 := New()
	r2.K = 2
	s1, err := r1.Similarity(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r2.Similarity(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range s1.Data {
		if math.Abs(s1.Data[i]-s2.Data[i]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Error("K=1 and K=2 similarities identical; hop discount ignored")
	}
}

func TestSeedChangesLandmarksNotQuality(t *testing.T) {
	p := algotest.Pair(t, 60, 0, 14)
	a := New()
	a.Seed = 1
	b := New()
	b.Seed = 2
	accA := algotest.Accuracy(t, a, p, assign.JonkerVolgenant)
	accB := algotest.Accuracy(t, b, p, assign.JonkerVolgenant)
	if accA < 0.5 || accB < 0.5 {
		t.Errorf("landmark choice destroyed recovery: %.2f / %.2f", accA, accB)
	}
}
