// Package graal implements GRAAL (Kuchaiev, Milenković, Memišević, Hayes,
// Pržulj 2010): graphlet-signature-based alignment.
//
// Each node carries a graphlet degree vector (orbit counts, computed by
// internal/graphlets); the cost of matching u to v combines signature
// distance with a degree term (Equation 2 of the survey):
//
//	C(u,v) = 2 - ((1-alpha) * (deg(u)+deg(v)) / (maxdeg_A + maxdeg_B)
//	             + alpha * S(u,v))
//
// The original aligner picks the cheapest pair as a seed and extends the
// alignment over spheres around the seeds; the study adapts GRAAL to the
// common framework by exposing the similarity 2 - C and letting the shared
// assignment stage extract matchings (SortGreedy reproduces the integral
// behaviour). The seed-and-extend aligner is also provided as SeedExtend.
package graal

import (
	"context"
	"errors"
	"math"
	"sort"

	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/graphlets"
	"graphalign/internal/matrix"
)

// GRAAL aligns graphs by graphlet degree signatures.
type GRAAL struct {
	// Alpha balances signature similarity against degree similarity; the
	// study's grid search selects 0.8.
	Alpha float64

	// cache holds the shared artifact cache (algo.Cacheable); nil computes
	// everything locally. Graphlet orbit counting dominates GRAAL's runtime
	// and is a pure per-graph function, so it is the artifact cached here.
	cache *cache.Cache
}

// SetCache implements algo.Cacheable.
func (g *GRAAL) SetCache(c *cache.Cache) { g.cache = c }

// cachedCounts draws a graph's graphlet orbit counts from the artifact
// cache. The returned per-node vectors are shared: read-only.
func (g *GRAAL) cachedCounts(gr *graph.Graph) graphlets.Counts {
	v, _ := g.cache.GetOrCompute(context.Background(), cache.GraphKey(gr)+"/graphlets", func() (any, int64, error) {
		c := graphlets.Count(gr)
		var bytes int64
		for _, row := range c {
			bytes += int64(8 * len(row))
		}
		return c, bytes, nil
	})
	return v.(graphlets.Counts)
}

// New returns GRAAL with the study's tuned hyperparameter (alpha=0.8).
func New() *GRAAL {
	return &GRAAL{Alpha: 0.8}
}

// Name implements algo.Aligner.
func (g *GRAAL) Name() string { return "GRAAL" }

// DefaultAssignment implements algo.Aligner; GRAAL performs SortGreedy
// integrally.
func (g *GRAAL) DefaultAssignment() assign.Method { return assign.SortGreedy }

// SignatureSimilarity computes the GRAAL signature similarity S(u, v) in
// [0, 1] between two orbit-count vectors using the weighted relative
// distance of the original paper:
//
//	D(u,v) = sum_o w_o * |log(cu_o+1) - log(cv_o+1)| / log(max(cu_o,cv_o)+2)
//	S(u,v) = 1 - D(u,v) / sum_o w_o
func SignatureSimilarity(cu, cv []float64, weights [graphlets.NumOrbits]float64) float64 {
	var dist, wsum float64
	for o := 0; o < graphlets.NumOrbits; o++ {
		w := weights[o]
		wsum += w
		num := math.Abs(math.Log(cu[o]+1) - math.Log(cv[o]+1))
		den := math.Log(math.Max(cu[o], cv[o]) + 2)
		dist += w * num / den
	}
	if wsum == 0 {
		return 0
	}
	return 1 - dist/wsum
}

// CostMatrix returns the GRAAL cost matrix of Equation 2 (lower = better).
func (g *GRAAL) CostMatrix(src, dst *graph.Graph) (*matrix.Dense, error) {
	return g.CostMatrixCtx(context.Background(), src, dst)
}

// CostMatrixCtx is CostMatrix with cooperative cancellation checked between
// the graphlet counting stages and once per cost-matrix row.
func (g *GRAAL) CostMatrixCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	if src.N() == 0 || dst.N() == 0 {
		return nil, errors.New("graal: empty graph")
	}
	cSrc := g.cachedCounts(src)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cDst := g.cachedCounts(dst)
	weights := graphlets.OrbitWeights()
	maxSum := float64(src.MaxDegree() + dst.MaxDegree())
	if maxSum == 0 {
		maxSum = 1
	}
	alpha := g.Alpha
	n, m := src.N(), dst.N()
	cost := matrix.NewDense(n, m)
	for u := 0; u < n; u++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		du := float64(src.Degree(u))
		row := cost.Row(u)
		for v := 0; v < m; v++ {
			s := SignatureSimilarity(cSrc[u], cDst[v], weights)
			degTerm := (du + float64(dst.Degree(v))) / maxSum
			row[v] = 2 - ((1-alpha)*degTerm + alpha*s)
		}
	}
	return cost, nil
}

// Similarity implements algo.Aligner: 2 - cost, so that greedily matching
// the highest similarity equals picking the cheapest pair.
func (g *GRAAL) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return g.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner.
func (g *GRAAL) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	cost, err := g.CostMatrixCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	sim := matrix.NewDense(cost.Rows, cost.Cols)
	for i, v := range cost.Data {
		sim.Data[i] = 2 - v
	}
	return sim, nil
}

// SeedExtend runs the original GRAAL alignment strategy: repeatedly take
// the globally cheapest unmatched pair as a seed and align the spheres
// (BFS rings) around the two seeds ring-by-ring, matching nodes within a
// ring by ascending cost; leftover nodes fall back to the global greedy
// pass. Returns mapping[u] = matched node of dst.
func (g *GRAAL) SeedExtend(src, dst *graph.Graph) ([]int, error) {
	cost, err := g.CostMatrix(src, dst)
	if err != nil {
		return nil, err
	}
	n, m := src.N(), dst.N()
	if n > m {
		return nil, errors.New("graal: source larger than target")
	}
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	usedDst := make([]bool, m)
	matched := 0

	for matched < n {
		// Cheapest unmatched seed pair.
		su, sv := -1, -1
		best := math.Inf(1)
		for u := 0; u < n; u++ {
			if mapping[u] != -1 {
				continue
			}
			row := cost.Row(u)
			for v := 0; v < m; v++ {
				if usedDst[v] {
					continue
				}
				if row[v] < best {
					best = row[v]
					su, sv = u, v
				}
			}
		}
		if su == -1 {
			break
		}
		mapping[su] = sv
		usedDst[sv] = true
		matched++
		// Extend over BFS rings around the seeds.
		distU := graph.BFSDistances(src, su)
		distV := graph.BFSDistances(dst, sv)
		maxR := 0
		for _, d := range distU {
			if d > maxR {
				maxR = d
			}
		}
		for r := 1; r <= maxR; r++ {
			var ringU, ringV []int
			for u, d := range distU {
				if d == r && mapping[u] == -1 {
					ringU = append(ringU, u)
				}
			}
			for v, d := range distV {
				if d == r && !usedDst[v] {
					ringV = append(ringV, v)
				}
			}
			if len(ringU) == 0 || len(ringV) == 0 {
				continue
			}
			// Greedy within the ring by ascending cost.
			type cand struct {
				u, v int
				c    float64
			}
			var cands []cand
			for _, u := range ringU {
				for _, v := range ringV {
					cands = append(cands, cand{u, v, cost.At(u, v)})
				}
			}
			sort.Slice(cands, func(a, b int) bool {
				x, y := cands[a], cands[b]
				if x.c != y.c {
					return x.c < y.c
				}
				if x.u != y.u {
					return x.u < y.u
				}
				return x.v < y.v
			})
			for _, cd := range cands {
				if mapping[cd.u] != -1 || usedDst[cd.v] {
					continue
				}
				mapping[cd.u] = cd.v
				usedDst[cd.v] = true
				matched++
			}
		}
	}
	return mapping, nil
}
