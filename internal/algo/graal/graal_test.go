package graal

import (
	"math"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/graphlets"
	"graphalign/internal/metrics"
)

func TestRecoversIsomorphism(t *testing.T) {
	algotest.CheckRecovers(t, New(), 80, 0.9)
}

func TestDeterministic(t *testing.T) {
	algotest.CheckDeterministic(t, func() algo.Aligner { return New() }, 50)
}

func TestShape(t *testing.T) {
	algotest.CheckShape(t, New())
}

func TestDefaultAssignment(t *testing.T) {
	if New().DefaultAssignment() != assign.SortGreedy {
		t.Error("GRAAL performs SortGreedy integrally")
	}
}

func TestSignatureSimilarityProperties(t *testing.T) {
	w := graphlets.OrbitWeights()
	a := make([]float64, graphlets.NumOrbits)
	b := make([]float64, graphlets.NumOrbits)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i)
	}
	if s := SignatureSimilarity(a, b, w); math.Abs(s-1) > 1e-12 {
		t.Errorf("identical signatures similarity = %v, want 1", s)
	}
	// Symmetric.
	for i := range b {
		b[i] = float64(2 * i)
	}
	if s1, s2 := SignatureSimilarity(a, b, w), SignatureSimilarity(b, a, w); math.Abs(s1-s2) > 1e-12 {
		t.Errorf("similarity not symmetric: %v vs %v", s1, s2)
	}
	// In [0, 1].
	if s := SignatureSimilarity(a, b, w); s < 0 || s > 1 {
		t.Errorf("similarity %v out of range", s)
	}
}

func TestCostMatrixRange(t *testing.T) {
	p := algotest.Pair(t, 40, 0, 15)
	cost, err := New().CostMatrix(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cost.Data {
		// Equation 2 bounds C in [0, 2].
		if v < 0 || v > 2 {
			t.Fatalf("cost %v out of [0, 2]", v)
		}
	}
}

func TestSimilarityIsTwoMinusCost(t *testing.T) {
	p := algotest.Pair(t, 30, 0, 16)
	g := New()
	cost, err := g.CostMatrix(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := g.Similarity(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cost.Data {
		if math.Abs(sim.Data[i]-(2-cost.Data[i])) > 1e-12 {
			t.Fatal("similarity != 2 - cost")
		}
	}
}

func TestSeedExtend(t *testing.T) {
	p := algotest.Pair(t, 60, 0, 17)
	mapping, err := New().SeedExtend(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	// One-to-one and complete.
	seen := make(map[int]bool)
	for _, v := range mapping {
		if v < 0 || seen[v] {
			t.Fatal("SeedExtend produced invalid mapping")
		}
		seen[v] = true
	}
	if acc := metrics.Accuracy(mapping, p.TrueMap); acc < 0.8 {
		t.Errorf("SeedExtend accuracy %.3f on isomorphic instance", acc)
	}
}

func TestAlphaExtremes(t *testing.T) {
	// alpha=0: pure degree matching still aligns a noiseless graph decently;
	// alpha=1: pure signatures must do at least as well.
	p := algotest.Pair(t, 60, 0, 18)
	deg := &GRAAL{Alpha: 0}
	sig := &GRAAL{Alpha: 1}
	aDeg := algotest.Accuracy(t, deg, p, assign.SortGreedy)
	aSig := algotest.Accuracy(t, sig, p, assign.SortGreedy)
	if aSig < aDeg-0.1 {
		t.Errorf("signatures (%.2f) should not lose badly to degrees (%.2f)", aSig, aDeg)
	}
}
