package sgwl

import (
	"context"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
)

func TestRecoversIsomorphism(t *testing.T) {
	algotest.CheckRecovers(t, New(), 80, 0.9)
}

func TestDeterministic(t *testing.T) {
	algotest.CheckDeterministic(t, func() algo.Aligner { return New() }, 50)
}

func TestShape(t *testing.T) {
	algotest.CheckShape(t, New())
}

func TestDefaultAssignment(t *testing.T) {
	if New().DefaultAssignment() != assign.NearestNeighbor {
		t.Error("S-GWL extracts alignments by nearest neighbor")
	}
}

func TestNewSparseBeta(t *testing.T) {
	if NewSparse().Beta != 0.025 {
		t.Errorf("sparse beta = %v, want 0.025 (paper's sparse setting)", NewSparse().Beta)
	}
	if New().Beta != 0.1 {
		t.Errorf("dense beta = %v, want 0.1", New().Beta)
	}
}

func TestRecursionTriggersOnLargeGraphs(t *testing.T) {
	// LeafSize 32 on a 150-node graph forces at least one partitioning
	// level; recovery should still be strong on an isomorphic instance.
	s := New()
	s.LeafSize = 32
	p := algotest.Pair(t, 150, 0, 41)
	acc := algotest.Accuracy(t, s, p, assign.JonkerVolgenant)
	if acc < 0.7 {
		t.Errorf("recursive S-GWL accuracy %.3f on isomorphic instance", acc)
	}
}

func TestCoPartitionConsistency(t *testing.T) {
	// On an isomorphic pair, barycenter co-partitioning must send true
	// counterparts to the same cluster for the vast majority of nodes.
	p := algotest.Pair(t, 120, 0, 42)
	s := New()
	labA, labB, ok, err := s.coPartition(context.Background(), p.Source, p.Target, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("co-partition degenerated on this instance; leaf fallback applies")
	}
	if len(labA) != p.Source.N() || len(labB) != p.Target.N() {
		t.Fatal("label lengths mismatch")
	}
	agree := 0
	for u, ls := range labA {
		match := false
		for _, l := range ls {
			for _, l2 := range labB[p.TrueMap[u]] {
				if l == l2 {
					match = true
				}
			}
		}
		if match {
			agree++
		}
	}
	if agree < len(labA)*7/10 {
		t.Errorf("co-partition agreement %d/%d too low", agree, len(labA))
	}
}

func TestSmallGraphsSolveDirectly(t *testing.T) {
	// Graphs below LeafSize skip partitioning entirely.
	p := algotest.Pair(t, 30, 0, 44)
	acc := algotest.Accuracy(t, New(), p, assign.JonkerVolgenant)
	if acc < 0.8 {
		t.Errorf("leaf-only S-GWL accuracy %.3f", acc)
	}
}

func TestEmptyGraphError(t *testing.T) {
	p := algotest.Pair(t, 20, 0, 1)
	if _, err := New().Similarity(graph.MustNew(0, nil), p.Target); err == nil {
		t.Error("empty source accepted")
	}
}
