// Package sgwl implements Scalable Gromov–Wasserstein Learning (Xu, Luo,
// Carin 2019): the divide-and-conquer version of GWL.
//
// S-GWL recursively co-partitions the two graphs: a Gromov–Wasserstein
// transport to a small K-node barycenter graph assigns every node of each
// graph to one of K clusters; matched cluster pairs are recursed into until
// they are small enough to align directly with the dense GW solver. This
// yields the logarithmic speedup the paper describes while optimizing the
// same objective as GWL.
package sgwl

import (
	"context"
	"errors"

	"graphalign/internal/algo/gwl"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
	"graphalign/internal/obsv"
	"graphalign/internal/ot"
)

// SGWL aligns graphs by recursive Gromov–Wasserstein partitioning.
type SGWL struct {
	// Beta is the proximal regularization (the study manually sets 0.025 on
	// sparse datasets and 0.1 on dense ones).
	Beta float64
	// Partitions is the branching factor K of the recursive decomposition.
	Partitions int
	// LeafSize is the subproblem size below which dense GW runs directly.
	// Below ~400 nodes the flat solve is both faster and more accurate than
	// recursing; the recursion is what keeps larger graphs tractable.
	LeafSize int
	// OuterIters / SinkhornIters configure the GW solver.
	OuterIters, SinkhornIters int

	// span receives the recursion's inner phases (algo.Instrumented); nil
	// (the default) disables tracing at zero cost.
	span *obsv.Span
}

// SetSpan implements algo.Instrumented.
func (s *SGWL) SetSpan(sp *obsv.Span) { s.span = sp }

// New returns S-GWL with the study's dense-data hyperparameters.
func New() *SGWL {
	return &SGWL{Beta: 0.1, Partitions: 4, LeafSize: 384, OuterIters: 20, SinkhornIters: 30}
}

// NewSparse returns S-GWL with the study's sparse-data beta (0.025).
func NewSparse() *SGWL {
	s := New()
	s.Beta = 0.025
	return s
}

// Name implements algo.Aligner.
func (s *SGWL) Name() string { return "S-GWL" }

// DefaultAssignment implements algo.Aligner; S-GWL extracts alignments by
// nearest neighbor on the transport plan.
func (s *SGWL) DefaultAssignment() assign.Method { return assign.NearestNeighbor }

// Similarity implements algo.Aligner: a sparse-ish dense matrix whose mass
// concentrates on the recursively matched blocks.
func (s *SGWL) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return s.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner; ctx is checked at every
// recursion step and threaded into each partition/leaf transport solve.
func (s *SGWL) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	n1, n2 := src.N(), dst.N()
	if n1 == 0 || n2 == 0 {
		return nil, errors.New("sgwl: empty graph")
	}
	sim := matrix.NewDense(n1, n2)
	srcNodes := all(n1)
	dstNodes := all(n2)
	if err := s.recurse(ctx, src, dst, srcNodes, dstNodes, sim, 0); err != nil {
		return nil, err
	}
	return sim, nil
}

const maxDepth = 10

// recurse aligns the induced subproblems on srcNodes x dstNodes, writing
// transport mass into sim at original coordinates.
func (s *SGWL) recurse(ctx context.Context, src, dst *graph.Graph, srcNodes, dstNodes []int, sim *matrix.Dense, depth int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(srcNodes) == 0 || len(dstNodes) == 0 {
		return nil
	}
	leaf := s.LeafSize
	if leaf < 8 {
		leaf = 8
	}
	if len(srcNodes) <= leaf || len(dstNodes) <= leaf || depth >= maxDepth {
		return s.solveLeaf(ctx, src, dst, srcNodes, dstNodes, sim)
	}
	k := s.Partitions
	if k < 2 {
		k = 2
	}
	subSrc, _ := graph.InducedSubgraph(src, srcNodes)
	subDst, _ := graph.InducedSubgraph(dst, dstNodes)
	// Co-partition both subgraphs against a shared K-node barycenter graph
	// (the mechanism of the original S-GWL): transporting both graphs to
	// the same barycenter makes cluster k of the source correspond to
	// cluster k of the target by construction.
	sp := s.span.Phase("partition")
	sp.Set("depth", depth)
	sp.Set("n_src", len(srcNodes))
	sp.Set("n_dst", len(dstNodes))
	sp.Set("ot_outer_iters", s.OuterIters)
	sp.Set("ot_sinkhorn_iters", s.SinkhornIters)
	labS, labD, ok, err := s.coPartition(ctx, subSrc, subDst, k)
	if err != nil {
		sp.End()
		return err
	}
	sp.Set("ok", ok)
	sp.End()
	if !ok {
		return s.solveLeaf(ctx, src, dst, srcNodes, dstNodes, sim)
	}
	for c := 0; c < k; c++ {
		var sn, dn []int
		for i, ls := range labS {
			if memberOf(ls, c) {
				sn = append(sn, srcNodes[i])
			}
		}
		for j, ls := range labD {
			if memberOf(ls, c) {
				dn = append(dn, dstNodes[j])
			}
		}
		if len(sn) == 0 || len(dn) == 0 {
			continue
		}
		if err := s.recurse(ctx, src, dst, sn, dn, sim, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func memberOf(labels []int, c int) bool {
	for _, l := range labels {
		if l == c {
			return true
		}
	}
	return false
}

// coPartition learns a K-node Gromov–Wasserstein barycenter shared by both
// graphs and labels every node with its dominant barycenter clusters.
// Boundary nodes (whose neighborhood transport mass is split between
// clusters) carry up to two labels, so they join both subproblems instead
// of being forced to one side — the recursion is where cluster mistakes
// become unrecoverable. It reports ok=false when the partition degenerates,
// in which case the caller falls back to a direct solve.
func (s *SGWL) coPartition(ctx context.Context, ga, gb *graph.Graph, k int) (labA, labB [][]int, ok bool, err error) {
	muA := ot.DegreeWeights(ga.Degrees())
	muB := ot.DegreeWeights(gb.Degrees())
	wBar := make([]float64, k)
	for i := range wBar {
		wBar[i] = 1 / float64(k)
	}
	// Partitioning needs global geometry, so the node-level costs here are
	// capped shortest-path distances rather than raw adjacency.
	ca := distanceCost(ga)
	cb := distanceCost(gb)
	// Initialize the barycenter cost as a ring of K super-nodes — any
	// fixed, structure-free start works; the updates below pull it toward
	// the shared coarse structure of the two graphs.
	cBar := matrix.NewDense(k, k)
	cBar.Fill(1)
	for i := 0; i < k; i++ {
		cBar.Set(i, i, 0)
		cBar.Set(i, (i+1)%k, 0.25)
		cBar.Set((i+1)%k, i, 0.25)
	}
	opts := ot.GWOptions{Beta: s.Beta, OuterIters: s.OuterIters, SinkhornIters: s.SinkhornIters}
	// Anchor the barycenter on the source graph first: the initial ring is
	// symmetric, and letting both graphs lock onto it independently would
	// let them converge to different modes. After anchoring, the barycenter
	// carries A's realized coarse structure and B's transport follows it.
	var tA, tB *matrix.Dense
	tA, err = ot.GromovWassersteinCtx(ctx, ca, cBar, muA, wBar, opts)
	if err != nil {
		return nil, nil, false, err
	}
	cBar = barycenterUpdate(ca, tA, wBar)
	const rounds = 2
	for r := 0; r < rounds; r++ {
		tB, err = ot.GromovWassersteinCtx(ctx, cb, cBar, muB, wBar, opts)
		if err != nil {
			return nil, nil, false, err
		}
		tA, err = ot.GromovWassersteinCtx(ctx, ca, cBar, muA, wBar, opts)
		if err != nil {
			return nil, nil, false, err
		}
		upA := barycenterUpdate(ca, tA, wBar)
		upB := barycenterUpdate(cb, tB, wBar)
		for i := range cBar.Data {
			cBar.Data[i] = 0.5 * (upA.Data[i] + upB.Data[i])
		}
	}
	labA = smoothedLabels(ga, tA)
	labB = smoothedLabels(gb, tB)
	// Degeneracy check on primary labels: every cluster must be non-empty
	// on both sides, and no cluster may swallow (almost) everything.
	countA := make([]int, k)
	countB := make([]int, k)
	for _, ls := range labA {
		countA[ls[0]]++
	}
	for _, ls := range labB {
		countB[ls[0]]++
	}
	nonEmpty := 0
	for c := 0; c < k; c++ {
		if countA[c] > 0 && countB[c] > 0 {
			nonEmpty++
		}
		if (countA[c] == 0) != (countB[c] == 0) {
			return nil, nil, false, nil // inconsistent split
		}
	}
	if nonEmpty < 2 {
		return nil, nil, false, nil
	}
	// Guard against a near-total cluster that would defeat the recursion.
	for c := 0; c < k; c++ {
		if countA[c] > ga.N()*9/10 || countB[c] > gb.N()*9/10 {
			return nil, nil, false, nil
		}
	}
	return labA, labB, true, nil
}

// barycenterUpdate returns Tᵀ C T normalized by the barycenter masses.
func barycenterUpdate(c, t *matrix.Dense, w []float64) *matrix.Dense {
	ct := matrix.Mul(c, t)      // n x k
	up := matrix.Mul(t.T(), ct) // k x k
	for p := 0; p < up.Rows; p++ {
		for q := 0; q < up.Cols; q++ {
			norm := w[p] * w[q]
			if norm > 0 {
				up.Set(p, q, up.At(p, q)/norm)
			}
		}
	}
	return up
}

// distanceCost returns the matrix of BFS distances capped at maxHop and
// scaled to [0, 1]; it carries the global geometry that raw adjacency
// lacks, which is what the barycenter partition keys on.
func distanceCost(g *graph.Graph) *matrix.Dense {
	const maxHop = 5
	n := g.N()
	c := matrix.NewDense(n, n)
	for u := 0; u < n; u++ {
		dist := graph.BFSDistances(g, u)
		row := c.Row(u)
		for v, d := range dist {
			if d < 0 || d > maxHop {
				d = maxHop
			}
			row[v] = float64(d) / maxHop
		}
	}
	return c
}

// smoothedLabels assigns each node its dominant cluster by transport mass
// summed over its closed neighborhood, plus a secondary cluster when the
// runner-up holds at least half the winner's mass (a boundary node). The
// smoothing uses only each graph's own structure, so it is
// permutation-equivariant and treats both sides identically.
func smoothedLabels(g *graph.Graph, t *matrix.Dense) [][]int {
	n, k := t.Rows, t.Cols
	out := make([][]int, n)
	score := make([]float64, k)
	for u := 0; u < n; u++ {
		copy(score, t.Row(u))
		for _, v := range g.Neighbors(u) {
			row := t.Row(v)
			for j := 0; j < k; j++ {
				score[j] += row[j]
			}
		}
		best, second := 0, -1
		for j := 1; j < k; j++ {
			if score[j] > score[best] {
				second = best
				best = j
			} else if second == -1 || score[j] > score[second] {
				second = j
			}
		}
		labels := []int{best}
		if second >= 0 && score[second] >= 0.5*score[best] {
			labels = append(labels, second)
		}
		out[u] = labels
	}
	return out
}

// solveLeaf runs dense GW on the induced pair and writes the plan back.
func (s *SGWL) solveLeaf(ctx context.Context, src, dst *graph.Graph, srcNodes, dstNodes []int, sim *matrix.Dense) error {
	sp := s.span.Phase("leaf_solve")
	sp.Set("n_src", len(srcNodes))
	sp.Set("n_dst", len(dstNodes))
	defer sp.End()
	subSrc, _ := graph.InducedSubgraph(src, srcNodes)
	subDst, _ := graph.InducedSubgraph(dst, dstNodes)
	mu := ot.DegreeWeights(subSrc.Degrees())
	nu := ot.DegreeWeights(subDst.Degrees())
	ca := gwl.CostMatrix(subSrc)
	cb := gwl.CostMatrix(subDst)
	plan, err := ot.GromovWassersteinCtx(ctx, ca, cb, mu, nu, ot.GWOptions{
		Beta: s.Beta, OuterIters: s.OuterIters, SinkhornIters: s.SinkhornIters,
	})
	if err != nil {
		return err
	}
	// Scale each leaf's plan to comparable magnitude before writeback so
	// leaves of different sizes contribute comparable per-pair evidence.
	scale := float64(len(srcNodes))
	for i, u := range srcNodes {
		prow := plan.Row(i)
		for j, v := range dstNodes {
			sim.Add(u, v, prow[j]*scale)
		}
	}
	return nil
}

func all(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
