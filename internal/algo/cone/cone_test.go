package cone

import (
	"math"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/matrix"
)

func TestRecoversIsomorphism(t *testing.T) {
	algotest.CheckRecovers(t, New(), 60, 0.85)
}

func TestDeterministic(t *testing.T) {
	algotest.CheckDeterministic(t, func() algo.Aligner { return New() }, 40)
}

func TestShape(t *testing.T) {
	algotest.CheckShape(t, New())
}

func TestDefaultAssignment(t *testing.T) {
	if New().DefaultAssignment() != assign.NearestNeighbor {
		t.Error("CONE extracts alignments by nearest neighbor")
	}
}

func TestEmbedProperties(t *testing.T) {
	p := algotest.Pair(t, 50, 0, 51)
	emb, err := New().Embed(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Rows != p.Source.N() {
		t.Fatal("embedding rows mismatch")
	}
	if emb.Cols > p.Source.N()-1 {
		t.Fatal("dimension not clamped")
	}
	for i := 0; i < emb.Rows; i++ {
		n := matrix.Norm2(emb.Row(i))
		if n > 1e-9 && math.Abs(n-1) > 1e-9 {
			t.Fatalf("embedding row %d not normalized: %v", i, n)
		}
	}
}

func TestDimensionClamp(t *testing.T) {
	c := New() // Dim 512 on a 50-node graph must clamp
	p := algotest.Pair(t, 50, 0, 52)
	emb, err := c.Embed(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Cols != 49 {
		t.Errorf("dim = %d, want 49", emb.Cols)
	}
}

func TestSharpenRows(t *testing.T) {
	m := matrix.DenseFromRows([][]float64{
		{5, 1, 4, 2},
		{0, 0, 0, 0},
	})
	SharpenRows(m, 2)
	// Row 0 keeps {5, 4} normalized then scaled by 1/rows.
	if m.At(0, 1) != 0 || m.At(0, 3) != 0 {
		t.Errorf("small entries not zeroed: %v", m.Row(0))
	}
	if math.Abs(m.At(0, 0)+m.At(0, 2)-0.5) > 1e-12 {
		t.Errorf("row mass = %v, want 0.5 (1/rows)", m.At(0, 0)+m.At(0, 2))
	}
	// Zero rows stay zero without NaN.
	for _, v := range m.Row(1) {
		if v != 0 {
			t.Error("zero row modified")
		}
	}
}

func TestAlignEmbeddingsImprovesOverRaw(t *testing.T) {
	// A rotated copy of an embedding must be re-alignable: build ySrc and a
	// rotated yDst and verify AlignEmbeddings brings rows back together.
	p := algotest.Pair(t, 40, 0, 53)
	c := New()
	y, err := c.Embed(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	// Rotate by a random orthogonal matrix (from the polar factor of a
	// random matrix) — simulating the sign/rotation ambiguity.
	d := y.Cols
	r := matrix.NewDense(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			r.Set(i, j, float64(((i*31+j*17)%13))-6)
		}
	}
	// Orthogonalize r crudely via Gram-Schmidt on columns.
	for j := 0; j < d; j++ {
		col := make([]float64, d)
		for i := 0; i < d; i++ {
			col[i] = r.At(i, j)
		}
		for k := 0; k < j; k++ {
			prev := make([]float64, d)
			for i := 0; i < d; i++ {
				prev[i] = r.At(i, k)
			}
			dot := matrix.Dot(col, prev)
			matrix.AxpyVec(col, prev, -dot)
		}
		matrix.Normalize(col)
		for i := 0; i < d; i++ {
			r.Set(i, j, col[i])
		}
	}
	yRot := matrix.Mul(y, r)
	// Identity warm start (true correspondence).
	n := y.Rows
	warm := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		warm.Set(i, i, 1.0/float64(n))
	}
	rot, _ := c.AlignEmbeddings(y, yRot, warm)
	// After alignment, row i of rot should be closest to row i of yRot.
	correct := 0
	for i := 0; i < n; i++ {
		best, bestD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			var dd float64
			ri, rj := rot.Row(i), yRot.Row(j)
			for k := range ri {
				df := ri[k] - rj[k]
				dd += df * df
			}
			if dd < bestD {
				bestD = dd
				best = j
			}
		}
		if best == i {
			correct++
		}
	}
	if correct < n*8/10 {
		t.Errorf("alignment recovered %d/%d rows after rotation", correct, n)
	}
}
