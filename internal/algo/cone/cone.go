// Package cone implements CONE-Align (Chen, Heimann, Vahedian, Koutra
// 2020): proximity-preserving node embeddings computed per graph, followed
// by embedding-subspace alignment that alternates a Wasserstein step
// (Sinkhorn) for the node correspondence P with a Procrustes step (SVD) for
// the orthogonal basis rotation Q (Equation 12 of the survey).
//
// Base embeddings use a NetMF-style factorization of the truncated
// random-walk proximity matrix, computed with this repository's own SVD
// (see DESIGN.md, substitution 5).
package cone

import (
	"context"
	"errors"
	"fmt"
	"math"

	"graphalign/internal/algo/nsd"
	"graphalign/internal/algo/regal"
	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/linalg"
	"graphalign/internal/matrix"
	"graphalign/internal/ot"
)

// CONE aligns graphs by embedding-space alignment.
type CONE struct {
	// Dim is the embedding dimensionality (the study tunes 512 for large
	// graphs; it is clamped to n-1).
	Dim int
	// Window is the random-walk window of the NetMF proximity (original: 10).
	Window int
	// NegSamples is NetMF's negative sampling constant (original: 1).
	NegSamples float64
	// Iters is the number of Wasserstein/Procrustes alternations
	// (original: ~50, preceded by a short warm start).
	Iters int
	// SinkhornEps and SinkhornIters configure the Wasserstein step.
	SinkhornEps   float64
	SinkhornIters int

	// cache holds the shared artifact cache (algo.Cacheable); nil computes
	// everything locally. The NetMF embedding — the dominant per-graph cost
	// — is cached per (graph, Dim, Window, NegSamples), and the cache is
	// propagated into the NSD/REGAL warm starts so their similarities are
	// shared with standalone runs of those algorithms.
	cache *cache.Cache
}

// SetCache implements algo.Cacheable.
func (c *CONE) SetCache(ch *cache.Cache) { c.cache = ch }

// New returns CONE with the study's tuned hyperparameters (dim=512).
func New() *CONE {
	return &CONE{Dim: 512, Window: 10, NegSamples: 1, Iters: 20, SinkhornEps: 0.05, SinkhornIters: 50}
}

// Name implements algo.Aligner.
func (c *CONE) Name() string { return "CONE" }

// DefaultAssignment implements algo.Aligner; CONE extracts alignments by
// nearest neighbor over aligned embeddings.
func (c *CONE) DefaultAssignment() assign.Method { return assign.NearestNeighbor }

// Embed computes the NetMF-style proximity embedding of one graph.
func (c *CONE) Embed(g *graph.Graph) (*matrix.Dense, error) {
	return c.EmbedCtx(context.Background(), g)
}

// EmbedCtx is Embed with cooperative cancellation checked per random-walk
// window power and threaded into the factorization. With a cache attached
// the embedding is memoized per (graph, Dim, Window, NegSamples) — it is a
// deterministic function of those inputs — and a private clone is returned.
func (c *CONE) EmbedCtx(ctx context.Context, g *graph.Graph) (*matrix.Dense, error) {
	if c.cache == nil {
		return c.computeEmbed(ctx, g)
	}
	key := fmt.Sprintf("%s/coneemb/d%d/w%d/n%g", cache.GraphKey(g), c.Dim, c.Window, c.NegSamples)
	v, err := c.cache.GetOrCompute(ctx, key, func() (any, int64, error) {
		m, err := c.computeEmbed(ctx, g)
		if err != nil {
			return nil, 0, err
		}
		return m, cache.DenseBytes(m), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*matrix.Dense).Clone(), nil
}

// computeEmbed is the uncached NetMF embedding pipeline.
func (c *CONE) computeEmbed(ctx context.Context, g *graph.Graph) (*matrix.Dense, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("cone: empty graph")
	}
	dim := c.Dim
	if dim > n-1 {
		dim = n - 1
	}
	if dim < 1 {
		dim = 1
	}
	window := c.Window
	if window < 1 {
		window = 1
	}
	// M = vol/(window*b) * (sum_{r=1..window} P^r) D^-1, entrywise
	// log(max(M, 1)).
	p := cache.RowNormalizedAdjacency(c.cache, g) // D^-1 A, shared: read-only
	// Accumulate powers times D^-1 densely (n x n); CONE's own
	// implementation does the same for exactness on benchmark-scale graphs.
	acc := matrix.NewDense(n, n)
	cur := p.ToDense()
	for r := 1; r <= window; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		acc.AddScaled(cur, 1)
		if r < window {
			cur = mulCSRDense(p, cur)
		}
	}
	vol := 2 * float64(g.M())
	coef := vol / (float64(window) * c.NegSamples)
	for i := 0; i < n; i++ {
		row := acc.Row(i)
		for j := 0; j < n; j++ {
			d := g.Degree(j)
			v := 0.0
			if d > 0 {
				v = coef * row[j] / float64(d)
			}
			if v < 1 {
				v = 1
			}
			row[j] = math.Log(v)
		}
	}
	// The NetMF matrix is symmetric, so its SVD comes cheaply from the
	// symmetric eigendecomposition.
	u, s, _, err := linalg.TopKSVDSymCtx(ctx, acc, dim)
	if err != nil {
		return nil, err
	}
	emb := matrix.NewDense(n, dim)
	for j := 0; j < dim; j++ {
		f := math.Sqrt(math.Max(s[j], 0))
		for i := 0; i < n; i++ {
			emb.Set(i, j, u.At(i, j)*f)
		}
	}
	// Row-normalize: CONE aligns directions of embeddings.
	for i := 0; i < n; i++ {
		matrix.Normalize(emb.Row(i))
	}
	return emb, nil
}

// AlignEmbeddings runs the alternating Wasserstein/Procrustes refinement
// and returns the rotated source embeddings alongside the target ones. The
// initial correspondence comes from the warmStart plan (the original's
// convex Frank–Wolfe initialization is replaced by a degree-prior plan —
// both serve only to break the orthogonal ambiguity between the two
// independently computed embeddings).
func (c *CONE) AlignEmbeddings(ySrc, yDst, warmStart *matrix.Dense) (*matrix.Dense, *matrix.Dense) {
	rot, yd, _ := c.AlignEmbeddingsCtx(context.Background(), ySrc, yDst, warmStart)
	return rot, yd
}

// AlignEmbeddingsCtx is AlignEmbeddings with cooperative cancellation
// checked once per Wasserstein/Procrustes alternation and threaded into the
// Sinkhorn rounds.
func (c *CONE) AlignEmbeddingsCtx(ctx context.Context, ySrc, yDst, warmStart *matrix.Dense) (*matrix.Dense, *matrix.Dense, error) {
	n1, n2 := ySrc.Rows, yDst.Rows
	mu := ot.UniformWeights(n1)
	nu := ot.UniformWeights(n2)
	iters := c.Iters
	if iters < 1 {
		iters = 1
	}
	rotated := ySrc.Clone()
	if warmStart != nil {
		// One Procrustes step against the warm-start correspondence.
		target := matrix.Mul(warmStart, yDst).Scale(float64(n1))
		q := linalg.PolarOrthogonal(matrix.Mul(ySrc.T(), target))
		rotated = matrix.Mul(ySrc, q)
	}
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		// Wasserstein step: transport between rotated source and target.
		cost := matrix.NewDense(n1, n2)
		for i := 0; i < n1; i++ {
			ri := rotated.Row(i)
			row := cost.Row(i)
			for j := 0; j < n2; j++ {
				rj := yDst.Row(j)
				var d2 float64
				for k := range ri {
					dd := ri[k] - rj[k]
					d2 += dd * dd
				}
				row[j] = d2
			}
		}
		plan, err := ot.SinkhornCtx(ctx, cost, mu, nu, c.SinkhornEps, c.SinkhornIters)
		if err != nil {
			return nil, nil, err
		}
		// Procrustes step: Q = argmin ||Ysrc Q - P Ydst|| = U Vᵀ from the
		// SVD of Ysrcᵀ (n1 P Ydst).
		target := matrix.Mul(plan, yDst).Scale(float64(n1)) // n1 x d
		q := linalg.PolarOrthogonal(matrix.Mul(ySrc.T(), target))
		rotated = matrix.Mul(ySrc, q)
	}
	return rotated, yDst, nil
}

// alignmentDim returns the number of leading embedding columns used for
// subspace alignment and matching: at most 128 (NetMF columns are ordered
// by singular value, so the leading block carries the structural signal and
// the Procrustes step costs O(d^3)), and at most a third of the node count.
// The second cap is what makes the warm start corrective rather than
// self-fulfilling: with d close to n, an orthogonal map exists that
// realizes ANY anchor correspondence exactly (the rotation memorizes the
// anchor, errors included); with d << n the rotation is over-constrained by
// the anchor's correct majority and the embedding geometry overrules its
// errors.
func alignmentDim(n int) int {
	d := n / 3
	if d > 128 {
		d = 128
	}
	if d < 8 {
		d = 8
	}
	return d
}

// Similarity implements algo.Aligner. The orthogonal ambiguity between the
// two independently computed embeddings is broken by a warm start (the
// original uses a convex Frank–Wolfe initialization for the same purpose):
// hard one-to-one correspondences obtained from cheap structural
// similarities (NSD, REGAL) are tried as Procrustes anchors, short pilot
// alternations score each candidate by its mean nearest-neighbor distance,
// and the full alternation continues from the winner. A partially correct
// anchor suffices — its correct mass dominates the rotation estimate while
// its errors average out.
func (c *CONE) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return c.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner; ctx reaches the embedding
// factorizations, the warm-start similarities, and every pilot and full
// alternation round.
func (c *CONE) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	rot, yd, err := c.alignedEmbeddingsCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	return regal.EmbeddingSimilarity(rot, yd), nil
}

// EmbeddingsCtx implements algo.EmbeddingAligner: the subspace-aligned
// embeddings in factored form with the exp(-d²) kernel CONE shares with
// REGAL, for the sparse assignment pipeline's k-NN candidate search.
// Materializing the returned Embedding reproduces SimilarityCtx exactly.
func (c *CONE) EmbeddingsCtx(ctx context.Context, src, dst *graph.Graph) (*assign.Embedding, error) {
	rot, yd, err := c.alignedEmbeddingsCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	return &assign.Embedding{Src: rot, Dst: yd, SimFromDist2: regal.ExpKernel}, nil
}

// alignedEmbeddingsCtx runs the full CONE pipeline up to (but excluding) the
// dense similarity materialization: per-graph embeddings, common-space
// padding and truncation, warm-start selection, and the Wasserstein/
// Procrustes alternation. Returns the rotated source embeddings and the
// target embeddings.
func (c *CONE) alignedEmbeddingsCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, *matrix.Dense, error) {
	ySrc, err := c.EmbedCtx(ctx, src)
	if err != nil {
		return nil, nil, err
	}
	yDst, err := c.EmbedCtx(ctx, dst)
	if err != nil {
		return nil, nil, err
	}
	// Pad the smaller embedding with zero columns so Procrustes operates in
	// a common space, then truncate to the alignment subspace.
	if ySrc.Cols != yDst.Cols {
		d := ySrc.Cols
		if yDst.Cols > d {
			d = yDst.Cols
		}
		ySrc = padCols(ySrc, d)
		yDst = padCols(yDst, d)
	}
	if d := alignmentDim(minInt(src.N(), dst.N())); ySrc.Cols > d {
		ySrc = leadingCols(ySrc, d)
		yDst = leadingCols(yDst, d)
	}

	warms, err := c.warmStarts(ctx, src, dst)
	if err != nil {
		return nil, nil, err
	}
	best := warms[0]
	if len(warms) > 1 {
		bestObj := math.Inf(1)
		pilot := *c
		pilot.Iters = 4
		for _, w := range warms {
			rot, yd, err := pilot.AlignEmbeddingsCtx(ctx, ySrc, yDst, w)
			if err != nil {
				return nil, nil, err
			}
			if obj := meanNNDistance(rot, yd); obj < bestObj {
				bestObj = obj
				best = w
			}
		}
	}
	return c.AlignEmbeddingsCtx(ctx, ySrc, yDst, best)
}

// warmStarts builds the candidate anchor plans: hard JV matchings of the
// NSD and REGAL similarities, as transport-plan-shaped matrices.
func (c *CONE) warmStarts(ctx context.Context, src, dst *graph.Graph) ([]*matrix.Dense, error) {
	var out []*matrix.Dense
	nsdAligner := nsd.New()
	nsdAligner.SetCache(c.cache)
	nsdSim, err := nsdAligner.SimilarityCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	out = append(out, permutationPlan(assign.SolveJV(nsdSim), dst.N()))
	regalAligner := regal.New()
	regalAligner.SetCache(c.cache)
	regalSim, err := regalAligner.SimilarityCtx(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	out = append(out, permutationPlan(assign.SolveJV(regalSim), dst.N()))
	return out, nil
}

// permutationPlan lifts a hard mapping into a transport plan with uniform
// mass on the matched pairs.
func permutationPlan(mapping []int, cols int) *matrix.Dense {
	n := len(mapping)
	w := matrix.NewDense(n, cols)
	if n == 0 {
		return w
	}
	mass := 1 / float64(n)
	for i, j := range mapping {
		if j >= 0 && j < cols {
			w.Set(i, j, mass)
		}
	}
	return w
}

// leadingCols returns the first k columns as a new matrix with rows
// re-normalized (Embed normalizes full-dimension rows).
func leadingCols(m *matrix.Dense, k int) *matrix.Dense {
	out := matrix.NewDense(m.Rows, k)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[:k])
		matrix.Normalize(out.Row(i))
	}
	return out
}

// meanNNDistance is the pilot-selection objective: the mean squared
// distance from each aligned source row to its nearest target row.
func meanNNDistance(a, b *matrix.Dense) float64 {
	if a.Rows == 0 {
		return 0
	}
	var total float64
	for i := 0; i < a.Rows; i++ {
		ri := a.Row(i)
		best := math.Inf(1)
		for j := 0; j < b.Rows; j++ {
			rj := b.Row(j)
			var d2 float64
			for k := range ri {
				d := ri[k] - rj[k]
				d2 += d * d
			}
			if d2 < best {
				best = d2
			}
		}
		total += best
	}
	return total / float64(a.Rows)
}

// SharpenRows zeroes all but the k largest entries of each row and
// normalizes each row to unit sum, turning a dense similarity into a sparse
// soft correspondence (exported for warm-start experimentation).
func SharpenRows(m *matrix.Dense, k int) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		// Find the k-th largest value by partial selection.
		if k < len(row) {
			vals := append([]float64(nil), row...)
			for a := 0; a < k; a++ {
				best := a
				for b := a + 1; b < len(vals); b++ {
					if vals[b] > vals[best] {
						best = b
					}
				}
				vals[a], vals[best] = vals[best], vals[a]
			}
			thresh := vals[k-1]
			for j, v := range row {
				if v < thresh {
					row[j] = 0
				}
			}
		}
		var sum float64
		for _, v := range row {
			sum += v
		}
		if sum > 0 {
			for j := range row {
				row[j] /= sum
			}
		}
	}
	// Scale to total mass 1 so it acts like a transport plan.
	m.Scale(1 / float64(m.Rows))
}

// mulCSRDense returns s*d for CSR s.
func mulCSRDense(s *matrix.CSR, d *matrix.Dense) *matrix.Dense {
	return s.MulDense(d)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func padCols(m *matrix.Dense, cols int) *matrix.Dense {
	if m.Cols == cols {
		return m
	}
	out := matrix.NewDense(m.Rows, cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i)[:m.Cols], m.Row(i))
	}
	return out
}
