package lrea

import (
	"context"

	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
)

// This file implements algo.IncrementalFactorer for LREA. Power iteration is
// self-correcting: started from the previous converged iterate instead of
// the uniform rank-one X_0, it re-approaches the perturbed dominant
// eigenvector in RefreshIters steps instead of the cold start's Iters —
// the bounded staleness the interface contract allows is whatever distance
// remains after those steps. Unlike the REGAL and NSD refreshers this does
// not shrink the candidate-update cost: the iteration's truncate step
// reorders terms by norm product, so essentially every factor entry differs
// from the previous bundle and the downstream top-k update degenerates to a
// bulk rebuild. The refresher still removes ~80% of the factor-computation
// cost; it is an honest improvement, not this package's headline speedup.

// refreshState is the retained iterate RefreshFactorsCtx warm-starts from.
// f is owned by the state; iterate only reads its slices and returns fresh
// ones, and callers get clones.
type refreshState struct {
	srcKey, dstKey string
	n, m           int
	f              *assign.FactorEmbedding
}

// RefreshFactorsCtx implements algo.IncrementalFactorer: FactorsCtx
// semantics against the current target, warm-starting the factored power
// iteration from the previous result. An unchanged target fingerprint
// returns the previous bundle bitwise; a new source fingerprint or changed
// node count falls back to a cold iteration.
func (l *LREA) RefreshFactorsCtx(ctx context.Context, src, dst *graph.Graph) (*assign.FactorEmbedding, error) {
	srcKey, dstKey := cache.GraphKey(src), cache.GraphKey(dst)
	st := l.state
	if st == nil || st.srcKey != srcKey || st.n != src.N() || st.m != dst.N() {
		f, err := l.computeFactors(ctx, src, dst)
		if err != nil {
			return nil, err
		}
		l.state = &refreshState{srcKey: srcKey, dstKey: dstKey, n: src.N(), m: dst.N(), f: f.Clone()}
		return f, nil
	}
	if st.dstKey == dstKey {
		return st.f.Clone(), nil
	}
	iters := l.RefreshIters
	if iters <= 0 {
		iters = 8
	}
	x, err := l.iterate(ctx, cache.Adjacency(l.cache, src), cache.Adjacency(l.cache, dst),
		factored{us: st.f.Us, vs: st.f.Vs}, iters)
	if err != nil {
		return nil, err
	}
	f := &assign.FactorEmbedding{Us: x.us, Vs: x.vs}
	st.f = f.Clone()
	st.dstKey = dstKey
	return f, nil
}
