package lrea

import (
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
	"graphalign/internal/graph"
)

func TestRecoversIsomorphism(t *testing.T) {
	// The paper: LREA consistently finds the correct alignment on
	// isomorphic graphs.
	algotest.CheckRecovers(t, New(), 80, 0.95)
}

func TestNoiseCollapse(t *testing.T) {
	// The paper: performance drops close to 0 with only 1% noise. Verify
	// the steep decline (well below the zero-noise level).
	p0 := algotest.Pair(t, 80, 0, 21)
	p5 := algotest.Pair(t, 80, 0.05, 21)
	a0 := algotest.Accuracy(t, New(), p0, assign.Hungarian)
	a5 := algotest.Accuracy(t, New(), p5, assign.Hungarian)
	if a0 < 0.9 {
		t.Fatalf("zero-noise accuracy %.3f too low", a0)
	}
	if a5 > 0.7*a0 {
		t.Errorf("LREA should degrade steeply with noise: %.3f -> %.3f", a0, a5)
	}
}

func TestDeterministic(t *testing.T) {
	algotest.CheckDeterministic(t, func() algo.Aligner { return New() }, 50)
}

func TestShape(t *testing.T) {
	algotest.CheckShape(t, New())
}

func TestDefaultAssignment(t *testing.T) {
	if New().DefaultAssignment() != assign.Hungarian {
		t.Error("LREA was proposed with the Hungarian (MWM) solver")
	}
}

func TestEmptyGraphError(t *testing.T) {
	p := algotest.Pair(t, 20, 0, 1)
	if _, err := New().Similarity(graph.MustNew(0, nil), p.Target); err == nil {
		t.Error("empty source accepted")
	}
}

func TestCustomScores(t *testing.T) {
	l := New()
	l.OverlapWeight, l.BaselineWeight, l.ConflictPenalty = 3, 1, 0.01
	algotest.CheckRecovers(t, l, 60, 0.9)
}

func TestFactoredRankStaysBounded(t *testing.T) {
	// 40 iterations x 3 new factors + compression cap: Similarity must not
	// blow up in time or memory; just check it completes on a mid-size
	// instance and yields finite values.
	p := algotest.Pair(t, 120, 0.01, 30)
	sim, err := New().Similarity(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sim.Data {
		if v != v { // NaN
			t.Fatalf("NaN at %d", i)
		}
	}
}

func TestTruncationTriggersAtHighIterations(t *testing.T) {
	// 60 iterations grow the factored rank past the 160 cap, exercising the
	// compression path; quality on an isomorphic instance must survive it.
	l := New()
	l.Iters = 60
	algotest.CheckRecovers(t, l, 60, 0.9)
}

func TestEigenAlignRecoversIsomorphism(t *testing.T) {
	algotest.CheckRecovers(t, NewEigenAlign(), 60, 0.95)
}

func TestEigenAlignAgreesWithLREAAtZeroNoise(t *testing.T) {
	// LREA is a low-rank approximation of EigenAlign: on an isomorphic
	// instance both must find (essentially) the correct alignment.
	p := algotest.Pair(t, 60, 0, 77)
	exact := algotest.Accuracy(t, NewEigenAlign(), p, assign.Hungarian)
	approx := algotest.Accuracy(t, New(), p, assign.Hungarian)
	if exact < 0.9 || approx < 0.9 {
		t.Errorf("zero-noise: exact %.3f approx %.3f", exact, approx)
	}
}

func TestEigenAlignEmptyGraph(t *testing.T) {
	p := algotest.Pair(t, 20, 0, 1)
	if _, err := NewEigenAlign().Similarity(graph.MustNew(0, nil), p.Target); err == nil {
		t.Error("empty source accepted")
	}
}
