package lrea

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/noise"
)

func refreshPair(t *testing.T, n int, seed int64) (*graph.Graph, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src := gen.ErdosRenyi(n, 8/float64(n), rng)
	pair, err := noise.Apply(src, noise.OneWay, 0.05, noise.Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return pair.Source, pair.Target
}

// The first refresh call is a cold iteration (bitwise FactorsCtx), and an
// unchanged target reproduces it bitwise — the warm iteration must never
// advance on an empty delta.
func TestRefreshFirstCallAndNoop(t *testing.T) {
	src, dst := refreshPair(t, 40, 41)
	ctx := context.Background()
	l := New()
	got, err := l.RefreshFactorsCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New().FactorsCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("first refresh differs from the batch pipeline")
	}
	again, err := l.RefreshFactorsCtx(ctx, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Fatal("unchanged target did not reproduce the previous factors bitwise")
	}
}

// Warm refreshes across edits must yield finite, well-shaped factors and
// keep the rank within the iteration's working bound.
func TestRefreshWarmIterationSane(t *testing.T) {
	src, dst := refreshPair(t, 40, 42)
	ctx := context.Background()
	l := New()
	if _, err := l.RefreshFactorsCtx(ctx, src, dst); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for step := 0; step < 3; step++ {
		batch, err := noise.EditBatch(dst, 0.02, rng)
		if err != nil {
			t.Fatal(err)
		}
		dst, err = graph.ApplyEdits(dst, batch)
		if err != nil {
			t.Fatal(err)
		}
		f, err := l.RefreshFactorsCtx(ctx, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Us) != len(f.Vs) || len(f.Us) == 0 || len(f.Us) > 163 {
			t.Fatalf("step %d: rank %d out of bounds", step, len(f.Us))
		}
		for i := range f.Us {
			if len(f.Us[i]) != src.N() || len(f.Vs[i]) != dst.N() {
				t.Fatalf("step %d: term %d has wrong side lengths", step, i)
			}
			for _, v := range f.Us[i] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("step %d: non-finite source factor", step)
				}
			}
			for _, v := range f.Vs[i] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("step %d: non-finite target factor", step)
				}
			}
		}
	}
}

// A new source graph invalidates the capture and falls back to a cold
// iteration for the new pair.
func TestRefreshSourceChangeRecaptures(t *testing.T) {
	src, dst := refreshPair(t, 30, 43)
	src2, _ := refreshPair(t, 30, 44)
	ctx := context.Background()
	l := New()
	if _, err := l.RefreshFactorsCtx(ctx, src, dst); err != nil {
		t.Fatal(err)
	}
	got, err := l.RefreshFactorsCtx(ctx, src2, dst)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New().FactorsCtx(ctx, src2, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("source change did not recapture a cold iteration")
	}
}
