// Package lrea implements Low-Rank EigenAlign (Nassar, Veldt, Mohammadi,
// Grama, Gleich 2018). The EigenAlign similarity matrix is the dominant
// eigenvector of
//
//	M = c1 (A ⊗ B) + c2 (A ⊗ E) + c2 (E ⊗ B) + c3 (E ⊗ E)
//
// where E is all-ones; the weights c1, c2, c3 encode the scores of
// overlaps, non-informative pairs, and conflicts. LREA's insight is that
// power iteration on M, viewed as the matrix map
//
//	X <- c1 A X Bᵀ + c2 A X Eᵀ + c2 E X Bᵀ + c3 E X Eᵀ,
//
// keeps X in factored low-rank form: each iteration adds only three
// rank-one terms because E X Eᵀ, A X Eᵀ and E X Bᵀ are rank one. This
// package maintains X as an explicit list of (u, v) rank-one factors and
// only densifies at the very end, exactly mirroring the published
// algorithm's low-rank structure.
package lrea

import (
	"context"
	"errors"

	"graphalign/internal/assign"
	"graphalign/internal/cache"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

// LREA aligns graphs by low-rank spectral relaxation of the quadratic
// assignment objective.
type LREA struct {
	// Iters is the number of power iterations (the paper's "iterations=40"
	// hyperparameter; each adds 3 rank-one terms).
	Iters int
	// OverlapWeight (sO), BaselineWeight (sN) and ConflictPenalty (sC) are
	// EigenAlign's scores for overlapping, non-informative and conflicting
	// edge pairs; they must satisfy sO > sN > sC > 0. When all are zero the
	// published defaults (sO=2, sN=1, sC=0.001) apply. Internally M is
	// expanded as
	//
	//	M = (sO - 2 sC + sN) A⊗B + (sC - sN)(A⊗E + E⊗B) + sN E⊗E
	//
	// which is what the factored iteration uses.
	OverlapWeight, BaselineWeight, ConflictPenalty float64

	// RefreshIters is the number of warm power iterations RefreshFactorsCtx
	// runs from the previous converged iterate after an edit batch; the
	// dominant eigenvector moves little under small perturbations, so far
	// fewer steps than a cold start's Iters suffice (0 means 8).
	RefreshIters int

	// cache holds the shared artifact cache (algo.Cacheable); nil computes
	// everything locally.
	cache *cache.Cache

	// state is the last iterate RefreshFactorsCtx warm-starts from; nil
	// until the first refresh call. Instances used through the refresher
	// carry pair-specific state and must not be shared
	// (algo.IncrementalFactorer's contract).
	state *refreshState
}

// SetCache implements algo.Cacheable.
func (l *LREA) SetCache(c *cache.Cache) { l.cache = c }

// New returns LREA with the study's tuned hyperparameters (40 iterations).
func New() *LREA {
	return &LREA{Iters: 40, RefreshIters: 8}
}

// Name implements algo.Aligner.
func (l *LREA) Name() string { return "LREA" }

// DefaultAssignment implements algo.Aligner; LREA was proposed with the
// sparse Hungarian variant (MWM).
func (l *LREA) DefaultAssignment() assign.Method { return assign.Hungarian }

// factored holds X = Σ u_i v_iᵀ.
type factored struct {
	us, vs [][]float64
}

// Similarity implements algo.Aligner.
func (l *LREA) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return l.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner; ctx is checked once per
// factored power iteration. Densification runs the same AddOuterScaled
// calls in the same term order as FactorEmbedding.Similarity, so this and
// the FactorsCtx path agree bitwise.
func (l *LREA) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	x, err := l.computeFactors(ctx, src, dst)
	if err != nil {
		return nil, err
	}
	return x.Similarity(), nil
}

// FactorsCtx implements algo.FactorAligner: the final factored iterate X as
// the rank-one term list the published algorithm maintains internally —
// LREA never needs the dense matrix at all on the sparse pipeline. Like
// SimilarityCtx, each call recomputes (the iteration reads only cached
// adjacencies); the returned factors are private to the caller.
func (l *LREA) FactorsCtx(ctx context.Context, src, dst *graph.Graph) (*assign.FactorEmbedding, error) {
	return l.computeFactors(ctx, src, dst)
}

// computeFactors runs the factored power iteration and returns the final
// iterate as an ordered rank-one term list with unit weights.
func (l *LREA) computeFactors(ctx context.Context, src, dst *graph.Graph) (*assign.FactorEmbedding, error) {
	n, m := src.N(), dst.N()
	if n == 0 || m == 0 {
		return nil, errors.New("lrea: empty graph")
	}
	iters := l.Iters
	if iters <= 0 {
		iters = 40
	}
	// The CSR adjacencies are only read (MulVec), so the shared cached
	// copies are safe here.
	aSrc := cache.Adjacency(l.cache, src)
	aDst := cache.Adjacency(l.cache, dst)

	// X_0 = uniform rank-one start.
	x := factored{}
	u0 := make([]float64, n)
	v0 := make([]float64, m)
	for i := range u0 {
		u0[i] = 1
	}
	for j := range v0 {
		v0[j] = 1
	}
	matrix.Normalize(u0)
	matrix.Normalize(v0)
	x.us = append(x.us, u0)
	x.vs = append(x.vs, v0)

	x, err := l.iterate(ctx, aSrc, aDst, x, iters)
	if err != nil {
		return nil, err
	}
	return &assign.FactorEmbedding{Us: x.us, Vs: x.vs}, nil
}

// iterate advances the factored power iteration by iters steps from x.
// Input factor slices are only read; every returned slice is fresh — which
// is what lets RefreshFactorsCtx warm-start from retained state without
// cloning it first.
func (l *LREA) iterate(ctx context.Context, aSrc, aDst *matrix.CSR, x factored, iters int) (factored, error) {
	n, m := len(x.us[0]), len(x.vs[0])
	// Expand the (sO, sN, sC) scores into the Kronecker-term coefficients.
	sO, sN, sC := l.OverlapWeight, l.BaselineWeight, l.ConflictPenalty
	if sO == 0 && sN == 0 && sC == 0 {
		sO, sN, sC = 2, 1, 0.001
	}
	c1 := sO - 2*sC + sN
	c2 := sC - sN
	c3 := sN

	ones := func(k int) []float64 {
		o := make([]float64, k)
		for i := range o {
			o[i] = 1
		}
		return o
	}
	oneSrc := ones(n)
	oneDst := ones(m)

	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return factored{}, err
		}
		r := len(x.us)
		nus := make([][]float64, 0, r+3)
		nvs := make([][]float64, 0, r+3)
		// Term 1: c1 A X Bᵀ — maps each (u, v) to (A u, B v), rank preserved.
		for i := 0; i < r; i++ {
			au := aSrc.MulVec(x.us[i])
			bv := aDst.MulVec(x.vs[i])
			for k := range au {
				au[k] *= c1
			}
			nus = append(nus, au)
			nvs = append(nvs, bv)
		}
		// Term 2: c2 A X Eᵀ = (A Σ u_i (v_iᵀ1)) 1ᵀ — one rank-one term.
		t2u := make([]float64, n)
		for i := 0; i < r; i++ {
			vsum := sum(x.vs[i])
			if vsum == 0 {
				continue
			}
			matrix.AxpyVec(t2u, x.us[i], vsum)
		}
		t2u = aSrc.MulVec(t2u)
		for k := range t2u {
			t2u[k] *= c2
		}
		nus = append(nus, t2u)
		nvs = append(nvs, append([]float64(nil), oneDst...))
		// Term 3: c2 E X Bᵀ = 1 (B Σ v_i (u_iᵀ1))ᵀ — one rank-one term.
		t3v := make([]float64, m)
		for i := 0; i < r; i++ {
			usum := sum(x.us[i])
			if usum == 0 {
				continue
			}
			matrix.AxpyVec(t3v, x.vs[i], usum)
		}
		t3v = aDst.MulVec(t3v)
		t3u := append([]float64(nil), oneSrc...)
		for k := range t3u {
			t3u[k] *= c2
		}
		nus = append(nus, t3u)
		nvs = append(nvs, t3v)
		// Term 4: c3 E X Eᵀ = (1ᵀ X 1) 1 1ᵀ — one rank-one term.
		total := 0.0
		for i := 0; i < r; i++ {
			total += sum(x.us[i]) * sum(x.vs[i])
		}
		t4u := append([]float64(nil), oneSrc...)
		for k := range t4u {
			t4u[k] *= c3 * total
		}
		nus = append(nus, t4u)
		nvs = append(nvs, append([]float64(nil), oneDst...))

		x.us, x.vs = nus, nvs
		x.renormalize()
		// Compress the factor list when it grows beyond a working bound:
		// without compression rank grows linearly and the per-iteration cost
		// quadratically. Densify-free compression keeps the top factors by
		// norm (the trailing terms decay geometrically under normalization).
		const maxRank = 160
		if len(x.us) > maxRank {
			x.truncate(maxRank)
		}
	}

	return x, nil
}

// renormalize scales the factored X to unit Frobenius-like norm using the
// product of factor norms as a proxy, preventing overflow across iterations.
func (f *factored) renormalize() {
	var total float64
	for i := range f.us {
		total += matrix.Norm2(f.us[i]) * matrix.Norm2(f.vs[i])
	}
	if total == 0 {
		return
	}
	inv := 1 / total
	for i := range f.us {
		for k := range f.us[i] {
			f.us[i][k] *= inv
		}
	}
}

// truncate keeps the k factors of largest norm product.
func (f *factored) truncate(k int) {
	type scored struct {
		idx int
		s   float64
	}
	all := make([]scored, len(f.us))
	for i := range f.us {
		all[i] = scored{i, matrix.Norm2(f.us[i]) * matrix.Norm2(f.vs[i])}
	}
	// selection of top-k by partial sort
	for i := 0; i < k && i < len(all); i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].s > all[best].s {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	nus := make([][]float64, 0, k)
	nvs := make([][]float64, 0, k)
	for i := 0; i < k && i < len(all); i++ {
		nus = append(nus, f.us[all[i].idx])
		nvs = append(nvs, f.vs[all[i].idx])
	}
	f.us, f.vs = nus, nvs
}

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}
