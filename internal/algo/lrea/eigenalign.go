package lrea

import (
	"errors"

	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

// EigenAlign is the exact method LREA approximates (Feizi et al.): power
// iteration for the dominant eigenvector of the full alignment matrix M,
// carried out on the dense n x m similarity matrix instead of LREA's
// factored low-rank form. Each iteration costs O(n m (d_A + d_B)) versus
// LREA's O(rank * (m_A + m_B)); the survey quotes LREA aligning graphs of
// 10,000 nodes in the time EigenAlign needs for 1,000. Provided as the
// baseline for the LREA ablation.
type EigenAlign struct {
	// Iters is the number of power iterations.
	Iters int
	// OverlapWeight, BaselineWeight, ConflictPenalty: see LREA; the same
	// (sO, sN, sC) scores are used.
	OverlapWeight, BaselineWeight, ConflictPenalty float64
}

// NewEigenAlign returns the exact baseline with the same defaults as LREA.
func NewEigenAlign() *EigenAlign {
	return &EigenAlign{Iters: 40}
}

// Name implements algo.Aligner.
func (e *EigenAlign) Name() string { return "EigenAlign" }

// DefaultAssignment implements algo.Aligner (as for LREA).
func (e *EigenAlign) DefaultAssignment() assign.Method { return assign.Hungarian }

// Similarity implements algo.Aligner with dense power iteration.
func (e *EigenAlign) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	n, m := src.N(), dst.N()
	if n == 0 || m == 0 {
		return nil, errors.New("eigenalign: empty graph")
	}
	iters := e.Iters
	if iters <= 0 {
		iters = 40
	}
	sO, sN, sC := e.OverlapWeight, e.BaselineWeight, e.ConflictPenalty
	if sO == 0 && sN == 0 && sC == 0 {
		sO, sN, sC = 2, 1, 0.001
	}
	c1 := sO - 2*sC + sN
	c2 := sC - sN
	c3 := sN

	aSrc := graph.Adjacency(src)
	aDst := graph.Adjacency(dst)

	x := matrix.NewDense(n, m)
	x.Fill(1)
	x.Scale(1 / x.FrobNorm())
	for it := 0; it < iters; it++ {
		// Term 1: A X Bᵀ — (A X) then multiply by Bᵀ via MulDenseT on the
		// transposed orientation: (B (A X)ᵀ)ᵀ. A and B are symmetric, so
		// A X Bᵀ = A X B.
		ax := aSrc.MulDense(x)           // n x m
		axb := aDst.MulDense(ax.T()).T() // n x m
		// Terms 2-4: rank-one updates from row/column sums.
		rowSum := x.RowSums()       // X 1  (length n)
		colSum := x.ColSums()       // Xᵀ 1 (length m)
		aRow := aSrc.MulVec(rowSum) // A X 1
		bCol := aDst.MulVec(colSum) // B Xᵀ 1
		total := 0.0
		for _, v := range rowSum {
			total += v
		}
		next := axb.Scale(c1)
		ones := make([]float64, m)
		for j := range ones {
			ones[j] = 1
		}
		onesN := make([]float64, n)
		for i := range onesN {
			onesN[i] = 1
		}
		next.AddOuterScaled(aRow, ones, c2)
		next.AddOuterScaled(onesN, bCol, c2)
		next.AddOuterScaled(onesN, ones, c3*total)
		nrm := next.FrobNorm()
		if nrm == 0 {
			break
		}
		next.Scale(1 / nrm)
		x = next
	}
	return x, nil
}
