package algo

import (
	"errors"
	"math"
	"testing"

	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
)

// stubAligner returns a fixed similarity matrix.
type stubAligner struct {
	sim *matrix.Dense
	err error
}

func (s stubAligner) Name() string { return "stub" }
func (s stubAligner) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return s.sim, s.err
}
func (s stubAligner) DefaultAssignment() assign.Method { return assign.SortGreedy }

func line(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	return graph.MustNew(n, edges)
}

func TestAlignUsesSimilarity(t *testing.T) {
	sim := matrix.DenseFromRows([][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 0, 1},
	})
	g := line(3)
	mapping, err := Align(stubAligner{sim: sim}, g, g, assign.JonkerVolgenant)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 2}
	for i := range want {
		if mapping[i] != want[i] {
			t.Fatalf("mapping = %v, want %v", mapping, want)
		}
	}
}

func TestAlignRejectsLargerSource(t *testing.T) {
	if _, err := Align(stubAligner{}, line(4), line(3), assign.SortGreedy); err == nil {
		t.Error("larger source accepted")
	}
}

func TestAlignPropagatesErrors(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Align(stubAligner{err: wantErr}, line(3), line(3), assign.SortGreedy)
	if err == nil || !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestAlignNNIsOneToOne(t *testing.T) {
	// Similarity that sends every row to column 0 under raw NN.
	sim := matrix.DenseFromRows([][]float64{
		{1, 0.1, 0.1},
		{0.9, 0.2, 0.1},
		{0.8, 0.1, 0.3},
	})
	g := line(3)
	mapping, err := Align(stubAligner{sim: sim}, g, g, assign.NearestNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range mapping {
		if v < 0 || seen[v] {
			t.Fatalf("NN alignment not one-to-one: %v", mapping)
		}
		seen[v] = true
	}
}

func TestAlignDefault(t *testing.T) {
	sim := matrix.DenseFromRows([][]float64{{1, 0}, {0, 1}})
	g := line(2)
	mapping, err := AlignDefault(stubAligner{sim: sim}, g, g)
	if err != nil {
		t.Fatal(err)
	}
	if mapping[0] != 0 || mapping[1] != 1 {
		t.Errorf("mapping = %v", mapping)
	}
}

func TestDegreePrior(t *testing.T) {
	star := graph.MustNew(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	p := DegreePrior(star, star)
	// Center-to-center: identical degree -> 1.
	if p.At(0, 0) != 1 {
		t.Errorf("prior center = %v", p.At(0, 0))
	}
	// Center (deg 3) to leaf (deg 1): 1 - 2/3 = 1/3.
	if math.Abs(p.At(0, 1)-1.0/3) > 1e-12 {
		t.Errorf("prior center-leaf = %v", p.At(0, 1))
	}
	// Isolated pair similarity 1.
	iso := graph.MustNew(1, nil)
	if DegreePrior(iso, iso).At(0, 0) != 1 {
		t.Error("isolated pair prior should be 1")
	}
}

func TestNormalizeSim(t *testing.T) {
	m := matrix.DenseFromRows([][]float64{{2, 2}, {2, 2}})
	NormalizeSim(m)
	if math.Abs(m.Sum()-1) > 1e-12 {
		t.Errorf("sum = %v", m.Sum())
	}
	z := matrix.NewDense(2, 2)
	NormalizeSim(z) // must not divide by zero
	if z.Sum() != 0 {
		t.Error("zero matrix changed")
	}
}
