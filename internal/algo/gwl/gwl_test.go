package gwl

import (
	"math"
	"testing"

	"graphalign/internal/algo"
	"graphalign/internal/algotest"
	"graphalign/internal/assign"
)

func TestRecoversIsomorphism(t *testing.T) {
	algotest.CheckRecovers(t, New(), 60, 0.8)
}

func TestDeterministic(t *testing.T) {
	algotest.CheckDeterministic(t, func() algo.Aligner { return New() }, 40)
}

func TestShape(t *testing.T) {
	algotest.CheckShape(t, New())
}

func TestDefaultAssignment(t *testing.T) {
	if New().DefaultAssignment() != assign.NearestNeighbor {
		t.Error("GWL extracts alignments by nearest neighbor")
	}
}

func TestCostMatrixStructure(t *testing.T) {
	p := algotest.Pair(t, 30, 0, 31)
	c := CostMatrix(p.Source)
	n := p.Source.N()
	if c.Rows != n || c.Cols != n {
		t.Fatal("cost matrix shape wrong")
	}
	for i := 0; i < n; i++ {
		if c.At(i, i) != 0 {
			t.Fatal("diagonal cost must be 0")
		}
		for _, j := range p.Source.Neighbors(i) {
			if c.At(i, j) >= 1 {
				t.Fatal("adjacent nodes must be cheaper than non-adjacent")
			}
		}
	}
}

func TestPlanIsNonNegativeWithMarginals(t *testing.T) {
	p := algotest.Pair(t, 40, 0.02, 32)
	plan, err := New().Similarity(p.Source, p.Target)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range plan.Data {
		if v < 0 {
			t.Fatal("negative transport mass")
		}
		total += v
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("plan mass = %v, want 1", total)
	}
}

func TestMultipleEpochsRun(t *testing.T) {
	g := New()
	g.Epochs = 3
	p := algotest.Pair(t, 40, 0, 33)
	acc := algotest.Accuracy(t, g, p, assign.JonkerVolgenant)
	if acc < 0.5 {
		t.Errorf("3-epoch GWL accuracy %.3f", acc)
	}
}
