// Package gwl implements Gromov–Wasserstein Learning (Xu, Luo, Zha, Carin
// 2019): joint estimation of an optimal transport plan between the node
// sets of two graphs and node embeddings regularized by that plan
// (Equation 11 of the survey).
//
// The transport subproblem — the Gromov–Wasserstein discrepancy between the
// graphs' cost matrices under a proximal-point scheme — is solved exactly
// as published (internal/ot). The embedding subproblem is a deterministic
// gradient update that pulls embedding distances toward the graph cost
// matrices and toward transported counterparts, a faithful but
// deterministic stand-in for the original's sampled Adam updates (see
// DESIGN.md, substitution 4).
package gwl

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"graphalign/internal/assign"
	"graphalign/internal/graph"
	"graphalign/internal/matrix"
	"graphalign/internal/ot"
)

// GWL aligns graphs by Gromov–Wasserstein optimal transport with jointly
// learned embeddings.
type GWL struct {
	// Epochs is the number of outer alternations between transport and
	// embedding updates (the study tunes epoch=1).
	Epochs int
	// Dim is the embedding dimensionality.
	Dim int
	// Alpha weighs the embedding (Wasserstein) term when blending costs.
	Alpha float64
	// Beta is the proximal regularization strength of the transport solver.
	Beta float64
	// OuterIters / SinkhornIters configure the proximal-point GW solver.
	OuterIters, SinkhornIters int
	// LearningRate scales the embedding gradient step.
	LearningRate float64
	// Seed initializes embeddings deterministically.
	Seed int64
}

// New returns GWL with the study's tuned hyperparameters (1 epoch).
func New() *GWL {
	return &GWL{
		Epochs: 1, Dim: 32, Alpha: 0.1, Beta: 0.1,
		OuterIters: 20, SinkhornIters: 30, LearningRate: 0.05, Seed: 1,
	}
}

// Name implements algo.Aligner.
func (g *GWL) Name() string { return "GWL" }

// DefaultAssignment implements algo.Aligner; GWL extracts alignments by
// nearest neighbor on the transport plan.
func (g *GWL) DefaultAssignment() assign.Method { return assign.NearestNeighbor }

// CostMatrix builds the intra-graph cost matrix GWL uses: 1 - A/max plus a
// small diagonal bias, i.e. adjacent nodes are close. Following the
// published code, costs come from the adjacency structure directly.
func CostMatrix(g *graph.Graph) *matrix.Dense {
	n := g.N()
	c := matrix.NewDense(n, n)
	c.Fill(1)
	for u := 0; u < n; u++ {
		c.Set(u, u, 0)
		for _, v := range g.Neighbors(u) {
			c.Set(u, v, 0.25)
		}
	}
	return c
}

// Similarity implements algo.Aligner: the returned matrix is the learned
// transport plan (mass T[i][j] is the evidence that i corresponds to j).
func (g *GWL) Similarity(src, dst *graph.Graph) (*matrix.Dense, error) {
	return g.SimilarityCtx(context.Background(), src, dst)
}

// SimilarityCtx implements algo.ContextAligner; ctx is checked per epoch and
// threaded into every proximal/Sinkhorn round of the transport solver.
func (g *GWL) SimilarityCtx(ctx context.Context, src, dst *graph.Graph) (*matrix.Dense, error) {
	n1, n2 := src.N(), dst.N()
	if n1 == 0 || n2 == 0 {
		return nil, errors.New("gwl: empty graph")
	}
	epochs := g.Epochs
	if epochs <= 0 {
		epochs = 1
	}
	mu := ot.DegreeWeights(src.Degrees())
	nu := ot.DegreeWeights(dst.Degrees())

	cSrc := CostMatrix(src)
	cDst := CostMatrix(dst)

	rng := rand.New(rand.NewSource(g.Seed))
	xs := randomEmbedding(n1, g.Dim, rng)
	xt := randomEmbedding(n2, g.Dim, rng)

	opts := ot.GWOptions{Beta: g.Beta, OuterIters: g.OuterIters, SinkhornIters: g.SinkhornIters}
	var plan *matrix.Dense
	for e := 0; e < epochs; e++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Blend structural cost with embedding-derived cost (Wasserstein
		// term of Equation 11).
		ca := blendCost(cSrc, xs, g.Alpha)
		cb := blendCost(cDst, xt, g.Alpha)
		var err error
		plan, err = ot.GromovWassersteinCtx(ctx, ca, cb, mu, nu, opts)
		if err != nil {
			return nil, err
		}
		if e == epochs-1 {
			break
		}
		updateEmbeddings(xs, xt, plan, cSrc, cDst, g.LearningRate)
	}
	return plan, nil
}

// randomEmbedding draws a small random matrix; rows are node embeddings.
func randomEmbedding(n, d int, rng *rand.Rand) *matrix.Dense {
	x := matrix.NewDense(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() * 0.1
	}
	return x
}

// blendCost returns (1-alpha)*c + alpha*pairwise-embedding-distance.
func blendCost(c *matrix.Dense, x *matrix.Dense, alpha float64) *matrix.Dense {
	if alpha == 0 {
		return c
	}
	n := c.Rows
	out := c.Clone().Scale(1 - alpha)
	for i := 0; i < n; i++ {
		ri := x.Row(i)
		orow := out.Row(i)
		for j := 0; j < n; j++ {
			rj := x.Row(j)
			var d2 float64
			for k := range ri {
				d := ri[k] - rj[k]
				d2 += d * d
			}
			orow[j] += alpha * math.Sqrt(d2)
		}
	}
	return out
}

// updateEmbeddings performs one deterministic gradient step: source
// embeddings move toward the plan-weighted average of target embeddings
// (and vice versa), shrinking the Wasserstein term of the objective.
func updateEmbeddings(xs, xt, plan *matrix.Dense, cSrc, cDst *matrix.Dense, lr float64) {
	n1, n2 := xs.Rows, xt.Rows
	d := xs.Cols
	rowMass := plan.RowSums()
	colMass := plan.ColSums()
	// Barycentric targets.
	for i := 0; i < n1; i++ {
		if rowMass[i] <= 0 {
			continue
		}
		target := make([]float64, d)
		prow := plan.Row(i)
		for j := 0; j < n2; j++ {
			w := prow[j]
			if w == 0 {
				continue
			}
			matrix.AxpyVec(target, xt.Row(j), w/rowMass[i])
		}
		row := xs.Row(i)
		for k := 0; k < d; k++ {
			row[k] += lr * (target[k] - row[k])
		}
	}
	for j := 0; j < n2; j++ {
		if colMass[j] <= 0 {
			continue
		}
		target := make([]float64, d)
		for i := 0; i < n1; i++ {
			w := plan.At(i, j)
			if w == 0 {
				continue
			}
			matrix.AxpyVec(target, xs.Row(i), w/colMass[j])
		}
		row := xt.Row(j)
		for k := 0; k < d; k++ {
			row[k] += lr * (target[k] - row[k])
		}
	}
}
