// Package gen implements the random graph generators the paper evaluates
// on (Section 5.1.2): Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
// Newman–Watts, the Holme–Kim powerlaw-cluster model, and the configuration
// model used in the scalability experiments. All generators are
// deterministic given a *rand.Rand.
package gen

import (
	"fmt"
	"math/rand"

	"graphalign/internal/graph"
)

// Model names the generators, matching the paper's abbreviations.
type Model string

// Generator model identifiers.
const (
	ER     Model = "ER"
	BA     Model = "BA"
	WS     Model = "WS"
	NW     Model = "NW"
	PL     Model = "PL"
	Config Model = "CONFIG"
)

// edgeSet accumulates unique undirected edges.
type edgeSet struct {
	seen  map[graph.Edge]bool
	edges []graph.Edge
}

func newEdgeSet() *edgeSet {
	return &edgeSet{seen: make(map[graph.Edge]bool)}
}

func (s *edgeSet) add(u, v int) bool {
	if u == v {
		return false
	}
	e := graph.Edge{U: u, V: v}.Canon()
	if s.seen[e] {
		return false
	}
	s.seen[e] = true
	s.edges = append(s.edges, e)
	return true
}

func (s *edgeSet) has(u, v int) bool {
	return s.seen[graph.Edge{U: u, V: v}.Canon()]
}

func (s *edgeSet) remove(u, v int) bool {
	e := graph.Edge{U: u, V: v}.Canon()
	if !s.seen[e] {
		return false
	}
	delete(s.seen, e)
	for i, x := range s.edges {
		if x == e {
			s.edges[i] = s.edges[len(s.edges)-1]
			s.edges = s.edges[:len(s.edges)-1]
			break
		}
	}
	return true
}

// ErdosRenyi samples G(n, p): every pair becomes an edge independently with
// probability p.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	return graph.MustNew(n, edges)
}

// BarabasiAlbert grows a preferential-attachment graph: each new node
// attaches to m existing nodes chosen proportionally to degree. The paper
// uses m = 5.
func BarabasiAlbert(n, m int, rng *rand.Rand) *graph.Graph {
	if m < 1 || n <= m {
		panic(fmt.Sprintf("gen: BA requires 1 <= m < n, got n=%d m=%d", n, m))
	}
	es := newEdgeSet()
	// Repeated-nodes list: each endpoint appearance is one "degree token",
	// so uniform sampling from it is preferential attachment.
	var targets []int
	// Seed: star over the first m+1 nodes.
	for v := 0; v < m; v++ {
		es.add(v, m)
		targets = append(targets, v, m)
	}
	for u := m + 1; u < n; u++ {
		added := 0
		for added < m {
			w := targets[rng.Intn(len(targets))]
			if es.add(u, w) {
				added++
			}
		}
		// Append degree tokens for the m new edges.
		row := es.edges[len(es.edges)-m:]
		for _, e := range row {
			targets = append(targets, e.U, e.V)
		}
	}
	return graph.MustNew(n, es.edges)
}

// WattsStrogatz builds the small-world model: a ring lattice where every
// node connects to its k nearest neighbors (k even), then each lattice edge
// is rewired with probability p to a uniformly random non-duplicate target.
func WattsStrogatz(n, k int, p float64, rng *rand.Rand) *graph.Graph {
	if k%2 != 0 || k >= n {
		panic(fmt.Sprintf("gen: WS requires even k < n, got n=%d k=%d", n, k))
	}
	es := newEdgeSet()
	for u := 0; u < n; u++ {
		for d := 1; d <= k/2; d++ {
			es.add(u, (u+d)%n)
		}
	}
	// Rewire each original lattice edge (u, u+d) with probability p.
	for u := 0; u < n; u++ {
		for d := 1; d <= k/2; d++ {
			v := (u + d) % n
			if rng.Float64() >= p {
				continue
			}
			if !es.has(u, v) {
				continue // already rewired away by the other endpoint
			}
			// Pick a new target w != u not already adjacent.
			for tries := 0; tries < 4*n; tries++ {
				w := rng.Intn(n)
				if w == u || es.has(u, w) {
					continue
				}
				es.remove(u, v)
				es.add(u, w)
				break
			}
		}
	}
	return graph.MustNew(n, es.edges)
}

// NewmanWatts builds the Newman–Watts small-world variant: the same ring
// lattice, but instead of rewiring, each lattice edge spawns an additional
// random shortcut with probability p (no edges are removed).
func NewmanWatts(n, k int, p float64, rng *rand.Rand) *graph.Graph {
	if k%2 != 0 {
		k-- // the paper's k=7 rounds down to the nearest lattice half-width
	}
	if k < 2 || k >= n {
		panic(fmt.Sprintf("gen: NW requires 2 <= k < n, got n=%d k=%d", n, k))
	}
	es := newEdgeSet()
	for u := 0; u < n; u++ {
		for d := 1; d <= k/2; d++ {
			es.add(u, (u+d)%n)
		}
	}
	lattice := len(es.edges)
	for i := 0; i < lattice; i++ {
		if rng.Float64() >= p {
			continue
		}
		u := es.edges[i].U
		for tries := 0; tries < 4*n; tries++ {
			w := rng.Intn(n)
			if w != u && es.add(u, w) {
				break
			}
		}
	}
	return graph.MustNew(n, es.edges)
}

// PowerlawCluster builds the Holme–Kim model: Barabási–Albert growth where,
// after each preferential attachment, a triangle-closing step to a random
// neighbor of the just-linked node fires with probability p.
func PowerlawCluster(n, m int, p float64, rng *rand.Rand) *graph.Graph {
	if m < 1 || n <= m {
		panic(fmt.Sprintf("gen: PL requires 1 <= m < n, got n=%d m=%d", n, m))
	}
	es := newEdgeSet()
	adj := make([][]int, n)
	link := func(u, v int) bool {
		if es.add(u, v) {
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
			return true
		}
		return false
	}
	var targets []int
	for v := 0; v < m; v++ {
		link(v, m)
		targets = append(targets, v, m)
	}
	for u := m + 1; u < n; u++ {
		added := 0
		last := -1
		var newTokens []int
		for added < m {
			var w int
			if last >= 0 && p > 0 && rng.Float64() < p && len(adj[last]) > 0 {
				// Triangle formation: connect to a random neighbor of last.
				w = adj[last][rng.Intn(len(adj[last]))]
				if w == u || es.has(u, w) {
					// Fall back to preferential attachment.
					w = targets[rng.Intn(len(targets))]
				}
			} else {
				w = targets[rng.Intn(len(targets))]
			}
			if link(u, w) {
				added++
				last = w
				newTokens = append(newTokens, u, w)
			}
		}
		targets = append(targets, newTokens...)
	}
	return graph.MustNew(n, es.edges)
}

// ConfigurationModel samples a simple graph whose degree sequence
// approximates degrees: stubs are paired uniformly, and self-loops or
// duplicate pairings are skipped (so realized degrees can fall slightly
// short, as in standard erased configuration models).
func ConfigurationModel(degrees []int, rng *rand.Rand) *graph.Graph {
	n := len(degrees)
	var stubs []int
	for u, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	es := newEdgeSet()
	for i := 0; i+1 < len(stubs); i += 2 {
		es.add(stubs[i], stubs[i+1])
	}
	return graph.MustNew(n, es.edges)
}

// NormalDegrees returns a degree sequence of length n drawn from a normal
// distribution with the given mean and standard deviation, clamped to
// [1, n-1]. The sum is adjusted to be even so all stubs can pair.
func NormalDegrees(n int, mean, stddev float64, rng *rand.Rand) []int {
	deg := make([]int, n)
	sum := 0
	for i := range deg {
		d := int(rng.NormFloat64()*stddev + mean + 0.5)
		if d < 1 {
			d = 1
		}
		if d > n-1 {
			d = n - 1
		}
		deg[i] = d
		sum += d
	}
	if sum%2 == 1 {
		deg[0]++
	}
	return deg
}

// Generate dispatches by model name with the paper's default parameters
// (Section 5.1.2) for a graph of n nodes.
func Generate(model Model, n int, rng *rand.Rand) (*graph.Graph, error) {
	switch model {
	case ER:
		return ErdosRenyi(n, 0.009, rng), nil
	case BA:
		return BarabasiAlbert(n, 5, rng), nil
	case WS:
		return WattsStrogatz(n, 10, 0.5, rng), nil
	case NW:
		return NewmanWatts(n, 7, 0.5, rng), nil
	case PL:
		return PowerlawCluster(n, 5, 0.5, rng), nil
	case Config:
		return ConfigurationModel(NormalDegrees(n, 10, 2, rng), rng), nil
	default:
		return nil, fmt.Errorf("gen: unknown model %q", model)
	}
}

// GenerateScaled is Generate with size-invariant density: the paper fixes
// its parameters for n = 1133 graphs, and the edge-probability models (ER)
// must have p rescaled to preserve the expected degree when experiments run
// at reduced size. The fixed-degree models (BA, WS, NW, PL, Config) keep
// their parameters, which are already size-invariant.
func GenerateScaled(model Model, n int, rng *rand.Rand) (*graph.Graph, error) {
	if model == ER {
		const paperN, paperP = 1133, 0.009
		p := paperP * float64(paperN-1) / float64(n-1)
		if p > 1 {
			p = 1
		}
		return ErdosRenyi(n, p, rng), nil
	}
	return Generate(model, n, rng)
}

// Models lists the five models of the synthetic-graph experiments in the
// paper's order.
func Models() []Model {
	return []Model{ER, BA, WS, NW, PL}
}
