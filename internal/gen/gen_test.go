package gen

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphalign/internal/graph"
)

func TestErdosRenyiBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ErdosRenyi(50, 0.2, rng)
	if g.N() != 50 {
		t.Fatalf("n = %d", g.N())
	}
	maxEdges := 50 * 49 / 2
	if g.M() > maxEdges {
		t.Fatal("too many edges")
	}
	// Expectation 245; allow generous slack.
	if g.M() < 150 || g.M() > 350 {
		t.Errorf("edge count %d implausible for p=0.2", g.M())
	}
	if ErdosRenyi(10, 0, rng).M() != 0 {
		t.Error("p=0 should yield empty graph")
	}
	if g2 := ErdosRenyi(10, 1, rng); g2.M() != 45 {
		t.Errorf("p=1 should yield complete graph, got m=%d", g2.M())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, m := 200, 5
	g := BarabasiAlbert(n, m, rng)
	if g.N() != n {
		t.Fatalf("n = %d", g.N())
	}
	// Every node added after the seed contributes exactly m edges.
	wantM := m + (n-m-1)*m
	if g.M() != wantM {
		t.Errorf("m = %d, want %d", g.M(), wantM)
	}
	// Nodes beyond the seed have degree >= m.
	for u := m + 1; u < n; u++ {
		if g.Degree(u) < m {
			t.Fatalf("node %d degree %d < m", u, g.Degree(u))
		}
	}
	if !graph.IsConnected(g) {
		t.Error("BA graph should be connected")
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n <= m should panic")
		}
	}()
	BarabasiAlbert(3, 5, rand.New(rand.NewSource(1)))
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// p=0: pure ring lattice, all degrees k, m = n*k/2.
	g := WattsStrogatz(30, 6, 0, rng)
	if g.M() != 30*6/2 {
		t.Fatalf("lattice m = %d, want 90", g.M())
	}
	for u := 0; u < 30; u++ {
		if g.Degree(u) != 6 {
			t.Fatalf("lattice degree %d, want 6", g.Degree(u))
		}
	}
	// p=0.5: same edge count (rewiring preserves it unless stuck).
	g2 := WattsStrogatz(30, 6, 0.5, rng)
	if g2.M() > 90 {
		t.Errorf("rewiring should not add edges: m=%d", g2.M())
	}
	if g2.M() < 80 {
		t.Errorf("rewiring lost too many edges: m=%d", g2.M())
	}
}

func TestNewmanWatts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewmanWatts(40, 6, 0, rng)
	if g.M() != 40*6/2 {
		t.Fatalf("NW p=0 m = %d, want 120", g.M())
	}
	g2 := NewmanWatts(40, 6, 0.5, rng)
	if g2.M() < 120 {
		t.Error("NW must never remove lattice edges")
	}
	// Odd k rounds down (the paper's k=7 behaves like 6).
	g3 := NewmanWatts(40, 7, 0, rng)
	if g3.M() != 120 {
		t.Errorf("NW k=7 should act like k=6: m=%d", g3.M())
	}
}

func TestPowerlawCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, m := 300, 5
	g := PowerlawCluster(n, m, 0.5, rng)
	wantM := m + (n-m-1)*m
	if g.M() != wantM {
		t.Errorf("m = %d, want %d", g.M(), wantM)
	}
	// Triangle formation should produce higher clustering than plain BA.
	ba := BarabasiAlbert(n, m, rand.New(rand.NewSource(5)))
	if graph.ClusteringCoefficient(g) <= graph.ClusteringCoefficient(ba)*0.9 {
		t.Errorf("PL clustering %.4f not above BA %.4f",
			graph.ClusteringCoefficient(g), graph.ClusteringCoefficient(ba))
	}
}

func TestConfigurationModel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	deg := []int{3, 3, 2, 2, 2}
	g := ConfigurationModel(deg, rng)
	if g.N() != 5 {
		t.Fatalf("n = %d", g.N())
	}
	// Erased model: realized degree never exceeds requested.
	for u := 0; u < 5; u++ {
		if g.Degree(u) > deg[u] {
			t.Errorf("node %d degree %d exceeds requested %d", u, g.Degree(u), deg[u])
		}
	}
}

func TestNormalDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	deg := NormalDegrees(500, 10, 2, rng)
	sum := 0
	for _, d := range deg {
		if d < 1 || d > 499 {
			t.Fatalf("degree %d out of range", d)
		}
		sum += d
	}
	if sum%2 != 0 {
		t.Error("degree sum must be even")
	}
	mean := float64(sum) / 500
	if mean < 9 || mean > 11 {
		t.Errorf("mean degree %v far from 10", mean)
	}
}

func TestGenerateDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, m := range append(Models(), Config) {
		g, err := Generate(m, 200, rng)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if g.N() != 200 {
			t.Errorf("%s: n = %d", m, g.N())
		}
	}
	if _, err := Generate(Model("nope"), 10, rng); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, m := range Models() {
		g1, _ := Generate(m, 150, rand.New(rand.NewSource(99)))
		g2, _ := Generate(m, 150, rand.New(rand.NewSource(99)))
		if !reflect.DeepEqual(g1.Edges(), g2.Edges()) {
			t.Errorf("%s: generation not deterministic under fixed seed", m)
		}
	}
}

func TestPropertyGeneratorsProduceSimpleGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, m := range Models() {
			g, err := Generate(m, 80, rng)
			if err != nil {
				return false
			}
			// graph.New already rejects duplicates/self-loops; verify edge
			// invariants survived generation.
			for _, e := range g.Edges() {
				if e.U == e.V || e.U < 0 || e.V >= g.N() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestGenerateScaledPreservesERDensity(t *testing.T) {
	g1, err := GenerateScaled(ER, 1133, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GenerateScaled(ER, 200, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Expected degree ~ p*(n-1) ~ 10.2 in both cases.
	if d := g1.AvgDegree(); d < 8 || d > 13 {
		t.Errorf("full-size ER avg degree %v", d)
	}
	if d := g2.AvgDegree(); d < 8 || d > 13 {
		t.Errorf("scaled ER avg degree %v", d)
	}
	// Non-ER models pass through unchanged.
	g3, err := GenerateScaled(BA, 200, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	g4, err := Generate(BA, 200, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g3.Edges(), g4.Edges()) {
		t.Error("GenerateScaled must match Generate for fixed-degree models")
	}
}
