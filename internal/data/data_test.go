package data

import (
	"math"
	"reflect"
	"testing"
)

func TestCatalogMirrorsTable2(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("catalog has %d datasets, Table 2 lists 16", len(names))
	}
	arenas, err := Describe("arenas")
	if err != nil {
		t.Fatal(err)
	}
	if arenas.N != 1133 || arenas.M != 5451 {
		t.Errorf("arenas stats %d/%d do not match Table 2", arenas.N, arenas.M)
	}
	if _, err := Describe("not-a-dataset"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestLoadMatchesCatalogStats(t *testing.T) {
	for _, name := range []string{"arenas", "inf-euroroad", "bio-celegans", "ca-netscience", "highschool"} {
		d, err := Describe(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != d.N {
			t.Errorf("%s: n = %d, want %d", name, g.N(), d.N)
		}
		// Edge count within 10% of the paper's (generators can't always hit
		// it exactly; social PL generators are within ~2%).
		ratio := float64(g.M()) / float64(d.M)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: m = %d vs paper %d (ratio %.3f)", name, g.M(), d.M, ratio)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	g1, err := Load("voles")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Load("voles")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1.Edges(), g2.Edges()) {
		t.Error("Load is not deterministic")
	}
}

func TestLoadScaled(t *testing.T) {
	d, _ := Describe("arenas")
	g, err := LoadScaled("arenas", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	wantN := int(float64(d.N) * 0.25)
	if g.N() != wantN {
		t.Errorf("scaled n = %d, want %d", g.N(), wantN)
	}
	// Average degree roughly preserved.
	full, _ := Load("arenas")
	if math.Abs(g.AvgDegree()-full.AvgDegree()) > full.AvgDegree()*0.3 {
		t.Errorf("avg degree %v vs full %v", g.AvgDegree(), full.AvgDegree())
	}
	if _, err := LoadScaled("arenas", 0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := LoadScaled("arenas", 1.5); err == nil {
		t.Error("scale > 1 accepted")
	}
}

func TestEvolvingVariants(t *testing.T) {
	fractions := []float64{0.8, 0.99}
	pairs, err := EvolvingVariantsScaled("highschool", fractions, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for i, p := range pairs {
		if p.Source.N() != p.Target.N() {
			t.Error("variant changed node count")
		}
		want := int((1 - fractions[i]) * float64(p.Source.M()))
		got := p.Source.M() - p.Target.M()
		if diff := got - want; diff > 2 || diff < -2 {
			t.Errorf("fraction %.2f: removed %d edges, want ~%d", fractions[i], got, want)
		}
	}
	// Non-evolving datasets refuse.
	if _, err := EvolvingVariants("arenas", fractions); err == nil {
		t.Error("non-evolving dataset accepted")
	}
	if _, err := EvolvingVariantsScaled("voles", []float64{0}, 1); err == nil {
		t.Error("zero fraction accepted")
	}
}

func TestKindsAssigned(t *testing.T) {
	for _, name := range Names() {
		d, _ := Describe(name)
		switch d.Kind {
		case Communication, Social, Collaboration, Infrastructure, Biological, Proximity:
		default:
			t.Errorf("%s: unknown kind %q", name, d.Kind)
		}
	}
}
