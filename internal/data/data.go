// Package data provides the benchmark datasets of the study's Table 2 as
// deterministic synthetic stand-ins, plus the evolving ground-truth graphs
// of Section 6.5.
//
// The original study downloads sixteen public networks; this repository is
// built for offline use, so each dataset is synthesized with the same node
// count, a closely matching edge count, and the degree character of its
// network type (see DESIGN.md, substitution 1):
//
//   - social / communication / collaboration -> powerlaw (Holme–Kim)
//   - infrastructure -> ring-lattice with shortcut noise (grid-like, sparse)
//   - proximity -> dense small-world (Watts–Strogatz)
//   - biological -> triangle-heavy powerlaw (Holme–Kim, high clustering)
//
// Stand-ins are generated from fixed seeds so every experiment is
// reproducible bit-for-bit.
package data

import (
	"fmt"
	"math/rand"
	"sort"

	"graphalign/internal/gen"
	"graphalign/internal/graph"
	"graphalign/internal/noise"
)

// Kind classifies a dataset's network type (Table 2's "Type" column).
type Kind string

// Network types appearing in Table 2.
const (
	Communication  Kind = "communication"
	Social         Kind = "social"
	Collaboration  Kind = "collaboration"
	Infrastructure Kind = "infrastructure"
	Biological     Kind = "biological"
	Proximity      Kind = "proximity"
)

// Dataset describes one Table 2 entry.
type Dataset struct {
	Name string
	N    int // paper's node count
	M    int // paper's edge count
	Kind Kind
	Seed int64
	// Evolving marks the three ground-truth datasets of Section 6.5.
	Evolving bool
}

// catalog mirrors Table 2 of the paper.
var catalog = []Dataset{
	{Name: "arenas", N: 1133, M: 5451, Kind: Communication, Seed: 101},
	{Name: "facebook", N: 4039, M: 88234, Kind: Social, Seed: 102},
	{Name: "ca-astroph", N: 17903, M: 197031, Kind: Collaboration, Seed: 103},
	{Name: "inf-euroroad", N: 1174, M: 1417, Kind: Infrastructure, Seed: 104},
	{Name: "inf-power", N: 4941, M: 6594, Kind: Infrastructure, Seed: 105},
	{Name: "fb-haverford76", N: 1446, M: 59589, Kind: Social, Seed: 106},
	{Name: "fb-hamilton46", N: 2314, M: 96394, Kind: Social, Seed: 107},
	{Name: "fb-bowdoin47", N: 2252, M: 84387, Kind: Social, Seed: 108},
	{Name: "fb-swarthmore42", N: 1659, M: 61050, Kind: Social, Seed: 109},
	{Name: "soc-hamsterster", N: 2426, M: 16630, Kind: Social, Seed: 110},
	{Name: "bio-celegans", N: 453, M: 2025, Kind: Biological, Seed: 111},
	{Name: "ca-grqc", N: 4158, M: 14422, Kind: Collaboration, Seed: 112},
	{Name: "ca-netscience", N: 379, M: 914, Kind: Collaboration, Seed: 113},
	{Name: "multimagna", N: 1004, M: 8323, Kind: Biological, Seed: 114, Evolving: true},
	{Name: "highschool", N: 327, M: 5818, Kind: Proximity, Seed: 115, Evolving: true},
	{Name: "voles", N: 712, M: 2391, Kind: Proximity, Seed: 116, Evolving: true},
}

// Names returns every dataset name in Table 2 order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, d := range catalog {
		out[i] = d.Name
	}
	return out
}

// Describe returns the catalog entry for a dataset name.
func Describe(name string) (Dataset, error) {
	for _, d := range catalog {
		if d.Name == name {
			return d, nil
		}
	}
	names := Names()
	sort.Strings(names)
	return Dataset{}, fmt.Errorf("data: unknown dataset %q (have %v)", name, names)
}

// Load synthesizes the stand-in graph for a Table 2 dataset. Repeated calls
// return identical graphs (fixed seed).
func Load(name string) (*graph.Graph, error) {
	d, err := Describe(name)
	if err != nil {
		return nil, err
	}
	return synthesize(d), nil
}

// LoadScaled synthesizes a reduced-size version of the dataset, preserving
// its average degree; useful on machines far smaller than the paper's
// 28-core/256 GB testbed. scale must be in (0, 1].
func LoadScaled(name string, scale float64) (*graph.Graph, error) {
	d, err := Describe(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("data: scale %v out of (0, 1]", scale)
	}
	if scale < 1 {
		avg := 2 * float64(d.M) / float64(d.N)
		d.N = int(float64(d.N) * scale)
		if d.N < 32 {
			d.N = 32
		}
		d.M = int(avg * float64(d.N) / 2)
	}
	return synthesize(d), nil
}

// synthesize builds the stand-in according to the dataset's network kind.
func synthesize(d Dataset) *graph.Graph {
	rng := rand.New(rand.NewSource(d.Seed))
	avg := 2 * float64(d.M) / float64(d.N)
	switch d.Kind {
	case Infrastructure:
		// Grid-like sparse nets: ring lattice with a few shortcuts.
		k := int(avg + 0.5)
		if k < 2 {
			k = 2
		}
		if k%2 == 1 {
			k++
		}
		return gen.NewmanWatts(d.N, k, 0.05, rng)
	case Proximity:
		// Dense small-world contact structure: homogeneous degrees with
		// heavy clustering, the shape of face-to-face proximity networks.
		k := int(avg + 0.5)
		if k%2 == 1 {
			k++
		}
		if k < 2 {
			k = 2
		}
		if k >= d.N {
			k = d.N - 2
		}
		return gen.WattsStrogatz(d.N, k, 0.3, rng)
	case Biological:
		// Protein-interaction networks: skewed degrees with strong local
		// clustering (triangle-heavy powerlaw growth).
		m := int(avg / 2)
		if m < 1 {
			m = 1
		}
		g := gen.PowerlawCluster(d.N, m, 0.7, rng)
		return topUpEdges(g, d.M, rng)
	default:
		// Powerlaw-flavored social/communication/collaboration networks.
		// PL growth adds a fixed integer m of edges per node, so top up with
		// random extra edges to land on the paper's edge count.
		m := int(avg / 2)
		if m < 1 {
			m = 1
		}
		g := gen.PowerlawCluster(d.N, m, 0.3, rng)
		return topUpEdges(g, d.M, rng)
	}
}

// topUpEdges adds uniformly random absent edges until the graph reaches the
// target edge count (no-op when already at or above it).
func topUpEdges(g *graph.Graph, targetM int, rng *rand.Rand) *graph.Graph {
	missing := targetM - g.M()
	if missing <= 0 {
		return g
	}
	edges := g.Edges()
	existing := make(map[graph.Edge]bool, len(edges)+missing)
	for _, e := range edges {
		existing[e.Canon()] = true
	}
	n := g.N()
	for tries := 0; missing > 0 && tries < 100*targetM; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canon()
		if existing[e] {
			continue
		}
		existing[e] = true
		edges = append(edges, e)
		missing--
	}
	return graph.MustNew(n, edges)
}

// EvolvingVariants returns the alignment instances of Section 6.5: the base
// graph matched against variants retaining each of the given edge
// fractions. The returned pairs carry identity-free ground truth via
// their TrueMap (a hidden node permutation), exactly like the noise
// instances, but the perturbation is pure edge subsampling of the base.
func EvolvingVariants(name string, fractions []float64) ([]noise.Pair, error) {
	return EvolvingVariantsScaled(name, fractions, 1)
}

// EvolvingVariantsScaled is EvolvingVariants on a size-reduced base graph
// (see LoadScaled).
func EvolvingVariantsScaled(name string, fractions []float64, scale float64) ([]noise.Pair, error) {
	d, err := Describe(name)
	if err != nil {
		return nil, err
	}
	if !d.Evolving {
		return nil, fmt.Errorf("data: dataset %q has no evolving variants", name)
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("data: scale %v out of (0, 1]", scale)
	}
	if scale < 1 {
		avg := 2 * float64(d.M) / float64(d.N)
		d.N = int(float64(d.N) * scale)
		if d.N < 32 {
			d.N = 32
		}
		d.M = int(avg * float64(d.N) / 2)
	}
	base := synthesize(d)
	rng := rand.New(rand.NewSource(d.Seed + 7_000))
	out := make([]noise.Pair, 0, len(fractions))
	for _, f := range fractions {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("data: edge fraction %v out of (0, 1]", f)
		}
		p, err := noise.Apply(base, noise.OneWay, 1-f, noise.Options{}, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
