package noise

import (
	"fmt"
	"math/rand"

	"graphalign/internal/graph"
)

// EditBatch draws one batch of graph edits in the Multi-Modal shape the
// paper's noise model uses (remove a fraction of edges, add the same number
// of previously-absent ones) — but expressed as an explicit edit stream
// rather than a rebuilt graph, so it doubles as the delta format of the
// incremental alignment mode: applying the returned batch with
// graph.ApplyEdits(g, batch) yields a graph drawn from the same distribution
// RemoveAndAddEdges samples.
//
// level is the fraction of g's edges removed (and re-added elsewhere);
// deterministic given rng. The batch lists removals first, then additions,
// and is always applicable to g in order.
func EditBatch(g *graph.Graph, level float64, rng *rand.Rand) ([]graph.Edit, error) {
	if level < 0 || level >= 1 {
		return nil, fmt.Errorf("noise: level %v out of [0,1)", level)
	}
	m := g.M()
	toRemove := int(level*float64(m) + 0.5)
	if toRemove == 0 {
		return nil, nil
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	batch := make([]graph.Edit, 0, 2*toRemove)
	forbidden := make(map[graph.Edge]bool, m+toRemove)
	for _, e := range g.Edges() {
		forbidden[e.Canon()] = true
	}
	for _, e := range edges[:toRemove] {
		c := e.Canon()
		batch = append(batch, graph.Edit{Op: graph.EditRemove, U: c.U, V: c.V})
	}
	// Additions are drawn from the non-edges of g itself (not the reduced
	// graph), exactly like RemoveAndAddEdges: a removed edge is never
	// silently re-inserted within the batch.
	n := g.N()
	added := 0
	for tries := 0; added < toRemove && tries < 100*toRemove+1000; tries++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canon()
		if forbidden[e] {
			continue
		}
		forbidden[e] = true
		batch = append(batch, graph.Edit{Op: graph.EditAdd, U: e.U, V: e.V})
		added++
	}
	return batch, nil
}

// EditStream draws batches consecutive edit batches, each applicable to the
// graph produced by the previous one starting from g, and returns them with
// the final graph. This is the evolving-graph workload generator behind
// `alignrun -edit-batches` and the incremental benchmarks.
func EditStream(g *graph.Graph, batches int, level float64, rng *rand.Rand) ([][]graph.Edit, *graph.Graph, error) {
	out := make([][]graph.Edit, 0, batches)
	cur := g
	for b := 0; b < batches; b++ {
		batch, err := EditBatch(cur, level, rng)
		if err != nil {
			return nil, nil, err
		}
		next, err := graph.ApplyEdits(cur, batch)
		if err != nil {
			return nil, nil, fmt.Errorf("noise: batch %d not applicable: %w", b, err)
		}
		out = append(out, batch)
		cur = next
	}
	return out, cur, nil
}
