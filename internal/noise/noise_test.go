package noise

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"graphalign/internal/gen"
	"graphalign/internal/graph"
)

func testGraph(seed int64) *graph.Graph {
	return gen.ErdosRenyi(60, 0.15, rand.New(rand.NewSource(seed)))
}

func TestApplyZeroNoiseIsIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := testGraph(1)
	for _, nt := range Types() {
		pair, err := Apply(g, nt, 0, Options{}, rng)
		if err != nil {
			t.Fatalf("%s: %v", nt, err)
		}
		if pair.Source.M() != g.M() || pair.Target.M() != g.M() {
			t.Errorf("%s: zero noise changed edge count", nt)
		}
		// The true map must be an isomorphism at zero noise.
		for _, e := range pair.Source.Edges() {
			if !pair.Target.HasEdge(pair.TrueMap[e.U], pair.TrueMap[e.V]) {
				t.Fatalf("%s: true map is not an isomorphism", nt)
			}
		}
	}
}

func TestOneWayEdgeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := testGraph(2)
	pair, err := Apply(g, OneWay, 0.1, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	removed := int(0.1*float64(g.M()) + 0.5)
	if pair.Target.M() != g.M()-removed {
		t.Errorf("target m = %d, want %d", pair.Target.M(), g.M()-removed)
	}
	if pair.Source.M() != g.M() {
		t.Error("one-way noise must not touch the source")
	}
}

func TestMultiModalEdgeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testGraph(3)
	pair, err := Apply(g, MultiModal, 0.1, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Removals and additions balance.
	if pair.Target.M() != g.M() {
		t.Errorf("multi-modal should preserve edge count: %d vs %d", pair.Target.M(), g.M())
	}
	// But the graph must actually differ (with overwhelming probability).
	perm := pair.TrueMap
	same := true
	for _, e := range g.Edges() {
		if !pair.Target.HasEdge(perm[e.U], perm[e.V]) {
			same = false
			break
		}
	}
	if same {
		t.Error("multi-modal noise did not change any edge")
	}
}

func TestRemoveAndAddEdgesNoSelfLoopsNoReinsertion(t *testing.T) {
	// Regression: additions used to treat only the reduced graph's edges as
	// "existing", so an edge removed in the same call could be re-inserted,
	// silently shrinking the effective noise level. Additions must now come
	// from the complement of the original edge set (which also rules out
	// self-loops — the graph constructor would reject those outright).
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := testGraph(seed)
		level := 0.2
		out, err := RemoveAndAddEdges(g, level, Options{}, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.M() != g.M() {
			t.Errorf("seed %d: edge count %d, want %d", seed, out.M(), g.M())
		}
		wantRemoved := int(level*float64(g.M()) + 0.5)
		removed, added := 0, 0
		for _, e := range g.Edges() {
			if !out.HasEdge(e.U, e.V) {
				removed++
			}
		}
		for _, e := range out.Edges() {
			if e.U == e.V {
				t.Fatalf("seed %d: self-loop (%d,%d)", seed, e.U, e.V)
			}
			if !g.HasEdge(e.U, e.V) {
				added++
			}
		}
		// Every one of the wantRemoved removals must survive: a re-inserted
		// removed edge would show up as removed < wantRemoved.
		if removed != wantRemoved {
			t.Errorf("seed %d: %d edges removed, want %d (re-insertion?)", seed, removed, wantRemoved)
		}
		if added != wantRemoved {
			t.Errorf("seed %d: %d edges added, want %d", seed, added, wantRemoved)
		}
	}
}

func TestTwoWayEdgeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := testGraph(4)
	pair, err := Apply(g, TwoWay, 0.1, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	removed := int(0.1*float64(g.M()) + 0.5)
	if pair.Source.M() != g.M()-removed {
		t.Errorf("source m = %d, want %d", pair.Source.M(), g.M()-removed)
	}
	if pair.Target.M() != g.M()-removed {
		t.Errorf("target m = %d, want %d", pair.Target.M(), g.M()-removed)
	}
}

func TestApplyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testGraph(5)
	if _, err := Apply(g, OneWay, -0.1, Options{}, rng); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := Apply(g, OneWay, 1.0, Options{}, rng); err == nil {
		t.Error("level 1.0 accepted")
	}
	if _, err := Apply(g, Type("bogus"), 0.1, Options{}, rng); err == nil {
		t.Error("unknown noise type accepted")
	}
}

func TestKeepConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// A path graph: removing any edge disconnects it.
	var edges []graph.Edge
	for i := 0; i < 19; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	g := graph.MustNew(20, edges)
	out, err := RemoveEdges(g, 0.3, Options{KeepConnected: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(out) {
		t.Error("KeepConnected produced a disconnected graph")
	}
	if out.M() != g.M() {
		t.Error("a tree has no removable edges under KeepConnected")
	}
	// Without the option the graph loses edges.
	out2, err := RemoveEdges(g, 0.3, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out2.M() >= g.M() {
		t.Error("unconstrained removal did not remove edges")
	}
}

func TestPropertyTrueMapIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testGraph(seed)
		for _, nt := range Types() {
			pair, err := Apply(g, nt, 0.05, Options{}, rng)
			if err != nil {
				return false
			}
			p := append([]int(nil), pair.TrueMap...)
			sort.Ints(p)
			for i, v := range p {
				if v != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTargetEdgesSubsetUnderOneWay(t *testing.T) {
	// With one-way noise, every target edge maps back to a source edge.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testGraph(seed + 100)
		pair, err := Apply(g, OneWay, 0.1, Options{}, rng)
		if err != nil {
			return false
		}
		inv := graph.InversePermutation(pair.TrueMap)
		for _, e := range pair.Target.Edges() {
			if !pair.Source.HasEdge(inv[e.U], inv[e.V]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestRemoveEdgesZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testGraph(7)
	out, err := RemoveEdges(g, 0, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Edges(), g.Edges()) {
		t.Error("zero-level removal changed the graph")
	}
}

func TestTypesOrder(t *testing.T) {
	want := []Type{OneWay, MultiModal, TwoWay}
	if !reflect.DeepEqual(Types(), want) {
		t.Errorf("Types() = %v", Types())
	}
}
