// Package noise implements the paper's three edge-perturbation strategies
// (Section 5.1.1) plus the node permutation that hides ground truth:
//
//   - One-Way: remove a fraction of edges from the target graph only.
//   - Multi-Modal: remove a fraction of edges from the target and add the
//     same number of previously absent edges.
//   - Two-Way: remove a fraction of edges independently from both graphs.
//
// All functions are deterministic given a *rand.Rand.
package noise

import (
	"fmt"
	"math/rand"

	"graphalign/internal/graph"
)

// Type identifies a noise strategy.
type Type string

// The three noise strategies of the paper.
const (
	OneWay     Type = "one-way"
	MultiModal Type = "multi-modal"
	TwoWay     Type = "two-way"
)

// Types lists the noise strategies in the paper's order.
func Types() []Type { return []Type{OneWay, MultiModal, TwoWay} }

// Pair is an alignment problem instance: align Source to Target, where the
// correct answer is TrueMap (TrueMap[u] is the target node corresponding to
// source node u).
type Pair struct {
	Source  *graph.Graph
	Target  *graph.Graph
	TrueMap []int
	Noise   Type
	Level   float64
}

// Options control noise generation.
type Options struct {
	// KeepConnected retries edge removals that would disconnect the graph
	// (as the paper does for the assignment-method experiment, Section 6.2).
	KeepConnected bool
}

// Apply builds an alignment instance from a clean graph g: the target is a
// node-permuted copy of g perturbed with the requested noise at the given
// level (fraction of edges), and the source is g itself (also perturbed for
// Two-Way noise). TrueMap is the hidden permutation.
func Apply(g *graph.Graph, t Type, level float64, opts Options, rng *rand.Rand) (Pair, error) {
	if level < 0 || level >= 1 {
		return Pair{}, fmt.Errorf("noise: level %v out of [0,1)", level)
	}
	n := g.N()
	perm := graph.RandomPermutation(n, rng)
	permuted, err := graph.Permute(g, perm)
	if err != nil {
		return Pair{}, err
	}
	source := g
	target := permuted
	switch t {
	case OneWay:
		target, err = RemoveEdges(target, level, opts, rng)
	case MultiModal:
		target, err = RemoveAndAddEdges(target, level, opts, rng)
	case TwoWay:
		source, err = RemoveEdges(source, level, opts, rng)
		if err == nil {
			target, err = RemoveEdges(target, level, opts, rng)
		}
	default:
		err = fmt.Errorf("noise: unknown type %q", t)
	}
	if err != nil {
		return Pair{}, err
	}
	return Pair{Source: source, Target: target, TrueMap: perm, Noise: t, Level: level}, nil
}

// RemoveEdges removes ceil(level*m) uniformly random edges. With
// opts.KeepConnected, removals that disconnect the graph are skipped (so
// fewer edges may be removed on sparse graphs).
func RemoveEdges(g *graph.Graph, level float64, opts Options, rng *rand.Rand) (*graph.Graph, error) {
	m := g.M()
	toRemove := int(level*float64(m) + 0.5)
	if toRemove == 0 {
		return g.Clone(), nil
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	removed := make(map[graph.Edge]bool, toRemove)
	if !opts.KeepConnected {
		for _, e := range edges[:toRemove] {
			removed[e.Canon()] = true
		}
	} else {
		for _, e := range edges {
			if len(removed) == toRemove {
				break
			}
			removed[e.Canon()] = true
			if !connectedWithout(g, removed) {
				delete(removed, e.Canon())
			}
		}
	}
	kept := make([]graph.Edge, 0, m-len(removed))
	for _, e := range g.Edges() {
		if !removed[e.Canon()] {
			kept = append(kept, e)
		}
	}
	return graph.New(g.N(), kept)
}

// RemoveAndAddEdges removes ceil(level*m) random edges and adds the same
// number of previously-absent random edges (the paper's Multi-Modal noise).
// "Absent" means absent from the original graph: candidate edges are drawn
// until they hit a non-edge of g, so an edge removed earlier in the same
// call is never silently re-inserted (which would shrink the effective
// noise level), and self-loops (u == v) are rejected outright.
func RemoveAndAddEdges(g *graph.Graph, level float64, opts Options, rng *rand.Rand) (*graph.Graph, error) {
	reduced, err := RemoveEdges(g, level, opts, rng)
	if err != nil {
		return nil, err
	}
	toAdd := g.M() - reduced.M()
	n := g.N()
	// Forbid every edge of the original graph — this covers both the kept
	// edges (already present in reduced) and the just-removed ones — plus
	// edges added earlier in this call.
	forbidden := make(map[graph.Edge]bool, g.M()+toAdd)
	for _, e := range g.Edges() {
		forbidden[e.Canon()] = true
	}
	edges := reduced.Edges()
	added := 0
	for tries := 0; added < toAdd && tries < 100*toAdd+1000; tries++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canon()
		if forbidden[e] {
			continue
		}
		forbidden[e] = true
		edges = append(edges, e)
		added++
	}
	return graph.New(n, edges)
}

// connectedWithout reports whether g stays connected when the given edges
// are removed. Only used for KeepConnected, so it favors clarity over speed.
func connectedWithout(g *graph.Graph, removed map[graph.Edge]bool) bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Neighbors(u) {
			if visited[v] || removed[(graph.Edge{U: u, V: v}).Canon()] {
				continue
			}
			visited[v] = true
			count++
			stack = append(stack, v)
		}
	}
	return count == n
}
