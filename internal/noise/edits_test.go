package noise

import (
	"math/rand"
	"testing"

	"graphalign/internal/graph"
)

func TestEditBatchMatchesNoiseModel(t *testing.T) {
	g := randomGraphForTest(t, 200, 600, 1)
	rng := rand.New(rand.NewSource(7))
	batch, err := EditBatch(g, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	toRemove := int(0.05*float64(g.M()) + 0.5)
	if len(batch) != 2*toRemove {
		t.Fatalf("batch has %d edits, want %d", len(batch), 2*toRemove)
	}
	for i, e := range batch {
		if i < toRemove && e.Op != graph.EditRemove {
			t.Fatalf("edit %d: removals must come first", i)
		}
		if i >= toRemove && e.Op != graph.EditAdd {
			t.Fatalf("edit %d: additions must come last", i)
		}
	}
	h, err := graph.ApplyEdits(g, batch)
	if err != nil {
		t.Fatalf("batch not applicable: %v", err)
	}
	if h.M() != g.M() {
		t.Fatalf("edge count drifted: %d -> %d", g.M(), h.M())
	}
	// Deterministic given the rng seed.
	again, err := EditBatch(g, 0.05, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(batch) {
		t.Fatal("EditBatch not deterministic")
	}
	for i := range batch {
		if batch[i] != again[i] {
			t.Fatalf("EditBatch not deterministic at %d: %v vs %v", i, batch[i], again[i])
		}
	}
}

func TestEditBatchZeroLevel(t *testing.T) {
	g := randomGraphForTest(t, 50, 100, 2)
	batch, err := EditBatch(g, 0, rand.New(rand.NewSource(1)))
	if err != nil || len(batch) != 0 {
		t.Fatalf("level 0 must yield an empty batch, got %d edits, err %v", len(batch), err)
	}
	if _, err := EditBatch(g, 1.0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("level 1.0 must be rejected")
	}
}

func TestEditStreamConsecutive(t *testing.T) {
	g := randomGraphForTest(t, 120, 400, 3)
	batches, final, err := EditStream(g, 4, 0.02, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 4 {
		t.Fatalf("got %d batches, want 4", len(batches))
	}
	cur := g
	for i, b := range batches {
		next, err := graph.ApplyEdits(cur, b)
		if err != nil {
			t.Fatalf("batch %d not applicable in sequence: %v", i, err)
		}
		cur = next
	}
	if cur.M() != final.M() || cur.N() != final.N() {
		t.Fatal("replaying batches does not reach the returned final graph")
	}
	ce, fe := cur.Edges(), final.Edges()
	for i := range ce {
		if ce[i] != fe[i] {
			t.Fatalf("edge %d differs after replay: %v vs %v", i, ce[i], fe[i])
		}
	}
}

func randomGraphForTest(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[graph.Edge]bool, m)
	edges := make([]graph.Edge, 0, m)
	// Spanning path keeps the graph connected.
	for u := 0; u+1 < n; u++ {
		e := graph.Edge{U: u, V: u + 1}
		seen[e] = true
		edges = append(edges, e)
	}
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canon()
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
