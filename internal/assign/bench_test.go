package assign

import (
	"fmt"
	"testing"
)

// Benchmarks backing BENCH_assign.json (see scripts/bench_assign.sh): the
// dense exact solver vs the sparse candidate+auction pipeline, candidate
// generation on its own, and the rewritten NN/SG extractors.

// benchSizes matches the fig11 scal-grid node counts at the default scale
// (2^8..2^11); 2048 is the grid's largest size.
func benchSizes() []int { return []int{256, 512, 1024, 2048} }

func BenchmarkSolveJV(b *testing.B) {
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SolveJV(sim)
			}
		})
	}
}

func BenchmarkAuctionPipeline(b *testing.B) {
	// Candidate generation + auction solve: the full sparse assignment stage
	// as RunInstanceSpec executes it for a non-embedding aligner.
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d/k16", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := TopKDense(sim, 16, 1)
				if _, _, ok := SolveAuction(c, 1); !ok {
					b.Fatal("auction fell back")
				}
			}
		})
	}
}

func BenchmarkSolveAuction(b *testing.B) {
	// Auction solve alone over precomputed candidates.
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		c := TopKDense(sim, 16, 1)
		b.Run(fmt.Sprintf("n%d/k16", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, ok := SolveAuction(c, 1); !ok {
					b.Fatal("auction fell back")
				}
			}
		})
	}
}

func BenchmarkTopKDense(b *testing.B) {
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d/k16", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TopKDense(sim, 16, 1)
			}
		})
	}
}

func BenchmarkTopKEmbedding(b *testing.B) {
	// k-NN candidate generation straight from embeddings (d=32, the REGAL
	// default embedding width at moderate sizes).
	for _, n := range benchSizes() {
		e := testEmbedding(n, n, 32, int64(n))
		b.Run(fmt.Sprintf("n%d/k16", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TopKEmbedding(e, 16, 1)
			}
		})
	}
}

func BenchmarkSolveNN(b *testing.B) {
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SolveNN(sim)
			}
		})
	}
}

func BenchmarkSolveGreedy(b *testing.B) {
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SolveGreedy(sim)
			}
		})
	}
}

func BenchmarkSolveGreedyReference(b *testing.B) {
	// The original full-sort SortGreedy, for before/after comparison with the
	// lazy stream-merge SolveGreedy above.
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				solveGreedyReference(sim)
			}
		})
	}
}
