package assign

import (
	"fmt"
	"testing"
)

// Benchmarks backing BENCH_assign.json (see scripts/bench_assign.sh): the
// dense exact solver vs the sparse candidate+auction pipeline, candidate
// generation on its own, and the rewritten NN/SG extractors.

// benchSizes matches the fig11 scal-grid node counts at the default scale
// (2^8..2^11); 2048 is the grid's largest size.
func benchSizes() []int { return []int{256, 512, 1024, 2048} }

func BenchmarkSolveJV(b *testing.B) {
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SolveJV(sim)
			}
		})
	}
}

func BenchmarkAuctionPipeline(b *testing.B) {
	// Candidate generation + auction solve: the full sparse assignment stage
	// as RunInstanceSpec executes it for a non-embedding aligner.
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d/k16", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := TopKDense(sim, 16, 1)
				if _, _, ok := SolveAuction(c, 1); !ok {
					b.Fatal("auction fell back")
				}
			}
		})
	}
}

func BenchmarkSolveAuction(b *testing.B) {
	// Auction solve alone over precomputed candidates.
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		c := TopKDense(sim, 16, 1)
		b.Run(fmt.Sprintf("n%d/k16", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, ok := SolveAuction(c, 1); !ok {
					b.Fatal("auction fell back")
				}
			}
		})
	}
}

func BenchmarkTopKDense(b *testing.B) {
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d/k16", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TopKDense(sim, 16, 1)
			}
		})
	}
}

func BenchmarkTopKEmbedding(b *testing.B) {
	// Candidate generation straight from embeddings at d=8, the measured
	// crossover width where the k-d tree degrades to a near-full scan on
	// unstructured embeddings and generation switches to the blocked
	// brute-force kernel (DESIGN.md §12). Narrower embeddings take the tree
	// (TopKEmbeddingTree below); the aligners' real widths are wider still —
	// REGAL emits 10·log2(n_src+n_dst)+1 ≈ 121 dims at n=2048 — for which
	// the honest dense comparison must also pay materialization, see
	// TopKEmbeddingWide vs EmbeddingDensePath.
	for _, n := range benchSizes() {
		e := testEmbedding(n, n, 8, int64(n))
		b.Run(fmt.Sprintf("n%d/k16", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TopKEmbedding(e, 16, 1)
			}
		})
	}
}

func BenchmarkTopKEmbeddingTree(b *testing.B) {
	// The k-d tree path (d < bruteForceDim), where spatial pruning still
	// wins over the flat scan.
	for _, n := range benchSizes() {
		e := testEmbedding(n, n, 4, int64(n))
		b.Run(fmt.Sprintf("n%d/k16/d4", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TopKEmbedding(e, 16, 1)
			}
		})
	}
}

func BenchmarkTopKEmbeddingWide(b *testing.B) {
	// The wide regime (d=64): brute-force distance scan, O(n m d). Compare
	// against EmbeddingDensePath — the pipeline it replaces — not against
	// TopKDense alone, whose input someone already paid O(n m d) to build.
	e := testEmbedding(2048, 2048, 64, 2048)
	b.Run("n2048/k16/d64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TopKEmbedding(e, 16, 1)
		}
	})
}

func BenchmarkEmbeddingDensePath(b *testing.B) {
	// What the dense pipeline actually costs an embedding aligner at d=64:
	// materialize the n x m similarity (PairwiseSqDist + kernel), then
	// select top-k rows.
	e := testEmbedding(2048, 2048, 64, 2048)
	b.Run("n2048/k16/d64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TopKDense(e.Similarity(), 16, 1)
		}
	})
}

func BenchmarkTopKFactor(b *testing.B) {
	// Factored candidate generation at rank 48 (NSD's shape: 3 components
	// x 16 power-series terms), never materializing the n x m product.
	for _, n := range benchSizes() {
		f := testFactor(n, n, 48, int64(n))
		b.Run(fmt.Sprintf("n%d/k16/r48", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TopKFactor(f, 16, 1)
			}
		})
	}
}

func BenchmarkFactorDensePath(b *testing.B) {
	// The dense pipeline for a factored aligner: densify the rank-48 product
	// (48 outer-product accumulations into an n x m matrix), then select.
	f := testFactor(2048, 2048, 48, 2048)
	b.Run("n2048/k16/r48", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TopKDense(f.Similarity(), 16, 1)
		}
	})
}

func BenchmarkSolveNN(b *testing.B) {
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SolveNN(sim)
			}
		})
	}
}

func BenchmarkSolveGreedy(b *testing.B) {
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SolveGreedy(sim)
			}
		})
	}
}

func BenchmarkSolveGreedyReference(b *testing.B) {
	// The original full-sort SortGreedy, for before/after comparison with the
	// lazy stream-merge SolveGreedy above.
	for _, n := range benchSizes() {
		sim := randomSim(n, n, int64(n))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				solveGreedyReference(sim)
			}
		})
	}
}
