package assign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphalign/internal/matrix"
)

func randomSim(rows, cols int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// bruteForceBest returns the optimal total similarity over all one-to-one
// assignments of rows to columns (rows <= cols), by exhaustive permutation.
func bruteForceBest(sim *matrix.Dense) float64 {
	n, m := sim.Rows, sim.Cols
	used := make([]bool, m)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == n {
			return 0
		}
		best := math.Inf(-1)
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			if v := sim.At(i, j) + rec(i+1); v > best {
				best = v
			}
			used[j] = false
		}
		return best
	}
	return rec(0)
}

func isOneToOne(mapping []int, cols int) bool {
	seen := make([]bool, cols)
	for _, j := range mapping {
		if j < 0 || j >= cols {
			return false
		}
		if seen[j] {
			return false
		}
		seen[j] = true
	}
	return true
}

func TestSolveNN(t *testing.T) {
	sim := matrix.DenseFromRows([][]float64{
		{0.1, 0.9, 0.2},
		{0.3, 0.8, 0.1},
	})
	m := SolveNN(sim)
	if m[0] != 1 || m[1] != 1 {
		t.Errorf("NN mapping = %v (many-to-one expected here)", m)
	}
}

func TestSolveGreedy(t *testing.T) {
	sim := matrix.DenseFromRows([][]float64{
		{0.9, 0.8},
		{0.85, 0.1},
	})
	m := SolveGreedy(sim)
	// Pair (0,0)=0.9 first, then (1,?) must take column 1.
	if m[0] != 0 || m[1] != 1 {
		t.Errorf("greedy mapping = %v, want [0 1]", m)
	}
	if !isOneToOne(m, 2) {
		t.Error("greedy must be one-to-one")
	}
}

func TestGreedyVsOptimalGap(t *testing.T) {
	// Classic case where greedy is suboptimal.
	sim := matrix.DenseFromRows([][]float64{
		{10, 9},
		{9, 1},
	})
	g := SolveGreedy(sim)
	h := SolveHungarian(sim)
	if TotalSimilarity(sim, g) >= TotalSimilarity(sim, h) {
		t.Skip("greedy found optimum here; gap case needs the exact matrix above")
	}
	if TotalSimilarity(sim, h) != 18 {
		t.Errorf("optimal = %v, want 18", TotalSimilarity(sim, h))
	}
}

func TestPropertyHungarianOptimal(t *testing.T) {
	f := func(seed int64) bool {
		sim := randomSim(5, 5, seed)
		m := SolveHungarian(sim)
		if !isOneToOne(m, 5) {
			return false
		}
		return math.Abs(TotalSimilarity(sim, m)-bruteForceBest(sim)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyJVOptimal(t *testing.T) {
	f := func(seed int64) bool {
		sim := randomSim(5, 5, seed)
		m := SolveJV(sim)
		if !isOneToOne(m, 5) {
			return false
		}
		return math.Abs(TotalSimilarity(sim, m)-bruteForceBest(sim)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyJVRectangular(t *testing.T) {
	f := func(seed int64) bool {
		sim := randomSim(4, 7, seed)
		m := SolveJV(sim)
		if !isOneToOne(m, 7) {
			return false
		}
		return math.Abs(TotalSimilarity(sim, m)-bruteForceBest(sim)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyHungarianRectangular(t *testing.T) {
	f := func(seed int64) bool {
		sim := randomSim(3, 6, seed)
		m := SolveHungarian(sim)
		if !isOneToOne(m, 6) {
			return false
		}
		return math.Abs(TotalSimilarity(sim, m)-bruteForceBest(sim)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyJVEqualsHungarian(t *testing.T) {
	f := func(seed int64) bool {
		sim := randomSim(8, 8, seed)
		jv := SolveJV(sim)
		hu := SolveHungarian(sim)
		return math.Abs(TotalSimilarity(sim, jv)-TotalSimilarity(sim, hu)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJVWithNegativeSimilarities(t *testing.T) {
	// GRASP uses negated distances, so JV must handle negative entries.
	sim := matrix.DenseFromRows([][]float64{
		{-1, -5},
		{-4, -2},
	})
	m := SolveJV(sim)
	if TotalSimilarity(sim, m) != -3 {
		t.Errorf("JV total = %v, want -3", TotalSimilarity(sim, m))
	}
}

func TestSolveDispatch(t *testing.T) {
	sim := randomSim(3, 3, 1)
	for _, method := range Methods() {
		m, err := Solve(method, sim)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(m) != 3 {
			t.Fatalf("%s: mapping length %d", method, len(m))
		}
	}
	if _, err := Solve(Method("bogus"), sim); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := Solve(SortGreedy, randomSim(4, 2, 2)); err == nil {
		t.Error("rows > cols accepted")
	}
}

func TestEnforceOneToOne(t *testing.T) {
	sim := matrix.DenseFromRows([][]float64{
		{0.9, 0.1, 0.5},
		{0.8, 0.2, 0.1},
		{0.1, 0.3, 0.2},
	})
	nn := SolveNN(sim) // rows 0 and 1 both pick column 0
	if nn[0] != 0 || nn[1] != 0 {
		t.Fatalf("test setup: nn = %v", nn)
	}
	fixed := EnforceOneToOne(sim, nn)
	if !isOneToOne(fixed, 3) {
		t.Fatalf("EnforceOneToOne output %v not one-to-one", fixed)
	}
	// Row 0 wins column 0 (0.9 > 0.8); row 1 re-assigned.
	if fixed[0] != 0 {
		t.Errorf("row 0 should keep its column: %v", fixed)
	}
}

func TestEmptyProblems(t *testing.T) {
	empty := matrix.NewDense(0, 0)
	if m := SolveHungarian(empty); len(m) != 0 {
		t.Error("empty Hungarian should return empty mapping")
	}
	if m := SolveJV(empty); len(m) != 0 {
		t.Error("empty JV should return empty mapping")
	}
	if m := SolveGreedy(empty); len(m) != 0 {
		t.Error("empty greedy should return empty mapping")
	}
}

func TestSolversOnConstantMatrix(t *testing.T) {
	// All-equal similarities: every solver must terminate with a valid
	// one-to-one mapping (ties are the worst case for augmenting-path
	// solvers).
	sim := matrix.NewDense(6, 6)
	sim.Fill(0.5)
	for _, method := range Methods() {
		m, err := Solve(method, sim)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if method != NearestNeighbor && !isOneToOne(m, 6) {
			t.Errorf("%s: mapping %v not one-to-one on constant matrix", method, m)
		}
	}
}

func TestSolversOnZeroMatrix(t *testing.T) {
	sim := matrix.NewDense(4, 4)
	for _, method := range []Method{SortGreedy, Hungarian, JonkerVolgenant} {
		m, err := Solve(method, sim)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if !isOneToOne(m, 4) {
			t.Errorf("%s: zero matrix mapping %v", method, m)
		}
	}
}
