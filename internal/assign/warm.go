package assign

import "math"

// SolveAuctionWarm re-solves the assignment over an edited candidate set,
// seeded from a previous solve's mapping and AuctionState. dirty lists the
// rows whose candidate lists changed since that solve; every other row's list
// must be bitwise-unchanged. The solver seeds clean rows with their previous
// columns and re-bids only the dirty rows (plus any rows they displace), in a
// single phase at ε = max(new ε_final, prev.FinalEps).
//
// Correctness rests on two facts: auction prices only ever rise, and the
// previous solve left every clean (row, column, price) triple satisfying
// ε-complementary slackness at prev.FinalEps — which is at least as slack at
// the warm ε. The returned total is therefore within Cols*FinalEps of the
// optimum over the new candidate graph, the same contract as a cold
// SolveAuction. A feasibility repair pass drops (treats as dirty) any seed
// whose column is no longer among the row's candidates, is out of range, or
// collides with another seed, so a stale dirty set degrades performance, not
// correctness.
//
// When dirty is empty the solve runs zero bidding rounds and the returned
// mapping is byte-identical to prevMapping — the contract the incremental
// mode's empty-edit probe is pinned to.
//
// ok is false when the warm start is unusable (dimension mismatch between
// prev and c, an unmatchable candidate graph, or a tripped round cap);
// callers should fall back to a cold solve.
func SolveAuctionWarm(c *Candidates, prevMapping []int, prev AuctionState, dirty []int, workers int) ([]int, AuctionState, SparseStats, bool) {
	stats := SparseStats{CandidatesPerRow: c.K, WarmStart: true}
	if c.Rows == 0 {
		return nil, AuctionState{}, stats, true
	}
	if len(prevMapping) != c.Rows || len(prev.Price) != c.Cols {
		return nil, AuctionState{}, stats, false
	}
	if !c.Matchable() {
		return nil, AuctionState{}, stats, false
	}

	a := newAuctionRun(c, workers)
	copy(a.price, prev.Price)
	eps := a.epsFinal()
	if prev.FinalEps > eps {
		eps = prev.FinalEps
	}

	isDirty := make([]bool, a.n)
	for _, p := range dirty {
		if p >= 0 && p < a.n {
			isDirty[p] = true
		}
	}
	for i := range a.personObj {
		a.personObj[i] = -1
	}
	for j := range a.objPerson {
		a.objPerson[j] = -1
	}
	// Seed clean rows, verifying each seed: the previous column must exist,
	// be free, remain among the row's candidates, and still satisfy ε-CS at
	// the warm ε under the seeded prices. Genuine seeds satisfy the ε-CS
	// inequality in exact arithmetic — the previous solve established it at
	// assignment time and prices only rose afterwards, which only widens the
	// row's margin — but a winning row's margin sits exactly at the boundary,
	// so the recomputation here rounds differently by a few ulps. The slack
	// term absorbs that (it scales with the value spread like the rounding
	// error does, and stays orders of magnitude below ε), so the check rejects
	// nothing but genuinely stale seeds while loosening the optimality bound
	// by at most Cols·slack, noise against Cols·FinalEps.
	slack := 1e-12 * (a.spread + 1)
	for p := 0; p < a.n; p++ {
		if isDirty[p] {
			continue
		}
		j := prevMapping[p]
		if j < 0 || j >= a.m || a.objPerson[j] != -1 {
			continue
		}
		cols, vals := c.Row(p)
		member := false
		netJ := 0.0
		best := math.Inf(-1)
		for ci, cj := range cols {
			net := vals[ci] - a.price[cj]
			if net > best {
				best = net
			}
			if cj == j {
				member = true
				netJ = net
			}
		}
		if !member || netJ < best-eps-slack {
			continue
		}
		a.personObj[p] = j
		a.objPerson[j] = p
	}
	// Virtual padding rows (m > n) are interchangeable all-zero rows; the
	// previous solve left their columns priced within prev.FinalEps of the
	// global minimum, so any free column still that cheap can seat one while
	// preserving ε-CS. With an empty dirty set the free columns are exactly
	// the previously virtual-held ones, so every virtual row seats and the
	// solve stays zero-round.
	if a.m > a.n {
		minPrice := a.price[0]
		for _, pr := range a.price[1:] {
			if pr < minPrice {
				minPrice = pr
			}
		}
		v := a.n
		for j := 0; j < a.m && v < a.m; j++ {
			if a.objPerson[j] == -1 && a.price[j] <= minPrice+eps {
				a.personObj[v] = j
				a.objPerson[j] = v
				v++
			}
		}
	}
	a.unassigned = a.unassigned[:0]
	for p := 0; p < a.m; p++ {
		if a.personObj[p] == -1 {
			a.unassigned = append(a.unassigned, p)
			if p < a.n {
				stats.RebidRows++
			}
		}
	}

	stats.Phases = 1
	stats.FinalEps = eps
	rounds, ok := a.runPhase(eps)
	stats.Rounds = rounds
	if !ok {
		return nil, AuctionState{}, stats, false
	}
	mapping := make([]int, a.n)
	copy(mapping, a.personObj[:a.n])
	return mapping, AuctionState{Price: a.price, FinalEps: eps, Spread: a.spread}, stats, true
}
