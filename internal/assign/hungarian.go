package assign

import (
	"math"

	"graphalign/internal/matrix"
)

// SolveHungarian solves the maximum-similarity linear assignment problem
// exactly with the O(n^3) Hungarian algorithm (Kuhn–Munkres in the
// potentials formulation). It accepts rectangular matrices with
// Rows <= Cols and returns mapping[i] = assigned column for every row.
//
// This is the paper's "MWM" solver (the Hungarian variant used by LREA).
func SolveHungarian(sim *matrix.Dense) []int {
	n, m := sim.Rows, sim.Cols
	if n == 0 {
		return nil
	}
	// Internally we minimize cost = -similarity with the classic potentials
	// algorithm (1-indexed arrays as in the standard formulation).
	inf := math.Inf(1)
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row matched to column j (0 = none)
	way := make([]int, m+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := -sim.At(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	mapping := make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			mapping[p[j]-1] = j - 1
		}
	}
	return mapping
}
