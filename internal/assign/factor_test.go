package assign

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// testFactor builds a random rank-r factored similarity with mixed-sign
// weights, the shape NSD and LREA hand the sparse pipeline.
func testFactor(n, m, r int, seed int64) *FactorEmbedding {
	rng := rand.New(rand.NewSource(seed))
	f := &FactorEmbedding{}
	for t := 0; t < r; t++ {
		u := make([]float64, n)
		v := make([]float64, m)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		f.Us = append(f.Us, u)
		f.Vs = append(f.Vs, v)
		f.Weights = append(f.Weights, rng.NormFloat64())
	}
	return f
}

// quantizedFactor draws factor entries from a tiny integer set so many
// scores collide exactly — the tie contract is only observable under ties.
func quantizedFactor(n, m, r int, seed int64) *FactorEmbedding {
	rng := rand.New(rand.NewSource(seed))
	f := &FactorEmbedding{}
	for t := 0; t < r; t++ {
		u := make([]float64, n)
		v := make([]float64, m)
		for i := range u {
			u[i] = float64(rng.Intn(3) - 1)
		}
		for j := range v {
			v[j] = float64(rng.Intn(3) - 1)
		}
		f.Us = append(f.Us, u)
		f.Vs = append(f.Vs, v)
	}
	return f
}

// TestTopKFactorMatchesDenseTopK pins the factored path's core contract:
// candidates scored against the factors equal TopKDense over the densified
// matrix entry for entry — same columns, bitwise the same values.
func TestTopKFactorMatchesDenseTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	factors := []struct {
		name string
		mk   func(n, m, r int, seed int64) *FactorEmbedding
	}{
		{"gaussian", testFactor},
		{"quantized", quantizedFactor},
	}
	for _, fc := range factors {
		t.Run(fc.name, func(t *testing.T) {
			for trial := int64(0); trial < 20; trial++ {
				n, m := 1+rng.Intn(30), 1+rng.Intn(40)
				r := 1 + rng.Intn(8)
				k := 1 + rng.Intn(m)
				f := fc.mk(n, m, r, 400+trial)
				dense := TopKDense(f.Similarity(), k, 1)
				fac := TopKFactor(f, k, 1)
				if fac.Rows != dense.Rows || fac.Cols != dense.Cols || fac.K != dense.K {
					t.Fatalf("trial %d: shape mismatch: %+v vs %+v", trial, fac, dense)
				}
				if fac.Len != nil {
					t.Fatalf("trial %d: finite scores must not set Len", trial)
				}
				for i := range dense.Col {
					if dense.Col[i] != fac.Col[i] || dense.Val[i] != fac.Val[i] {
						t.Fatalf("trial %d (n=%d m=%d r=%d k=%d): factored candidates diverge at flat %d: (%d,%v) vs (%d,%v)",
							trial, n, m, r, k, i, fac.Col[i], fac.Val[i], dense.Col[i], dense.Val[i])
					}
				}
			}
		})
	}
}

func TestTopKFactorParallelIdentical(t *testing.T) {
	// 512*512 crosses candidateBudget, engaging the parallel path.
	f := testFactor(512, 512, 12, 77)
	serial := TopKFactor(f, 16, 1)
	for _, workers := range []int{0, 2, 4} {
		par := TopKFactor(f, 16, workers)
		for i := range serial.Col {
			if serial.Col[i] != par.Col[i] || serial.Val[i] != par.Val[i] {
				t.Fatalf("workers=%d diverges from serial at flat index %d", workers, i)
			}
		}
	}
}

func TestTopKFactorDegenerateK(t *testing.T) {
	f := testFactor(4, 6, 3, 9)
	for _, k := range []int{0, -1, 6, 100} {
		c := TopKFactor(f, k, 1)
		if c.K != 6 {
			t.Fatalf("k=%d: got K=%d, want full 6", k, c.K)
		}
	}
}

func TestTopKFactorNilWeights(t *testing.T) {
	f := testFactor(10, 12, 4, 33)
	g := &FactorEmbedding{Us: f.Us, Vs: f.Vs} // nil Weights = all ones
	ones := &FactorEmbedding{Us: f.Us, Vs: f.Vs, Weights: []float64{1, 1, 1, 1}}
	cg, co := TopKFactor(g, 5, 1), TopKFactor(ones, 5, 1)
	for i := range cg.Col {
		if cg.Col[i] != co.Col[i] || cg.Val[i] != co.Val[i] {
			t.Fatalf("nil weights diverge from explicit ones at flat %d", i)
		}
	}
}

// TestTopKFactorNaNPruning: NaN scores are dropped from the candidate set,
// short rows are recorded in Len with -1 column padding, and Row trims it.
func TestTopKFactorNaNPruning(t *testing.T) {
	// Row 0 scores: Inf * {0,1,...} -> NaN on column 0, Inf elsewhere.
	// Row 1 scores are finite.
	f := &FactorEmbedding{
		Us: [][]float64{{math.Inf(1), 1}},
		Vs: [][]float64{{0, 2, 3}},
	}
	c := TopKFactor(f, 3, 1)
	if c.Len == nil {
		t.Fatal("pruned rows must set Len")
	}
	if c.Len[0] != 2 || c.Len[1] != 3 {
		t.Fatalf("Len = %v, want [2 3]", c.Len)
	}
	cols0, vals0 := c.Row(0)
	if len(cols0) != 2 || cols0[0] != 1 || cols0[1] != 2 {
		t.Fatalf("row 0 candidates = %v (%v), want columns [1 2]", cols0, vals0)
	}
	if c.Col[2] != -1 || c.Val[2] != 0 {
		t.Fatalf("padding = (%d,%v), want (-1,0)", c.Col[2], c.Val[2])
	}
	cols1, _ := c.Row(1)
	if len(cols1) != 3 {
		t.Fatalf("row 1 should keep all 3 candidates, got %v", cols1)
	}
}

// TestSolveSparseStarvedRow: a row whose candidates were all pruned away
// surfaces as a typed *StarvedRowError on the exact path rather than a
// silent dense-JV fallback; the permissive NN/SG variants still solve.
func TestSolveSparseStarvedRow(t *testing.T) {
	// All of row 1's scores are NaN: NaN * anything stays NaN.
	f := &FactorEmbedding{
		Us: [][]float64{{1, math.NaN()}},
		Vs: [][]float64{{3, 2}},
	}
	c := TopKFactor(f, 2, 1)
	if c.Len == nil || c.Len[1] != 0 {
		t.Fatalf("row 1 should be starved, Len = %v", c.Len)
	}
	_, _, err := SolveSparse(JonkerVolgenant, c, f.Similarity, 1)
	if err == nil {
		t.Fatal("starved row must error on the exact sparse path")
	}
	var sre *StarvedRowError
	if !errors.As(err, &sre) || sre.Row != 1 {
		t.Fatalf("error %v, want *StarvedRowError for row 1", err)
	}
	if !errors.Is(err, ErrStarvedRow) {
		t.Fatalf("error %v must unwrap to ErrStarvedRow", err)
	}
	for _, m := range []Method{NearestNeighbor, SortGreedy} {
		if mapping, _, err := SolveSparse(m, c, nil, 1); err != nil || len(mapping) != 2 {
			t.Fatalf("%s over starved candidates: mapping %v err %v", m, mapping, err)
		}
	}
}

// TestSolveAuctionShortRows: trimmed (but non-empty) rows flow through the
// auction correctly — the padding never reaches bidding or the ε schedule.
func TestSolveAuctionShortRows(t *testing.T) {
	c := &Candidates{
		Rows: 3, Cols: 3, K: 2,
		Col: []int{0, 1, 1, -1, 2, -1},
		Val: []float64{5, 1, 4, 0, 3, 0},
		Len: []int{2, 1, 1},
	}
	mapping, _, ok := SolveAuction(c, 1)
	if !ok {
		t.Fatal("auction should solve the trimmed candidate set")
	}
	want := []int{0, 1, 2}
	for i := range want {
		if mapping[i] != want[i] {
			t.Fatalf("mapping = %v, want %v", mapping, want)
		}
	}
}

func TestFactorEmbeddingClone(t *testing.T) {
	f := testFactor(5, 7, 3, 11)
	g := f.Clone()
	g.Us[0][0] += 100
	g.Weights[1] += 100
	if f.Us[0][0] == g.Us[0][0] || f.Weights[1] == g.Weights[1] {
		t.Fatal("Clone must deep-copy factors")
	}
	if f.Rows() != g.Rows() || f.Cols() != g.Cols() || f.Rank() != g.Rank() {
		t.Fatal("Clone changed shape")
	}
}
