package assign

import (
	"math"

	"graphalign/internal/matrix"
)

// SolveJV solves the maximum-similarity linear assignment problem with the
// Jonker–Volgenant algorithm: a column-reduction / augmenting-row-reduction
// preprocessing phase followed by shortest augmenting paths for the rows
// left unassigned. For square dense problems it visits far fewer augmenting
// paths than the plain Hungarian algorithm, which is why the paper adopts it
// as the common assignment stage.
//
// The matrix may be rectangular with Rows <= Cols; internally it is padded
// to square with zero similarity. mapping[i] is the column assigned to row i.
func SolveJV(sim *matrix.Dense) []int {
	nRows, nCols := sim.Rows, sim.Cols
	if nRows == 0 {
		return nil
	}
	n := nCols // pad rows up to square
	// cost[i][j] = -sim for real rows; 0 for padding rows.
	cost := func(i, j int) float64 {
		if i < nRows {
			return -sim.At(i, j)
		}
		return 0
	}

	inf := math.Inf(1)
	rowsol := make([]int, n) // column assigned to row
	colsol := make([]int, n) // row assigned to column
	u := make([]float64, n)  // row potentials (dual)
	v := make([]float64, n)  // column potentials (dual)
	for i := range rowsol {
		rowsol[i] = -1
		colsol[i] = -1
	}

	// --- Column reduction ---
	matches := 0
	for j := n - 1; j >= 0; j-- {
		minVal := cost(0, j)
		iMin := 0
		for i := 1; i < n; i++ {
			if c := cost(i, j); c < minVal {
				minVal = c
				iMin = i
			}
		}
		v[j] = minVal
		if rowsol[iMin] == -1 {
			rowsol[iMin] = j
			colsol[j] = iMin
			matches++
		}
	}

	// Collect unassigned rows.
	var free []int
	for i := 0; i < n; i++ {
		if rowsol[i] == -1 {
			free = append(free, i)
		}
	}

	// --- Augmenting row reduction (two passes, as in the original) ---
	for pass := 0; pass < 2; pass++ {
		var nextFree []int
		for _, i := range free {
			// Find the two smallest reduced costs in row i.
			min1, min2 := inf, inf
			j1, j2 := -1, -1
			for j := 0; j < n; j++ {
				red := cost(i, j) - v[j]
				if red < min1 {
					min2, j2 = min1, j1
					min1, j1 = red, j
				} else if red < min2 {
					min2, j2 = red, j
				}
			}
			u[i] = min2
			if min1 < min2 {
				v[j1] += min1 - min2
			} else if j2 >= 0 {
				j1 = j2
			}
			if prev := colsol[j1]; prev >= 0 {
				if min1 < min2 {
					// Steal the column; previous owner retries.
					rowsol[prev] = -1
					nextFree = append(nextFree, prev)
					rowsol[i] = j1
					colsol[j1] = i
				} else {
					nextFree = append(nextFree, i)
				}
			} else {
				rowsol[i] = j1
				colsol[j1] = i
			}
		}
		free = nextFree
		if len(free) == 0 {
			break
		}
	}

	// --- Shortest augmenting paths for remaining free rows ---
	d := make([]float64, n)
	pred := make([]int, n)
	colList := make([]int, n)
	for _, freeRow := range free {
		for j := 0; j < n; j++ {
			d[j] = cost(freeRow, j) - v[j]
			pred[j] = freeRow
			colList[j] = j
		}
		low, up := 0, 0 // columns in colList[:low] are scanned, [low:up] to scan with min d
		var endOfPath = -1
		minD := 0.0
		for endOfPath == -1 {
			if low == up {
				// Find columns with the minimum d among unscanned.
				minD = d[colList[up]]
				for k := up; k < n; k++ {
					j := colList[k]
					if d[j] <= minD {
						if d[j] < minD {
							minD = d[j]
							up = low
						}
						colList[k], colList[up] = colList[up], colList[k]
						up++
					}
				}
				// Any minimum column unassigned? Then we can stop.
				for k := low; k < up; k++ {
					j := colList[k]
					if colsol[j] == -1 {
						endOfPath = j
						break
					}
				}
			}
			if endOfPath != -1 {
				break
			}
			// Scan one column from the minimum set.
			j1 := colList[low]
			low++
			i := colsol[j1]
			h := cost(i, j1) - v[j1] - minD
			for k := up; k < n; k++ {
				j := colList[k]
				nd := cost(i, j) - v[j] - h
				if nd < d[j] {
					d[j] = nd
					pred[j] = i
					if nd == minD {
						if colsol[j] == -1 {
							endOfPath = j
							break
						}
						colList[k], colList[up] = colList[up], colList[k]
						up++
					}
				}
			}
		}
		// Update column potentials for scanned columns.
		for k := 0; k < low; k++ {
			j := colList[k]
			v[j] += d[j] - minD
		}
		// Augment along the alternating path.
		for {
			i := pred[endOfPath]
			colsol[endOfPath] = i
			endOfPath, rowsol[i] = rowsol[i], endOfPath
			if i == freeRow {
				break
			}
		}
	}

	mapping := make([]int, nRows)
	copy(mapping, rowsol[:nRows])
	return mapping
}
