package assign

import (
	"math/rand"
	"sort"
	"testing"

	"graphalign/internal/kdtree"
	"graphalign/internal/matrix"
)

// naiveTopK is the reference candidate selection: full row sort by
// (v desc, j asc), truncated to k.
func naiveTopK(row []float64, k int) []pair {
	ps := make([]pair, len(row))
	for j, v := range row {
		ps[j] = pair{0, j, v}
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].v != ps[b].v {
			return ps[a].v > ps[b].v
		}
		return ps[a].j < ps[b].j
	})
	if k < len(ps) {
		ps = ps[:k]
	}
	return ps
}

func TestTopKDenseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	regimes := []struct {
		name string
		draw func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() }},
		// Quantized values force heavy ties: the (v desc, j asc) contract is
		// only observable under ties.
		{"quantized", func() float64 { return float64(rng.Intn(3)) }},
		{"negative", func() float64 { return rng.Float64() - 0.5 }},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			for trial := 0; trial < 30; trial++ {
				n, m := 1+rng.Intn(12), 1+rng.Intn(20)
				k := 1 + rng.Intn(m)
				sim := matrix.NewDense(n, m)
				for i := range sim.Data {
					sim.Data[i] = reg.draw()
				}
				c := TopKDense(sim, k, 1)
				if c.Rows != n || c.Cols != m || c.K != k {
					t.Fatalf("shape: got (%d,%d,%d) want (%d,%d,%d)", c.Rows, c.Cols, c.K, n, m, k)
				}
				for i := 0; i < n; i++ {
					want := naiveTopK(sim.Row(i), k)
					cols, vals := c.Row(i)
					for idx, w := range want {
						if cols[idx] != w.j || vals[idx] != w.v {
							t.Fatalf("row %d cand %d: got (%d,%v) want (%d,%v)\nrow=%v k=%d",
								i, idx, cols[idx], vals[idx], w.j, w.v, sim.Row(i), k)
						}
					}
				}
			}
		})
	}
}

func TestTopKDenseDegenerateK(t *testing.T) {
	sim := randomSim(4, 6, 3)
	for _, k := range []int{0, -1, 6, 100} {
		c := TopKDense(sim, k, 1)
		if c.K != 6 {
			t.Fatalf("k=%d: got K=%d, want full 6", k, c.K)
		}
	}
}

func TestTopKDenseParallelIdentical(t *testing.T) {
	// 512*512 = 2^18 crosses candidateBudget, engaging the parallel path.
	sim := randomSim(512, 512, 9)
	serial := TopKDense(sim, 16, 1)
	for _, workers := range []int{0, 2, 4} {
		par := TopKDense(sim, 16, workers)
		for i := range serial.Col {
			if serial.Col[i] != par.Col[i] || serial.Val[i] != par.Val[i] {
				t.Fatalf("workers=%d diverges from serial at flat index %d", workers, i)
			}
		}
	}
}

// testEmbedding builds a random low-dimensional embedding pair with the
// exp(-d2) kernel.
func testEmbedding(n, m, d int, seed int64) *Embedding {
	rng := rand.New(rand.NewSource(seed))
	src := matrix.NewDense(n, d)
	dst := matrix.NewDense(m, d)
	for i := range src.Data {
		src.Data[i] = rng.NormFloat64()
	}
	for i := range dst.Data {
		dst.Data[i] = rng.NormFloat64()
	}
	return &Embedding{Src: src, Dst: dst, SimFromDist2: func(d2 float64) float64 { return -d2 }}
}

func TestTopKEmbeddingMatchesDenseTopK(t *testing.T) {
	// d=4 exercises the k-d tree path, d=8 and d=16 the brute-force scan
	// (d >= bruteForceDim); both must agree with dense selection bitwise.
	for _, d := range []int{4, 8, 16} {
		for trial := int64(0); trial < 5; trial++ {
			e := testEmbedding(40, 55, d, 100+trial)
			sim := e.Similarity()
			k := 7
			dense := TopKDense(sim, k, 1)
			emb := TopKEmbedding(e, k, 1)
			if emb.Rows != dense.Rows || emb.Cols != dense.Cols || emb.K != dense.K {
				t.Fatalf("shape mismatch: %+v vs %+v", emb, dense)
			}
			for i := range dense.Col {
				if dense.Col[i] != emb.Col[i] || dense.Val[i] != emb.Val[i] {
					t.Fatalf("d=%d trial %d: k-NN candidates diverge from dense top-k at flat %d: (%d,%v) vs (%d,%v)",
						d, trial, i, emb.Col[i], emb.Val[i], dense.Col[i], dense.Val[i])
				}
			}
		}
	}
}

// TestTopKEmbeddingBruteMatchesTree drives the same instances through both
// internal fill paths explicitly, pinning that the automatic crossover at
// bruteForceDim can never change results.
func TestTopKEmbeddingBruteMatchesTree(t *testing.T) {
	for trial := int64(0); trial < 5; trial++ {
		for _, d := range []int{2, 5, 8, 12} {
			e := testEmbedding(35, 50, d, 900+trial)
			k := 6
			mk := func() *Candidates {
				return &Candidates{Rows: e.Src.Rows, Cols: e.Dst.Rows, K: k,
					Col: make([]int, e.Src.Rows*k), Val: make([]float64, e.Src.Rows*k)}
			}
			points := make([][]float64, e.Dst.Rows)
			for j := range points {
				points[j] = e.Dst.Row(j)
			}
			ct := mk()
			topKEmbeddingTree(kdtree.Build(points), e, ct, 0, e.Src.Rows)
			cb := mk()
			topKEmbeddingBrute(e, cb, 0, e.Src.Rows)
			for i := range ct.Col {
				if ct.Col[i] != cb.Col[i] || ct.Val[i] != cb.Val[i] {
					t.Fatalf("d=%d trial %d: tree and brute paths diverge at flat %d: (%d,%v) vs (%d,%v)",
						d, trial, i, ct.Col[i], ct.Val[i], cb.Col[i], cb.Val[i])
				}
			}
		}
	}
}

// TestTopKEmbeddingAllocFree pins the regression this pipeline exists to
// avoid: candidate generation must not allocate per query (it used to spend
// ~325k allocs at n=2048; the budget below is two orders looser than the
// handful both paths need, and three orders tighter than the regression).
func TestTopKEmbeddingAllocFree(t *testing.T) {
	for _, d := range []int{4, 8} {
		e := testEmbedding(300, 300, d, 55)
		allocs := testing.AllocsPerRun(5, func() {
			TopKEmbedding(e, 16, 1)
		})
		if allocs > 64 {
			t.Errorf("d=%d: TopKEmbedding allocated %v times/op, want <= 64", d, allocs)
		}
	}
}

func TestTopKEmbeddingTiesPreferLowerColumn(t *testing.T) {
	// Duplicate target points force exact distance ties; the contract is
	// ascending column id among ties, matching dense selection.
	src := matrix.DenseFromRows([][]float64{{0, 0}})
	dst := matrix.DenseFromRows([][]float64{{1, 0}, {1, 0}, {0, 0}, {1, 0}})
	e := &Embedding{Src: src, Dst: dst, SimFromDist2: func(d2 float64) float64 { return -d2 }}
	c := TopKEmbedding(e, 3, 1)
	cols, _ := c.Row(0)
	want := []int{2, 0, 1}
	for i, j := range want {
		if cols[i] != j {
			t.Fatalf("tie order: got %v, want %v", cols, want)
		}
	}
}

func TestTopKEmbeddingParallelIdentical(t *testing.T) {
	e := testEmbedding(600, 600, 3, 77)
	serial := TopKEmbedding(e, 8, 1)
	par := TopKEmbedding(e, 8, 4)
	for i := range serial.Col {
		if serial.Col[i] != par.Col[i] || serial.Val[i] != par.Val[i] {
			t.Fatalf("parallel k-NN diverges from serial at flat index %d", i)
		}
	}
}

func candidatesFromRows(cols [][]int, vals [][]float64, m int) *Candidates {
	n := len(cols)
	k := len(cols[0])
	c := &Candidates{Rows: n, Cols: m, K: k, Col: make([]int, n*k), Val: make([]float64, n*k)}
	for i := range cols {
		copy(c.Col[i*k:(i+1)*k], cols[i])
		copy(c.Val[i*k:(i+1)*k], vals[i])
	}
	return c
}

func TestMatchable(t *testing.T) {
	cases := []struct {
		name string
		c    *Candidates
		want bool
	}{
		{"identity", candidatesFromRows([][]int{{0}, {1}, {2}}, [][]float64{{1}, {1}, {1}}, 3), true},
		{"all_same_column", candidatesFromRows([][]int{{0}, {0}, {0}}, [][]float64{{1}, {.9}, {.8}}, 4), false},
		{"chain", candidatesFromRows([][]int{{0, 1}, {1, 2}, {2, 0}}, [][]float64{{1, 1}, {1, 1}, {1, 1}}, 3), true},
		{"bottleneck", candidatesFromRows([][]int{{0, 1}, {0, 1}, {0, 1}}, [][]float64{{1, 1}, {1, 1}, {1, 1}}, 3), false},
		{"rows_exceed_cols", &Candidates{Rows: 3, Cols: 2, K: 0}, false},
		{"empty", &Candidates{Rows: 0, Cols: 0, K: 0}, true},
	}
	for _, tc := range cases {
		if got := tc.c.Matchable(); got != tc.want {
			t.Errorf("%s: Matchable() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMatchableMatchesGreedyFeasibilityRandom(t *testing.T) {
	// Cross-check Hopcroft–Karp against brute force on small random graphs.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(3)
		k := 1 + rng.Intn(minIntTest(3, m))
		cols := make([][]int, n)
		vals := make([][]float64, n)
		for i := range cols {
			perm := rng.Perm(m)[:k]
			sort.Ints(perm)
			cols[i] = perm
			vals[i] = make([]float64, k)
		}
		c := candidatesFromRows(cols, vals, m)
		if got, want := c.Matchable(), bruteMatchable(cols, m, n); got != want {
			t.Fatalf("trial %d: Matchable=%v, brute=%v, cands=%v", trial, got, want, cols)
		}
	}
}

// bruteMatchable tries all ways to match rows to their candidates.
func bruteMatchable(cols [][]int, m, n int) bool {
	used := make([]bool, m)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return true
		}
		for _, j := range cols[i] {
			if !used[j] {
				used[j] = true
				if rec(i + 1) {
					return true
				}
				used[j] = false
			}
		}
		return false
	}
	return rec(0)
}

func minIntTest(a, b int) int {
	if a < b {
		return a
	}
	return b
}
