// Package assign implements the four assignment (matching-extraction)
// strategies the paper compares in Section 6.2: NearestNeighbor (NN),
// SortGreedy (SG), the Hungarian algorithm for maximum weight matching
// (MWM), and the Jonker–Volgenant shortest-augmenting-path LAP solver (JV).
//
// Every solver consumes a similarity matrix S where S.At(i, j) is the score
// of matching source node i to target node j (higher is better) and returns
// a mapping from source to target nodes. The exact solvers (MWM, JV)
// maximize the total similarity of a one-to-one assignment.
package assign

import (
	"fmt"

	"graphalign/internal/matrix"
	"graphalign/internal/parallel"
)

// Method identifies an assignment strategy.
type Method string

// The four assignment methods from the paper.
const (
	NearestNeighbor Method = "NN"
	SortGreedy      Method = "SG"
	Hungarian       Method = "MWM"
	JonkerVolgenant Method = "JV"
)

// Methods lists all assignment methods in the paper's order.
func Methods() []Method {
	return []Method{NearestNeighbor, SortGreedy, Hungarian, JonkerVolgenant}
}

// Solve dispatches to the requested method. The similarity matrix must have
// Rows <= Cols (source no larger than target); mapping[i] is the target
// assigned to source i (always >= 0 for the one-to-one methods; NN may
// repeat targets).
func Solve(method Method, sim *matrix.Dense) ([]int, error) {
	if sim.Rows > sim.Cols {
		return nil, fmt.Errorf("assign: source larger than target (%d > %d)", sim.Rows, sim.Cols)
	}
	switch method {
	case NearestNeighbor:
		return SolveNN(sim), nil
	case SortGreedy:
		return SolveGreedy(sim), nil
	case Hungarian:
		return SolveHungarian(sim), nil
	case JonkerVolgenant:
		return SolveJV(sim), nil
	default:
		return nil, fmt.Errorf("assign: unknown method %q", method)
	}
}

// SolveNN assigns each source row its highest-similarity target column,
// allowing many-to-one matches. This mirrors the raw nearest-neighbor
// extraction used by REGAL/CONE/GWL/S-GWL before the paper restricts them to
// one-to-one outputs.
//
// Ties on similarity resolve to the lowest column index (only a strictly
// greater value displaces the incumbent). This is a contract, not an
// accident: SolveNNSparse and the k-d-tree candidate search promise the same
// rule, so sparse and dense NN agree wherever the tied columns survive
// candidate selection.
//
// Large matrices are row-blocked across the worker pool; each row is scanned
// by exactly one goroutine, so the result is identical to the serial scan.
func SolveNN(sim *matrix.Dense) []int {
	mapping := make([]int, sim.Rows)
	nnRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := sim.Row(i)
			best := 0
			for j, v := range row {
				if v > row[best] {
					best = j
				}
			}
			mapping[i] = best
		}
	}
	if sim.Rows*sim.Cols >= candidateBudget {
		parallel.Blocks(0, sim.Rows, nnRows)
	} else {
		nnRows(0, sim.Rows)
	}
	return mapping
}

// pair is a candidate match considered by SortGreedy.
type pair struct {
	i, j int
	v    float64
}

// SolveGreedy implements SortGreedy: consider all (i, j) pairs by similarity
// descending and accept a pair whenever both endpoints are still unmatched.
// Ties are broken by (i, j) order for determinism. The result is a maximal
// one-to-one matching.
//
// Rather than materializing and sorting all n*m pairs (O(nm log(nm)) and
// O(nm) memory), pairs are enumerated lazily: each row maintains a small
// buffer of its next-best candidates filled by bounded-heap partial
// selection (the sparse.go top-k heap), and a global heap merges the row
// streams in exactly the full-sort order. Greedy typically accepts a match
// within the first few candidates of each row, so only a tiny prefix of the
// pair stream is ever generated; buffers double on exhaustion, bounding the
// worst case at O(nm log m). The mapping is identical to the full-sort
// implementation on every input (see the equivalence test).
func SolveGreedy(sim *matrix.Dense) []int {
	n, m := sim.Rows, sim.Cols
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	if n == 0 || m == 0 {
		return mapping
	}
	usedCol := make([]bool, m)

	// Per-row lazy stream of pairs in (v desc, j asc) order.
	const greedyBuf0 = 8
	type stream struct {
		buf []pair
		pos int
		k   int
	}
	streams := make([]stream, n)

	// refill selects row i's next st.k candidates — those strictly after
	// (lastV, lastJ) in (v desc, j asc) order when after is set — skipping
	// columns already taken (their pairs would be rejected regardless).
	refill := func(i int, after bool, lastV float64, lastJ int) {
		st := &streams[i]
		row := sim.Row(i)
		h := st.buf[:0]
		k := st.k
		for j, v := range row {
			if usedCol[j] {
				continue
			}
			if after && (v > lastV || (v == lastV && j <= lastJ)) {
				continue
			}
			if len(h) < k {
				h = append(h, pair{i, j, v})
				topKSiftUp(h, len(h)-1)
				continue
			}
			// Columns arrive in increasing j, so on equal value the incumbent
			// (smaller j) wins and the newcomer is skipped.
			if v <= h[0].v {
				continue
			}
			h[0] = pair{i, j, v}
			topKSiftDown(h, 0)
		}
		// Heap-sort in place into (v desc, j asc) order.
		for l := len(h) - 1; l > 0; l-- {
			h[0], h[l] = h[l], h[0]
			topKSiftDownN(h, 0, l)
		}
		st.buf = h
		st.pos = 0
	}

	// Global min-heap of stream indices keyed by each stream's head pair in
	// the full-sort order (v desc, i asc, j asc); the merge therefore emits
	// pairs in exactly the order the full sort would.
	gh := make([]int, 0, n)
	ghLess := func(a, b int) bool {
		pa := streams[a].buf[streams[a].pos]
		pb := streams[b].buf[streams[b].pos]
		if pa.v != pb.v {
			return pa.v > pb.v
		}
		return a < b // pa.i == a, pa.j tie unreachable across distinct rows
	}
	ghSiftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(gh) && ghLess(gh[l], gh[min]) {
				min = l
			}
			if r < len(gh) && ghLess(gh[r], gh[min]) {
				min = r
			}
			if min == i {
				return
			}
			gh[i], gh[min] = gh[min], gh[i]
			i = min
		}
	}
	ghPop := func() {
		gh[0] = gh[len(gh)-1]
		gh = gh[:len(gh)-1]
		ghSiftDown(0)
	}

	for i := 0; i < n; i++ {
		streams[i] = stream{k: greedyBuf0}
		refill(i, false, 0, 0)
		if len(streams[i].buf) > 0 {
			gh = append(gh, i)
		}
	}
	// Initial heads are each row's maximum: heapify.
	for i := len(gh)/2 - 1; i >= 0; i-- {
		ghSiftDown(i)
	}

	matched := 0
	for len(gh) > 0 && matched < n {
		i := gh[0]
		st := &streams[i]
		p := st.buf[st.pos]
		if !usedCol[p.j] {
			// Head row is unmatched by construction (matched rows' streams
			// are removed), so this pair is accepted — and the row's
			// remaining pairs, which the full sort would skip, are dropped
			// with its stream.
			mapping[i] = p.j
			usedCol[p.j] = true
			matched++
			ghPop()
			continue
		}
		st.pos++
		if st.pos == len(st.buf) {
			last := st.buf[len(st.buf)-1]
			if st.k < m {
				st.k *= 2
			}
			refill(i, true, last.v, last.j)
			if len(st.buf) == 0 {
				ghPop()
				continue
			}
		}
		ghSiftDown(0)
	}
	return mapping
}

// TotalSimilarity returns the sum of sim over a mapping (useful in tests and
// for comparing solvers); unmatched rows (mapping[i] < 0) contribute zero.
func TotalSimilarity(sim *matrix.Dense, mapping []int) float64 {
	var s float64
	for i, j := range mapping {
		if j >= 0 {
			s += sim.At(i, j)
		}
	}
	return s
}

// EnforceOneToOne converts a possibly many-to-one mapping into a one-to-one
// mapping: source rows keep their target when they are its unique claimant
// with the highest similarity; losers are re-assigned greedily among the
// remaining columns. This is the paper's restriction of NN-based methods to
// one-to-one outputs.
func EnforceOneToOne(sim *matrix.Dense, mapping []int) []int {
	n, m := sim.Rows, sim.Cols
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	owner := make([]int, m)
	for j := range owner {
		owner[j] = -1
	}
	for i, j := range mapping {
		if j < 0 || j >= m {
			continue
		}
		if owner[j] == -1 || sim.At(i, j) > sim.At(owner[j], j) {
			owner[j] = i
		}
	}
	usedCol := make([]bool, m)
	for j, i := range owner {
		if i >= 0 {
			out[i] = j
			usedCol[j] = true
		}
	}
	// Re-assign the losers greedily by best remaining column.
	var losers []int
	for i, j := range out {
		if j == -1 {
			losers = append(losers, i)
		}
	}
	for _, i := range losers {
		best, bestV := -1, 0.0
		row := sim.Row(i)
		for j, v := range row {
			if usedCol[j] {
				continue
			}
			if best == -1 || v > bestV {
				best, bestV = j, v
			}
		}
		if best >= 0 {
			out[i] = best
			usedCol[best] = true
		}
	}
	return out
}
