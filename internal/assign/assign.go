// Package assign implements the four assignment (matching-extraction)
// strategies the paper compares in Section 6.2: NearestNeighbor (NN),
// SortGreedy (SG), the Hungarian algorithm for maximum weight matching
// (MWM), and the Jonker–Volgenant shortest-augmenting-path LAP solver (JV).
//
// Every solver consumes a similarity matrix S where S.At(i, j) is the score
// of matching source node i to target node j (higher is better) and returns
// a mapping from source to target nodes. The exact solvers (MWM, JV)
// maximize the total similarity of a one-to-one assignment.
package assign

import (
	"fmt"
	"sort"

	"graphalign/internal/matrix"
)

// Method identifies an assignment strategy.
type Method string

// The four assignment methods from the paper.
const (
	NearestNeighbor Method = "NN"
	SortGreedy      Method = "SG"
	Hungarian       Method = "MWM"
	JonkerVolgenant Method = "JV"
)

// Methods lists all assignment methods in the paper's order.
func Methods() []Method {
	return []Method{NearestNeighbor, SortGreedy, Hungarian, JonkerVolgenant}
}

// Solve dispatches to the requested method. The similarity matrix must have
// Rows <= Cols (source no larger than target); mapping[i] is the target
// assigned to source i (always >= 0 for the one-to-one methods; NN may
// repeat targets).
func Solve(method Method, sim *matrix.Dense) ([]int, error) {
	if sim.Rows > sim.Cols {
		return nil, fmt.Errorf("assign: source larger than target (%d > %d)", sim.Rows, sim.Cols)
	}
	switch method {
	case NearestNeighbor:
		return SolveNN(sim), nil
	case SortGreedy:
		return SolveGreedy(sim), nil
	case Hungarian:
		return SolveHungarian(sim), nil
	case JonkerVolgenant:
		return SolveJV(sim), nil
	default:
		return nil, fmt.Errorf("assign: unknown method %q", method)
	}
}

// SolveNN assigns each source row its highest-similarity target column,
// allowing many-to-one matches. This mirrors the raw nearest-neighbor
// extraction used by REGAL/CONE/GWL/S-GWL before the paper restricts them to
// one-to-one outputs.
func SolveNN(sim *matrix.Dense) []int {
	mapping := make([]int, sim.Rows)
	for i := 0; i < sim.Rows; i++ {
		row := sim.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		mapping[i] = best
	}
	return mapping
}

// pair is a candidate match considered by SortGreedy.
type pair struct {
	i, j int
	v    float64
}

// SolveGreedy implements SortGreedy: sort all (i, j) pairs by similarity
// descending and accept a pair whenever both endpoints are still unmatched.
// Ties are broken by (i, j) order for determinism. The result is a maximal
// one-to-one matching.
func SolveGreedy(sim *matrix.Dense) []int {
	n, m := sim.Rows, sim.Cols
	pairs := make([]pair, 0, n*m)
	for i := 0; i < n; i++ {
		row := sim.Row(i)
		for j, v := range row {
			pairs = append(pairs, pair{i, j, v})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].v != pairs[b].v {
			return pairs[a].v > pairs[b].v
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	usedCol := make([]bool, m)
	matched := 0
	for _, p := range pairs {
		if matched == n {
			break
		}
		if mapping[p.i] != -1 || usedCol[p.j] {
			continue
		}
		mapping[p.i] = p.j
		usedCol[p.j] = true
		matched++
	}
	return mapping
}

// TotalSimilarity returns the sum of sim over a mapping (useful in tests and
// for comparing solvers); unmatched rows (mapping[i] < 0) contribute zero.
func TotalSimilarity(sim *matrix.Dense, mapping []int) float64 {
	var s float64
	for i, j := range mapping {
		if j >= 0 {
			s += sim.At(i, j)
		}
	}
	return s
}

// EnforceOneToOne converts a possibly many-to-one mapping into a one-to-one
// mapping: source rows keep their target when they are its unique claimant
// with the highest similarity; losers are re-assigned greedily among the
// remaining columns. This is the paper's restriction of NN-based methods to
// one-to-one outputs.
func EnforceOneToOne(sim *matrix.Dense, mapping []int) []int {
	n, m := sim.Rows, sim.Cols
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	owner := make([]int, m)
	for j := range owner {
		owner[j] = -1
	}
	for i, j := range mapping {
		if j < 0 || j >= m {
			continue
		}
		if owner[j] == -1 || sim.At(i, j) > sim.At(owner[j], j) {
			owner[j] = i
		}
	}
	usedCol := make([]bool, m)
	for j, i := range owner {
		if i >= 0 {
			out[i] = j
			usedCol[j] = true
		}
	}
	// Re-assign the losers greedily by best remaining column.
	var losers []int
	for i, j := range out {
		if j == -1 {
			losers = append(losers, i)
		}
	}
	for _, i := range losers {
		best, bestV := -1, 0.0
		row := sim.Row(i)
		for j, v := range row {
			if usedCol[j] {
				continue
			}
			if best == -1 || v > bestV {
				best, bestV = j, v
			}
		}
		if best >= 0 {
			out[i] = best
			usedCol[best] = true
		}
	}
	return out
}
