package assign

import "math"

// Candidate-graph repair for the auction solver. Top-k candidate lists built
// from low-rank similarities routinely violate Hall's condition: methods whose
// similarity is dominated by a few global directions (NSD's degree prior, many
// structurally equivalent low-degree nodes under REGAL signatures) hand large
// groups of rows nearly identical lists, so no matching can saturate every
// row and SolveAuction refuses the instance. The sparse pipeline's answer is
// the dense-JV fallback — correct, but it abandons the sparse solve entirely
// and, for the incremental mode, leaves no auction state to warm-start from.
//
// Augment* repairs the graph instead: it runs Hopcroft–Karp once, and gives
// each unmatched row exactly one extra candidate — a distinct free column
// under the maximum matching, scored with the producer's own kernel so the
// entry is a real (row, column) similarity, not an invented value. Matching ∪
// augmented edges is a row-perfect matching by construction, so the result
// always passes Matchable. An unmatched row can never already hold a free
// column (that would be a length-1 augmenting path, contradicting maximality),
// so the added entry never duplicates an existing one.
//
// The repair is a pure function of its inputs: Hopcroft–Karp is
// deterministic, unmatched rows are processed in ascending order, and ties in
// the free-column search resolve to the lowest column. Unchanged inputs
// therefore reproduce the augmented set bitwise — the property the
// incremental session's empty-delta contract rests on.

// augmentPairBudget bounds the unmatched-rows × free-columns scoring work of
// the best-free-column search. Beyond it (pathological deficiencies where
// most rows are unmatched) the repair pairs rows and columns positionally —
// still deterministic and still row-saturating, just unscored; rows forced
// onto augmented edges are ones the candidate lists could never seat anyway.
const augmentPairBudget = 1 << 22

// AugmentEmbedding returns a row-saturating version of c, scoring added
// entries with the embedding's distance kernel (the same arithmetic the top-k
// producers use). When c is already matchable it is returned unchanged with a
// nil column list; otherwise the result is a fresh candidate set with stride
// K+1 and augCols[i] holding row i's added column (-1 for rows left alone).
//
// seed and prevAug, when non-nil, are a previous call's match and augCols
// returns: the maximum matching is grown from seed's still-valid pairs
// instead of from scratch, and an unmatched row keeps its previous repair
// column whenever that column is still free — so the added entries stay
// stable when the candidate lists change only locally, instead of
// reshuffling wholesale (every reshuffled row is a solver-visible change the
// caller would have to treat as dirty). match reports the base-graph matching
// the repair was built on, for use as the next call's seed.
func AugmentEmbedding(c *Candidates, e *Embedding, seed, prevAug []int) (aug *Candidates, augCols, match []int) {
	return augment(c, func(i, j int) float64 {
		return e.SimFromDist2(sqDistAsc(e.Src.Row(i), e.Dst.Row(j)))
	}, seed, prevAug)
}

// AugmentFactor is AugmentEmbedding for factored similarities; NaN scores
// (factor-space pruning) are clamped to 0 so the added entry stays usable by
// the auction.
func AugmentFactor(c *Candidates, f *FactorEmbedding, seed, prevAug []int) (aug *Candidates, augCols, match []int) {
	return augment(c, func(i, j int) float64 { return factorScoreOne(f, i, j) }, seed, prevAug)
}

func augment(c *Candidates, score func(i, j int) float64, seed, prevAug []int) (*Candidates, []int, []int) {
	if c.Rows > c.Cols {
		return c, nil, nil // structurally unmatchable; nothing to repair
	}
	matched, matchRow, matchCol := c.maxMatchingState(seed)
	if matched == c.Rows {
		return c, nil, matchRow
	}
	var rows, free []int
	freePos := make([]int, c.Cols) // col -> index in free, -1 taken/matched
	for j := range freePos {
		freePos[j] = -1
	}
	for i, j := range matchRow {
		if j == -1 {
			rows = append(rows, i)
		}
	}
	for j, i := range matchCol {
		if i == -1 {
			freePos[j] = len(free)
			free = append(free, j)
		}
	}
	augCols := make([]int, c.Rows)
	for i := range augCols {
		augCols[i] = -1
	}
	used := make([]bool, len(free))
	// Sticky pass: an unmatched row whose previous repair column is still
	// free keeps it.
	remaining := rows[:0:0]
	for _, i := range rows {
		if len(prevAug) == c.Rows {
			if j := prevAug[i]; j >= 0 && j < c.Cols && freePos[j] >= 0 && !used[freePos[j]] {
				used[freePos[j]] = true
				augCols[i] = j
				continue
			}
		}
		remaining = append(remaining, i)
	}
	if len(remaining)*len(free) <= augmentPairBudget {
		// Greedy best free column per remaining row, rows ascending. Scanning
		// the (ascending) free list with a strict improvement test keeps ties
		// on the lowest column.
		for _, i := range remaining {
			bestP, bestV := -1, math.Inf(-1)
			for p, j := range free {
				if used[p] {
					continue
				}
				v := score(i, j)
				if math.IsNaN(v) {
					v = 0
				}
				if v > bestV {
					bestP, bestV = p, v
				}
			}
			used[bestP] = true
			augCols[i] = free[bestP]
		}
	} else {
		// Pathological deficiency: pair rows and columns positionally over the
		// unused free list — unscored but deterministic; rows forced onto
		// repair edges are ones the candidate lists could never seat anyway.
		p := 0
		for _, i := range remaining {
			for used[p] {
				p++
			}
			used[p] = true
			augCols[i] = free[p]
		}
	}

	k2 := c.K + 1
	out := &Candidates{
		Rows: c.Rows, Cols: c.Cols, K: k2,
		Col: make([]int, c.Rows*k2),
		Val: make([]float64, c.Rows*k2),
		Len: make([]int, c.Rows),
	}
	for i := 0; i < c.Rows; i++ {
		cols, vals := c.Row(i)
		dstC := out.Col[i*k2 : (i+1)*k2]
		dstV := out.Val[i*k2 : (i+1)*k2]
		n := copy(dstC, cols)
		copy(dstV, vals)
		if j := augCols[i]; j >= 0 {
			v := score(i, j)
			if math.IsNaN(v) {
				v = 0
			}
			// Insert at the row's sorted position (value descending, column
			// ascending) to preserve the Candidates ordering invariant.
			pos := n
			for pos > 0 && (dstV[pos-1] < v || (dstV[pos-1] == v && dstC[pos-1] > j)) {
				dstC[pos], dstV[pos] = dstC[pos-1], dstV[pos-1]
				pos--
			}
			dstC[pos], dstV[pos] = j, v
			n++
		}
		for p := n; p < k2; p++ {
			dstC[p], dstV[p] = -1, 0
		}
		out.Len[i] = n
	}
	return out, augCols, matchRow
}
