package assign

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// mergeInvariants checks the merge contract for one embedding-update result:
// stored values are the exact current scores, rows are in candidate storage
// order, fully rescanned rows match the bulk rebuild bitwise, every bulk
// entry drawn from the merge's pool (previous entries plus moved columns)
// survives, and the dirty list is exactly the rows that differ from prev.
func mergeInvariants(t *testing.T, tag string, prev, merged, bulk *Candidates, e *Embedding, changedRows, changedCols, dirty []int) {
	t.Helper()
	rescan := make([]bool, merged.Rows)
	for _, i := range changedRows {
		rescan[i] = true
	}
	changed := make([]bool, merged.Cols)
	for _, j := range changedCols {
		changed[j] = true
	}
	for i := 0; i < merged.Rows; i++ {
		cols, vals := merged.Row(i)
		bc, bv := bulk.Row(i)
		if rescan[i] {
			if !reflect.DeepEqual(cols, bc) || !reflect.DeepEqual(vals, bv) {
				t.Fatalf("%s: rescanned row %d differs from bulk:\n  got  %v %v\n  want %v %v", tag, i, cols, vals, bc, bv)
			}
			continue
		}
		q := e.Src.Row(i)
		for idx, j := range cols {
			if want := e.SimFromDist2(sqDistAsc(q, e.Dst.Row(j))); vals[idx] != want {
				t.Fatalf("%s: row %d entry %d (col %d): stored %v, exact %v", tag, i, idx, j, vals[idx], want)
			}
			if idx > 0 && (vals[idx-1] < vals[idx] || (vals[idx-1] == vals[idx] && cols[idx-1] > cols[idx])) {
				t.Fatalf("%s: row %d out of order at %d: %v %v", tag, i, idx, cols, vals)
			}
		}
		// Pool membership: a bulk winner that is a previous entry or a moved
		// column is in the merge's selection pool, and the pool is a subset of
		// all columns, so the merged k-th bound cannot exceed the bulk one —
		// such a winner must survive the merge.
		pool := map[int]bool{}
		pc, _ := prev.Row(i)
		for _, j := range pc {
			pool[j] = true
		}
		kept := map[int]bool{}
		for _, j := range cols {
			kept[j] = true
		}
		for _, j := range bc {
			if (pool[j] || changed[j]) && !kept[j] {
				t.Fatalf("%s: row %d dropped in-pool bulk winner col %d:\n  merged %v\n  bulk   %v", tag, i, j, cols, bc)
			}
		}
	}
	if want := DiffRows(prev, merged); !reflect.DeepEqual(dirty, want) {
		t.Fatalf("%s: dirty = %v, want %v", tag, dirty, want)
	}
}

func TestMergeTopKEmbeddingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{4, 8, 16} {
		for trial := 0; trial < 10; trial++ {
			n, m, k := 40+rng.Intn(20), 50+rng.Intn(20), 5
			e := randEmbedding(n, m, d, rng)
			prev := TopKEmbedding(e, k, 1)
			e2 := randEmbedding(n, m, d, rng)
			copy(e2.Src.Data, e.Src.Data)
			copy(e2.Dst.Data, e.Dst.Data)
			changedRows := perturbRows(e2.Src, 1+rng.Intn(3), rng)
			changedCols := perturbRows(e2.Dst, 1+rng.Intn(4), rng)

			bulk := TopKEmbedding(e2, k, 1)
			merged, dirty := MergeTopKEmbedding(prev, e2, changedRows, changedCols, 1)
			mergeInvariants(t, "embedding-merge", prev, merged, bulk, e2, changedRows, changedCols, dirty)
		}
	}
}

// When every column is in the selection pool (K >= Cols means every row lists
// every column) the merge has nothing to miss: it must match the bulk rebuild
// bitwise.
func TestMergeTopKEmbeddingFullPoolExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n, m, k := 40, 12, 12
	e := randEmbedding(n, m, 6, rng)
	prev := TopKEmbedding(e, k, 1)
	e2 := randEmbedding(n, m, 6, rng)
	copy(e2.Src.Data, e.Src.Data)
	copy(e2.Dst.Data, e.Dst.Data)
	changedCols := perturbRows(e2.Dst, 3, rng)

	bulk := TopKEmbedding(e2, k, 1)
	merged, dirty := MergeTopKEmbedding(prev, e2, nil, changedCols, 1)
	candsEqual(t, "embedding-merge-full", merged, bulk)
	if want := DiffRows(prev, bulk); !reflect.DeepEqual(dirty, want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
}

func TestMergeTopKEmbeddingNoChange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	e := randEmbedding(30, 40, 8, rng)
	prev := TopKEmbedding(e, 4, 1)
	merged, dirty := MergeTopKEmbedding(prev, e, nil, nil, 1)
	candsEqual(t, "embedding-merge-nochange", merged, prev)
	if len(dirty) != 0 {
		t.Fatalf("no-op merge reported dirty rows %v", dirty)
	}
	if &merged.Col[0] == &prev.Col[0] {
		t.Fatal("merge aliases previous candidate storage")
	}
}

// Deltas past the worthwhile bound fall back to the bulk rebuild, so the
// result is exact.
func TestMergeTopKEmbeddingLargeDeltaShortcut(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n, m, k := 30, 24, 4
	e := randEmbedding(n, m, 8, rng)
	prev := TopKEmbedding(e, k, 1)
	e2 := randEmbedding(n, m, 8, rng)
	copy(e2.Src.Data, e.Src.Data)
	copy(e2.Dst.Data, e.Dst.Data)
	changedCols := perturbRows(e2.Dst, m/2, rng)

	bulk := TopKEmbedding(e2, k, 1)
	merged, dirty := MergeTopKEmbedding(prev, e2, nil, changedCols, 1)
	candsEqual(t, "embedding-merge-shortcut", merged, bulk)
	if want := DiffRows(prev, bulk); !reflect.DeepEqual(dirty, want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
}

func TestMergeTopKFactorInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 15; trial++ {
		n, m, rank, k := 30+rng.Intn(20), 40+rng.Intn(20), 3, 5
		f := randFactors(n, m, rank, rng)
		prev := TopKFactor(f, k, 1)

		f2 := f.Clone()
		var changedRows, changedCols []int
		for c := 0; c <= rng.Intn(2); c++ {
			i := rng.Intn(n)
			f2.Us[rng.Intn(rank)][i] = rng.NormFloat64()
			changedRows = append(changedRows, i)
		}
		for c := 0; c <= rng.Intn(3); c++ {
			j := rng.Intn(m)
			f2.Vs[rng.Intn(rank)][j] = rng.NormFloat64()
			changedCols = append(changedCols, j)
		}
		bulk := TopKFactor(f2, k, 1)
		merged, dirty := MergeTopKFactor(prev, f2, changedRows, changedCols, 1)

		rescan := make([]bool, n)
		for _, i := range changedRows {
			rescan[i] = true
		}
		for i := 0; i < n; i++ {
			cols, vals := merged.Row(i)
			if rescan[i] {
				bc, bv := bulk.Row(i)
				if !reflect.DeepEqual(cols, bc) || !reflect.DeepEqual(vals, bv) {
					t.Fatalf("trial %d: rescanned row %d differs from bulk", trial, i)
				}
				continue
			}
			for idx, j := range cols {
				if want := factorScoreOne(f2, i, j); vals[idx] != want {
					t.Fatalf("trial %d: row %d col %d stored %v, exact %v", trial, i, j, vals[idx], want)
				}
				if idx > 0 && (vals[idx-1] < vals[idx] || (vals[idx-1] == vals[idx] && cols[idx-1] > cols[idx])) {
					t.Fatalf("trial %d: row %d out of order: %v %v", trial, i, cols, vals)
				}
			}
		}
		if want := DiffRows(prev, merged); !reflect.DeepEqual(dirty, want) {
			t.Fatalf("trial %d: dirty = %v, want %v", trial, dirty, want)
		}
	}
}

// A moved column whose fresh scores are NaN must disappear from every merged
// row (NaN pruning), shrinking rows through the Len bookkeeping rather than
// keeping a poisoned entry.
func TestMergeTopKFactorNaNPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n, m, rank, k := 30, 40, 2, 5
	f := randFactors(n, m, rank, rng)
	prev := TopKFactor(f, k, 1)

	f2 := f.Clone()
	poisoned := 7
	for r := 0; r < rank; r++ {
		f2.Vs[r][poisoned] = math.NaN()
	}
	merged, _ := MergeTopKFactor(prev, f2, nil, []int{poisoned}, 1)
	for i := 0; i < n; i++ {
		cols, vals := merged.Row(i)
		for idx, j := range cols {
			if j == poisoned {
				t.Fatalf("row %d retained NaN-scored col %d", i, poisoned)
			}
			if math.IsNaN(vals[idx]) {
				t.Fatalf("row %d entry %d is NaN", i, idx)
			}
		}
	}
}
