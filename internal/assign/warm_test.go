package assign

import (
	"math/rand"
	"testing"

	"graphalign/internal/matrix"
)

// Satellite 3 (PR 10): an empty dirty set must make the warm start a pure
// replay — zero bidding rounds, byte-identical mapping, unchanged prices —
// including rectangular instances whose virtual padding rows must re-seat.
func TestWarmAuctionEmptyDirtyByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		m := n + rng.Intn(5) // includes rectangular n < m
		sim := matrix.NewDense(n, m)
		for i := range sim.Data {
			sim.Data[i] = rng.Float64()
		}
		c := TopKDense(sim, m, 1)
		cold, state, _, ok := SolveAuctionState(c, 1)
		if !ok {
			t.Fatalf("trial %d: cold solve failed", trial)
		}
		warm, wstate, wstats, ok := SolveAuctionWarm(c, cold, state, nil, 1)
		if !ok {
			t.Fatalf("trial %d: warm solve failed", trial)
		}
		if !wstats.WarmStart || wstats.RebidRows != 0 {
			t.Fatalf("trial %d: stats = %+v, want WarmStart with 0 rebid rows", trial, wstats)
		}
		if wstats.Rounds != 0 {
			t.Fatalf("trial %d: empty dirty set ran %d rounds, want 0", trial, wstats.Rounds)
		}
		for i := range cold {
			if warm[i] != cold[i] {
				t.Fatalf("trial %d (n=%d m=%d): warm mapping differs at row %d: %d vs %d",
					trial, n, m, i, warm[i], cold[i])
			}
		}
		for j := range state.Price {
			if wstate.Price[j] != state.Price[j] {
				t.Fatalf("trial %d: price %d moved %v -> %v with no bids", trial, j, state.Price[j], wstate.Price[j])
			}
		}
		if wstate.FinalEps != state.FinalEps {
			t.Fatalf("trial %d: FinalEps drifted %v -> %v on unchanged candidates", trial, state.FinalEps, wstate.FinalEps)
		}
	}
}

// Satellite 3 (PR 10): across random edit streams, the warm-started auction's
// total stays within the Cols·FinalEps ε-scaling bound of the true optimum of
// each edited instance — the same contract the PR 5 auction-vs-JV harness
// pins for cold solves. Full candidate sets keep the candidate-graph optimum
// equal to the dense JV optimum.
func TestWarmAuctionAgreesWithJVAcrossEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		m := n + rng.Intn(3)
		sim := matrix.NewDense(n, m)
		for i := range sim.Data {
			sim.Data[i] = rng.Float64()
		}
		c := TopKDense(sim, m, 1)
		mapping, state, _, ok := SolveAuctionState(c, 1)
		if !ok {
			t.Fatalf("trial %d: cold solve failed", trial)
		}
		// A stream of small perturbations, each warm-started from the last.
		for step := 0; step < 6; step++ {
			next := matrix.NewDense(n, m)
			copy(next.Data, sim.Data)
			for touched := 0; touched <= rng.Intn(3); touched++ {
				i := rng.Intn(n)
				for j := 0; j < m; j++ {
					if rng.Intn(2) == 0 {
						next.Set(i, j, rng.Float64())
					}
				}
			}
			cNext := TopKDense(next, m, 1)
			dirty := DiffRows(c, cNext)
			warm, wstate, wstats, ok := SolveAuctionWarm(cNext, mapping, state, dirty, 1)
			if !ok {
				t.Fatalf("trial %d step %d: warm solve failed", trial, step)
			}
			checkOneToOne(t, "warm-auction", warm, m)
			got := TotalSimilarity(next, warm)
			want := TotalSimilarity(next, SolveJV(next))
			if diff := want - got; diff > auctionTolerance(m, wstats) {
				t.Fatalf("trial %d step %d (n=%d m=%d, %d dirty): warm total %v vs JV %v, gap %v > tol %v",
					trial, step, n, m, len(dirty), got, want, diff, auctionTolerance(m, wstats))
			}
			sim, c, mapping, state = next, cNext, warm, wstate
		}
	}
}

// The feasibility repair pass: seeds pointing at columns outside the row's
// candidate list (or out of range) are dropped and re-bid rather than trusted,
// so a corrupted previous mapping degrades to extra work, not a wrong answer.
func TestWarmAuctionRepairsBadSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		m := n + rng.Intn(2)
		sim := matrix.NewDense(n, m)
		for i := range sim.Data {
			sim.Data[i] = rng.Float64()
		}
		c := TopKDense(sim, m, 1)
		mapping, state, _, ok := SolveAuctionState(c, 1)
		if !ok {
			t.Fatalf("trial %d: cold solve failed", trial)
		}
		bad := append([]int(nil), mapping...)
		bad[rng.Intn(n)] = -1
		bad[rng.Intn(n)] = m + 3 // out of range
		if n >= 2 {
			bad[0] = bad[1] // collision: second seed loses and re-bids
		}
		warm, _, wstats, ok := SolveAuctionWarm(c, bad, state, nil, 1)
		if !ok {
			t.Fatalf("trial %d: warm solve failed", trial)
		}
		checkOneToOne(t, "warm-repair", warm, m)
		got := TotalSimilarity(sim, warm)
		want := TotalSimilarity(sim, SolveJV(sim))
		if diff := want - got; diff > auctionTolerance(m, wstats) {
			t.Fatalf("trial %d: repaired warm total %v vs JV %v, gap %v > tol %v",
				trial, got, want, diff, auctionTolerance(m, wstats))
		}
		if wstats.RebidRows == 0 {
			t.Fatalf("trial %d: corrupted seeds reported zero rebid rows", trial)
		}
	}
}

// Dimension drift between the previous state and the new candidate set must
// signal cold-solve fallback, not panic or mis-seed.
func TestWarmAuctionRejectsShapeMismatch(t *testing.T) {
	sim := matrix.DenseFromRows([][]float64{{1, 0}, {0, 1}})
	c := TopKDense(sim, 2, 1)
	mapping, state, _, ok := SolveAuctionState(c, 1)
	if !ok {
		t.Fatal("cold solve failed")
	}
	if _, _, _, ok := SolveAuctionWarm(c, mapping[:1], state, nil, 1); ok {
		t.Error("short prevMapping accepted")
	}
	short := AuctionState{Price: state.Price[:1], FinalEps: state.FinalEps, Spread: state.Spread}
	if _, _, _, ok := SolveAuctionWarm(c, mapping, short, nil, 1); ok {
		t.Error("short price vector accepted")
	}
}
