package assign

import (
	"math"

	"graphalign/internal/kdtree"
	"graphalign/internal/matrix"
	"graphalign/internal/parallel"
)

// Candidates is the sparse per-row candidate set the sparse assignment
// pipeline operates on: for each source row, its K highest-similarity target
// columns, stored row-major and sorted within each row by descending value
// with ties broken by ascending column. K is uniform across rows (capped at
// Cols), which keeps the layout a flat pair of arrays the auction's inner
// loop can stream through.
//
// A candidate set is immutable once built and is a pure function of its
// inputs, so it can be shared across goroutines freely.
type Candidates struct {
	Rows, Cols int
	// K is the number of candidates per row (min(requested k, Cols)).
	K int
	// Col[i*K+c] and Val[i*K+c] are the column and similarity of row i's
	// c-th best candidate.
	Col []int
	Val []float64
	// Len, when non-nil, gives each row's actual candidate count (<= K):
	// producers that prune candidates (TopKFactor dropping NaN scores) leave
	// short rows padded with Col -1 / Val 0, and Row trims the padding. Nil
	// means every row holds exactly K candidates.
	Len []int
}

// Row returns row i's candidate columns and values (views into shared
// storage; treat as read-only).
func (c *Candidates) Row(i int) ([]int, []float64) {
	lo, hi := i*c.K, (i+1)*c.K
	if c.Len != nil {
		hi = lo + c.Len[i]
	}
	return c.Col[lo:hi], c.Val[lo:hi]
}

// candidateBudget is the approximate per-call work (rows * cols) above which
// candidate generation fans rows out across the worker pool. Each row is
// selected by exactly one goroutine, so results are identical for any worker
// count.
const candidateBudget = 1 << 18

// TopKDense reduces a dense similarity matrix to its per-row top-k candidate
// set via bounded-heap partial selection: O(m log k) per row instead of the
// O(m log m) of a full row sort. Rows are fanned out across at most workers
// goroutines (0 = one per CPU, 1 = sequential); the output is identical for
// any worker count. k <= 0 or k >= Cols keeps every column (the candidate
// set is then dense, just reordered).
func TopKDense(sim *matrix.Dense, k, workers int) *Candidates {
	n, m := sim.Rows, sim.Cols
	if k <= 0 || k > m {
		k = m
	}
	c := &Candidates{Rows: n, Cols: m, K: k,
		Col: make([]int, n*k), Val: make([]float64, n*k)}
	selectRows := func(lo, hi int) {
		heap := make([]pair, 0, k)
		for i := lo; i < hi; i++ {
			heap = selectTopK(heap[:0], sim.Row(i), k)
			// Heap-sort the selection in place into descending (v, asc j)
			// order: repeatedly move the weakest candidate to the tail.
			cols, vals := c.Row(i)
			for l := len(heap) - 1; l > 0; l-- {
				heap[0], heap[l] = heap[l], heap[0]
				topKSiftDownN(heap, 0, l)
			}
			for idx, p := range heap {
				cols[idx], vals[idx] = p.j, p.v
			}
		}
	}
	if n*m >= candidateBudget && parallel.Workers(workers) > 1 {
		parallel.Blocks(workers, n, selectRows)
	} else {
		selectRows(0, n)
	}
	return c
}

// selectTopK pushes row's k strongest (value, column) entries onto h (reused
// storage, passed in emptied) using the bounded min-heap ordered by
// (v asc, j desc): the root is the weakest kept candidate, and among equal
// values the larger column is evicted first, so ties keep the smaller column.
func selectTopK(h []pair, row []float64, k int) []pair {
	for j, v := range row {
		if len(h) < k {
			h = append(h, pair{0, j, v})
			topKSiftUp(h, len(h)-1)
			continue
		}
		// Columns arrive in increasing j, so on equal value the incumbent
		// (smaller j) wins and the newcomer is skipped.
		if v <= h[0].v {
			continue
		}
		h[0] = pair{0, j, v}
		topKSiftDown(h, 0)
	}
	return h
}

// Embedding is a similarity matrix in factored form: per-node embedding rows
// for the source and target graphs plus the monotone non-increasing map from
// squared Euclidean row distance to similarity score. Aligners whose
// similarity is a pure function of embedding distance (REGAL, CONE, GRASP)
// expose this via algo.EmbeddingAligner so the sparse pipeline can run k-NN
// candidate search directly over the embeddings and never materialize the
// dense n x m similarity matrix.
type Embedding struct {
	Src, Dst *matrix.Dense
	// SimFromDist2 converts a squared Euclidean distance between an Src row
	// and a Dst row into the aligner's similarity score. It must be monotone
	// non-increasing so that nearest-in-embedding equals best-similarity.
	SimFromDist2 func(d2 float64) float64
}

// Similarity materializes the full dense similarity matrix from the
// embedding — the fallback of the sparse pipeline when the candidate graph
// is unmatchable, and bitwise what the aligner's own dense path computes
// (same row-major squared-distance accumulation order).
func (e *Embedding) Similarity() *matrix.Dense {
	sim := matrix.PairwiseSqDist(e.Src, e.Dst)
	for i, d2 := range sim.Data {
		sim.Data[i] = e.SimFromDist2(d2)
	}
	return sim
}

// bruteForceDim is the embedding width at and above which TopKEmbedding
// abandons the k-d tree for a row-blocked brute-force distance scan. On the
// unstructured embeddings the aligners produce, tree traversal visits nearly
// every node from d≈8 upward (the usual curse-of-dimensionality folklore
// says d ≳ 32, but measured visit counts cross ~85% of nodes already at
// d=8 — see DESIGN.md §12), at which point the tree only adds traversal
// overhead over the flat scan.
const bruteForceDim = 8

// TopKEmbedding builds the per-row candidate set straight from the factored
// embedding, never materializing the dense Rows x Cols similarity matrix.
// Low-dimensional embeddings (d < bruteForceDim) run k-nearest-neighbor
// queries against a k-d tree over the target rows with per-worker reusable
// scratch; wider ones use a brute-force distance scan fused with bounded
// selection (see topKEmbeddingBrute) — O(m d) per row with no per-query
// allocation either way. Both paths fan rows out
// across at most workers goroutines; results are identical for any worker
// count and across the two paths. Within a row, candidates are ordered by
// ascending distance with ties broken by lower column id, which is
// descending similarity order because SimFromDist2 is monotone.
func TopKEmbedding(e *Embedding, k, workers int) *Candidates {
	n, m := e.Src.Rows, e.Dst.Rows
	if k <= 0 || k > m {
		k = m
	}
	c := &Candidates{Rows: n, Cols: m, K: k,
		Col: make([]int, n*k), Val: make([]float64, n*k)}
	if n == 0 || m == 0 {
		return c
	}
	var queryRows func(lo, hi int)
	if e.Src.Cols >= bruteForceDim {
		queryRows = func(lo, hi int) { topKEmbeddingBrute(e, c, lo, hi) }
	} else {
		points := make([][]float64, m)
		for j := 0; j < m; j++ {
			points[j] = e.Dst.Row(j)
		}
		tree := kdtree.Build(points)
		queryRows = func(lo, hi int) { topKEmbeddingTree(tree, e, c, lo, hi) }
	}
	if n*k >= 1<<12 && parallel.Workers(workers) > 1 {
		parallel.Blocks(workers, n, queryRows)
	} else {
		queryRows(0, n)
	}
	return c
}

// topKEmbeddingTree fills rows [lo, hi) by k-NN queries against the shared
// k-d tree over the target rows, one reusable Scratch per worker block.
func topKEmbeddingTree(tree *kdtree.Tree, e *Embedding, c *Candidates, lo, hi int) {
	s := kdtree.NewScratch()
	for i := lo; i < hi; i++ {
		ids, dists := tree.NearestKInto(e.Src.Row(i), c.K, s)
		cols, vals := c.Row(i)
		for idx, id := range ids {
			cols[idx] = id
			vals[idx] = e.SimFromDist2(dists[idx])
		}
	}
}

// topKEmbeddingBrute fills rows [lo, hi) by a flat distance scan fused with
// bounded selection: target rows are processed eight at a time with
// independent accumulator chains — each distance accumulates
// dimension-ascending in its own chain, bitwise the PairwiseSqDist /
// matrix.SqDistInto values — and every distance is compared against the
// current k-th-nearest bound while still in a register, so distances are
// never stored to a buffer or re-scanned. (A half-dimension partial-distance
// cut was tried and measured slower at these dims: the data-dependent
// branches and serialized completion loops cost more than the skipped FLOPs.)
// The selection is a sorted insertion array (cheaper than a heap at
// candidate-set sizes, and already in output order). Ids are visited
// ascending, so on equal distance the incumbent (smaller id) wins — the
// tree path's (distance asc, id asc) contract. Bound tests are written
// !(x >= bound) so non-finite distances take the same insert path a
// buffered scan would.
func topKEmbeddingBrute(e *Embedding, c *Candidates, lo, hi int) {
	m, k := c.Cols, c.K
	d := e.Dst.Cols
	if e.Src.Cols != d {
		panic("assign: embedding side dims differ")
	}
	if d == 8 {
		topKEmbeddingBrute8(e, c, lo, hi)
		return
	}
	data := e.Dst.Data
	heap := make([]nnPair, 0, k)
	for i := lo; i < hi; i++ {
		q := e.Src.Row(i)
		heap = heap[:0]
		bound := math.Inf(1)
		j := 0
		nq := len(q)
		for ; j+8 <= m; j += 8 {
			base := j * d
			// Re-slicing each row to len(q) lets the compiler prove t in
			// bounds for every load below (len(q) == d by the guard above).
			r0 := data[base : base+d : base+d][:nq]
			r1 := data[base+d : base+2*d : base+2*d][:nq]
			r2 := data[base+2*d : base+3*d : base+3*d][:nq]
			r3 := data[base+3*d : base+4*d : base+4*d][:nq]
			r4 := data[base+4*d : base+5*d : base+5*d][:nq]
			r5 := data[base+5*d : base+6*d : base+6*d][:nq]
			r6 := data[base+6*d : base+7*d : base+7*d][:nq]
			r7 := data[base+7*d : base+8*d : base+8*d][:nq]
			var s0, s1, s2, s3, s4, s5, s6, s7 float64
			for t, v := range q {
				d0 := v - r0[t]
				s0 += d0 * d0
				d1 := v - r1[t]
				s1 += d1 * d1
				d2 := v - r2[t]
				s2 += d2 * d2
				d3 := v - r3[t]
				s3 += d3 * d3
				d4 := v - r4[t]
				s4 += d4 * d4
				d5 := v - r5[t]
				s5 += d5 * d5
				d6 := v - r6[t]
				s6 += d6 * d6
				d7 := v - r7[t]
				s7 += d7 * d7
			}
			if len(heap) < k || !(s0 >= bound) {
				heap, bound = nnInsert(heap, k, s0, j)
			}
			if len(heap) < k || !(s1 >= bound) {
				heap, bound = nnInsert(heap, k, s1, j+1)
			}
			if len(heap) < k || !(s2 >= bound) {
				heap, bound = nnInsert(heap, k, s2, j+2)
			}
			if len(heap) < k || !(s3 >= bound) {
				heap, bound = nnInsert(heap, k, s3, j+3)
			}
			if len(heap) < k || !(s4 >= bound) {
				heap, bound = nnInsert(heap, k, s4, j+4)
			}
			if len(heap) < k || !(s5 >= bound) {
				heap, bound = nnInsert(heap, k, s5, j+5)
			}
			if len(heap) < k || !(s6 >= bound) {
				heap, bound = nnInsert(heap, k, s6, j+6)
			}
			if len(heap) < k || !(s7 >= bound) {
				heap, bound = nnInsert(heap, k, s7, j+7)
			}
		}
		for ; j < m; j++ {
			rj := data[j*d : (j+1)*d : (j+1)*d][:nq]
			var s float64
			for t, v := range q {
				dd := v - rj[t]
				s += dd * dd
			}
			if len(heap) < k || !(s >= bound) {
				heap, bound = nnInsert(heap, k, s, j)
			}
		}
		// The insertion array is already in ascending (distance, id) order.
		cols, vals := c.Row(i)
		for idx, p := range heap {
			cols[idx] = p.j
			vals[idx] = e.SimFromDist2(p.d2)
		}
	}
}

// topKEmbeddingBrute8 is topKEmbeddingBrute specialized to d=8, the
// tree/brute crossover width (see bruteForceDim) and the narrowest embedding
// the scan ever sees. The query row is hoisted into eight registers once per
// row instead of reloaded per block, the per-dimension loop is fully
// unrolled, and each block of four target rows is one 32-element slice so
// every load is a constant index the compiler proves in bounds. Each
// distance still accumulates dimension-ascending in its own chain —
// bitwise identical to the generic kernel and to matrix.PairwiseSqDist —
// and the selection contract is unchanged.
func topKEmbeddingBrute8(e *Embedding, c *Candidates, lo, hi int) {
	m, k := c.Cols, c.K
	data := e.Dst.Data
	heap := make([]nnPair, 0, k)
	for i := lo; i < hi; i++ {
		q := e.Src.Row(i)
		q0, q1, q2, q3, q4, q5, q6, q7 := q[0], q[1], q[2], q[3], q[4], q[5], q[6], q[7]
		heap = heap[:0]
		bound := math.Inf(1)
		j := 0
		for ; j+4 <= m; j += 4 {
			r := data[j*8 : j*8+32 : j*8+32]

			t := q0 - r[0]
			s0 := t * t
			t = q1 - r[1]
			s0 += t * t
			t = q2 - r[2]
			s0 += t * t
			t = q3 - r[3]
			s0 += t * t
			t = q4 - r[4]
			s0 += t * t
			t = q5 - r[5]
			s0 += t * t
			t = q6 - r[6]
			s0 += t * t
			t = q7 - r[7]
			s0 += t * t

			t = q0 - r[8]
			s1 := t * t
			t = q1 - r[9]
			s1 += t * t
			t = q2 - r[10]
			s1 += t * t
			t = q3 - r[11]
			s1 += t * t
			t = q4 - r[12]
			s1 += t * t
			t = q5 - r[13]
			s1 += t * t
			t = q6 - r[14]
			s1 += t * t
			t = q7 - r[15]
			s1 += t * t

			t = q0 - r[16]
			s2 := t * t
			t = q1 - r[17]
			s2 += t * t
			t = q2 - r[18]
			s2 += t * t
			t = q3 - r[19]
			s2 += t * t
			t = q4 - r[20]
			s2 += t * t
			t = q5 - r[21]
			s2 += t * t
			t = q6 - r[22]
			s2 += t * t
			t = q7 - r[23]
			s2 += t * t

			t = q0 - r[24]
			s3 := t * t
			t = q1 - r[25]
			s3 += t * t
			t = q2 - r[26]
			s3 += t * t
			t = q3 - r[27]
			s3 += t * t
			t = q4 - r[28]
			s3 += t * t
			t = q5 - r[29]
			s3 += t * t
			t = q6 - r[30]
			s3 += t * t
			t = q7 - r[31]
			s3 += t * t

			if len(heap) < k || !(s0 >= bound) {
				heap, bound = nnInsert(heap, k, s0, j)
			}
			if len(heap) < k || !(s1 >= bound) {
				heap, bound = nnInsert(heap, k, s1, j+1)
			}
			if len(heap) < k || !(s2 >= bound) {
				heap, bound = nnInsert(heap, k, s2, j+2)
			}
			if len(heap) < k || !(s3 >= bound) {
				heap, bound = nnInsert(heap, k, s3, j+3)
			}
		}
		for ; j < m; j++ {
			r := data[j*8 : j*8+8 : j*8+8]
			t := q0 - r[0]
			s := t * t
			t = q1 - r[1]
			s += t * t
			t = q2 - r[2]
			s += t * t
			t = q3 - r[3]
			s += t * t
			t = q4 - r[4]
			s += t * t
			t = q5 - r[5]
			s += t * t
			t = q6 - r[6]
			s += t * t
			t = q7 - r[7]
			s += t * t
			if len(heap) < k || !(s >= bound) {
				heap, bound = nnInsert(heap, k, s, j)
			}
		}
		cols, vals := c.Row(i)
		for idx, p := range heap {
			cols[idx] = p.j
			vals[idx] = e.SimFromDist2(p.d2)
		}
	}
}

// nnPair is a brute-force scan candidate: target row j at squared distance d2.
type nnPair struct {
	d2 float64
	j  int
}

// nnInsert inserts (d2, j) into the bounded k-nearest selection array, kept
// in ascending (distance, id) order, and returns the array and the new
// eviction bound: +Inf until the array fills, the worst kept distance after.
// Ids arrive ascending, so on equal distance the newcomer sits behind the
// incumbents — the same tie contract as the k-d tree path. Callers
// pre-filter against the bound, so a call is always an actual insertion; at
// candidate-set sizes the copy is cheaper than heap sifts, and the array
// needs no final sort.
func nnInsert(arr []nnPair, k int, d2 float64, j int) ([]nnPair, float64) {
	pos := len(arr)
	for pos > 0 && arr[pos-1].d2 > d2 {
		pos--
	}
	if len(arr) < k {
		arr = arr[:len(arr)+1]
	}
	copy(arr[pos+1:], arr[pos:])
	arr[pos] = nnPair{d2, j}
	if len(arr) < k {
		return arr, math.Inf(1)
	}
	return arr, arr[len(arr)-1].d2
}

// Matchable reports whether the candidate graph admits a matching that
// saturates every row (a prerequisite for the auction solver: rows that
// cannot all be matched within their candidates make the auction chase an
// infeasible assignment). It runs Hopcroft–Karp over the candidate edges,
// O(E sqrt(V)) — negligible next to the solve itself. Rows > Cols is
// trivially unmatchable.
func (c *Candidates) Matchable() bool {
	if c.Rows > c.Cols {
		return false
	}
	return c.maxMatching() == c.Rows
}

// maxMatching is Hopcroft–Karp over the candidate bipartite graph, returning
// the maximum number of simultaneously matchable rows.
func (c *Candidates) maxMatching() int {
	mm, _, _ := c.maxMatchingState(nil)
	return mm
}

// MaxMatching returns the maximum number of simultaneously matchable rows
// (Hopcroft–Karp over the candidate edges).
func (c *Candidates) MaxMatching() int { return c.maxMatching() }

// maxMatchingState runs Hopcroft–Karp and additionally returns the matching
// itself (row -> col and col -> row, -1 for free), for callers that repair an
// unmatchable candidate graph (see AugmentEmbedding/AugmentFactor). seed,
// when length Rows, pre-matches each (i, seed[i]) pair that is still a
// candidate edge and collision-free (first row wins, ascending) before the
// search runs; Hopcroft–Karp only grows a matching, so seeded pairs survive
// unless absorbed into an augmenting path — which keeps the matching (and
// hence the repair built on it) stable across small candidate-set edits
// instead of reshuffling wholesale.
func (c *Candidates) maxMatchingState(seed []int) (int, []int, []int) {
	const inf = int(^uint(0) >> 1)
	n := c.Rows
	matchRow := make([]int, n) // row -> col, -1 free
	matchCol := make([]int, c.Cols)
	for i := range matchRow {
		matchRow[i] = -1
	}
	for j := range matchCol {
		matchCol[j] = -1
	}
	dist := make([]int, n)
	queue := make([]int, 0, n)
	matched := 0
	if len(seed) == n {
		for i, j := range seed {
			if j < 0 || j >= c.Cols || matchCol[j] != -1 {
				continue
			}
			cols, _ := c.Row(i)
			for _, cj := range cols {
				if cj == j {
					matchRow[i], matchCol[j] = j, i
					matched++
					break
				}
			}
		}
	}
	for {
		// BFS layering from free rows.
		queue = queue[:0]
		for i := 0; i < n; i++ {
			if matchRow[i] == -1 {
				dist[i] = 0
				queue = append(queue, i)
			} else {
				dist[i] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			i := queue[qi]
			cols, _ := c.Row(i)
			for _, j := range cols {
				next := matchCol[j]
				if next == -1 {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[i] + 1
					queue = append(queue, next)
				}
			}
		}
		if !found {
			return matched, matchRow, matchCol
		}
		// DFS augmentation along the layering.
		var try func(i int) bool
		try = func(i int) bool {
			cols, _ := c.Row(i)
			for _, j := range cols {
				next := matchCol[j]
				if next == -1 || (dist[next] == dist[i]+1 && try(next)) {
					matchRow[i] = j
					matchCol[j] = i
					return true
				}
			}
			dist[i] = inf
			return false
		}
		for i := 0; i < n; i++ {
			if matchRow[i] == -1 && try(i) {
				matched++
			}
		}
	}
}
