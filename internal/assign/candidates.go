package assign

import (
	"graphalign/internal/kdtree"
	"graphalign/internal/matrix"
	"graphalign/internal/parallel"
)

// Candidates is the sparse per-row candidate set the sparse assignment
// pipeline operates on: for each source row, its K highest-similarity target
// columns, stored row-major and sorted within each row by descending value
// with ties broken by ascending column. K is uniform across rows (capped at
// Cols), which keeps the layout a flat pair of arrays the auction's inner
// loop can stream through.
//
// A candidate set is immutable once built and is a pure function of its
// inputs, so it can be shared across goroutines freely.
type Candidates struct {
	Rows, Cols int
	// K is the number of candidates per row (min(requested k, Cols)).
	K int
	// Col[i*K+c] and Val[i*K+c] are the column and similarity of row i's
	// c-th best candidate.
	Col []int
	Val []float64
}

// Row returns row i's candidate columns and values (views into shared
// storage; treat as read-only).
func (c *Candidates) Row(i int) ([]int, []float64) {
	lo, hi := i*c.K, (i+1)*c.K
	return c.Col[lo:hi], c.Val[lo:hi]
}

// candidateBudget is the approximate per-call work (rows * cols) above which
// candidate generation fans rows out across the worker pool. Each row is
// selected by exactly one goroutine, so results are identical for any worker
// count.
const candidateBudget = 1 << 18

// TopKDense reduces a dense similarity matrix to its per-row top-k candidate
// set via bounded-heap partial selection: O(m log k) per row instead of the
// O(m log m) of a full row sort. Rows are fanned out across at most workers
// goroutines (0 = one per CPU, 1 = sequential); the output is identical for
// any worker count. k <= 0 or k >= Cols keeps every column (the candidate
// set is then dense, just reordered).
func TopKDense(sim *matrix.Dense, k, workers int) *Candidates {
	n, m := sim.Rows, sim.Cols
	if k <= 0 || k > m {
		k = m
	}
	c := &Candidates{Rows: n, Cols: m, K: k,
		Col: make([]int, n*k), Val: make([]float64, n*k)}
	selectRows := func(lo, hi int) {
		heap := make([]pair, 0, k)
		for i := lo; i < hi; i++ {
			heap = selectTopK(heap[:0], sim.Row(i), k)
			// Heap-sort the selection in place into descending (v, asc j)
			// order: repeatedly move the weakest candidate to the tail.
			cols, vals := c.Row(i)
			for l := len(heap) - 1; l > 0; l-- {
				heap[0], heap[l] = heap[l], heap[0]
				topKSiftDownN(heap, 0, l)
			}
			for idx, p := range heap {
				cols[idx], vals[idx] = p.j, p.v
			}
		}
	}
	if n*m >= candidateBudget && parallel.Workers(workers) > 1 {
		parallel.Blocks(workers, n, selectRows)
	} else {
		selectRows(0, n)
	}
	return c
}

// selectTopK pushes row's k strongest (value, column) entries onto h (reused
// storage, passed in emptied) using the bounded min-heap ordered by
// (v asc, j desc): the root is the weakest kept candidate, and among equal
// values the larger column is evicted first, so ties keep the smaller column.
func selectTopK(h []pair, row []float64, k int) []pair {
	for j, v := range row {
		if len(h) < k {
			h = append(h, pair{0, j, v})
			topKSiftUp(h, len(h)-1)
			continue
		}
		// Columns arrive in increasing j, so on equal value the incumbent
		// (smaller j) wins and the newcomer is skipped.
		if v <= h[0].v {
			continue
		}
		h[0] = pair{0, j, v}
		topKSiftDown(h, 0)
	}
	return h
}

// Embedding is a similarity matrix in factored form: per-node embedding rows
// for the source and target graphs plus the monotone non-increasing map from
// squared Euclidean row distance to similarity score. Aligners whose
// similarity is a pure function of embedding distance (REGAL, CONE, GRASP)
// expose this via algo.EmbeddingAligner so the sparse pipeline can run k-NN
// candidate search directly over the embeddings and never materialize the
// dense n x m similarity matrix.
type Embedding struct {
	Src, Dst *matrix.Dense
	// SimFromDist2 converts a squared Euclidean distance between an Src row
	// and a Dst row into the aligner's similarity score. It must be monotone
	// non-increasing so that nearest-in-embedding equals best-similarity.
	SimFromDist2 func(d2 float64) float64
}

// Similarity materializes the full dense similarity matrix from the
// embedding — the fallback of the sparse pipeline when the candidate graph
// is unmatchable, and bitwise what the aligner's own dense path computes
// (same row-major squared-distance accumulation order).
func (e *Embedding) Similarity() *matrix.Dense {
	sim := matrix.PairwiseSqDist(e.Src, e.Dst)
	for i, d2 := range sim.Data {
		sim.Data[i] = e.SimFromDist2(d2)
	}
	return sim
}

// TopKEmbedding builds the per-row candidate set by k-nearest-neighbor
// queries against a k-d tree over the target embedding rows, skipping the
// dense Rows x Cols similarity matrix entirely: O((n+m) log m * d) plus the
// k-NN visits instead of O(n m d). Queries fan out across at most workers
// goroutines; results are identical for any worker count (tree construction
// and each query are pure functions). Within a row, candidates are ordered
// by ascending distance with ties broken by lower column id, which is
// descending similarity order because SimFromDist2 is monotone.
func TopKEmbedding(e *Embedding, k, workers int) *Candidates {
	n, m := e.Src.Rows, e.Dst.Rows
	if k <= 0 || k > m {
		k = m
	}
	points := make([][]float64, m)
	for j := 0; j < m; j++ {
		points[j] = e.Dst.Row(j)
	}
	tree := kdtree.Build(points)
	c := &Candidates{Rows: n, Cols: m, K: k,
		Col: make([]int, n*k), Val: make([]float64, n*k)}
	queryRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ids, dists := tree.NearestK(e.Src.Row(i), k)
			cols, vals := c.Row(i)
			for idx, id := range ids {
				cols[idx] = id
				vals[idx] = e.SimFromDist2(dists[idx])
			}
		}
	}
	if n*k >= 1<<12 && parallel.Workers(workers) > 1 {
		parallel.Blocks(workers, n, queryRows)
	} else {
		queryRows(0, n)
	}
	return c
}

// Matchable reports whether the candidate graph admits a matching that
// saturates every row (a prerequisite for the auction solver: rows that
// cannot all be matched within their candidates make the auction chase an
// infeasible assignment). It runs Hopcroft–Karp over the candidate edges,
// O(E sqrt(V)) — negligible next to the solve itself. Rows > Cols is
// trivially unmatchable.
func (c *Candidates) Matchable() bool {
	if c.Rows > c.Cols {
		return false
	}
	return c.maxMatching() == c.Rows
}

// maxMatching is Hopcroft–Karp over the candidate bipartite graph, returning
// the maximum number of simultaneously matchable rows.
func (c *Candidates) maxMatching() int {
	const inf = int(^uint(0) >> 1)
	n := c.Rows
	matchRow := make([]int, n) // row -> col, -1 free
	matchCol := make([]int, c.Cols)
	for i := range matchRow {
		matchRow[i] = -1
	}
	for j := range matchCol {
		matchCol[j] = -1
	}
	dist := make([]int, n)
	queue := make([]int, 0, n)
	matched := 0
	for {
		// BFS layering from free rows.
		queue = queue[:0]
		for i := 0; i < n; i++ {
			if matchRow[i] == -1 {
				dist[i] = 0
				queue = append(queue, i)
			} else {
				dist[i] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			i := queue[qi]
			cols, _ := c.Row(i)
			for _, j := range cols {
				next := matchCol[j]
				if next == -1 {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[i] + 1
					queue = append(queue, next)
				}
			}
		}
		if !found {
			return matched
		}
		// DFS augmentation along the layering.
		var try func(i int) bool
		try = func(i int) bool {
			cols, _ := c.Row(i)
			for _, j := range cols {
				next := matchCol[j]
				if next == -1 || (dist[next] == dist[i]+1 && try(next)) {
					matchRow[i] = j
					matchCol[j] = i
					return true
				}
			}
			dist[i] = inf
			return false
		}
		for i := 0; i < n; i++ {
			if matchRow[i] == -1 && try(i) {
				matched++
			}
		}
	}
}
