package assign

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"graphalign/internal/matrix"
)

func randDense(n, d int, rng *rand.Rand) *matrix.Dense {
	m := matrix.NewDense(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// degenerateEmbedding builds an embedding whose rows cluster into a few
// nearly identical groups — the low-rank failure mode that makes top-k
// candidate graphs violate Hall's condition (every row of a cluster shares
// the same candidate list).
func degenerateEmbedding(n, m, d, clusters int, rng *rand.Rand) *Embedding {
	e := &Embedding{
		Src:          randDense(n, d, rng),
		Dst:          randDense(m, d, rng),
		SimFromDist2: func(d2 float64) float64 { return 1 / (1 + d2) },
	}
	centers := randDense(clusters, d, rng)
	for i := 0; i < n; i++ {
		row := e.Src.Row(i)
		c := centers.Row(i % clusters)
		for k := range row {
			row[k] = c[k] + 1e-6*rng.NormFloat64()
		}
	}
	return e
}

// augmentInvariants checks the repair contract: the result is matchable, the
// base entries are untouched, each added entry is a real scored pair absent
// from the base list, and every row stays sorted by (value desc, col asc).
func augmentInvariants(t *testing.T, base, aug *Candidates, augCols []int, score func(i, j int) float64) {
	t.Helper()
	if !aug.Matchable() {
		t.Fatal("augmented candidate set is not matchable")
	}
	if aug == base {
		return // already matchable, returned unchanged
	}
	if aug.K != base.K+1 {
		t.Fatalf("augmented stride %d, want %d", aug.K, base.K+1)
	}
	seen := make(map[int]bool)
	for i := 0; i < base.Rows; i++ {
		bc, bv := base.Row(i)
		ac, av := aug.Row(i)
		j := augCols[i]
		if j < 0 {
			if !reflect.DeepEqual(append([]int(nil), bc...), append([]int(nil), ac...)) ||
				!reflect.DeepEqual(append([]float64(nil), bv...), append([]float64(nil), av...)) {
				t.Fatalf("row %d: unaugmented row differs from base", i)
			}
			continue
		}
		if seen[j] {
			t.Fatalf("row %d: repair column %d assigned twice", i, j)
		}
		seen[j] = true
		if len(ac) != len(bc)+1 {
			t.Fatalf("row %d: augmented length %d, want %d", i, len(ac), len(bc)+1)
		}
		for _, cj := range bc {
			if cj == j {
				t.Fatalf("row %d: repair column %d already in base list", i, j)
			}
		}
		found := false
		for p, cj := range ac {
			if cj == j {
				found = true
				want := score(i, j)
				if math.IsNaN(want) {
					want = 0
				}
				if av[p] != want {
					t.Fatalf("row %d: repair value %g, want %g", i, av[p], want)
				}
			}
		}
		if !found {
			t.Fatalf("row %d: repair column %d absent from augmented row", i, j)
		}
		for p := 1; p < len(av); p++ {
			if av[p] > av[p-1] || (av[p] == av[p-1] && ac[p] < ac[p-1]) {
				t.Fatalf("row %d: augmented row out of order at %d", i, p)
			}
		}
	}
}

func TestAugmentEmbeddingRepairsDegenerateGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := degenerateEmbedding(60, 60, 6, 4, rng)
	base := TopKEmbedding(e, 5, 1)
	if base.Matchable() {
		t.Skip("degenerate construction unexpectedly matchable")
	}
	aug, augCols, match := AugmentEmbedding(e2c(base), e, nil, nil)
	if augCols == nil {
		t.Fatal("unmatchable base returned without repair columns")
	}
	if len(match) != base.Rows {
		t.Fatalf("match length %d, want %d", len(match), base.Rows)
	}
	augmentInvariants(t, base, aug, augCols, func(i, j int) float64 {
		return e.SimFromDist2(sqDistAsc(e.Src.Row(i), e.Dst.Row(j)))
	})
}

// e2c is the identity; it exists so the test reads as passing the base set.
func e2c(c *Candidates) *Candidates { return c }

func TestAugmentMatchableIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := randEmbedding(40, 50, 8, rng)
	base := TopKEmbedding(e, 12, 1)
	if !base.Matchable() {
		t.Skip("random embedding unexpectedly unmatchable")
	}
	aug, augCols, match := AugmentEmbedding(base, e, nil, nil)
	if aug != base || augCols != nil {
		t.Fatal("matchable base was not returned unchanged")
	}
	if len(match) != base.Rows {
		t.Fatalf("match length %d, want %d", len(match), base.Rows)
	}
}

// Identical inputs must reproduce the augmented set bitwise — the property
// the incremental session's empty-delta contract rests on — and feeding the
// returned matching and repair columns back as seeds must change nothing.
func TestAugmentDeterministicAndSticky(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := degenerateEmbedding(50, 55, 6, 3, rng)
	base := TopKEmbedding(e, 5, 1)
	a1, cols1, match1 := AugmentEmbedding(base, e, nil, nil)
	a2, cols2, _ := AugmentEmbedding(base, e, nil, nil)
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(cols1, cols2) {
		t.Fatal("repeated repair of identical inputs differs")
	}
	a3, cols3, _ := AugmentEmbedding(base, e, match1, cols1)
	if !reflect.DeepEqual(a1, a3) || !reflect.DeepEqual(cols1, cols3) {
		t.Fatal("seeded repair of identical inputs differs from unseeded")
	}
}

func TestAugmentFactorNaNClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := randFactors(20, 24, 3, rng)
	// Collapse most rows' coefficients so their top-k lists coincide.
	for t2 := range f.Us {
		for i := 4; i < 20; i++ {
			f.Us[t2][i] = f.Us[t2][0]
		}
	}
	base := TopKFactor(f, 3, 1)
	if base.Matchable() {
		t.Skip("collapsed factors unexpectedly matchable")
	}
	aug, augCols, _ := AugmentFactor(base, f, nil, nil)
	augmentInvariants(t, base, aug, augCols, func(i, j int) float64 {
		return factorScoreOne(f, i, j)
	})
	for i, j := range augCols {
		if j < 0 {
			continue
		}
		cols, vals := aug.Row(i)
		for p, cj := range cols {
			if cj == j && math.IsNaN(vals[p]) {
				t.Fatalf("row %d: NaN repair value survived", i)
			}
		}
	}
}

// The auction must accept any repaired graph the sparse pipeline would have
// refused — the property the incremental session's warm path depends on.
func TestAugmentedGraphSolvesWithoutFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := degenerateEmbedding(80, 80, 6, 5, rng)
	base := TopKEmbedding(e, 5, 1)
	if base.Matchable() {
		t.Skip("degenerate construction unexpectedly matchable")
	}
	if _, _, ok := SolveAuction(base, 1); ok {
		t.Fatal("unmatchable base unexpectedly solved")
	}
	aug, _, _ := AugmentEmbedding(base, e, nil, nil)
	mapping, _, ok := SolveAuction(aug, 1)
	if !ok {
		t.Fatal("auction refused the repaired graph")
	}
	used := make(map[int]bool)
	for i, j := range mapping {
		if j < 0 || j >= aug.Cols || used[j] {
			t.Fatalf("row %d: invalid or duplicate assignment %d", i, j)
		}
		used[j] = true
	}
}

// A seeded maximum matching must preserve still-valid pairs, keeping the
// unmatched set stable when the candidate lists barely change.
func TestAugmentSeedStability(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := degenerateEmbedding(60, 66, 6, 4, rng)
	base := TopKEmbedding(e, 5, 1)
	_, cols1, match1 := AugmentEmbedding(base, e, nil, nil)
	if cols1 == nil {
		t.Skip("degenerate construction unexpectedly matchable")
	}
	// Perturb one row's embedding and rebuild: with seeds, every other row's
	// repair assignment must survive unless its column was stolen.
	q := e.Src.Row(0)
	for k := range q {
		q[k] += 0.5
	}
	next := TopKEmbedding(e, 5, 1)
	_, cols2, _ := AugmentEmbedding(next, e, match1, cols1)
	moved := 0
	for i := 1; i < base.Rows; i++ {
		c2 := -1
		if cols2 != nil {
			c2 = cols2[i]
		}
		if cols1[i] != c2 {
			moved++
		}
	}
	if moved > base.Rows/4 {
		t.Fatalf("seeded repair reshuffled %d of %d rows after a one-row edit", moved, base.Rows)
	}
}
