package assign

import (
	"errors"
	"fmt"
	"math"

	"graphalign/internal/matrix"
	"graphalign/internal/parallel"
)

// FactorEmbedding is a similarity matrix in low-rank outer-product form:
//
//	S = Σ_t Weights[t] · Us[t] Vs[t]ᵀ
//
// Aligners whose similarity is an explicit factor product — NSD's iterated
// degree-vector outer products, LREA's factored power iteration — expose
// this via algo.FactorAligner so the sparse pipeline can score candidates
// against the factors directly and never materialize the Rows x Cols
// product. Unlike Embedding, the two sides are asymmetric: Us rows live in
// source space, Vs rows in target space, and similarity is the weighted
// inner product rather than a function of distance.
//
// The terms are ordered: Similarity and TopKFactor accumulate them in index
// order with the exact floating-point schedule of matrix.AddOuterScaled, so
// the factored and densified paths agree bitwise.
type FactorEmbedding struct {
	// Us[t] has len Rows, Vs[t] len Cols.
	Us, Vs [][]float64
	// Weights scales each term; nil means every term has weight 1.
	Weights []float64
}

// Rows returns the source-side dimension (0 for an empty factor list).
func (f *FactorEmbedding) Rows() int {
	if len(f.Us) == 0 {
		return 0
	}
	return len(f.Us[0])
}

// Cols returns the target-side dimension (0 for an empty factor list).
func (f *FactorEmbedding) Cols() int {
	if len(f.Vs) == 0 {
		return 0
	}
	return len(f.Vs[0])
}

// Rank returns the number of rank-one terms.
func (f *FactorEmbedding) Rank() int { return len(f.Us) }

// weight returns term t's scale.
func (f *FactorEmbedding) weight(t int) float64 {
	if f.Weights == nil {
		return 1
	}
	return f.Weights[t]
}

// Similarity materializes the dense similarity matrix from the factors —
// the fallback of the sparse pipeline when the candidate graph is
// unmatchable, and bitwise what the aligner's own dense path computes (the
// same AddOuterScaled calls in the same term order).
func (f *FactorEmbedding) Similarity() *matrix.Dense {
	sim := matrix.NewDense(f.Rows(), f.Cols())
	for t := range f.Us {
		sim.AddOuterScaled(f.Us[t], f.Vs[t], f.weight(t))
	}
	return sim
}

// Bytes estimates the retained size of the factor lists, for cache
// accounting.
func (f *FactorEmbedding) Bytes() int64 {
	return int64(8 * (len(f.Us)*(f.Rows()+f.Cols()) + len(f.Weights)))
}

// Clone returns a deep copy, so cached factor bundles can hand out private
// instances.
func (f *FactorEmbedding) Clone() *FactorEmbedding {
	c := &FactorEmbedding{
		Us: make([][]float64, len(f.Us)),
		Vs: make([][]float64, len(f.Vs)),
	}
	for t := range f.Us {
		c.Us[t] = append([]float64(nil), f.Us[t]...)
		c.Vs[t] = append([]float64(nil), f.Vs[t]...)
	}
	if f.Weights != nil {
		c.Weights = append([]float64(nil), f.Weights...)
	}
	return c
}

// ErrStarvedRow is the sentinel under *StarvedRowError: a candidate row was
// left empty by factor-space pruning, so the sparse exact solve cannot
// proceed and silently falling back to dense JV would mask the defect.
var ErrStarvedRow = errors.New("assign: starved candidate row")

// StarvedRowError reports the first source row whose candidate list came up
// empty after pruning (every factored score non-finite). It unwraps to
// ErrStarvedRow for errors.Is checks.
type StarvedRowError struct {
	Row int
}

func (e *StarvedRowError) Error() string {
	return fmt.Sprintf("assign: row %d has no candidates after factor-space pruning", e.Row)
}

func (e *StarvedRowError) Unwrap() error { return ErrStarvedRow }

// TopKFactor reduces a factored similarity to its per-row top-k candidate
// set without materializing the Rows x Cols product: each worker block
// accumulates one row of scores at a time into a reusable Cols-length buffer
// — term-ascending, bitwise the row AddOuterScaled would produce — and
// bounded-heap selects from it exactly like TopKDense, so the candidate set
// equals TopKDense(f.Similarity(), k, ·) entry for entry on finite scores.
// O(Rows · Cols · Rank) work but O(Cols) extra memory per worker.
//
// NaN scores (a factor pair can multiply to NaN under degenerate weights)
// are pruned rather than selected: rows losing candidates to pruning are
// recorded in Candidates.Len, and a fully-starved row surfaces as a typed
// *StarvedRowError from SolveSparse instead of a silent dense fallback.
func TopKFactor(f *FactorEmbedding, k, workers int) *Candidates {
	n, m := f.Rows(), f.Cols()
	if k <= 0 || k > m {
		k = m
	}
	c := &Candidates{Rows: n, Cols: m, K: k,
		Col: make([]int, n*k), Val: make([]float64, n*k)}
	if n == 0 || m == 0 {
		return c
	}
	rowLen := make([]int, n)
	scoreRows := func(lo, hi int) {
		buf := make([]float64, m)
		heap := make([]pair, 0, k)
		for i := lo; i < hi; i++ {
			factorScoreRow(f, i, buf)
			heap, rowLen[i] = factorSelectRow(c, i, buf, heap)
		}
	}
	if n*m >= candidateBudget && parallel.Workers(workers) > 1 {
		parallel.Blocks(workers, n, scoreRows)
	} else {
		scoreRows(0, n)
	}
	for _, l := range rowLen {
		if l < k {
			c.Len = rowLen
			break
		}
	}
	return c
}

// factorScoreRow accumulates row i's factored scores into buf (len Cols),
// term-ascending — bitwise the row AddOuterScaled would produce. The scaled
// left coefficient is formed once and a zero skips the term, which also skips
// its (potentially NaN-producing) products. Each buf[j] is an independent
// accumulation chain, so factorScoreOne reproduces any single entry bitwise.
func factorScoreRow(f *FactorEmbedding, i int, buf []float64) {
	for j := range buf {
		buf[j] = 0
	}
	for t := range f.Us {
		w := f.weight(t) * f.Us[t][i]
		if w == 0 {
			continue
		}
		vs := f.Vs[t]
		for j, vv := range vs {
			buf[j] += w * vv
		}
	}
}

// factorScoreOne computes the single score (i, j) with factorScoreRow's exact
// accumulation schedule, for incremental-update probes.
func factorScoreOne(f *FactorEmbedding, i, j int) float64 {
	var s float64
	for t := range f.Us {
		w := f.weight(t) * f.Us[t][i]
		if w == 0 {
			continue
		}
		s += w * f.Vs[t][j]
	}
	return s
}

// factorSelectRow bounded-heap selects buf's finite top-K into c's row i
// (padding short rows with Col -1 / Val 0) and returns the reusable heap
// storage plus the kept count.
func factorSelectRow(c *Candidates, i int, buf []float64, heap []pair) ([]pair, int) {
	k := c.K
	heap = selectTopKFinite(heap[:0], buf, k)
	kept := len(heap)
	// Heap-sort into (v desc, j asc), as TopKDense does.
	cols, vals := c.Col[i*k:(i+1)*k], c.Val[i*k:(i+1)*k]
	for l := len(heap) - 1; l > 0; l-- {
		heap[0], heap[l] = heap[l], heap[0]
		topKSiftDownN(heap, 0, l)
	}
	for idx, p := range heap {
		cols[idx], vals[idx] = p.j, p.v
	}
	for idx := kept; idx < k; idx++ {
		cols[idx], vals[idx] = -1, 0
	}
	return heap, kept
}

// selectTopKFinite is selectTopK skipping NaN scores (factor-space pruning);
// on NaN-free rows it selects exactly what selectTopK does.
func selectTopKFinite(h []pair, row []float64, k int) []pair {
	for j, v := range row {
		if math.IsNaN(v) {
			continue
		}
		if len(h) < k {
			h = append(h, pair{0, j, v})
			topKSiftUp(h, len(h)-1)
			continue
		}
		if v <= h[0].v {
			continue
		}
		h[0] = pair{0, j, v}
		topKSiftDown(h, 0)
	}
	return h
}
