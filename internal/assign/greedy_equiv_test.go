package assign

import (
	"math/rand"
	"sort"
	"testing"

	"graphalign/internal/matrix"
)

// solveGreedyReference is the original full-sort SortGreedy implementation,
// kept as the oracle for the lazy stream-merge SolveGreedy: materialize all
// n*m pairs, sort by (v desc, i asc, j asc), accept whenever both endpoints
// are free.
func solveGreedyReference(sim *matrix.Dense) []int {
	n, m := sim.Rows, sim.Cols
	pairs := make([]pair, 0, n*m)
	for i := 0; i < n; i++ {
		row := sim.Row(i)
		for j, v := range row {
			pairs = append(pairs, pair{i, j, v})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].v != pairs[b].v {
			return pairs[a].v > pairs[b].v
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	usedCol := make([]bool, m)
	matched := 0
	for _, p := range pairs {
		if matched == n {
			break
		}
		if mapping[p.i] != -1 || usedCol[p.j] {
			continue
		}
		mapping[p.i] = p.j
		usedCol[p.j] = true
		matched++
	}
	return mapping
}

func assertSameMapping(t *testing.T, name string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d: got %d, want %d\ngot  %v\nwant %v", name, i, got[i], want[i], got, want)
		}
	}
}

func TestSolveGreedyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	regimes := []struct {
		name string
		draw func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() }},
		// Coarse quantization floods the pair stream with exact ties, the
		// regime where lazy merging is most likely to diverge from full sort.
		{"quantized", func() float64 { return float64(rng.Intn(3)) }},
		{"constant", func() float64 { return 1.0 }},
		{"zero", func() float64 { return 0 }},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			for trial := 0; trial < 40; trial++ {
				// Square, wide (n < m), and tall (n > m) shapes.
				n := 1 + rng.Intn(14)
				m := 1 + rng.Intn(14)
				sim := matrix.NewDense(n, m)
				for i := range sim.Data {
					sim.Data[i] = reg.draw()
				}
				assertSameMapping(t, reg.name, SolveGreedy(sim), solveGreedyReference(sim))
			}
		})
	}
}

func TestSolveGreedyMatchesReferenceLarge(t *testing.T) {
	// Large enough that streams refill (buffer doubling) several times:
	// adversarial column-collision structure where every row prefers the
	// same few columns.
	rng := rand.New(rand.NewSource(5))
	n, m := 120, 40
	sim := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			// Strong shared preference for low columns plus small noise.
			sim.Set(i, j, float64(m-j)+0.001*rng.Float64())
		}
	}
	assertSameMapping(t, "collide", SolveGreedy(sim), solveGreedyReference(sim))

	// And a wide instance with pure ties everywhere except a diagonal.
	n, m = 60, 200
	sim = matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		sim.Set(i, (i*7)%m, 1)
	}
	assertSameMapping(t, "sparse-ones", SolveGreedy(sim), solveGreedyReference(sim))
}

func TestSolveGreedyEmpty(t *testing.T) {
	if got := SolveGreedy(matrix.NewDense(0, 5)); len(got) != 0 {
		t.Fatalf("empty rows: %v", got)
	}
	got := SolveGreedy(matrix.NewDense(3, 0))
	for _, j := range got {
		if j != -1 {
			t.Fatalf("zero cols should leave rows unmatched: %v", got)
		}
	}
}

func TestSolveNNTieLowestColumn(t *testing.T) {
	sim := matrix.DenseFromRows([][]float64{
		{0.5, 0.9, 0.9, 0.1},
		{0.7, 0.7, 0.7, 0.7},
		{0, 0, 0, 0},
	})
	want := []int{1, 0, 0}
	assertSameMapping(t, "nn-ties", SolveNN(sim), want)
}

func TestSolveNNParallelIdentical(t *testing.T) {
	// 512x512 = 2^18 crosses candidateBudget, exercising the row-blocked path;
	// compare against a plain serial argmax.
	sim := randomSim(512, 512, 21)
	got := SolveNN(sim)
	for i := 0; i < sim.Rows; i++ {
		row := sim.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if got[i] != best {
			t.Fatalf("row %d: parallel NN %d != serial argmax %d", i, got[i], best)
		}
	}
}

func TestSolveNNSparseMatchesDenseNN(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n, m := 1+rng.Intn(10), 1+rng.Intn(14)
		sim := matrix.NewDense(n, m)
		for i := range sim.Data {
			sim.Data[i] = float64(rng.Intn(5)) // ties abound
		}
		k := 1 + rng.Intn(m)
		c := TopKDense(sim, k, 1)
		sparse := SolveNNSparse(c)
		dense := SolveNN(sim)
		// Each row's best candidate is its global argmax whenever k >= 1:
		// top-k always contains the row maximum with the same tie rule.
		assertSameMapping(t, "nn-sparse", sparse, dense)
	}
}

func TestEnforceOneToOneSparseMatchesDenseAtFullK(t *testing.T) {
	// With k = m the candidate set is the whole matrix, so the sparse
	// one-to-one restriction must reproduce the dense one exactly — including
	// the contested-column and loser-reassignment rules.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n, m := 1+rng.Intn(10), 1+rng.Intn(12)
		if n > m {
			n, m = m, n
		}
		sim := matrix.NewDense(n, m)
		for i := range sim.Data {
			sim.Data[i] = float64(rng.Intn(4))
		}
		c := TopKDense(sim, m, 1)
		nn := SolveNN(sim)
		got := EnforceOneToOneSparse(c, nn)
		want := EnforceOneToOne(sim, nn)
		assertSameMapping(t, "enforce-full-k", got, want)
	}
}

func TestEnforceOneToOneSparseIsOneToOneAndMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(10)
		m := n + rng.Intn(5)
		sim := matrix.NewDense(n, m)
		for i := range sim.Data {
			sim.Data[i] = rng.Float64()
		}
		k := 1 + rng.Intn(m)
		c := TopKDense(sim, k, 1)
		out := EnforceOneToOneSparse(c, SolveNNSparse(c))
		if !isOneToOne(out, m) {
			t.Fatalf("trial %d: not one-to-one: %v", trial, out)
		}
		for i, j := range out {
			if j == -1 && n <= m {
				t.Fatalf("trial %d: row %d unmatched with free columns available: %v", trial, i, out)
			}
		}
	}
}

func TestSolveGreedySparseStarvedFallback(t *testing.T) {
	// All rows share one candidate column: greedy matches row 0 to column 0,
	// starved rows take the lowest free columns in ascending row order.
	c := candidatesFromRows(
		[][]int{{0}, {0}, {0}},
		[][]float64{{1}, {0.9}, {0.8}}, 4)
	got := SolveGreedySparse(c)
	assertSameMapping(t, "sg-starved", got, []int{0, 1, 2})
}
