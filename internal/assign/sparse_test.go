package assign

import (
	"testing"
	"testing/quick"

	"graphalign/internal/matrix"
)

func TestGreedyTopKFullEqualsGreedy(t *testing.T) {
	f := func(seed int64) bool {
		sim := randomSim(8, 8, seed)
		full := SolveGreedy(sim)
		topAll := SolveGreedyTopK(sim, 8)
		for i := range full {
			if full[i] != topAll[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGreedyTopKOneToOneAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		sim := randomSim(10, 12, seed)
		m := SolveGreedyTopK(sim, 2)
		return isOneToOne(m, 12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGreedyTopKQualityNearGreedy(t *testing.T) {
	// On a similarity matrix with a clear diagonal signal, top-3 greedy
	// should recover nearly the same total as full greedy.
	n := 40
	sim := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.1
			if i == j {
				v = 1
			}
			sim.Set(i, j, v)
		}
	}
	full := TotalSimilarity(sim, SolveGreedy(sim))
	topk := TotalSimilarity(sim, SolveGreedyTopK(sim, 3))
	if topk < full*0.99 {
		t.Errorf("top-k total %v well below full %v", topk, full)
	}
}

func TestGreedyTopKDegenerateK(t *testing.T) {
	sim := randomSim(5, 5, 1)
	for _, k := range []int{0, -3, 100} {
		m := SolveGreedyTopK(sim, k)
		if !isOneToOne(m, 5) {
			t.Errorf("k=%d mapping invalid: %v", k, m)
		}
	}
}

func TestGreedyTopKRectangularMaximality(t *testing.T) {
	// On n > m instances every column must end up used: the matching is
	// maximal, with exactly n-m rows left unmatched (-1). Before the
	// fallback was shape-restricted to n <= m, starved rows stayed at -1
	// even while free columns remained.
	f := func(seed int64) bool {
		n, m := 12, 8
		sim := randomSim(n, m, seed)
		mapping := SolveGreedyTopK(sim, 2)
		usedCol := make([]bool, m)
		matched := 0
		for _, j := range mapping {
			if j == -1 {
				continue
			}
			if j < 0 || j >= m || usedCol[j] {
				return false
			}
			usedCol[j] = true
			matched++
		}
		return matched == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGreedyTopKRectangularStarved(t *testing.T) {
	// Deterministic n > m starvation: all four rows prefer column 0 and
	// with k=1 see nothing else, so three rows starve; two of them must
	// still claim the remaining free columns.
	sim := matrix.DenseFromRows([][]float64{
		{1, 0, 0},
		{0.9, 0, 0},
		{0.8, 0, 0},
		{0.7, 0, 0},
	})
	mapping := SolveGreedyTopK(sim, 1)
	usedCol := make([]bool, 3)
	matched := 0
	for _, j := range mapping {
		if j == -1 {
			continue
		}
		if usedCol[j] {
			t.Fatalf("column %d matched twice: %v", j, mapping)
		}
		usedCol[j] = true
		matched++
	}
	if matched != 3 {
		t.Errorf("matched %d of 3 columns, mapping %v — matching not maximal", matched, mapping)
	}
}

func TestGreedyTopKStarvedRowsFallBack(t *testing.T) {
	// All rows prefer column 0; with k=1 only one row gets it and the rest
	// must fall back to free columns.
	sim := matrix.DenseFromRows([][]float64{
		{1, 0, 0},
		{0.9, 0, 0},
		{0.8, 0, 0},
	})
	m := SolveGreedyTopK(sim, 1)
	if !isOneToOne(m, 3) {
		t.Fatalf("starved mapping invalid: %v", m)
	}
}

// BenchmarkSolveGreedyTopK exercises the k ≪ m regime where bounded-heap
// partial selection (O(m log k) per row) beats the former full per-row
// sort (O(m log m)).
func BenchmarkSolveGreedyTopK(b *testing.B) {
	const n, m, k = 500, 2000, 8
	sim := randomSim(n, m, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveGreedyTopK(sim, k)
	}
}

func BenchmarkSolveGreedyTopKFull(b *testing.B) {
	const n, m = 500, 2000
	sim := randomSim(n, m, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveGreedyTopK(sim, m)
	}
}
