package assign

import (
	"testing"
	"testing/quick"

	"graphalign/internal/matrix"
)

func TestGreedyTopKFullEqualsGreedy(t *testing.T) {
	f := func(seed int64) bool {
		sim := randomSim(8, 8, seed)
		full := SolveGreedy(sim)
		topAll := SolveGreedyTopK(sim, 8)
		for i := range full {
			if full[i] != topAll[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGreedyTopKOneToOneAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		sim := randomSim(10, 12, seed)
		m := SolveGreedyTopK(sim, 2)
		return isOneToOne(m, 12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGreedyTopKQualityNearGreedy(t *testing.T) {
	// On a similarity matrix with a clear diagonal signal, top-3 greedy
	// should recover nearly the same total as full greedy.
	n := 40
	sim := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.1
			if i == j {
				v = 1
			}
			sim.Set(i, j, v)
		}
	}
	full := TotalSimilarity(sim, SolveGreedy(sim))
	topk := TotalSimilarity(sim, SolveGreedyTopK(sim, 3))
	if topk < full*0.99 {
		t.Errorf("top-k total %v well below full %v", topk, full)
	}
}

func TestGreedyTopKDegenerateK(t *testing.T) {
	sim := randomSim(5, 5, 1)
	for _, k := range []int{0, -3, 100} {
		m := SolveGreedyTopK(sim, k)
		if !isOneToOne(m, 5) {
			t.Errorf("k=%d mapping invalid: %v", k, m)
		}
	}
}

func TestGreedyTopKStarvedRowsFallBack(t *testing.T) {
	// All rows prefer column 0; with k=1 only one row gets it and the rest
	// must fall back to free columns.
	sim := matrix.DenseFromRows([][]float64{
		{1, 0, 0},
		{0.9, 0, 0},
		{0.8, 0, 0},
	})
	m := SolveGreedyTopK(sim, 1)
	if !isOneToOne(m, 3) {
		t.Fatalf("starved mapping invalid: %v", m)
	}
}
