package assign

import (
	"math/rand"
	"reflect"
	"testing"

	"graphalign/internal/matrix"
)

func randEmbedding(n, m, d int, rng *rand.Rand) *Embedding {
	src := matrix.NewDense(n, d)
	dst := matrix.NewDense(m, d)
	for i := range src.Data {
		src.Data[i] = rng.NormFloat64()
	}
	for i := range dst.Data {
		dst.Data[i] = rng.NormFloat64()
	}
	return &Embedding{Src: src, Dst: dst, SimFromDist2: func(d2 float64) float64 { return -d2 }}
}

// perturbRows rewrites a few random rows of m and returns their indices.
func perturbRows(m *matrix.Dense, count int, rng *rand.Rand) []int {
	seen := map[int]bool{}
	for len(seen) < count {
		seen[rng.Intn(m.Rows)] = true
	}
	var rows []int
	for i := range seen {
		for t := 0; t < m.Cols; t++ {
			m.Set(i, t, rng.NormFloat64())
		}
		rows = append(rows, i)
	}
	return rows
}

func candsEqual(t *testing.T, tag string, a, b *Candidates) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols || a.K != b.K {
		t.Fatalf("%s: shape differs: %dx%d k=%d vs %dx%d k=%d", tag, a.Rows, a.Cols, a.K, b.Rows, b.Cols, b.K)
	}
	if !reflect.DeepEqual(a.Col, b.Col) || !reflect.DeepEqual(a.Val, b.Val) || !reflect.DeepEqual(a.Len, b.Len) {
		for i := 0; i < a.Rows; i++ {
			ac, av := a.Row(i)
			bc, bv := b.Row(i)
			if !reflect.DeepEqual(ac, bc) || !reflect.DeepEqual(av, bv) {
				t.Fatalf("%s: row %d differs:\n  got  %v %v\n  want %v %v", tag, i, ac, av, bc, bv)
			}
		}
		t.Fatalf("%s: candidate sets differ outside live rows (padding/Len)", tag)
	}
}

// The incremental embedding update must be indistinguishable from a bulk
// rebuild — bitwise — across the tree (d<8), specialized (d=8) and generic
// brute-force (d>8) kernels, and its dirty set must be exactly the rows whose
// lists changed.
func TestUpdateTopKEmbeddingMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{4, 8, 16} {
		for trial := 0; trial < 10; trial++ {
			n, m, k := 40+rng.Intn(20), 50+rng.Intn(20), 5
			e := randEmbedding(n, m, d, rng)
			prev := TopKEmbedding(e, k, 1)
			// New embedding: copy, then move a few rows on each side.
			e2 := randEmbedding(n, m, d, rng)
			copy(e2.Src.Data, e.Src.Data)
			copy(e2.Dst.Data, e.Dst.Data)
			changedRows := perturbRows(e2.Src, 1+rng.Intn(3), rng)
			changedCols := perturbRows(e2.Dst, 1+rng.Intn(3), rng)

			bulk := TopKEmbedding(e2, k, 1)
			upd, dirty := UpdateTopKEmbedding(prev, e2, changedRows, changedCols, 1)
			candsEqual(t, "embedding-update", upd, bulk)
			if want := DiffRows(prev, bulk); !reflect.DeepEqual(dirty, want) {
				t.Fatalf("d=%d trial %d: dirty = %v, want %v", d, trial, dirty, want)
			}
		}
	}
}

func TestUpdateTopKEmbeddingNoChange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := randEmbedding(30, 40, 8, rng)
	prev := TopKEmbedding(e, 4, 1)
	upd, dirty := UpdateTopKEmbedding(prev, e, nil, nil, 1)
	candsEqual(t, "embedding-nochange", upd, prev)
	if len(dirty) != 0 {
		t.Fatalf("no-op update reported dirty rows %v", dirty)
	}
	// The update returns a private copy, never an alias of prev's storage.
	if &upd.Col[0] == &prev.Col[0] {
		t.Fatal("update aliases previous candidate storage")
	}
}

func randFactors(n, m, rank int, rng *rand.Rand) *FactorEmbedding {
	f := &FactorEmbedding{Us: make([][]float64, rank), Vs: make([][]float64, rank), Weights: make([]float64, rank)}
	for t := 0; t < rank; t++ {
		f.Us[t] = make([]float64, n)
		f.Vs[t] = make([]float64, m)
		for i := range f.Us[t] {
			f.Us[t][i] = rng.NormFloat64()
		}
		for j := range f.Vs[t] {
			f.Vs[t][j] = rng.NormFloat64()
		}
		f.Weights[t] = rng.Float64()
	}
	return f
}

// The incremental factor update must match a bulk TopKFactor bitwise,
// including rows that shrink or grow through NaN pruning.
func TestUpdateTopKFactorMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n, m, rank, k := 30+rng.Intn(20), 40+rng.Intn(20), 3, 5
		f := randFactors(n, m, rank, rng)
		prev := TopKFactor(f, k, 1)

		f2 := f.Clone()
		var changedRows, changedCols []int
		for c := 0; c <= rng.Intn(2); c++ {
			i := rng.Intn(n)
			f2.Us[rng.Intn(rank)][i] = rng.NormFloat64()
			changedRows = append(changedRows, i)
		}
		for c := 0; c <= rng.Intn(3); c++ {
			j := rng.Intn(m)
			f2.Vs[rng.Intn(rank)][j] = rng.NormFloat64()
			changedCols = append(changedCols, j)
		}
		bulk := TopKFactor(f2, k, 1)
		upd, dirty := UpdateTopKFactor(prev, f2, changedRows, changedCols, 1)
		candsEqual(t, "factor-update", upd, bulk)
		if want := DiffRows(prev, bulk); !reflect.DeepEqual(dirty, want) {
			t.Fatalf("trial %d: dirty = %v, want %v", trial, dirty, want)
		}
	}
}

// Large deltas take the bulk-rebuild shortcut; the result must still match.
func TestUpdateTopKFactorLargeDeltaShortcut(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, m, rank, k := 20, 25, 2, 4
	f := randFactors(n, m, rank, rng)
	prev := TopKFactor(f, k, 1)
	f2 := f.Clone()
	var changedCols []int
	for j := 0; j < m; j++ {
		f2.Vs[0][j] = rng.NormFloat64()
		changedCols = append(changedCols, j)
	}
	bulk := TopKFactor(f2, k, 1)
	upd, dirty := UpdateTopKFactor(prev, f2, nil, changedCols, 1)
	candsEqual(t, "factor-shortcut", upd, bulk)
	if want := DiffRows(prev, bulk); !reflect.DeepEqual(dirty, want) {
		t.Fatalf("dirty = %v, want %v", dirty, want)
	}
}
