package assign

import (
	"math"
	"math/rand"
	"testing"

	"graphalign/internal/matrix"
)

// bruteForceOptimal enumerates every injective row->column mapping of a
// Rows <= Cols similarity matrix and returns the maximum total similarity.
// Exponential, so callers keep n, m <= 9.
func bruteForceOptimal(sim *matrix.Dense) float64 {
	n, m := sim.Rows, sim.Cols
	used := make([]bool, m)
	best := math.Inf(-1)
	var rec func(row int, total float64)
	rec = func(row int, total float64) {
		if row == n {
			if total > best {
				best = total
			}
			return
		}
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			rec(row+1, total+sim.At(row, j))
			used[j] = false
		}
	}
	rec(0, 0)
	return best
}

// checkOneToOne fails the test unless mapping is a valid injection into
// [0, cols).
func checkOneToOne(t *testing.T, name string, mapping []int, cols int) {
	t.Helper()
	seen := make(map[int]bool)
	for i, j := range mapping {
		if j < 0 || j >= cols {
			t.Fatalf("%s: row %d mapped outside [0,%d): %d", name, i, cols, j)
		}
		if seen[j] {
			t.Fatalf("%s: column %d assigned twice (mapping %v)", name, j, mapping)
		}
		seen[j] = true
	}
}

// agreeOnOptimal asserts that JV, Hungarian, and brute-force enumeration
// find assignments of equal total similarity on sim. The mappings themselves
// may differ when optima tie; the objective value is the contract.
func agreeOnOptimal(t *testing.T, sim *matrix.Dense) {
	t.Helper()
	want := bruteForceOptimal(sim)
	jv := SolveJV(sim)
	hung := SolveHungarian(sim)
	checkOneToOne(t, "JV", jv, sim.Cols)
	checkOneToOne(t, "Hungarian", hung, sim.Cols)
	const eps = 1e-9
	if got := TotalSimilarity(sim, jv); math.Abs(got-want) > eps*(1+math.Abs(want)) {
		t.Errorf("JV total %v != brute-force optimum %v\nmatrix %dx%d: %v",
			got, want, sim.Rows, sim.Cols, sim.Data)
	}
	if got := TotalSimilarity(sim, hung); math.Abs(got-want) > eps*(1+math.Abs(want)) {
		t.Errorf("Hungarian total %v != brute-force optimum %v\nmatrix %dx%d: %v",
			got, want, sim.Rows, sim.Cols, sim.Data)
	}
}

// TestLAPSolversAgreeStarvedFixture seeds the property test with the
// degenerate shape behind the PR 3 greedy-top-k starvation fix: every row
// prefers the same column with strictly descending scores and sees nothing
// else. Transposed here to the Rows <= Cols orientation the exact solvers
// require; the optimum takes the single contested column once.
func TestLAPSolversAgreeStarvedFixture(t *testing.T) {
	sim := matrix.DenseFromRows([][]float64{
		{1, 0, 0, 0},
		{0.9, 0, 0, 0},
		{0.8, 0, 0, 0},
	})
	if got := bruteForceOptimal(sim); got != 1 {
		t.Fatalf("brute-force optimum %v, want 1", got)
	}
	agreeOnOptimal(t, sim)
}

// TestLAPSolversAgreeRandom is the cross-solver agreement property test:
// on random rectangular cost matrices with n, m <= 9 (dense uniform,
// tie-heavy quantized, negative-shifted, and sparse regimes), the JV and
// Hungarian solvers must both reach the brute-force optimal total
// similarity.
func TestLAPSolversAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	regimes := []struct {
		name string
		draw func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() }},
		// Quantized values force massive ties — the regime where a solver
		// with a tie-breaking bug diverges from the optimum.
		{"quantized", func() float64 { return float64(rng.Intn(4)) / 4 }},
		// Negative entries exercise the cost = -similarity transform.
		{"shifted", func() float64 { return rng.Float64()*2 - 1 }},
		// Mostly-zero rows reproduce starvation shapes at random.
		{"sparse", func() float64 {
			if rng.Intn(4) == 0 {
				return rng.Float64()
			}
			return 0
		}},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			for trial := 0; trial < 60; trial++ {
				n := 1 + rng.Intn(9)
				m := n + rng.Intn(9-n+1) // n <= m <= 9
				sim := matrix.NewDense(n, m)
				for i := range sim.Data {
					sim.Data[i] = reg.draw()
				}
				agreeOnOptimal(t, sim)
			}
		})
	}
}
