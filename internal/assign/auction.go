package assign

import (
	"fmt"
	"math"

	"graphalign/internal/matrix"
	"graphalign/internal/parallel"
)

// Sparse assignment methods: candidate-set counterparts of the paper's four
// dense extraction strategies. They consume a Candidates set instead of a
// dense matrix (see SolveSparse) and exist so the experiment framework can
// name the sparse pipeline in results and checkpoints without overloading
// the dense method identifiers.
const (
	// AuctionSparse is the forward-auction LAP solver with ε-scaling over
	// the candidate set; the sparse counterpart of both exact dense solvers
	// (JV and MWM). Falls back to dense JV when the candidate graph cannot
	// match every row.
	AuctionSparse Method = "AUC"
	// NearestNeighborSparse is NN over candidates (each row's best
	// candidate), restricted to one-to-one like the dense pipeline.
	NearestNeighborSparse Method = "NN-K"
	// SortGreedySparse is SortGreedy over candidates with the free-column
	// maximality fallback of SolveGreedyTopK.
	SortGreedySparse Method = "SG-K"
)

// SparseMethods lists the sparse methods in the order of their dense
// counterparts.
func SparseMethods() []Method {
	return []Method{NearestNeighborSparse, SortGreedySparse, AuctionSparse}
}

// SparseVariant maps a dense assignment method to its sparse counterpart
// (both exact solvers map to the auction). Sparse methods map to themselves,
// so callers can pass either form. ok is false for unknown methods.
func SparseVariant(m Method) (Method, bool) {
	switch m {
	case NearestNeighbor, NearestNeighborSparse:
		return NearestNeighborSparse, true
	case SortGreedy, SortGreedySparse:
		return SortGreedySparse, true
	case Hungarian, JonkerVolgenant, AuctionSparse:
		return AuctionSparse, true
	}
	return "", false
}

// SparseStats reports what the sparse pipeline did, for observability and
// for the optimality-tolerance contract of the property tests.
type SparseStats struct {
	// CandidatesPerRow is the effective per-row candidate count K.
	CandidatesPerRow int
	// Rounds is the number of synchronous auction bidding rounds across all
	// ε phases (zero for the non-auction methods and on fallback).
	Rounds int
	// Phases is the number of ε-scaling phases run.
	Phases int
	// FinalEps is the ε of the last auction phase; the auction total is
	// within Cols*FinalEps of the optimum over the candidate graph.
	FinalEps float64
	// FellBack reports that the candidate graph left rows unmatchable and
	// the solve was redone by dense JV over the materialized matrix.
	FellBack bool
	// WarmStart reports the solve was seeded from a previous AuctionState
	// (see SolveAuctionWarm).
	WarmStart bool
	// RebidRows is the number of real rows that entered a warm solve
	// unassigned: the caller's dirty rows plus any seeds rejected by the
	// feasibility repair pass. Zero for cold solves.
	RebidRows int
}

// SolveSparse dispatches a sparse assignment method over a candidate set.
// dense lazily materializes the full similarity matrix and is only invoked
// on the auction's unmatchable-fallback path (it may be nil when the caller
// can guarantee matchability; the fallback then returns an error). workers
// bounds the auction's parallel bidding fan-out (0 = one per CPU); the
// returned mapping is identical for any worker count. The NN variant is
// restricted to one-to-one, as the paper requires of every method.
func SolveSparse(method Method, c *Candidates, dense func() *matrix.Dense, workers int) ([]int, SparseStats, error) {
	if c.Rows > c.Cols {
		return nil, SparseStats{}, fmt.Errorf("assign: source larger than target (%d > %d)", c.Rows, c.Cols)
	}
	stats := SparseStats{CandidatesPerRow: c.K}
	sm, ok := SparseVariant(method)
	if !ok {
		return nil, stats, fmt.Errorf("assign: unknown sparse method %q", method)
	}
	switch sm {
	case NearestNeighborSparse:
		return EnforceOneToOneSparse(c, SolveNNSparse(c)), stats, nil
	case SortGreedySparse:
		return SolveGreedySparse(c), stats, nil
	}
	// A row left without candidates by factor-space pruning can never be
	// matched: Hopcroft–Karp would report the graph unmatchable and the
	// solve would silently land on the dense fallback, masking the defect.
	// Surface it as a typed error instead (NN/SG above have documented
	// free-column fallbacks and stay permissive).
	if c.Len != nil {
		for i, l := range c.Len {
			if l == 0 {
				return nil, stats, &StarvedRowError{Row: i}
			}
		}
	}
	mapping, st, ok := SolveAuction(c, workers)
	st.CandidatesPerRow = c.K
	if ok {
		return mapping, st, nil
	}
	st.FellBack = true
	if dense == nil {
		return nil, st, fmt.Errorf("assign: candidate graph unmatchable and no dense fallback")
	}
	return SolveJV(dense()), st, nil
}

// auctionMaxRounds bounds the bidding rounds of one ε phase. Theory bounds
// the bids per object per phase by Δ/ε + persons, so with the ε-scaling
// schedule below (Δ/ε <= 4 after the first phase) legitimate phases stay
// far under the cap; it exists purely as a termination backstop — a tripped
// cap reports ok=false and the caller falls back to dense JV.
func auctionMaxRounds(persons, objects int) int {
	return 64 * (persons + objects + 16)
}

// SolveAuction solves the maximum-similarity assignment over a candidate set
// with the forward auction algorithm and ε-scaling (Bertsekas). Rows bid for
// their best-value candidate at a premium of (best − second-best + ε) over
// its price; ε starts at a quarter of the candidate value spread and shrinks
// geometrically, each phase re-running the auction from the previous phase's
// prices. The final total similarity is within Cols*FinalEps of the optimum
// restricted to the candidate graph (ε-complementary slackness).
//
// Rectangular problems (Rows < Cols) are padded with virtual rows holding
// zero value for every column, exactly like SolveJV's padding, so the
// symmetric auction applies unchanged.
//
// Bidding rounds are synchronous (Jacobi): every unassigned row computes its
// bid against the same price vector — fanned out across at most workers
// goroutines — and bids are then resolved sequentially in row order, highest
// bid winning each column with ties to the lowest row. The mapping is
// therefore a pure function of the candidate set: identical across repeated
// runs and across worker counts.
//
// ok is false when the candidate graph cannot match every row (detected by
// Hopcroft–Karp up front, plus a round-cap backstop); callers should fall
// back to a dense solver (see SolveSparse).
func SolveAuction(c *Candidates, workers int) ([]int, SparseStats, bool) {
	mapping, _, stats, ok := SolveAuctionState(c, workers)
	return mapping, stats, ok
}

// AuctionState is the reusable outcome of an auction solve: the final column
// price vector plus the schedule facts a later solve over a slightly edited
// candidate set needs to warm-start (see SolveAuctionWarm). The price vector
// is owned by the state — solvers copy it rather than aliasing caller memory.
type AuctionState struct {
	// Price is the final column price vector (length Cols).
	Price []float64
	// FinalEps is the ε the returned assignment satisfies ε-complementary
	// slackness for; the total is within Cols*FinalEps of the candidate-graph
	// optimum.
	FinalEps float64
	// Spread is the candidate value spread the ε schedule was derived from.
	Spread float64
}

// SolveAuctionState is SolveAuction, additionally returning the final
// AuctionState so the caller can warm-start a later solve over an edited
// candidate set.
func SolveAuctionState(c *Candidates, workers int) ([]int, AuctionState, SparseStats, bool) {
	var stats SparseStats
	if c.Rows == 0 {
		return nil, AuctionState{}, stats, true
	}
	if !c.Matchable() {
		return nil, AuctionState{}, stats, false
	}
	a := newAuctionRun(c, workers)
	epsFinal := a.epsFinal()
	eps := a.spread / 4
	if eps < epsFinal {
		eps = epsFinal
	}
	for {
		stats.Phases++
		stats.FinalEps = eps
		// Each phase restarts the assignment from the current prices, which
		// satisfy ε-CS for the previous (larger) ε.
		a.resetAssignment()
		rounds, ok := a.runPhase(eps)
		stats.Rounds += rounds
		if !ok {
			return nil, AuctionState{}, stats, false
		}
		if eps <= epsFinal {
			break
		}
		eps /= 4
		if eps < epsFinal {
			eps = epsFinal
		}
	}
	mapping := make([]int, a.n)
	copy(mapping, a.personObj[:a.n])
	return mapping, AuctionState{Price: a.price, FinalEps: stats.FinalEps, Spread: a.spread}, stats, true
}

// auctionRun holds the mutable state of one auction solve, shared by the cold
// ε-scaling loop (SolveAuctionState) and the warm single-phase path
// (SolveAuctionWarm). Persons are the rows padded square with zero-value
// virtual rows, exactly like SolveJV's padding.
type auctionRun struct {
	c          *Candidates
	n, m       int // real rows, columns (persons run 0..m-1)
	spread     float64
	price      []float64
	personObj  []int // person -> column, -1 unassigned
	objPerson  []int // column -> person, -1 free
	unassigned []int // unassigned persons, ascending
	bidObj     []int
	bidVal     []float64
	roundStamp []int // per-round winning bid per column, stamp-invalidated
	round      int
	workers    int
	parWorkers int
}

func newAuctionRun(c *Candidates, workers int) *auctionRun {
	n, m := c.Rows, c.Cols
	// Value spread drives the ε schedule. Virtual padding rows hold value 0,
	// so the spread must cover 0 when padding is present. Rows are scanned
	// through Row so pruned-short rows (Candidates.Len) contribute only
	// their live candidates, not the flat-array padding.
	minV, maxV := math.Inf(1), math.Inf(-1)
	seen := 0
	for i := 0; i < n; i++ {
		_, vals := c.Row(i)
		seen += len(vals)
		for _, v := range vals {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if m > n || seen == 0 {
		if minV > 0 {
			minV = 0
		}
		if maxV < 0 {
			maxV = 0
		}
	}
	a := &auctionRun{
		c:          c,
		n:          n,
		m:          m,
		spread:     maxV - minV,
		price:      make([]float64, m),
		personObj:  make([]int, m),
		objPerson:  make([]int, m),
		unassigned: make([]int, 0, m),
		bidObj:     make([]int, m),
		bidVal:     make([]float64, m),
		roundStamp: make([]int, m),
		workers:    workers,
		parWorkers: parallel.Workers(workers),
	}
	for j := range a.roundStamp {
		a.roundStamp[j] = -1
	}
	return a
}

func (a *auctionRun) epsFinal() float64 {
	epsFinal := a.spread / (1e6 * float64(a.m+1))
	if epsFinal <= 0 {
		epsFinal = 1e-12 // all-equal values: one phase, any perfect matching is optimal
	}
	return epsFinal
}

func (a *auctionRun) resetAssignment() {
	for i := range a.personObj {
		a.personObj[i] = -1
	}
	for j := range a.objPerson {
		a.objPerson[j] = -1
	}
	a.unassigned = a.unassigned[:0]
	for p := 0; p < a.m; p++ {
		a.unassigned = append(a.unassigned, p)
	}
}

// bid computes person p's favored column and bid price under the current
// prices. Persons >= n are virtual padding with value 0 on every column.
// With a single viable candidate, second stays -Inf; the bid premium is
// then capped at one value spread rather than +Inf. An infinite price
// would poison later ε phases: the phase restart keeps prices, the row's
// only net value becomes -Inf, and the row can never bid again — the
// phase then spins to the round cap and falls back. A spread-sized
// overbid still dominates every competing finite net while keeping the
// next phase solvable.
func (a *auctionRun) bid(p int, eps float64) (int, float64) {
	best, second := math.Inf(-1), math.Inf(-1)
	bestJ := -1
	if p < a.n {
		cols, vals := a.c.Row(p)
		for ci, j := range cols {
			net := vals[ci] - a.price[j]
			if net > best {
				second = best
				best, bestJ = net, j
			} else if net > second {
				second = net
			}
		}
	} else {
		for j := 0; j < a.m; j++ {
			net := -a.price[j]
			if net > best {
				second = best
				best, bestJ = net, j
			} else if net > second {
				second = net
			}
		}
	}
	if bestJ == -1 {
		return -1, 0
	}
	if math.IsInf(second, -1) {
		second = best - a.spread
	}
	return bestJ, a.price[bestJ] + (best - second) + eps
}

// runPhase runs synchronous bidding rounds at a fixed ε until every person is
// assigned, starting from whatever partial assignment the run currently holds
// (a.unassigned must list the unassigned persons in ascending order). It
// returns the number of rounds run; ok is false when the round-cap backstop
// trips.
func (a *auctionRun) runPhase(eps float64) (int, bool) {
	maxRounds := auctionMaxRounds(a.m, a.m)
	rounds := 0
	for phaseRound := 0; len(a.unassigned) > 0; phaseRound++ {
		if phaseRound > maxRounds {
			return rounds, false
		}
		rounds++
		a.round++
		// Bidding: pure per-person scans against the shared price vector.
		computeBids := func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				p := a.unassigned[idx]
				a.bidObj[p], a.bidVal[p] = a.bid(p, eps)
			}
		}
		if len(a.unassigned)*(a.c.K+1) >= candidateBudget && a.parWorkers > 1 {
			parallel.Blocks(a.workers, len(a.unassigned), computeBids)
		} else {
			computeBids(0, len(a.unassigned))
		}
		// Resolution: find each column's winning bid. Bidders are scanned
		// in ascending person order and only a strictly higher bid
		// displaces the provisional winner, so ties go to the lowest
		// person and the outcome never depends on goroutine scheduling.
		// Every bid exceeds the column's pre-round price by >= ε by
		// construction, so all bids are acceptable.
		for _, p := range a.unassigned {
			j := a.bidObj[p]
			if j < 0 {
				continue
			}
			if a.roundStamp[j] != a.round {
				a.roundStamp[j] = a.round
				if prev := a.objPerson[j]; prev != -1 {
					a.personObj[prev] = -1
				}
			} else {
				prev := a.objPerson[j]
				if a.bidVal[p] <= a.bidVal[prev] {
					continue
				}
				a.personObj[prev] = -1
			}
			a.objPerson[j] = p
			a.personObj[p] = j
			a.price[j] = a.bidVal[p]
		}
		// Rebuild the unassigned list in ascending person order.
		a.unassigned = a.unassigned[:0]
		for p := 0; p < a.m; p++ {
			if a.personObj[p] == -1 {
				a.unassigned = append(a.unassigned, p)
			}
		}
	}
	return rounds, true
}
