package assign

import (
	"fmt"
	"math"

	"graphalign/internal/matrix"
	"graphalign/internal/parallel"
)

// Sparse assignment methods: candidate-set counterparts of the paper's four
// dense extraction strategies. They consume a Candidates set instead of a
// dense matrix (see SolveSparse) and exist so the experiment framework can
// name the sparse pipeline in results and checkpoints without overloading
// the dense method identifiers.
const (
	// AuctionSparse is the forward-auction LAP solver with ε-scaling over
	// the candidate set; the sparse counterpart of both exact dense solvers
	// (JV and MWM). Falls back to dense JV when the candidate graph cannot
	// match every row.
	AuctionSparse Method = "AUC"
	// NearestNeighborSparse is NN over candidates (each row's best
	// candidate), restricted to one-to-one like the dense pipeline.
	NearestNeighborSparse Method = "NN-K"
	// SortGreedySparse is SortGreedy over candidates with the free-column
	// maximality fallback of SolveGreedyTopK.
	SortGreedySparse Method = "SG-K"
)

// SparseMethods lists the sparse methods in the order of their dense
// counterparts.
func SparseMethods() []Method {
	return []Method{NearestNeighborSparse, SortGreedySparse, AuctionSparse}
}

// SparseVariant maps a dense assignment method to its sparse counterpart
// (both exact solvers map to the auction). Sparse methods map to themselves,
// so callers can pass either form. ok is false for unknown methods.
func SparseVariant(m Method) (Method, bool) {
	switch m {
	case NearestNeighbor, NearestNeighborSparse:
		return NearestNeighborSparse, true
	case SortGreedy, SortGreedySparse:
		return SortGreedySparse, true
	case Hungarian, JonkerVolgenant, AuctionSparse:
		return AuctionSparse, true
	}
	return "", false
}

// SparseStats reports what the sparse pipeline did, for observability and
// for the optimality-tolerance contract of the property tests.
type SparseStats struct {
	// CandidatesPerRow is the effective per-row candidate count K.
	CandidatesPerRow int
	// Rounds is the number of synchronous auction bidding rounds across all
	// ε phases (zero for the non-auction methods and on fallback).
	Rounds int
	// Phases is the number of ε-scaling phases run.
	Phases int
	// FinalEps is the ε of the last auction phase; the auction total is
	// within Cols*FinalEps of the optimum over the candidate graph.
	FinalEps float64
	// FellBack reports that the candidate graph left rows unmatchable and
	// the solve was redone by dense JV over the materialized matrix.
	FellBack bool
}

// SolveSparse dispatches a sparse assignment method over a candidate set.
// dense lazily materializes the full similarity matrix and is only invoked
// on the auction's unmatchable-fallback path (it may be nil when the caller
// can guarantee matchability; the fallback then returns an error). workers
// bounds the auction's parallel bidding fan-out (0 = one per CPU); the
// returned mapping is identical for any worker count. The NN variant is
// restricted to one-to-one, as the paper requires of every method.
func SolveSparse(method Method, c *Candidates, dense func() *matrix.Dense, workers int) ([]int, SparseStats, error) {
	if c.Rows > c.Cols {
		return nil, SparseStats{}, fmt.Errorf("assign: source larger than target (%d > %d)", c.Rows, c.Cols)
	}
	stats := SparseStats{CandidatesPerRow: c.K}
	sm, ok := SparseVariant(method)
	if !ok {
		return nil, stats, fmt.Errorf("assign: unknown sparse method %q", method)
	}
	switch sm {
	case NearestNeighborSparse:
		return EnforceOneToOneSparse(c, SolveNNSparse(c)), stats, nil
	case SortGreedySparse:
		return SolveGreedySparse(c), stats, nil
	}
	// A row left without candidates by factor-space pruning can never be
	// matched: Hopcroft–Karp would report the graph unmatchable and the
	// solve would silently land on the dense fallback, masking the defect.
	// Surface it as a typed error instead (NN/SG above have documented
	// free-column fallbacks and stay permissive).
	if c.Len != nil {
		for i, l := range c.Len {
			if l == 0 {
				return nil, stats, &StarvedRowError{Row: i}
			}
		}
	}
	mapping, st, ok := SolveAuction(c, workers)
	st.CandidatesPerRow = c.K
	if ok {
		return mapping, st, nil
	}
	st.FellBack = true
	if dense == nil {
		return nil, st, fmt.Errorf("assign: candidate graph unmatchable and no dense fallback")
	}
	return SolveJV(dense()), st, nil
}

// auctionMaxRounds bounds the bidding rounds of one ε phase. Theory bounds
// the bids per object per phase by Δ/ε + persons, so with the ε-scaling
// schedule below (Δ/ε <= 4 after the first phase) legitimate phases stay
// far under the cap; it exists purely as a termination backstop — a tripped
// cap reports ok=false and the caller falls back to dense JV.
func auctionMaxRounds(persons, objects int) int {
	return 64 * (persons + objects + 16)
}

// SolveAuction solves the maximum-similarity assignment over a candidate set
// with the forward auction algorithm and ε-scaling (Bertsekas). Rows bid for
// their best-value candidate at a premium of (best − second-best + ε) over
// its price; ε starts at a quarter of the candidate value spread and shrinks
// geometrically, each phase re-running the auction from the previous phase's
// prices. The final total similarity is within Cols*FinalEps of the optimum
// restricted to the candidate graph (ε-complementary slackness).
//
// Rectangular problems (Rows < Cols) are padded with virtual rows holding
// zero value for every column, exactly like SolveJV's padding, so the
// symmetric auction applies unchanged.
//
// Bidding rounds are synchronous (Jacobi): every unassigned row computes its
// bid against the same price vector — fanned out across at most workers
// goroutines — and bids are then resolved sequentially in row order, highest
// bid winning each column with ties to the lowest row. The mapping is
// therefore a pure function of the candidate set: identical across repeated
// runs and across worker counts.
//
// ok is false when the candidate graph cannot match every row (detected by
// Hopcroft–Karp up front, plus a round-cap backstop); callers should fall
// back to a dense solver (see SolveSparse).
func SolveAuction(c *Candidates, workers int) ([]int, SparseStats, bool) {
	n, m := c.Rows, c.Cols
	var stats SparseStats
	if n == 0 {
		return nil, stats, true
	}
	if !c.Matchable() {
		return nil, stats, false
	}

	// Value spread drives the ε schedule. Virtual padding rows hold value 0,
	// so the spread must cover 0 when padding is present. Rows are scanned
	// through Row so pruned-short rows (Candidates.Len) contribute only
	// their live candidates, not the flat-array padding.
	minV, maxV := math.Inf(1), math.Inf(-1)
	seen := 0
	for i := 0; i < n; i++ {
		_, vals := c.Row(i)
		seen += len(vals)
		for _, v := range vals {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if m > n || seen == 0 {
		if minV > 0 {
			minV = 0
		}
		if maxV < 0 {
			maxV = 0
		}
	}
	spread := maxV - minV
	epsFinal := spread / (1e6 * float64(m+1))
	if epsFinal <= 0 {
		epsFinal = 1e-12 // all-equal values: one phase, any perfect matching is optimal
	}
	eps := spread / 4
	if eps < epsFinal {
		eps = epsFinal
	}

	persons := m // rows padded square with zero-value virtual rows
	price := make([]float64, m)
	personObj := make([]int, persons) // person -> column, -1 unassigned
	objPerson := make([]int, m)       // column -> person, -1 free
	unassigned := make([]int, 0, persons)
	bidObj := make([]int, persons)
	bidVal := make([]float64, persons)
	// Per-round winning bid per column, invalidated by a round stamp rather
	// than cleared.
	roundStamp := make([]int, m)
	for j := range roundStamp {
		roundStamp[j] = -1
	}
	round := 0

	// bid computes person p's favored column and bid price under the current
	// prices. Persons >= n are virtual padding with value 0 on every column.
	// With a single viable candidate, second stays -Inf; the bid premium is
	// then capped at one value spread rather than +Inf. An infinite price
	// would poison later ε phases: the phase restart keeps prices, the row's
	// only net value becomes -Inf, and the row can never bid again — the
	// phase then spins to the round cap and falls back. A spread-sized
	// overbid still dominates every competing finite net while keeping the
	// next phase solvable.
	bid := func(p int, eps float64) (int, float64) {
		best, second := math.Inf(-1), math.Inf(-1)
		bestJ := -1
		if p < n {
			cols, vals := c.Row(p)
			for ci, j := range cols {
				net := vals[ci] - price[j]
				if net > best {
					second = best
					best, bestJ = net, j
				} else if net > second {
					second = net
				}
			}
		} else {
			for j := 0; j < m; j++ {
				net := -price[j]
				if net > best {
					second = best
					best, bestJ = net, j
				} else if net > second {
					second = net
				}
			}
		}
		if bestJ == -1 {
			return -1, 0
		}
		if math.IsInf(second, -1) {
			second = best - spread
		}
		return bestJ, price[bestJ] + (best - second) + eps
	}

	parWorkers := parallel.Workers(workers)
	for {
		stats.Phases++
		stats.FinalEps = eps
		// Each phase restarts the assignment from the current prices, which
		// satisfy ε-CS for the previous (larger) ε.
		for i := range personObj {
			personObj[i] = -1
		}
		for j := range objPerson {
			objPerson[j] = -1
		}
		unassigned = unassigned[:0]
		for p := 0; p < persons; p++ {
			unassigned = append(unassigned, p)
		}
		maxRounds := auctionMaxRounds(persons, m)
		for phaseRound := 0; len(unassigned) > 0; phaseRound++ {
			if phaseRound > maxRounds {
				return nil, stats, false
			}
			stats.Rounds++
			round++
			// Bidding: pure per-person scans against the shared price vector.
			curEps := eps
			computeBids := func(lo, hi int) {
				for idx := lo; idx < hi; idx++ {
					p := unassigned[idx]
					bidObj[p], bidVal[p] = bid(p, curEps)
				}
			}
			if len(unassigned)*(c.K+1) >= candidateBudget && parWorkers > 1 {
				parallel.Blocks(workers, len(unassigned), computeBids)
			} else {
				computeBids(0, len(unassigned))
			}
			// Resolution: find each column's winning bid. Bidders are scanned
			// in ascending person order and only a strictly higher bid
			// displaces the provisional winner, so ties go to the lowest
			// person and the outcome never depends on goroutine scheduling.
			// Every bid exceeds the column's pre-round price by >= ε by
			// construction, so all bids are acceptable.
			for _, p := range unassigned {
				j := bidObj[p]
				if j < 0 {
					continue
				}
				if roundStamp[j] != round {
					roundStamp[j] = round
					if prev := objPerson[j]; prev != -1 {
						personObj[prev] = -1
					}
				} else {
					prev := objPerson[j]
					if bidVal[p] <= bidVal[prev] {
						continue
					}
					personObj[prev] = -1
				}
				objPerson[j] = p
				personObj[p] = j
				price[j] = bidVal[p]
			}
			// Rebuild the unassigned list in ascending person order.
			unassigned = unassigned[:0]
			for p := 0; p < persons; p++ {
				if personObj[p] == -1 {
					unassigned = append(unassigned, p)
				}
			}
		}
		if eps <= epsFinal {
			break
		}
		eps /= 4
		if eps < epsFinal {
			eps = epsFinal
		}
	}

	mapping := make([]int, n)
	copy(mapping, personObj[:n])
	return mapping, stats, true
}
