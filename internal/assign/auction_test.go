package assign

import (
	"math"
	"math/rand"
	"testing"

	"graphalign/internal/matrix"
)

// auctionTolerance is the theoretical optimality gap of ε-scaling auction:
// the assignment it returns is within persons·ε_final of the optimum over
// the candidate graph. The extra 1e-9 absorbs float accumulation noise.
func auctionTolerance(persons int, stats SparseStats) float64 {
	return float64(persons)*stats.FinalEps + 1e-9
}

// Satellite 3: auction-with-fallback agrees with SolveJV on total similarity
// within the ε-scaling bound, across random dense instances (full candidate
// set, so both solvers see the same problem).
func TestAuctionAgreesWithJVDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	regimes := []struct {
		name string
		draw func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() }},
		{"quantized", func() float64 { return float64(rng.Intn(4)) / 3 }},
		{"shifted", func() float64 { return rng.Float64() + 5 }},
		{"spread", func() float64 { return rng.Float64() * 1000 }},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			for trial := 0; trial < 40; trial++ {
				n := 1 + rng.Intn(8)
				m := n + rng.Intn(4) // includes rectangular n < m
				sim := matrix.NewDense(n, m)
				for i := range sim.Data {
					sim.Data[i] = reg.draw()
				}
				c := TopKDense(sim, m, 1) // full candidate set
				mapping, stats, ok := SolveAuction(c, 1)
				if !ok {
					t.Fatalf("trial %d: auction failed on a full candidate set", trial)
				}
				checkOneToOne(t, "auction", mapping, m)
				got := TotalSimilarity(sim, mapping)
				want := TotalSimilarity(sim, SolveJV(sim))
				if diff := want - got; diff > auctionTolerance(m, stats) {
					t.Fatalf("trial %d (%d x %d): auction total %v vs JV %v, gap %v > tol %v",
						trial, n, m, got, want, diff, auctionTolerance(m, stats))
				}
			}
		})
	}
}

// bandedInstance builds an n x m similarity whose optimum lives on a band
// j in [i-b, i+b]: in-band entries are uniform in [0,1), out-of-band entries
// carry a -1e3 mask. Any full matching using a masked edge scores below any
// all-in-band matching (identity is always feasible), so the dense optimum
// equals the band-restricted optimum while keeping the value spread — and
// hence ε_final and the comparison tolerance — small.
func bandedInstance(n, m, b int, rng *rand.Rand) *matrix.Dense {
	sim := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if j >= i-b && j <= i+b {
				sim.Set(i, j, rng.Float64())
			} else {
				sim.Set(i, j, -1e3)
			}
		}
	}
	return sim
}

func TestAuctionAgreesWithJVBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(10)
		m := n + rng.Intn(3)
		b := 1 + rng.Intn(3)
		sim := bandedInstance(n, m, b, rng)
		c := TopKDense(sim, 2*b+1, 1)
		dense := func() *matrix.Dense { return sim }
		mapping, stats, err := SolveSparse(AuctionSparse, c, dense, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkOneToOne(t, "auction-banded", mapping, m)
		got := TotalSimilarity(sim, mapping)
		want := TotalSimilarity(sim, SolveJV(sim))
		// The candidate graph contains the band (top 2b+1 entries per row
		// dominate the mask), so the candidate optimum equals the dense one.
		if diff := want - got; diff > auctionTolerance(m, stats)+1e-6 {
			t.Fatalf("trial %d (n=%d m=%d b=%d): total %v vs JV %v, gap %v (FinalEps=%v, fellback=%v)",
				trial, n, m, b, got, want, diff, stats.FinalEps, stats.FellBack)
		}
	}
}

// The PR 3 starved fixture: three rows all favoring column 0. With k=1 every
// row's only candidate is column 0, the candidate graph is unmatchable, and
// SolveSparse must fall back to dense JV — exactly.
func TestAuctionStarvedFallsBackToJV(t *testing.T) {
	sim := matrix.DenseFromRows([][]float64{
		{1, 0, 0, 0},
		{0.9, 0, 0, 0},
		{0.8, 0, 0, 0},
	})
	c := TopKDense(sim, 1, 1)
	mapping, stats, err := SolveSparse(AuctionSparse, c, func() *matrix.Dense { return sim }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FellBack {
		t.Fatal("expected FellBack=true on an unmatchable candidate graph")
	}
	want := SolveJV(sim)
	for i := range want {
		if mapping[i] != want[i] {
			t.Fatalf("fallback mapping %v != SolveJV %v", mapping, want)
		}
	}
}

func TestAuctionFallbackWithoutDenseErrors(t *testing.T) {
	sim := matrix.DenseFromRows([][]float64{{1, 0}, {0.9, 0}, {0.8, 0}})
	// Rows > cols is rejected up front.
	c := TopKDense(sim, 2, 1)
	if _, _, err := SolveSparse(AuctionSparse, c, nil, 1); err == nil {
		t.Fatal("expected error for rows > cols")
	}
	// Unmatchable graph with no dense fallback available.
	starved := TopKDense(matrix.DenseFromRows([][]float64{{1, 0, 0}, {0.9, 0, 0}}), 1, 1)
	if _, _, err := SolveSparse(AuctionSparse, starved, nil, 1); err == nil {
		t.Fatal("expected error when fallback is needed but dense is nil")
	}
}

func TestAuctionEmpty(t *testing.T) {
	mapping, _, ok := SolveAuction(&Candidates{}, 1)
	if !ok || len(mapping) != 0 {
		t.Fatalf("empty instance: mapping=%v ok=%v", mapping, ok)
	}
}

func TestSparseVariant(t *testing.T) {
	cases := []struct {
		in   Method
		want Method
		ok   bool
	}{
		{NearestNeighbor, NearestNeighborSparse, true},
		{SortGreedy, SortGreedySparse, true},
		{JonkerVolgenant, AuctionSparse, true},
		{Hungarian, AuctionSparse, true},
		{NearestNeighborSparse, NearestNeighborSparse, true},
		{SortGreedySparse, SortGreedySparse, true},
		{AuctionSparse, AuctionSparse, true},
		{Method("nope"), Method(""), false},
	}
	for _, tc := range cases {
		got, ok := SparseVariant(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("SparseVariant(%q) = (%q, %v), want (%q, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// bandedCandidates builds a matchable banded candidate set directly, sized
// so that n*(K+1) crosses candidateBudget and the parallel bidding path
// engages. Row i's candidates are the clamped band around i, values random;
// the identity edge is always present, so the graph is matchable.
func bandedCandidates(n, halfBand int, rng *rand.Rand) *Candidates {
	k := 2*halfBand + 1
	c := &Candidates{Rows: n, Cols: n, K: k, Col: make([]int, n*k), Val: make([]float64, n*k)}
	for i := 0; i < n; i++ {
		lo := i - halfBand
		if lo < 0 {
			lo = 0
		}
		if lo > n-k {
			lo = n - k
		}
		ps := make([]pair, k)
		for d := 0; d < k; d++ {
			ps[d] = pair{i, lo + d, rng.Float64()}
		}
		// Candidates rows are sorted (v desc, j asc); build that order.
		sortPairsDesc(ps)
		for d, p := range ps {
			c.Col[i*k+d] = p.j
			c.Val[i*k+d] = p.v
		}
	}
	return c
}

func sortPairsDesc(ps []pair) {
	for a := 1; a < len(ps); a++ {
		for b := a; b > 0; b-- {
			if ps[b].v > ps[b-1].v || (ps[b].v == ps[b-1].v && ps[b].j < ps[b-1].j) {
				ps[b], ps[b-1] = ps[b-1], ps[b]
			} else {
				break
			}
		}
	}
}

// Acceptance criterion: the auction result is independent of the worker
// count even when the parallel bidding path is active. n=4096, K=63 makes
// n*(K+1) = 262144 = candidateBudget, the exact gate threshold. Run under
// -race in CI.
func TestAuctionDeterministicAcrossWorkers(t *testing.T) {
	n, halfBand := 4096, 31
	if testing.Short() {
		n, halfBand = 1024, 31 // below the parallel gate but still multi-phase
	}
	rng := rand.New(rand.NewSource(99))
	c := bandedCandidates(n, halfBand, rng)
	if !c.Matchable() {
		t.Fatal("banded candidate set should be matchable")
	}
	ref, refStats, ok := SolveAuction(c, 1)
	if !ok {
		t.Fatal("auction failed on a matchable instance")
	}
	checkOneToOne(t, "auction-det", ref, n)
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			got, stats, ok := SolveAuction(c, workers)
			if !ok {
				t.Fatalf("workers=%d rep=%d: auction failed", workers, rep)
			}
			if stats.Rounds != refStats.Rounds || stats.Phases != refStats.Phases {
				t.Fatalf("workers=%d rep=%d: stats (%d rounds, %d phases) != serial (%d, %d)",
					workers, rep, stats.Rounds, stats.Phases, refStats.Rounds, refStats.Phases)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d rep=%d: mapping diverges at row %d: %d != %d",
						workers, rep, i, got[i], ref[i])
				}
			}
		}
	}
}

// Sanity: on the large banded instance the auction total is near the greedy
// upper envelope (every person's best candidate), confirming it is actually
// optimizing rather than just finding a feasible matching.
func TestAuctionQualityOnBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := bandedCandidates(512, 8, rng)
	mapping, stats, ok := SolveAuction(c, 1)
	if !ok {
		t.Fatal("auction failed")
	}
	var total, upper float64
	for i := 0; i < c.Rows; i++ {
		cols, vals := c.Row(i)
		upper += vals[0] // rows sorted v desc
		for d, j := range cols {
			if j == mapping[i] {
				total += vals[d]
				break
			}
		}
	}
	// Greedy SG on the same candidates is a lower bound achievable by a much
	// dumber algorithm; auction must beat it.
	sg := SolveGreedySparse(c)
	var sgTotal float64
	for i, j := range sg {
		if v, found := candValue(c, i, j); found {
			sgTotal += v
		}
	}
	if total+auctionTolerance(c.Rows, stats) < sgTotal {
		t.Fatalf("auction total %v below greedy %v (upper envelope %v)", total, sgTotal, upper)
	}
	if math.IsNaN(total) {
		t.Fatal("NaN total")
	}
}

func candValue(c *Candidates, i, j int) (float64, bool) {
	cols, vals := c.Row(i)
	for d, cj := range cols {
		if cj == j {
			return vals[d], true
		}
	}
	return 0, false
}
