package assign

import (
	"sort"

	"graphalign/internal/matrix"
)

// SolveGreedyTopK is SortGreedy restricted to each row's k highest-scoring
// candidates. The paper's Section 6.2 notes that on large graphs the cost
// of exact LAP solvers is not worth their small quality edge and recommends
// lightweight extraction; limiting each node to its top-k candidates drops
// the candidate pool from n*m to n*k, which is the difference between
// O(nm log(nm)) and O(nk log(nk)) sorting.
//
// It is equivalent to SolveGreedySparse over TopKDense candidates (per-row
// bounded-heap partial selection, ties on value keep the smaller column).
func SolveGreedyTopK(sim *matrix.Dense, k int) []int {
	return SolveGreedySparse(TopKDense(sim, k, 1))
}

// SolveNNSparse assigns each row its best candidate — by construction the
// row's highest-similarity column with ties broken by lowest column index,
// exactly matching SolveNN over the dense matrix. Like dense NN the result
// may be many-to-one; compose with EnforceOneToOneSparse for the paper's
// one-to-one restriction. Rows with no candidates (Cols == 0) map to -1.
func SolveNNSparse(c *Candidates) []int {
	mapping := make([]int, c.Rows)
	for i := range mapping {
		cols, _ := c.Row(i)
		if len(cols) == 0 {
			mapping[i] = -1
			continue
		}
		mapping[i] = cols[0]
	}
	return mapping
}

// SolveGreedySparse is SortGreedy over a candidate set: all candidates are
// sorted by similarity descending — ties by (row, column) ascending, the
// dense SolveGreedy order — and accepted whenever both endpoints are free.
//
// Rows whose candidates are all taken fall back to any free column (lowest
// index), so the result is always a maximal one-to-one matching: no row is
// left unmatched while a free column remains, on square and rectangular
// (n > m or n < m) instances alike.
func SolveGreedySparse(c *Candidates) []int {
	n, m := c.Rows, c.Cols
	pairs := make([]pair, 0, n*c.K)
	for i := 0; i < n; i++ {
		cols, vals := c.Row(i)
		for ci, j := range cols {
			pairs = append(pairs, pair{i, j, vals[ci]})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].v != pairs[b].v {
			return pairs[a].v > pairs[b].v
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	usedCol := make([]bool, m)
	matched := 0
	for _, p := range pairs {
		if matched == n {
			break
		}
		if mapping[p.i] != -1 || usedCol[p.j] {
			continue
		}
		mapping[p.i] = p.j
		usedCol[p.j] = true
		matched++
	}
	// Fallback for starved rows: any free column keeps the matching maximal
	// (these rows had no surviving candidate). This applies regardless of
	// shape — when n > m the loop simply stops once the columns run out.
	if matched < n {
		free := make([]int, 0, m-matched)
		for j := 0; j < m; j++ {
			if !usedCol[j] {
				free = append(free, j)
			}
		}
		fi := 0
		for i := 0; i < n && fi < len(free); i++ {
			if mapping[i] == -1 {
				mapping[i] = free[fi]
				usedCol[free[fi]] = true
				fi++
			}
		}
	}
	return mapping
}

// EnforceOneToOneSparse is EnforceOneToOne restricted to a candidate set:
// contested columns go to the claimant with the highest candidate value
// (ties to the lowest row, matching the dense rule), and losers — taken in
// ascending row order — fall back to their best free candidate (highest
// value, then lowest column). Rows whose candidates are all taken take the
// lowest free column, keeping the matching maximal. mapping[i] must be -1 or
// one of row i's candidate columns (as produced by SolveNNSparse).
func EnforceOneToOneSparse(c *Candidates, mapping []int) []int {
	n, m := c.Rows, c.Cols
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	owner := make([]int, m)
	for j := range owner {
		owner[j] = -1
	}
	ownerV := make([]float64, m)
	for i, j := range mapping {
		if j < 0 || j >= m {
			continue
		}
		v, ok := c.value(i, j)
		if !ok {
			continue
		}
		if owner[j] == -1 || v > ownerV[j] {
			owner[j] = i
			ownerV[j] = v
		}
	}
	usedCol := make([]bool, m)
	for j, i := range owner {
		if i >= 0 {
			out[i] = j
			usedCol[j] = true
		}
	}
	// Losers take their best free candidate: rows are sorted by descending
	// value with ties on ascending column, so the first free candidate is it.
	for i := 0; i < n; i++ {
		if out[i] != -1 {
			continue
		}
		cols, _ := c.Row(i)
		for _, j := range cols {
			if !usedCol[j] {
				out[i] = j
				usedCol[j] = true
				break
			}
		}
	}
	// Maximality fallback for rows starved of candidates.
	fj := 0
	for i := 0; i < n; i++ {
		if out[i] != -1 {
			continue
		}
		for fj < m && usedCol[fj] {
			fj++
		}
		if fj == m {
			break
		}
		out[i] = fj
		usedCol[fj] = true
	}
	return out
}

// value returns row i's candidate value for column j, with ok false when j
// is not among row i's candidates.
func (c *Candidates) value(i, j int) (float64, bool) {
	cols, vals := c.Row(i)
	for ci, cj := range cols {
		if cj == j {
			return vals[ci], true
		}
	}
	return 0, false
}

// topKWeaker reports whether a is a weaker candidate than b under the
// top-k selection order: smaller value, or equal value with larger column.
func topKWeaker(a, b pair) bool {
	if a.v != b.v {
		return a.v < b.v
	}
	return a.j > b.j
}

func topKSiftUp(h []pair, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !topKWeaker(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func topKSiftDown(h []pair, i int) {
	topKSiftDownN(h, i, len(h))
}

// topKSiftDownN sifts h[i] down within the heap prefix h[:length], which lets
// the in-place heap-sort in TopKDense shrink the heap without reslicing.
func topKSiftDownN(h []pair, i, length int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < length && topKWeaker(h[l], h[min]) {
			min = l
		}
		if r < length && topKWeaker(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
