package assign

import (
	"sort"

	"graphalign/internal/matrix"
)

// SolveGreedyTopK is SortGreedy restricted to each row's k highest-scoring
// candidates. The paper's Section 6.2 notes that on large graphs the cost
// of exact LAP solvers is not worth their small quality edge and recommends
// lightweight extraction; limiting each node to its top-k candidates drops
// the candidate pool from n*m to n*k, which is the difference between
// O(nm log(nm)) and O(nk log(nk)) sorting.
//
// Rows whose top-k candidates are all taken fall back to any free column
// (lowest index), so the result is always a maximal one-to-one matching.
func SolveGreedyTopK(sim *matrix.Dense, k int) []int {
	n, m := sim.Rows, sim.Cols
	if k <= 0 || k > m {
		k = m
	}
	pairs := make([]pair, 0, n*k)
	idx := make([]int, m)
	for i := 0; i < n; i++ {
		row := sim.Row(i)
		for j := range idx {
			idx[j] = j
		}
		// Partial selection of the k largest entries.
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
		for _, j := range idx[:k] {
			pairs = append(pairs, pair{i, j, row[j]})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].v != pairs[b].v {
			return pairs[a].v > pairs[b].v
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	usedCol := make([]bool, m)
	matched := 0
	for _, p := range pairs {
		if matched == n {
			break
		}
		if mapping[p.i] != -1 || usedCol[p.j] {
			continue
		}
		mapping[p.i] = p.j
		usedCol[p.j] = true
		matched++
	}
	// Fallback for starved rows: any free column keeps the matching
	// maximal (these rows had no surviving top-k candidate).
	if matched < n && n <= m {
		free := make([]int, 0, m-matched)
		for j := 0; j < m; j++ {
			if !usedCol[j] {
				free = append(free, j)
			}
		}
		fi := 0
		for i := 0; i < n && fi < len(free); i++ {
			if mapping[i] == -1 {
				mapping[i] = free[fi]
				usedCol[free[fi]] = true
				fi++
			}
		}
	}
	return mapping
}
