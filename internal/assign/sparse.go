package assign

import (
	"sort"

	"graphalign/internal/matrix"
)

// SolveGreedyTopK is SortGreedy restricted to each row's k highest-scoring
// candidates. The paper's Section 6.2 notes that on large graphs the cost
// of exact LAP solvers is not worth their small quality edge and recommends
// lightweight extraction; limiting each node to its top-k candidates drops
// the candidate pool from n*m to n*k, which is the difference between
// O(nm log(nm)) and O(nk log(nk)) sorting.
//
// Per-row candidates are found by true partial selection — a bounded
// min-heap of size k, O(m log k) per row instead of the O(m log m) of a
// full sort. Ties on value keep the smaller column index.
//
// Rows whose top-k candidates are all taken fall back to any free column
// (lowest index), so the result is always a maximal one-to-one matching:
// no row is left unmatched while a free column remains, on square and
// rectangular (n > m or n < m) instances alike.
func SolveGreedyTopK(sim *matrix.Dense, k int) []int {
	n, m := sim.Rows, sim.Cols
	if k <= 0 || k > m {
		k = m
	}
	pairs := make([]pair, 0, n*k)
	heap := make([]pair, 0, k)
	for i := 0; i < n; i++ {
		row := sim.Row(i)
		// Bounded min-heap ordered by (v asc, j desc): the root is the
		// weakest kept candidate, and among equal values the larger column
		// index is evicted first, so ties resolve to smaller j.
		heap = heap[:0]
		for j, v := range row {
			if len(heap) < k {
				heap = append(heap, pair{i, j, v})
				topKSiftUp(heap, len(heap)-1)
				continue
			}
			// Candidates arrive in increasing j, so on equal value the
			// incumbent (smaller j) wins and the newcomer is skipped.
			if v <= heap[0].v {
				continue
			}
			heap[0] = pair{i, j, v}
			topKSiftDown(heap, 0)
		}
		pairs = append(pairs, heap...)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].v != pairs[b].v {
			return pairs[a].v > pairs[b].v
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	usedCol := make([]bool, m)
	matched := 0
	for _, p := range pairs {
		if matched == n {
			break
		}
		if mapping[p.i] != -1 || usedCol[p.j] {
			continue
		}
		mapping[p.i] = p.j
		usedCol[p.j] = true
		matched++
	}
	// Fallback for starved rows: any free column keeps the matching maximal
	// (these rows had no surviving top-k candidate). This applies regardless
	// of shape — when n > m the loop simply stops once the columns run out.
	if matched < n {
		free := make([]int, 0, m-matched)
		for j := 0; j < m; j++ {
			if !usedCol[j] {
				free = append(free, j)
			}
		}
		fi := 0
		for i := 0; i < n && fi < len(free); i++ {
			if mapping[i] == -1 {
				mapping[i] = free[fi]
				usedCol[free[fi]] = true
				fi++
			}
		}
	}
	return mapping
}

// topKWeaker reports whether a is a weaker candidate than b under the
// top-k selection order: smaller value, or equal value with larger column.
func topKWeaker(a, b pair) bool {
	if a.v != b.v {
		return a.v < b.v
	}
	return a.j > b.j
}

func topKSiftUp(h []pair, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !topKWeaker(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func topKSiftDown(h []pair, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && topKWeaker(h[l], h[min]) {
			min = l
		}
		if r < len(h) && topKWeaker(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
