package assign

import (
	"graphalign/internal/kdtree"
	"graphalign/internal/parallel"
)

// Clone returns a deep copy of the candidate set, so incremental updates can
// produce a new version without mutating the previous one (candidate sets are
// immutable once published).
func (c *Candidates) Clone() *Candidates {
	out := &Candidates{Rows: c.Rows, Cols: c.Cols, K: c.K,
		Col: append([]int(nil), c.Col...),
		Val: append([]float64(nil), c.Val...)}
	if c.Len != nil {
		out.Len = append([]int(nil), c.Len...)
	}
	return out
}

// DiffRows returns the rows whose candidate lists differ between two
// candidate sets of identical shape, in ascending order — the dirty set a
// warm-started auction re-bids.
func DiffRows(a, b *Candidates) []int {
	var dirty []int
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		same := len(ac) == len(bc)
		if same {
			for idx := range ac {
				if ac[idx] != bc[idx] || av[idx] != bv[idx] {
					same = false
					break
				}
			}
		}
		if !same {
			dirty = append(dirty, i)
		}
	}
	return dirty
}

// updateWorthwhile reports whether a per-row incremental update can beat a
// full recompute: once a quarter of either side is dirty, the probe pass plus
// scattered rescans costs as much as the straight-line bulk kernels.
func updateWorthwhile(changedRows, n, changedCols, m int) bool {
	return 4*changedRows < n && 4*changedCols < m
}

// sqDistAsc is the squared Euclidean distance accumulated dimension-ascending
// in a single chain — bitwise the per-target chains of topKEmbeddingBrute and
// matrix.PairwiseSqDist — so probe distances compare exactly against stored
// candidate values.
func sqDistAsc(q, r []float64) float64 {
	var s float64
	for t, v := range q {
		d := v - r[t]
		s += d * d
	}
	return s
}

// UpdateTopKEmbedding incrementally rebuilds the candidate set after an
// embedding delta: e is the new embedding, prev the candidate set built over
// the old one, changedRows the source rows and changedCols the target rows
// whose embedding vectors changed (everything else must be bitwise-unchanged).
// Rows are rescanned only when the delta can affect them — the row's own
// embedding moved, a current candidate's target moved, or a moved target's
// new distance reaches the row's k-th-nearest bound (probed with the exact
// accumulation schedule of the bulk kernels, so the conservative comparison
// never misses an entrant). Rescans run the same per-row kernels as
// TopKEmbedding, so the result equals TopKEmbedding(e, prev.K, ·) bitwise;
// when the delta is too large for per-row work to win (see updateWorthwhile)
// it simply runs the bulk rebuild.
//
// Returns the new candidate set and the rows whose candidate lists actually
// changed, ascending — the warm-started auction's dirty set. prev is not
// mutated.
func UpdateTopKEmbedding(prev *Candidates, e *Embedding, changedRows, changedCols []int, workers int) (*Candidates, []int) {
	n, m := prev.Rows, prev.Cols
	if !updateWorthwhile(len(changedRows), n, len(changedCols), m) {
		next := TopKEmbedding(e, prev.K, workers)
		return next, DiffRows(prev, next)
	}
	rescan := make([]bool, n)
	for _, i := range changedRows {
		rescan[i] = true
	}
	if len(changedCols) > 0 {
		changed := make([]bool, m)
		for _, j := range changedCols {
			changed[j] = true
		}
		probeRows := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if rescan[i] {
					continue
				}
				cols, vals := prev.Row(i)
				need := len(vals) < prev.K
				for _, j := range cols {
					if j >= 0 && changed[j] {
						need = true
						break
					}
				}
				if !need {
					worst := vals[len(vals)-1]
					q := e.Src.Row(i)
					for _, j := range changedCols {
						v := e.SimFromDist2(sqDistAsc(q, e.Dst.Row(j)))
						// Not strictly below the kept worst: the moved target
						// could enter (ties resolve by column id, so equality
						// must rescan too).
						if !(v < worst) {
							need = true
							break
						}
					}
				}
				rescan[i] = need
			}
		}
		if n*len(changedCols) >= candidateBudget && parallel.Workers(workers) > 1 {
			parallel.Blocks(workers, n, probeRows)
		} else {
			probeRows(0, n)
		}
	}
	list := make([]int, 0, len(changedRows))
	for i, r := range rescan {
		if r {
			list = append(list, i)
		}
	}
	next := prev.Clone()
	if len(list) > 0 {
		var rescanOne func(i int)
		if e.Src.Cols >= bruteForceDim {
			rescanOne = func(i int) { topKEmbeddingBrute(e, next, i, i+1) }
		} else {
			points := make([][]float64, m)
			for j := 0; j < m; j++ {
				points[j] = e.Dst.Row(j)
			}
			tree := kdtree.Build(points)
			rescanOne = func(i int) { topKEmbeddingTree(tree, e, next, i, i+1) }
		}
		rescanRows := func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				rescanOne(list[idx])
			}
		}
		if len(list)*prev.K >= 1<<12 && parallel.Workers(workers) > 1 {
			parallel.Blocks(workers, len(list), rescanRows)
		} else {
			rescanRows(0, len(list))
		}
	}
	return next, dirtyAmong(prev, next, list)
}

// UpdateTopKFactor is UpdateTopKEmbedding for factored similarities: f is the
// new factor bundle, changedRows the source rows with any changed Us entry,
// changedCols the target columns with any changed Vs entry (weights changing
// means every row changed — pass all rows). Probes replay factorScoreRow's
// exact per-entry accumulation chain (factorScoreOne), rescans run the
// TopKFactor per-row kernels, so the result equals TopKFactor(f, prev.K, ·)
// bitwise, including NaN pruning and short-row bookkeeping.
func UpdateTopKFactor(prev *Candidates, f *FactorEmbedding, changedRows, changedCols []int, workers int) (*Candidates, []int) {
	n, m := prev.Rows, prev.Cols
	if !updateWorthwhile(len(changedRows), n, len(changedCols), m) {
		next := TopKFactor(f, prev.K, workers)
		return next, DiffRows(prev, next)
	}
	rescan := make([]bool, n)
	for _, i := range changedRows {
		rescan[i] = true
	}
	if len(changedCols) > 0 {
		changed := make([]bool, m)
		for _, j := range changedCols {
			changed[j] = true
		}
		probeRows := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if rescan[i] {
					continue
				}
				cols, vals := prev.Row(i)
				// Short rows have spare capacity: any moved column could slip
				// in, so rescan unconditionally rather than model NaN pruning
				// in the probe.
				need := len(vals) < prev.K
				if !need {
					for _, j := range cols {
						if changed[j] {
							need = true
							break
						}
					}
				}
				if !need {
					worst := vals[len(vals)-1]
					for _, j := range changedCols {
						v := factorScoreOne(f, i, j)
						if !(v < worst) {
							need = true
							break
						}
					}
				}
				rescan[i] = need
			}
		}
		if n*len(changedCols) >= candidateBudget && parallel.Workers(workers) > 1 {
			parallel.Blocks(workers, n, probeRows)
		} else {
			probeRows(0, n)
		}
	}
	list := make([]int, 0, len(changedRows))
	for i, r := range rescan {
		if r {
			list = append(list, i)
		}
	}
	next := prev.Clone()
	newLen := make([]int, n)
	if prev.Len != nil {
		copy(newLen, prev.Len)
	} else {
		for i := range newLen {
			newLen[i] = prev.K
		}
	}
	if len(list) > 0 {
		rescanRows := func(lo, hi int) {
			buf := make([]float64, m)
			heap := make([]pair, 0, prev.K)
			for idx := lo; idx < hi; idx++ {
				i := list[idx]
				factorScoreRow(f, i, buf)
				heap, newLen[i] = factorSelectRow(next, i, buf, heap)
			}
		}
		if len(list)*m >= candidateBudget && parallel.Workers(workers) > 1 {
			parallel.Blocks(workers, len(list), rescanRows)
		} else {
			rescanRows(0, len(list))
		}
	}
	next.Len = nil
	for _, l := range newLen {
		if l < prev.K {
			next.Len = newLen
			break
		}
	}
	return next, dirtyAmong(prev, next, list)
}

// dirtyAmong filters the rescanned rows down to those whose candidate lists
// actually changed (a rescan frequently reproduces the old list, and every
// row dropped here is a row the warm auction never re-bids).
func dirtyAmong(prev, next *Candidates, rescanned []int) []int {
	var dirty []int
	for _, i := range rescanned {
		pc, pv := prev.Row(i)
		nc, nv := next.Row(i)
		same := len(pc) == len(nc)
		if same {
			for idx := range pc {
				if pc[idx] != nc[idx] || pv[idx] != nv[idx] {
					same = false
					break
				}
			}
		}
		if !same {
			dirty = append(dirty, i)
		}
	}
	return dirty
}
