package assign

import (
	"math"

	"graphalign/internal/kdtree"
	"graphalign/internal/parallel"
)

// This file holds the merge variant of the incremental candidate update.
// UpdateTopKEmbedding/UpdateTopKFactor are bitwise-exact against a full
// rebuild, which forces them to fully rescan every row a moved target could
// have entered — O(Cols · d) per affected row, and the affected fraction
// grows like K · changedCols / Cols, so a few hundred moved targets already
// drag in most rows. The merge variant instead rebuilds each row's list
// from what is already known exactly: surviving old entries keep their
// stored scores (their targets did not move), moved targets are rescored
// fresh, and the row's new top-k is selected from that union — O(changedCols
// · d) per row, independent of Cols.
//
// The price is bounded staleness of membership, never of scores: every
// stored value is the exact current score of its column, but when a moved
// target drops out of a row's list the vacated slot is filled from the known
// entries rather than a full rescan, so an unmoved column scoring between
// the row's old and new k-th bound can be missed until the row's own
// embedding moves (which forces a true rescan). Whenever a row's new k-th
// bound is at least its old bound — the common case, a moved target entering
// — the merged list equals the exact rebuild. The incremental session uses
// this variant only when the caller already opted into tolerance-based
// staleness (Options.ColTolerance > 0); exact mode keeps the Update
// functions.

// mergeWorthwhile reports whether the per-row merge can beat a bulk rebuild:
// each row pays O(changedCols) rescores, so the merge loses once the moved
// targets approach half the columns, and rescanned rows pay full rows as in
// the exact update.
func mergeWorthwhile(changedRows, n, changedCols, m int) bool {
	return 4*changedRows < n && 2*changedCols < m
}

// simPair is a merged-candidate entry: column j at similarity v.
type simPair struct {
	v float64
	j int
}

// simInsert inserts (v, j) into the bounded selection array kept in
// (v descending, j ascending) order — the candidate-row storage order — and
// returns it. Entries past capacity k fall off the tail.
func simInsert(arr []simPair, k int, v float64, j int) []simPair {
	pos := len(arr)
	for pos > 0 && (arr[pos-1].v < v || (arr[pos-1].v == v && arr[pos-1].j > j)) {
		pos--
	}
	if len(arr) < k {
		arr = arr[:len(arr)+1]
	} else if pos == len(arr) {
		return arr
	}
	copy(arr[pos+1:], arr[pos:])
	arr[pos] = simPair{v, j}
	return arr
}

// MergeTopKEmbedding is the merge-variant incremental candidate update over
// an embedding delta: e is the new embedding, prev the candidate set built
// over the old one, changedRows/changedCols the source rows and target rows
// whose vectors changed (everything else bitwise-unchanged). Rows whose own
// embedding moved are fully rescanned with the TopKEmbedding kernels;
// every other row merges its surviving entries with fresh scores of the
// moved targets (see the file comment for the exactness contract). Returns
// the new candidate set and the rows whose lists changed, ascending. prev
// is not mutated. Deltas too large for per-row work fall back to the bulk
// rebuild, making the result exact.
func MergeTopKEmbedding(prev *Candidates, e *Embedding, changedRows, changedCols []int, workers int) (*Candidates, []int) {
	n, m := prev.Rows, prev.Cols
	if !mergeWorthwhile(len(changedRows), n, len(changedCols), m) {
		next := TopKEmbedding(e, prev.K, workers)
		return next, DiffRows(prev, next)
	}
	next := prev.Clone()
	if len(changedRows) == 0 && len(changedCols) == 0 {
		return next, nil
	}
	rescan := make([]bool, n)
	for _, i := range changedRows {
		rescan[i] = true
	}
	changed := make([]bool, m)
	for _, j := range changedCols {
		changed[j] = true
	}
	dirtyFlag := make([]bool, n)
	mergeRows := func(lo, hi int) {
		arr := make([]simPair, 0, prev.K)
		for i := lo; i < hi; i++ {
			if rescan[i] {
				continue
			}
			cols, vals := prev.Row(i)
			arr = arr[:0]
			for idx, j := range cols {
				if j >= 0 && !changed[j] {
					arr = append(arr, simPair{vals[idx], j})
				}
			}
			q := e.Src.Row(i)
			for _, j := range changedCols {
				arr = simInsert(arr, prev.K, e.SimFromDist2(sqDistAsc(q, e.Dst.Row(j))), j)
			}
			dirtyFlag[i] = writeMerged(next, i, arr, cols, vals)
		}
	}
	if n*(len(changedCols)+prev.K) >= candidateBudget && parallel.Workers(workers) > 1 {
		parallel.Blocks(workers, n, mergeRows)
	} else {
		mergeRows(0, n)
	}
	if len(changedRows) > 0 {
		var rescanOne func(i int)
		if e.Src.Cols >= bruteForceDim {
			rescanOne = func(i int) { topKEmbeddingBrute(e, next, i, i+1) }
		} else {
			points := make([][]float64, m)
			for j := 0; j < m; j++ {
				points[j] = e.Dst.Row(j)
			}
			tree := kdtree.Build(points)
			rescanOne = func(i int) { topKEmbeddingTree(tree, e, next, i, i+1) }
		}
		rescanRows := func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				rescanOne(changedRows[idx])
			}
		}
		if len(changedRows)*m >= candidateBudget && parallel.Workers(workers) > 1 {
			parallel.Blocks(workers, len(changedRows), rescanRows)
		} else {
			rescanRows(0, len(changedRows))
		}
	}
	return next, mergedDirty(prev, next, dirtyFlag, changedRows)
}

// MergeTopKFactor is MergeTopKEmbedding for factored similarities, with
// TopKFactor's NaN-pruning semantics: moved columns whose fresh score is NaN
// are dropped from the merge rather than selected, and per-row candidate
// counts (Candidates.Len) are maintained exactly as the bulk path would.
func MergeTopKFactor(prev *Candidates, f *FactorEmbedding, changedRows, changedCols []int, workers int) (*Candidates, []int) {
	n, m := prev.Rows, prev.Cols
	if !mergeWorthwhile(len(changedRows), n, len(changedCols), m) {
		next := TopKFactor(f, prev.K, workers)
		return next, DiffRows(prev, next)
	}
	next := prev.Clone()
	if len(changedRows) == 0 && len(changedCols) == 0 {
		return next, nil
	}
	rescan := make([]bool, n)
	for _, i := range changedRows {
		rescan[i] = true
	}
	changed := make([]bool, m)
	for _, j := range changedCols {
		changed[j] = true
	}
	newLen := make([]int, n)
	if prev.Len != nil {
		copy(newLen, prev.Len)
	} else {
		for i := range newLen {
			newLen[i] = prev.K
		}
	}
	dirtyFlag := make([]bool, n)
	mergeRows := func(lo, hi int) {
		arr := make([]simPair, 0, prev.K)
		for i := lo; i < hi; i++ {
			if rescan[i] {
				continue
			}
			cols, vals := prev.Row(i)
			arr = arr[:0]
			for idx, j := range cols {
				if j >= 0 && !changed[j] {
					arr = append(arr, simPair{vals[idx], j})
				}
			}
			for _, j := range changedCols {
				if v := factorScoreOne(f, i, j); !math.IsNaN(v) {
					arr = simInsert(arr, prev.K, v, j)
				}
			}
			newLen[i] = len(arr)
			dirtyFlag[i] = writeMerged(next, i, arr, cols, vals)
		}
	}
	if n*(len(changedCols)+prev.K) >= candidateBudget && parallel.Workers(workers) > 1 {
		parallel.Blocks(workers, n, mergeRows)
	} else {
		mergeRows(0, n)
	}
	if len(changedRows) > 0 {
		rescanRows := func(lo, hi int) {
			buf := make([]float64, m)
			heap := make([]pair, 0, prev.K)
			for idx := lo; idx < hi; idx++ {
				i := changedRows[idx]
				factorScoreRow(f, i, buf)
				heap, newLen[i] = factorSelectRow(next, i, buf, heap)
			}
		}
		if len(changedRows)*m >= candidateBudget && parallel.Workers(workers) > 1 {
			parallel.Blocks(workers, len(changedRows), rescanRows)
		} else {
			rescanRows(0, len(changedRows))
		}
	}
	next.Len = nil
	for _, l := range newLen {
		if l < prev.K {
			next.Len = newLen
			break
		}
	}
	return next, mergedDirty(prev, next, dirtyFlag, changedRows)
}

// writeMerged stores a merged selection into next's row i (padding short
// rows with Col -1 / Val 0, as the factor path's pruning leaves them) and
// reports whether the stored row differs from the previous (cols, vals).
func writeMerged(next *Candidates, i int, arr []simPair, prevCols []int, prevVals []float64) bool {
	k := next.K
	cols, vals := next.Col[i*k:(i+1)*k], next.Val[i*k:(i+1)*k]
	for idx, p := range arr {
		cols[idx], vals[idx] = p.j, p.v
	}
	for idx := len(arr); idx < k; idx++ {
		cols[idx], vals[idx] = -1, 0
	}
	if len(arr) != len(prevCols) {
		return true
	}
	for idx := range arr {
		if arr[idx].j != prevCols[idx] || arr[idx].v != prevVals[idx] {
			return true
		}
	}
	return false
}

// mergedDirty assembles the ascending dirty-row list from the merge flags
// plus the fully rescanned rows (compared against prev like dirtyAmong).
func mergedDirty(prev, next *Candidates, dirtyFlag []bool, rescanned []int) []int {
	for _, i := range dirtyAmong(prev, next, rescanned) {
		dirtyFlag[i] = true
	}
	var dirty []int
	for i, d := range dirtyFlag {
		if d {
			dirty = append(dirty, i)
		}
	}
	return dirty
}
