package obsv

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartDebugServer serves the standard Go debug endpoints on addr:
//
//	/debug/pprof/   profiles (heap, goroutine, CPU via ?seconds=, ...)
//	/debug/vars     expvar JSON, including reg published as "graphalign"
//	/metrics        reg in Prometheus text exposition format (see prom.go)
//
// so `go tool pprof http://addr/debug/pprof/profile` can attach to a
// running sweep and any Prometheus-compatible collector can scrape the
// metrics registry. It returns the server (shut it down when done) and the
// bound address — pass "127.0.0.1:0" to let the kernel pick a free port.
func StartDebugServer(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	reg.PublishExpvar("graphalign")
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", PromHandler(reg))

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// Serve returns ErrServerClosed on Shutdown/Close; the debug server
		// is best-effort, so other errors are dropped rather than crashing
		// the experiment.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr(), nil
}
