package obsv

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartDebugServer serves the standard Go debug endpoints on addr:
//
//	/debug/pprof/   profiles (heap, goroutine, CPU via ?seconds=, ...)
//	/debug/vars     expvar JSON, including reg published as "graphalign"
//	/metrics        reg in Prometheus text exposition format (see prom.go)
//
// so `go tool pprof http://addr/debug/pprof/profile` can attach to a
// running sweep and any Prometheus-compatible collector can scrape the
// metrics registry. It returns the server and the bound address — pass
// "127.0.0.1:0" to let the kernel pick a free port. Stop it with
// ShutdownServer (not Close), so an in-flight scrape — a CPU profile with
// ?seconds=30, a collector mid-read — finishes instead of being cut off.
func StartDebugServer(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	reg.PublishExpvar("graphalign")
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", PromHandler(reg))

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// Serve returns ErrServerClosed on Shutdown/Close; the debug server
		// is best-effort, so other errors are dropped rather than crashing
		// the experiment.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr(), nil
}

// ShutdownServer gracefully drains an HTTP server started by this package
// (or any *http.Server): the listener stops accepting immediately, in-flight
// requests get up to timeout to complete, and only then are the remaining
// connections force-closed. This is the counterpart every StartDebugServer
// call site must defer — a bare Close cuts off in-flight scrapes and, in
// tests, leaks the listener until process exit. Nil-safe on srv.
func ShutdownServer(srv *http.Server, timeout time.Duration) error {
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// Stragglers past the drain budget are cut off so the process can
		// exit; the error reports that the drain was not clean.
		srv.Close()
		return err
	}
	return nil
}
