package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// collectSink retains every event for assertions.
type collectSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectSink) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectSink) byType(typ string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit("x", "y", nil)
	tr.Progress("msg")
	tr.Gauge("g", 1)
	tr.EmitMetrics()
	tr.AddSink(ProgressFunc(func(string) {}))
	tr.SetRegistry(NewRegistry())
	run := tr.StartRun("A", nil)
	if run != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	sp := run.Phase("inner")
	sp.Set("k", 1)
	sp.Event("tick", nil)
	sp.End()
	run.End()
	if got := tr.Registry(); got != nil {
		t.Fatalf("nil tracer registry = %v, want nil", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ws := NewWriterSink(&buf)
	tr := New(ws)
	run := tr.StartRun("GRASP", map[string]any{"assign": "JV", "n_src": 10})
	sp := run.Phase("similarity")
	sp.Set("k", 20)
	sp.End()
	run.End()
	tr.Progress("halfway")
	if err := ws.Err(); err != nil {
		t.Fatal(err)
	}

	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	if events[0].Type != "run_start" || events[0].Name != "GRASP" {
		t.Errorf("first event = %+v, want run_start GRASP", events[0])
	}
	if events[1].Type != "phase" || events[1].Name != "similarity" {
		t.Errorf("second event = %+v, want phase similarity", events[1])
	}
	if events[1].Parent != events[0].Span {
		t.Errorf("phase parent = %d, want run span %d", events[1].Parent, events[0].Span)
	}
	if got := events[1].Fields["k"]; got != float64(20) {
		t.Errorf("phase field k = %v, want 20", got)
	}
	if events[2].Type != "run_end" || events[2].DurNS <= 0 {
		t.Errorf("third event = %+v, want run_end with positive duration", events[2])
	}
	if events[3].Type != "progress" || events[3].Msg != "halfway" {
		t.Errorf("fourth event = %+v, want progress", events[3])
	}
	for _, e := range events {
		if e.T == 0 {
			t.Errorf("event %q missing timestamp", e.Type)
		}
	}
}

func TestRunAndTraceIDsOnEvents(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink).SetTraceID("trace-abc")

	// Two interleaved runs: every event under a run must carry that run's
	// span id so consumers can separate them.
	runA := tr.StartRun("NSD", nil)
	runB := tr.StartRun("GRASP", nil)
	spA := runA.Phase("similarity")
	spB := runB.Phase("similarity")
	inner := spA.Phase("lanczos")
	inner.Event("tick", nil)
	inner.End()
	spA.End()
	spB.End()
	runB.End()
	runA.End()
	tr.Progress("done")

	starts := sink.byType("run_start")
	if len(starts) != 2 {
		t.Fatalf("run_start events = %d, want 2", len(starts))
	}
	idOf := map[string]uint64{}
	for _, e := range starts {
		if e.Run != e.Span {
			t.Errorf("run_start %s: run id %d != span id %d", e.Name, e.Run, e.Span)
		}
		idOf[e.Name] = e.Run
	}
	wantRun := map[uint64]string{idOf["NSD"]: "NSD", idOf["GRASP"]: "GRASP"}
	byRun := map[string][]string{}
	sink.mu.Lock()
	for _, e := range sink.events {
		if e.Trace != "trace-abc" {
			t.Errorf("event %q trace = %q, want trace-abc", e.Type, e.Trace)
		}
		if e.Type == "phase" || e.Type == "tick" {
			if e.Run == 0 {
				t.Errorf("event %q %q missing run id", e.Type, e.Name)
				continue
			}
			algo := wantRun[e.Run]
			byRun[algo] = append(byRun[algo], e.Name)
		}
	}
	sink.mu.Unlock()
	// The nested lanczos phase and its tick must land under NSD's run, not
	// GRASP's, even though GRASP's span was opened in between.
	found := false
	for _, name := range byRun["NSD"] {
		if name == "lanczos" {
			found = true
		}
	}
	if !found {
		t.Errorf("nested phase not attributed to its run: NSD saw %v", byRun["NSD"])
	}
	for _, name := range byRun["GRASP"] {
		if name == "lanczos" {
			t.Errorf("nested NSD phase leaked into GRASP's run")
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink)
	sp := tr.StartSpan("phase1")
	sp.End()
	sp.End()
	if got := len(sink.byType("phase")); got != 1 {
		t.Fatalf("double End emitted %d phase events, want 1", got)
	}
}

func TestSpanEndObservesRegistry(t *testing.T) {
	reg := NewRegistry()
	tr := New().SetRegistry(reg)
	run := tr.StartRun("NSD", nil)
	run.Phase("assign").End()
	run.End()
	if n := reg.Histogram("run_seconds", DurationBuckets()).Snapshot().Count; n != 1 {
		t.Errorf("run_seconds count = %d, want 1", n)
	}
	if n := reg.Histogram("phase_seconds.assign", DurationBuckets()).Snapshot().Count; n != 1 {
		t.Errorf("phase_seconds.assign count = %d, want 1", n)
	}
}

func TestProgressFuncFiltersTypes(t *testing.T) {
	var lines []string
	tr := New(ProgressFunc(func(msg string) { lines = append(lines, msg) }))
	tr.Progress("one")
	tr.Emit("cell_done", "x", nil)
	tr.Progress("two")
	if strings.Join(lines, ",") != "one,two" {
		t.Fatalf("progress sink saw %v, want only progress messages", lines)
	}
}

func TestConcurrentSpans(t *testing.T) {
	sink := &collectSink{}
	tr := New(sink).SetRegistry(NewRegistry())
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				run := tr.StartRun("A", nil)
				sp := run.Phase("p")
				sp.Set("i", i)
				sp.End()
				tr.Gauge("g", float64(i))
				run.End()
			}
		}()
	}
	wg.Wait()
	if got := len(sink.byType("run_end")); got != workers*50 {
		t.Errorf("run_end events = %d, want %d", got, workers*50)
	}
	// Span ids must be unique.
	seen := make(map[uint64]bool)
	for _, e := range sink.byType("run_start") {
		if seen[e.Span] {
			t.Fatalf("duplicate span id %d", e.Span)
		}
		seen[e.Span] = true
	}
}
