package obsv

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a flat namespace of named counters, gauges and fixed-bucket
// histograms. Instruments are created on first use and live for the
// registry's lifetime; all operations are safe for concurrent use. A nil
// *Registry is a valid disabled registry: it hands out nil instruments
// whose methods are no-ops.
//
// The experiment framework populates, among others:
//
//	runs_total                 every algorithm run started
//	run_errors_total           runs that ended with any error
//	run_timeouts_total         runs cancelled by the per-run wall-clock budget
//	run_panics_total           runs that panicked and were recovered in the worker
//	lap_solve_size             histogram of assignment problem sizes
//	assign_candidates_per_row  histogram of sparse-pipeline candidate counts (k)
//	assign_auction_rounds      histogram of auction bidding rounds per solve
//	assign_fallbacks_total     sparse solves that fell back to dense JV
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the existing buckets; the
// bounds argument is then ignored). Bounds must be sorted ascending; an
// implicit overflow bucket catches values above the last bound.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a JSON-able view of every instrument: counters as
// integers, gauges as floats, histograms as count/sum/mean plus p50/p90/p99
// and per-bucket counts.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	return map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// PublishExpvar exposes the registry snapshot under the given expvar name
// (and therefore on /debug/vars). Publishing is idempotent: a name that is
// already taken — by this registry or anything else — is left alone, since
// expvar.Publish panics on duplicates.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Counter is a monotonically increasing integer. Nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 measurement. Nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (used for occupancy-style gauges).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts values
// v with bounds[i-1] < v <= bounds[i] (the first bucket has an implicit
// lower bound of 0 for quantile interpolation — the framework's histograms
// hold durations and sizes, which are non-negative); one extra overflow
// bucket catches v > bounds[len-1]. Nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
	sum    atomic.Uint64   // float64 bits
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Quantile estimates the q-quantile by linear interpolation inside the
// bucket holding the target rank. Values in the overflow bucket report the
// last bound. The result is always a defined finite value: an empty
// histogram (no observations, or one constructed with no buckets) reports
// 0, and q outside [0, 1] — including NaN — is clamped into the range
// (NaN clamps to 0).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if !(q >= 0) { // also catches NaN
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is the JSON form of a histogram's state.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount pairs a bucket's inclusive upper bound with its count; the
// overflow bucket reports +Inf as "inf".
type BucketCount struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders the overflow bound as the string "inf", which plain
// float64 JSON cannot represent.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.LE, 1) {
		return json.Marshal(map[string]any{"le": "inf", "count": b.Count})
	}
	return json.Marshal(map[string]any{"le": b.LE, "count": b.Count})
}

// Snapshot returns the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.total.Load(),
		Sum:   math.Float64frombits(h.sum.Load()),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	s.Buckets = make([]BucketCount, len(h.counts))
	for i := range h.counts {
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{LE: le, Count: h.counts[i].Load()}
	}
	return s
}

// DurationBuckets is the standard bucket layout for run and phase times:
// exponential-ish bounds from 1 ms to 10 minutes, in seconds.
func DurationBuckets() []float64 {
	return []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10, 30, 60, 120, 300, 600,
	}
}

// SizeBuckets is the standard bucket layout for problem sizes (node counts,
// LAP dimensions): powers of four from 4 to 4^10 ≈ 1M.
func SizeBuckets() []float64 {
	out := make([]float64, 10)
	v := 4.0
	for i := range out {
		out[i] = v
		v *= 4
	}
	return out
}

// LinearBuckets returns count bucket bounds starting at lo, spaced by step.
// For quantities with a narrow known range (candidate counts, retry counts)
// where the exponential layouts above would lump everything into one bucket.
func LinearBuckets(lo, step float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// PoolHooks returns worker-lifecycle callbacks for parallel.SetHooks that
// track pool occupancy in r: the pool.active_workers gauge counts currently
// running pooled goroutines and pool.workers_started counts launches.
func PoolHooks(r *Registry) (onStart, onStop func()) {
	active := r.Gauge("pool.active_workers")
	started := r.Counter("pool.workers_started")
	return func() {
			started.Add(1)
			active.Add(1)
		}, func() {
			active.Add(-1)
		}
}
