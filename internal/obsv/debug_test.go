package obsv

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug_test_counter").Add(42)
	srv, addr, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	status, body := get("/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", status)
	}
	if !strings.Contains(body, "graphalign") {
		t.Errorf("/debug/vars missing published registry:\n%s", body)
	}
	if !strings.Contains(body, "debug_test_counter") {
		t.Errorf("/debug/vars missing registry counter:\n%s", body)
	}

	status, body = get("/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", status)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, _, err := StartDebugServer("256.0.0.1:bogus", NewRegistry()); err == nil {
		t.Fatal("expected error for unusable address")
	}
}
