package obsv

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug_test_counter").Add(42)
	srv, addr, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ShutdownServer(srv, 2*time.Second)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	status, body := get("/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", status)
	}
	if !strings.Contains(body, "graphalign") {
		t.Errorf("/debug/vars missing published registry:\n%s", body)
	}
	if !strings.Contains(body, "debug_test_counter") {
		t.Errorf("/debug/vars missing registry counter:\n%s", body)
	}

	status, body = get("/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", status)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, _, err := StartDebugServer("256.0.0.1:bogus", NewRegistry()); err == nil {
		t.Fatal("expected error for unusable address")
	}
}

// TestShutdownServerDrainsInFlightScrape is the regression test for the
// fire-and-forget debug server: callers used to srv.Close() (or nothing at
// all), which cuts off in-flight scrapes mid-body and leaks the listener in
// tests. ShutdownServer must let a slow scrape finish, then refuse new
// connections. The pre-fix behavior (Close) fails the completed-scrape
// assertion.
func TestShutdownServerDrainsInFlightScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("drain_test_counter").Add(7)
	srv, addr, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	// A runtime trace with ?seconds= holds the response open server-side:
	// exactly the in-flight scrape a bare Close would sever.
	type result struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan result, 1)
	started := make(chan struct{})
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/trace?seconds=1", addr))
		if err != nil {
			close(started)
			done <- result{err: err}
			return
		}
		close(started) // headers received: the scrape is in flight
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- result{status: resp.StatusCode, body: body, err: rerr}
	}()

	<-started
	if err := ShutdownServer(srv, 5*time.Second); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight scrape cut off during shutdown: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight scrape status = %d, want 200", res.status)
	}
	if len(res.body) == 0 {
		t.Fatal("in-flight scrape returned an empty trace body")
	}

	// The listener must be gone: new connections are refused.
	if conn, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting connections after shutdown")
	}
}

// TestShutdownServerNil keeps ShutdownServer safe on a nil server, matching
// the package's nil-tolerant style.
func TestShutdownServerNil(t *testing.T) {
	if err := ShutdownServer(nil, time.Second); err != nil {
		t.Fatal(err)
	}
}
