// Package obsv is the observability layer of the experiment framework: a
// structured span/event tracer emitting JSONL, a metrics registry of
// counters, gauges and fixed-bucket histograms exported via expvar, a
// periodic runtime sampler, and a debug HTTP server exposing pprof.
//
// The package is stdlib-only and dependency-free within the repository so
// that every layer (algorithms, the parallel pool, the experiment runner,
// the CLIs) can report through it without import cycles.
//
// Every method is safe on a nil *Tracer, nil *Span and nil *Registry: a
// disabled pipeline is represented by nil values, so instrumented code never
// branches on "is tracing on". This is the backbone of the framework's
// determinism guarantee — with tracing off, instrumentation reduces to
// no-op method calls on nil receivers and experiment output is byte-for-byte
// what it was before the layer existed.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one telemetry record. Events serialize as single JSON lines
// (JSONL); zero-valued fields are omitted. The types emitted by the
// framework are:
//
//	experiment_start  Name=experiment id
//	experiment_done   Name=experiment id, Fields: seconds, rows, err
//	cell_done         Name=grid cell label, Fields: done, total, eta_s
//	run_start         Name=algorithm, Span set, Fields: assign, n_src, n_dst
//	run_end           Name=algorithm, Span set, DurNS, Alloc
//	phase             Name=phase name, Span+Parent set, DurNS, Alloc, Fields
//	progress          Msg=human-readable progress line
//	gauge             Name=metric name, Fields: value
//	metrics           Fields: full Registry snapshot
type Event struct {
	// T is the wall-clock time of the event in Unix nanoseconds.
	T    int64  `json:"t"`
	Type string `json:"type"`
	Name string `json:"name,omitempty"`
	// Span and Parent identify the span tree; ids are unique per Tracer.
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// Run is the span id of the enclosing run (StartRun) span: the run span
	// itself and every phase span nested under it carry the same Run value,
	// which is what lets trace consumers separate the events of interleaved
	// concurrent runs in one JSONL stream. Zero for events outside any run.
	Run uint64 `json:"run,omitempty"`
	// Trace is the tracer-level trace id (SetTraceID), stamped on every
	// event so traces from several invocations stay separable after files
	// are concatenated. Empty when the tracer has no id.
	Trace string `json:"trace,omitempty"`
	// DurNS is the span duration in nanoseconds (run_end and phase events).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Alloc is the process-wide heap-allocation delta across the span in
	// bytes. With concurrent runs the delta includes the other workers'
	// allocations, so treat it as an upper bound unless Workers is 1.
	Alloc  int64          `json:"alloc,omitempty"`
	Msg    string         `json:"msg,omitempty"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Sink receives events from a Tracer. The Tracer serializes Event calls
// behind its own mutex, so sinks need no locking of their own.
type Sink interface {
	Event(e Event)
}

// WriterSink encodes each event as one JSON line on w. The first encoding
// error is retained and reported by Err; later events are still attempted.
type WriterSink struct {
	enc *json.Encoder
	err error
}

// NewWriterSink returns a sink emitting JSONL to w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{enc: json.NewEncoder(w)}
}

// Event implements Sink.
func (s *WriterSink) Event(e Event) {
	if err := s.enc.Encode(e); err != nil && s.err == nil {
		s.err = err
	}
}

// Err returns the first encoding error, if any.
func (s *WriterSink) Err() error { return s.err }

// ProgressFunc adapts a line-printing function into a sink that receives
// only progress messages — the shape of the framework's legacy Progress
// callback, re-implemented on top of the tracer.
type ProgressFunc func(msg string)

// Event implements Sink.
func (f ProgressFunc) Event(e Event) {
	if e.Type == "progress" {
		f(e.Msg)
	}
}

// Tracer fans events out to its sinks and mirrors span timings into an
// optional metrics Registry. A nil *Tracer is a valid, fully disabled
// tracer.
//
// A tracer owns one trace identity (SetTraceID). For concurrent independent
// runs sharing one sink fan-out — e.g. the jobs of an alignment daemon —
// derive one child tracer per run with ChildTrace: children share the
// parent's sinks, span-id space and registry but stamp their own trace id,
// so interleaved jobs never cross-stamp each other's events.
type Tracer struct {
	mu    sync.Mutex
	sinks []Sink
	ids   atomic.Uint64
	reg   *Registry
	trace string
	// parent is non-nil on child tracers (ChildTrace): events emitted here
	// also fan out through the parent chain, and span ids are allocated from
	// the root so one merged stream stays collision-free.
	parent *Tracer
}

// New returns a tracer with the given sinks.
func New(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks}
}

// AddSink attaches another sink; it returns the tracer for chaining.
func (t *Tracer) AddSink(s Sink) *Tracer {
	if t == nil || s == nil {
		return t
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.mu.Unlock()
	return t
}

// SetRegistry attaches a metrics registry: span ends are observed into
// per-phase histograms and Gauge calls update registry gauges.
func (t *Tracer) SetRegistry(r *Registry) *Tracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.reg = r
	t.mu.Unlock()
	return t
}

// SetTraceID attaches a trace id stamped on every subsequent event. The id
// identifies one tracer lifetime (one CLI invocation, one service run) so
// that concatenated JSONL files remain separable; it returns the tracer for
// chaining.
func (t *Tracer) SetTraceID(id string) *Tracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.trace = id
	t.mu.Unlock()
	return t
}

// ChildTrace derives a tracer for one concurrent run (one daemon job, one
// tenant): the child shares t's span-id space and metrics registry, and every
// event it emits is delivered first to the child's own sinks (AddSink on the
// child attaches per-run sinks, e.g. a job's progress log) and then up
// through t's sink fan-out. The child stamps id on its events regardless of
// t's own trace id, so concurrent children never cross-stamp — the per-run
// replacement for mutating a shared tracer with SetTraceID. Nil-safe: a nil
// tracer returns a nil (disabled) child.
func (t *Tracer) ChildTrace(id string) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{parent: t, trace: id, reg: t.Registry()}
}

// root walks to the top of the parent chain (t itself when not a child).
func (t *Tracer) root() *Tracer {
	for t.parent != nil {
		t = t.parent
	}
	return t
}

// NewTraceID builds a trace id unique enough to separate concatenated JSONL
// files: prefix, pid and start time. Not cryptographic — two invocations in
// the same nanosecond with the same pid would collide, which cannot happen
// on one machine.
func NewTraceID(prefix string) string {
	return fmt.Sprintf("%s-%d-%d", prefix, os.Getpid(), time.Now().UnixNano())
}

// EmitTraceMeta records one "trace_meta" event carrying invocation-level
// fields (seed, scale, go version...). Trace analyzers surface these as the
// trace's header; emit it once, right after SetTraceID.
func (t *Tracer) EmitTraceMeta(fields map[string]any) {
	if t == nil {
		return
	}
	t.emit(Event{Type: "trace_meta", Fields: fields})
}

// TraceID returns the trace id set by SetTraceID ("" when unset or on a nil
// tracer).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trace
}

// Registry returns the attached metrics registry (nil when absent or when
// the tracer itself is nil — Registry methods tolerate both).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg
}

// emit stamps and fans out one event: first to this tracer's own sinks, then
// up the parent chain. Each tracer's sinks are invoked under that tracer's
// mutex, preserving the Sink contract (serialized delivery, no sink-side
// locking) even when several children emit concurrently into one parent.
func (t *Tracer) emit(e Event) {
	if t == nil {
		return
	}
	if e.T == 0 {
		e.T = time.Now().UnixNano()
	}
	for tr := t; tr != nil; {
		tr.mu.Lock()
		if e.Trace == "" {
			e.Trace = tr.trace
		}
		for _, s := range tr.sinks {
			s.Event(e)
		}
		next := tr.parent
		tr.mu.Unlock()
		tr = next
	}
}

// Emit records a generic event of the given type.
func (t *Tracer) Emit(typ, name string, fields map[string]any) {
	if t == nil {
		return
	}
	t.emit(Event{Type: typ, Name: name, Fields: fields})
}

// Progress records a human-readable progress line.
func (t *Tracer) Progress(msg string) {
	if t == nil {
		return
	}
	t.emit(Event{Type: "progress", Msg: msg})
}

// Gauge records an instantaneous measurement as a gauge event and mirrors
// it into the registry gauge of the same name.
func (t *Tracer) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.Registry().Gauge(name).Set(v)
	t.emit(Event{Type: "gauge", Name: name, Fields: map[string]any{"value": v}})
}

// EmitMetrics records a full snapshot of the attached registry as one
// "metrics" event — the JSON form of the experiment-end metrics dump.
func (t *Tracer) EmitMetrics() {
	if t == nil {
		return
	}
	reg := t.Registry()
	if reg == nil {
		return
	}
	t.emit(Event{Type: "metrics", Fields: reg.Snapshot()})
}

// StartRun opens a run span: a run_start event now, a run_end event (with
// duration and allocation delta) when the returned span is ended. Inner
// phases hang off the returned span via Phase. The span's id doubles as the
// run id carried by every event emitted under it (Event.Run).
func (t *Tracer) StartRun(algorithm string, fields map[string]any) *Span {
	return t.startSpan("run", algorithm, 0, 0, fields)
}

// StartSpan opens a top-level phase span that emits a single phase event
// when ended.
func (t *Tracer) StartSpan(name string) *Span {
	return t.startSpan("phase", name, 0, 0, nil)
}

func (t *Tracer) startSpan(kind, name string, parent, run uint64, fields map[string]any) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tr: t,
		// Span ids come from the root tracer so the merged stream of all
		// child tracers stays collision-free.
		id:     t.root().ids.Add(1),
		parent: parent,
		run:    run,
		name:   name,
		kind:   kind,
		// The trace id is pinned at span start: every event of this span (and
		// of child spans, which inherit it) carries the identity the tracer
		// had when the run began, even if SetTraceID changes mid-run. Without
		// this, two concurrent runs sharing a tracer would stamp each other's
		// spans with whichever id was set last.
		trace:  t.TraceID(),
		start:  time.Now(),
		alloc0: heapAllocBytes(),
	}
	if kind == "run" {
		s.run = s.id
		t.emit(Event{Type: "run_start", Name: name, Span: s.id, Run: s.run, Trace: s.trace, Fields: fields})
	} else if fields != nil {
		s.fields = fields
	}
	return s
}

// Span is one timed region of a run: the whole run itself (kind run) or a
// named inner phase. Spans are handed to algorithms through the
// algo.Instrumented interface so inner phases (eigendecompositions, OT
// iterations, power-iteration convergence) land in the same trace as the
// framework's similarity/assign/metrics phases.
//
// A Span is owned by one goroutine at a time, but children of the same
// parent may run concurrently; field updates are mutex-guarded so misuse
// degrades gracefully rather than racing. All methods are nil-safe.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	run    uint64
	name   string
	kind   string
	// trace is the trace id pinned when the span was started (see startSpan);
	// all the span's events carry it, immune to later SetTraceID calls.
	trace  string
	start  time.Time
	alloc0 uint64
	mu     sync.Mutex
	fields map[string]any
	ended  bool
}

// Phase opens a child span; ending it emits a phase event carrying its
// name, duration and allocation delta. The child inherits the parent span's
// pinned trace id, so a whole run tree stays consistently stamped even when
// the tracer's own id changes between phases.
func (s *Span) Phase(name string) *Span {
	if s == nil {
		return nil
	}
	child := s.tr.startSpan("phase", name, s.id, s.run, nil)
	child.trace = s.trace
	return child
}

// Set annotates the span with a key/value pair included in its end event
// (e.g. iteration counts, convergence flags, subproblem sizes).
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.fields == nil {
		s.fields = make(map[string]any)
	}
	s.fields[key] = value
	s.mu.Unlock()
}

// Event records a point event inside the span.
func (s *Span) Event(typ string, fields map[string]any) {
	if s == nil {
		return
	}
	s.tr.emit(Event{Type: typ, Span: s.id, Parent: s.parent, Run: s.run, Trace: s.trace, Fields: fields})
}

// End closes the span, emitting run_end (kind run) or phase (kind phase)
// with the span's duration, allocation delta and accumulated fields, and
// observing the duration into the registry's per-phase histogram. End is
// idempotent; only the first call emits.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	fields := s.fields
	s.mu.Unlock()

	dur := time.Since(s.start)
	alloc := int64(heapAllocBytes() - s.alloc0)
	typ := "phase"
	if s.kind == "run" {
		typ = "run_end"
	}
	s.tr.emit(Event{
		Type: typ, Name: s.name, Span: s.id, Parent: s.parent, Run: s.run,
		Trace: s.trace, DurNS: dur.Nanoseconds(), Alloc: alloc, Fields: fields,
	})
	reg := s.tr.Registry()
	if reg != nil {
		if s.kind == "run" {
			reg.Histogram("run_seconds", DurationBuckets()).Observe(dur.Seconds())
		} else {
			reg.Histogram("phase_seconds."+s.name, DurationBuckets()).Observe(dur.Seconds())
		}
	}
}

// heapAllocBytes reads the cumulative heap allocation counter from
// runtime/metrics — far cheaper than runtime.ReadMemStats, which suits
// per-span sampling.
func heapAllocBytes() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindUint64 {
		return sample[0].Value.Uint64()
	}
	return 0
}
