package obsv

import (
	"bytes"
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2)
	r.Gauge("g").Add(1)
	r.Histogram("h", DurationBuckets()).Observe(3)
	r.PublishExpvar("nil-reg")
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge value = %g", v)
	}
	if q := r.Histogram("h", nil).Quantile(0.5); q != 0 {
		t.Errorf("nil histogram quantile = %g", q)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Add(3)
	r.Counter("runs").Add(2)
	if v := r.Counter("runs").Value(); v != 5 {
		t.Errorf("counter = %d, want 5", v)
	}
	g := r.Gauge("occupancy")
	g.Set(4)
	g.Add(-1.5)
	if v := g.Value(); v != 2.5 {
		t.Errorf("gauge = %g, want 2.5", v)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	// Bucket semantics: value v lands in the first bucket whose bound >= v.
	for _, v := range []float64{0.5, 1.0} { // -> bucket le=1
		h.Observe(v)
	}
	h.Observe(1.5) // -> bucket le=2
	h.Observe(4.0) // -> bucket le=4 (inclusive upper bound)
	h.Observe(9.0) // -> overflow
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantCounts := []uint64{2, 1, 1, 1}
	if len(s.Buckets) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(s.Buckets[3].LE, 1) {
		t.Errorf("overflow bucket bound = %g, want +Inf", s.Buckets[3].LE)
	}
	if s.Sum != 0.5+1+1.5+4+9 {
		t.Errorf("sum = %g", s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{10, 20, 30})
	// 10 observations spread evenly inside the first bucket (0, 10].
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	// Median rank 5 of 10 falls halfway through the only occupied bucket:
	// linear interpolation from lo=0 to hi=10.
	if q := h.Quantile(0.5); q != 5 {
		t.Errorf("p50 = %g, want 5", q)
	}
	// All mass below 10 means p100 interpolates to the bucket's top.
	if q := h.Quantile(1); q != 10 {
		t.Errorf("p100 = %g, want 10", q)
	}
	// Overflow-only mass reports the last bound.
	h2 := r.Histogram("q2", []float64{1, 2})
	h2.Observe(100)
	if q := h2.Quantile(0.9); q != 2 {
		t.Errorf("overflow quantile = %g, want last bound 2", q)
	}
	// Empty histogram.
	h3 := r.Histogram("q3", []float64{1})
	if q := h3.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile, including out-of-range and NaN q,
	// must report the defined empty value 0.
	empty := newHistogram([]float64{1, 2})
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %g, want 0", q, got)
		}
	}

	// Out-of-range q clamps to the [0, 1] endpoints instead of producing
	// garbage ranks.
	h := newHistogram([]float64{10, 20})
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %g, want Quantile(0) = %g", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %g, want Quantile(1) = %g", got, want)
	}
	// NaN q clamps to 0 rather than poisoning the interpolation.
	if got, want := h.Quantile(math.NaN()), h.Quantile(0); got != want {
		t.Errorf("Quantile(NaN) = %g, want Quantile(0) = %g", got, want)
	}

	// A histogram built with no buckets at all (every observation lands in
	// the implicit overflow bucket) must not panic and must report a
	// defined value.
	nobuckets := newHistogram(nil)
	nobuckets.Observe(3)
	if got := nobuckets.Quantile(0.5); got != 0 {
		t.Errorf("no-bucket Quantile(0.5) = %g, want defined 0", got)
	}
	if s := nobuckets.Snapshot(); s.Count != 1 || s.Sum != 3 {
		t.Errorf("no-bucket snapshot = %+v, want count 1 sum 3", s)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DurationBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(seed*i%7) * 0.01)
			}
		}(w + 1)
	}
	wg.Wait()
	if n := h.Snapshot().Count; n != 8000 {
		t.Fatalf("count = %d, want 8000", n)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(7)
	r.Gauge("pool.active_workers").Set(3)
	r.Histogram("lap_solve_size", SizeBuckets()).Observe(1000)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, section := range []string{"counters", "gauges", "histograms"} {
		if _, ok := decoded[section]; !ok {
			t.Errorf("snapshot missing %q section", section)
		}
	}
	if !strings.Contains(buf.String(), `"inf"`) {
		t.Error("overflow bucket should serialize its bound as \"inf\"")
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.PublishExpvar("obsv-test-reg")
	r.PublishExpvar("obsv-test-reg") // second call must not panic
	v := expvar.Get("obsv-test-reg")
	if v == nil {
		t.Fatal("registry not published")
	}
	if !strings.Contains(v.String(), `"c":1`) {
		t.Errorf("expvar value = %s", v.String())
	}
}

func TestPoolHooks(t *testing.T) {
	r := NewRegistry()
	onStart, onStop := PoolHooks(r)
	onStart()
	onStart()
	if v := r.Gauge("pool.active_workers").Value(); v != 2 {
		t.Errorf("active = %g, want 2", v)
	}
	onStop()
	onStop()
	if v := r.Gauge("pool.active_workers").Value(); v != 0 {
		t.Errorf("active after stop = %g, want 0", v)
	}
	if v := r.Counter("pool.workers_started").Value(); v != 2 {
		t.Errorf("started = %d, want 2", v)
	}
}

func TestSizeBucketsShape(t *testing.T) {
	b := SizeBuckets()
	if len(b) != 10 || b[0] != 4 || b[9] != math.Pow(4, 10) {
		t.Fatalf("SizeBuckets = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not ascending: %v", b)
		}
	}
}
