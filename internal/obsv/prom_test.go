package obsv

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the full exposition text for a small
// registry: ordering, HELP/TYPE lines, name sanitization, the phase label
// fold, label escaping, cumulative buckets and the +Inf bucket.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(3)
	r.Counter("pool.workers_started").Add(7) // dot must sanitize to _
	r.Gauge("pool.active_workers").Set(2.5)
	h := r.Histogram("lap_solve_size", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500) // overflow bucket
	// Per-phase histograms fold into one family with a phase label; the
	// quoted backslash exercises label escaping.
	r.Histogram(`phase_seconds.assign`, []float64{1}).Observe(0.5)
	r.Histogram("phase_seconds.odd\"phase\\x", []float64{1}).Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP graphalign_pool_workers_started registry counter pool.workers_started
# TYPE graphalign_pool_workers_started counter
graphalign_pool_workers_started 7
# HELP graphalign_runs_total registry counter runs_total
# TYPE graphalign_runs_total counter
graphalign_runs_total 3
# HELP graphalign_pool_active_workers registry gauge pool.active_workers
# TYPE graphalign_pool_active_workers gauge
graphalign_pool_active_workers 2.5
# HELP graphalign_lap_solve_size registry histogram
# TYPE graphalign_lap_solve_size histogram
graphalign_lap_solve_size_bucket{le="10"} 1
graphalign_lap_solve_size_bucket{le="100"} 2
graphalign_lap_solve_size_bucket{le="+Inf"} 3
graphalign_lap_solve_size_sum 555
graphalign_lap_solve_size_count 3
# HELP graphalign_phase_seconds registry histogram
# TYPE graphalign_phase_seconds histogram
graphalign_phase_seconds_bucket{phase="assign",le="1"} 1
graphalign_phase_seconds_bucket{phase="assign",le="+Inf"} 1
graphalign_phase_seconds_sum{phase="assign"} 0.5
graphalign_phase_seconds_count{phase="assign"} 1
graphalign_phase_seconds_bucket{phase="odd\"phase\\x",le="1"} 0
graphalign_phase_seconds_bucket{phase="odd\"phase\\x",le="+Inf"} 1
graphalign_phase_seconds_sum{phase="odd\"phase\\x"} 2
graphalign_phase_seconds_count{phase="odd\"phase\\x"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusInvariants checks the structural rules of the format
// on a registry with every instrument kind: buckets are cumulative
// (monotonically nondecreasing) and the +Inf bucket equals _count.
func TestWritePrometheusInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("run_seconds", DurationBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.01)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	bucketRE := regexp.MustCompile(`^graphalign_run_seconds_bucket\{le="([^"]+)"\} (\d+)$`)
	var last uint64
	var infCount, count uint64
	var sawInf bool
	for _, line := range strings.Split(b.String(), "\n") {
		if m := bucketRE.FindStringSubmatch(line); m != nil {
			n, err := strconv.ParseUint(m[2], 10, 64)
			if err != nil {
				t.Fatalf("bucket count %q: %v", m[2], err)
			}
			if n < last {
				t.Errorf("bucket le=%s count %d < previous %d: not cumulative", m[1], n, last)
			}
			last = n
			if m[1] == "+Inf" {
				sawInf, infCount = true, n
			}
		}
		if rest, ok := strings.CutPrefix(line, "graphalign_run_seconds_count "); ok {
			n, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("_count %q: %v", rest, err)
			}
			count = n
		}
	}
	if !sawInf {
		t.Fatal("no +Inf bucket emitted")
	}
	if infCount != count || count != 100 {
		t.Errorf("+Inf bucket = %d, _count = %d, want both 100", infCount, count)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry wrote %q, want empty", b.String())
	}
}

// TestMetricsEndpointScrape is the end-to-end smoke test: StartDebugServer
// must serve /metrics as parseable Prometheus text with the expected
// content type.
func TestMetricsEndpointScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs_total").Add(5)
	reg.Histogram("phase_seconds.similarity", DurationBuckets()).Observe(0.02)
	srv, addr, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ShutdownServer(srv, 2*time.Second)

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "graphalign_runs_total 5") {
		t.Errorf("scrape missing counter:\n%s", text)
	}
	if !strings.Contains(text, `graphalign_phase_seconds_bucket{phase="similarity",le="+Inf"} 1`) {
		t.Errorf("scrape missing +Inf bucket:\n%s", text)
	}

	// Every non-comment, non-blank line must match the exposition sample
	// grammar: name{labels} value.
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$`)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}
