package obsv

import (
	"runtime/metrics"
	"sync"
	"time"
)

// The runtime/metrics series the sampler watches. Names missing from the
// running Go version read back as KindBad and are skipped, so the sampler
// degrades gracefully across toolchains.
const (
	metricHeapBytes  = "/memory/classes/heap/objects:bytes"
	metricGoroutines = "/sched/goroutines:goroutines"
	metricGCCycles   = "/gc/cycles/total:gc-cycles"
	metricGCPauses   = "/sched/pauses/total/gc:seconds"
)

// StartRuntimeSampler launches a goroutine that samples the Go runtime
// every interval and records the values as gauge events on tr (and gauges
// in its registry): live heap bytes, goroutine count, completed GC cycles,
// and the count and median of GC stop-the-world pauses. The returned stop
// function halts the sampler and waits for it to exit.
func StartRuntimeSampler(tr *Tracer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			sampleRuntime(tr)
			select {
			case <-done:
				return
			case <-ticker.C:
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// sampleRuntime reads one round of runtime metrics into gauge events.
func sampleRuntime(tr *Tracer) {
	samples := []metrics.Sample{
		{Name: metricHeapBytes},
		{Name: metricGoroutines},
		{Name: metricGCCycles},
		{Name: metricGCPauses},
	}
	metrics.Read(samples)
	gauges := map[string]string{
		metricHeapBytes:  "runtime.heap_bytes",
		metricGoroutines: "runtime.goroutines",
		metricGCCycles:   "runtime.gc_cycles",
	}
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			tr.Gauge(gauges[s.Name], float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			tr.Gauge(gauges[s.Name], s.Value.Float64())
		case metrics.KindFloat64Histogram:
			if s.Name == metricGCPauses {
				count, median := histogramSummary(s.Value.Float64Histogram())
				tr.Gauge("runtime.gc_pauses_total", float64(count))
				tr.Gauge("runtime.gc_pause_p50_s", median)
			}
		}
	}
}

// histogramSummary reduces a runtime Float64Histogram to its total count
// and approximate median (the lower bound of the bucket holding the middle
// observation).
func histogramSummary(h *metrics.Float64Histogram) (count uint64, median float64) {
	if h == nil {
		return 0, 0
	}
	for _, c := range h.Counts {
		count += c
	}
	if count == 0 {
		return 0, 0
	}
	var cum, half uint64
	half = count / 2
	for i, c := range h.Counts {
		cum += c
		if cum > half {
			// Bucket i spans [Buckets[i], Buckets[i+1]); report its lower
			// edge, clamping the -Inf underflow edge to 0.
			lo := h.Buckets[i]
			if lo < 0 {
				lo = 0
			}
			return count, lo
		}
	}
	return count, 0
}
