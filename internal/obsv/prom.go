package obsv

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition of a Registry.
//
// Every instrument is exported under the "graphalign_" namespace with its
// registry name sanitized to the Prometheus grammar (characters outside
// [a-zA-Z0-9_:] become '_'). Histograms follow the standard cumulative
// convention: each "_bucket" line counts observations less than or equal to
// its "le" bound, the "+Inf" bucket equals "_count", and "_sum" carries the
// running total of observed values. The per-phase duration histograms the
// tracer records as "phase_seconds.<name>" are folded into one
// "graphalign_phase_seconds" family with a phase label, so dashboards can
// aggregate and facet across phases instead of discovering one metric name
// per phase.
//
// Output is deterministic: families and label values are sorted, floats are
// formatted with strconv 'g' formatting, and the content type matches the
// text exposition version 0.0.4 that every Prometheus scraper accepts.

// promNamespace prefixes every exported metric name.
const promNamespace = "graphalign_"

// phaseHistPrefix is the registry naming convention for per-phase duration
// histograms (see Span.End); the suffix becomes the "phase" label.
const phaseHistPrefix = "phase_seconds."

// WritePrometheus writes the registry's instruments in Prometheus text
// exposition format (version 0.0.4). A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}

	// Snapshot the instrument maps under the registry lock, then read the
	// instruments lock-free (their state is atomic).
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	var b strings.Builder

	for _, name := range sortedKeys(counters) {
		metric := promNamespace + sanitizeMetricName(name)
		writeHeader(&b, metric, "counter", "registry counter "+name)
		fmt.Fprintf(&b, "%s %d\n", metric, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		metric := promNamespace + sanitizeMetricName(name)
		writeHeader(&b, metric, "gauge", "registry gauge "+name)
		fmt.Fprintf(&b, "%s %s\n", metric, formatPromValue(gauges[name].Value()))
	}

	// Group histograms into families: the per-phase histograms share one
	// family with a phase label; everything else is its own family.
	type series struct {
		label string // phase label value, "" for unlabeled families
		hist  *Histogram
	}
	families := make(map[string][]series)
	for name, h := range hists {
		fam := promNamespace + sanitizeMetricName(name)
		var label string
		if phase, ok := strings.CutPrefix(name, phaseHistPrefix); ok && phase != "" {
			fam, label = promNamespace+"phase_seconds", phase
		}
		families[fam] = append(families[fam], series{label: label, hist: h})
	}
	for _, fam := range sortedKeys(families) {
		writeHeader(&b, fam, "histogram", "registry histogram")
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].label < ss[j].label })
		for _, s := range ss {
			writeHistogram(&b, fam, s.label, s.hist)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writeHeader emits the HELP and TYPE lines for one metric family.
func writeHeader(b *strings.Builder, metric, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n", metric, escapeHelp(help))
	fmt.Fprintf(b, "# TYPE %s %s\n", metric, typ)
}

// writeHistogram emits the cumulative _bucket/_sum/_count series of one
// histogram, with an optional phase label merged into the le label set.
func writeHistogram(b *strings.Builder, metric, phase string, h *Histogram) {
	snap := h.Snapshot()
	extra := ""
	if phase != "" {
		extra = `phase="` + escapeLabel(phase) + `",`
	}
	var cum uint64
	for _, bucket := range snap.Buckets {
		cum += bucket.Count
		le := "+Inf"
		if !math.IsInf(bucket.LE, 1) {
			le = formatPromValue(bucket.LE)
		}
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", metric, extra, le, cum)
	}
	label := ""
	if phase != "" {
		label = `{phase="` + escapeLabel(phase) + `"}`
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", metric, label, formatPromValue(snap.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", metric, label, snap.Count)
}

// sanitizeMetricName maps an arbitrary registry name onto the Prometheus
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are legal
// in HELP text).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatPromValue renders a float the way Prometheus expects: shortest
// round-trip representation, with infinities spelled +Inf/-Inf.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PromHandler serves the registry in Prometheus text exposition format —
// the handler behind the debug server's /metrics endpoint. A nil registry
// serves an empty (valid) exposition.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The write only fails if the client went away; nothing to do.
		_ = r.WritePrometheus(w)
	})
}
