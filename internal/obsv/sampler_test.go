package obsv

import (
	"testing"
	"time"
)

func TestRuntimeSampler(t *testing.T) {
	sink := &collectSink{}
	reg := NewRegistry()
	tr := New(sink).SetRegistry(reg)
	stop := StartRuntimeSampler(tr, 10*time.Millisecond)
	// The sampler takes one sample immediately; wait for at least one more.
	time.Sleep(35 * time.Millisecond)
	stop()

	gauges := sink.byType("gauge")
	if len(gauges) == 0 {
		t.Fatal("sampler emitted no gauge events")
	}
	seen := make(map[string]bool)
	for _, e := range gauges {
		seen[e.Name] = true
		v, ok := e.Fields["value"].(float64)
		if !ok {
			t.Fatalf("gauge %q has no numeric value: %+v", e.Name, e)
		}
		if e.Name == "runtime.goroutines" && v < 1 {
			t.Errorf("goroutine gauge = %g, want >= 1", v)
		}
	}
	for _, name := range []string{"runtime.heap_bytes", "runtime.goroutines", "runtime.gc_cycles"} {
		if !seen[name] {
			t.Errorf("missing gauge %q (saw %v)", name, seen)
		}
	}
	if reg.Gauge("runtime.heap_bytes").Value() <= 0 {
		t.Error("heap_bytes registry gauge not updated")
	}
	// Events must stop after stop() returns.
	n := len(sink.byType("gauge"))
	time.Sleep(30 * time.Millisecond)
	if n2 := len(sink.byType("gauge")); n2 != n {
		t.Errorf("sampler still emitting after stop: %d -> %d", n, n2)
	}
}

func TestNilTracerSampler(t *testing.T) {
	stop := StartRuntimeSampler(nil, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop() // must not panic or deadlock
}
